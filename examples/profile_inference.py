#!/usr/bin/env python
"""Profile one INT8 MobileNetEdgeTPU inference and print the top-10 ops.

Demonstrates the per-op profiler of the planned execution engine: compile the
plan once, attach an :class:`ExecutionProfiler`, run a query, and read back
where the time and bytes went.

Run:  PYTHONPATH=src python examples/profile_inference.py
"""

from __future__ import annotations

import numpy as np

from repro.graph import ExecutionPlan, ExecutionProfiler, export_mobile
from repro.kernels import Numerics
from repro.models import create_reference_model
from repro.quantization import calibrate, quantize_graph


def main() -> None:
    bundle = create_reference_model("mobilenet_edgetpu", fitted=False)
    exported = export_mobile(bundle.graph)

    rng = np.random.default_rng(0)
    shape = tuple(4 if d == -1 else d for d in exported.inputs[0].shape)
    calib = [{"images": rng.normal(0, 0.5, shape).astype(np.float32)}]
    graph = quantize_graph(exported, calibrate(exported, calib), Numerics.INT8)

    plan = ExecutionPlan.for_graph(graph)
    info = plan.describe()
    print(f"model: {graph.name}")
    print(f"plan : {info['ops']} ops, {info['prepacked_ops']} prepacked kernels")

    profiler = ExecutionProfiler()
    single = tuple(1 if d == -1 else d for d in exported.inputs[0].shape)
    feeds = {"images": rng.normal(0, 0.5, single).astype(np.float32)}
    for _ in range(3):  # a few runs so per-op means are stable
        plan.run(feeds, profiler=profiler)

    print()
    print(profiler.summary(n=10))


if __name__ == "__main__":
    main()
