"""Quickstart: run the MLPerf Mobile suite on a simulated device.

The headless equivalent of tapping "Go" in the mobile app (paper App. A):
accuracy mode over the synthetic validation sets, then performance mode
under the run rules, for every task of the selected round.

Usage:
    python examples/quickstart.py [soc_name]

Takes ~1 minute with the reduced (quick) run rules used here.
"""

import sys

from repro.core import QUICK_RULES, BenchmarkHarness, format_report
from repro.hardware import SOC_CATALOG


def main() -> None:
    soc = sys.argv[1] if len(sys.argv) > 1 else "dimensity_1100"
    if soc not in SOC_CATALOG:
        raise SystemExit(f"unknown SoC {soc!r}; pick one of {sorted(SOC_CATALOG)}")
    version = SOC_CATALOG[soc].benchmark_version

    print(f"building reference models + synthetic datasets for {version}...")
    harness = BenchmarkHarness(
        version=version,
        rules=QUICK_RULES,
        dataset_sizes={"imagenet": 192, "coco": 64, "ade20k": 48, "squad": 96},
    )
    suite = harness.run_suite(soc)
    print()
    print(format_report(suite))
    print()
    print("note: at these reduced dataset sizes the INT8 detection gate is")
    print("expected to sit at/below its target — a scale artifact discussed")
    print("in EXPERIMENTS.md. Run the full benchmarks for the calibrated run.")


if __name__ == "__main__":
    main()
