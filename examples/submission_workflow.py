"""The full submission lifecycle (paper §6.2 and App. E rolling submissions).

Plays both sides of the process:
1. a vendor runs the suite and packages a submission (unedited logs, model
   provenance checksums, system description);
2. the submission checker enforces the rules;
3. the independent auditor rebuilds, reruns on a factory-reset device, and
   accepts only if the reproduced scores land within 5%;
4. the accepted result enters the rolling-submission log;
5. a falsified variant is rejected at audit.

Usage:
    python examples/submission_workflow.py
"""

from repro.core import (
    QUICK_RULES,
    BenchmarkHarness,
    RollingSubmissionLog,
    SystemDescription,
    audit_submission,
    build_submission,
    check_submission,
)


def main() -> None:
    harness = BenchmarkHarness(
        version="v1.0",
        rules=QUICK_RULES,
        dataset_sizes={"imagenet": 128, "coco": 48, "ade20k": 32, "squad": 64},
    )

    print("1) vendor runs the benchmark suite...")
    suite = harness.run_suite(
        "exynos_2100", tasks=["question_answering"],
        include_offline=False,
    )
    system = SystemDescription(
        submitter="samsung", soc_name="exynos_2100", device_name="Galaxy S21",
        form_factor="smartphone", os_name="Android 11",
    )
    submission = build_submission(harness, suite, system)
    print(f"   packaged {len(suite.results)} results with provenance checksums")

    print("2) submission checker...")
    problems = check_submission(submission)
    print("   " + ("clean" if not problems else "; ".join(problems)))

    print("3) independent audit (rebuild + rerun on factory-reset device)...")
    report = audit_submission(submission, harness)
    print("   " + report.summary().replace("\n", "\n   "))

    print("4) rolling submission log...")
    rolling = RollingSubmissionLog()
    sid = rolling.submit(submission)
    board = rolling.leaderboard("question_answering", "v1.0")
    print(f"   accepted as submission #{sid}; QA leaderboard: {board}")

    print("5) a falsified submission (latency halved) ...")
    result = submission.suite.results[0]
    result.latency_p90_ms *= 0.5
    bad_report = audit_submission(submission, harness)
    verdict = "REJECTED" if not bad_report.passed else "accepted (bug!)"
    print(f"   audit verdict: {verdict}")
    result.latency_p90_ms *= 2.0  # restore


if __name__ == "__main__":
    main()
