"""The Appendix E roadmap, runnable today.

Runs the *experimental* round — streaming speech recognition (the mobile
RNN-T the paper lists as in-the-works) and super-resolution — through the
exact same harness, LoadGen, and quality-gate machinery as the published
suite, then inspects the models with the graph-summary tool (App. B: model
designers sizing networks for real devices).

Usage:
    python examples/future_tasks.py [soc_name]
"""

import sys

from repro.core import QUICK_RULES, BenchmarkHarness, format_report
from repro.graph import export_mobile, graph_summary
from repro.hardware import SOC_CATALOG
from repro.models import create_full_model


def main() -> None:
    soc = sys.argv[1] if len(sys.argv) > 1 else "apple_a14"
    if soc not in SOC_CATALOG:
        raise SystemExit(f"unknown SoC {soc!r}; pick one of {sorted(SOC_CATALOG)}")

    print("experimental round: speech recognition + super resolution")
    harness = BenchmarkHarness(
        version="experimental", rules=QUICK_RULES,
        dataset_sizes={"speech": 64, "superres": 32},
    )
    suite = harness.run_suite(soc)
    print()
    print(format_report(suite))

    print("\nfull-size model structure (what the perf simulator schedules):")
    for model in ("mobile_streaming_asr", "mobile_edge_sr"):
        print()
        print(graph_summary(export_mobile(create_full_model(model).graph),
                            max_rows=6))


if __name__ == "__main__":
    main()
