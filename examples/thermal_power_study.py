"""Thermal + power study (run rules §6.1 and the App. E power metric).

Sustains single-stream segmentation on the Exynos 990, sampling latency,
die temperature, power and clock over two virtual minutes; then shows the
mandated cooldown interval restoring cold-start behaviour, and closes with
the per-task energy table the paper lists as future work.

Usage:
    python examples/thermal_power_study.py
"""

from repro.analysis import ai_tax_breakdown, full_graph_cache, measure_single_stream
from repro.backends import default_backend_for
from repro.core.tasks import TASK_ORDER
from repro.hardware import SimulatedDevice, get_soc
from repro.loadgen import TestSettings


def main() -> None:
    soc = get_soc("exynos_990")
    backend = default_backend_for(soc)
    graph = full_graph_cache("deeplab_v3plus")
    compiled = backend.compile_single_stream(graph, "semantic_segmentation")
    device = SimulatedDevice(soc, ambient_c=22.0)

    print("sustained segmentation on exynos_990 (ambient 22 C)")
    print(f"{'t (s)':>7}{'latency ms':>12}{'die C':>8}{'clock':>7}{'avg W':>7}")
    next_report = 0.0
    while device.virtual_time < 120.0:
        result = device.run_query(compiled)
        if device.virtual_time >= next_report:
            print(f"{device.virtual_time:>7.1f}{result.latency_seconds*1e3:>12.2f}"
                  f"{result.temperature_c:>8.1f}{result.clock_scale:>7.2f}"
                  f"{result.energy.average_watts:>7.2f}")
            next_report += 15.0

    print("\ncooldown break (5 minutes, the app's maximum setting)...")
    device.cooldown(300.0)
    rested = device.run_query(compiled)
    print(f"after break: latency {rested.latency_seconds*1e3:.2f} ms, "
          f"die {rested.temperature_c:.1f} C — cold-start behaviour restored")

    print("\nper-task energy (single-stream, cold start), v0.7 smartphones")
    settings = TestSettings(min_query_count=128, min_duration_s=1.0)
    print(f"{'task':<26}" + "".join(
        f"{s:>22}" for s in ("exynos_990", "snapdragon_865plus", "dimensity_820")))
    for task in TASK_ORDER:
        cells = []
        for soc_name in ("exynos_990", "snapdragon_865plus", "dimensity_820"):
            r = measure_single_stream(soc_name, task, settings=settings)
            cells.append(f"{r['energy_per_query_mj']:>19.2f} mJ")
        print(f"{task:<26}" + "".join(cells))
    print("\nsmartphone chipsets cap near 3 W TDP (paper App. E), which is the")
    print("ceiling the offline scenario saturates.")

    print("\nend-to-end AI tax (App. E: user-perceived latency includes pre/post)")
    print(f"{'task':<26}{'core ms':>9}{'e2e ms':>9}{'tax %':>7}")
    for task in TASK_ORDER:
        r = ai_tax_breakdown("snapdragon_865plus", task)
        print(f"{task:<26}{r['core_ms']:>9.2f}{r['end_to_end_ms']:>9.2f}"
              f"{r['ai_tax_pct']:>7.1f}")
    print("the tax is largest exactly where inference is fastest (Buch et al.).")


if __name__ == "__main__":
    main()
