"""Model designers: package a custom network and measure it on real devices.

The paper's Appendix B describes model designers using the app + LoadGen to
evaluate new architectures on devices instead of guessing from op counts.
This example builds a custom small classifier with the public graph API,
exports it, and compares its simulated single-stream latency across every
SoC in the catalog — then shows why op counts alone mislead (two models
with similar MACs but different structure land far apart).

Usage:
    python examples/custom_model.py
"""

from repro.graph import GraphBuilder, export_mobile
from repro.hardware import SOC_CATALOG, SimulatedDevice, get_soc
from repro.hardware.scheduler import FrameworkProfile, compile_model
from repro.kernels import Numerics


def build_custom(name: str, *, stages: int, width: int, kernel: int):
    b = GraphBuilder(name, seed=42)
    x = b.input("images", (-1, 224, 224, 3))
    h = b.conv(x, width, k=3, stride=2, activation="relu6", use_bn=True)
    for i in range(stages):
        h = b.dwconv(h, k=kernel, stride=2 if i % 2 == 0 else 1,
                     activation="relu6", use_bn=True)
        h = b.conv(h, width * (i + 2), k=1, activation="relu6", use_bn=True)
    h = b.global_pool(h)
    h = b.reshape(h, (b.graph.spec(h).shape[-1],))
    h = b.fc(h, 1000)
    out = b.softmax(h)
    b.outputs(out)
    return export_mobile(b.build())


def main() -> None:
    # two designs with comparable MACs: few wide stages vs many narrow ones
    chunky = build_custom("chunky", stages=4, width=48, kernel=5)
    slim = build_custom("slim", stages=8, width=24, kernel=3)
    print(f"chunky: {chunky.total_macs/1e6:7.1f} MMACs, {len(chunky.ops)} ops")
    print(f"slim:   {slim.total_macs/1e6:7.1f} MMACs, {len(slim.ops)} ops")

    fw = FrameworkProfile("custom-app")
    print(f"\n{'soc':<22}{'chunky ms':>11}{'slim ms':>10}")
    for soc_name, soc in sorted(SOC_CATALOG.items()):
        primary = next(
            (a.name for a in soc.accelerators if a.kind in ("npu", "apu", "hta")), "cpu"
        )
        row = []
        for graph in (chunky, slim):
            cm = compile_model(graph, soc, primary=primary,
                               numerics=Numerics.INT8, framework=fw)
            row.append(SimulatedDevice(soc).run_query(cm).latency_seconds * 1e3)
        print(f"{soc_name:<22}{row[0]:>11.2f}{row[1]:>10.2f}")

    print("\nsimilar MACs, different latency: per-op dispatch overheads and")
    print("memory traffic — not raw arithmetic — separate the two designs,")
    print("which is exactly why the paper argues for on-device measurement")
    print("over op-count heuristics (Appendix B).")


if __name__ == "__main__":
    main()
