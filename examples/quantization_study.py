"""Quantization study: the rules-compliant model-optimization pipeline (§5.1).

Walks the full submitter workflow for the classification task:
frozen FP32 reference -> export -> PTQ calibration on the approved 500-ish
sample set -> INT8/UINT8/FP16 deployment models -> accuracy versus the
quality target, comparing calibration observers and post-training bias
correction (the "QAT-comparable" reference path).

Usage:
    python examples/quantization_study.py
"""

import numpy as np

from repro.datasets import create_dataset
from repro.graph import Executor, export_mobile
from repro.kernels import Numerics
from repro.models import create_reference_model
from repro.quantization import (
    apply_bias_correction,
    calibrate,
    convert_fp16,
    equalize_cross_layer,
    quantize_graph,
)


def top1(graph, dataset) -> float:
    ex = Executor(graph)
    correct = 0
    for start in range(0, len(dataset), 64):
        idx = np.arange(start, min(start + 64, len(dataset)))
        out = ex.run(dataset.input_batch(idx))
        correct += (next(iter(out.values())).argmax(-1) == dataset.labels[idx]).sum()
    return correct / len(dataset) * 100


def main() -> None:
    print("building the classification reference model (closed-form training)...")
    bundle = create_reference_model("mobilenet_edgetpu")
    frozen = export_mobile(bundle.graph)
    dataset = create_dataset("imagenet", frozen, bundle.config, size=384)

    fp32 = top1(frozen, dataset)
    target = 0.98 * fp32  # Table 1: classification keeps >= 98% of FP32
    print(f"FP32 reference Top-1: {fp32:.2f} (paper: 76.19) — INT8 target {target:.2f}\n")

    print(f"{'deployment model':<42}{'top1':>8}{'of fp32':>9}{'gate':>6}")
    fp16 = convert_fp16(frozen)
    acc = top1(fp16, dataset)
    print(f"{'FP16 (weights rounded to half)':<42}{acc:>8.2f}{acc/fp32*100:>8.1f}%"
          f"{'pass' if acc >= target else 'FAIL':>6}")

    for observer in ("minmax", "moving_average", "percentile"):
        stats = calibrate(frozen, dataset.calibration_batches(), observer=observer)
        for numerics in (Numerics.INT8, Numerics.UINT8):
            q = quantize_graph(frozen, stats, numerics)
            acc = top1(q, dataset)
            label = f"{numerics.value.upper()} PTQ, {observer} observer"
            print(f"{label:<42}{acc:>8.2f}{acc/fp32*100:>8.1f}%"
                  f"{'pass' if acc >= target else 'FAIL':>6}")

    # the QAT-comparable reference: PTQ + training-free bias correction
    stats = calibrate(frozen, dataset.calibration_batches())
    q = quantize_graph(frozen, stats, Numerics.INT8)
    qc = apply_bias_correction(q, frozen, dataset.calibration_batches())
    acc = top1(qc, dataset)
    print(f"{'INT8 PTQ + bias correction (QAT-comparable)':<42}{acc:>8.2f}"
          f"{acc/fp32*100:>8.1f}%{'pass' if acc >= target else 'FAIL':>6}")

    # cross-layer equalization: a data-free, mathematically-equivalent
    # transform of the frozen weights ("approved approximations", §5.1)
    equalized = equalize_cross_layer(frozen)
    stats = calibrate(equalized, dataset.calibration_batches())
    q = quantize_graph(equalized, stats, Numerics.INT8)
    acc = top1(q, dataset)
    print(f"{'INT8 PTQ + cross-layer equalization':<42}{acc:>8.2f}"
          f"{acc/fp32*100:>8.1f}%{'pass' if acc >= target else 'FAIL':>6}")

    print("\nnote: calibration uses only the approved held-out set; retraining")
    print("is forbidden for submitters (paper §5.1).")


if __name__ == "__main__":
    main()
