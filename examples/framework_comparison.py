"""Framework comparison on fixed hardware (paper Fig. 5 code path 1, App. E).

Holds the device constant (Dimensity 1100) and swaps the runtime framework:
the FP32 TFLite-CPU reference, the generic NNAPI delegate, and MediaTek's
Neuron delegate — reproducing the paper's point that the software stack, not
just the silicon, determines mobile AI performance (§7.4, Table 3).

Usage:
    python examples/framework_comparison.py
"""

from repro.analysis import measure_single_stream
from repro.core.tasks import TASK_ORDER
from repro.loadgen import TestSettings

SETTINGS = TestSettings(min_query_count=256, min_duration_s=2.0)
BACKENDS = ["tflite", "nnapi", "neuron"]


def main() -> None:
    print("Dimensity 1100 — identical hardware, three software stacks")
    print(f"{'task':<26}" + "".join(f"{b:>14}" for b in BACKENDS) + f"{'nnapi->neuron':>15}")
    for task in TASK_ORDER:
        row = {}
        for backend in BACKENDS:
            r = measure_single_stream(
                "dimensity_1100", task, backend_name=backend, settings=SETTINGS
            )
            row[backend] = r["latency_p90_ms"]
        gain = (row["nnapi"] / row["neuron"] - 1) * 100
        print(
            f"{task:<26}"
            + "".join(f"{row[b]:>12.2f}ms" for b in BACKENDS)
            + f"{gain:>14.1f}%"
        )
    print("\nthe FP32 CPU reference is the 'poorly optimized' baseline the")
    print("paper ships (§3.3); vendor delegates unlock the accelerators.")


if __name__ == "__main__":
    main()
