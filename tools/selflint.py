#!/usr/bin/env python
"""AST-based repo self-lint: bans the foot-guns this codebase has been bitten by.

Rules
-----
SL001  mutable default argument — a ``def`` whose default is a list/dict/set
       literal (or constructor call): the default is shared across calls.
SL002  bare ``except:`` — swallows KeyboardInterrupt/SystemExit and hides
       real faults from the fault-injection suites.
SL003  interpolated ``np.percentile`` on a latency path — MLPerf latency
       percentiles are the nearest-rank order statistic; NumPy's default
       linear interpolation manufactures latencies no query ever had (the
       exact bug class fixed in the conformance PR). Latency paths must use
       ``repro.loadgen.scenarios.percentile_latency``. Calibration code
       (quantization/) legitimately interpolates activation ranges and is
       out of scope.
SL004  unseeded global randomness — ``np.random.*`` / ``random.*`` module
       calls (and ``default_rng()`` with no seed) draw from hidden global or
       OS-entropy state, so latency/accuracy runs stop being reproducible.
       Use an explicitly seeded ``np.random.default_rng(seed)`` Generator.
SL005  dead local assignment — a plain local is assigned once and never
       read anywhere in the function: either a bug (the intended use was
       dropped in a refactor) or noise. Prefix with ``_`` when the
       assignment is intentional (e.g. tuple unpacking).

Usage: ``python tools/selflint.py [paths...]`` (defaults to src/ and tests/);
exits 1 when any finding fires. ``lint_source`` is the testable core API.
"""

from __future__ import annotations

import ast
import pathlib
import sys

__all__ = ["Violation", "lint_source", "lint_file", "lint_paths", "main"]

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# directories where latency statistics live; np.percentile is banned here
LATENCY_PATHS = ("loadgen", "core", "analysis", "benchmarks")

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "OrderedDict", "Counter", "deque"}


class Violation:
    def __init__(self, rule_id: str, path: str, line: int, message: str):
        self.rule_id = rule_id
        self.path = path
        self.line = line
        self.message = message

    def __repr__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule_id} {self.message}"


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        fn = node.func
        name = fn.id if isinstance(fn, ast.Name) else getattr(fn, "attr", None)
        return name in _MUTABLE_CALLS
    return False


def _on_latency_path(path: str) -> bool:
    parts = pathlib.PurePath(path).parts
    return any(p in LATENCY_PATHS for p in parts)


def _global_random_call(node: ast.Call) -> str | None:
    """The dotted name of an unseeded global-randomness call, if this is one.

    Matches ``random.<fn>(...)`` and ``np.random.<fn>(...)`` /
    ``numpy.random.<fn>(...)``; ``default_rng`` is exempt when given an
    explicit seed argument (that is the sanctioned Generator construction).
    """
    fn = node.func
    if not isinstance(fn, ast.Attribute):
        return None
    base = fn.value
    if isinstance(base, ast.Name) and base.id == "random":
        return f"random.{fn.attr}"
    if (isinstance(base, ast.Attribute) and base.attr == "random"
            and isinstance(base.value, ast.Name) and base.value.id in ("np", "numpy")):
        if fn.attr == "default_rng" and (node.args or node.keywords):
            return None  # explicitly seeded Generator: the sanctioned form
        return f"{base.value.id}.random.{fn.attr}"
    return None


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _walk_same_scope(node: ast.AST):
    """Yield descendants of ``node`` without entering nested scopes."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, _SCOPE_NODES):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _dead_local_assignments(fn: ast.FunctionDef | ast.AsyncFunctionDef):
    """``(name, lineno)`` of locals assigned in ``fn`` but never read.

    Candidates are plain single-``Name`` assignments in the function's own
    scope (not nested defs); a name counts as read if it is loaded anywhere
    inside the function *including* nested scopes (closures). ``_``-prefixed
    names and ``global``/``nonlocal`` declarations are exempt.
    """
    declared_elsewhere: set[str] = set()
    candidates: dict[str, int] = {}
    for node in _walk_same_scope(fn):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            declared_elsewhere.update(node.names)
        elif (isinstance(node, ast.Assign) and len(node.targets) == 1
              and isinstance(node.targets[0], ast.Name)
              and not node.targets[0].id.startswith("_")):
            name = node.targets[0].id
            if name not in candidates:
                candidates[name] = node.lineno
    loaded = {
        node.id for node in ast.walk(fn)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
    }
    return [(name, line) for name, line in candidates.items()
            if name not in loaded and name not in declared_elsewhere]


def lint_source(source: str, path: str = "<string>") -> list[Violation]:
    """Lint one module's source text; ``path`` decides path-scoped rules."""
    out: list[Violation] = []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation("SL000", path, exc.lineno or 0, f"syntax error: {exc.msg}")]

    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for d in defaults:
                if _is_mutable_default(d):
                    out.append(Violation(
                        "SL001", path, d.lineno,
                        f"mutable default argument in {node.name}(); the object "
                        f"is created once and shared across calls"))
            for name, line in _dead_local_assignments(node):
                out.append(Violation(
                    "SL005", path, line,
                    f"local '{name}' in {node.name}() is assigned but never "
                    f"read; delete it or prefix with '_' if intentional"))
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            out.append(Violation(
                "SL002", path, node.lineno,
                "bare 'except:' swallows KeyboardInterrupt/SystemExit; name "
                "the exceptions"))
        elif (isinstance(node, ast.Call)
              and isinstance(node.func, ast.Attribute)
              and node.func.attr == "percentile"
              and _on_latency_path(path)):
            out.append(Violation(
                "SL003", path, node.lineno,
                "interpolated percentile on a latency path; use the "
                "nearest-rank percentile_latency (MLPerf statistic)"))
        elif isinstance(node, ast.Call):
            dotted = _global_random_call(node)
            if dotted is not None:
                out.append(Violation(
                    "SL004", path, node.lineno,
                    f"unseeded global randomness '{dotted}(...)'; use an "
                    f"explicitly seeded np.random.default_rng(seed)"))
    return sorted(out, key=lambda v: (v.path, v.line, v.rule_id))


def lint_file(path: pathlib.Path, root: pathlib.Path = REPO_ROOT) -> list[Violation]:
    rel = str(path.relative_to(root)) if path.is_relative_to(root) else str(path)
    return lint_source(path.read_text(), rel)


def lint_paths(paths: list[pathlib.Path], root: pathlib.Path = REPO_ROOT) -> list[Violation]:
    out: list[Violation] = []
    for p in paths:
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            out.extend(lint_file(f, root))
    return out


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    targets = [pathlib.Path(a) for a in args] or [
        REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "tools"
    ]
    violations = lint_paths(targets)
    for v in violations:
        print(v)
    print(f"selflint: {len(violations)} violation(s) in "
          f"{', '.join(str(t) for t in targets)}")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
