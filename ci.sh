#!/usr/bin/env bash
# Tier-1 CI gate: the full test suite, then the executor smoke benchmark.
# The smoke benchmark re-asserts plan-vs-legacy bit-exactness on INT8
# MobileNetEdgeTPU and fails if the planned path loses its speedup.
set -euo pipefail
cd "$(dirname "$0")"

export PYTHONPATH=src

python -m pytest -x -q tests
python benchmarks/bench_executor.py --smoke
