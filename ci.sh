#!/usr/bin/env bash
# Tier-1 CI gate: static analysis first (fastest, and it proves graph/plan
# invariants before anything executes), then the conformance/fault suites
# (they guard the run-rule correctness the whole benchmark's credibility
# rests on), then the optimizer/arena suites, then the full test suite,
# then the executor and arena smoke benchmarks.
# The smoke benchmark re-asserts plan-vs-legacy bit-exactness on INT8
# MobileNetEdgeTPU and fails if the planned path loses its speedup.
set -euo pipefail
cd "$(dirname "$0")"

export PYTHONPATH=src

# repo self-lint: mutable default args, bare except, interpolated
# percentiles on latency paths
python tools/selflint.py src tests tools

# static verifier: the whole model zoo x {fp32, fp16, int8, uint8} must come
# back clean from all four analyzer families — no baseline file in CI
python -m repro.staticcheck --fail-level warning

# value-range engine: interval proofs over the same matrix. The known clip-
# risk/coverage findings are pinned in the checked-in baseline, so the gate
# trips only on *new* provable errors (e.g. a range-aware accumulator
# overflow). The full JSON report is kept as a build artifact next to the
# BENCH files.
python -m repro.staticcheck --ranges --baseline tools/ranges_baseline.json \
    --fail-level error --format json \
    > benchmarks/results/STATICCHECK_ranges.json

python -m pytest -x -q tests/test_conformance.py tests/test_faults.py

# graph optimizer + arena: the zoo-wide optimize-equivalence sweep (every
# model x four numerics, rewritten graph vs legacy interpreter) and the
# arena-parity/PL007 layout checks must pass before the full suite runs
python -m pytest -x -q tests/test_optimize.py tests/test_arena.py

python -m pytest -x -q tests
python benchmarks/bench_executor.py --smoke

# arena smoke: re-asserts bit-exact arena-vs-legacy parity on INT8
# MobileNetEdgeTPU + DeepLabv3+ and gates the >=3x peak-memory reduction
python benchmarks/bench_arena.py --smoke
