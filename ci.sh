#!/usr/bin/env bash
# Tier-1 CI gate: the conformance/fault suites first (fast, and they guard
# the run-rule correctness the whole benchmark's credibility rests on),
# then the full test suite, then the executor smoke benchmark. The smoke
# benchmark re-asserts plan-vs-legacy bit-exactness on INT8
# MobileNetEdgeTPU and fails if the planned path loses its speedup.
set -euo pipefail
cd "$(dirname "$0")"

export PYTHONPATH=src

python -m pytest -x -q tests/test_conformance.py tests/test_faults.py
python -m pytest -x -q tests
python benchmarks/bench_executor.py --smoke
