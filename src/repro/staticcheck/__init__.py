"""Static graph verifier and lint framework.

Proves graph-level invariants *before* anything runs, the way the MLPerf
submission checker statically vets result bundles: typed dataflow
(independent shape re-inference, connectivity), quantization soundness
(int32 accumulator bounds, qparam sanity), backend placement prediction
(vendor-profile partitioning, the Table-3 delegate-gap story as a lint),
execution-plan consistency (tensor liveness), and — opt-in — the value-range
engine (sound interval abstract interpretation from declared input domains;
VR rules). See DESIGN.md §8-9 for the rule catalog;
``python -m repro.staticcheck`` sweeps the model zoo.
"""

from .dataflow import check_dataflow, independent_shapes
from .findings import (
    RULE_CATALOG,
    RULESET_VERSION,
    Baseline,
    Finding,
    Report,
    Rule,
    Severity,
)
from .placement import (
    PlacementPrediction,
    check_placement,
    predict_op_targets,
    predict_placement,
    sweep_vendor_placements,
)
from .plancheck import check_arena_layout, check_plan
from .quantcheck import accumulator_bound, check_quantization
from .intervals import Interval, activation_transfer, dot_error_bound
from .ranges import (
    DEFAULT_DATA_DOMAIN,
    RangeAnalysis,
    check_ranges,
    infer_graph_ranges,
    input_intervals,
    observed_ranges,
)
from .verifier import (
    ALL_FAMILIES,
    KNOWN_FAMILIES,
    attest,
    attestation_problems,
    sweep_zoo,
    verify_graph,
    zoo_deployments,
)

__all__ = [
    "ALL_FAMILIES",
    "Baseline",
    "DEFAULT_DATA_DOMAIN",
    "Finding",
    "Interval",
    "KNOWN_FAMILIES",
    "PlacementPrediction",
    "RangeAnalysis",
    "Report",
    "Rule",
    "RULE_CATALOG",
    "RULESET_VERSION",
    "Severity",
    "accumulator_bound",
    "activation_transfer",
    "attest",
    "attestation_problems",
    "check_dataflow",
    "check_placement",
    "check_arena_layout",
    "check_plan",
    "check_quantization",
    "check_ranges",
    "dot_error_bound",
    "independent_shapes",
    "infer_graph_ranges",
    "input_intervals",
    "observed_ranges",
    "predict_op_targets",
    "predict_placement",
    "sweep_vendor_placements",
    "sweep_zoo",
    "verify_graph",
    "zoo_deployments",
]
