"""CLI: sweep the model zoo (or selected models) through the static verifier.

Examples::

    python -m repro.staticcheck                       # full zoo, all numerics
    python -m repro.staticcheck mobilebert --numerics int8,uint8
    python -m repro.staticcheck --ranges              # add the value-range engine
    python -m repro.staticcheck --format json > staticcheck.json
    python -m repro.staticcheck --write-baseline known.json
    python -m repro.staticcheck --baseline known.json # suppress known findings

Exit status is 0 only when every swept deployment is clean (after baseline
suppression) at or above ``--fail-level`` — the contract ``ci.sh`` gates on.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..kernels.numerics import Numerics
from ..models import available_models
from .findings import RULESET_VERSION, Baseline, Severity
from .verifier import ALL_FAMILIES, KNOWN_FAMILIES, sweep_zoo

_NUMERICS = {n.value: n for n in
             (Numerics.FP32, Numerics.FP16, Numerics.INT8, Numerics.UINT8)}


def _csv(choices: dict | tuple, label: str):
    valid = tuple(choices)

    def parse(text: str):
        items = tuple(t.strip().lower() for t in text.split(",") if t.strip())
        bad = [t for t in items if t not in valid]
        if bad:
            raise argparse.ArgumentTypeError(
                f"unknown {label} {bad}; choose from {', '.join(valid)}")
        return items

    return parse


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description="Statically verify model-zoo graphs: dataflow, "
                    "quantization soundness, backend placement, plan liveness.",
    )
    parser.add_argument("models", nargs="*", metavar="MODEL",
                        help="zoo models to sweep (default: all)")
    parser.add_argument("--numerics", type=_csv(_NUMERICS, "numerics"),
                        default=tuple(_NUMERICS),
                        help="comma-separated formats (default: %(default)s)")
    parser.add_argument("--families", type=_csv(KNOWN_FAMILIES, "family"),
                        default=ALL_FAMILIES,
                        help="analyzer families to run (default: dataflow, "
                             "quantization, placement, plan)")
    parser.add_argument("--ranges", action="store_true",
                        help="also run the value-range engine (VR rules: "
                             "interval propagation from declared input domains)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--baseline", metavar="PATH",
                        help="JSON suppression file of accepted findings")
    parser.add_argument("--write-baseline", metavar="PATH",
                        help="write current findings to PATH as a baseline and exit 0")
    parser.add_argument("--fail-level", choices=("info", "warning", "error"),
                        default="warning",
                        help="lowest severity that fails the run (default: warning)")
    args = parser.parse_args(argv)

    known = available_models()
    unknown = [m for m in args.models if m not in known]
    if unknown:
        parser.error(f"unknown model(s) {unknown}; available: {', '.join(known)}")

    families = tuple(args.families)
    if args.ranges and "ranges" not in families:
        families += ("ranges",)

    baseline = Baseline.load(args.baseline) if args.baseline else None
    reports = sweep_zoo(
        tuple(args.models) or None,
        tuple(_NUMERICS[n] for n in args.numerics),
        families=families,
        baseline=baseline,
    )

    if args.write_baseline:
        merged = Baseline.from_findings(
            [f for r in reports for f in r.findings])
        merged.save(args.write_baseline)
        print(f"wrote {len(merged.entries)} suppression(s) to {args.write_baseline}")
        return 0

    gate = Severity.parse(args.fail_level)
    failing = sum(len(r.at_least(gate)) for r in reports)
    total = sum(len(r.findings) for r in reports)
    suppressed = sum(len(r.suppressed) for r in reports)

    if args.format == "json":
        json.dump({
            "ruleset": RULESET_VERSION,
            "families": list(families),
            "reports": [r.to_dict() for r in reports],
            "total_findings": total,
            "suppressed": suppressed,
            "exit_code": 1 if failing else 0,
        }, sys.stdout, indent=2)
        print()
    else:
        for report in reports:
            print(report.render_text())
        verdict = "CLEAN" if not failing else f"{failing} gating finding(s)"
        print(f"\n{len(reports)} deployment(s) checked "
              f"[{', '.join(families)}]: {verdict}"
              + (f" ({suppressed} suppressed)" if suppressed else ""))
    return 1 if failing else 0


if __name__ == "__main__":
    sys.exit(main())
