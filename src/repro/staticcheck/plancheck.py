"""Plan consistency checker (rules PL001–PL006).

Walks a compiled :class:`repro.graph.plan.ExecutionPlan` step list and
re-derives tensor liveness from scratch: when is each buffer defined, read
and released. The plan's release schedule is then checked against that
independent account — a buffer freed before its final consumer, freed twice,
or never freed at all is a scheduling bug that dynamic tests only catch when
a specific graph shape happens to trip it.
"""

from __future__ import annotations

from ..graph.plan import ExecutionPlan
from .findings import Finding

__all__ = ["check_plan"]


def check_plan(plan: ExecutionPlan) -> list[Finding]:
    """Rules PL001–PL006 over one compiled execution plan."""
    out: list[Finding] = []
    graph = plan.graph
    gname = graph.name
    outputs = set(graph.output_names)
    steps = plan._steps

    # independent liveness: the true last reader of every tensor
    last_read: dict[str, int] = {}
    for i, step in enumerate(steps):
        for t in step.inputs:
            last_read[t] = i

    defined = {spec.name for spec in graph.inputs}
    released: dict[str, int] = {}  # tensor -> step index that freed it
    ever_defined = set(defined)

    for i, step in enumerate(steps):
        if not callable(step.fn):
            out.append(Finding(
                "PL003", gname, op=step.name,
                message=f"step {i} ({step.name!r}) has no callable kernel bound "
                        f"(fn={step.fn!r})"))
        for t in step.inputs:
            if t in defined:
                continue
            if t in released:
                out.append(Finding(
                    "PL001", gname, op=step.name, tensor=t,
                    message=f"step {i} ({step.name!r}) reads {t!r}, which step "
                            f"{released[t]} already released"))
            elif t not in ever_defined:
                out.append(Finding(
                    "PL006", gname, op=step.name, tensor=t,
                    message=f"step {i} ({step.name!r}) reads {t!r}, which no "
                            f"graph input or earlier step defines"))
        for t in step.outputs:
            defined.add(t)
            ever_defined.add(t)
        for t in step.release:
            if t in released:
                out.append(Finding(
                    "PL002", gname, op=step.name, tensor=t,
                    message=f"step {i} ({step.name!r}) releases {t!r} a second "
                            f"time (first freed by step {released[t]})"))
                continue
            if t in outputs:
                out.append(Finding(
                    "PL005", gname, op=step.name, tensor=t,
                    message=f"step {i} ({step.name!r}) releases graph output {t!r}"))
            if last_read.get(t, -1) > i:
                out.append(Finding(
                    "PL001", gname, op=step.name, tensor=t,
                    message=f"step {i} ({step.name!r}) releases {t!r} before its "
                            f"last consumer (step {last_read[t]})"))
            released[t] = i
            defined.discard(t)

    if plan.liveness:
        for t in sorted(ever_defined):
            if t in outputs or t in released:
                continue
            if t not in last_read:
                continue  # never consumed: a dataflow problem (DF001), not liveness
            out.append(Finding(
                "PL004", gname, tensor=t,
                message=f"tensor {t!r} is consumed (last at step {last_read[t]}) "
                        f"but never released; it stays resident for the whole run"))
    return out
