"""Plan consistency checker (rules PL001–PL007).

Walks a compiled :class:`repro.graph.plan.ExecutionPlan` step list and
re-derives tensor liveness from scratch: when is each buffer defined, read
and released. The plan's release schedule is then checked against that
independent account — a buffer freed before its final consumer, freed twice,
or never freed at all is a scheduling bug that dynamic tests only catch when
a specific graph shape happens to trip it.

PL007 extends the same double-entry discipline to the static memory arena:
the planner's slot offsets are cross-validated against an *independent*
liveness replay (including alias-lifetime folding), proving no two live
tensors can ever share bytes and every slot is large enough for its spec.
"""

from __future__ import annotations

from ..graph.arena import ArenaLayout, _spec_dtype, _spec_elements, effective_liveness
from ..graph.plan import ExecutionPlan
from .findings import Finding

__all__ = ["check_plan", "check_arena_layout"]


def check_arena_layout(plan: ExecutionPlan, layout: "ArenaLayout | None" = None) -> list[Finding]:
    """Rule PL007: the arena layout against an independent liveness replay.

    ``layout`` defaults to the plan's own static layout; passing one in lets
    tests (and the seeded-fault harness) validate corrupted layouts.
    """
    out: list[Finding] = []
    graph = plan.graph
    gname = graph.name
    if layout is None:
        layout = plan.arena_layout(batch=1)

    # independent replay: define/last-read step per tensor, aliases folded
    last_read, _ = effective_liveness(plan._steps, graph.output_names)
    defined_at: dict[str, int] = {}
    for i, step in enumerate(plan._steps):
        for t in step.outputs:
            defined_at.setdefault(t, i)

    slots = list(layout.slots.values())
    for s in slots:
        if s.name not in defined_at:
            out.append(Finding(
                "PL007", gname, tensor=s.name,
                message=f"arena slot {s.name!r} does not correspond to any "
                        f"step output"))
            continue
        lo, hi = defined_at[s.name], last_read.get(s.name, defined_at[s.name])
        if (s.first, s.last) != (lo, hi):
            out.append(Finding(
                "PL007", gname, tensor=s.name,
                message=f"arena slot {s.name!r} records live interval "
                        f"[{s.first}, {s.last}] but the independent replay "
                        f"finds [{lo}, {hi}]",
                details={"recorded": [s.first, s.last], "replayed": [lo, hi]}))
        spec = graph.tensor_specs.get(s.name)
        if spec is not None:
            need = _spec_elements(spec.shape, 1) * _spec_dtype(graph, s.name).itemsize
            if s.nbytes < need:
                out.append(Finding(
                    "PL007", gname, tensor=s.name,
                    message=f"arena slot {s.name!r} holds {s.nbytes} bytes but "
                            f"its spec needs {need}",
                    details={"slot_bytes": s.nbytes, "spec_bytes": int(need)}))
    for i, a in enumerate(slots):
        lo_a, hi_a = defined_at.get(a.name, a.first), last_read.get(a.name, a.last)
        for b in slots[i + 1:]:
            if a.key != b.key:
                continue
            lo_b, hi_b = defined_at.get(b.name, b.first), last_read.get(b.name, b.last)
            if lo_a <= hi_b and lo_b <= hi_a:  # live at the same time
                if a.offset < b.end and b.offset < a.end:  # and share bytes
                    out.append(Finding(
                        "PL007", gname, tensor=a.name,
                        message=f"arena slots {a.name!r} [{a.offset}, {a.end}) "
                                f"and {b.name!r} [{b.offset}, {b.end}) overlap "
                                f"while both are live (steps [{lo_a}, {hi_a}] "
                                f"vs [{lo_b}, {hi_b}]) in arena {a.key!r}",
                        details={"a": a.name, "b": b.name, "key": a.key}))
    return out


def check_plan(plan: ExecutionPlan) -> list[Finding]:
    """Rules PL001–PL007 over one compiled execution plan."""
    out: list[Finding] = []
    graph = plan.graph
    gname = graph.name
    outputs = set(graph.output_names)
    steps = plan._steps

    # independent liveness: the true last reader of every tensor
    last_read: dict[str, int] = {}
    for i, step in enumerate(steps):
        for t in step.inputs:
            last_read[t] = i

    defined = {spec.name for spec in graph.inputs}
    released: dict[str, int] = {}  # tensor -> step index that freed it
    ever_defined = set(defined)

    for i, step in enumerate(steps):
        if not callable(step.fn):
            out.append(Finding(
                "PL003", gname, op=step.name,
                message=f"step {i} ({step.name!r}) has no callable kernel bound "
                        f"(fn={step.fn!r})"))
        for t in step.inputs:
            if t in defined:
                continue
            if t in released:
                out.append(Finding(
                    "PL001", gname, op=step.name, tensor=t,
                    message=f"step {i} ({step.name!r}) reads {t!r}, which step "
                            f"{released[t]} already released"))
            elif t not in ever_defined:
                out.append(Finding(
                    "PL006", gname, op=step.name, tensor=t,
                    message=f"step {i} ({step.name!r}) reads {t!r}, which no "
                            f"graph input or earlier step defines"))
        for t in step.outputs:
            defined.add(t)
            ever_defined.add(t)
        for t in step.release:
            if t in released:
                out.append(Finding(
                    "PL002", gname, op=step.name, tensor=t,
                    message=f"step {i} ({step.name!r}) releases {t!r} a second "
                            f"time (first freed by step {released[t]})"))
                continue
            if t in outputs:
                out.append(Finding(
                    "PL005", gname, op=step.name, tensor=t,
                    message=f"step {i} ({step.name!r}) releases graph output {t!r}"))
            if last_read.get(t, -1) > i:
                out.append(Finding(
                    "PL001", gname, op=step.name, tensor=t,
                    message=f"step {i} ({step.name!r}) releases {t!r} before its "
                            f"last consumer (step {last_read[t]})"))
            released[t] = i
            defined.discard(t)

    if plan.liveness:
        for t in sorted(ever_defined):
            if t in outputs or t in released:
                continue
            if t not in last_read:
                continue  # never consumed: a dataflow problem (DF001), not liveness
            out.append(Finding(
                "PL004", gname, tensor=t,
                message=f"tensor {t!r} is consumed (last at step {last_read[t]}) "
                        f"but never released; it stays resident for the whole run"))
    out.extend(check_arena_layout(plan))
    return out
