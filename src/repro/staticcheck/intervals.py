"""Interval abstract domain for the value-range engine.

An :class:`Interval` is a closed, possibly unbounded interval ``[lo, hi]``
over the reals — the classic abstract-interpretation value domain. Every
per-op transfer function in :mod:`repro.graph.ops` (``infer_ranges``) maps
input intervals to output intervals such that *concrete execution is
contained*: if every concrete input lies inside its interval, every concrete
output lies inside the transferred interval. Soundness against floating-point
execution (not just real arithmetic) is obtained by explicit outward
widening: :meth:`Interval.pad_f32` covers per-element float32 rounding and
:func:`dot_error_bound` covers the accumulated error of a float32 reduction
of known length, so the proofs hold for the kernels as implemented, not for
an idealized real-valued machine.

The activation transfer table mirrors ``kernels.activations`` function by
function; non-monotonic activations (hard_swish, gelu) are handled via their
known stationary points rather than endpoint evaluation alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "Interval",
    "ACTIVATION_TRANSFERS",
    "activation_transfer",
    "dot_error_bound",
    "FP16_MAX",
    "FP16_SMALLEST_NORMAL",
]

# IEEE half-precision limits (the FP16 deployment path's hard ceiling/floor)
FP16_MAX = 65504.0
FP16_SMALLEST_NORMAL = 2.0 ** -14

# relative outward padding covering one float32 rounding step (2**-24 would
# be exact for a single rounding; the slack absorbs a couple of chained ones)
_F32_REL = 2.0 ** -20
# absolute floor so intervals around zero still absorb rounding of tiny sums
_F32_ABS = 1e-30

_INF = math.inf


def _lo_hi(a: float, b: float) -> tuple[float, float]:
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class Interval:
    """Closed interval ``[lo, hi]``; ``±inf`` endpoints mean unbounded."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        lo, hi = float(self.lo), float(self.hi)
        if math.isnan(lo) or math.isnan(hi):
            raise ValueError("interval endpoints must not be NaN")
        if lo > hi:
            raise ValueError(f"empty interval [{lo}, {hi}]")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    # -- constructors -------------------------------------------------------
    @classmethod
    def point(cls, v: float) -> "Interval":
        return cls(v, v)

    @classmethod
    def top(cls) -> "Interval":
        return cls(-_INF, _INF)

    @classmethod
    def of(cls, *values: float) -> "Interval":
        return cls(min(values), max(values))

    # -- predicates ---------------------------------------------------------
    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    @property
    def is_bounded(self) -> bool:
        return math.isfinite(self.lo) and math.isfinite(self.hi)

    @property
    def width(self) -> float:
        return self.hi - self.lo

    @property
    def max_abs(self) -> float:
        return max(abs(self.lo), abs(self.hi))

    def contains(self, other: "Interval | float", tol: float = 0.0) -> bool:
        if isinstance(other, Interval):
            return other.lo >= self.lo - tol and other.hi <= self.hi + tol
        return self.lo - tol <= other <= self.hi + tol

    # -- lattice ------------------------------------------------------------
    def hull(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def intersect(self, other: "Interval") -> "Interval":
        """Meet; if disjoint, collapses to the nearest point of ``other``.

        Disjointness arises when a clamp (quantization window, clip bounds)
        provably saturates: every concrete value then sits *at* the clamp
        boundary, which is exactly the collapsed point.
        """
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        if lo > hi:
            edge = other.hi if self.lo > other.hi else other.lo
            return Interval(edge, edge)
        return Interval(lo, hi)

    # -- arithmetic ---------------------------------------------------------
    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def shift(self, c: float) -> "Interval":
        return Interval(self.lo + c, self.hi + c)

    def scale(self, k: float) -> "Interval":
        a, b = _lo_hi(self.lo * k, self.hi * k)
        return Interval(a, b)

    def mul(self, other: "Interval") -> "Interval":
        corners = [
            self.lo * other.lo, self.lo * other.hi,
            self.hi * other.lo, self.hi * other.hi,
        ]
        corners = [0.0 if math.isnan(c) else c for c in corners]  # 0 * inf
        return Interval(min(corners), max(corners))

    def clip(self, lo: float, hi: float) -> "Interval":
        return Interval(
            min(max(self.lo, lo), hi), min(max(self.hi, lo), hi))

    def widen(self, delta: float) -> "Interval":
        """Outward widening by an absolute margin (rounding slack)."""
        return Interval(self.lo - delta, self.hi + delta)

    def pad_f32(self) -> "Interval":
        """Outward pad covering elementwise float32 rounding of any member."""
        return Interval(
            self.lo - abs(self.lo) * _F32_REL - _F32_ABS,
            self.hi + abs(self.hi) * _F32_REL + _F32_ABS,
        )

    def to_dict(self) -> dict:
        return {"lo": self.lo, "hi": self.hi}

    def __repr__(self) -> str:
        return f"[{self.lo:.6g}, {self.hi:.6g}]"


def dot_error_bound(k: int, magnitude: float) -> float:
    """Bound on |float32 dot − exact dot| for a length-``k`` reduction.

    Standard forward-error bound: ``|fl(Σ a_i) − Σ a_i| ≤ γ_k · Σ|a_i|``
    with ``γ_k = k·u / (1 − k·u)``, ``u = 2⁻²⁴``. ``magnitude`` must be an
    upper bound on ``Σ|a_i|`` (sum of absolute products plus |bias|).
    """
    if k <= 0 or magnitude == 0.0:
        return 0.0
    ku = (k + 1) * 2.0 ** -24
    if ku >= 0.5:  # absurdly long reduction; stay sound
        return magnitude
    return magnitude * ku / (1.0 - ku) + _F32_ABS


# -- activation transfers ----------------------------------------------------
#
# Each transfer mirrors the float kernel in kernels.activations. Monotone
# functions evaluate endpoints; non-monotone ones add their interior
# stationary points. All results are padded for float32 rounding.


def _sigmoid(x: float) -> float:
    if x >= 0:
        return 1.0 / (1.0 + math.exp(-x))
    e = math.exp(x)
    return e / (1.0 + e)


def _hard_sigmoid(x: float) -> float:
    return min(max(x + 3.0, 0.0), 6.0) / 6.0


def _hard_swish(x: float) -> float:
    if x <= -3.0:  # also avoids -inf * 0 = nan at the unbounded endpoint
        return 0.0
    return x * _hard_sigmoid(x)


def _gelu(x: float) -> float:
    # saturation guards: keep endpoints finite-math safe (x**3 overflows for
    # huge |x|, and ±inf would produce inf*0 = nan). The asymptotic values are
    # within pad_f32's relative/absolute slack of the true ones.
    if x >= 30.0:
        return x
    if x <= -12.0:
        return 0.0
    inner = math.sqrt(2.0 / math.pi) * (x + 0.044715 * x ** 3)
    return 0.5 * x * (1.0 + math.tanh(inner))


def _monotone(fn):
    def transfer(iv: Interval) -> Interval:
        return Interval.of(fn(iv.lo), fn(iv.hi)).pad_f32()
    return transfer


def _with_stationary_points(fn, points: tuple[float, ...]):
    """Transfer for a piecewise-smooth ``fn`` with known interior extrema."""
    def transfer(iv: Interval) -> Interval:
        candidates = [fn(iv.lo), fn(iv.hi)]
        for p in points:
            if iv.lo < p < iv.hi:
                candidates.append(fn(p))
        return Interval.of(*candidates).pad_f32()
    return transfer


def _relu(iv: Interval) -> Interval:
    return Interval(max(iv.lo, 0.0), max(iv.hi, 0.0))


def _relu6(iv: Interval) -> Interval:
    return iv.clip(0.0, 6.0)


def _sigmoid_t(iv: Interval) -> Interval:
    return Interval.of(_sigmoid(iv.lo), _sigmoid(iv.hi)).pad_f32().clip(0.0, 1.0)


def _tanh_t(iv: Interval) -> Interval:
    return Interval.of(math.tanh(iv.lo), math.tanh(iv.hi)).pad_f32().clip(-1.0, 1.0)


# hard_swish: f(x) = x·clip(x+3,0,6)/6 has its single interior minimum at
# x = −1.5 (f = −0.375); gelu (tanh form) has its minimum near x ≈ −0.7518
# (f ≈ −0.17). Both stationary points are included explicitly, with the gelu
# point bracketed generously because the tanh approximation shifts it.
ACTIVATION_TRANSFERS = {
    "relu": _relu,
    "relu6": _relu6,
    "hard_sigmoid": _monotone(_hard_sigmoid),
    "hard_swish": _with_stationary_points(_hard_swish, (-3.0, -1.5)),
    "sigmoid": _sigmoid_t,
    "tanh": _tanh_t,
    "gelu": _with_stationary_points(_gelu, (-0.8, -0.7518, -0.7, -2.0)),
}


def activation_transfer(kind: str | None, iv: Interval) -> Interval:
    """Apply an activation's interval transfer; identity when ``kind`` is None."""
    if kind is None:
        return iv
    return ACTIVATION_TRANSFERS[kind](iv)
