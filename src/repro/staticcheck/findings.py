"""Findings, the rule catalog and suppression baselines.

Every analyzer in :mod:`repro.staticcheck` emits machine-readable
:class:`Finding` records — ``rule_id``, severity, op/tensor location and a
human message — the way the MLPerf submission checker reports violations.
The catalog below is the single source of truth for rule ids and their
default severities; analyzers must not invent ids outside it.
"""

from __future__ import annotations

import enum
import json
import pathlib
from dataclasses import dataclass, field

__all__ = [
    "Severity",
    "Rule",
    "RULE_CATALOG",
    "Finding",
    "Report",
    "Baseline",
    "RULESET_VERSION",
]

# bump when rule semantics change: attestations record the ruleset they
# were produced under, so stale "verified" stamps are detectable
RULESET_VERSION = 3


class Severity(enum.Enum):
    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"info": 0, "warning": 1, "error": 2}[self.value]

    @classmethod
    def parse(cls, value: "str | Severity") -> "Severity":
        if isinstance(value, Severity):
            return value
        return cls(value.lower())


@dataclass(frozen=True)
class Rule:
    rule_id: str
    severity: Severity
    family: str  # "dataflow" | "quantization" | "placement" | "plan" | "ranges"
    title: str
    proves: str  # the invariant a clean pass establishes


_E, _W, _I = Severity.ERROR, Severity.WARNING, Severity.INFO

RULE_CATALOG: dict[str, Rule] = {r.rule_id: r for r in [
    # -- typed dataflow verifier ------------------------------------------
    Rule("DF001", _E, "dataflow", "dangling tensor",
         "every produced tensor is consumed downstream or is a graph output"),
    Rule("DF002", _W, "dataflow", "dead op",
         "every op contributes (transitively) to at least one graph output"),
    Rule("DF003", _W, "dataflow", "unused parameter",
         "every parameter is referenced by at least one op"),
    Rule("DF004", _E, "dataflow", "duplicate producer",
         "every tensor has exactly one producing op (or is a graph input)"),
    Rule("DF005", _E, "dataflow", "unreachable output",
         "every declared output is actually produced by the graph"),
    Rule("DF006", _E, "dataflow", "shape disagreement",
         "an independent whole-graph shape inference pass reproduces every "
         "recorded tensor shape (double-entry against op.infer_shapes)"),
    Rule("DF007", _E, "dataflow", "numerics mismatch",
         "every data tensor carries the graph's numerics tag"),
    Rule("DF008", _E, "dataflow", "duplicate op name",
         "op names are unique (they key profiles, plans and placements)"),
    Rule("DF009", _E, "dataflow", "missing parameter",
         "every parameter an op references exists in the graph"),
    Rule("DF010", _E, "dataflow", "parameter shadows input",
         "parameter names never collide with input tensor names"),
    Rule("DF011", _W, "dataflow", "unverifiable op",
         "every op type has an independent shape rule in the verifier"),
    # -- quantization soundness analyzer ----------------------------------
    Rule("QS001", _E, "quantization", "int32 accumulator overflow",
         "no integer kernel's accumulator can exceed int32 under worst-case "
         "inputs (static interval bound over the reduction)"),
    Rule("QS002", _E, "quantization", "degenerate scale",
         "every quantization scale is finite and within sane magnitude"),
    Rule("QS003", _E, "quantization", "zero point out of range",
         "every zero point is representable in its integer format"),
    Rule("QS004", _W, "quantization", "requantization clipping",
         "concat inputs fit the shared output domain; add operands have "
         "commensurate scales (no silent saturation or precision collapse)"),
    Rule("QS005", _W, "quantization", "integer op falls back to float",
         "every integer-kernel-capable op inside a quantized graph has the "
         "qparams its integer kernel needs (no silent float fallback)"),
    Rule("QS006", _E, "quantization", "bias scale drift",
         "int32 bias scales equal input_scale * weight_scale exactly"),
    Rule("QS007", _W, "quantization", "missing activation qparams",
         "every data tensor in a quantized graph carries qparams"),
    # -- backend placement predictor ---------------------------------------
    Rule("BP001", _E, "placement", "unschedulable op",
         "every op can execute somewhere on the SoC (at least the CPU)"),
    Rule("BP002", _W, "placement", "primary engine rejects numerics",
         "the requested numerics actually runs on the primary engine "
         "(otherwise the whole graph silently falls back)"),
    Rule("BP003", _W, "placement", "excessive fragmentation",
         "predicted partition count stays below the fragmentation budget"),
    Rule("BP004", _W, "placement", "fallback dominates compute",
         "the primary engine keeps the majority of the graph's MACs"),
    # -- plan consistency checker ------------------------------------------
    Rule("PL001", _E, "plan", "tensor released before last use",
         "no buffer is freed before its final consumer has run"),
    Rule("PL002", _E, "plan", "double release",
         "every tensor is released at most once"),
    Rule("PL003", _E, "plan", "unbound dispatch",
         "every planned step carries a callable kernel closure"),
    Rule("PL004", _W, "plan", "leaked intermediate",
         "liveness-enabled plans release every non-output intermediate"),
    Rule("PL005", _E, "plan", "graph output released",
         "no declared graph output is ever freed by the schedule"),
    Rule("PL006", _E, "plan", "read of undefined tensor",
         "every step reads only graph inputs or earlier steps' outputs"),
    Rule("PL007", _E, "plan", "arena slot collision",
         "no two arena slots with overlapping live intervals (replayed "
         "independently from the step list, alias lifetimes folded in) "
         "share bytes in the same arena, and every slot holds the spec-"
         "derived size of its tensor"),
    # -- value-range engine (abstract interpretation) ----------------------
    Rule("VR001", _E, "ranges", "range-aware accumulator overflow",
         "no integer kernel's accumulator can exceed int32 given the *proven* "
         "input interval (tighter than QS001's format-worst-case assumption)"),
    Rule("VR002", _W, "ranges", "requantization clipping risk",
         "every quantized tensor's proven pre-quantization interval fits its "
         "QuantParams' representable range (the tensor can never clip)"),
    Rule("VR003", _I, "ranges", "calibration under-coverage",
         "every calibrated range covers a meaningful fraction of the proven "
         "reachable interval (narrow calibration clips silently in deployment)"),
    Rule("VR004", _W, "ranges", "fp16 overflow",
         "no tensor on the FP16 path can exceed the 65504 half-precision "
         "ceiling (cast would produce inf)"),
    Rule("VR005", _I, "ranges", "fp16 denormal underflow",
         "no tensor on the FP16 path is confined below the smallest normal "
         "half-precision magnitude (values collapse to denormals/zero)"),
    Rule("VR006", _W, "ranges", "dead activation",
         "no activation's output interval collapses to a constant while its "
         "input still varies (the op contributes nothing but latency)"),
]}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    rule_id: str
    graph: str
    message: str
    op: str | None = None
    tensor: str | None = None
    details: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.rule_id not in RULE_CATALOG:
            raise KeyError(f"unknown rule id {self.rule_id!r}")

    @property
    def rule(self) -> Rule:
        return RULE_CATALOG[self.rule_id]

    @property
    def severity(self) -> Severity:
        return self.rule.severity

    @property
    def location(self) -> str:
        if self.op and self.tensor:
            return f"{self.op}/{self.tensor}"
        return self.op or self.tensor or "<graph>"

    def key(self) -> str:
        """Stable suppression key (used by baseline files)."""
        return f"{self.rule_id}::{self.graph}::{self.location}"

    def to_dict(self) -> dict:
        return {
            "rule_id": self.rule_id,
            "severity": self.severity.value,
            "graph": self.graph,
            "op": self.op,
            "tensor": self.tensor,
            "message": self.message,
            "details": dict(self.details),
        }

    def render(self) -> str:
        return (f"{self.severity.value.upper():7s} {self.rule_id} "
                f"[{self.graph}::{self.location}] {self.message}")


class Report:
    """Findings plus per-analyzer metrics for one verification run."""

    def __init__(self, subject: str):
        self.subject = subject
        self.findings: list[Finding] = []
        self.metrics: dict[str, object] = {}
        self.suppressed: list[Finding] = []

    def extend(self, findings: list[Finding]) -> None:
        self.findings.extend(findings)

    def apply_baseline(self, baseline: "Baseline | None") -> None:
        if baseline is None:
            return
        keep, gone = [], []
        for f in self.findings:
            (gone if baseline.suppresses(f) else keep).append(f)
        self.findings = keep
        self.suppressed.extend(gone)

    def at_least(self, level: Severity) -> list[Finding]:
        return [f for f in self.findings if f.severity.rank >= level.rank]

    @property
    def errors(self) -> list[Finding]:
        return self.at_least(Severity.ERROR)

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "subject": self.subject,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "metrics": self.metrics,
        }

    def render_text(self) -> str:
        lines = [f"== {self.subject}: "
                 f"{len(self.findings)} finding(s)"
                 + (f", {len(self.suppressed)} suppressed" if self.suppressed else "")]
        for f in self.findings:
            lines.append("  " + f.render())
        return "\n".join(lines)


class Baseline:
    """A suppression file: known, accepted findings that must not gate CI.

    The file is a JSON object mapping suppression keys (``Finding.key()``)
    to a free-form reason string — the same shape as a lint baseline in any
    large codebase: new findings fail, grandfathered ones are listed.
    """

    def __init__(self, entries: dict[str, str] | None = None):
        self.entries: dict[str, str] = dict(entries or {})

    def suppresses(self, finding: Finding) -> bool:
        return finding.key() in self.entries

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "Baseline":
        raw = json.loads(pathlib.Path(path).read_text())
        if not isinstance(raw, dict):
            raise ValueError(f"baseline {path} must be a JSON object")
        return cls({str(k): str(v) for k, v in raw.items()})

    @classmethod
    def from_findings(cls, findings: list[Finding], reason: str = "baselined") -> "Baseline":
        return cls({f.key(): reason for f in findings})

    def save(self, path: str | pathlib.Path) -> None:
        pathlib.Path(path).write_text(
            json.dumps(self.entries, indent=2, sort_keys=True) + "\n"
        )
