"""Typed dataflow verifier (rules DF001–DF011).

Runs a *second*, independent whole-graph shape inference over the op list —
its own per-op-type arithmetic, deliberately not calling
``op.infer_shapes`` — and double-enters the result against the shapes the
builder recorded. A disagreement means either the builder's inference or
this verifier is wrong; both reading the same answer is the static analogue
of double-entry bookkeeping. On top of that it checks pure connectivity
invariants: dangling tensors, dead ops, unused params, duplicate producers
and unreachable outputs.
"""

from __future__ import annotations

from ..graph.graph import Graph
from ..graph.ops import Op
from .findings import Finding

__all__ = ["check_dataflow", "independent_shapes"]

_DATA_ROLES = ("data",)  # ids/mask tensors keep their own numerics by design


# -- independent shape rules --------------------------------------------------
#
# Each rule maps (op, input shapes, graph) -> output shapes using only op
# attrs and parameter shapes. Batch dims are symbolic (-1) and preserved.


def _conv_spatial(h: int, w: int, kh: int, kw: int, stride: int, padding: str,
                  dilation: int = 1) -> tuple[int, int]:
    ekh = (kh - 1) * dilation + 1
    ekw = (kw - 1) * dilation + 1
    if padding == "same":
        return (h + stride - 1) // stride, (w + stride - 1) // stride
    if padding == "valid":
        return (h - ekh) // stride + 1, (w - ekw) // stride + 1
    raise ValueError(f"unknown padding mode {padding!r}")


def _rule_conv2d(op, ins, g):
    n, h, w, _ = ins[0]
    kh, kw, _, cout = g.param_shape(op.attrs["weight"])
    oh, ow = _conv_spatial(h, w, kh, kw, op.attrs["stride"], op.attrs["padding"],
                           op.attrs.get("dilation", 1))
    return [(n, oh, ow, cout)]


def _rule_depthwise(op, ins, g):
    n, h, w, c = ins[0]
    kh, kw, _, _ = g.param_shape(op.attrs["weight"])
    oh, ow = _conv_spatial(h, w, kh, kw, op.attrs["stride"], op.attrs["padding"])
    return [(n, oh, ow, c)]


def _rule_fc(op, ins, g):
    _, fout = g.param_shape(op.attrs["weight"])
    return [ins[0][:-1] + (fout,)]


def _rule_pool(op, ins, g):
    n, h, w, c = ins[0]
    k = op.attrs["k"]
    oh, ow = _conv_spatial(h, w, k, k, op.attrs["stride"], op.attrs["padding"])
    return [(n, oh, ow, c)]


def _rule_global_pool(op, ins, g):
    n, _, _, c = ins[0]
    return [(n, 1, 1, c)] if op.attrs.get("keepdims", True) else [(n, c)]


def _rule_resize(op, ins, g):
    n, _, _, c = ins[0]
    return [(n, op.attrs["out_h"], op.attrs["out_w"], c)]


def _rule_elementwise(op, ins, g):
    return [ins[0]]


def _rule_concat(op, ins, g):
    axis = op.attrs["axis"]
    out = list(ins[0])
    out[axis] = sum(s[axis] for s in ins)
    return [tuple(out)]


def _rule_reshape(op, ins, g):
    return [(ins[0][0],) + tuple(op.attrs["shape"])]


def _rule_attention(op, ins, g):
    return [ins[0]]


def _rule_embedding(op, ins, g):
    n, s = ins[0]
    _, d = g.param_shape(op.attrs["table"])
    return [(n, s, d)]


def _rule_split(op, ins, g):
    parts = op.attrs["parts"]
    return [ins[0][:-1] + (ins[0][-1] // parts,)] * parts


def _rule_lstm(op, ins, g):
    n, t, _ = ins[0]
    hidden = g.param_shape(op.attrs["w_hh"])[0]
    return [(n, t, hidden)]


def _rule_depth_to_space(op, ins, g):
    n, h, w, c = ins[0]
    b = op.attrs["block"]
    return [(n, h * b, w * b, c // (b * b))]


def _rule_constant(op, ins, g):
    return [(-1,) + g.param_shape(op.attrs["value"])]


def _rule_pad(op, ins, g):
    n, h, w, c = ins[0]
    t, b = op.attrs["pads_h"]
    left, r = op.attrs["pads_w"]
    return [(n, h + t + b, w + left + r, c)]


_SHAPE_RULES = {
    "conv2d": _rule_conv2d,
    "depthwise_conv2d": _rule_depthwise,
    "fully_connected": _rule_fc,
    "avg_pool2d": _rule_pool,
    "max_pool2d": _rule_pool,
    "global_avg_pool": _rule_global_pool,
    "resize_bilinear": _rule_resize,
    "add": _rule_elementwise,
    "activation": _rule_elementwise,
    "softmax": _rule_elementwise,
    "batch_norm": _rule_elementwise,
    "layer_norm": _rule_elementwise,
    "concat": _rule_concat,
    "reshape": _rule_reshape,
    "attention": _rule_attention,
    "embedding": _rule_embedding,
    "split": _rule_split,
    "lstm": _rule_lstm,
    "depth_to_space": _rule_depth_to_space,
    "constant": _rule_constant,
    "pad": _rule_pad,
}


def independent_shapes(graph: Graph) -> tuple[dict[str, tuple[int, ...]], list[Op]]:
    """Re-infer every tensor shape from the inputs forward.

    Returns ``(shapes, unverifiable)`` where ``unverifiable`` lists ops with
    no independent rule (their outputs — and anything downstream of them —
    are left out of the double-entry comparison).
    """
    shapes: dict[str, tuple[int, ...]] = {s.name: tuple(s.shape) for s in graph.inputs}
    unverifiable: list[Op] = []
    for op in graph.ops:
        rule = _SHAPE_RULES.get(op.op_type)
        if rule is None or any(t not in shapes for t in op.inputs):
            unverifiable.append(op)
            continue
        try:
            outs = rule(op, [shapes[t] for t in op.inputs], graph)
        except Exception:
            unverifiable.append(op)
            continue
        for t, shape in zip(op.outputs, outs):
            shapes[t] = tuple(int(d) for d in shape)
    return shapes, unverifiable


def check_dataflow(graph: Graph) -> list[Finding]:
    """Rules DF001–DF011 over one graph (materialized or symbolic)."""
    out: list[Finding] = []
    gname = graph.name
    input_names = {s.name for s in graph.inputs}
    outputs = set(graph.output_names)

    # DF008 duplicate op names / DF004 duplicate producers / DF009 missing params
    seen_ops: set[str] = set()
    producers: dict[str, str] = {}
    for op in graph.ops:
        if op.name in seen_ops:
            out.append(Finding("DF008", gname, op=op.name,
                               message=f"op name {op.name!r} defined more than once"))
        seen_ops.add(op.name)
        for t in op.outputs:
            if t in producers or t in input_names:
                prev = producers.get(t, "<graph input>")
                out.append(Finding(
                    "DF004", gname, op=op.name, tensor=t,
                    message=f"tensor {t!r} produced by both {prev!r} and {op.name!r}"))
            producers[t] = op.name
        for p in op.param_names():
            if p not in graph.params:
                out.append(Finding(
                    "DF009", gname, op=op.name,
                    message=f"op {op.name!r} ({op.op_type}) references missing "
                            f"parameter {p!r}"))

    # DF010 parameter shadows input
    for p in graph.params:
        if p in input_names:
            out.append(Finding(
                "DF010", gname, tensor=p,
                message=f"parameter {p!r} shadows the graph input of the same name"))

    # DF005 unreachable outputs
    for name in graph.output_names:
        if name not in producers and name not in input_names:
            out.append(Finding(
                "DF005", gname, tensor=name,
                message=f"declared output {name!r} is never produced"))

    # DF001 dangling tensors (produced, never consumed, not an output)
    consumed = {t for op in graph.ops for t in op.inputs}
    for op in graph.ops:
        for t in op.outputs:
            if t not in consumed and t not in outputs:
                out.append(Finding(
                    "DF001", gname, op=op.name, tensor=t,
                    message=f"tensor {t!r} (produced by {op.name!r}) is never "
                            f"consumed and is not a graph output"))

    # DF002 dead ops: backward reachability from the outputs
    live_tensors = set(graph.output_names)
    for op in reversed(graph.ops):
        if any(t in live_tensors for t in op.outputs):
            live_tensors.update(op.inputs)
    for op in graph.ops:
        if not any(t in live_tensors for t in op.outputs):
            out.append(Finding(
                "DF002", gname, op=op.name,
                message=f"op {op.name!r} ({op.op_type}) contributes to no graph output"))

    # DF003 unused parameters
    used_params = {p for op in graph.ops for p in op.param_names()}
    for p in graph.params:
        if p not in used_params:
            out.append(Finding(
                "DF003", gname, tensor=p,
                message=f"parameter {p!r} is referenced by no op"))

    # DF006 double-entry shape inference / DF011 coverage
    shapes, unverifiable = independent_shapes(graph)
    for op in unverifiable:
        if op.op_type not in _SHAPE_RULES:
            out.append(Finding(
                "DF011", gname, op=op.name,
                message=f"op {op.name!r} has type {op.op_type!r} with no "
                        f"independent shape rule; its shapes are unverified"))
    for name, shape in shapes.items():
        spec = graph.tensor_specs.get(name)
        if spec is None:
            continue  # already reported via connectivity rules
        if tuple(spec.shape) != shape:
            out.append(Finding(
                "DF006", gname, tensor=name, op=producers.get(name),
                message=f"recorded shape {tuple(spec.shape)} of {name!r} "
                        f"disagrees with independent inference {shape}",
                details={"recorded": list(spec.shape), "inferred": list(shape)}))

    # DF007 numerics tags
    for name, spec in graph.tensor_specs.items():
        if spec.role in _DATA_ROLES and spec.numerics != graph.numerics:
            out.append(Finding(
                "DF007", gname, tensor=name,
                message=f"tensor {name!r} tagged {spec.numerics.value} inside a "
                        f"{graph.numerics.value} graph"))
    return out
