"""Backend placement predictor (rules BP001–BP004).

Re-derives, from the op list alone, how each vendor runtime would partition
a graph across an SoC's engines — which ops fall back to the CPU, how many
contiguous segments result, and what the boundary synchronization costs.
This is the Table-3 delegate-gap story turned into a lint: the decision
procedure here is written independently of :func:`repro.hardware.scheduler
.partition_graph` (same op-support ground truth, separately implemented
placement logic) and a test cross-checks the two op-by-op.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..backends.vendors import BACKEND_FACTORIES
from ..graph.graph import Graph
from ..hardware.accelerator import OP_SUPPORT, AcceleratorSpec
from ..hardware.scheduler import FrameworkProfile
from ..hardware.soc import SOC_CATALOG, SoCSpec
from ..kernels.numerics import Numerics
from .findings import Finding

__all__ = [
    "PlacementPrediction",
    "predict_op_targets",
    "predict_placement",
    "check_placement",
    "sweep_vendor_placements",
]

# engines with fixed-function compilers: driver op exclusions and dilated
# convolutions keep work off these even when the raw hardware could manage
_FIXED_FUNCTION = frozenset({"npu", "apu", "dsp", "hta", "hvx", "ane"})

# more segments than this on one graph means the placement is shredded into
# confetti and boundary sync will dominate (paper Insight 4); the zoo's worst
# honest case (ENN v0.7 concat exclusion on DeepLab) stays well under it
_MAX_SEGMENTS = 24

# the primary engine should keep the bulk of the arithmetic
_MIN_PRIMARY_MAC_FRACTION = 0.5


@dataclass
class PlacementPrediction:
    """Statically predicted partition of one graph under one runtime."""

    backend: str
    soc: str
    task: str
    numerics: Numerics
    primary: str
    op_targets: list[tuple[str, str]]  # (op name, accelerator name)
    segments: list[tuple[str, list[str]]]  # (accelerator name, op names)
    fallback_ops: list[str] = field(default_factory=list)  # ops not on primary
    fallback_op_types: list[str] = field(default_factory=list)
    primary_mac_fraction: float = 1.0
    boundary_sync_ms: float = 0.0

    @property
    def partition_count(self) -> int:
        return len(self.segments)

    @property
    def num_boundaries(self) -> int:
        return max(len(self.segments) - 1, 0)

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "soc": self.soc,
            "task": self.task,
            "numerics": self.numerics.value,
            "primary": self.primary,
            "partition_count": self.partition_count,
            "segments": [{"accelerator": acc, "ops": ops} for acc, ops in self.segments],
            "fallback_ops": list(self.fallback_ops),
            "fallback_op_types": list(self.fallback_op_types),
            "primary_mac_fraction": round(self.primary_mac_fraction, 4),
            "boundary_sync_ms": round(self.boundary_sync_ms, 4),
        }


def _eligible(op, acc: AcceleratorSpec, excluded: frozenset[str]) -> bool:
    """Can this engine's compiler take this op? (independent re-derivation)"""
    if op.op_type not in OP_SUPPORT[acc.kind]:
        return False
    if acc.kind in _FIXED_FUNCTION:
        if op.op_type in excluded:
            return False
        if op.attrs.get("dilation", 1) > 1:
            return False
    return True


def predict_op_targets(
    graph: Graph,
    primary: AcceleratorSpec,
    fallback: AcceleratorSpec,
    numerics: Numerics,
    secondary: AcceleratorSpec | None = None,
    excluded_ops: frozenset[str] = frozenset(),
) -> list[tuple[str, AcceleratorSpec]]:
    """Predict the engine every op lands on, in execution order.

    Placement policy, re-derived from first principles: an op goes to the
    primary engine when the engine both runs the model's numeric format
    natively (no silent FP32→FP16 down-conversion) and compiles the op;
    otherwise to the secondary (which may up-convert to FP16); otherwise to
    the CPU fallback.
    """
    primary_usable = numerics in primary.effective_tops
    secondary_usable = secondary is not None and (
        numerics in secondary.effective_tops
        or Numerics.FP16 in secondary.effective_tops
    )
    targets: list[tuple[str, AcceleratorSpec]] = []
    for op in graph.ops:
        if primary_usable and _eligible(op, primary, excluded_ops):
            acc = primary
        elif secondary_usable and _eligible(op, secondary, excluded_ops):
            acc = secondary
        else:
            acc = fallback
        targets.append((op.name, acc))
    return targets


def predict_placement(
    graph: Graph,
    *,
    backend: str,
    task: str,
    numerics: Numerics,
    soc: SoCSpec,
    primary: AcceleratorSpec,
    fallback: AcceleratorSpec,
    secondary: AcceleratorSpec | None = None,
    framework: FrameworkProfile | None = None,
) -> PlacementPrediction:
    """Full static placement: targets, segments, MAC split, boundary cost."""
    targets = predict_op_targets(
        graph, primary, fallback, numerics, secondary,
        framework.unsupported_ops if framework else frozenset())
    target_of = dict(targets)

    segments: list[tuple[str, list[str]]] = []
    for name, acc in targets:
        if not segments or segments[-1][0] != acc.name:
            segments.append((acc.name, []))
        segments[-1][1].append(name)

    costs = list(graph.op_costs(numerics))
    total_macs = sum(cost.macs for _op, cost in costs)
    primary_macs = sum(cost.macs for op, cost in costs
                       if target_of[op.name].name == primary.name)

    # boundary cost: every hop pays the runtime's HAL sync; hops between two
    # non-CPU engines add the SoC IP-block sync plus the interconnect transfer
    # of the activations entering the new segment
    per_boundary = framework.per_boundary_ms if framework else 0.0
    sync_ms = 0.0
    prev: AcceleratorSpec | None = None
    for op, _cost in costs:
        acc = target_of[op.name]
        if prev is not None and acc.name != prev.name:
            sync_ms += per_boundary
            if prev.kind != "cpu" and acc.kind != "cpu":
                sync_ms += soc.segment_sync_ms
                in_bytes = sum(
                    graph.spec(t).elements_per_sample * numerics.bytes_per_element
                    for t in op.inputs
                )
                sync_ms += in_bytes / (soc.interconnect_gbps * 1e9) * 1e3
        prev = acc

    fallback_ops = [name for name, acc in targets if acc.name != primary.name]
    fallback_types = sorted({
        op.op_type for op in graph.ops if op.name in set(fallback_ops)
    })
    return PlacementPrediction(
        backend=backend, soc=soc.name, task=task, numerics=numerics,
        primary=primary.name,
        op_targets=[(name, acc.name) for name, acc in targets],
        segments=segments,
        fallback_ops=fallback_ops,
        fallback_op_types=fallback_types,
        primary_mac_fraction=(primary_macs / total_macs) if total_macs else 1.0,
        boundary_sync_ms=sync_ms,
    )


def check_placement(graph: Graph, prediction: PlacementPrediction,
                    soc: SoCSpec) -> list[Finding]:
    """Rules BP001–BP004 for one (graph, backend, SoC) placement."""
    out: list[Finding] = []
    gname = graph.name
    ctx = f"[{prediction.backend}@{prediction.soc}]"

    # the CPU fallback takes any op the framework implements (partitioning
    # never rejects the fallback target), so only op types no engine class
    # has ever heard of — or batch norms the scheduler refuses — are fatal
    known_op_types = set().union(*OP_SUPPORT.values())
    for op in graph.ops:
        if op.op_type == "batch_norm":
            out.append(Finding(
                "BP001", gname, op=op.name,
                message=f"{ctx} op {op.name!r} is an unfolded batch_norm; the "
                        f"scheduler refuses unexported graphs"))
        elif op.op_type not in known_op_types:
            out.append(Finding(
                "BP001", gname, op=op.name,
                message=f"{ctx} op {op.name!r} has unknown type {op.op_type!r}; "
                        f"no engine class implements it"))

    primary_acc = soc.accelerator(prediction.primary)
    if prediction.numerics not in primary_acc.effective_tops:
        out.append(Finding(
            "BP002", gname,
            message=f"{ctx} primary engine {prediction.primary!r} does not run "
                    f"{prediction.numerics.value}; the whole graph silently "
                    f"falls back"))

    if prediction.partition_count > _MAX_SEGMENTS:
        out.append(Finding(
            "BP003", gname,
            message=f"{ctx} graph fragments into {prediction.partition_count} "
                    f"segments (budget {_MAX_SEGMENTS}); boundary sync "
                    f"~{prediction.boundary_sync_ms:.2f} ms will dominate",
            details={"partition_count": prediction.partition_count,
                     "budget": _MAX_SEGMENTS}))

    if (primary_acc.kind != "cpu"
            and prediction.primary_mac_fraction < _MIN_PRIMARY_MAC_FRACTION):
        out.append(Finding(
            "BP004", gname,
            message=f"{ctx} primary engine {prediction.primary!r} keeps only "
                    f"{prediction.primary_mac_fraction:.0%} of the MACs; "
                    f"fallback ops dominate compute "
                    f"(types: {', '.join(prediction.fallback_op_types)})",
            details={"primary_mac_fraction": prediction.primary_mac_fraction}))
    return out


def sweep_vendor_placements(
    graph: Graph, numerics: Numerics
) -> tuple[list[Finding], list[PlacementPrediction]]:
    """Predict this graph's placement under every applicable vendor profile.

    A profile applies when the backend supports the graph's task *and* runs
    it in the graph's numeric format (each numerics variant of a model is
    linted against the runtimes that would actually ship it).
    """
    task = str(graph.metadata.get("task", "unknown"))
    findings: list[Finding] = []
    predictions: list[PlacementPrediction] = []
    for backend_name, factory in sorted(BACKEND_FACTORIES.items()):
        for soc_name, soc in sorted(SOC_CATALOG.items()):
            config = factory(soc)
            if config.vendor is not None and config.vendor != soc.vendor:
                continue
            if config.vendor is None and soc.name != "snapdragon_888":
                continue  # vendor-neutral CPU backends: one SoC is representative
            cfg = config.tasks.get(task)
            if cfg is None or cfg.numerics != numerics:
                continue
            framework = cfg.framework or config.framework
            prediction = predict_placement(
                graph,
                backend=backend_name, task=task, numerics=numerics, soc=soc,
                primary=soc.accelerator(cfg.primary),
                fallback=soc.accelerator("cpu"),
                secondary=soc.accelerator(cfg.secondary) if cfg.secondary else None,
                framework=framework,
            )
            findings.extend(check_placement(graph, prediction, soc))
            predictions.append(prediction)
    return findings, predictions
