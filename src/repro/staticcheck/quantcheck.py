"""Quantization soundness analyzer (rules QS001–QS007).

Static value-range analysis over INT8/UINT8 graphs. The central proof is
QS001: for every integer-kernel op (conv / depthwise / fully-connected) the
worst-case accumulator magnitude is bounded *statically* — quantized
activations are confined to their format's ``[qmin, qmax]`` by construction,
so the reduction

    acc = sum_K (x_q - zx) * (w_q - zw) + bias

is bounded by ``max|x_q - zx| * sum_K |w_q - zw| + |bias|`` using the actual
quantized weights (and by the format-worst-case when the graph is symbolic).
The bound must clear int32 — the accumulator width every mobile NPU/DSP
commits to — including the zero-point-corrected decomposition real kernels
compute (raw dot product plus correction terms), whose partial sums can
exceed the mathematical accumulator.
"""

from __future__ import annotations

import numpy as np

from ..graph.graph import Graph
from ..graph.ops import Activation, Add, Concat, Conv2D, DepthwiseConv2D, FullyConnected
from ..kernels.numerics import QuantParams
from .findings import Finding

__all__ = ["check_quantization", "accumulator_bound"]

_INT32_MAX = 2**31 - 1
_SKIP_ROLES = {"ids", "mask"}

# scales outside this window mean a degenerate calibration or a corrupted
# qparam, not a real activation distribution
_SCALE_LO, _SCALE_HI = 1e-12, 1e6

# an add operand whose scale is this many times coarser than its partner's
# collapses the finer operand to a handful of codes after requantization
_ADD_SCALE_RATIO = 64.0


def _real_range(qp: QuantParams) -> tuple[float, float]:
    """The representable real-value interval of a quantized domain."""
    return qp.representable_range()


def _reduction_size(op, graph: Graph) -> int:
    w_shape = graph.param_shape(op.attrs["weight"])
    if isinstance(op, DepthwiseConv2D):
        kh, kw, _, _ = w_shape
        return kh * kw
    if isinstance(op, Conv2D):
        kh, kw, cin, _ = w_shape
        return kh * kw * cin
    return w_shape[0]  # fully connected: (in, out)


def accumulator_bound(op, graph: Graph,
                      x_interval: tuple[int, int] | None = None) -> int:
    """Worst-case |int32 accumulator| for one integer-kernel op.

    Uses the actual quantized weights when materialized (interval arithmetic
    over the real reduction), the format worst case when symbolic. The bound
    covers both the mathematical accumulator and the zero-point-corrected
    decomposition (raw dot + zx*colsum correction) that real integer kernels
    evaluate, whose intermediate terms can be larger.

    ``x_interval`` optionally narrows the input codes from the format's full
    ``[qmin, qmax]`` to a proven integer interval (the range engine's VR001
    tightening); it is intersected with the format window, so the result
    never exceeds the format-worst-case bound.
    """
    x_qp = graph.spec(op.inputs[0]).qparams
    w_qp = graph.param_qparams.get(op.attrs["weight"])
    x_num = x_qp.numerics if x_qp is not None else graph.numerics
    x_lo, x_hi = x_num.qmin, x_num.qmax
    if x_interval is not None:
        x_lo = min(max(int(x_interval[0]), x_lo), x_hi)
        x_hi = max(min(int(x_interval[1]), x_hi), x_lo)
    zx = int(x_qp.zero_point[0]) if x_qp is not None else 0
    x_dev = max(abs(x_hi - zx), abs(zx - x_lo))  # max |x_q - zx|
    x_raw = max(abs(x_lo), abs(x_hi))            # max |x_q|

    k = _reduction_size(op, graph)
    wq = graph.params.get(op.attrs["weight"])
    if wq is not None and w_qp is not None:
        w = wq.astype(np.int64)
        zw = w_qp.zero_point
        if isinstance(op, DepthwiseConv2D):
            # reduction is over (kh, kw) per channel; zw broadcasts on axis 2
            centered = np.abs(w - zw.reshape(1, 1, -1, 1)) if w_qp.per_channel \
                else np.abs(w - int(zw[0]))
            w_centered_sum = int(centered.sum(axis=(0, 1, 3)).max())
            w_raw_sum = int(np.abs(w).sum(axis=(0, 1, 3)).max())
            raw_colsum = int(np.abs(w.sum(axis=(0, 1, 3))).max())
        else:
            axis = 3 if isinstance(op, Conv2D) else 1
            flat = w.reshape(-1, w.shape[axis]) if axis == w.ndim - 1 else w
            zw_row = zw.reshape(1, -1) if w_qp.per_channel else int(zw[0])
            w_centered_sum = int(np.abs(flat - zw_row).sum(axis=0).max())
            w_raw_sum = int(np.abs(flat).sum(axis=0).max())
            raw_colsum = int(np.abs(flat.sum(axis=0)).max())
    else:
        w_num = w_qp.numerics if w_qp is not None else graph.numerics
        w_abs = max(abs(w_num.qmin), abs(w_num.qmax))
        w_centered_sum = w_raw_sum = k * w_abs
        raw_colsum = k * w_abs

    bias_abs = 0
    b_name = op.attrs.get("bias")
    if b_name and graph.params.get(b_name) is not None:
        bias_abs = int(np.abs(graph.params[b_name].astype(np.int64)).max())

    mathematical = x_dev * w_centered_sum + bias_abs
    # kernel decomposition: raw dot x_q.w_q, then -zx*colsum(w) correction
    decomposition = x_raw * w_raw_sum + abs(zx) * raw_colsum + bias_abs
    return max(mathematical, decomposition)


def _check_qparams(qp: QuantParams, gname: str, where: str, *, op=None,
                   tensor=None) -> list[Finding]:
    out: list[Finding] = []
    scales = np.asarray(qp.scale, dtype=np.float64)
    if not np.all(np.isfinite(scales)) or scales.min() < _SCALE_LO or scales.max() > _SCALE_HI:
        out.append(Finding(
            "QS002", gname, op=op, tensor=tensor,
            message=f"{where}: scale {scales.min():.3e}..{scales.max():.3e} is "
                    f"degenerate (outside [{_SCALE_LO:g}, {_SCALE_HI:g}])"))
    zp = qp.zero_point
    qmin, qmax = qp.numerics.qmin, qp.numerics.qmax
    if zp.min() < qmin or zp.max() > qmax:
        out.append(Finding(
            "QS003", gname, op=op, tensor=tensor,
            message=f"{where}: zero point {int(zp.min())}..{int(zp.max())} outside "
                    f"{qp.numerics.value} range [{qmin}, {qmax}]"))
    return out


def check_quantization(graph: Graph) -> list[Finding]:
    """Rules QS001–QS007 over one quantized graph."""
    if not graph.numerics.is_quantized:
        return []
    out: list[Finding] = []
    gname = graph.name

    # QS002/QS003 over every activation and parameter qparam; QS007 coverage
    for name, spec in graph.tensor_specs.items():
        if spec.role in _SKIP_ROLES:
            continue
        if spec.qparams is None:
            out.append(Finding(
                "QS007", gname, tensor=name,
                message=f"data tensor {name!r} carries no qparams in a "
                        f"{graph.numerics.value} graph (float island boundary "
                        f"will be skipped)"))
            continue
        out += _check_qparams(spec.qparams, gname, f"tensor {name!r}", tensor=name)
    for pname, qp in graph.param_qparams.items():
        out += _check_qparams(qp, gname, f"parameter {pname!r}", tensor=pname)

    for op in graph.ops:
        # QS001 + QS005 + QS006 for integer-kernel MAC ops
        if isinstance(op, (Conv2D, DepthwiseConv2D, FullyConnected)):
            x_qp = graph.spec(op.inputs[0]).qparams
            w_qp = graph.param_qparams.get(op.attrs["weight"])
            out_qp = graph.spec(op.outputs[0]).qparams
            if x_qp is None or w_qp is None or out_qp is None:
                missing = [label for label, qp in
                           (("input", x_qp), ("weight", w_qp), ("output", out_qp))
                           if qp is None]
                out.append(Finding(
                    "QS005", gname, op=op.name,
                    message=f"integer-kernel op {op.name!r} ({op.op_type}) falls "
                            f"back to float: missing {'/'.join(missing)} qparams"))
            else:
                bound = accumulator_bound(op, graph)
                if bound > _INT32_MAX:
                    out.append(Finding(
                        "QS001", gname, op=op.name,
                        message=f"op {op.name!r} ({op.op_type}): worst-case "
                                f"accumulator |{bound}| exceeds int32 max "
                                f"{_INT32_MAX} (reduction size "
                                f"{_reduction_size(op, graph)})",
                        details={"bound": bound, "int32_max": _INT32_MAX}))
                b_name = op.attrs.get("bias")
                b_qp = graph.param_qparams.get(b_name) if b_name else None
                if b_qp is not None:
                    expected = x_qp.scale[0] * w_qp.scale
                    got = np.asarray(b_qp.scale, dtype=np.float64)
                    if got.shape != expected.shape or not np.allclose(
                            got, expected, rtol=1e-9, atol=0.0):
                        out.append(Finding(
                            "QS006", gname, op=op.name, tensor=b_name,
                            message=f"bias {b_name!r} of {op.name!r} quantized at "
                                    f"scale != input_scale * weight_scale; the "
                                    f"int32 bias would be misinterpreted"))
        elif isinstance(op, Activation):
            in_qp = graph.spec(op.inputs[0]).qparams
            out_qp = graph.spec(op.outputs[0]).qparams
            if in_qp is None or out_qp is None:
                out.append(Finding(
                    "QS005", gname, op=op.name,
                    message=f"activation {op.name!r} ({op.attrs.get('kind')}) falls "
                            f"back to float: missing LUT qparams"))

        # QS004: concat inputs must fit the shared output domain exactly
        if isinstance(op, Concat):
            out_qp = graph.spec(op.outputs[0]).qparams
            if out_qp is not None:
                out_lo, out_hi = _real_range(out_qp)
                tol = float(np.max(out_qp.scale)) + 1e-9
                for t in op.inputs:
                    in_qp = graph.spec(t).qparams
                    if in_qp is None:
                        continue
                    in_lo, in_hi = _real_range(in_qp)
                    if in_lo < out_lo - tol or in_hi > out_hi + tol:
                        out.append(Finding(
                            "QS004", gname, op=op.name, tensor=t,
                            message=f"concat {op.name!r}: input {t!r} range "
                                    f"[{in_lo:.4g}, {in_hi:.4g}] exceeds the shared "
                                    f"output domain [{out_lo:.4g}, {out_hi:.4g}]; "
                                    f"requantization will clip",
                            details={"input_range": [in_lo, in_hi],
                                     "output_range": [out_lo, out_hi]}))
        # QS004 (add flavour): wildly mismatched operand scales
        if isinstance(op, Add) and len(op.inputs) == 2:
            qa = graph.spec(op.inputs[0]).qparams
            qb = graph.spec(op.inputs[1]).qparams
            if qa is not None and qb is not None:
                sa, sb = float(np.max(qa.scale)), float(np.max(qb.scale))
                ratio = max(sa, sb) / min(sa, sb)
                if ratio > _ADD_SCALE_RATIO:
                    coarse = op.inputs[0] if sa > sb else op.inputs[1]
                    out.append(Finding(
                        "QS004", gname, op=op.name, tensor=coarse,
                        message=f"add {op.name!r}: operand scales differ by "
                                f"{ratio:.0f}x; the finer operand collapses to a "
                                f"few codes after requantization"))
    return out
