"""Value-range engine: abstract interpretation over the graph IR (VR rules).

Propagates sound closed intervals from declared input domains
(:attr:`TensorSpec.domain`) through every op via the per-op transfer
functions (``Op.infer_ranges``), modelling the *storage* effect of each
deployment format on top of the real-arithmetic transfer:

- quantized graphs round every stored activation to its code grid (±scale/2)
  and clip it to the ``QuantParams`` representable window;
- FP16 graphs round every op output through half precision (relative 2⁻¹⁰
  slack) and overflow to ±inf past the 65504 ceiling;
- FP32 storage is the identity (per-op transfers already pad for float32
  rounding).

The invariant, checked end-to-end by the test suite's instrumented executor
runs: for any feed inside the declared domains, every concrete stored tensor
value lies inside the proven interval.

On top of the engine, :func:`check_ranges` emits the VR rule family:
range-aware int32 accumulator proofs (VR001, tightening QS001), per-tensor
requantization clipping proofs (VR002), calibration-coverage findings
(VR003), FP16 overflow/denormal proofs (VR004/VR005) and dead-activation
detection (VR006).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.graph import Graph
from ..graph.ops import Activation, Add, Conv2D, DepthwiseConv2D, FullyConnected
from ..kernels.numerics import Numerics, QuantParams
from .findings import Finding
from .intervals import FP16_MAX, FP16_SMALLEST_NORMAL, Interval
from .quantcheck import _INT32_MAX, _SKIP_ROLES, accumulator_bound

__all__ = [
    "DEFAULT_DATA_DOMAIN",
    "RangeAnalysis",
    "input_intervals",
    "infer_graph_ranges",
    "check_ranges",
    "observed_ranges",
]

# fallback domain for "data" inputs with no declared TensorSpec.domain: wide
# enough for any normalized feed convention the zoo uses, finite so the
# analysis stays informative
DEFAULT_DATA_DOMAIN = (-8.0, 8.0)

_ROLE_DOMAINS = {
    "mask": (0.0, 1.0),
    "ids": (0.0, float("inf")),
}

# one half-precision rounding step is 2⁻¹¹ relative; 2⁻¹⁰ absorbs the
# float32->float16->float32 round trip comfortably
_FP16_REL = 2.0 ** -10
_TINY = 1e-30

# VR003 fires when the calibrated width covers less than this fraction of
# the provable width — values outside the calibrated window clip silently
_COVERAGE_THRESHOLD = 0.5

# VR006: output provably constant while the input still varies
_DEAD_OUT_WIDTH = 1e-12
_DEAD_IN_WIDTH = 1e-6

_INTEGER_KERNEL_OPS = (Conv2D, DepthwiseConv2D, FullyConnected)


@dataclass
class RangeAnalysis:
    """Result of one whole-graph interval propagation.

    ``intervals`` holds the proven interval of each tensor *as stored*
    (post-quantization/post-cast); ``pre_storage`` holds the transfer result
    before the format's storage effect — the quantity that decides whether
    requantization or the FP16 cast can clip. ``acc_bounds`` maps integer-
    kernel op names to their (range-aware, format-worst-case) accumulator
    bound pair.
    """

    graph: str
    numerics: Numerics
    intervals: dict[str, Interval] = field(default_factory=dict)
    pre_storage: dict[str, Interval] = field(default_factory=dict)
    acc_bounds: dict[str, dict[str, int]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "graph": self.graph,
            "numerics": self.numerics.value,
            "intervals": {k: v.to_dict() for k, v in sorted(self.intervals.items())},
            "acc_bounds": {k: dict(v) for k, v in sorted(self.acc_bounds.items())},
        }


def input_intervals(
    graph: Graph, overrides: dict[str, tuple[float, float]] | None = None
) -> dict[str, Interval]:
    """Seed intervals for the graph inputs: overrides > declared domain >
    role default ("mask" → [0,1], "ids" → [0,∞)) > :data:`DEFAULT_DATA_DOMAIN`."""
    seeds: dict[str, Interval] = {}
    for spec in graph.inputs:
        if overrides and spec.name in overrides:
            lo, hi = overrides[spec.name]
        elif spec.domain is not None:
            lo, hi = spec.domain
        else:
            lo, hi = _ROLE_DOMAINS.get(spec.role, DEFAULT_DATA_DOMAIN)
        seeds[spec.name] = Interval(lo, hi)
    return seeds


def _quant_store(iv: Interval, qp: QuantParams) -> Interval:
    """Storage effect of quantization: round to the code grid, clip to the
    representable window. A provably-saturating clip collapses to the edge
    (that is what ``intersect`` does for disjoint intervals)."""
    scale = float(np.max(qp.scale))
    rep_lo, rep_hi = qp.representable_range()
    if not iv.is_bounded:
        return Interval(rep_lo, rep_hi)
    return iv.widen(0.5 * scale * (1.0 + 1e-9) + _TINY).intersect(Interval(rep_lo, rep_hi))


def _fp16_store(iv: Interval) -> Interval:
    """Storage effect of the FP16 cast: half-precision rounding, with
    magnitudes past the ceiling overflowing to ±inf."""
    lo = -np.inf if iv.lo < -FP16_MAX else iv.lo - abs(iv.lo) * _FP16_REL - _TINY
    hi = np.inf if iv.hi > FP16_MAX else iv.hi + abs(iv.hi) * _FP16_REL + _TINY
    return Interval(lo, hi)


def _stored(iv: Interval, spec, numerics: Numerics, *, is_input: bool) -> Interval:
    if numerics.is_quantized and spec.qparams is not None and spec.role not in _SKIP_ROLES:
        return _quant_store(iv, spec.qparams)
    if numerics == Numerics.FP16 and not is_input and spec.role not in _SKIP_ROLES:
        # the executor casts op outputs through half precision; raw feeds are
        # consumed as-is, so graph inputs keep their real interval
        return _fp16_store(iv)
    return iv


def _code_interval(iv: Interval, qp: QuantParams) -> tuple[int, int]:
    """Integer codes a stored real interval can occupy (for VR001)."""
    scale = float(qp.scale[0])
    zp = int(qp.zero_point[0])
    qmin, qmax = qp.numerics.qmin, qp.numerics.qmax
    if not iv.is_bounded:
        return qmin, qmax
    q_lo = int(np.floor(iv.lo / scale - 1e-9)) + zp
    q_hi = int(np.ceil(iv.hi / scale + 1e-9)) + zp
    return max(qmin, min(q_lo, qmax)), min(qmax, max(q_hi, qmin))


def infer_graph_ranges(
    graph: Graph,
    inputs: dict[str, tuple[float, float]] | None = None,
) -> RangeAnalysis:
    """Propagate sound value intervals through every op of ``graph``."""
    analysis = RangeAnalysis(graph.name, graph.numerics)
    env = analysis.intervals
    seeds = input_intervals(graph, inputs)
    for spec in graph.inputs:
        seed = seeds[spec.name]
        analysis.pre_storage[spec.name] = seed
        env[spec.name] = _stored(seed, spec, graph.numerics, is_input=True)
    for op in graph.ops:
        in_rs = [env[t] for t in op.inputs]
        in_ss = [tuple(graph.spec(t).shape) for t in op.inputs]
        outs = op.infer_ranges(in_rs, in_ss, graph)
        for t, iv in zip(op.outputs, outs):
            analysis.pre_storage[t] = iv
            env[t] = _stored(iv, graph.spec(t), graph.numerics, is_input=False)
        if graph.numerics.is_quantized and isinstance(op, _INTEGER_KERNEL_OPS):
            x_qp = graph.spec(op.inputs[0]).qparams
            w_qp = graph.param_qparams.get(op.attrs["weight"])
            if x_qp is not None and w_qp is not None:
                analysis.acc_bounds[op.name] = {
                    "range_aware": accumulator_bound(
                        op, graph, _code_interval(env[op.inputs[0]], x_qp)),
                    "format": accumulator_bound(op, graph),
                }
    return analysis


def check_ranges(
    graph: Graph, analysis: RangeAnalysis | None = None
) -> tuple[list[Finding], dict]:
    """Run the VR rule family over one graph; returns (findings, metrics)."""
    if analysis is None:
        analysis = infer_graph_ranges(graph)
    out: list[Finding] = []
    gname = graph.name
    numerics = graph.numerics
    producers = {t: op for op in graph.ops for t in op.outputs}

    never_clip = at_risk = 0
    if numerics.is_quantized:
        # VR001: accumulator overflow given the *proven* input interval
        for op in graph.ops:
            bounds = analysis.acc_bounds.get(op.name)
            if bounds and bounds["range_aware"] > _INT32_MAX:
                out.append(Finding(
                    "VR001", gname, op=op.name,
                    message=f"op {op.name!r} ({op.op_type}): accumulator can reach "
                            f"|{bounds['range_aware']}| > int32 max {_INT32_MAX} even "
                            f"restricted to the proven input interval",
                    details=dict(bounds, int32_max=_INT32_MAX)))

        cal = (graph.metadata.get("quantization") or {}).get("calibration_ranges") or {}
        for name, spec in graph.tensor_specs.items():
            qp = spec.qparams
            pre = analysis.pre_storage.get(name)
            if qp is None or pre is None or spec.role in _SKIP_ROLES:
                continue
            # VR002: can requantization of this tensor ever clip?
            scale = float(np.max(qp.scale))
            rep_lo, rep_hi = qp.representable_range()
            if not pre.is_bounded or pre.lo < rep_lo - scale or pre.hi > rep_hi + scale:
                at_risk += 1
                out.append(Finding(
                    "VR002", gname, tensor=name, op=getattr(producers.get(name), "name", None),
                    message=f"tensor {name!r}: proven interval {pre} exceeds the "
                            f"representable window [{rep_lo:.4g}, {rep_hi:.4g}]; "
                            f"requantization can clip",
                    details={"proven": pre.to_dict(),
                             "representable": [rep_lo, rep_hi]}))
            else:
                never_clip += 1
            # VR003: calibrated range much narrower than the provable one
            if name in cal and pre.is_bounded and pre.width > 0:
                c_lo, c_hi = cal[name]
                coverage = max(0.0, c_hi - c_lo) / pre.width
                if coverage < _COVERAGE_THRESHOLD:
                    out.append(Finding(
                        "VR003", gname, tensor=name,
                        message=f"tensor {name!r}: calibrated range "
                                f"[{c_lo:.4g}, {c_hi:.4g}] covers only "
                                f"{coverage:.0%} of the provable interval {pre}; "
                                f"out-of-calibration values clip silently",
                        details={"calibrated": [c_lo, c_hi],
                                 "proven": pre.to_dict(),
                                 "coverage": coverage}))

    if numerics == Numerics.FP16:
        for op in graph.ops:
            for t in op.outputs:
                pre = analysis.pre_storage.get(t)
                if pre is None:
                    continue
                # VR004 fires only where *this* op pushes past the ceiling —
                # an already-infinite input interval would just cascade noise
                if pre.is_bounded and pre.max_abs > FP16_MAX:
                    out.append(Finding(
                        "VR004", gname, tensor=t, op=op.name,
                        message=f"tensor {t!r}: proven interval {pre} exceeds the "
                                f"FP16 ceiling {FP16_MAX}; the half-precision cast "
                                f"overflows to inf",
                        details={"proven": pre.to_dict(), "fp16_max": FP16_MAX}))
                elif 0.0 < pre.max_abs < FP16_SMALLEST_NORMAL:
                    out.append(Finding(
                        "VR005", gname, tensor=t, op=op.name,
                        message=f"tensor {t!r}: proven interval {pre} sits below "
                                f"the smallest normal half-precision magnitude "
                                f"{FP16_SMALLEST_NORMAL:.3g}; values collapse to "
                                f"denormals or zero",
                        details={"proven": pre.to_dict()}))

    # VR006: activation provably constant while its input varies
    for op in graph.ops:
        kinds = []
        if isinstance(op, Activation):
            kinds.append(op.attrs["kind"])
        elif isinstance(op, (Conv2D, FullyConnected, Add)) and op.attrs.get("activation"):
            kinds.append(op.attrs["activation"])
        if not kinds:
            continue
        x = analysis.intervals.get(op.inputs[0])
        y = analysis.pre_storage.get(op.outputs[0])
        if x is None or y is None or not x.is_bounded:
            continue
        if y.width <= _DEAD_OUT_WIDTH and x.width >= _DEAD_IN_WIDTH:
            out.append(Finding(
                "VR006", gname, op=op.name, tensor=op.outputs[0],
                message=f"op {op.name!r}: {kinds[0]} output is provably the "
                        f"constant {y.lo:.4g} while its input spans {x}; the "
                        f"activation is dead",
                details={"input": x.to_dict(), "output": y.to_dict()}))

    bounded = sum(1 for iv in analysis.intervals.values() if iv.is_bounded)
    metrics = {
        "tensors": len(analysis.intervals),
        "bounded": bounded,
        "integer_ops": len(analysis.acc_bounds),
        "never_clip": never_clip,
        "clip_risk": at_risk,
        "intervals": {k: v.to_dict() for k, v in sorted(analysis.intervals.items())},
        "acc_bounds": {k: dict(v) for k, v in sorted(analysis.acc_bounds.items())},
    }
    return out, metrics


def observed_ranges(
    graph: Graph, feeds_seq: list[dict[str, np.ndarray]]
) -> dict[str, tuple[float, float]]:
    """Concrete per-tensor value ranges from instrumented execution.

    Runs the reference interpreting loop with a ``tap`` on every stored
    tensor, dequantizing integer codes through their qparams so the result is
    in the same real domain the proven intervals live in. This is the
    experimental side of the soundness argument: tests assert observed ⊆
    proven across the zoo × numerics matrix.
    """
    from ..graph.executor import Executor

    obs: dict[str, tuple[float, float]] = {}

    def tap(name: str, arr: np.ndarray) -> None:
        a = np.asarray(arr)
        if a.size == 0:
            return
        spec = graph.tensor_specs.get(name)
        if (spec is not None and spec.qparams is not None
                and not np.issubdtype(a.dtype, np.floating)):
            # exact float64 dequantization: the proven intervals bound the
            # *real* stored value scale·(q − zp), not its float32 rounding
            qp = spec.qparams
            shape = qp.broadcast_shape(a.ndim)
            a = (a.astype(np.float64) - qp.zero_point.reshape(shape)) * qp.scale.reshape(shape)
        lo, hi = float(np.min(a)), float(np.max(a))
        prev = obs.get(name)
        if prev is not None:
            lo, hi = min(lo, prev[0]), max(hi, prev[1])
        obs[name] = (lo, hi)

    ex = Executor(graph)
    for feeds in feeds_seq:
        ex.run_unplanned(feeds, tap=tap)
    return obs
