"""Verification driver: run analyzer families, attest, sweep the zoo.

``verify_graph`` is the single entry point the CLI, the export pipeline and
the tests share. ``attest`` stamps the outcome into ``graph.metadata`` keyed
to the graph checksum, so a submission package carries a machine-checkable
claim that its frozen graphs passed static verification (and *which* ruleset
version proved it) — the shape of MLPerf's submission-checker contract.
"""

from __future__ import annotations

import zlib

import numpy as np

from ..graph.graph import Graph
from .dataflow import check_dataflow
from .findings import Baseline, Report, RULESET_VERSION
from .placement import sweep_vendor_placements
from .plancheck import check_plan
from .quantcheck import check_quantization

__all__ = [
    "ALL_FAMILIES",
    "KNOWN_FAMILIES",
    "verify_graph",
    "attest",
    "attestation_problems",
    "zoo_deployments",
    "sweep_zoo",
]

ALL_FAMILIES = ("dataflow", "quantization", "placement", "plan")

# the value-range engine is opt-in (``--ranges``): its VR findings are gated
# separately in CI against a checked-in baseline rather than folded into the
# always-clean default sweep
KNOWN_FAMILIES = ALL_FAMILIES + ("ranges",)

# families cheap enough to run inline on every export (plan compilation
# prepacks weights, so the export path leaves it to the CLI/tests)
_EXPORT_FAMILIES = ("dataflow", "quantization", "placement")


def verify_graph(
    graph: Graph,
    *,
    families: tuple[str, ...] = ALL_FAMILIES,
    baseline: Baseline | None = None,
) -> Report:
    """Run the requested analyzer families over one graph."""
    unknown = set(families) - set(KNOWN_FAMILIES)
    if unknown:
        raise ValueError(f"unknown analyzer families {sorted(unknown)}")
    report = Report(f"{graph.name}[{graph.numerics.value}]")
    if "dataflow" in families:
        report.extend(check_dataflow(graph))
    if "quantization" in families:
        report.extend(check_quantization(graph))
    if "placement" in families:
        findings, predictions = sweep_vendor_placements(graph, graph.numerics)
        report.extend(findings)
        report.metrics["placements"] = [p.to_dict() for p in predictions]
    if "plan" in families and not graph.is_symbolic:
        from ..graph.plan import ExecutionPlan

        plan = ExecutionPlan.for_graph(graph)
        report.extend(check_plan(plan))
        report.metrics["plan"] = plan.describe()
    if "ranges" in families:
        from .ranges import check_ranges

        findings, metrics = check_ranges(graph)
        report.extend(findings)
        report.metrics["ranges"] = metrics
    report.apply_baseline(baseline)
    return report


def attest(graph: Graph, report: Report | None = None) -> dict:
    """Stamp a static-verification attestation into ``graph.metadata``.

    The stamp binds the verdict to the graph checksum (which covers ops,
    params and outputs but not metadata, so stamping does not perturb it):
    mutate the graph after attestation and the mismatch is detectable.
    """
    if report is None:
        report = verify_graph(graph, families=_EXPORT_FAMILIES)
    stamp = {
        "ruleset": RULESET_VERSION,
        "verified": not report.errors,
        "findings": len(report.findings),
        "errors": len(report.errors),
        "checksum": graph.checksum(),
    }
    graph.metadata["staticcheck"] = stamp
    return stamp


def attestation_problems(graph: Graph) -> list[str]:
    """Why this graph's attestation (if any) cannot be trusted.

    Lenient by design: an *absent* stamp is not a problem (old exports stay
    valid); a present stamp that records errors, a stale ruleset, or a
    checksum that no longer matches the graph is.
    """
    stamp = graph.metadata.get("staticcheck")
    if stamp is None:
        return []
    problems = []
    if not stamp.get("verified", False):
        problems.append(
            f"graph {graph.name!r}: staticcheck attestation records "
            f"{stamp.get('errors', '?')} unresolved error(s)")
    if stamp.get("ruleset") != RULESET_VERSION:
        problems.append(
            f"graph {graph.name!r}: attested under ruleset "
            f"{stamp.get('ruleset')!r}, current is {RULESET_VERSION}")
    if stamp.get("checksum") != graph.checksum():
        problems.append(
            f"graph {graph.name!r}: modified after attestation "
            f"(checksum mismatch)")
    return problems


def zoo_deployments(
    model: str, numerics_modes: tuple, *, batch: int = 2
):
    """Yield ``(numerics, graph)`` deployment variants of one zoo model.

    Builds the same artifacts the harness would ship: export the reference
    graph, calibrate on deterministic role-aware feeds, then derive each
    numerics variant. Imported lazily so ``repro.graph`` never depends on the
    model zoo at import time.
    """
    from ..kernels.numerics import Numerics
    from ..models import create_reference_model
    from ..quantization import calibrate, convert_fp16, quantize_graph

    bundle = create_reference_model(model, fitted=False)
    exported = bundle.graph
    if not exported.frozen:
        from ..graph.converter import export_mobile

        exported = export_mobile(exported)
    rng = np.random.default_rng(zlib.crc32(model.encode()))
    feeds = {}
    for spec in exported.inputs:
        shape = spec.with_batch(batch)
        if spec.role == "ids":
            feeds[spec.name] = rng.integers(0, 28, size=shape).astype(np.float32)
        elif spec.role == "mask":
            feeds[spec.name] = np.ones(shape, dtype=np.float32)
        else:
            feeds[spec.name] = rng.normal(0, 0.5, size=shape).astype(np.float32)
    stats = None
    for numerics in numerics_modes:
        if numerics == Numerics.FP32:
            yield numerics, exported
        elif numerics == Numerics.FP16:
            yield numerics, convert_fp16(exported)
        else:
            if stats is None:
                stats = calibrate(exported, [feeds])
            yield numerics, quantize_graph(exported, stats, numerics)


def sweep_zoo(
    models: tuple[str, ...] | None = None,
    numerics_modes: tuple | None = None,
    *,
    families: tuple[str, ...] = ALL_FAMILIES,
    baseline: Baseline | None = None,
) -> list[Report]:
    """Verify every (zoo model, numerics) deployment; the CLI/CI workhorse."""
    from ..kernels.numerics import Numerics
    from ..models import available_models

    if models is None:
        models = tuple(available_models())
    if numerics_modes is None:
        numerics_modes = (Numerics.FP32, Numerics.FP16, Numerics.INT8, Numerics.UINT8)
    reports = []
    for model in models:
        for _numerics, graph in zoo_deployments(model, numerics_modes):
            reports.append(
                verify_graph(graph, families=families, baseline=baseline))
    return reports
