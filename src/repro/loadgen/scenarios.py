"""Execution scenarios and the LoadGen driver (paper §4.1-4.2, §6.1).

Single-stream: one query at a time, sample size 1, at least 1,024 samples
AND at least 60 seconds; the metric is 90th-percentile latency. Offline:
one burst of 24,576 samples; the metric is average throughput. Submitters
may not modify this module's behaviour (enforced by checksum in the
submission checker).

Fault tolerance: per-query faults (:class:`~repro.loadgen.faults.QueryFault`,
NaN or non-positive latencies) are retried within a bounded per-query
budget. A query that exhausts its retries is *dropped* and counted in the
log's metadata; when drops exceed the run's drop budget the run stops early
and is marked partial. Either way the run returns a log the validator will
flag, instead of crashing the suite.
"""

from __future__ import annotations

import enum
import hashlib
import inspect
import math
from dataclasses import dataclass

import numpy as np

from .clock import VirtualClock
from .faults import QueryFault
from .logging import LoadGenLog, QueryRecord
from .qsl import QuerySampleLibrary
from .sut import SystemUnderTest

__all__ = ["Scenario", "Mode", "TestSettings", "LoadGenerator", "loadgen_checksum"]


class Scenario(enum.Enum):
    SINGLE_STREAM = "single_stream"
    OFFLINE = "offline"


class Mode(enum.Enum):
    PERFORMANCE = "performance"
    ACCURACY = "accuracy"


@dataclass(frozen=True)
class TestSettings:
    """Run-rule constants (§6.1). Defaults are the benchmark's own."""

    scenario: Scenario = Scenario.SINGLE_STREAM
    mode: Mode = Mode.PERFORMANCE
    min_query_count: int = 1024
    min_duration_s: float = 60.0
    offline_sample_count: int = 24576
    performance_sample_count: int = 1024
    seed: int = 0x9E3779B9
    latency_percentile: float = 90.0
    # accuracy mode packs this many samples into each batched graph execution;
    # results are per-sample and independent of the packing, so this is a
    # harness-throughput knob, not a run rule
    accuracy_batch_size: int = 32
    # fault tolerance: how many times one query may be retried after a fault,
    # and how many queries may be dropped (retries exhausted) before the run
    # aborts as partial
    query_retry_budget: int = 3
    query_drop_budget: int = 16

    def __post_init__(self) -> None:
        if self.min_query_count < 1:
            raise ValueError("min_query_count must be positive")
        if self.min_duration_s < 0:
            raise ValueError("min_duration_s cannot be negative")
        if self.accuracy_batch_size < 1:
            raise ValueError("accuracy_batch_size must be positive")
        if not 0.0 < self.latency_percentile <= 100.0:
            raise ValueError("latency_percentile must be in (0, 100]")
        if self.query_retry_budget < 0 or self.query_drop_budget < 0:
            raise ValueError("retry/drop budgets cannot be negative")


class LoadGenerator:
    """Drives a SUT according to the scenario's query pattern."""

    def __init__(self, settings: TestSettings):
        self.settings = settings

    def run(
        self,
        sut: SystemUnderTest,
        qsl: QuerySampleLibrary,
        *,
        task: str = "task",
        model_name: str = "model",
    ) -> LoadGenLog:
        s = self.settings
        log = LoadGenLog(
            scenario=s.scenario.value,
            mode=s.mode.value,
            task=task,
            model_name=model_name,
            sut_name=sut.name,
            seed=s.seed,
            min_query_count=s.min_query_count,
            min_duration_s=s.min_duration_s,
            latency_percentile=s.latency_percentile,
        )
        if s.mode == Mode.ACCURACY:
            self._run_accuracy(sut, qsl, log)
        elif s.scenario == Scenario.SINGLE_STREAM:
            self._run_single_stream(sut, qsl, log)
        else:
            self._run_offline(sut, qsl, log)
        log.metadata["loadgen_checksum"] = loadgen_checksum()
        return log

    # -- fault-tolerant query issue -----------------------------------------
    def _issue_with_retries(
        self, sut: SystemUnderTest, indices: np.ndarray, log: LoadGenLog
    ) -> float | None:
        """One query with a bounded retry budget.

        Returns the latency of the first valid attempt, or ``None`` once the
        budget is exhausted (the caller records a dropped query). Invalid
        means a raised :class:`QueryFault` or a non-finite / non-positive
        latency reading in performance mode.
        """
        s = self.settings
        last_error = "unknown fault"
        for _ in range(1 + s.query_retry_budget):
            try:
                latency = sut.issue_query(indices)
            except QueryFault as exc:
                last_error = str(exc)
                log.metadata["fault_retries"] = log.metadata.get("fault_retries", 0) + 1
                continue
            if latency is None or not math.isfinite(latency) or (
                s.mode == Mode.PERFORMANCE and latency <= 0
            ):
                last_error = f"invalid latency reading {latency!r}"
                log.metadata["fault_retries"] = log.metadata.get("fault_retries", 0) + 1
                continue
            return float(latency)
        log.metadata["dropped_queries"] = log.metadata.get("dropped_queries", 0) + 1
        log.metadata["last_fault"] = last_error
        return None

    def _drop_budget_exhausted(self, log: LoadGenLog) -> bool:
        if log.metadata.get("dropped_queries", 0) > self.settings.query_drop_budget:
            log.metadata["partial"] = True
            log.metadata["partial_reason"] = (
                f"dropped {log.metadata['dropped_queries']} queries, over the "
                f"budget of {self.settings.query_drop_budget}"
            )
            return True
        return False

    # -- scenarios -----------------------------------------------------------
    def _run_accuracy(self, sut: SystemUnderTest, qsl: QuerySampleLibrary, log: LoadGenLog) -> None:
        """Feed the *entire* data set to verify model quality (§4.1)."""
        n = qsl.total_sample_count
        log.metadata["total_sample_count"] = n
        all_indices = np.arange(n)
        qsl.load_samples(all_indices)
        clock = VirtualClock()
        batch = self.settings.accuracy_batch_size
        for start in range(0, n, batch):
            idx = all_indices[start : start + batch]
            latency = self._issue_with_retries(sut, idx, log)
            if latency is None:
                if self._drop_budget_exhausted(log):
                    break
                continue
            log.records.append(
                QueryRecord(clock.now(), latency, tuple(int(i) for i in idx))
            )
            clock.advance(max(latency, 1e-9))
        evaluate = getattr(sut, "evaluate", None)
        if callable(evaluate):
            log.accuracy = evaluate()

    def _run_single_stream(
        self, sut: SystemUnderTest, qsl: QuerySampleLibrary, log: LoadGenLog
    ) -> None:
        """Inject one sample, wait for completion, repeat (§4.2)."""
        s = self.settings
        qsl.load_performance_set()
        clock = VirtualClock()
        issued = 0
        while issued < s.min_query_count or clock.now() < s.min_duration_s:
            # served from a pre-drawn index block: same seeded sequence as a
            # per-query sample_indices(1) draw, without per-query RNG overhead
            idx = qsl.next_sample_index()
            latency = self._issue_with_retries(sut, np.array([idx], dtype=np.int64), log)
            if latency is None:
                if self._drop_budget_exhausted(log):
                    break
                continue
            temp = getattr(getattr(sut, "device", None), "thermal", None)
            log.records.append(
                QueryRecord(
                    clock.now(), latency, (int(idx),),
                    temperature_c=temp.temperature_c if temp else 0.0,
                )
            )
            clock.advance(latency)
            issued += 1

    def _run_offline(self, sut: SystemUnderTest, qsl: QuerySampleLibrary, log: LoadGenLog) -> None:
        """Send all samples in one burst; measure aggregate throughput."""
        s = self.settings
        qsl.load_performance_set()
        log.metadata["offline_expected_samples"] = s.offline_sample_count
        run_offline = getattr(sut, "run_offline", None)
        if run_offline is None:
            raise TypeError("offline performance mode requires a PerformanceSUT")
        try:
            result = run_offline(s.offline_sample_count)
        except QueryFault as exc:
            # the burst is atomic: a fault degrades the run to a flagged
            # partial result instead of crashing the suite
            log.metadata["partial"] = True
            log.metadata["partial_reason"] = f"offline burst failed: {exc}"
            return
        log.offline_samples = result.total_samples
        log.offline_seconds = result.total_seconds
        log.energy_joules = result.energy_joules
        log.metadata["steady_clock_scale"] = result.steady_clock_scale


def loadgen_checksum() -> str:
    """Hash of this module's source: proves the LoadGen was not modified.

    Submitter modification of the LoadGen is forbidden (§4.1); the submission
    checker compares this value against the one recorded in the run log.
    """
    import repro.loadgen.scenarios as me

    src = inspect.getsource(me)
    return hashlib.sha256(src.encode()).hexdigest()
