"""Execution scenarios and the LoadGen driver (paper §4.1-4.2, §6.1).

Single-stream: one query at a time, sample size 1, at least 1,024 samples
AND at least 60 seconds; the metric is 90th-percentile latency. Offline:
one burst of 24,576 samples; the metric is average throughput. Submitters
may not modify this module's behaviour (enforced by checksum in the
submission checker).
"""

from __future__ import annotations

import enum
import hashlib
import inspect
from dataclasses import dataclass

import numpy as np

from .clock import VirtualClock
from .logging import LoadGenLog, QueryRecord
from .qsl import QuerySampleLibrary
from .sut import AccuracySUT, PerformanceSUT, SystemUnderTest

__all__ = ["Scenario", "Mode", "TestSettings", "LoadGenerator", "loadgen_checksum"]


class Scenario(enum.Enum):
    SINGLE_STREAM = "single_stream"
    OFFLINE = "offline"


class Mode(enum.Enum):
    PERFORMANCE = "performance"
    ACCURACY = "accuracy"


@dataclass(frozen=True)
class TestSettings:
    """Run-rule constants (§6.1). Defaults are the benchmark's own."""

    scenario: Scenario = Scenario.SINGLE_STREAM
    mode: Mode = Mode.PERFORMANCE
    min_query_count: int = 1024
    min_duration_s: float = 60.0
    offline_sample_count: int = 24576
    performance_sample_count: int = 1024
    seed: int = 0x9E3779B9
    latency_percentile: float = 90.0
    # accuracy mode packs this many samples into each batched graph execution;
    # results are per-sample and independent of the packing, so this is a
    # harness-throughput knob, not a run rule
    accuracy_batch_size: int = 32

    def __post_init__(self) -> None:
        if self.min_query_count < 1:
            raise ValueError("min_query_count must be positive")
        if self.min_duration_s < 0:
            raise ValueError("min_duration_s cannot be negative")
        if self.accuracy_batch_size < 1:
            raise ValueError("accuracy_batch_size must be positive")


class LoadGenerator:
    """Drives a SUT according to the scenario's query pattern."""

    def __init__(self, settings: TestSettings):
        self.settings = settings

    def run(
        self,
        sut: SystemUnderTest,
        qsl: QuerySampleLibrary,
        *,
        task: str = "task",
        model_name: str = "model",
    ) -> LoadGenLog:
        s = self.settings
        log = LoadGenLog(
            scenario=s.scenario.value,
            mode=s.mode.value,
            task=task,
            model_name=model_name,
            sut_name=sut.name,
            seed=s.seed,
            min_query_count=s.min_query_count,
            min_duration_s=s.min_duration_s,
        )
        if s.mode == Mode.ACCURACY:
            self._run_accuracy(sut, qsl, log)
        elif s.scenario == Scenario.SINGLE_STREAM:
            self._run_single_stream(sut, qsl, log)
        else:
            self._run_offline(sut, qsl, log)
        log.metadata["loadgen_checksum"] = loadgen_checksum()
        return log

    def _run_accuracy(self, sut: SystemUnderTest, qsl: QuerySampleLibrary, log: LoadGenLog) -> None:
        """Feed the *entire* data set to verify model quality (§4.1)."""
        n = qsl.total_sample_count
        all_indices = np.arange(n)
        qsl.load_samples(all_indices)
        clock = VirtualClock()
        batch = self.settings.accuracy_batch_size
        for start in range(0, n, batch):
            idx = all_indices[start : start + batch]
            latency = sut.issue_query(idx)
            log.records.append(
                QueryRecord(clock.now(), latency, tuple(int(i) for i in idx))
            )
            clock.advance(max(latency, 1e-9))
        if isinstance(sut, AccuracySUT):
            log.accuracy = sut.evaluate()

    def _run_single_stream(
        self, sut: SystemUnderTest, qsl: QuerySampleLibrary, log: LoadGenLog
    ) -> None:
        """Inject one sample, wait for completion, repeat (§4.2)."""
        s = self.settings
        qsl.load_performance_set()
        clock = VirtualClock()
        issued = 0
        while issued < s.min_query_count or clock.now() < s.min_duration_s:
            # served from a pre-drawn index block: same seeded sequence as a
            # per-query sample_indices(1) draw, without per-query RNG overhead
            idx = qsl.next_sample_index()
            latency = sut.issue_query(np.array([idx], dtype=np.int64))
            if latency <= 0:
                raise RuntimeError("performance SUT reported non-positive latency")
            temp = getattr(getattr(sut, "device", None), "thermal", None)
            log.records.append(
                QueryRecord(
                    clock.now(), latency, (int(idx),),
                    temperature_c=temp.temperature_c if temp else 0.0,
                )
            )
            clock.advance(latency)
            issued += 1

    def _run_offline(self, sut: SystemUnderTest, qsl: QuerySampleLibrary, log: LoadGenLog) -> None:
        """Send all samples in one burst; measure aggregate throughput."""
        s = self.settings
        qsl.load_performance_set()
        if not isinstance(sut, PerformanceSUT):
            raise TypeError("offline performance mode requires a PerformanceSUT")
        result = sut.run_offline(s.offline_sample_count)
        log.offline_samples = result.total_samples
        log.offline_seconds = result.total_seconds
        log.energy_joules = result.energy_joules
        log.metadata["steady_clock_scale"] = result.steady_clock_scale


def loadgen_checksum() -> str:
    """Hash of this module's source: proves the LoadGen was not modified.

    Submitter modification of the LoadGen is forbidden (§4.1); the submission
    checker compares this value against the one recorded in the run log.
    """
    import repro.loadgen.scenarios as me

    src = inspect.getsource(me)
    return hashlib.sha256(src.encode()).hexdigest()
