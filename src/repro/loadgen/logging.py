"""Structured LoadGen run logs (paper §4.1, §6.2).

Every run emits a :class:`LoadGenLog` — settings, per-query records, and a
computed summary. Submissions must include these logs unedited; the
submission checker and the independent audit both consume them.

Logs serialize losslessly: ``from_dict(to_dict(log)) == log``. The on-disk
form carries a schema version plus a *claimed* summary block that the
conformance checker recomputes from the raw records, so an edited log file
is caught even when the edit is self-consistent JSON.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["QueryRecord", "LoadGenLog", "LOG_SCHEMA_VERSION"]

# Bump when the serialized layout changes; from_dict refuses unknown versions
# so the auditor never silently misreads a foreign or corrupted package.
LOG_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class QueryRecord:
    issue_time: float
    latency_seconds: float
    sample_indices: tuple[int, ...]
    temperature_c: float = 0.0


@dataclass
class LoadGenLog:
    scenario: str  # "single_stream" | "offline"
    mode: str  # "performance" | "accuracy"
    task: str
    model_name: str
    sut_name: str
    seed: int
    min_query_count: int
    min_duration_s: float
    latency_percentile: float = 90.0
    records: list[QueryRecord] = field(default_factory=list)
    accuracy: dict[str, float] = field(default_factory=dict)
    offline_samples: int = 0
    offline_seconds: float = 0.0
    energy_joules: float = 0.0
    metadata: dict = field(default_factory=dict)

    # -- summary -----------------------------------------------------------
    @property
    def query_count(self) -> int:
        return len(self.records)

    @property
    def total_duration_s(self) -> float:
        if not self.records:
            return self.offline_seconds
        last = self.records[-1]
        return last.issue_time + last.latency_seconds

    def latencies(self) -> np.ndarray:
        return np.asarray([r.latency_seconds for r in self.records])

    def percentile_latency(self, percentile: float | None = None) -> float:
        """Nearest-rank (ordinal) percentile, as the MLPerf LoadGen defines it.

        Sort the N latencies and take index ``ceil(p/100 * N) - 1`` — no
        interpolation between order statistics (Reddi et al. 2019, run rules).
        """
        if percentile is None:
            percentile = self.latency_percentile
        if not 0.0 < percentile <= 100.0:
            raise ValueError("percentile must be in (0, 100]")
        lat = self.latencies()
        if lat.size == 0:
            raise ValueError("no query records in log")
        rank = max(math.ceil(percentile / 100.0 * lat.size), 1)
        return float(np.sort(lat)[rank - 1])

    def throughput_fps(self) -> float:
        if self.scenario == "offline":
            if self.offline_seconds <= 0:
                raise ValueError("offline log missing duration")
            return self.offline_samples / self.offline_seconds
        return self.query_count / self.total_duration_s

    def _percentile_key(self) -> str:
        return f"latency_p{self.latency_percentile:g}_ms"

    def summary(self) -> dict:
        out = {
            "scenario": self.scenario,
            "mode": self.mode,
            "task": self.task,
            "model": self.model_name,
            "sut": self.sut_name,
            "seed": self.seed,
            "query_count": self.query_count,
            "duration_s": round(self.total_duration_s, 6),
            "energy_joules": round(self.energy_joules, 6),
        }
        if self.mode == "accuracy":
            out["accuracy"] = dict(self.accuracy)
        elif self.scenario == "single_stream":
            out[self._percentile_key()] = round(self.percentile_latency() * 1e3, 6)
            out["latency_mean_ms"] = round(float(self.latencies().mean()) * 1e3, 6)
        else:
            out["throughput_fps"] = round(self.throughput_fps(), 3)
        return out

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        """Full lossless form (the 'unedited log file').

        The ``summary`` block is *claimed*, derived data; the conformance
        checker recomputes it from ``records`` and rejects mismatches.
        """
        return {
            "schema_version": LOG_SCHEMA_VERSION,
            "scenario": self.scenario,
            "mode": self.mode,
            "task": self.task,
            "model": self.model_name,
            "sut": self.sut_name,
            "seed": self.seed,
            "min_query_count": self.min_query_count,
            "min_duration_s": self.min_duration_s,
            "latency_percentile": self.latency_percentile,
            "offline_samples": self.offline_samples,
            "offline_seconds": self.offline_seconds,
            "energy_joules": self.energy_joules,
            "accuracy": dict(self.accuracy),
            "metadata": dict(self.metadata),
            "records": [
                [r.issue_time, r.latency_seconds, list(r.sample_indices), r.temperature_c]
                for r in self.records
            ],
            "summary": self.summary() if (self.records or self.offline_seconds > 0) else {},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LoadGenLog":
        """Inverse of :meth:`to_dict`; raises ``ValueError`` on bad input.

        Derived fields (the claimed ``summary`` block) are ignored — the log
        is rebuilt from raw fields only, so validation always runs against
        what the records actually say.
        """
        if not isinstance(payload, dict):
            raise ValueError(f"log payload must be a dict, got {type(payload).__name__}")
        version = payload.get("schema_version")
        if version != LOG_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported log schema version {version!r}; "
                f"this checker reads version {LOG_SCHEMA_VERSION}"
            )
        missing = [
            k for k in ("scenario", "mode", "task", "model", "sut", "seed",
                        "min_query_count", "min_duration_s")
            if k not in payload
        ]
        if missing:
            raise ValueError(f"log payload missing required fields: {missing}")
        log = cls(
            scenario=payload["scenario"],
            mode=payload["mode"],
            task=payload["task"],
            model_name=payload["model"],
            sut_name=payload["sut"],
            seed=int(payload["seed"]),
            min_query_count=int(payload["min_query_count"]),
            min_duration_s=float(payload["min_duration_s"]),
            latency_percentile=float(payload.get("latency_percentile", 90.0)),
        )
        log.offline_samples = int(payload.get("offline_samples", 0))
        log.offline_seconds = float(payload.get("offline_seconds", 0.0))
        log.energy_joules = float(payload.get("energy_joules", 0.0))
        log.accuracy = dict(payload.get("accuracy", {}))
        log.metadata = dict(payload.get("metadata", {}))
        for i, rec in enumerate(payload.get("records", [])):
            try:
                issue, latency, indices, temp = rec
                log.records.append(
                    QueryRecord(
                        float(issue), float(latency),
                        tuple(int(s) for s in indices), float(temp),
                    )
                )
            except (TypeError, ValueError) as exc:
                raise ValueError(f"malformed record #{i}: {rec!r} ({exc})") from exc
        return log
