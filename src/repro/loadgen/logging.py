"""Structured LoadGen run logs (paper §4.1, §6.2).

Every run emits a :class:`LoadGenLog` — settings, per-query records, and a
computed summary. Submissions must include these logs unedited; the
submission checker and the independent audit both consume them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["QueryRecord", "LoadGenLog"]


@dataclass(frozen=True)
class QueryRecord:
    issue_time: float
    latency_seconds: float
    sample_indices: tuple[int, ...]
    temperature_c: float = 0.0


@dataclass
class LoadGenLog:
    scenario: str  # "single_stream" | "offline"
    mode: str  # "performance" | "accuracy"
    task: str
    model_name: str
    sut_name: str
    seed: int
    min_query_count: int
    min_duration_s: float
    records: list[QueryRecord] = field(default_factory=list)
    accuracy: dict[str, float] = field(default_factory=dict)
    offline_samples: int = 0
    offline_seconds: float = 0.0
    energy_joules: float = 0.0
    metadata: dict = field(default_factory=dict)

    # -- summary -----------------------------------------------------------
    @property
    def query_count(self) -> int:
        return len(self.records)

    @property
    def total_duration_s(self) -> float:
        if not self.records:
            return self.offline_seconds
        last = self.records[-1]
        return last.issue_time + last.latency_seconds

    def latencies(self) -> np.ndarray:
        return np.asarray([r.latency_seconds for r in self.records])

    def percentile_latency(self, percentile: float = 90.0) -> float:
        lat = self.latencies()
        if lat.size == 0:
            raise ValueError("no query records in log")
        return float(np.percentile(lat, percentile))

    def throughput_fps(self) -> float:
        if self.scenario == "offline":
            if self.offline_seconds <= 0:
                raise ValueError("offline log missing duration")
            return self.offline_samples / self.offline_seconds
        return self.query_count / self.total_duration_s

    def summary(self) -> dict:
        out = {
            "scenario": self.scenario,
            "mode": self.mode,
            "task": self.task,
            "model": self.model_name,
            "sut": self.sut_name,
            "seed": self.seed,
            "query_count": self.query_count,
            "duration_s": round(self.total_duration_s, 6),
            "energy_joules": round(self.energy_joules, 6),
        }
        if self.mode == "accuracy":
            out["accuracy"] = dict(self.accuracy)
        elif self.scenario == "single_stream":
            out["latency_p90_ms"] = round(self.percentile_latency(90.0) * 1e3, 6)
            out["latency_mean_ms"] = round(float(self.latencies().mean()) * 1e3, 6)
        else:
            out["throughput_fps"] = round(self.throughput_fps(), 3)
        return out

    def to_dict(self) -> dict:
        """Full serializable form (the 'unedited log file')."""
        return {
            **self.summary(),
            "min_query_count": self.min_query_count,
            "min_duration_s": self.min_duration_s,
            "offline_samples": self.offline_samples,
            "offline_seconds": self.offline_seconds,
            "metadata": dict(self.metadata),
            "records": [
                [r.issue_time, r.latency_seconds, list(r.sample_indices), r.temperature_c]
                for r in self.records
            ],
        }
