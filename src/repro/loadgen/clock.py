"""Virtual clock.

Performance mode runs on simulated time: the SUT reports each query's
latency from the hardware model and the LoadGen advances this clock, so the
"minimum 60 second run" rule holds without 60 wall-clock seconds
(DESIGN.md design decision 1).
"""

from __future__ import annotations

__all__ = ["VirtualClock"]


class VirtualClock:
    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("clock cannot go backwards")
        self._now += seconds
        return self._now
