"""Fault injection for the LoadGen path (robustness hardening).

A :class:`FaultySUT` wraps any :class:`SystemUnderTest` and injects the
failure modes a real device fleet produces: query failures (the delegate
rejects the invocation), timeouts (the query never completes), and NaN
outputs (a corrupted latency reading). Faults are *transient by default* —
a faulted query succeeds after ``transient_attempts`` retries — so the
harness's bounded per-query retry can be exercised deterministically: set
``transient_attempts`` at or below the retry budget and the run recovers;
set it above and the query is dropped, degrading the run to a flagged
partial result.

Injection is seeded and independent of wall clock, so a fault-injected run
is exactly reproducible.
"""

from __future__ import annotations

import numpy as np

from .sut import SystemUnderTest

__all__ = ["QueryFault", "QueryFailure", "QueryTimeout", "FaultySUT"]


class QueryFault(RuntimeError):
    """Base class for injected (or real) per-query failures."""


class QueryFailure(QueryFault):
    """The SUT rejected or crashed on the query."""


class QueryTimeout(QueryFault):
    """The query never completed within the harness deadline."""


class FaultySUT(SystemUnderTest):
    """Wraps a SUT; injects seeded failures/timeouts/NaN latencies."""

    def __init__(
        self,
        inner: SystemUnderTest,
        *,
        failure_rate: float = 0.0,
        timeout_rate: float = 0.0,
        nan_rate: float = 0.0,
        seed: int = 0xFA017,
        transient_attempts: int = 1,
    ):
        rates = (failure_rate, timeout_rate, nan_rate)
        if any(r < 0 for r in rates) or sum(rates) > 1.0:
            raise ValueError("fault rates must be non-negative and sum to <= 1")
        if transient_attempts < 1:
            raise ValueError("transient_attempts must be positive")
        self.inner = inner
        self.name = f"{inner.name}+faults"
        self.failure_rate = failure_rate
        self.timeout_rate = timeout_rate
        self.nan_rate = nan_rate
        self.transient_attempts = transient_attempts
        self._rng = np.random.default_rng(seed)
        self.injected = {"failure": 0, "timeout": 0, "nan": 0}
        # retry continuation state: (indices of the query being faulted,
        # fault kind, remaining faulty attempts)
        self._pending: tuple[tuple[int, ...], str, int] | None = None

    # -- fault drawing -----------------------------------------------------
    def _draw_fault(self) -> str | None:
        u = float(self._rng.random())
        if u < self.failure_rate:
            return "failure"
        if u < self.failure_rate + self.timeout_rate:
            return "timeout"
        if u < self.failure_rate + self.timeout_rate + self.nan_rate:
            return "nan"
        return None

    def _raise_or_return(self, kind: str, key: tuple[int, ...]):
        self.injected[kind] += 1
        if kind == "failure":
            raise QueryFailure(f"injected query failure for samples {list(key)[:4]}")
        if kind == "timeout":
            raise QueryTimeout(f"injected query timeout for samples {list(key)[:4]}")
        return float("nan")

    def issue_query(self, indices: np.ndarray) -> float:
        key = tuple(int(i) for i in np.asarray(indices).ravel())
        if self._pending is not None and self._pending[0] == key:
            _, kind, remaining = self._pending
            if remaining > 0:
                self._pending = (key, kind, remaining - 1)
                return self._raise_or_return(kind, key)
            self._pending = None  # fault exhausted; the retry succeeds
            return self.inner.issue_query(indices)
        self._pending = None
        kind = self._draw_fault()
        if kind is not None:
            self._pending = (key, kind, self.transient_attempts - 1)
            return self._raise_or_return(kind, key)
        return self.inner.issue_query(indices)

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    # -- passthrough -------------------------------------------------------
    def run_offline(self, total_samples: int, batch: int = 256):
        """Offline bursts fail atomically: one draw covers the whole burst."""
        kind = self._draw_fault()
        if kind in ("failure", "timeout"):
            self.injected[kind] += 1
            exc = QueryFailure if kind == "failure" else QueryTimeout
            raise exc("injected fault during offline burst")
        run = getattr(self.inner, "run_offline", None)
        if run is None:
            raise TypeError(f"{type(self.inner).__name__} does not support offline bursts")
        return run(total_samples, batch=batch)

    def evaluate(self) -> dict[str, float]:
        evaluate = getattr(self.inner, "evaluate", None)
        if evaluate is None:
            raise TypeError(f"{type(self.inner).__name__} has no accuracy evaluation")
        return evaluate()

    def close(self) -> None:
        close = getattr(self.inner, "close", None)
        if close is not None:
            close()

    @property
    def device(self):
        return getattr(self.inner, "device", None)
