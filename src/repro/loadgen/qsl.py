"""Query Sample Library: the LoadGen's view of a data set (paper §4.1).

The QSL owns which samples are resident in memory and hands out seeded
random sample indices, precluding data-set-specific optimizations (the
submitter never knows the order in advance).
"""

from __future__ import annotations

import numpy as np

from ..datasets.base import TaskDataset

__all__ = ["QuerySampleLibrary"]


class QuerySampleLibrary:
    def __init__(
        self,
        dataset: TaskDataset,
        performance_sample_count: int = 1024,
        seed: int = 0x9E3779B9,
    ):
        self.dataset = dataset
        self.performance_sample_count = min(performance_sample_count, len(dataset))
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._loaded: set[int] = set()

    @property
    def total_sample_count(self) -> int:
        return len(self.dataset)

    # -- residency ---------------------------------------------------------
    def load_samples(self, indices: np.ndarray) -> None:
        self._loaded.update(int(i) for i in indices)

    def unload_samples(self, indices: np.ndarray) -> None:
        self._loaded.difference_update(int(i) for i in indices)

    @property
    def loaded_count(self) -> int:
        return len(self._loaded)

    def load_performance_set(self) -> np.ndarray:
        """Load the (seeded) subset used by performance mode."""
        indices = self._rng.choice(
            self.total_sample_count, size=self.performance_sample_count, replace=False
        )
        self.load_samples(indices)
        return np.sort(indices)

    # -- sampling ----------------------------------------------------------
    def sample_indices(self, n: int, from_loaded: bool = True) -> np.ndarray:
        """Seeded random query-sample selection."""
        if from_loaded:
            if not self._loaded:
                raise RuntimeError("no samples loaded; call load_performance_set first")
            pool = np.fromiter(self._loaded, dtype=np.int64)
        else:
            pool = np.arange(self.total_sample_count)
        return self._rng.choice(pool, size=n, replace=True)

    def get_feeds(self, indices: np.ndarray) -> dict[str, np.ndarray]:
        missing = [int(i) for i in indices if int(i) not in self._loaded]
        if missing:
            raise RuntimeError(f"query references unloaded samples: {missing[:5]}")
        return self.dataset.input_batch(np.asarray(indices))
