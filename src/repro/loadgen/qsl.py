"""Query Sample Library: the LoadGen's view of a data set (paper §4.1).

The QSL owns which samples are resident in memory and hands out seeded
random sample indices, precluding data-set-specific optimizations (the
submitter never knows the order in advance).
"""

from __future__ import annotations

import numpy as np

from ..datasets.base import TaskDataset

__all__ = ["QuerySampleLibrary"]


class QuerySampleLibrary:
    def __init__(
        self,
        dataset: TaskDataset,
        performance_sample_count: int = 1024,
        seed: int = 0x9E3779B9,
        block_size: int = 256,
    ):
        self.dataset = dataset
        self.performance_sample_count = min(performance_sample_count, len(dataset))
        self.seed = seed
        self.block_size = block_size
        self._rng = np.random.default_rng(seed)
        self._loaded: set[int] = set()
        # pre-drawn single-query index block (see next_sample_index)
        self._pool: np.ndarray | None = None
        self._block: np.ndarray | None = None
        self._block_pos = 0

    @property
    def total_sample_count(self) -> int:
        return len(self.dataset)

    # -- residency ---------------------------------------------------------
    def _invalidate_block(self) -> None:
        self._pool = None
        self._block = None
        self._block_pos = 0

    def load_samples(self, indices: np.ndarray) -> None:
        self._loaded.update(int(i) for i in indices)
        self._invalidate_block()

    def unload_samples(self, indices: np.ndarray) -> None:
        self._loaded.difference_update(int(i) for i in indices)
        self._invalidate_block()

    @property
    def loaded_count(self) -> int:
        return len(self._loaded)

    def load_performance_set(self) -> np.ndarray:
        """Load the (seeded) subset used by performance mode."""
        indices = self._rng.choice(
            self.total_sample_count, size=self.performance_sample_count, replace=False
        )
        self.load_samples(indices)
        return np.sort(indices)

    # -- sampling ----------------------------------------------------------
    def _loaded_pool(self) -> np.ndarray:
        if self._pool is None:
            if not self._loaded:
                raise RuntimeError("no samples loaded; call load_performance_set first")
            # sorted, not set-iteration order: the seeded query sequence must
            # be identical across processes regardless of the residency
            # insertion/eviction history that built the set
            self._pool = np.sort(np.fromiter(self._loaded, dtype=np.int64))
        return self._pool

    def sample_indices(self, n: int, from_loaded: bool = True) -> np.ndarray:
        """Seeded random query-sample selection."""
        if from_loaded:
            pool = self._loaded_pool()
        else:
            pool = np.arange(self.total_sample_count)
        return self._rng.choice(pool, size=n, replace=True)

    def next_sample_index(self) -> int:
        """One single-query draw, served from a pre-drawn index block.

        Emits exactly the same sequence as repeated ``sample_indices(1)``
        calls for the same seed (one size-``B`` draw of the generator equals
        ``B`` successive size-1 draws), but amortizes the RNG and pool-array
        overhead over ``block_size`` queries — the single-stream scenario
        calls this once per query. The block is discarded whenever residency
        changes, so don't interleave residency mutation with an in-flight
        block if the exact legacy stream matters.
        """
        if self._block is None or self._block_pos >= len(self._block):
            self._block = self._rng.choice(
                self._loaded_pool(), size=self.block_size, replace=True
            )
            self._block_pos = 0
        idx = int(self._block[self._block_pos])
        self._block_pos += 1
        return idx

    def get_feeds(self, indices: np.ndarray) -> dict[str, np.ndarray]:
        missing = [int(i) for i in indices if int(i) not in self._loaded]
        if missing:
            raise RuntimeError(f"query references unloaded samples: {missing[:5]}")
        return self.dataset.input_batch(np.asarray(indices))
