"""Post-run log validation (paper §4.1: "enable post-run validation").

These checks run over an unedited :class:`LoadGenLog` and return a list of
violations; an empty list means the run is rules-compliant. The submission
checker and audit pipeline both call this.
"""

from __future__ import annotations

from .logging import LoadGenLog
from .scenarios import loadgen_checksum

__all__ = ["validate_log"]


def validate_log(log: LoadGenLog) -> list[str]:
    problems: list[str] = []

    if log.metadata.get("loadgen_checksum") != loadgen_checksum():
        problems.append("loadgen checksum mismatch: the LoadGen was modified")

    if log.mode == "performance" and log.scenario == "single_stream":
        if log.query_count < log.min_query_count:
            problems.append(
                f"only {log.query_count} queries; rules require >= {log.min_query_count}"
            )
        if log.total_duration_s < log.min_duration_s:
            problems.append(
                f"run lasted {log.total_duration_s:.1f}s; rules require >= "
                f"{log.min_duration_s:.0f}s"
            )
        # single-stream issues exactly one sample per query
        for r in log.records[:64]:
            if len(r.sample_indices) != 1:
                problems.append("single-stream query carried more than one sample")
                break
        # timestamps must be strictly increasing with no overlap (the next
        # query is only issued after the previous one completes)
        prev_end = -1.0
        for r in log.records:
            if r.issue_time < prev_end - 1e-9:
                problems.append("overlapping queries in single-stream log")
                break
            prev_end = r.issue_time + r.latency_seconds
        if any(r.latency_seconds <= 0 for r in log.records):
            problems.append("non-positive latency recorded")

    if log.mode == "performance" and log.scenario == "offline":
        if log.offline_samples <= 0 or log.offline_seconds <= 0:
            problems.append("offline log missing sample count or duration")

    if log.mode == "accuracy":
        if not log.accuracy:
            problems.append("accuracy run produced no metric")
        covered = {i for r in log.records for i in r.sample_indices}
        if log.records and len(covered) < log.query_count:  # sanity only
            pass
        if not log.records:
            problems.append("accuracy run issued no queries")

    return problems
