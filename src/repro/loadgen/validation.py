"""Post-run conformance validation (paper §4.1: "enable post-run validation").

Two entry points:

* :func:`validate_log` runs the run-rule checks over an in-memory
  :class:`LoadGenLog` and returns a list of violations; an empty list means
  the run is rules-compliant. Every record is examined (not a prefix), and
  violations are reported at the first offending record so repeated runs
  produce identical output.

* :func:`validate_serialized` is what the submission checker and the audit
  actually call: it takes the raw *deserialized JSON payload* of a log file,
  checks the schema, rebuilds the log, runs :func:`validate_log`, and then
  recomputes the summary statistics from the raw records to catch edited
  logs whose claimed numbers no longer match their own data. It never
  raises on malformed input — corruption comes back as violations.
"""

from __future__ import annotations

import math

from .logging import LOG_SCHEMA_VERSION, LoadGenLog
from .scenarios import loadgen_checksum

__all__ = ["validate_log", "validate_serialized"]

_SCENARIOS = {"single_stream", "offline"}
_MODES = {"performance", "accuracy"}

# Claimed-vs-recomputed summary fields tolerate only float formatting noise;
# anything past this is an edit, not rounding.
_SUMMARY_RTOL = 1e-9


def _finite(x: float) -> bool:
    return isinstance(x, (int, float)) and math.isfinite(x)


def validate_log(log: LoadGenLog) -> list[str]:
    problems: list[str] = []

    if log.metadata.get("loadgen_checksum") != loadgen_checksum():
        problems.append("loadgen checksum mismatch: the LoadGen was modified")
    if log.scenario not in _SCENARIOS:
        problems.append(f"unknown scenario {log.scenario!r}")
    if log.mode not in _MODES:
        problems.append(f"unknown mode {log.mode!r}")

    # faults surfaced by the harness are reported, never silently accepted
    dropped = log.metadata.get("dropped_queries", 0)
    if dropped:
        problems.append(
            f"degraded run: {dropped} queries dropped after exhausting the retry budget"
        )
    if log.metadata.get("partial"):
        problems.append(
            f"partial run: aborted early ({log.metadata.get('partial_reason', 'unknown reason')})"
        )

    # every record must be physically plausible, wherever it sits in the log
    for i, r in enumerate(log.records):
        if not (_finite(r.issue_time) and _finite(r.latency_seconds)):
            problems.append(f"record {i} contains non-finite timing values")
            break
    if log.mode == "performance":
        for i, r in enumerate(log.records):
            if not _finite(r.latency_seconds) or r.latency_seconds <= 0:
                problems.append(f"non-positive latency recorded at record {i}")
                break

    if log.mode == "performance" and log.scenario == "single_stream":
        if log.query_count < log.min_query_count:
            problems.append(
                f"only {log.query_count} queries; rules require >= {log.min_query_count}"
            )
        if log.total_duration_s < log.min_duration_s:
            problems.append(
                f"run lasted {log.total_duration_s:.1f}s; rules require >= "
                f"{log.min_duration_s:.0f}s"
            )
        # single-stream issues exactly one sample per query — all records
        for i, r in enumerate(log.records):
            if len(r.sample_indices) != 1:
                problems.append(
                    f"single-stream query {i} carried {len(r.sample_indices)} samples"
                )
                break
        # timestamps must be strictly increasing with no overlap (the next
        # query is only issued after the previous one completes)
        prev_end = -1.0
        for i, r in enumerate(log.records):
            if r.issue_time < prev_end - 1e-9:
                problems.append(f"overlapping queries in single-stream log at record {i}")
                break
            prev_end = r.issue_time + r.latency_seconds

    if log.mode == "performance" and log.scenario == "offline":
        if log.offline_samples <= 0 or log.offline_seconds <= 0:
            problems.append("offline log missing sample count or duration")
        elif not (_finite(log.offline_seconds) and _finite(log.energy_joules)):
            problems.append("offline log contains non-finite totals")
        expected = log.metadata.get("offline_expected_samples")
        if expected is not None and log.offline_samples < expected:
            problems.append(
                f"offline burst covered {log.offline_samples} samples; rules "
                f"require the full {expected}-sample burst"
            )
        clock_scale = log.metadata.get("steady_clock_scale")
        if clock_scale is not None and not (0.0 < clock_scale <= 1.0):
            problems.append(
                f"offline steady clock scale {clock_scale} outside (0, 1]"
            )
        if log.records:
            problems.append(
                "offline run must be a single burst, but per-query records are present"
            )

    if log.mode == "accuracy":
        if not log.accuracy:
            problems.append("accuracy run produced no metric")
        for name, value in log.accuracy.items():
            if not _finite(value):
                problems.append(f"accuracy metric {name!r} is non-finite")
        if not log.records:
            problems.append("accuracy run issued no queries")
        # the whole validation set, each sample exactly once (§4.1)
        seen: set[int] = set()
        for i, r in enumerate(log.records):
            dup = [s for s in r.sample_indices if s in seen]
            if dup:
                problems.append(
                    f"accuracy run repeated sample index {dup[0]} at record {i}"
                )
                break
            seen.update(r.sample_indices)
        total = log.metadata.get("total_sample_count")
        if total is None:
            problems.append(
                "accuracy log missing total_sample_count metadata; dataset "
                "coverage cannot be verified"
            )
        elif len(seen) != total:
            problems.append(
                f"accuracy run covered {len(seen)} of {total} dataset samples; "
                f"rules require the entire validation set"
            )

    return problems


def _check_claimed_summary(payload: dict, log: LoadGenLog) -> list[str]:
    """Recompute the summary from raw records; flag edited claims."""
    claimed = payload.get("summary")
    if claimed in (None, {}):
        return ["log file carries no summary block to cross-check"]
    if not isinstance(claimed, dict):
        return [f"summary block must be a dict, got {type(claimed).__name__}"]
    try:
        recomputed = log.summary()
    except (ValueError, ZeroDivisionError) as exc:
        return [f"summary cannot be recomputed from records: {exc}"]

    problems = []
    for key in sorted(set(claimed) | set(recomputed)):
        if key not in recomputed:
            problems.append(f"summary claims unknown field {key!r}")
            continue
        if key not in claimed:
            problems.append(f"summary is missing field {key!r}")
            continue
        a, b = claimed[key], recomputed[key]
        if isinstance(b, dict):
            if a != b:
                problems.append(
                    f"summary field {key!r} edited: claims {a!r}, records say {b!r}"
                )
        elif isinstance(b, int) and not isinstance(b, bool):
            # integer fields (seed, query_count) admit no tolerance at all
            if a != b:
                problems.append(
                    f"summary field {key!r} edited: claims {a!r}, "
                    f"recomputed {b!r} from the raw records"
                )
        elif isinstance(b, float):
            if not isinstance(a, (int, float)) or not math.isclose(
                float(a), float(b), rel_tol=_SUMMARY_RTOL, abs_tol=1e-12
            ):
                problems.append(
                    f"summary field {key!r} edited: claims {a!r}, "
                    f"recomputed {b!r} from the raw records"
                )
        elif a != b:
            problems.append(
                f"summary field {key!r} edited: claims {a!r}, records say {b!r}"
            )
    return problems


def validate_serialized(payload: object) -> list[str]:
    """Validate a deserialized log file the way the auditor receives it.

    Fault-tolerant: schema violations, malformed records, and type garbage
    become violation strings instead of exceptions, so one corrupt log file
    cannot crash a submission-checker sweep.
    """
    if not isinstance(payload, dict):
        return [f"log payload must be a JSON object, got {type(payload).__name__}"]
    if payload.get("schema_version") != LOG_SCHEMA_VERSION:
        return [
            f"unsupported or missing log schema version "
            f"{payload.get('schema_version')!r} (expected {LOG_SCHEMA_VERSION})"
        ]
    try:
        log = LoadGenLog.from_dict(payload)
    except ValueError as exc:
        return [f"log payload does not deserialize: {exc}"]
    problems = validate_log(log)
    problems += _check_claimed_summary(payload, log)
    return problems
