"""System-under-test implementations (paper §4.3).

``AccuracySUT`` really executes the scaled reference graph through a chosen
numerics pipeline and post-processes predictions. ``PerformanceSUT`` wraps a
:class:`SimulatedDevice` plus backend-compiled models: queries return
latencies from the hardware model and mutate thermal state.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..datasets.base import TaskDataset
from ..graph.executor import Executor
from ..graph.graph import Graph
from ..hardware.device import SimulatedDevice
from ..hardware.scheduler import CompiledModel, offline_throughput

__all__ = ["SystemUnderTest", "AccuracySUT", "PerformanceSUT", "OfflineResult"]


@dataclass(frozen=True)
class OfflineResult:
    total_samples: int
    total_seconds: float
    steady_clock_scale: float
    energy_joules: float

    @property
    def throughput_fps(self) -> float:
        return self.total_samples / self.total_seconds


class SystemUnderTest(abc.ABC):
    name: str = "sut"

    @abc.abstractmethod
    def issue_query(self, indices: np.ndarray) -> float:
        """Process one query; returns its latency in (virtual) seconds."""


class AccuracySUT(SystemUnderTest):
    """Runs the functional graph through the planned executor; accuracy mode.

    ``workers > 1`` splits each batched query across a thread pool, one
    planned execution per chunk (the offline accuracy path). The compiled
    plan is shared — prepacked constants are read-only — and every sample's
    prediction is computed independently, so results are identical to the
    sequential path regardless of worker count.

    ``use_arena`` (default on) executes every batch through the plan's
    static memory arena (:meth:`ExecutionPlan.run_arena`): one arena-backed
    plan is reused across all batches of the run, and the steady-state hot
    path allocates no transient outputs. Results are bit-identical to the
    generic path, so the flag exists only so the equivalence can be
    asserted and the benefit measured.
    """

    def __init__(
        self,
        graph: Graph,
        dataset: TaskDataset,
        name: str = "accuracy-sut",
        workers: int = 1,
        use_arena: bool = True,
    ):
        if workers < 1:
            raise ValueError("workers must be positive")
        self.graph = graph
        self.dataset = dataset
        self.executor = Executor(graph)
        self.name = name
        self.workers = workers
        self.use_arena = use_arena
        self.predictions: dict[int, object] = {}
        self._pool = None

    def _predict_chunk(self, indices: np.ndarray) -> list[tuple[int, object]]:
        feeds = self.dataset.input_batch(indices)
        if self.use_arena:
            outputs = self.executor.run_arena(feeds)
        else:
            outputs = self.executor.run(feeds)
        results = []
        for j, i in enumerate(indices):
            per_sample = {k: v[j] for k, v in outputs.items()}
            results.append((int(i), self.dataset.postprocess(per_sample, int(i))))
        return results

    def issue_query(self, indices: np.ndarray) -> float:
        indices = np.asarray(indices)
        if self.workers > 1 and len(indices) >= 2 * self.workers:
            if self._pool is None:
                from concurrent.futures import ThreadPoolExecutor

                self._pool = ThreadPoolExecutor(max_workers=self.workers)
            chunks = np.array_split(indices, self.workers)
            for chunk_results in self._pool.map(self._predict_chunk, chunks):
                self.predictions.update(chunk_results)
        else:
            self.predictions.update(self._predict_chunk(indices))
        return 0.0  # accuracy mode is untimed

    def evaluate(self) -> dict[str, float]:
        return self.dataset.evaluate(self.predictions)

    def close(self) -> None:
        """Shut down the worker pool. Idempotent; the harness calls this
        after every accuracy run so threads never outlive the test."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class PerformanceSUT(SystemUnderTest):
    """Latency/throughput from the hardware simulator; used by perf mode."""

    def __init__(
        self,
        device: SimulatedDevice,
        single_stream_model: CompiledModel,
        offline_pipelines: list[CompiledModel] | None = None,
        name: str = "performance-sut",
    ):
        self.device = device
        self.single_stream_model = single_stream_model
        self.offline_pipelines = offline_pipelines or [single_stream_model]
        self.name = name
        # the compiled pipelines (and their arena-planned working sets) are
        # fixed for the SUT's lifetime, so the aggregate throughput at a given
        # batch size is too: compute it once and reuse it across bursts
        self._offline_fps: dict[int, float] = {}

    def issue_query(self, indices: np.ndarray) -> float:
        return self.device.run_query(self.single_stream_model, batch=len(indices)).latency_seconds

    def run_offline(self, total_samples: int, batch: int = 256) -> OfflineResult:
        """Offline burst: ALP pipelines at thermal steady state.

        Batched execution with concurrent engines saturates the chip: it runs
        flat-out at the TDP cap, settles at the corresponding steady-state
        temperature, and the sustained throughput carries that throttle.
        """
        soc = self.device.soc
        power = soc.tdp_watts
        steady_temp = self.device.thermal.ambient_c + power * soc.thermal_resistance
        over = steady_temp - soc.throttle_temp
        clock = 1.0 if over <= 0 else max(
            self.device.thermal.min_clock_scale, 1.0 - soc.throttle_slope * over
        )
        if batch not in self._offline_fps:
            self._offline_fps[batch] = offline_throughput(self.offline_pipelines, batch=batch)
        fps = self._offline_fps[batch] * clock
        total_seconds = total_samples / fps
        energy = power * total_seconds
        self.device.thermal.temperature_c = max(
            self.device.thermal.temperature_c, min(steady_temp, 95.0)
        )
        self.device.virtual_time += total_seconds
        self.device.total_energy_joules += energy
        return OfflineResult(total_samples, total_seconds, clock, energy)
