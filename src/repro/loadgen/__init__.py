"""The Load Generator: scenarios, QSL, SUT glue, logs, validation (paper §4)."""

from .clock import VirtualClock
from .faults import FaultySUT, QueryFailure, QueryFault, QueryTimeout
from .logging import LOG_SCHEMA_VERSION, LoadGenLog, QueryRecord
from .qsl import QuerySampleLibrary
from .scenarios import LoadGenerator, Mode, Scenario, TestSettings, loadgen_checksum
from .sut import AccuracySUT, OfflineResult, PerformanceSUT, SystemUnderTest
from .validation import validate_log, validate_serialized

__all__ = [
    "VirtualClock",
    "QuerySampleLibrary",
    "SystemUnderTest",
    "AccuracySUT",
    "PerformanceSUT",
    "OfflineResult",
    "FaultySUT",
    "QueryFault",
    "QueryFailure",
    "QueryTimeout",
    "LoadGenerator",
    "TestSettings",
    "Scenario",
    "Mode",
    "LoadGenLog",
    "QueryRecord",
    "LOG_SCHEMA_VERSION",
    "validate_log",
    "validate_serialized",
    "loadgen_checksum",
]
