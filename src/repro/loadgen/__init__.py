"""The Load Generator: scenarios, QSL, SUT glue, logs, validation (paper §4)."""

from .clock import VirtualClock
from .logging import LoadGenLog, QueryRecord
from .qsl import QuerySampleLibrary
from .scenarios import LoadGenerator, Mode, Scenario, TestSettings, loadgen_checksum
from .sut import AccuracySUT, OfflineResult, PerformanceSUT, SystemUnderTest
from .validation import validate_log

__all__ = [
    "VirtualClock",
    "QuerySampleLibrary",
    "SystemUnderTest",
    "AccuracySUT",
    "PerformanceSUT",
    "OfflineResult",
    "LoadGenerator",
    "TestSettings",
    "Scenario",
    "Mode",
    "LoadGenLog",
    "QueryRecord",
    "validate_log",
    "loadgen_checksum",
]
