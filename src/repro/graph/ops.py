"""Operator set of the graph IR.

Each operator knows how to (1) infer output shapes, (2) execute in float,
(3) execute in the quantized domain, and (4) report an analytical cost
(:class:`OpCost`) consumed by the hardware performance model.

The op vocabulary mirrors the TFLite subset the five MLPerf Mobile reference
models require. Quantized execution uses true integer kernels for the
MAC-dominated ops (conv / depthwise / fully-connected) and LUTs for unary
activations; the remaining ops fall back to dequantize -> float -> quantize,
exactly as TFLite does for its "float fallback" islands.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .. import kernels as K
from ..kernels.numerics import Numerics, QuantParams, dequantize, quantize

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..staticcheck.intervals import Interval
    from .graph import Graph

_INTERVALS = None


def _iv():
    """Lazy import of the interval domain (breaks the staticcheck cycle)."""
    global _INTERVALS
    if _INTERVALS is None:
        from ..staticcheck import intervals as mod

        _INTERVALS = mod
    return _INTERVALS

__all__ = [
    "OpCost",
    "ShapeError",
    "Op",
    "Conv2D",
    "DepthwiseConv2D",
    "FullyConnected",
    "AvgPool2D",
    "MaxPool2D",
    "GlobalAvgPool",
    "ResizeBilinear",
    "Add",
    "Concat",
    "Activation",
    "Softmax",
    "Reshape",
    "BatchNorm",
    "LayerNorm",
    "MultiHeadAttention",
    "Embedding",
    "Split",
    "LSTM",
    "DepthToSpace",
    "Constant",
    "Pad",
    "ACTIVATION_FUNCTIONS",
]


ACTIVATION_FUNCTIONS = {
    "relu": K.relu,
    "relu6": K.relu6,
    "hard_swish": K.hard_swish,
    "hard_sigmoid": K.hard_sigmoid,
    "sigmoid": K.sigmoid,
    "tanh": K.tanh,
    "gelu": K.gelu,
}


@dataclass(frozen=True)
class OpCost:
    """Analytical cost of one operator execution for a single sample."""

    macs: int = 0
    weight_bytes: float = 0.0
    activation_bytes: float = 0.0

    def __add__(self, other: "OpCost") -> "OpCost":
        return OpCost(
            self.macs + other.macs,
            self.weight_bytes + other.weight_bytes,
            self.activation_bytes + other.activation_bytes,
        )


class ShapeError(ValueError):
    """Shape inference failed; carries op name, op type and input shapes."""

    def __init__(self, op: "Op", reason: str, in_shapes: Sequence[tuple[int, ...]]):
        self.op_name = op.name
        self.op_type = op.op_type
        self.in_shapes = [tuple(s) for s in in_shapes]
        super().__init__(
            f"{self.op_type} op {op.name!r}: {reason} "
            f"(input shapes: {self.in_shapes})"
        )


def _shape_elems(shape: Sequence[int]) -> int:
    n = 1
    for d in shape:
        if d != -1:
            n *= d
    return n


def _real_param(graph: "Graph", name: str) -> np.ndarray | None:
    """A parameter's real-valued matrix (dequantized when it carries qparams)."""
    arr = graph.params.get(name)
    if arr is None:
        return None
    qp = graph.param_qparams.get(name)
    if qp is not None:
        return dequantize(arr, qp).astype(np.float64)
    return np.asarray(arr, dtype=np.float64)


def _qparams_equal(a: QuantParams | None, b: QuantParams | None) -> bool:
    """True when two quantization params describe the identical affine map."""
    if a is None or b is None:
        return a is b
    return (
        a.numerics is b.numerics
        and a.axis == b.axis
        and np.array_equal(a.scale, b.scale)
        and np.array_equal(a.zero_point, b.zero_point)
    )


def _reduction_interval(
    w_flat: np.ndarray,
    x,
    bias: np.ndarray | None,
    *,
    include_zero: bool,
):
    """Interval of ``Σ_i w_i·x_i + b`` per output column, hulled over columns.

    ``w_flat`` is the real weight matrix reshaped to ``(reduction, out)``;
    every ``x_i`` independently ranges over the interval ``x``.
    ``include_zero`` widens each term with 0 (a "same"-padded tap contributes
    nothing). The result is padded by the float32 dot-product error bound, so
    it contains the kernel's floating-point output, not just the real one.
    """
    Interval = _iv().Interval
    if not x.is_bounded:
        return Interval.top()
    a = w_flat * x.lo
    b = w_flat * x.hi
    term_lo = np.minimum(a, b)
    term_hi = np.maximum(a, b)
    if include_zero:
        term_lo = np.minimum(term_lo, 0.0)
        term_hi = np.maximum(term_hi, 0.0)
    lo = term_lo.sum(axis=0)
    hi = term_hi.sum(axis=0)
    mag = np.abs(w_flat).sum(axis=0) * x.max_abs
    if bias is not None:
        lo = lo + bias
        hi = hi + bias
        mag = mag + np.abs(bias)
    pad = _iv().dot_error_bound(w_flat.shape[0] + 1, float(mag.max(initial=0.0)))
    return Interval(float(lo.min()) - pad, float(hi.max()) + pad)


def _symbolic_reduction_interval(graph: "Graph", op: "Op", k: int, x):
    """Weight-free fallback: bound the reduction from the weight qparams.

    With only a quantization format for the weights, every real weight lies
    in ``[-A, A]`` with ``A = max_c scale_c · max(|qmin−zp|, |qmax−zp|)``;
    without even that, the reduction is unbounded.
    """
    Interval = _iv().Interval
    w_qp = graph.param_qparams.get(op.attrs["weight"])
    b_name = op.attrs.get("bias")
    if w_qp is None or not x.is_bounded or (b_name and graph.params.get(b_name) is None):
        return Interval.top()
    zp = w_qp.zero_point.astype(np.float64)
    amp = float(np.max(w_qp.scale * np.maximum(
        np.abs(w_qp.numerics.qmin - zp), np.abs(w_qp.numerics.qmax - zp))))
    m = k * amp * x.max_abs
    iv = Interval(-m, m)
    if b_name:
        b = _real_param(graph, b_name)
        iv = iv + Interval(float(b.min()), float(b.max()))
    return iv.widen(_iv().dot_error_bound(k + 1, m))


class Op:
    """Base operator. Subclasses set ``op_type`` and implement the hooks."""

    op_type = "base"
    integer_kernel = False  # True if execute_quantized is a real integer path

    def __init__(self, name: str, inputs: Sequence[str], outputs: Sequence[str], **attrs):
        self.name = name
        self.inputs = list(inputs)
        self.outputs = list(outputs)
        self.attrs = dict(attrs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} {self.inputs}->{self.outputs}>"

    # -- interface ---------------------------------------------------------
    def param_names(self) -> list[str]:
        return []

    def infer_shapes(self, in_shapes: list[tuple[int, ...]], graph: "Graph") -> list[tuple[int, ...]]:
        raise NotImplementedError

    def infer_ranges(
        self, in_ranges: list["Interval"], in_shapes: list[tuple[int, ...]],
        graph: "Graph",
    ) -> list["Interval"]:
        """Sound value-interval transfer: concrete inputs inside ``in_ranges``
        imply concrete outputs inside the returned intervals (including
        float32 rounding). The base op knows nothing and returns ⊤."""
        return [_iv().Interval.top() for _ in self.outputs]

    def execute_float(self, inputs: list[np.ndarray], graph: "Graph") -> list[np.ndarray]:
        raise NotImplementedError

    def execute_quantized(self, inputs: list[np.ndarray], graph: "Graph") -> list[np.ndarray]:
        """Default float-fallback: dequantize -> float kernel -> quantize."""
        deq = []
        for name, arr in zip(self.inputs, inputs):
            qp = graph.spec(name).qparams
            deq.append(dequantize(arr, qp) if qp is not None else arr)
        outs = self.execute_float(deq, graph)
        result = []
        for name, arr in zip(self.outputs, outs):
            qp = graph.spec(name).qparams
            result.append(quantize(arr, qp) if qp is not None else arr)
        return result

    def cost(
        self,
        in_shapes: list[tuple[int, ...]],
        out_shapes: list[tuple[int, ...]],
        graph: "Graph",
        numerics: Numerics = Numerics.FP32,
    ) -> OpCost:
        act = sum(_shape_elems(s) for s in in_shapes) + sum(_shape_elems(s) for s in out_shapes)
        w_elems = sum(graph.param_elements(p) for p in self.param_names())
        b = numerics.bytes_per_element
        return OpCost(
            macs=self.macs(in_shapes, out_shapes, graph),
            weight_bytes=w_elems * b,
            activation_bytes=act * b,
        )

    def macs(self, in_shapes, out_shapes, graph: "Graph") -> int:
        return 0

    def _apply_activation(self, x: np.ndarray) -> np.ndarray:
        act = self.attrs.get("activation")
        if act is None:
            return x
        return ACTIVATION_FUNCTIONS[act](x)


class Conv2D(Op):
    op_type = "conv2d"
    integer_kernel = True

    def param_names(self) -> list[str]:
        names = [self.attrs["weight"]]
        if self.attrs.get("bias"):
            names.append(self.attrs["bias"])
        return names

    def infer_shapes(self, in_shapes, graph):
        n, h, w, c = in_shapes[0]
        kh, kw, cin, cout = graph.param_shape(self.attrs["weight"])
        if cin != c:
            raise ShapeError(
                self, f"input has {c} channels but weight expects {cin}", in_shapes)
        oh, ow, _, _ = K.conv_output_shape(
            h, w, kh, kw, self.attrs["stride"], self.attrs["padding"],
            self.attrs.get("dilation", 1),
        )
        return [(n, oh, ow, cout)]

    def execute_float(self, inputs, graph):
        w = graph.params[self.attrs["weight"]]
        b = graph.params.get(self.attrs.get("bias"))
        out = K.conv2d(
            inputs[0], w, b, stride=self.attrs["stride"], padding=self.attrs["padding"],
            dilation=self.attrs.get("dilation", 1),
        )
        return [self._apply_activation(out)]

    def execute_quantized(self, inputs, graph):
        wq = graph.params[self.attrs["weight"]]
        bq = graph.params.get(self.attrs.get("bias"))
        x_qp = graph.spec(self.inputs[0]).qparams
        w_qp = graph.param_qparams[self.attrs["weight"]]
        out_qp = graph.spec(self.outputs[0]).qparams
        out = K.conv2d_quantized(
            inputs[0], wq, bq, x_qp, w_qp, out_qp,
            stride=self.attrs["stride"], padding=self.attrs["padding"],
            dilation=self.attrs.get("dilation", 1),
        )
        act = self.attrs.get("activation")
        if act in ("relu", "relu6"):
            # clamp in the integer domain at the quantized representation of 0/6
            zp = int(out_qp.zero_point[0])
            lo = zp
            hi = out_qp.numerics.qmax
            if act == "relu6":
                hi = min(hi, int(round(6.0 / float(out_qp.scale[0])) + zp))
            out = np.clip(out, lo, hi).astype(out_qp.numerics.np_dtype)
        elif act is not None:
            lut = K.quantized_lut(ACTIVATION_FUNCTIONS[act], out_qp, out_qp)
            out = K.apply_quantized_lut(out, lut, out_qp)
        return [out]

    def macs(self, in_shapes, out_shapes, graph):
        kh, kw, cin, cout = graph.param_shape(self.attrs["weight"])
        _, oh, ow, _ = out_shapes[0]
        return oh * ow * kh * kw * cin * cout

    def infer_ranges(self, in_ranges, in_shapes, graph):
        w = _real_param(graph, self.attrs["weight"])
        act = self.attrs.get("activation")
        same = self.attrs["padding"] == "same"
        if w is None:
            iv = _symbolic_reduction_interval(
                graph, self, self._reduction_len(graph), in_ranges[0])
        else:
            b_name = self.attrs.get("bias")
            bias = _real_param(graph, b_name) if b_name else None
            iv = _reduction_interval(
                self._weight_as_matrix(w), in_ranges[0], bias, include_zero=same)
        return [_iv().activation_transfer(act, iv)]

    def _weight_as_matrix(self, w: np.ndarray) -> np.ndarray:
        # (kh, kw, Cin, Cout) -> (kh*kw*Cin, Cout): reduction per output channel
        return w.reshape(-1, w.shape[-1])

    def _reduction_len(self, graph: "Graph") -> int:
        kh, kw, cin, _ = graph.param_shape(self.attrs["weight"])
        return kh * kw * cin


class DepthwiseConv2D(Conv2D):
    op_type = "depthwise_conv2d"

    def infer_shapes(self, in_shapes, graph):
        n, h, w, c = in_shapes[0]
        kh, kw, wc, mult = graph.param_shape(self.attrs["weight"])
        if wc != c or mult != 1:
            raise ShapeError(
                self,
                f"depthwise weight {graph.param_shape(self.attrs['weight'])} "
                f"needs channel dim {c} and multiplier 1",
                in_shapes)
        oh, ow, _, _ = K.conv_output_shape(h, w, kh, kw, self.attrs["stride"], self.attrs["padding"])
        return [(n, oh, ow, c)]

    def execute_float(self, inputs, graph):
        w = graph.params[self.attrs["weight"]]
        b = graph.params.get(self.attrs.get("bias"))
        out = K.depthwise_conv2d(
            inputs[0], w, b, stride=self.attrs["stride"], padding=self.attrs["padding"]
        )
        return [self._apply_activation(out)]

    def execute_quantized(self, inputs, graph):
        wq = graph.params[self.attrs["weight"]]
        bq = graph.params.get(self.attrs.get("bias"))
        x_qp = graph.spec(self.inputs[0]).qparams
        w_qp = graph.param_qparams[self.attrs["weight"]]
        out_qp = graph.spec(self.outputs[0]).qparams
        out = K.depthwise_conv2d_quantized(
            inputs[0], wq, bq, x_qp, w_qp, out_qp,
            stride=self.attrs["stride"], padding=self.attrs["padding"],
        )
        act = self.attrs.get("activation")
        if act in ("relu", "relu6"):
            zp = int(out_qp.zero_point[0])
            hi = out_qp.numerics.qmax
            if act == "relu6":
                hi = min(hi, int(round(6.0 / float(out_qp.scale[0])) + zp))
            out = np.clip(out, zp, hi).astype(out_qp.numerics.np_dtype)
        elif act is not None:
            lut = K.quantized_lut(ACTIVATION_FUNCTIONS[act], out_qp, out_qp)
            out = K.apply_quantized_lut(out, lut, out_qp)
        return [out]

    def macs(self, in_shapes, out_shapes, graph):
        kh, kw, c, _ = graph.param_shape(self.attrs["weight"])
        _, oh, ow, _ = out_shapes[0]
        return oh * ow * kh * kw * c

    def _weight_as_matrix(self, w: np.ndarray) -> np.ndarray:
        # (kh, kw, C, 1) -> (kh*kw, C): per-channel window reduction
        return w[..., 0].reshape(-1, w.shape[2])

    def _reduction_len(self, graph: "Graph") -> int:
        kh, kw, _, _ = graph.param_shape(self.attrs["weight"])
        return kh * kw


class FullyConnected(Op):
    op_type = "fully_connected"
    integer_kernel = True

    def param_names(self) -> list[str]:
        names = [self.attrs["weight"]]
        if self.attrs.get("bias"):
            names.append(self.attrs["bias"])
        return names

    def infer_shapes(self, in_shapes, graph):
        fin, fout = graph.param_shape(self.attrs["weight"])
        shape = in_shapes[0]
        if shape[-1] != fin:
            raise ShapeError(
                self, f"feature dim {shape[-1]} != weight input dim {fin}", in_shapes)
        return [shape[:-1] + (fout,)]

    def execute_float(self, inputs, graph):
        w = graph.params[self.attrs["weight"]]
        b = graph.params.get(self.attrs.get("bias"))
        return [self._apply_activation(K.fully_connected(inputs[0], w, b))]

    def execute_quantized(self, inputs, graph):
        wq = graph.params[self.attrs["weight"]]
        bq = graph.params.get(self.attrs.get("bias"))
        x_qp = graph.spec(self.inputs[0]).qparams
        w_qp = graph.param_qparams[self.attrs["weight"]]
        out_qp = graph.spec(self.outputs[0]).qparams
        out = K.fully_connected_quantized(inputs[0], wq, bq, x_qp, w_qp, out_qp)
        act = self.attrs.get("activation")
        if act is not None:
            lut = K.quantized_lut(ACTIVATION_FUNCTIONS[act], out_qp, out_qp)
            out = K.apply_quantized_lut(out, lut, out_qp)
        return [out]

    def macs(self, in_shapes, out_shapes, graph):
        fin, fout = graph.param_shape(self.attrs["weight"])
        lead = _shape_elems(in_shapes[0][:-1])
        return lead * fin * fout

    def infer_ranges(self, in_ranges, in_shapes, graph):
        w = _real_param(graph, self.attrs["weight"])
        act = self.attrs.get("activation")
        if w is None:
            fin = graph.param_shape(self.attrs["weight"])[0]
            iv = _symbolic_reduction_interval(graph, self, fin, in_ranges[0])
        else:
            b_name = self.attrs.get("bias")
            bias = _real_param(graph, b_name) if b_name else None
            iv = _reduction_interval(w, in_ranges[0], bias, include_zero=False)
        return [_iv().activation_transfer(act, iv)]


class AvgPool2D(Op):
    op_type = "avg_pool2d"

    def infer_shapes(self, in_shapes, graph):
        n, h, w, c = in_shapes[0]
        oh, ow, _, _ = K.conv_output_shape(
            h, w, self.attrs["k"], self.attrs["k"], self.attrs["stride"], self.attrs["padding"]
        )
        return [(n, oh, ow, c)]

    def execute_float(self, inputs, graph):
        return [K.avg_pool2d(inputs[0], self.attrs["k"], self.attrs["stride"], self.attrs["padding"])]

    def infer_ranges(self, in_ranges, in_shapes, graph):
        iv = in_ranges[0]
        if not iv.is_bounded:
            return [iv]
        if self.attrs["padding"] == "same":
            # zero-padded taps participate in the mean
            iv = iv.hull(_iv().Interval.point(0.0))
        k2 = self.attrs["k"] ** 2
        pad = _iv().dot_error_bound(k2 + 1, iv.max_abs * k2) / max(k2, 1)
        return [iv.widen(pad).pad_f32()]


class MaxPool2D(AvgPool2D):
    op_type = "max_pool2d"

    def execute_float(self, inputs, graph):
        return [K.max_pool2d(inputs[0], self.attrs["k"], self.attrs["stride"], self.attrs["padding"])]

    def infer_ranges(self, in_ranges, in_shapes, graph):
        # exact selection of an existing element (padding uses -inf taps)
        return [in_ranges[0]]


class GlobalAvgPool(Op):
    op_type = "global_avg_pool"

    def infer_shapes(self, in_shapes, graph):
        n, h, w, c = in_shapes[0]
        if self.attrs.get("keepdims", True):
            return [(n, 1, 1, c)]
        return [(n, c)]

    def execute_float(self, inputs, graph):
        return [K.global_avg_pool(inputs[0], keepdims=self.attrs.get("keepdims", True))]

    def infer_ranges(self, in_ranges, in_shapes, graph):
        iv = in_ranges[0]
        if not iv.is_bounded:
            return [iv]
        hw = _shape_elems(in_shapes[0][1:3]) if len(in_shapes[0]) == 4 else 1
        pad = _iv().dot_error_bound(hw + 1, iv.max_abs * hw) / max(hw, 1)
        return [iv.widen(pad).pad_f32()]


class ResizeBilinear(Op):
    op_type = "resize_bilinear"

    def infer_shapes(self, in_shapes, graph):
        n, _, _, c = in_shapes[0]
        return [(n, self.attrs["out_h"], self.attrs["out_w"], c)]

    def execute_float(self, inputs, graph):
        return [
            K.resize_bilinear(
                inputs[0],
                self.attrs["out_h"],
                self.attrs["out_w"],
                self.attrs.get("align_corners", False),
            )
        ]

    def infer_ranges(self, in_ranges, in_shapes, graph):
        # convex combination of existing samples, plus interpolation rounding
        return [in_ranges[0].pad_f32() if in_ranges[0].is_bounded else in_ranges[0]]


class Add(Op):
    op_type = "add"

    def infer_shapes(self, in_shapes, graph):
        if len(in_shapes) != 2:
            raise ShapeError(self, f"needs exactly 2 inputs, got {len(in_shapes)}", in_shapes)
        if in_shapes[0][1:] != in_shapes[1][1:]:
            raise ShapeError(self, "operand shapes disagree beyond the batch dim", in_shapes)
        return [in_shapes[0]]

    def execute_float(self, inputs, graph):
        return [self._apply_activation((inputs[0] + inputs[1]).astype(np.float32))]

    def infer_ranges(self, in_ranges, in_shapes, graph):
        iv = in_ranges[0] + in_ranges[1]
        if iv.is_bounded:
            iv = iv.pad_f32()
        return [_iv().activation_transfer(self.attrs.get("activation"), iv)]


class Concat(Op):
    op_type = "concat"

    def infer_shapes(self, in_shapes, graph):
        axis = self.attrs["axis"]
        base = list(in_shapes[0])
        if not -len(base) <= axis < len(base):
            raise ShapeError(self, f"axis {axis} out of range for rank {len(base)}", in_shapes)
        for s in in_shapes[1:]:
            if len(s) != len(base):
                raise ShapeError(self, "inputs have different ranks", in_shapes)
            mismatched = [
                d for d in range(len(base))
                if d != axis % len(base) and s[d] != base[d]
            ]
            if mismatched:
                raise ShapeError(
                    self, f"inputs disagree on non-concat dim(s) {mismatched}", in_shapes)
        base[axis] = sum(s[axis] for s in in_shapes)
        return [tuple(base)]

    def execute_float(self, inputs, graph):
        return [np.concatenate(inputs, axis=self.attrs["axis"]).astype(np.float32)]

    def execute_quantized(self, inputs, graph):
        # requantize every input into the shared output domain, then concat
        out_qp = graph.spec(self.outputs[0]).qparams
        if out_qp is None:
            return [np.concatenate(inputs, axis=self.attrs["axis"])]
        parts = []
        for name, arr in zip(self.inputs, inputs):
            qp = graph.spec(name).qparams
            parts.append(quantize(dequantize(arr, qp), out_qp) if qp is not None else arr)
        return [np.concatenate(parts, axis=self.attrs["axis"])]

    def infer_ranges(self, in_ranges, in_shapes, graph):
        iv = in_ranges[0]
        for other in in_ranges[1:]:
            iv = iv.hull(other)
        return [iv]


class Activation(Op):
    op_type = "activation"
    integer_kernel = True

    def infer_shapes(self, in_shapes, graph):
        return [in_shapes[0]]

    def execute_float(self, inputs, graph):
        return [ACTIVATION_FUNCTIONS[self.attrs["kind"]](inputs[0])]

    def execute_quantized(self, inputs, graph):
        in_qp = graph.spec(self.inputs[0]).qparams
        out_qp = graph.spec(self.outputs[0]).qparams
        if in_qp is None or out_qp is None:
            return super().execute_quantized(inputs, graph)
        lut = K.quantized_lut(ACTIVATION_FUNCTIONS[self.attrs["kind"]], in_qp, out_qp)
        return [K.apply_quantized_lut(inputs[0], lut, in_qp)]

    def infer_ranges(self, in_ranges, in_shapes, graph):
        return [_iv().activation_transfer(self.attrs["kind"], in_ranges[0])]


class Softmax(Op):
    op_type = "softmax"

    def infer_shapes(self, in_shapes, graph):
        return [in_shapes[0]]

    def execute_float(self, inputs, graph):
        return [K.softmax(inputs[0], axis=self.attrs.get("axis", -1))]

    def infer_ranges(self, in_ranges, in_shapes, graph):
        return [_iv().Interval(0.0, 1.0)]


class Reshape(Op):
    op_type = "reshape"

    def infer_shapes(self, in_shapes, graph):
        target = self.attrs["shape"]  # per-sample shape
        in_elems = _shape_elems(in_shapes[0][1:])
        if _shape_elems(target) != in_elems:
            raise ShapeError(
                self,
                f"cannot reshape {in_elems} elements/sample to (batch, *{tuple(target)})",
                in_shapes)
        return [(in_shapes[0][0],) + tuple(target)]

    def execute_float(self, inputs, graph):
        batch = inputs[0].shape[0]
        return [np.ascontiguousarray(inputs[0]).reshape(batch, *self.attrs["shape"])]

    def execute_quantized(self, inputs, graph):
        return self.execute_float(inputs, graph)

    def infer_ranges(self, in_ranges, in_shapes, graph):
        return [in_ranges[0]]  # pure data movement


class BatchNorm(Op):
    """Inference batch norm; exists pre-export and is folded by the converter."""

    op_type = "batch_norm"

    def param_names(self) -> list[str]:
        return [self.attrs[k] for k in ("mean", "variance", "gamma", "beta")]

    def infer_shapes(self, in_shapes, graph):
        return [in_shapes[0]]

    def execute_float(self, inputs, graph):
        p = graph.params
        return [
            K.batch_norm(
                inputs[0],
                p[self.attrs["mean"]],
                p[self.attrs["variance"]],
                p[self.attrs["gamma"]],
                p[self.attrs["beta"]],
                self.attrs.get("eps", 1e-3),
            )
        ]

    def infer_ranges(self, in_ranges, in_shapes, graph):
        Interval = _iv().Interval
        x = in_ranges[0]
        mean = _real_param(graph, self.attrs["mean"])
        var = _real_param(graph, self.attrs["variance"])
        gamma = _real_param(graph, self.attrs["gamma"])
        beta = _real_param(graph, self.attrs["beta"])
        if any(p is None for p in (mean, var, gamma, beta)) or not x.is_bounded:
            return [Interval.top()]
        # y_c = a_c·x + b_c with a_c = γ_c/√(var_c+eps); hull over channels
        a = gamma / np.sqrt(var + self.attrs.get("eps", 1e-3))
        b = beta - a * mean
        lo = np.minimum(a * x.lo, a * x.hi) + b
        hi = np.maximum(a * x.lo, a * x.hi) + b
        return [Interval(float(lo.min()), float(hi.max())).pad_f32()]


class LayerNorm(Op):
    op_type = "layer_norm"

    def param_names(self) -> list[str]:
        return [self.attrs["gamma"], self.attrs["beta"]]

    def infer_shapes(self, in_shapes, graph):
        return [in_shapes[0]]

    def execute_float(self, inputs, graph):
        return [
            K.layer_norm(
                inputs[0],
                graph.params[self.attrs["gamma"]],
                graph.params[self.attrs["beta"]],
                self.attrs.get("eps", 1e-6),
            )
        ]

    def infer_ranges(self, in_ranges, in_shapes, graph):
        Interval = _iv().Interval
        gamma = _real_param(graph, self.attrs["gamma"])
        beta = _real_param(graph, self.attrs["beta"])
        if gamma is None or beta is None or not in_ranges[0].is_bounded:
            return [Interval.top()]
        # the normalized vector z satisfies ‖z‖₂ = √N, so |z_i| ≤ √N for any
        # input; y_c = γ_c·z + β_c, hulled over channels
        n = in_shapes[0][-1]
        z = math.sqrt(float(n)) * (1.0 + 1e-5)  # float32 normalization slack
        lo = np.minimum(gamma * -z, gamma * z) + beta
        hi = np.maximum(gamma * -z, gamma * z) + beta
        return [Interval(float(lo.min()), float(hi.max())).pad_f32()]


class MultiHeadAttention(Op):
    """Fused scaled-dot-product attention over already-projected q/k/v."""

    op_type = "attention"

    def infer_shapes(self, in_shapes, graph):
        return [in_shapes[0]]

    def execute_float(self, inputs, graph):
        mask = inputs[3] if len(inputs) > 3 else None
        return [K.multi_head_attention(inputs[0], inputs[1], inputs[2], self.attrs["num_heads"], mask)]

    def macs(self, in_shapes, out_shapes, graph):
        _, s, hidden = in_shapes[0]
        return 2 * s * s * hidden

    def infer_ranges(self, in_ranges, in_shapes, graph):
        # softmax weights are a convex combination of the value rows, so the
        # output lives in the hull of v's interval regardless of q/k
        v = in_ranges[2]
        if not v.is_bounded:
            return [v]
        s = in_shapes[0][1]
        return [v.widen(_iv().dot_error_bound(s + 1, v.max_abs * 1.01)).pad_f32()]


class Embedding(Op):
    """Token-id gather plus learned position embeddings."""

    op_type = "embedding"

    def param_names(self) -> list[str]:
        names = [self.attrs["table"]]
        if self.attrs.get("position_table"):
            names.append(self.attrs["position_table"])
        return names

    def infer_shapes(self, in_shapes, graph):
        n, s = in_shapes[0]
        _, d = graph.param_shape(self.attrs["table"])
        return [(n, s, d)]

    def execute_float(self, inputs, graph):
        ids = inputs[0].astype(np.int64)
        table = graph.params[self.attrs["table"]]
        out = table[np.clip(ids, 0, table.shape[0] - 1)]
        pos = self.attrs.get("position_table")
        if pos:
            out = out + graph.params[pos][None, : ids.shape[1]]
        return [out.astype(np.float32)]

    def execute_quantized(self, inputs, graph):
        # ids are never quantized; only the output gets quantized
        outs = self.execute_float(inputs, graph)
        qp = graph.spec(self.outputs[0]).qparams
        return [quantize(outs[0], qp) if qp is not None else outs[0]]

    def infer_ranges(self, in_ranges, in_shapes, graph):
        Interval = _iv().Interval
        table = _real_param(graph, self.attrs["table"])
        if table is None:
            return [Interval.top()]
        iv = Interval(float(table.min()), float(table.max()))
        pos_name = self.attrs.get("position_table")
        if pos_name:
            pos = _real_param(graph, pos_name)
            if pos is None:
                return [Interval.top()]
            iv = iv + Interval(float(pos.min()), float(pos.max()))
        return [iv.pad_f32()]


class Split(Op):
    """Split the last axis into equal parts (e.g. start/end QA logits)."""

    op_type = "split"

    def infer_shapes(self, in_shapes, graph):
        parts = self.attrs["parts"]
        last = in_shapes[0][-1]
        if last % parts:
            raise ShapeError(
                self, f"last dim {last} not divisible into {parts} parts", in_shapes)
        return [in_shapes[0][:-1] + (last // parts,)] * parts

    def execute_float(self, inputs, graph):
        return [np.ascontiguousarray(a) for a in np.split(inputs[0], self.attrs["parts"], axis=-1)]

    def execute_quantized(self, inputs, graph):
        return self.execute_float(inputs, graph)

    def infer_ranges(self, in_ranges, in_shapes, graph):
        return [in_ranges[0]] * self.attrs["parts"]  # pure data movement


class LSTM(Op):
    """Full-sequence LSTM (the streaming-speech encoder substrate, App. E).

    Runs in float even inside quantized graphs (its state recurrence is the
    classic hard case for per-tensor activation quantization); quantized
    deployments keep it as a float island with boundary (de)quantization.
    """

    op_type = "lstm"

    def param_names(self) -> list[str]:
        return [self.attrs["w_ih"], self.attrs["w_hh"], self.attrs["bias"]]

    def infer_shapes(self, in_shapes, graph):
        n, t, _ = in_shapes[0]
        hidden = graph.param_shape(self.attrs["w_hh"])[0]
        return [(n, t, hidden)]

    def execute_float(self, inputs, graph):
        return [
            K.lstm_sequence(
                np.asarray(inputs[0], dtype=np.float32),
                graph.params[self.attrs["w_ih"]],
                graph.params[self.attrs["w_hh"]],
                graph.params[self.attrs["bias"]],
            )
        ]

    def macs(self, in_shapes, out_shapes, graph):
        _, t, f_in = in_shapes[0]
        hidden = graph.param_shape(self.attrs["w_hh"])[0]
        return t * 4 * hidden * (f_in + hidden)

    def infer_ranges(self, in_ranges, in_shapes, graph):
        # h_t = o_t · tanh(c_t) with o_t ∈ (0, 1), tanh ∈ (−1, 1)
        return [_iv().Interval(-1.0, 1.0)]


class Constant(Op):
    """Materialize a parameter as a tensor (leading broadcast dim of 1).

    The optimizer's constant-folding pass replaces fully-constant subgraphs
    with these. With ``raw=True`` the stored parameter already holds the
    *runtime representation* (quantized codes in quantized graphs, fp16-cast
    floats in FP16 graphs) and is emitted verbatim — that is what makes
    folding bit-exact by construction. With ``raw=False`` the parameter is a
    real-valued array quantized on the way out like any other tensor.

    The output shape carries a symbolic batch dim (-1) and the value
    broadcasts along it; consumers that do not broadcast over the batch
    (e.g. concat along axis 0) must not be fed a Constant.
    """

    op_type = "constant"

    def param_names(self) -> list[str]:
        return [self.attrs["value"]]

    def infer_shapes(self, in_shapes, graph):
        if in_shapes:
            raise ShapeError(self, "constant takes no inputs", in_shapes)
        return [(-1,) + graph.param_shape(self.attrs["value"])]

    def execute_float(self, inputs, graph):
        v = graph.params[self.attrs["value"]]
        if self.attrs.get("raw"):
            return [np.asarray(v)[None]]
        return [np.asarray(v, dtype=np.float32)[None]]

    def execute_quantized(self, inputs, graph):
        v = graph.params[self.attrs["value"]]
        if self.attrs.get("raw"):
            return [np.asarray(v)[None]]
        qp = graph.spec(self.outputs[0]).qparams
        arr = np.asarray(v, dtype=np.float32)
        return [quantize(arr, qp)[None] if qp is not None else arr[None]]

    def infer_ranges(self, in_ranges, in_shapes, graph):
        Interval = _iv().Interval
        v = _real_param(graph, self.attrs["value"])
        if v is None:
            return [Interval.top()]
        return [Interval(float(v.min()), float(v.max()))]


class Pad(Op):
    """Explicit spatial constant-padding of an NHWC tensor.

    Mirrors the TFLite PAD operator that mobile converters emit in front of
    stride-2 convolutions; the optimizer folds zero-padding back into a
    following conv when the amounts match that conv's SAME padding.
    """

    op_type = "pad"
    integer_kernel = True

    def infer_shapes(self, in_shapes, graph):
        if len(in_shapes[0]) != 4:
            raise ShapeError(self, "pad requires a rank-4 NHWC input", in_shapes)
        n, h, w, c = in_shapes[0]
        t, b = self.attrs["pads_h"]
        l, r = self.attrs["pads_w"]
        if min(t, b, l, r) < 0:
            raise ShapeError(self, "negative padding", in_shapes)
        return [(n, h + t + b, w + l + r, c)]

    def execute_float(self, inputs, graph):
        value = float(self.attrs.get("value", 0.0))
        return [
            np.pad(
                np.asarray(inputs[0], dtype=np.float32),
                ((0, 0), tuple(self.attrs["pads_h"]), tuple(self.attrs["pads_w"]), (0, 0)),
                constant_values=value,
            )
        ]

    def execute_quantized(self, inputs, graph):
        # pad with the quantized code of the constant (zero pads with the
        # zero point), staying in the integer domain. The interior codes are
        # copied verbatim, which is only valid when input and output share
        # qparams; otherwise fall back to the float path.
        in_qp = graph.spec(self.inputs[0]).qparams
        out_qp = graph.spec(self.outputs[0]).qparams
        if out_qp is None:
            return [
                np.pad(
                    inputs[0],
                    ((0, 0), tuple(self.attrs["pads_h"]), tuple(self.attrs["pads_w"]), (0, 0)),
                )
            ]
        if in_qp is None or not _qparams_equal(in_qp, out_qp):
            return super().execute_quantized(inputs, graph)
        value = float(self.attrs.get("value", 0.0))
        code = int(quantize(np.asarray([value], dtype=np.float32), out_qp)[0])
        return [
            np.pad(
                inputs[0],
                ((0, 0), tuple(self.attrs["pads_h"]), tuple(self.attrs["pads_w"]), (0, 0)),
                constant_values=code,
            )
        ]

    def infer_ranges(self, in_ranges, in_shapes, graph):
        value = float(self.attrs.get("value", 0.0))
        iv = in_ranges[0]
        if not iv.is_bounded:
            return [iv]
        return [iv.hull(_iv().Interval.point(value))]


class DepthToSpace(Op):
    """Pixel-shuffle upsampling (super-resolution models, App. E)."""

    op_type = "depth_to_space"

    def infer_shapes(self, in_shapes, graph):
        n, h, w, c = in_shapes[0]
        block = self.attrs["block"]
        if c % (block * block):
            raise ShapeError(
                self, f"channels {c} not divisible by block^2 = {block * block}", in_shapes)
        return [(n, h * block, w * block, c // (block * block))]

    def execute_float(self, inputs, graph):
        return [K.depth_to_space(inputs[0], self.attrs["block"])]

    def execute_quantized(self, inputs, graph):
        # pure data movement: the integer payload is rearranged, not rescaled
        return [K.depth_to_space(inputs[0], self.attrs["block"])]

    def infer_ranges(self, in_ranges, in_shapes, graph):
        return [in_ranges[0]]  # pure data movement
