"""Fluent graph builder with deterministic weight initialization.

The five reference models are assembled through this builder. With
``materialize=False`` the builder produces a *symbolic* graph (shapes and
costs only), which is how the zoo describes the full-size paper models
without allocating hundreds of MB of weights.
"""

from __future__ import annotations

import numpy as np

from ..kernels.numerics import Numerics
from . import ops as O
from .graph import Graph
from .tensor import TensorSpec

__all__ = ["GraphBuilder"]


class GraphBuilder:
    def __init__(
        self,
        name: str,
        seed: int = 0,
        materialize: bool = True,
        init_style: str = "he",
    ):
        if init_style not in ("he", "isometric"):
            raise ValueError("init_style must be 'he' or 'isometric'")
        self.graph = Graph(name)
        self.rng = np.random.default_rng(seed)
        self.materialize = materialize
        self.init_style = init_style
        self._counter: dict[str, int] = {}

    # -- naming / params ---------------------------------------------------
    def _fresh(self, prefix: str) -> str:
        n = self._counter.get(prefix, 0)
        self._counter[prefix] = n + 1
        return f"{prefix}_{n}"

    def _weight(self, name: str, shape: tuple[int, ...], fan_in: int) -> str:
        if self.materialize:
            self.graph.add_param(name, self._init_weight(shape, fan_in))
        else:
            self.graph.add_param(name, None, shape)
        return name

    def _init_weight(self, shape: tuple[int, ...], fan_in: int) -> np.ndarray:
        """Delta-orthogonal-style initialization (Xiao et al., 2018).

        Convolutions get a (partial) isometry at the center tap plus small
        noise on the remaining taps; dense weights get a scaled partial
        isometry. Near-isometric mixing preserves input geometry through
        depth — the property trained networks have and pure He-Gaussian
        random networks lose exponentially (chaotic regime).
        """
        he_std = np.sqrt(2.0 / max(fan_in, 1))
        if self.init_style == "he":
            return self.rng.normal(0.0, he_std, size=shape).astype(np.float32)
        if len(shape) == 4 and shape[3] != 1:  # full conv (kh, kw, cin, cout)
            kh, kw, cin, cout = shape
            w = self.rng.normal(0.0, 0.35 * he_std, size=shape).astype(np.float32)
            w[kh // 2, kw // 2] += self._partial_isometry(cin, cout) * 1.2
            return w
        if len(shape) == 4:  # depthwise (kh, kw, c, 1): identity tap + noise
            kh, kw, c, _ = shape
            w = self.rng.normal(0.0, 0.35 * np.sqrt(2.0 / (kh * kw)), size=shape).astype(np.float32)
            w[kh // 2, kw // 2, :, 0] += 1.0
            return w
        if len(shape) == 2:  # dense (in, out)
            return (self._partial_isometry(*shape) * 1.1
                    + self.rng.normal(0.0, 0.25 * he_std, size=shape).astype(np.float32))
        return self.rng.normal(0.0, he_std, size=shape).astype(np.float32)

    def _partial_isometry(self, rows: int, cols: int) -> np.ndarray:
        """Random matrix with orthonormal columns (or rows when cols > rows)."""
        a = self.rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
        q, _ = np.linalg.qr(a)
        iso = q[:rows, :] if rows >= cols else q[:cols, :].T
        scale = np.sqrt(max(1.0, cols / rows))  # preserve forward signal energy
        return (iso * scale).astype(np.float32)

    def _bias(self, name: str, size: int) -> str:
        if self.materialize:
            self.graph.add_param(name, self.rng.normal(0.0, 0.05, size=size).astype(np.float32))
        else:
            self.graph.add_param(name, None, (size,))
        return name

    # -- graph io ----------------------------------------------------------
    def input(
        self,
        name: str,
        shape: tuple[int, ...],
        numerics: Numerics = Numerics.FP32,
        role: str = "data",
        domain: tuple[float, float] | None = None,
    ) -> str:
        self.graph.add_input(TensorSpec(name, shape, numerics, role=role, domain=domain))
        return name

    def outputs(self, *names: str) -> None:
        self.graph.set_outputs(names)

    def build(self) -> Graph:
        self.graph.validate()
        return self.graph

    # -- layers ------------------------------------------------------------
    def conv(
        self,
        x: str,
        c_out: int,
        k: int = 3,
        stride: int = 1,
        padding: str = "same",
        activation: str | None = None,
        use_bn: bool = False,
        dilation: int = 1,
        gamma_scale: float = 1.0,
        name: str | None = None,
    ) -> str:
        name = name or self._fresh("conv")
        c_in = self.graph.spec(x).shape[-1]
        w = self._weight(f"{name}/w", (k, k, c_in, c_out), k * k * c_in)
        bias = None if use_bn else self._bias(f"{name}/b", c_out)
        out = f"{name}/out"
        self.graph.add_op(
            O.Conv2D(
                name, [x], [out],
                weight=w, bias=bias, stride=stride, padding=padding, dilation=dilation,
                activation=None if use_bn else activation,
            )
        )
        if use_bn:
            out = self._batch_norm(out, c_out, f"{name}/bn", gamma_scale)
            if activation:
                out = self.activation(out, activation, name=f"{name}/act")
        return out

    def dwconv(
        self,
        x: str,
        k: int = 3,
        stride: int = 1,
        padding: str = "same",
        activation: str | None = None,
        use_bn: bool = False,
        name: str | None = None,
    ) -> str:
        name = name or self._fresh("dwconv")
        c = self.graph.spec(x).shape[-1]
        w = self._weight(f"{name}/w", (k, k, c, 1), k * k)
        bias = None if use_bn else self._bias(f"{name}/b", c)
        out = f"{name}/out"
        self.graph.add_op(
            O.DepthwiseConv2D(
                name, [x], [out],
                weight=w, bias=bias, stride=stride, padding=padding,
                activation=None if use_bn else activation,
            )
        )
        if use_bn:
            out = self._batch_norm(out, c, f"{name}/bn")
            if activation:
                out = self.activation(out, activation, name=f"{name}/act")
        return out

    def _batch_norm(self, x: str, channels: int, name: str, gamma_scale: float = 1.0) -> str:
        """``gamma_scale`` < 1 attenuates this branch (SkipInit-style); used on
        residual projection layers so identity paths dominate signal flow."""
        g = self.graph
        if self.materialize:
            g.add_param(f"{name}/mean", self.rng.normal(0.0, 0.1, channels).astype(np.float32))
            g.add_param(
                f"{name}/var", (1.0 + self.rng.uniform(-0.2, 0.2, channels)).astype(np.float32)
            )
            g.add_param(
                f"{name}/gamma",
                (gamma_scale * (1.0 + self.rng.normal(0, 0.05, channels))).astype(np.float32),
            )
            g.add_param(f"{name}/beta", self.rng.normal(0.0, 0.05, channels).astype(np.float32))
        else:
            for suffix in ("mean", "var", "gamma", "beta"):
                g.add_param(f"{name}/{suffix}", None, (channels,))
        out = f"{name}/out"
        g.add_op(
            O.BatchNorm(
                name, [x], [out],
                mean=f"{name}/mean", variance=f"{name}/var",
                gamma=f"{name}/gamma", beta=f"{name}/beta",
            )
        )
        return out

    def fc(
        self, x: str, units: int, activation: str | None = None, name: str | None = None
    ) -> str:
        name = name or self._fresh("fc")
        f_in = self.graph.spec(x).shape[-1]
        w = self._weight(f"{name}/w", (f_in, units), f_in)
        b = self._bias(f"{name}/b", units)
        out = f"{name}/out"
        self.graph.add_op(
            O.FullyConnected(name, [x], [out], weight=w, bias=b, activation=activation)
        )
        return out

    def activation(self, x: str, kind: str, name: str | None = None) -> str:
        name = name or self._fresh(f"act_{kind}")
        out = f"{name}/out"
        self.graph.add_op(O.Activation(name, [x], [out], kind=kind))
        return out

    def add(self, a: str, b: str, activation: str | None = None, name: str | None = None) -> str:
        name = name or self._fresh("add")
        out = f"{name}/out"
        self.graph.add_op(O.Add(name, [a, b], [out], activation=activation))
        return out

    def concat(self, xs: list[str], axis: int = -1, name: str | None = None) -> str:
        name = name or self._fresh("concat")
        out = f"{name}/out"
        self.graph.add_op(O.Concat(name, xs, [out], axis=axis))
        return out

    def avg_pool(self, x: str, k: int, stride: int | None = None, padding: str = "valid") -> str:
        name = self._fresh("avgpool")
        out = f"{name}/out"
        self.graph.add_op(O.AvgPool2D(name, [x], [out], k=k, stride=stride or k, padding=padding))
        return out

    def max_pool(self, x: str, k: int, stride: int | None = None, padding: str = "valid") -> str:
        name = self._fresh("maxpool")
        out = f"{name}/out"
        self.graph.add_op(O.MaxPool2D(name, [x], [out], k=k, stride=stride or k, padding=padding))
        return out

    def global_pool(self, x: str, keepdims: bool = True) -> str:
        name = self._fresh("gap")
        out = f"{name}/out"
        self.graph.add_op(O.GlobalAvgPool(name, [x], [out], keepdims=keepdims))
        return out

    def resize(self, x: str, out_h: int, out_w: int, align_corners: bool = False) -> str:
        name = self._fresh("resize")
        out = f"{name}/out"
        self.graph.add_op(
            O.ResizeBilinear(name, [x], [out], out_h=out_h, out_w=out_w, align_corners=align_corners)
        )
        return out

    def reshape(self, x: str, shape: tuple[int, ...], name: str | None = None) -> str:
        name = name or self._fresh("reshape")
        out = f"{name}/out"
        self.graph.add_op(O.Reshape(name, [x], [out], shape=tuple(shape)))
        return out

    def softmax(self, x: str, axis: int = -1, name: str | None = None) -> str:
        name = name or self._fresh("softmax")
        out = f"{name}/out"
        self.graph.add_op(O.Softmax(name, [x], [out], axis=axis))
        return out

    def layer_norm(self, x: str, name: str | None = None) -> str:
        name = name or self._fresh("ln")
        d = self.graph.spec(x).shape[-1]
        if self.materialize:
            self.graph.add_param(f"{name}/gamma", np.ones(d, dtype=np.float32))
            self.graph.add_param(f"{name}/beta", np.zeros(d, dtype=np.float32))
        else:
            self.graph.add_param(f"{name}/gamma", None, (d,))
            self.graph.add_param(f"{name}/beta", None, (d,))
        out = f"{name}/out"
        self.graph.add_op(O.LayerNorm(name, [x], [out], gamma=f"{name}/gamma", beta=f"{name}/beta"))
        return out

    def attention(self, q: str, k: str, v: str, num_heads: int, mask: str | None = None,
                  name: str | None = None) -> str:
        name = name or self._fresh("attn")
        out = f"{name}/out"
        inputs = [q, k, v] + ([mask] if mask else [])
        self.graph.add_op(O.MultiHeadAttention(name, inputs, [out], num_heads=num_heads))
        return out

    def embedding(self, ids: str, vocab: int, dim: int, max_positions: int | None = None,
                  name: str | None = None) -> str:
        name = name or self._fresh("embed")
        if self.materialize:
            self.graph.add_param(
                f"{name}/table", self.rng.normal(0, 0.5, (vocab, dim)).astype(np.float32)
            )
        else:
            self.graph.add_param(f"{name}/table", None, (vocab, dim))
        pos = None
        if max_positions:
            pos = f"{name}/pos"
            if self.materialize:
                self.graph.add_param(
                    pos, self.rng.normal(0, 0.2, (max_positions, dim)).astype(np.float32)
                )
            else:
                self.graph.add_param(pos, None, (max_positions, dim))
        out = f"{name}/out"
        self.graph.add_op(
            O.Embedding(name, [ids], [out], table=f"{name}/table", position_table=pos)
        )
        return out

    def lstm(self, x: str, hidden: int, name: str | None = None) -> str:
        name = name or self._fresh("lstm")
        f_in = self.graph.spec(x).shape[-1]
        self._weight(f"{name}/w_ih", (f_in, 4 * hidden), f_in)
        self._weight(f"{name}/w_hh", (hidden, 4 * hidden), hidden)
        if self.materialize:
            bias = np.zeros(4 * hidden, dtype=np.float32)
            bias[hidden : 2 * hidden] = 1.0  # forget-gate bias init
            self.graph.add_param(f"{name}/b", bias)
        else:
            self.graph.add_param(f"{name}/b", None, (4 * hidden,))
        out = f"{name}/out"
        self.graph.add_op(
            O.LSTM(name, [x], [out], w_ih=f"{name}/w_ih", w_hh=f"{name}/w_hh",
                   bias=f"{name}/b")
        )
        return out

    def constant(self, value: np.ndarray, name: str | None = None) -> str:
        """Materialize ``value`` as a tensor with a broadcast batch dim."""
        name = name or self._fresh("const")
        value = np.asarray(value, dtype=np.float32)
        self.graph.add_param(f"{name}/value", value)
        out = f"{name}/out"
        self.graph.add_op(O.Constant(name, [], [out], value=f"{name}/value"))
        return out

    def pad(
        self,
        x: str,
        pads_h: tuple[int, int],
        pads_w: tuple[int, int],
        value: float = 0.0,
        name: str | None = None,
    ) -> str:
        name = name or self._fresh("pad")
        out = f"{name}/out"
        self.graph.add_op(
            O.Pad(name, [x], [out], pads_h=tuple(pads_h), pads_w=tuple(pads_w), value=value)
        )
        return out

    def depth_to_space(self, x: str, block: int, name: str | None = None) -> str:
        name = name or self._fresh("d2s")
        out = f"{name}/out"
        self.graph.add_op(O.DepthToSpace(name, [x], [out], block=block))
        return out

    def split(self, x: str, parts: int, name: str | None = None) -> list[str]:
        name = name or self._fresh("split")
        outs = [f"{name}/out_{i}" for i in range(parts)]
        self.graph.add_op(O.Split(name, [x], outs, parts=parts))
        return outs
