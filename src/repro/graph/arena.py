"""Liveness-driven static memory planner (TFLite-style arena allocation).

On-device runtimes do not malloc per tensor per inference: they compute
each intermediate's live interval ahead of time and pack all of them into
one preallocated arena, reusing the bytes of tensors whose lifetimes do
not overlap (Lee et al. 2019, §"memory management"; TFLite's
``GreedyBySize`` planner). This module is that planner for our IR:

* :func:`plan_layout` packs abstract ``(size, [first, last])`` records with
  the greedy best-fit-by-decreasing-size algorithm;
* :func:`plan_arena` derives the static layout of an
  :class:`~repro.graph.plan.ExecutionPlan`'s arena-managed tensors from
  tensor specs (no execution needed);
* :func:`graph_arena_bytes` computes the planned activation footprint of a
  (possibly symbolic) graph for the hardware DRAM/footprint model —
  replacing the naive every-intermediate-resident estimate.

Intervals are **inclusive** on both ends: a tensor is live from the step
that defines it through the last step that reads it. Two records may share
bytes only when their intervals are disjoint — which in particular keeps a
step's inputs and outputs in disjoint regions (their intervals both cover
the step itself), so in-place ``out=`` kernel writes can never clobber an
operand.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels.numerics import Numerics
from .graph import Graph

__all__ = [
    "ALIAS_OP_TYPES",
    "ARENA_ALIGNMENT",
    "ArenaSlot",
    "ArenaLayout",
    "TensorRecord",
    "alias_roots",
    "effective_liveness",
    "plan_layout",
    "plan_arena",
    "graph_arena_bytes",
]

ARENA_ALIGNMENT = 64  # bytes; cache-line alignment, matching TFLite's default

# Op types whose output may be a *view* of their input (zero-copy data
# movement). An aliased tensor keeps its source's bytes live: the source's
# interval must extend through every alias's last read, and a source whose
# alias escapes as a graph output cannot be arena-managed at all (the result
# would be clobbered by the next inference).
ALIAS_OP_TYPES = frozenset({"reshape"})


@dataclass(frozen=True)
class TensorRecord:
    """One tensor to place: its size, live interval and arena key."""

    name: str
    nbytes: int
    first: int  # step index that defines the tensor
    last: int  # step index of the last read (inclusive)
    key: str = "default"  # one arena per key (dtype class)


@dataclass(frozen=True)
class ArenaSlot:
    """A placed tensor: byte offset inside the arena keyed ``key``."""

    name: str
    key: str
    offset: int
    nbytes: int
    first: int
    last: int

    @property
    def end(self) -> int:
        return self.offset + self.nbytes


@dataclass(frozen=True)
class ArenaLayout:
    """The full packing result: slots plus per-arena and summary sizes."""

    slots: dict[str, ArenaSlot]
    arena_bytes: dict[str, int]
    alignment: int = ARENA_ALIGNMENT

    @property
    def total_bytes(self) -> int:
        return sum(self.arena_bytes.values())

    @property
    def naive_bytes(self) -> int:
        """Footprint with no reuse: every tensor resident simultaneously."""
        return sum(_align_up(s.nbytes, self.alignment) for s in self.slots.values())

    @property
    def reuse_ratio(self) -> float:
        """naive / planned — how many times over the arena bytes are reused."""
        total = self.total_bytes
        return (self.naive_bytes / total) if total else 1.0

    def describe(self) -> dict:
        return {
            "tensors": len(self.slots),
            "arena_bytes": dict(sorted(self.arena_bytes.items())),
            "peak_bytes": self.total_bytes,
            "naive_bytes": self.naive_bytes,
            "reuse_ratio": round(self.reuse_ratio, 3),
            "alignment": self.alignment,
        }


def _align_up(n: int, alignment: int) -> int:
    return -(-n // alignment) * alignment


def _overlaps(a_first: int, a_last: int, b_first: int, b_last: int) -> bool:
    return a_first <= b_last and b_first <= a_last


def plan_layout(
    records: list[TensorRecord], alignment: int = ARENA_ALIGNMENT
) -> ArenaLayout:
    """Greedy best-fit packing by decreasing size (the TFLite arena planner).

    Tensors are placed largest-first (ties broken by definition step, then
    name, for determinism). Each tensor considers only already-placed slots
    of the same key whose live interval overlaps its own, scans the gaps
    between their occupied byte ranges, and takes the smallest gap that
    fits — or the end of the arena when none does.
    """
    order = sorted(records, key=lambda r: (-r.nbytes, r.first, r.name))
    slots: dict[str, ArenaSlot] = {}
    arena_bytes: dict[str, int] = {}
    for rec in order:
        live = sorted(
            (
                s
                for s in slots.values()
                if s.key == rec.key and _overlaps(s.first, s.last, rec.first, rec.last)
            ),
            key=lambda s: s.offset,
        )
        best_offset: int | None = None
        best_gap: int | None = None
        cursor = 0
        for s in live:
            if s.offset > cursor:
                gap = s.offset - cursor
                if gap >= rec.nbytes and (best_gap is None or gap < best_gap):
                    best_offset, best_gap = cursor, gap
            cursor = max(cursor, _align_up(s.end, alignment))
        offset = best_offset if best_offset is not None else cursor
        slots[rec.name] = ArenaSlot(
            rec.name, rec.key, offset, rec.nbytes, rec.first, rec.last
        )
        arena_bytes[rec.key] = max(arena_bytes.get(rec.key, 0), offset + rec.nbytes)
    return ArenaLayout(slots=slots, arena_bytes=arena_bytes, alignment=alignment)


# -- deriving records from plans and graphs -----------------------------------


def _spec_elements(shape, batch: int) -> int:
    n = 1
    for d in shape:
        n *= batch if d == -1 else int(d)
    return n


def _spec_dtype(graph: Graph, name: str):
    """The stored dtype of a tensor at runtime (codes or float32)."""
    spec = graph.spec(name)
    if graph.numerics.is_quantized and spec.qparams is not None:
        return spec.qparams.numerics.np_dtype
    return np.dtype(np.float32)


def alias_roots(steps) -> dict[str, str]:
    """Map each potentially-view-producing tensor to its ultimate source.

    ``steps`` is any sequence with ``op_type`` / ``inputs`` / ``outputs``
    attributes in topological order; chains of aliases resolve to the root.
    """
    root: dict[str, str] = {}
    for step in steps:
        if step.op_type in ALIAS_OP_TYPES and step.inputs and len(step.outputs) == 1:
            src = step.inputs[0]
            root[step.outputs[0]] = root.get(src, src)
    return root


def effective_liveness(
    steps, output_names, root: dict[str, str] | None = None
) -> tuple[dict[str, int], set[str]]:
    """Per-tensor last-read step, with alias lifetimes folded into roots.

    Returns ``(last_use, escaped)``: ``last_use[t]`` is the last step index
    reading ``t`` or any alias of it; ``escaped`` holds roots whose alias
    chain reaches a graph output (those tensors must not live in the arena).
    """
    if root is None:
        root = alias_roots(steps)
    last_use: dict[str, int] = {}
    for i, step in enumerate(steps):
        for t in step.inputs:
            last_use[t] = i
    escaped: set[str] = set()
    outputs = set(output_names)
    for t, r in root.items():
        if t in outputs:
            escaped.add(r)
        if t in last_use:
            last_use[r] = max(last_use.get(r, -1), last_use[t])
    return last_use, escaped


def plan_arena(plan, batch: int = 1) -> ArenaLayout:
    """Static layout of a plan's arena-managed tensors, from specs alone.

    Managed tensors are the outputs of single-output steps that compile an
    ``out=``-capable kernel (``fn_out``), excluding graph outputs (results
    must survive into the caller) and tensors whose bytes escape through a
    view-producing alias chain. The runtime layout built on first execution
    places the same set — this function exists so ``describe()`` and the
    PL007 cross-check need no execution.
    """
    graph = plan.graph
    records = []
    last_use, escaped = effective_liveness(plan._steps, graph.output_names)
    outputs = set(graph.output_names)
    for i, step in enumerate(plan._steps):
        if getattr(step, "fn_out", None) is None or len(step.outputs) != 1:
            continue
        t = step.outputs[0]
        if t in outputs or t in escaped or t not in last_use:
            continue
        dtype = _spec_dtype(graph, t)
        nbytes = _spec_elements(graph.spec(t).shape, batch) * dtype.itemsize
        records.append(TensorRecord(t, int(nbytes), i, last_use[t], key=str(dtype)))
    return plan_layout(records)


def graph_arena_bytes(
    graph: Graph, numerics: Numerics | None = None, batch: int = 1
) -> dict:
    """Planned activation footprint of a graph (works on symbolic graphs).

    Packs *every* op-produced intermediate with the arena planner — the
    memory model of an ideal runtime — and reports the planned peak next to
    the no-reuse footprint and the resident I/O bytes. The hardware
    simulator consumes ``arena_bytes + io_bytes`` as the per-sample
    activation working set.
    """
    numerics = numerics or graph.numerics

    def tensor_bytes(name: str) -> int:
        spec = graph.spec(name)
        if numerics.is_quantized and spec.qparams is not None:
            per = spec.qparams.numerics.bytes_per_element
        else:
            per = numerics.bytes_per_element
        return int(_spec_elements(spec.shape, batch) * per)

    last_use: dict[str, int] = {}
    for i, op in enumerate(graph.ops):
        for t in op.inputs:
            last_use[t] = i
    outputs = set(graph.output_names)
    records = []
    for i, op in enumerate(graph.ops):
        for t in op.outputs:
            if t in outputs or t not in last_use:
                continue
            records.append(TensorRecord(t, tensor_bytes(t), i, last_use[t]))
    layout = plan_layout(records)
    io_bytes = sum(tensor_bytes(s.name) for s in graph.inputs) + sum(
        tensor_bytes(n) for n in graph.output_names
    )
    return {
        "arena_bytes": layout.total_bytes,
        "io_bytes": io_bytes,
        "naive_bytes": layout.naive_bytes + io_bytes,
        "planned_bytes": layout.total_bytes + io_bytes,
        "reuse_ratio": layout.reuse_ratio,
    }
