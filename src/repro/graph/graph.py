"""Graph container: a static, topologically-ordered op list with parameters.

A :class:`Graph` may be *materialized* (parameters are NumPy arrays; it can
execute) or *symbolic* (only parameter shapes are known; it can still infer
shapes and report costs). The model zoo uses symbolic full-size graphs for
the hardware performance model and materialized scaled graphs for accuracy.
"""

from __future__ import annotations

import copy
import hashlib
from typing import Iterable

import numpy as np

from ..kernels.numerics import Numerics, QuantParams
from .ops import Op, OpCost
from .tensor import TensorSpec

__all__ = ["Graph", "GraphValidationError"]


class GraphValidationError(ValueError):
    """The graph violates a structural invariant."""


class Graph:
    def __init__(self, name: str):
        self.name = name
        self.inputs: list[TensorSpec] = []
        self.output_names: list[str] = []
        self.ops: list[Op] = []
        self.params: dict[str, np.ndarray | None] = {}
        self.param_shapes: dict[str, tuple[int, ...]] = {}
        self.param_qparams: dict[str, QuantParams] = {}
        self.tensor_specs: dict[str, TensorSpec] = {}
        self.numerics: Numerics = Numerics.FP32
        self.metadata: dict = {}
        self.frozen: bool = False

    # -- construction ------------------------------------------------------
    def add_input(self, spec: TensorSpec) -> TensorSpec:
        self._assert_mutable()
        if spec.name in self.tensor_specs:
            raise GraphValidationError(f"duplicate tensor {spec.name!r}")
        self.inputs.append(spec)
        self.tensor_specs[spec.name] = spec
        return spec

    def add_param(self, name: str, value: np.ndarray | None, shape: tuple[int, ...] | None = None):
        self._assert_mutable()
        if name in self.params:
            raise GraphValidationError(f"duplicate parameter {name!r}")
        if value is not None:
            shape = tuple(value.shape)
        if shape is None:
            raise GraphValidationError(f"symbolic parameter {name!r} needs an explicit shape")
        self.params[name] = value
        self.param_shapes[name] = tuple(int(d) for d in shape)

    def add_op(self, op: Op) -> Op:
        """Append an op; inputs must already exist (enforces topological order)."""
        self._assert_mutable()
        for t in op.inputs:
            if t not in self.tensor_specs:
                raise GraphValidationError(f"op {op.name!r} consumes unknown tensor {t!r}")
        for p in op.param_names():
            if p not in self.params:
                raise GraphValidationError(f"op {op.name!r} references unknown parameter {p!r}")
        in_shapes = [self.tensor_specs[t].shape for t in op.inputs]
        out_shapes = op.infer_shapes(in_shapes, self)
        if len(out_shapes) != len(op.outputs):
            raise GraphValidationError(f"op {op.name!r} arity mismatch")
        for t, shape in zip(op.outputs, out_shapes):
            if t in self.tensor_specs:
                raise GraphValidationError(f"tensor {t!r} produced twice")
            self.tensor_specs[t] = TensorSpec(t, shape, self.numerics)
        self.ops.append(op)
        return op

    def set_outputs(self, names: Iterable[str]) -> None:
        self._assert_mutable()
        names = list(names)
        for n in names:
            if n not in self.tensor_specs:
                raise GraphValidationError(f"unknown output tensor {n!r}")
        self.output_names = names

    def _assert_mutable(self) -> None:
        if self.frozen:
            raise GraphValidationError(f"graph {self.name!r} is frozen")

    # -- queries -----------------------------------------------------------
    def spec(self, name: str) -> TensorSpec:
        return self.tensor_specs[name]

    def param_shape(self, name: str) -> tuple[int, ...]:
        return self.param_shapes[name]

    def param_elements(self, name: str) -> int:
        n = 1
        for d in self.param_shapes[name]:
            n *= d
        return n

    @property
    def is_symbolic(self) -> bool:
        return any(v is None for v in self.params.values())

    @property
    def num_parameters(self) -> int:
        return sum(self.param_elements(p) for p in self.params)

    def producers(self) -> dict[str, Op]:
        """Map tensor name -> the op producing it."""
        out: dict[str, Op] = {}
        for op in self.ops:
            for t in op.outputs:
                out[t] = op
        return out

    def consumers(self) -> dict[str, list[Op]]:
        out: dict[str, list[Op]] = {}
        for op in self.ops:
            for t in op.inputs:
                out.setdefault(t, []).append(op)
        return out

    def op_costs(self, numerics: Numerics | None = None) -> list[tuple[Op, OpCost]]:
        """Per-sample analytical cost of every op, in execution order."""
        numerics = numerics or self.numerics
        result = []
        for op in self.ops:
            in_shapes = [self.tensor_specs[t].shape for t in op.inputs]
            out_shapes = [self.tensor_specs[t].shape for t in op.outputs]
            result.append((op, op.cost(in_shapes, out_shapes, self, numerics)))
        return result

    def total_cost(self, numerics: Numerics | None = None) -> OpCost:
        total = OpCost()
        for _, c in self.op_costs(numerics):
            total = total + c
        return total

    @property
    def total_macs(self) -> int:
        return self.total_cost().macs

    # -- lifecycle ---------------------------------------------------------
    def clone(self, name: str | None = None) -> "Graph":
        """Deep copy (specs/ops/metadata); parameter arrays are shared read-only."""
        g = Graph(name or self.name)
        g.inputs = [s.copy() for s in self.inputs]
        g.output_names = list(self.output_names)
        g.ops = copy.deepcopy(self.ops)
        g.params = dict(self.params)
        g.param_shapes = dict(self.param_shapes)
        g.param_qparams = dict(self.param_qparams)
        g.tensor_specs = {k: v.copy() for k, v in self.tensor_specs.items()}
        for s in g.inputs:
            g.tensor_specs[s.name] = s
        g.numerics = self.numerics
        g.metadata = copy.deepcopy(self.metadata)
        return g

    def freeze(self) -> str:
        """Mark immutable and return the structural checksum (audit anchor)."""
        self.validate()
        self.frozen = True
        return self.checksum()

    def checksum(self) -> str:
        """Stable hash over structure and (when materialized) parameter bytes."""
        h = hashlib.sha256()
        h.update(self.name.encode())
        for s in self.inputs:
            h.update(f"{s.name}:{s.shape}:{s.numerics.value}".encode())
        for op in self.ops:
            attrs = {k: v for k, v in sorted(op.attrs.items())}
            h.update(f"{op.op_type}:{op.name}:{op.inputs}:{op.outputs}:{attrs}".encode())
        for name in sorted(self.params):
            h.update(f"{name}:{self.param_shapes[name]}".encode())
            arr = self.params[name]
            if arr is not None:
                h.update(np.ascontiguousarray(arr).tobytes())
        h.update(",".join(self.output_names).encode())
        return h.hexdigest()

    def validate(self) -> None:
        """Check structural invariants: connectivity, outputs, param shapes."""
        if not self.inputs:
            raise GraphValidationError(f"graph {self.name!r} has no inputs")
        if not self.output_names:
            raise GraphValidationError(f"graph {self.name!r} has no outputs")
        input_names = {s.name for s in self.inputs}
        seen = set(input_names)
        op_names: set[str] = set()
        produced: dict[str, str] = {}
        for op in self.ops:
            if op.name in op_names:
                raise GraphValidationError(
                    f"graph {self.name!r}: op name {op.name!r} is defined more "
                    f"than once (op names key plans, profiles and placements)")
            op_names.add(op.name)
            for t in op.inputs:
                if t not in seen:
                    raise GraphValidationError(f"op {op.name!r} runs before its input {t!r}")
            for t in op.outputs:
                if t in input_names or t in produced:
                    prev = produced.get(t, "<graph input>")
                    raise GraphValidationError(
                        f"tensor {t!r} has two producers: {prev!r} and {op.name!r}")
                produced[t] = op.name
            seen.update(op.outputs)
        for n in self.output_names:
            if n not in self.tensor_specs:
                raise GraphValidationError(
                    f"graph {self.name!r} declares output {n!r}, which names no "
                    f"known tensor")
        for p in self.params:
            if p in input_names:
                raise GraphValidationError(
                    f"parameter {p!r} shadows the graph input of the same name")
        for name, arr in self.params.items():
            if arr is not None and tuple(arr.shape) != self.param_shapes[name]:
                raise GraphValidationError(
                    f"parameter {name!r} shape drifted: array is "
                    f"{tuple(arr.shape)}, declared {self.param_shapes[name]}")
        # every non-output intermediate should be consumed (no dead ends)
        consumed = {t for op in self.ops for t in op.inputs} | set(self.output_names)
        for op in self.ops:
            for t in op.outputs:
                if t not in consumed:
                    raise GraphValidationError(f"tensor {t!r} is produced but never used")
