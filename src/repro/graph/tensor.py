"""Tensor metadata for the graph IR."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..kernels.numerics import Numerics, QuantParams

__all__ = ["TensorSpec"]


@dataclass
class TensorSpec:
    """Static description of one activation tensor in a graph.

    ``shape`` uses -1 for the (leading) batch dimension; all other dims are
    concrete. ``qparams`` is populated by the quantization pass. ``role``
    distinguishes ordinary activations ("data") from integer token ids
    ("ids") and attention masks ("mask"), which are never quantized.
    ``domain`` (graph inputs only) declares the closed value range the feed
    contract guarantees — the seed interval of the static range analysis.
    """

    name: str
    shape: tuple[int, ...]
    numerics: Numerics = Numerics.FP32
    qparams: QuantParams | None = None
    role: str = "data"
    domain: tuple[float, float] | None = None

    def __post_init__(self) -> None:
        self.shape = tuple(int(d) for d in self.shape)
        if self.domain is not None:
            lo, hi = self.domain
            if not lo <= hi:
                raise ValueError(f"empty input domain {self.domain} on {self.name!r}")
            self.domain = (float(lo), float(hi))

    @property
    def elements_per_sample(self) -> int:
        n = 1
        for d in self.shape:
            if d != -1:
                n *= d
        return n

    def bytes_per_sample(self) -> float:
        return self.elements_per_sample * self.numerics.bytes_per_element

    def with_batch(self, batch: int) -> tuple[int, ...]:
        return tuple(batch if d == -1 else d for d in self.shape)

    def copy(self, **changes) -> "TensorSpec":
        return replace(self, **changes)
