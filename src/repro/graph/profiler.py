"""Per-op execution profiler for the planned executor.

Collects, per op, the kernel wall time, the bytes moved (input + output
tensor payloads) and the call count, plus the peak number of live activation
bytes observed across a run — the quantity tensor-liveness planning is meant
to shrink. Feeds ``benchmarks/bench_executor.py`` and
``examples/profile_inference.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["OpProfile", "ExecutionProfiler"]


@dataclass
class OpProfile:
    """Aggregated statistics for one op across all profiled runs."""

    name: str
    op_type: str
    calls: int = 0
    total_seconds: float = 0.0
    bytes_moved: int = 0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0

    @property
    def bandwidth_gbs(self) -> float:
        """Apparent memory bandwidth (moved bytes / kernel time)."""
        if self.total_seconds <= 0:
            return 0.0
        return self.bytes_moved / self.total_seconds / 1e9

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "op_type": self.op_type,
            "calls": self.calls,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
            "bytes_moved": self.bytes_moved,
            "bandwidth_gbs": self.bandwidth_gbs,
        }


@dataclass
class ExecutionProfiler:
    """Accumulates per-op stats; pass one to ``ExecutionPlan.run``.

    A single profiler may be reused across many queries — stats accumulate
    and ``peak_live_bytes`` tracks the maximum over all profiled runs.
    """

    ops: dict[str, OpProfile] = field(default_factory=dict)
    peak_live_bytes: int = 0
    runs: int = 0

    def record(self, name: str, op_type: str, seconds: float, bytes_moved: int) -> None:
        entry = self.ops.get(name)
        if entry is None:
            entry = self.ops[name] = OpProfile(name=name, op_type=op_type)
        entry.calls += 1
        entry.total_seconds += seconds
        entry.bytes_moved += bytes_moved

    def note_live_bytes(self, live_bytes: int) -> None:
        if live_bytes > self.peak_live_bytes:
            self.peak_live_bytes = live_bytes

    @property
    def total_seconds(self) -> float:
        return sum(p.total_seconds for p in self.ops.values())

    def top(self, n: int = 10) -> list[OpProfile]:
        """The ``n`` most expensive ops by accumulated kernel time."""
        return sorted(self.ops.values(), key=lambda p: p.total_seconds, reverse=True)[:n]

    def as_dict(self) -> dict:
        return {
            "runs": self.runs,
            "total_seconds": self.total_seconds,
            "peak_live_bytes": self.peak_live_bytes,
            "ops": [p.as_dict() for p in self.top(len(self.ops))],
        }

    def summary(self, n: int = 10) -> str:
        """Human-readable top-``n`` table."""
        total = self.total_seconds or 1.0
        lines = [
            f"{'op':<40} {'type':<18} {'calls':>6} {'time_ms':>9} {'%':>6} {'MB moved':>9}",
            "-" * 92,
        ]
        for p in self.top(n):
            lines.append(
                f"{p.name:<40} {p.op_type:<18} {p.calls:>6} "
                f"{p.total_seconds * 1e3:>9.3f} {100 * p.total_seconds / total:>5.1f}% "
                f"{p.bytes_moved / 1e6:>9.2f}"
            )
        lines.append(
            f"total {self.total_seconds * 1e3:.3f} ms over {len(self.ops)} ops; "
            f"peak live activations {self.peak_live_bytes / 1e6:.3f} MB"
        )
        return "\n".join(lines)
