"""Model export pipeline: freeze -> fold batch norms -> fuse activations.

This is the analogue of the TFLite exporter in Figure 5 (code path 2): the
reference TensorFlow checkpoint becomes a mobile-friendly frozen graph. The
run rules require submissions to *start* from the frozen reference graph, so
``export_mobile`` records the source checksum in the exported metadata; the
submission checker verifies it.
"""

from __future__ import annotations

from ..kernels.normalization import fold_batch_norm
from .graph import Graph, GraphValidationError
from .ops import Activation, BatchNorm, Conv2D, DepthwiseConv2D, FullyConnected

__all__ = ["fold_batch_norms", "fuse_activations", "export_mobile"]

_CONV_TYPES = (Conv2D, DepthwiseConv2D)
_FUSABLE_ACTS = {"relu", "relu6", "hard_swish"}


def _rewire(graph: Graph, old: str, new: str) -> None:
    """Redirect every consumer of tensor ``old`` to ``new`` and drop ``old``."""
    for op in graph.ops:
        op.inputs = [new if t == old else t for t in op.inputs]
    graph.output_names = [new if t == old else t for t in graph.output_names]
    del graph.tensor_specs[old]


def fold_batch_norms(graph: Graph) -> Graph:
    """Fold every conv->BN pair into the convolution weights/bias."""
    g = graph.clone()
    producers = g.producers()
    consumers = g.consumers()
    removed: list[BatchNorm] = []
    for op in list(g.ops):
        if not isinstance(op, BatchNorm):
            continue
        src = producers.get(op.inputs[0])
        if not isinstance(src, _CONV_TYPES):
            continue
        if len(consumers.get(op.inputs[0], [])) != 1:
            continue  # conv output used elsewhere; cannot fold
        w_name = src.attrs["weight"]
        new_b = f"{src.name}/b_folded"
        if g.params[w_name] is None:
            # symbolic graph: fold structurally (shapes only, no arithmetic)
            bias_shape = g.param_shapes[op.attrs["gamma"]]
            g.params[new_b] = None
            g.param_shapes[new_b] = bias_shape
        else:
            folded_w, folded_b = fold_batch_norm(
                g.params[w_name],
                g.params.get(src.attrs.get("bias")),
                g.params[op.attrs["mean"]],
                g.params[op.attrs["variance"]],
                g.params[op.attrs["gamma"]],
                g.params[op.attrs["beta"]],
                op.attrs.get("eps", 1e-3),
                depthwise=isinstance(src, DepthwiseConv2D),
            )
            g.params[w_name] = folded_w
            g.params[new_b] = folded_b
            g.param_shapes[new_b] = tuple(folded_b.shape)
        src.attrs["bias"] = new_b
        # conv now produces the BN's output tensor directly
        old_out = src.outputs[0]
        bn_out = op.outputs[0]
        g.ops.remove(op)
        removed.append(op)
        src.outputs[0] = bn_out
        spec = g.tensor_specs[bn_out]
        del g.tensor_specs[old_out]
        g.tensor_specs[bn_out] = spec
        for pname in (op.attrs["mean"], op.attrs["variance"], op.attrs["gamma"], op.attrs["beta"]):
            g.params.pop(pname, None)
            g.param_shapes.pop(pname, None)
        producers = g.producers()
        consumers = g.consumers()
    g.metadata["folded_batch_norms"] = len(removed)
    g.validate()
    return g


def fuse_activations(graph: Graph) -> Graph:
    """Fuse standalone relu/relu6/hard_swish ops into the producing conv/fc."""
    g = graph.clone()
    producers = g.producers()
    consumers = g.consumers()
    fused = 0
    for op in list(g.ops):
        if not isinstance(op, Activation) or op.attrs["kind"] not in _FUSABLE_ACTS:
            continue
        src = producers.get(op.inputs[0])
        if not isinstance(src, (*_CONV_TYPES, FullyConnected)):
            continue
        if src.attrs.get("activation") is not None:
            continue
        if len(consumers.get(op.inputs[0], [])) != 1:
            continue
        src.attrs["activation"] = op.attrs["kind"]
        old_out = src.outputs[0]
        act_out = op.outputs[0]
        g.ops.remove(op)
        src.outputs[0] = act_out
        del g.tensor_specs[old_out]
        fused += 1
        producers = g.producers()
        consumers = g.consumers()
    g.metadata["fused_activations"] = fused
    g.validate()
    return g


def export_mobile(
    graph: Graph,
    optimize: bool = False,
    passes: tuple[str, ...] | list[str] | None = None,
) -> Graph:
    """Full export: fold BN, fuse activations, freeze, stamp provenance.

    ``optimize=True`` additionally runs the graph-rewrite pipeline
    (:mod:`repro.graph.optimize`) ahead of time, baking the rewrites into
    the exported artifact instead of leaving them to plan compile time; the
    rewrite counts land in ``metadata["optimize"]``. It defaults off so the
    exported checksum of the reference path stays the historical one.

    The exported graph also carries a static-verification attestation
    (``metadata["staticcheck"]``): the exporter runs the dataflow,
    quantization and placement analyzers and stamps their verdict keyed to
    the frozen checksum, so downstream submission checks can prove the
    shipped graph was verified — and detect post-export tampering.
    """
    source_checksum = graph.checksum()
    g = fold_batch_norms(graph)
    g = fuse_activations(g)
    if optimize:
        from .optimize import optimize_graph

        g = optimize_graph(g, passes)
    g.metadata["source_checksum"] = source_checksum
    g.metadata["export_format"] = "mobile-v1"
    g.freeze()
    g.metadata["export_checksum"] = g.checksum()
    # deferred import: staticcheck imports the graph package at module scope
    from ..staticcheck.verifier import attest

    attest(g)
    return g
