"""Planned execution engine: one-time compilation of a materialized graph.

The LoadGen design rule (MLPerf Inference, arXiv:1911.02549) is that query
issuance and harness bookkeeping must never be the bottleneck — measured
latency has to reflect the workload. The legacy interpreter re-derived
everything per query: quantized conv kernels re-cast and re-reduced their
weight tensors on every call, activation LUTs were rebuilt per op call, and
the environment retained every intermediate for the whole pass.

An :class:`ExecutionPlan` is compiled once per ``(graph, numerics)`` and
caches three things:

1. **Prepacked constants** — weight matrices, zero-point column sums,
   effective scales, widened biases and activation LUTs, via the kernel-level
   prepack API (:mod:`repro.kernels.conv`, :mod:`repro.kernels.linear`).
2. **Dispatch** — each op is bound to a prepared closure, so the per-query
   loop is a flat list of calls with no attribute/spec lookups.
3. **Tensor liveness** — each intermediate is released from the environment
   right after its last consumer runs, so peak live activation bytes track
   the true working set instead of the whole activation footprint.

Plans are bit-exact with the legacy interpreter (``Executor.run_unplanned``)
in all four numerics modes: the prepacked kernels perform the identical
operation sequence, merely hoisted out of the per-query path.
"""

from __future__ import annotations

import threading
import time
import weakref
from typing import Callable

import numpy as np

from .. import kernels as K
from ..kernels.numerics import Numerics, cast_fp16, dequantize, quantize
from .arena import ArenaLayout, TensorRecord, effective_liveness, plan_arena, plan_layout
from .graph import Graph
from .ops import (
    ACTIVATION_FUNCTIONS,
    Activation,
    Add,
    Conv2D,
    DepthwiseConv2D,
    FullyConnected,
    Op,
)
from .optimize import optimize_graph
from .profiler import ExecutionProfiler

__all__ = ["ExecutionPlan", "PlannedStep"]

Observer = Callable[[str, np.ndarray], None]

# compiled plans are cached per graph object (plans hold only read-only views
# of the graph's parameters, so sharing across executors/threads is safe)
_PLAN_CACHE: "weakref.WeakKeyDictionary[Graph, tuple[tuple, ExecutionPlan]]" = (
    weakref.WeakKeyDictionary()
)


def _graph_fingerprint(graph: Graph) -> tuple:
    """Cheap mutation detector for the plan cache.

    Model fitting, cross-layer equalization and bias correction all *replace*
    parameter arrays on an already-executed graph, so a cached plan keyed on
    graph identity alone would serve stale prepacked constants. Array object
    ids (plus op count and numerics) catch every such replacement without
    hashing any data.
    """
    return (
        graph.numerics,
        graph.frozen,
        len(graph.ops),
        tuple(map(id, graph.params.values())),
    )


class PlannedStep:
    """One prepared op call: bound kernel closure plus liveness bookkeeping.

    ``fn_out``, when not None, performs the identical computation as ``fn``
    but writes the (single) output into a caller-provided buffer — the hook
    arena execution dispatches through so the hot path allocates nothing.
    """

    __slots__ = ("name", "op_type", "inputs", "outputs", "fn", "fn_out", "release", "prepacked")

    def __init__(
        self,
        name: str,
        op_type: str,
        inputs: tuple[str, ...],
        outputs: tuple[str, ...],
        fn: Callable[[list[np.ndarray]], list[np.ndarray]],
        prepacked: bool,
        fn_out: Callable[[list[np.ndarray], np.ndarray], None] | None = None,
    ):
        self.name = name
        self.op_type = op_type
        self.inputs = inputs
        self.outputs = outputs
        self.fn = fn
        self.fn_out = fn_out
        self.release: tuple[str, ...] = ()
        self.prepacked = prepacked

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = "prepacked" if self.prepacked else "generic"
        return f"<PlannedStep {self.op_type}:{self.name} [{tag}]>"


class ExecutionPlan:
    """A compiled, reusable execution schedule for one materialized graph.

    ``liveness=False`` keeps every intermediate resident (the legacy
    behaviour); it exists so the memory benefit can be measured and tested.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        liveness: bool = True,
        optimize: bool = True,
        passes: tuple[str, ...] | list[str] | None = None,
    ):
        if graph.is_symbolic:
            raise ValueError(f"graph {graph.name!r} is symbolic and cannot execute")
        self.source_graph = graph
        self.graph = graph
        self.optimize_stats: dict = {"passes": {}, "total": 0}
        if optimize:
            optimized = optimize_graph(graph, passes)
            self.optimize_stats = optimized.metadata["optimize"]
            if self.optimize_stats["total"] > 0:
                # only swap in the rewritten clone when something changed, so
                # unrewritable graphs compile the exact same plan as before
                self.graph = optimized
        self.numerics = graph.numerics
        self.liveness = liveness
        self._observer_plan: "ExecutionPlan | None" = None
        self._arena_lock = threading.Lock()
        self._arena_states: dict[tuple, _ArenaState] = {}
        self._static_arena: ArenaLayout | None = None
        self._compile()

    @classmethod
    def for_graph(cls, graph: Graph) -> "ExecutionPlan":
        """Shared per-graph plan (weakly cached; recompiled if the graph mutated)."""
        fingerprint = _graph_fingerprint(graph)
        cached = _PLAN_CACHE.get(graph)
        if cached is not None and cached[0] == fingerprint:
            return cached[1]
        plan = cls(graph)
        _PLAN_CACHE[graph] = (fingerprint, plan)
        return plan

    # -- compilation --------------------------------------------------------
    def _compile(self) -> None:
        g = self.graph
        quantized = self.numerics.is_quantized
        self._input_prep: list[tuple[str, object]] = [
            (spec.name, spec.qparams if quantized and spec.qparams is not None else None)
            for spec in g.inputs
        ]
        self._output_qp = {name: g.spec(name).qparams for name in g.output_names}

        steps: list[PlannedStep] = []
        for op in g.ops:
            fn, prepacked, fn_out = self._bind(op)
            if self.numerics == Numerics.FP16:
                fn = _fp16_wrap(fn)
                fn_out = None  # per-op half rounding is incompatible with in-place writes
            steps.append(
                PlannedStep(
                    op.name, op.op_type, tuple(op.inputs), tuple(op.outputs), fn, prepacked,
                    fn_out,
                )
            )
        self._steps = steps

        if self.liveness:
            protected = set(g.output_names)
            last_use: dict[str, int] = {}
            for i, step in enumerate(steps):
                for t in step.inputs:
                    last_use[t] = i
            for i, step in enumerate(steps):
                step.release = tuple(
                    sorted({t for t in step.inputs if last_use[t] == i and t not in protected})
                )

    def _bind(self, op: Op) -> tuple[Callable, bool, Callable | None]:
        """Bind ``op`` to a prepared closure (and out-buffer variant) for this
        plan's numerics."""
        if self.numerics.is_quantized:
            return self._bind_quantized(op)
        return self._bind_float(op)

    # The fast paths below must replicate the exact operation sequence of the
    # corresponding ``Op.execute_*`` methods (ops.py): same casts, same
    # rounding, same clamp constants — only hoisted to compile time. The
    # fn_out variants additionally write through the kernels' ``out=``
    # parameters and apply relu/relu6 epilogues in place; activations without
    # an in-place form leave fn_out unset (those ops simply stay unmanaged by
    # the arena).

    def _bind_float(self, op: Op) -> tuple[Callable, bool, Callable | None]:
        g = self.graph
        if type(op) is Conv2D:
            pack = K.prepack_conv2d(
                g.params[op.attrs["weight"]], g.params.get(op.attrs.get("bias"))
            )
            stride = op.attrs["stride"]
            padding = op.attrs["padding"]
            dilation = op.attrs.get("dilation", 1)
            act = _float_activation(op)
            def conv_fn(ins, pack=pack, act=act):
                out = K.conv2d_prepacked(
                    ins[0], pack, stride=stride, padding=padding, dilation=dilation
                )
                return [act(out) if act is not None else out]
            act_out = _float_act_inplace(op)
            conv_out = None
            if act is None or act_out is not None:
                def conv_out(ins, out, pack=pack, act_out=act_out):
                    K.conv2d_prepacked(
                        ins[0], pack, stride=stride, padding=padding, dilation=dilation,
                        out=out,
                    )
                    if act_out is not None:
                        act_out(out)
            return conv_fn, True, conv_out
        if type(op) is DepthwiseConv2D:
            pack = K.prepack_depthwise_conv2d(
                g.params[op.attrs["weight"]], g.params.get(op.attrs.get("bias"))
            )
            stride = op.attrs["stride"]
            padding = op.attrs["padding"]
            act = _float_activation(op)
            def dw_fn(ins, pack=pack, act=act):
                out = K.depthwise_conv2d_prepacked(ins[0], pack, stride=stride, padding=padding)
                return [act(out) if act is not None else out]
            act_out = _float_act_inplace(op)
            dw_out = None
            if act is None or act_out is not None:
                def dw_out(ins, out, pack=pack, act_out=act_out):
                    K.depthwise_conv2d_prepacked(
                        ins[0], pack, stride=stride, padding=padding, out=out
                    )
                    if act_out is not None:
                        act_out(out)
            return dw_fn, True, dw_out
        if type(op) is FullyConnected:
            pack = K.prepack_fully_connected(
                g.params[op.attrs["weight"]], g.params.get(op.attrs.get("bias"))
            )
            act = _float_activation(op)
            def fc_fn(ins, pack=pack, act=act):
                out = K.fully_connected_prepacked(ins[0], pack)
                return [act(out) if act is not None else out]
            act_out = _float_act_inplace(op)
            fc_out = None
            if act is None or act_out is not None:
                def fc_out(ins, out, pack=pack, act_out=act_out):
                    K.fully_connected_prepacked(ins[0], pack, out=out)
                    if act_out is not None:
                        act_out(out)
            return fc_fn, True, fc_out
        if type(op) is Add:
            act = _float_activation(op)
            act_out = _float_act_inplace(op)
            add_out = None
            if act is None or act_out is not None:
                def add_out(ins, out, act_out=act_out):
                    np.add(ins[0], ins[1], out=out)
                    if act_out is not None:
                        act_out(out)
            return (lambda ins, op=op, g=g: op.execute_float(ins, g)), False, add_out
        if type(op) is Activation:
            kind = op.attrs["kind"]
            act_fn = ACTIVATION_FUNCTIONS[kind]
            fn = lambda ins, act_fn=act_fn: [act_fn(ins[0])]  # noqa: E731
            if kind == "relu":
                return fn, False, lambda ins, out: np.maximum(ins[0], 0.0, out=out)
            if kind == "relu6":
                return fn, False, lambda ins, out: np.clip(ins[0], 0.0, 6.0, out=out)
            return fn, False, None
        return (lambda ins, op=op, g=g: op.execute_float(ins, g)), False, None

    def _bind_quantized(self, op: Op) -> tuple[Callable, bool, Callable | None]:
        g = self.graph
        if type(op) in (Conv2D, DepthwiseConv2D):
            qparams = _conv_qparams(op, g)
            if qparams is not None:
                x_qp, w_qp, out_qp = qparams
                wq = g.params[op.attrs["weight"]]
                bq = g.params.get(op.attrs.get("bias"))
                stride = op.attrs["stride"]
                padding = op.attrs["padding"]
                post = _quantized_conv_post(op, out_qp)
                post_out = _quantized_conv_post_inplace(op, out_qp)
                if type(op) is Conv2D:
                    pack = K.prepack_conv2d_quantized(wq, bq, x_qp, w_qp)
                    dilation = op.attrs.get("dilation", 1)
                    def qconv_fn(ins, pack=pack, post=post):
                        out = K.conv2d_quantized_prepacked(
                            ins[0], pack, out_qp,
                            stride=stride, padding=padding, dilation=dilation,
                        )
                        return [post(out) if post is not None else out]
                    def qconv_out(ins, out, pack=pack, post_out=post_out):
                        K.conv2d_quantized_prepacked(
                            ins[0], pack, out_qp,
                            stride=stride, padding=padding, dilation=dilation, out=out,
                        )
                        if post_out is not None:
                            post_out(out)
                    return qconv_fn, True, qconv_out
                pack = K.prepack_depthwise_conv2d_quantized(wq, bq, x_qp, w_qp)
                def qdw_fn(ins, pack=pack, post=post):
                    out = K.depthwise_conv2d_quantized_prepacked(
                        ins[0], pack, out_qp, stride=stride, padding=padding
                    )
                    return [post(out) if post is not None else out]
                def qdw_out(ins, out, pack=pack, post_out=post_out):
                    K.depthwise_conv2d_quantized_prepacked(
                        ins[0], pack, out_qp, stride=stride, padding=padding, out=out
                    )
                    if post_out is not None:
                        post_out(out)
                return qdw_fn, True, qdw_out
        if type(op) is FullyConnected:
            qparams = _conv_qparams(op, g)
            if qparams is not None:
                x_qp, w_qp, out_qp = qparams
                pack = K.prepack_fully_connected_quantized(
                    g.params[op.attrs["weight"]], g.params.get(op.attrs.get("bias")), x_qp, w_qp
                )
                act = op.attrs.get("activation")
                lut = (
                    K.quantized_lut(ACTIVATION_FUNCTIONS[act], out_qp, out_qp)
                    if act is not None
                    else None
                )
                def qfc_fn(ins, pack=pack, lut=lut):
                    out = K.fully_connected_quantized_prepacked(ins[0], pack, out_qp)
                    if lut is not None:
                        out = K.apply_quantized_lut(out, lut, out_qp)
                    return [out]
                def qfc_out(ins, out, pack=pack, lut=lut):
                    K.fully_connected_quantized_prepacked(ins[0], pack, out_qp, out=out)
                    if lut is not None:
                        K.apply_quantized_lut(out, lut, out_qp, out=out)
                return qfc_fn, True, qfc_out
        if type(op) is Activation:
            in_qp = g.spec(op.inputs[0]).qparams
            out_qp = g.spec(op.outputs[0]).qparams
            if in_qp is not None and out_qp is not None:
                lut = K.quantized_lut(ACTIVATION_FUNCTIONS[op.attrs["kind"]], in_qp, out_qp)
                return (
                    (lambda ins, lut=lut, in_qp=in_qp: [K.apply_quantized_lut(ins[0], lut, in_qp)]),
                    True,
                    (lambda ins, out, lut=lut, in_qp=in_qp:
                        K.apply_quantized_lut(ins[0], lut, in_qp, out=out)),
                )
        return (lambda ins, op=op, g=g: op.execute_quantized(ins, g)), False, None

    # -- execution -----------------------------------------------------------
    def run(
        self,
        feeds: dict[str, np.ndarray],
        observer: Observer | None = None,
        profiler: ExecutionProfiler | None = None,
    ) -> dict[str, np.ndarray]:
        """Execute and return the output tensors (always dequantized floats).

        ``observer`` (used for PTQ calibration) is called with every float
        intermediate; it is only valid on FP32 graphs. ``profiler``
        accumulates per-op kernel time, bytes moved and peak live bytes.
        """
        numerics = self.numerics
        if observer is not None and numerics != Numerics.FP32:
            raise ValueError("calibration observers require an FP32 graph")
        if observer is not None and self.graph is not self.source_graph:
            # calibration must see every *original* intermediate; rewritten
            # graphs delegate observer runs to an unoptimized sibling plan
            return self._unoptimized().run(feeds, observer=observer, profiler=profiler)
        env: dict[str, np.ndarray] = {}
        for name, qp in self._input_prep:
            if name not in feeds:
                raise KeyError(f"missing feed for input {name!r}")
            arr = np.asarray(feeds[name])
            if qp is not None:
                arr = quantize(arr, qp)
            env[name] = arr

        live_bytes = 0
        if profiler is not None:
            profiler.runs += 1
            live_bytes = sum(a.nbytes for a in env.values())
            profiler.note_live_bytes(live_bytes)

        for step in self._steps:
            ins = [env[t] for t in step.inputs]
            if profiler is None:
                outs = step.fn(ins)
            else:
                t0 = time.perf_counter()
                outs = step.fn(ins)
                elapsed = time.perf_counter() - t0
                moved = sum(a.nbytes for a in ins) + sum(a.nbytes for a in outs)
                profiler.record(step.name, step.op_type, elapsed, moved)
            if observer is None:
                for t, arr in zip(step.outputs, outs):
                    env[t] = arr
            else:
                for t, arr in zip(step.outputs, outs):
                    env[t] = arr
                    if np.issubdtype(arr.dtype, np.floating):
                        observer(t, arr)
            if profiler is not None:
                live_bytes += sum(env[t].nbytes for t in step.outputs)
                for t in step.release:
                    live_bytes -= env[t].nbytes
                    del env[t]
                profiler.note_live_bytes(live_bytes)
            else:
                for t in step.release:
                    del env[t]

        results = {}
        for name in self.graph.output_names:
            arr = env[name]
            qp = self._output_qp[name]
            if (
                numerics.is_quantized
                and qp is not None
                and not np.issubdtype(arr.dtype, np.floating)
            ):
                arr = dequantize(arr, qp)
            results[name] = arr
        return results

    def __call__(self, feeds: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        return self.run(feeds)

    def _unoptimized(self) -> "ExecutionPlan":
        if self._observer_plan is None:
            self._observer_plan = ExecutionPlan(
                self.source_graph, liveness=self.liveness, optimize=False
            )
        return self._observer_plan

    # -- arena execution -----------------------------------------------------
    def run_arena(
        self,
        feeds: dict[str, np.ndarray],
        profiler: ExecutionProfiler | None = None,
    ) -> dict[str, np.ndarray]:
        """Execute with every managed intermediate written into a static arena.

        The first call per (thread, input-shape signature) is a *recording*
        run through the ordinary allocating closures; it captures each
        managed tensor's concrete dtype/shape, plans the arena layout
        (:mod:`repro.graph.arena`) and materializes one buffer per dtype
        class. Subsequent calls dispatch ``fn_out`` into preallocated views,
        so the steady-state hot path performs zero transient output
        allocations for managed ops. Results are bit-identical to
        :meth:`run` — same closures, same buffers' contents.
        """
        env: dict[str, np.ndarray] = {}
        for name, qp in self._input_prep:
            if name not in feeds:
                raise KeyError(f"missing feed for input {name!r}")
            arr = np.asarray(feeds[name])
            if qp is not None:
                arr = quantize(arr, qp)
            env[name] = arr

        key = (threading.get_ident(),) + tuple(
            (name, env[name].shape, env[name].dtype.str) for name, _ in self._input_prep
        )
        with self._arena_lock:
            state = self._arena_states.get(key)
        if state is None:
            state, results = self._record_arena(env, profiler)
            with self._arena_lock:
                self._arena_states[key] = state
            return results

        for step, view in zip(self._steps, state.views):
            ins = [env[t] for t in step.inputs]
            t0 = time.perf_counter() if profiler is not None else 0.0
            if view is not None:
                step.fn_out(ins, view)
                env[step.outputs[0]] = view
                outs = (view,)
            else:
                outs = step.fn(ins)
                for t, arr in zip(step.outputs, outs):
                    env[t] = arr
            if profiler is not None:
                elapsed = time.perf_counter() - t0
                moved = sum(a.nbytes for a in ins) + sum(a.nbytes for a in outs)
                profiler.record(step.name, step.op_type, elapsed, moved)
            for t in step.release:
                del env[t]
        return self._collect_outputs(env)

    def _record_arena(
        self, env: dict[str, np.ndarray], profiler: ExecutionProfiler | None
    ) -> "tuple[_ArenaState, dict[str, np.ndarray]]":
        """Allocating first run: executes, records shapes, plans the layout.

        Alias detection is empirical here — any step output that shares
        memory with one of its inputs (reshape views etc.) folds its
        lifetime into the source tensor's, and a source whose alias escapes
        as a graph output is left unmanaged entirely.
        """
        protected = set(self.graph.output_names)
        root: dict[str, str] = {}
        candidates: dict[str, tuple[int, np.ndarray]] = {}
        for i, step in enumerate(self._steps):
            ins = [env[t] for t in step.inputs]
            outs = step.fn(ins)
            for t, arr in zip(step.outputs, outs):
                env[t] = arr
                for t_in in step.inputs:
                    if np.may_share_memory(arr, env[t_in]):
                        root[t] = root.get(t_in, t_in)
                        break
            if (
                step.fn_out is not None
                and len(step.outputs) == 1
                and step.outputs[0] not in protected
            ):
                candidates[step.outputs[0]] = (i, outs[0])
            if profiler is not None:
                profiler.record(step.name, step.op_type, 0.0, 0)
        last_use, escaped = effective_liveness(self._steps, protected, root)
        records: list[TensorRecord] = []
        specs: dict[str, tuple] = {}
        for t, (i, arr) in candidates.items():
            if t in escaped or t not in last_use:
                continue
            records.append(
                TensorRecord(t, int(arr.nbytes), i, last_use[t], key=arr.dtype.str)
            )
            specs[t] = (arr.dtype, arr.shape)
        layout = plan_layout(records)
        buffers = {
            k: np.empty(nbytes, dtype=np.uint8) for k, nbytes in layout.arena_bytes.items()
        }
        views: list[np.ndarray | None] = []
        for step in self._steps:
            slot = layout.slots.get(step.outputs[0]) if len(step.outputs) == 1 else None
            if slot is None:
                views.append(None)
                continue
            dtype, shape = specs[step.outputs[0]]
            view = buffers[slot.key][slot.offset : slot.offset + slot.nbytes]
            views.append(view.view(dtype).reshape(shape))
        state = _ArenaState(layout=layout, buffers=buffers, views=views)
        results = self._collect_outputs(env)
        return state, results

    def _collect_outputs(self, env: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        results = {}
        for name in self.graph.output_names:
            arr = env[name]
            qp = self._output_qp[name]
            if (
                self.numerics.is_quantized
                and qp is not None
                and not np.issubdtype(arr.dtype, np.floating)
            ):
                arr = dequantize(arr, qp)
            results[name] = arr
        return results

    # -- introspection -------------------------------------------------------
    @property
    def num_prepacked(self) -> int:
        return sum(1 for s in self._steps if s.prepacked)

    def arena_layout(self, batch: int = 1) -> ArenaLayout:
        """Static (spec-derived) layout of the managed tensors at ``batch``."""
        if batch == 1:
            if self._static_arena is None:
                self._static_arena = plan_arena(self, batch=1)
            return self._static_arena
        return plan_arena(self, batch=batch)

    def describe(self) -> dict:
        """Summary of what compilation cached (docs/debugging aid)."""
        return {
            "graph": self.graph.name,
            "numerics": self.numerics.value,
            "ops": len(self._steps),
            "prepacked_ops": self.num_prepacked,
            "liveness": self.liveness,
            "released_tensors": sum(len(s.release) for s in self._steps),
            "optimize": {
                "total": self.optimize_stats["total"],
                "passes": {
                    k: v for k, v in self.optimize_stats.get("passes", {}).items() if v
                },
            },
            "arena": self.arena_layout(batch=1).describe(),
        }


class _ArenaState:
    """Per-(thread, input-signature) arena buffers and per-step output views."""

    __slots__ = ("layout", "buffers", "views")

    def __init__(
        self,
        layout: ArenaLayout,
        buffers: dict[str, np.ndarray],
        views: list[np.ndarray | None],
    ):
        self.layout = layout
        self.buffers = buffers
        self.views = views


def _fp16_wrap(fn: Callable) -> Callable:
    """Round every float op output through IEEE half, as the legacy loop did."""
    def wrapped(ins):
        return [
            cast_fp16(o) if np.issubdtype(o.dtype, np.floating) else o for o in fn(ins)
        ]
    return wrapped


def _float_activation(op: Op):
    act = op.attrs.get("activation")
    return ACTIVATION_FUNCTIONS[act] if act is not None else None


def _float_act_inplace(op: Op):
    """In-place form of a fused float activation, or None when no such form
    exists (sigmoid etc. — those ops stay unmanaged by the arena)."""
    act = op.attrs.get("activation")
    if act == "relu":
        return lambda out: np.maximum(out, 0.0, out=out)
    if act == "relu6":
        return lambda out: np.clip(out, 0.0, 6.0, out=out)
    return None


def _conv_qparams(op: Op, g: Graph):
    """The (x, w, out) qparams of an integer-kernel op, or None to fall back."""
    x_qp = g.spec(op.inputs[0]).qparams
    w_qp = g.param_qparams.get(op.attrs["weight"])
    out_qp = g.spec(op.outputs[0]).qparams
    if x_qp is None or w_qp is None or out_qp is None:
        return None
    return x_qp, w_qp, out_qp


def _quantized_conv_post(op: Op, out_qp):
    """Compile the integer-domain activation epilogue of a quantized conv."""
    act = op.attrs.get("activation")
    if act is None:
        return None
    if act in ("relu", "relu6"):
        # clamp in the integer domain at the quantized representation of 0/6
        zp = int(out_qp.zero_point[0])
        lo = zp
        hi = out_qp.numerics.qmax
        if act == "relu6":
            hi = min(hi, int(round(6.0 / float(out_qp.scale[0])) + zp))
        dtype = out_qp.numerics.np_dtype
        return lambda out: np.clip(out, lo, hi).astype(dtype)
    lut = K.quantized_lut(ACTIVATION_FUNCTIONS[act], out_qp, out_qp)
    return lambda out: K.apply_quantized_lut(out, lut, out_qp)


def _quantized_conv_post_inplace(op: Op, out_qp):
    """In-place variant of :func:`_quantized_conv_post` — identical clamp
    constants / LUT, but writing back into the caller's buffer. The buffer
    already carries the output dtype, so the clip's astype is a no-op."""
    act = op.attrs.get("activation")
    if act is None:
        return None
    if act in ("relu", "relu6"):
        zp = int(out_qp.zero_point[0])
        lo = zp
        hi = out_qp.numerics.qmax
        if act == "relu6":
            hi = min(hi, int(round(6.0 / float(out_qp.scale[0])) + zp))
        return lambda out: np.clip(out, lo, hi, out=out)
    lut = K.quantized_lut(ACTIVATION_FUNCTIONS[act], out_qp, out_qp)
    return lambda out: K.apply_quantized_lut(out, lut, out_qp, out=out)
