"""Human-readable graph summaries (a keras-summary analogue).

Used by the CLI's ``describe`` command and handy for model designers
(paper App. B) inspecting what a backend will actually schedule.
"""

from __future__ import annotations

from .graph import Graph
from ..kernels.numerics import Numerics

__all__ = ["graph_summary"]


def graph_summary(graph: Graph, max_rows: int | None = None) -> str:
    """Tabulate ops with output shapes, parameters and MACs."""
    costs = graph.op_costs()
    lines = [
        f"graph {graph.name!r}"
        + (" (symbolic)" if graph.is_symbolic else "")
        + (" [frozen]" if graph.frozen else ""),
        f"{'op':<28}{'type':<20}{'output shape':<22}{'params':>10}{'MMACs':>9}",
        "-" * 89,
    ]
    shown = costs if max_rows is None else costs[:max_rows]
    for op, cost in shown:
        out_shape = graph.spec(op.outputs[0]).shape
        params = sum(graph.param_elements(p) for p in op.param_names())
        lines.append(
            f"{op.name[:27]:<28}{op.op_type:<20}{str(out_shape):<22}"
            f"{params:>10,}{cost.macs / 1e6:>9.2f}"
        )
    if max_rows is not None and len(costs) > max_rows:
        lines.append(f"... {len(costs) - max_rows} more ops ...")
    total = graph.total_cost()
    lines.append("-" * 89)
    lines.append(
        f"total: {len(graph.ops)} ops, {graph.num_parameters:,} params, "
        f"{total.macs / 1e6:,.1f} MMACs/sample, "
        f"{total.activation_bytes / 1e6:.1f} MB activations (fp32)"
    )
    return "\n".join(lines)
