"""Graph-rewrite optimizer: deterministic, toggleable, exactness-preserving.

Mobile runtimes win latency with ahead-of-time graph rewrites as much as
with fast kernels: TFLite, NNAPI compilers and vendor SDKs all canonicalize
the converter's output before planning memory. This module is that layer
for our IR — a pipeline of independent passes over a :class:`Graph`, each
of which preserves *runtime equivalence*:

* **bit-exact** on INT8/UINT8 graphs (rewrites only fire when the integer
  codes are provably unchanged, e.g. qparams-equal requantize collapsing);
* **bit-exact** on FP32/FP16 graphs (rewrites respect the per-op fp16
  rounding of the reference executor — removal passes require the value
  they forward to be op-produced, i.e. already rounded).

Passes (applied in this canonical order, each individually toggleable):

``fold_constants``
    Evaluate ops whose inputs are all produced by :class:`Constant` ops,
    using the *same* executor semantics as ``Executor.run_unplanned`` for
    the graph's numerics, and replace them with raw constants holding the
    computed runtime representation (integer codes / fp16-rounded floats).
``cse``
    Common-subexpression elimination: ops with identical type, inputs,
    attributes and output quantization are merged.
``cancel_reshapes``
    Collapse reshape-of-reshape chains; remove identity reshapes and
    single-input concats.
``fold_pad``
    Fold an explicit zero ``Pad`` into a following VALID conv whose SAME
    padding would insert exactly the same rows/columns.
``collapse_requant``
    Remove provably-redundant activations: LUT-identity activations on
    quantized graphs (a redundant requantize), and order-theoretic
    redundancies (``relu`` after ``relu6`` etc.) on float graphs.
``dce``
    Dead-op/dead-tensor/dead-param elimination (backward reachability).

Every rewriting pass self-cleans the producers it orphans, so any subset
of passes yields a structurally valid graph. ``optimize_graph`` never
mutates its argument: it clones, rewrites the clone to a fixpoint and
stamps ``metadata["optimize"]`` with per-pass rewrite counts.
"""

from __future__ import annotations

import numpy as np

from ..kernels import quantized_lut
from ..kernels.conv import conv_output_shape
from ..kernels.numerics import Numerics, cast_fp16
from .graph import Graph
from .ops import ACTIVATION_FUNCTIONS, Constant, Op, _qparams_equal

__all__ = ["DEFAULT_PASSES", "PASSES", "optimize_graph"]


# -- shared rewrite plumbing --------------------------------------------------


def _consumed(graph: Graph) -> set[str]:
    used = {t for op in graph.ops for t in op.inputs}
    used.update(graph.output_names)
    return used


def _redirect(graph: Graph, old: str, new: str) -> None:
    """Point every consumer (and the output list) of ``old`` at ``new``."""
    for op in graph.ops:
        op.inputs = [new if t == old else t for t in op.inputs]
    graph.output_names = [new if t == old else t for t in graph.output_names]
    graph.tensor_specs.pop(old, None)


def _redirect_would_clash(graph: Graph, old: str, new: str) -> bool:
    """True when rewiring would leave ``new`` listed twice as a graph output."""
    return old in graph.output_names and new in graph.output_names


def _remove_op(graph: Graph, op: Op) -> None:
    graph.ops.remove(op)
    for t in op.outputs:
        graph.tensor_specs.pop(t, None)
    for p in op.param_names():
        if not any(p in other.param_names() for other in graph.ops):
            graph.params.pop(p, None)
            graph.param_shapes.pop(p, None)
            graph.param_qparams.pop(p, None)


def _drop_if_dead(graph: Graph, op: Op) -> bool:
    """Remove ``op`` when nothing consumes any of its outputs."""
    if op not in graph.ops:
        return False
    used = _consumed(graph)
    if any(t in used for t in op.outputs):
        return False
    _remove_op(graph, op)
    return True


def _producer_map(graph: Graph) -> dict[str, Op]:
    return {t: op for op in graph.ops for t in op.outputs}


def _effective_activation(op: Op) -> str | None:
    """The activation provably applied last by ``op``, if any."""
    if op.op_type == "activation":
        return op.attrs["kind"]
    if op.op_type == "softmax":
        return "softmax"
    return op.attrs.get("activation")


def _fp16_safe_source(graph: Graph, tensor: str, producers: dict[str, Op]) -> bool:
    """On FP16 graphs a forwarded value must already be fp16-rounded.

    Graph inputs are fed raw float32 (the reference loop only rounds *op
    outputs* through half precision), so removal rewrites may only forward
    op-produced tensors; on other numerics there is no per-op rounding to
    preserve.
    """
    if graph.numerics != Numerics.FP16:
        return True
    return tensor in producers


# -- pass: constant folding ---------------------------------------------------


def _const_outputs(op: Constant, graph: Graph) -> list[np.ndarray]:
    if graph.numerics.is_quantized:
        return op.execute_quantized([], graph)
    outs = op.execute_float([], graph)
    if graph.numerics == Numerics.FP16:
        outs = [cast_fp16(o) if np.issubdtype(o.dtype, np.floating) else o for o in outs]
    return outs


def fold_constants(graph: Graph) -> int:
    """Evaluate all-constant-input ops at compile time.

    The evaluation replays ``Executor.run_unplanned`` exactly — quantized
    ops run their integer kernels, FP16 rounds every float output through
    half precision — and the result is stored as a ``raw`` Constant whose
    parameter already holds the runtime representation. Re-emitting it
    verbatim at execution time is therefore bit-exact by construction.
    """
    if graph.is_symbolic:
        return 0
    quantized = graph.numerics.is_quantized
    fp16 = graph.numerics == Numerics.FP16
    const_env: dict[str, np.ndarray] = {}
    candidates: list[Constant] = []
    folded = 0
    new_ops: list[Op] = []
    for op in graph.ops:
        if isinstance(op, Constant):
            const_env[op.outputs[0]] = _const_outputs(op, graph)[0]
            candidates.append(op)
            new_ops.append(op)
            continue
        if not op.inputs or not all(t in const_env for t in op.inputs):
            new_ops.append(op)
            continue
        ins = [const_env[t] for t in op.inputs]
        if quantized:
            outs = op.execute_quantized(ins, graph)
        else:
            outs = op.execute_float(ins, graph)
            if fp16:
                outs = [
                    cast_fp16(o) if np.issubdtype(o.dtype, np.floating) else o for o in outs
                ]
        for i, (t, arr) in enumerate(zip(op.outputs, outs)):
            base = f"{op.name}/folded" if len(op.outputs) == 1 else f"{op.name}/folded_{i}"
            pname = base
            k = 0
            while pname in graph.params:
                k += 1
                pname = f"{base}.{k}"
            graph.params[pname] = np.ascontiguousarray(arr[0])
            graph.param_shapes[pname] = tuple(int(d) for d in arr[0].shape)
            const = Constant(pname, [], [t], value=pname, raw=True)
            const_env[t] = arr
            candidates.append(const)
            new_ops.append(const)
        folded += 1
    if folded:
        graph.ops = new_ops
        # constants whose every consumer has been folded away are now dead
        for op in candidates:
            _drop_if_dead(graph, op)
    return folded


# -- pass: common-subexpression elimination -----------------------------------


def _attr_key(value) -> object:
    if isinstance(value, np.ndarray):
        return (value.dtype.str, value.shape, value.tobytes())
    if isinstance(value, (list, tuple)):
        return tuple(_attr_key(v) for v in value)
    return value


def _qp_key(qp) -> object:
    if qp is None:
        return None
    return (
        qp.numerics.value,
        qp.axis,
        qp.scale.tobytes(),
        qp.zero_point.tobytes(),
    )


def _op_signature(op: Op, graph: Graph) -> tuple:
    attrs = tuple(sorted((k, _attr_key(v)) for k, v in op.attrs.items()))
    out_sig = tuple(
        (graph.spec(t).shape, _qp_key(graph.spec(t).qparams)) for t in op.outputs
    )
    return (op.op_type, tuple(op.inputs), attrs, out_sig)


def cse(graph: Graph) -> int:
    """Merge ops computing the identical value.

    The signature covers op type, input tensors, attributes (parameter
    *names* identify parameter arrays — duplicate names cannot exist) and
    the output quantization, so merged outputs carry byte-identical codes
    in every numerics mode. Duplicates whose outputs are graph outputs are
    kept (merging would alias two declared output names).
    """
    merged = 0
    changed = True
    while changed:
        changed = False
        seen: dict[tuple, Op] = {}
        for op in list(graph.ops):
            sig = _op_signature(op, graph)
            keep = seen.get(sig)
            if keep is None:
                seen[sig] = op
                continue
            if any(t in graph.output_names for t in op.outputs):
                continue
            for old, new in zip(op.outputs, keep.outputs):
                _redirect(graph, old, new)
            _remove_op(graph, op)
            merged += 1
            changed = True
    return merged


# -- pass: reshape/concat cancellation ----------------------------------------


def _removable_identity(graph: Graph, op: Op, producers: dict[str, Op]) -> bool:
    """Shared guards for forwarding ``op.inputs[0]`` in place of its output."""
    src, dst = op.inputs[0], op.outputs[0]
    if _redirect_would_clash(graph, dst, src):
        return False
    if not _fp16_safe_source(graph, src, producers):
        return False
    if graph.numerics.is_quantized and not _qparams_equal(
        graph.spec(src).qparams, graph.spec(dst).qparams
    ):
        return False
    return True


def cancel_reshapes(graph: Graph) -> int:
    """Collapse reshape chains and drop identity reshapes / 1-ary concats.

    A reshape reads and writes the same bytes, so ``reshape(reshape(x))``
    always equals ``reshape(x)`` with the outer target shape — the chain
    collapse is unconditional. *Removing* a reshape (identity shape) or a
    single-input concat forwards a tensor, which needs the qparams/fp16
    guards of :func:`_removable_identity`.
    """
    rewrites = 0
    changed = True
    while changed:
        changed = False
        producers = _producer_map(graph)
        for op in list(graph.ops):
            if op.op_type == "reshape":
                src = producers.get(op.inputs[0])
                if src is not None and src.op_type == "reshape" and src is not op:
                    op.inputs[0] = src.inputs[0]
                    rewrites += 1
                    changed = True
                    _drop_if_dead(graph, src)
                    break
                in_shape = graph.spec(op.inputs[0]).shape
                out_shape = graph.spec(op.outputs[0]).shape
                if tuple(in_shape) == tuple(out_shape) and _removable_identity(
                    graph, op, producers
                ):
                    _redirect(graph, op.outputs[0], op.inputs[0])
                    graph.ops.remove(op)
                    rewrites += 1
                    changed = True
                    break
            elif op.op_type == "concat" and len(op.inputs) == 1:
                if _removable_identity(graph, op, producers):
                    _redirect(graph, op.outputs[0], op.inputs[0])
                    graph.ops.remove(op)
                    rewrites += 1
                    changed = True
                    break
    return rewrites


# -- pass: pad-into-conv folding ----------------------------------------------


def fold_pad(graph: Graph) -> int:
    """Fold an explicit zero ``Pad`` into a following VALID convolution.

    Fires only when the pad amounts are *exactly* the (top,bottom)/(left,
    right) rows SAME padding would insert for the pre-pad input — then the
    conv's internal ``pad_input`` reproduces the identical padded tensor
    (zeros in float, the zero-point code in quantized graphs, where the
    rewrite additionally requires the pad to be a code-preserving copy:
    qparams equal across it).
    """
    rewrites = 0
    changed = True
    while changed:
        changed = False
        producers = _producer_map(graph)
        consumers: dict[str, int] = {}
        for op in graph.ops:
            for t in op.inputs:
                consumers[t] = consumers.get(t, 0) + 1
        for op in list(graph.ops):
            if op.op_type not in ("conv2d", "depthwise_conv2d"):
                continue
            if op.attrs["padding"] != "valid":
                continue
            pad = producers.get(op.inputs[0])
            if pad is None or pad.op_type != "pad":
                continue
            if float(pad.attrs.get("value", 0.0)) != 0.0:
                continue
            if not _fp16_safe_source(graph, pad.inputs[0], producers):
                continue
            if graph.numerics.is_quantized and not _qparams_equal(
                graph.spec(pad.inputs[0]).qparams, graph.spec(pad.outputs[0]).qparams
            ):
                continue
            pre = graph.spec(pad.inputs[0]).shape
            if len(pre) != 4:
                continue
            kh, kw = graph.param_shape(op.attrs["weight"])[:2]
            stride = op.attrs["stride"]
            dilation = op.attrs.get("dilation", 1)
            try:
                oh, ow, pads_h, pads_w = conv_output_shape(
                    pre[1], pre[2], kh, kw, stride, "same", dilation
                )
            except ValueError:
                continue
            if pads_h != tuple(pad.attrs["pads_h"]) or pads_w != tuple(pad.attrs["pads_w"]):
                continue
            cur = graph.spec(op.outputs[0]).shape
            if (oh, ow) != (cur[1], cur[2]):
                continue
            op.inputs[0] = pad.inputs[0]
            op.attrs["padding"] = "same"
            rewrites += 1
            changed = True
            _drop_if_dead(graph, pad)
            break
    return rewrites


# -- pass: redundant-requantize / redundant-activation collapsing -------------

# producer activations after which applying the keyed activation is the
# identity on the reachable output range (relu: [0,∞); relu6 & the sigmoids
# and softmax: ⊆ [0,6])
_REDUNDANT_AFTER = {
    "relu": {"relu", "relu6", "sigmoid", "hard_sigmoid", "softmax"},
    "relu6": {"relu6", "sigmoid", "hard_sigmoid", "softmax"},
}


def _identity_lut(in_qp, out_qp, kind: str) -> bool:
    lut = quantized_lut(ACTIVATION_FUNCTIONS[kind], in_qp, out_qp)
    lo, hi = in_qp.numerics.qmin, in_qp.numerics.qmax
    return bool(
        np.array_equal(lut, np.arange(lo, hi + 1, dtype=np.int64).astype(lut.dtype))
    )


def collapse_requant(graph: Graph) -> int:
    """Remove activation ops that provably change no value.

    Quantized graphs: an ``Activation`` executes as one 256-entry LUT
    (dequantize → f → requantize, precomputed); when that LUT is the
    identity permutation the op is a redundant requantize and its removal
    is bit-exact. Float graphs: an activation is dropped when its
    producer's own (fused) activation already confines the range to the
    activation's fixpoint set (``relu`` after ``relu6``, …).
    """
    rewrites = 0
    changed = True
    while changed:
        changed = False
        producers = _producer_map(graph)
        for op in list(graph.ops):
            if op.op_type != "activation":
                continue
            src, dst = op.inputs[0], op.outputs[0]
            if _redirect_would_clash(graph, dst, src):
                continue
            removable = False
            if graph.numerics.is_quantized:
                in_qp = graph.spec(src).qparams
                out_qp = graph.spec(dst).qparams
                removable = (
                    in_qp is not None
                    and out_qp is not None
                    and _qparams_equal(in_qp, out_qp)
                    and _identity_lut(in_qp, out_qp, op.attrs["kind"])
                )
            else:
                prod = producers.get(src)
                if prod is not None and _fp16_safe_source(graph, src, producers):
                    removable = (
                        _effective_activation(prod)
                        in _REDUNDANT_AFTER.get(op.attrs["kind"], ())
                    )
            if not removable:
                continue
            _redirect(graph, dst, src)
            graph.ops.remove(op)
            rewrites += 1
            changed = True
            break
    return rewrites


# -- pass: dead-code elimination ----------------------------------------------


def dce(graph: Graph) -> int:
    """Drop ops (and their tensors/params) that reach no graph output."""
    live = set(graph.output_names)
    keep: list[Op] = []
    removed: list[Op] = []
    for op in reversed(graph.ops):
        if any(t in live for t in op.outputs):
            live.update(op.inputs)
            keep.append(op)
        else:
            removed.append(op)
    if not removed:
        return 0
    graph.ops = list(reversed(keep))
    used_params = {p for op in graph.ops for p in op.param_names()}
    for op in removed:
        for t in op.outputs:
            graph.tensor_specs.pop(t, None)
        for p in op.param_names():
            if p not in used_params:
                graph.params.pop(p, None)
                graph.param_shapes.pop(p, None)
                graph.param_qparams.pop(p, None)
    return len(removed)


# -- driver -------------------------------------------------------------------

PASSES = {
    "fold_constants": fold_constants,
    "cse": cse,
    "cancel_reshapes": cancel_reshapes,
    "fold_pad": fold_pad,
    "collapse_requant": collapse_requant,
    "dce": dce,
}

DEFAULT_PASSES = tuple(PASSES)

_MAX_ROUNDS = 3


def optimize_graph(
    graph: Graph, passes: tuple[str, ...] | list[str] | None = None
) -> Graph:
    """Run the rewrite pipeline on a clone of ``graph`` until fixpoint.

    ``passes`` selects (and orders) a subset of :data:`PASSES`; ``None``
    runs the full canonical pipeline. The input graph is never mutated.
    The returned clone validates, keeps the input's frozen state, and
    carries ``metadata["optimize"] = {"passes": {...}, "total": n}``;
    when any rewrite fired the (now stale) staticcheck attestation stamp
    is dropped, since it was keyed to the pre-rewrite checksum.
    """
    names = tuple(passes) if passes is not None else DEFAULT_PASSES
    for n in names:
        if n not in PASSES:
            raise KeyError(f"unknown optimize pass {n!r} (known: {sorted(PASSES)})")
    g = graph.clone()
    g.frozen = False
    counts = {n: 0 for n in names}
    for _ in range(_MAX_ROUNDS):
        round_total = 0
        for n in names:
            applied = PASSES[n](g)
            counts[n] += applied
            round_total += applied
        if round_total == 0:
            break
    total = sum(counts.values())
    g.metadata["optimize"] = {"passes": counts, "total": total}
    if total:
        g.metadata.pop("staticcheck", None)
    g.validate()
    g.frozen = graph.frozen
    return g
