"""Graph IR, builder, executor, planner and exporter — the TFLite-substrate layer."""

from .builder import GraphBuilder
from .converter import export_mobile, fold_batch_norms, fuse_activations
from .executor import Executor
from .graph import Graph, GraphValidationError
from .plan import ExecutionPlan, PlannedStep
from .profiler import ExecutionProfiler, OpProfile
from .summary import graph_summary
from .ops import OpCost, ShapeError
from .tensor import TensorSpec

__all__ = [
    "Graph",
    "GraphValidationError",
    "GraphBuilder",
    "Executor",
    "ExecutionPlan",
    "PlannedStep",
    "ExecutionProfiler",
    "OpProfile",
    "TensorSpec",
    "OpCost",
    "ShapeError",
    "export_mobile",
    "fold_batch_norms",
    "fuse_activations",
    "graph_summary",
]
