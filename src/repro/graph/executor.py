"""Reference executor: runs a materialized graph in FP32, FP16 or INT8/UINT8.

This is the functional core the accuracy mode of the benchmark runs on.
FP16 execution rounds every op output through IEEE half precision; quantized
execution dispatches to integer kernels (or float-fallback islands) using the
qparams installed by the PTQ pass.

``Executor.run`` executes through a compiled :class:`ExecutionPlan`
(prepacked constants, cached dispatch, tensor liveness — see
:mod:`repro.graph.plan`); ``run_unplanned`` keeps the original interpreting
loop, which the plan is regression-tested to match bit-exactly.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..kernels.numerics import Numerics, cast_fp16, dequantize, quantize
from .graph import Graph
from .plan import ExecutionPlan
from .profiler import ExecutionProfiler

__all__ = ["Executor"]

Observer = Callable[[str, np.ndarray], None]


class Executor:
    """Executes a graph. One instance is reusable across many batches."""

    def __init__(self, graph: Graph):
        if graph.is_symbolic:
            raise ValueError(f"graph {graph.name!r} is symbolic and cannot execute")
        self.graph = graph

    @property
    def plan(self) -> ExecutionPlan:
        """The compiled plan (shared per graph, built on first use)."""
        return ExecutionPlan.for_graph(self.graph)

    def run(
        self,
        feeds: dict[str, np.ndarray],
        observer: Observer | None = None,
        profiler: ExecutionProfiler | None = None,
    ) -> dict[str, np.ndarray]:
        """Execute and return the output tensors (always dequantized floats).

        ``observer`` (used for PTQ calibration) is called with every float
        intermediate; it is only valid on FP32 graphs. ``profiler``
        accumulates per-op timing (see :class:`ExecutionProfiler`).
        """
        return self.plan.run(feeds, observer=observer, profiler=profiler)

    def run_arena(
        self,
        feeds: dict[str, np.ndarray],
        profiler: ExecutionProfiler | None = None,
    ) -> dict[str, np.ndarray]:
        """Execute through the plan's static memory arena (bit-identical to
        :meth:`run`; zero transient output allocations once warmed up)."""
        return self.plan.run_arena(feeds, profiler=profiler)

    def run_unplanned(
        self,
        feeds: dict[str, np.ndarray],
        observer: Observer | None = None,
        tap: Observer | None = None,
    ) -> dict[str, np.ndarray]:
        """The legacy per-query interpreting loop (the plan's exactness oracle).

        Re-derives dispatch, qparams and constant-operand reductions on every
        call and retains all intermediates; kept as the reference
        implementation that ``ExecutionPlan`` must match bit-for-bit.

        ``tap``, unlike ``observer``, is valid on every numerics mode: it
        receives every tensor in its raw stored form (integer codes on
        quantized graphs, post-cast floats on FP16) — inputs after boundary
        quantization and each op output. Used by the static range analysis to
        cross-validate proven intervals against concrete execution.
        """
        g = self.graph
        numerics = g.numerics
        if observer is not None and numerics != Numerics.FP32:
            raise ValueError("calibration observers require an FP32 graph")
        env: dict[str, np.ndarray] = {}
        for spec in g.inputs:
            if spec.name not in feeds:
                raise KeyError(f"missing feed for input {spec.name!r}")
            arr = np.asarray(feeds[spec.name])
            if numerics.is_quantized and spec.qparams is not None:
                arr = quantize(arr, spec.qparams)
            env[spec.name] = arr
            if tap is not None:
                tap(spec.name, arr)

        for op in g.ops:
            ins = [env[t] for t in op.inputs]
            if numerics.is_quantized:
                outs = op.execute_quantized(ins, g)
            else:
                outs = op.execute_float(ins, g)
                if numerics == Numerics.FP16:
                    outs = [
                        cast_fp16(o) if np.issubdtype(o.dtype, np.floating) else o for o in outs
                    ]
            for t, arr in zip(op.outputs, outs):
                env[t] = arr
                if observer is not None and np.issubdtype(arr.dtype, np.floating):
                    observer(t, arr)
                if tap is not None:
                    tap(t, arr)

        results = {}
        for name in g.output_names:
            arr = env[name]
            qp = g.spec(name).qparams
            if numerics.is_quantized and qp is not None and not np.issubdtype(arr.dtype, np.floating):
                arr = dequantize(arr, qp)
            results[name] = arr
        return results

    def __call__(self, feeds: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        return self.run(feeds)
