"""NumPy compute kernels: the lowest layer of the stack.

Everything above (graph executor, models, quantization) is built on these
pure functions. Float kernels take/return float32 NHWC arrays; quantized
kernels operate on integer arrays tagged with :class:`QuantParams`.
"""

from .activations import (
    apply_quantized_lut,
    gelu,
    hard_sigmoid,
    hard_swish,
    log_softmax,
    quantized_lut,
    relu,
    relu6,
    sigmoid,
    softmax,
    tanh,
)
from .attention import multi_head_attention
from .conv import (
    conv2d,
    conv2d_quantized,
    conv_output_shape,
    depthwise_conv2d,
    depthwise_conv2d_quantized,
    im2col,
    pad_input,
)
from .linear import batched_matmul, fully_connected, fully_connected_quantized
from .normalization import batch_norm, fold_batch_norm, layer_norm
from .numerics import (
    Numerics,
    QuantParams,
    cast_fp16,
    choose_qparams,
    dequantize,
    fake_quant,
    quantize,
    requantize,
)
from .recurrent import depth_to_space, lstm_cell, lstm_sequence
from .pooling import (
    avg_pool2d,
    global_avg_pool,
    max_pool2d,
    resize_bilinear,
    resize_nearest,
)

__all__ = [
    "Numerics",
    "QuantParams",
    "quantize",
    "dequantize",
    "requantize",
    "choose_qparams",
    "fake_quant",
    "cast_fp16",
    "conv2d",
    "depthwise_conv2d",
    "conv2d_quantized",
    "depthwise_conv2d_quantized",
    "conv_output_shape",
    "im2col",
    "pad_input",
    "fully_connected",
    "fully_connected_quantized",
    "batched_matmul",
    "relu",
    "relu6",
    "hard_swish",
    "hard_sigmoid",
    "sigmoid",
    "tanh",
    "gelu",
    "softmax",
    "log_softmax",
    "quantized_lut",
    "apply_quantized_lut",
    "batch_norm",
    "layer_norm",
    "fold_batch_norm",
    "avg_pool2d",
    "max_pool2d",
    "global_avg_pool",
    "resize_bilinear",
    "resize_nearest",
    "multi_head_attention",
    "lstm_cell",
    "lstm_sequence",
    "depth_to_space",
]
