"""Normalization kernels.

Batch norm exists in the IR so the converter can demonstrate folding it into
the preceding convolution (the standard TFLite export step); layer norm is the
MobileBERT building block (the paper's MobileBERT uses the no-norm/LayerNorm
variants — we implement standard LayerNorm).
"""

from __future__ import annotations

import numpy as np

__all__ = ["batch_norm", "layer_norm", "fold_batch_norm"]


def batch_norm(
    x: np.ndarray,
    mean: np.ndarray,
    variance: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float = 1e-3,
) -> np.ndarray:
    """Inference-time batch norm over the channel (last) axis."""
    inv = gamma / np.sqrt(variance + eps)
    return ((x - mean) * inv + beta).astype(np.float32)


def layer_norm(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Layer norm over the last axis."""
    x = np.asarray(x, dtype=np.float32)
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return ((x - mean) / np.sqrt(var + eps) * gamma + beta).astype(np.float32)


def fold_batch_norm(
    weight: np.ndarray,
    bias: np.ndarray | None,
    mean: np.ndarray,
    variance: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float = 1e-3,
    *,
    depthwise: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Fold BN statistics into conv weights/bias.

    ``weight``: (kh,kw,Cin,Cout), or (kh,kw,C,1) for depthwise where BN runs
    over C. Returns the folded (weight, bias).
    """
    inv = (gamma / np.sqrt(variance + eps)).astype(np.float32)
    if depthwise:
        w = weight * inv[None, None, :, None]
    else:
        w = weight * inv[None, None, None, :]
    b = bias if bias is not None else np.zeros_like(mean, dtype=np.float32)
    b = (b - mean) * inv + beta
    return w.astype(np.float32), b.astype(np.float32)
