"""Fully-connected / matmul kernels, float and integer paths.

Like :mod:`repro.kernels.conv`, each kernel has a prepacked form that hoists
the constant-operand casts/reductions out of the per-query path; the plain
entry points are thin wrappers over it, so the two are bit-exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .numerics import QuantParams, requantize

__all__ = [
    "fully_connected",
    "fully_connected_quantized",
    "batched_matmul",
    "LinearPack",
    "QuantLinearPack",
    "prepack_fully_connected",
    "fully_connected_prepacked",
    "prepack_fully_connected_quantized",
    "fully_connected_quantized_prepacked",
]


@dataclass(frozen=True)
class LinearPack:
    """Constant operands of a float fully-connected layer."""

    w: np.ndarray  # float32 (in, out)
    bias: np.ndarray | None  # float32 (out,)


def prepack_fully_connected(weight: np.ndarray, bias: np.ndarray | None = None) -> LinearPack:
    return LinearPack(
        np.asarray(weight, dtype=np.float32),
        None if bias is None else bias.astype(np.float32),
    )


def fully_connected_prepacked(
    x: np.ndarray, pack: LinearPack, *, out: np.ndarray | None = None
) -> np.ndarray:
    x = np.asarray(x, dtype=np.float32)
    if out is None:
        res = x @ pack.w
        if pack.bias is not None:
            res = res + pack.bias
        return res.astype(np.float32)
    np.matmul(np.ascontiguousarray(x), pack.w, out=out)
    if pack.bias is not None:
        np.add(out, pack.bias, out=out)
    return out


def fully_connected(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None
) -> np.ndarray:
    """``x``: (..., in_features); ``weight``: (in_features, out_features)."""
    return fully_connected_prepacked(x, prepack_fully_connected(weight, bias))


@dataclass(frozen=True)
class QuantLinearPack:
    """Constant operands of an integer fully-connected layer."""

    w_mat: np.ndarray  # float64 (in, out)
    w_zp: np.ndarray | int  # per-channel (1, out) or scalar
    w_zp_any: bool
    bias: np.ndarray | None  # int64 (out,)
    eff_scale: np.ndarray  # float64 (1, out)
    x_zp: int
    f_in: int
    f_out: int


def prepack_fully_connected_quantized(
    wq: np.ndarray,
    bias_q: np.ndarray | None,
    x_qp: QuantParams,
    w_qp: QuantParams,
) -> QuantLinearPack:
    f_in, f_out = wq.shape
    if w_qp.per_channel:
        w_zp = w_qp.zero_point.reshape(1, -1)
    else:
        w_zp = int(w_qp.zero_point[0])
    return QuantLinearPack(
        w_mat=wq.astype(np.float64),
        w_zp=w_zp,
        w_zp_any=bool(np.any(w_zp != 0)),
        bias=None if bias_q is None else bias_q.astype(np.int64),
        eff_scale=(x_qp.scale[0] * w_qp.scale).reshape(1, -1),
        x_zp=int(x_qp.zero_point[0]),
        f_in=f_in,
        f_out=f_out,
    )


def fully_connected_quantized_prepacked(
    xq: np.ndarray,
    pack: QuantLinearPack,
    out_qp: QuantParams,
    *,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Integer fully-connected with int32 accumulation and requantization."""
    lead = xq.shape[:-1]
    k = xq.shape[-1]
    # exact float64 BLAS path (see conv.py): |acc| is far below 2**53
    x2 = xq.reshape(-1, k).astype(np.float64)
    acc = np.rint((x2 - pack.x_zp) @ pack.w_mat).astype(np.int64)
    if pack.w_zp_any:
        acc -= (
            np.rint(x2.sum(axis=1, keepdims=True)).astype(np.int64) - pack.x_zp * k
        ) * pack.w_zp
    if pack.bias is not None:
        acc = acc + pack.bias
    if out is None:
        codes = requantize(acc, pack.eff_scale, out_qp)
        return codes.reshape(*lead, pack.f_out)
    requantize(acc, pack.eff_scale, out_qp, out=out.reshape(-1, pack.f_out))
    return out


def fully_connected_quantized(
    xq: np.ndarray,
    wq: np.ndarray,
    bias_q: np.ndarray | None,
    x_qp: QuantParams,
    w_qp: QuantParams,
    out_qp: QuantParams,
) -> np.ndarray:
    """Integer fully-connected with int32 accumulation and requantization."""
    pack = prepack_fully_connected_quantized(wq, bias_q, x_qp, w_qp)
    return fully_connected_quantized_prepacked(xq, pack, out_qp)


def batched_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Float batched matmul used inside attention blocks."""
    return (np.asarray(a, dtype=np.float32) @ np.asarray(b, dtype=np.float32)).astype(np.float32)
