"""Fully-connected / matmul kernels, float and integer paths."""

from __future__ import annotations

import numpy as np

from .numerics import QuantParams, requantize

__all__ = ["fully_connected", "fully_connected_quantized", "batched_matmul"]


def fully_connected(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None
) -> np.ndarray:
    """``x``: (..., in_features); ``weight``: (in_features, out_features)."""
    out = np.asarray(x, dtype=np.float32) @ np.asarray(weight, dtype=np.float32)
    if bias is not None:
        out = out + bias.astype(np.float32)
    return out.astype(np.float32)


def fully_connected_quantized(
    xq: np.ndarray,
    wq: np.ndarray,
    bias_q: np.ndarray | None,
    x_qp: QuantParams,
    w_qp: QuantParams,
    out_qp: QuantParams,
) -> np.ndarray:
    """Integer fully-connected with int32 accumulation and requantization."""
    lead = xq.shape[:-1]
    k = xq.shape[-1]
    # exact float64 BLAS path (see conv.py): |acc| is far below 2**53
    x2 = xq.reshape(-1, k).astype(np.float64)
    w2 = wq.astype(np.float64)
    x_zp = int(x_qp.zero_point[0])
    acc = np.rint((x2 - x_zp) @ w2).astype(np.int64)
    if w_qp.per_channel:
        w_zp = w_qp.zero_point.reshape(1, -1)
    else:
        w_zp = int(w_qp.zero_point[0])
    if np.any(w_zp != 0):
        acc -= (np.rint(x2.sum(axis=1, keepdims=True)).astype(np.int64) - x_zp * k) * w_zp
    if bias_q is not None:
        acc = acc + bias_q.astype(np.int64)
    eff_scale = (x_qp.scale[0] * w_qp.scale).reshape(1, -1)
    out = requantize(acc, eff_scale, out_qp)
    return out.reshape(*lead, wq.shape[1])


def batched_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Float batched matmul used inside attention blocks."""
    return (np.asarray(a, dtype=np.float32) @ np.asarray(b, dtype=np.float32)).astype(np.float32)
