"""Convolution kernels (NHWC layout) implemented with im2col + BLAS matmul.

Float kernels accumulate in float32/float64; the quantized kernel performs a
genuine integer convolution with int32 accumulation followed by requantization,
matching the TFLite reference INT8 path the paper's submissions start from.

Every kernel comes in two forms: the plain entry point (self-contained, derives
everything from its arguments on each call) and a *prepacked* pair
(``prepack_* `` + ``*_prepacked``). Prepacking hoists the constant-operand work
— weight reshapes/casts, zero-point column sums, effective scales, bias
widening — out of the per-query path; the plain kernels are implemented on top
of the prepacked ones, so both paths are bit-exact by construction. The
execution planner (:mod:`repro.graph.plan`) prepacks once per graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .numerics import QuantParams, requantize

# Toggle for the 1x1/stride-1 fast path (pure reshape + matmul, no im2col
# materialization). Module-level so tests can force the general path and
# assert the two are bit-exact.
FAST_1X1 = True

__all__ = [
    "FAST_1X1",
    "pad_input",
    "im2col",
    "conv2d",
    "depthwise_conv2d",
    "conv2d_quantized",
    "depthwise_conv2d_quantized",
    "conv_output_shape",
    "ConvPack",
    "QuantConvPack",
    "DepthwiseConvPack",
    "QuantDepthwiseConvPack",
    "prepack_conv2d",
    "conv2d_prepacked",
    "prepack_conv2d_quantized",
    "conv2d_quantized_prepacked",
    "prepack_depthwise_conv2d",
    "depthwise_conv2d_prepacked",
    "prepack_depthwise_conv2d_quantized",
    "depthwise_conv2d_quantized_prepacked",
]


def conv_output_shape(
    in_h: int, in_w: int, k_h: int, k_w: int, stride: int, padding: str, dilation: int = 1
) -> tuple[int, int, tuple[int, int], tuple[int, int]]:
    """Output spatial dims plus (top,bottom)/(left,right) padding for SAME/VALID."""
    k_h = (k_h - 1) * dilation + 1  # effective (dilated) kernel extent
    k_w = (k_w - 1) * dilation + 1
    if padding == "same":
        out_h = -(-in_h // stride)
        out_w = -(-in_w // stride)
        pad_h = max((out_h - 1) * stride + k_h - in_h, 0)
        pad_w = max((out_w - 1) * stride + k_w - in_w, 0)
        pads_h = (pad_h // 2, pad_h - pad_h // 2)
        pads_w = (pad_w // 2, pad_w - pad_w // 2)
    elif padding == "valid":
        out_h = (in_h - k_h) // stride + 1
        out_w = (in_w - k_w) // stride + 1
        pads_h = (0, 0)
        pads_w = (0, 0)
    else:
        raise ValueError(f"unknown padding mode {padding!r}")
    if out_h <= 0 or out_w <= 0:
        raise ValueError("convolution output would be empty")
    return out_h, out_w, pads_h, pads_w


def pad_input(
    x: np.ndarray, pads_h: tuple[int, int], pads_w: tuple[int, int], value: float = 0.0
) -> np.ndarray:
    if pads_h == (0, 0) and pads_w == (0, 0):
        return x
    return np.pad(x, ((0, 0), pads_h, pads_w, (0, 0)), constant_values=value)


def im2col(
    x: np.ndarray, k_h: int, k_w: int, stride: int, out_h: int, out_w: int, dilation: int = 1
) -> np.ndarray:
    """Extract (N, out_h, out_w, k_h*k_w*C) patches from padded NHWC input."""
    n, _, _, c = x.shape
    s0, s1, s2, s3 = x.strides
    patches = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, out_h, out_w, k_h, k_w, c),
        strides=(s0, s1 * stride, s2 * stride, s1 * dilation, s2 * dilation, s3),
        writeable=False,
    )
    return patches.reshape(n, out_h, out_w, k_h * k_w * c)


def _dw_patches(xp: np.ndarray, k_h: int, k_w: int, stride: int, out_h: int, out_w: int):
    """Strided (N, out_h, out_w, k_h, k_w, C) window view over padded input."""
    n = xp.shape[0]
    c = xp.shape[3]
    s0, s1, s2, s3 = xp.strides
    return np.lib.stride_tricks.as_strided(
        xp,
        shape=(n, out_h, out_w, k_h, k_w, c),
        strides=(s0, s1 * stride, s2 * stride, s1, s2, s3),
        writeable=False,
    )


# -- float path --------------------------------------------------------------


@dataclass(frozen=True)
class ConvPack:
    """Constant operands of a float convolution, ready for the matmul."""

    w_mat: np.ndarray  # float32 (kh*kw*Cin, Cout)
    bias: np.ndarray | None  # float32 (Cout,)
    k_h: int
    k_w: int
    c_in: int
    c_out: int


def prepack_conv2d(weight: np.ndarray, bias: np.ndarray | None = None) -> ConvPack:
    """Hoist the per-call weight reshape/cast of :func:`conv2d`."""
    k_h, k_w, c_in, c_out = weight.shape
    w_mat = np.ascontiguousarray(weight.reshape(-1, c_out).astype(np.float32))
    b = None if bias is None else bias.astype(np.float32)
    return ConvPack(w_mat, b, k_h, k_w, c_in, c_out)


def conv2d_prepacked(
    x: np.ndarray,
    pack: ConvPack,
    *,
    stride: int = 1,
    padding: str = "same",
    dilation: int = 1,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Float convolution against prepacked constants; bit-exact with :func:`conv2d`.

    ``out``, when given, must be a float32 (N, out_h, out_w, Cout) buffer; the
    matmul and bias add write into it directly (arena execution) and it is
    returned. A 1x1/stride-1 convolution skips padding and im2col entirely:
    the input *is* the patch matrix, so the BLAS call sees the identical
    operand without materializing a copy.
    """
    n, in_h, in_w, c_in = x.shape
    if pack.c_in != c_in:
        raise ValueError(f"channel mismatch: input {c_in}, weight {pack.c_in}")
    out_h, out_w, pads_h, pads_w = conv_output_shape(
        in_h, in_w, pack.k_h, pack.k_w, stride, padding, dilation
    )
    if FAST_1X1 and pack.k_h == 1 and pack.k_w == 1 and stride == 1:
        cols = np.ascontiguousarray(x, dtype=np.float32).reshape(-1, c_in)
    else:
        xp = pad_input(np.ascontiguousarray(x, dtype=np.float32), pads_h, pads_w)
        cols = im2col(xp, pack.k_h, pack.k_w, stride, out_h, out_w, dilation).reshape(
            -1, pack.k_h * pack.k_w * c_in
        )
    if out is None:
        res = cols @ pack.w_mat
        res = res.reshape(n, out_h, out_w, pack.c_out)
        if pack.bias is not None:
            res = res + pack.bias
        return res.astype(np.float32)
    np.matmul(cols, pack.w_mat, out=out.reshape(-1, pack.c_out))
    if pack.bias is not None:
        np.add(out, pack.bias, out=out)
    return out


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    *,
    stride: int = 1,
    padding: str = "same",
    dilation: int = 1,
) -> np.ndarray:
    """Standard convolution. ``x``: (N,H,W,Cin); ``weight``: (kh,kw,Cin,Cout)."""
    return conv2d_prepacked(
        x, prepack_conv2d(weight, bias), stride=stride, padding=padding, dilation=dilation
    )


@dataclass(frozen=True)
class DepthwiseConvPack:
    """Constant operands of a float depthwise convolution."""

    w: np.ndarray  # float32 (kh, kw, C)
    bias: np.ndarray | None  # float32 (C,)
    k_h: int
    k_w: int
    c: int


def prepack_depthwise_conv2d(
    weight: np.ndarray, bias: np.ndarray | None = None
) -> DepthwiseConvPack:
    k_h, k_w, c, mult = weight.shape
    if mult != 1:
        raise ValueError("depthwise weight must be (kh,kw,C,1) — multiplier 1 only")
    b = None if bias is None else bias.astype(np.float32)
    return DepthwiseConvPack(weight[..., 0].astype(np.float32), b, k_h, k_w, c)


def depthwise_conv2d_prepacked(
    x: np.ndarray,
    pack: DepthwiseConvPack,
    *,
    stride: int = 1,
    padding: str = "same",
    out: np.ndarray | None = None,
) -> np.ndarray:
    n, in_h, in_w, c = x.shape
    if pack.c != c:
        raise ValueError("depthwise weight must be (kh,kw,C,1) matching input channels")
    out_h, out_w, pads_h, pads_w = conv_output_shape(in_h, in_w, pack.k_h, pack.k_w, stride, padding)
    xp = pad_input(np.ascontiguousarray(x, dtype=np.float32), pads_h, pads_w)
    patches = _dw_patches(xp, pack.k_h, pack.k_w, stride, out_h, out_w)
    if out is None:
        # einsum over the kernel window, per channel
        res = np.einsum("nhwklc,klc->nhwc", patches, pack.w)
        if pack.bias is not None:
            res = res + pack.bias
        return res.astype(np.float32)
    np.einsum("nhwklc,klc->nhwc", patches, pack.w, out=out)
    if pack.bias is not None:
        np.add(out, pack.bias, out=out)
    return out


def depthwise_conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    *,
    stride: int = 1,
    padding: str = "same",
) -> np.ndarray:
    """Depthwise convolution. ``weight``: (kh,kw,C,1) — multiplier 1 only."""
    return depthwise_conv2d_prepacked(
        x, prepack_depthwise_conv2d(weight, bias), stride=stride, padding=padding
    )


# -- quantized path ----------------------------------------------------------


@dataclass(frozen=True)
class QuantConvPack:
    """Constant operands of an integer convolution.

    Everything :func:`conv2d_quantized` used to recompute per call: the
    float64 weight matrix, the x-zero-point column-sum correction, the weight
    zero points, the int64-widened bias and the effective accumulator scale.
    """

    w_mat: np.ndarray  # float64 (kh*kw*Cin, Cout)
    zp_colsum: np.ndarray  # int64 (1, Cout): x_zp * sum_k(w)
    w_zp: np.ndarray | int  # per-channel (1, Cout) or scalar
    w_zp_any: bool
    bias: np.ndarray | None  # int64 (Cout,)
    eff_scale: np.ndarray  # float64 (1, Cout)
    x_zp: int
    k_h: int
    k_w: int
    c_in: int
    c_out: int


def prepack_conv2d_quantized(
    wq: np.ndarray,
    bias_q: np.ndarray | None,
    x_qp: QuantParams,
    w_qp: QuantParams,
) -> QuantConvPack:
    """Hoist every constant-operand reduction of :func:`conv2d_quantized`."""
    k_h, k_w, c_in, c_out = wq.shape
    x_zp = int(x_qp.zero_point[0])
    w_mat = wq.astype(np.float64).reshape(-1, c_out)
    zp_colsum = x_zp * np.rint(w_mat.sum(axis=0, keepdims=True)).astype(np.int64)
    if w_qp.per_channel:
        w_zp = w_qp.zero_point.reshape(1, -1)
    else:
        w_zp = int(w_qp.zero_point[0])
    return QuantConvPack(
        w_mat=w_mat,
        zp_colsum=zp_colsum,
        w_zp=w_zp,
        w_zp_any=bool(np.any(w_zp != 0)),
        bias=None if bias_q is None else bias_q.astype(np.int64),
        eff_scale=(x_qp.scale[0] * w_qp.scale).reshape(1, -1),
        x_zp=x_zp,
        k_h=k_h,
        k_w=k_w,
        c_in=c_in,
        c_out=c_out,
    )


def conv2d_quantized_prepacked(
    xq: np.ndarray,
    pack: QuantConvPack,
    out_qp: QuantParams,
    *,
    stride: int = 1,
    padding: str = "same",
    dilation: int = 1,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Integer convolution with int32 accumulation against prepacked constants.

    float64 BLAS matmul is exact here: |acc| <= 255 * 127 * K << 2**53,
    and is an order of magnitude faster than NumPy's integer matmul.
    The 1x1/stride-1 fast path feeds the widened input straight into the
    matmul (no padding, no im2col patch copy). ``out``, when given, receives
    the requantized codes in place (the f64 accumulator workspace remains).
    """
    n, in_h, in_w, c_in = xq.shape
    out_h, out_w, pads_h, pads_w = conv_output_shape(
        in_h, in_w, pack.k_h, pack.k_w, stride, padding, dilation
    )
    if FAST_1X1 and pack.k_h == 1 and pack.k_w == 1 and stride == 1:
        cols = xq.astype(np.float64).reshape(-1, c_in)
    else:
        xp = pad_input(xq.astype(np.float64), pads_h, pads_w, value=pack.x_zp)
        cols = im2col(xp, pack.k_h, pack.k_w, stride, out_h, out_w, dilation).reshape(
            -1, pack.k_h * pack.k_w * c_in
        )
    acc = np.rint(cols @ pack.w_mat).astype(np.int64)
    # subtract zero-point contributions: sum over the patch of x_zp * w
    acc -= pack.zp_colsum
    if pack.w_zp_any:
        col_sums = np.rint(cols.sum(axis=1, keepdims=True)).astype(np.int64)
        acc -= (col_sums - pack.x_zp * cols.shape[1]) * pack.w_zp
    if pack.bias is not None:
        acc = acc + pack.bias
    if out is None:
        codes = requantize(acc, pack.eff_scale, out_qp)
        return codes.reshape(n, out_h, out_w, pack.c_out)
    requantize(acc, pack.eff_scale, out_qp, out=out.reshape(-1, pack.c_out))
    return out


def conv2d_quantized(
    xq: np.ndarray,
    wq: np.ndarray,
    bias_q: np.ndarray | None,
    x_qp: QuantParams,
    w_qp: QuantParams,
    out_qp: QuantParams,
    *,
    stride: int = 1,
    padding: str = "same",
    dilation: int = 1,
) -> np.ndarray:
    """Integer convolution with int32 accumulation.

    ``bias_q`` is pre-quantized to int32 with scale ``x_scale * w_scale``
    (per output channel when weights are per-channel), as TFLite requires.
    """
    pack = prepack_conv2d_quantized(wq, bias_q, x_qp, w_qp)
    return conv2d_quantized_prepacked(
        xq, pack, out_qp, stride=stride, padding=padding, dilation=dilation
    )


@dataclass(frozen=True)
class QuantDepthwiseConvPack:
    """Constant operands of an integer depthwise convolution."""

    w: np.ndarray  # float64 (kh, kw, C), already centered by the weight zero point
    bias: np.ndarray | None  # int64 (C,)
    eff_scale: np.ndarray  # float64 (1, 1, 1, C)
    x_zp: int
    k_h: int
    k_w: int
    c: int


def prepack_depthwise_conv2d_quantized(
    wq: np.ndarray,
    bias_q: np.ndarray | None,
    x_qp: QuantParams,
    w_qp: QuantParams,
) -> QuantDepthwiseConvPack:
    k_h, k_w, c, _ = wq.shape
    w = wq[..., 0].astype(np.float64)
    # center weights by their (per-channel) zero point: symmetric int8 pins
    # w_zp at 0 but symmetric uint8 pins it mid-range (128)
    w = w - w_qp.zero_point.astype(np.float64).reshape(1, 1, -1)
    return QuantDepthwiseConvPack(
        w=w,
        bias=None if bias_q is None else bias_q.astype(np.int64),
        eff_scale=(x_qp.scale[0] * w_qp.scale).reshape(1, 1, 1, -1),
        x_zp=int(x_qp.zero_point[0]),
        k_h=k_h,
        k_w=k_w,
        c=c,
    )


def depthwise_conv2d_quantized_prepacked(
    xq: np.ndarray,
    pack: QuantDepthwiseConvPack,
    out_qp: QuantParams,
    *,
    stride: int = 1,
    padding: str = "same",
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Integer depthwise convolution with int32 accumulation."""
    n, in_h, in_w, c = xq.shape
    out_h, out_w, pads_h, pads_w = conv_output_shape(in_h, in_w, pack.k_h, pack.k_w, stride, padding)
    xp = pad_input(xq.astype(np.float64), pads_h, pads_w, value=pack.x_zp)
    patches = _dw_patches(xp, pack.k_h, pack.k_w, stride, out_h, out_w)
    acc = np.rint(np.einsum("nhwklc,klc->nhwc", patches - pack.x_zp, pack.w)).astype(np.int64)
    if pack.bias is not None:
        acc = acc + pack.bias
    return requantize(acc, pack.eff_scale, out_qp, out=out)


def depthwise_conv2d_quantized(
    xq: np.ndarray,
    wq: np.ndarray,
    bias_q: np.ndarray | None,
    x_qp: QuantParams,
    w_qp: QuantParams,
    out_qp: QuantParams,
    *,
    stride: int = 1,
    padding: str = "same",
) -> np.ndarray:
    """Integer depthwise convolution with int32 accumulation."""
    pack = prepack_depthwise_conv2d_quantized(wq, bias_q, x_qp, w_qp)
    return depthwise_conv2d_quantized_prepacked(xq, pack, out_qp, stride=stride, padding=padding)
