"""Convolution kernels (NHWC layout) implemented with im2col + BLAS matmul.

Float kernels accumulate in float32/float64; the quantized kernel performs a
genuine integer convolution with int32 accumulation followed by requantization,
matching the TFLite reference INT8 path the paper's submissions start from.
"""

from __future__ import annotations

import numpy as np

from .numerics import QuantParams, requantize

__all__ = [
    "pad_input",
    "im2col",
    "conv2d",
    "depthwise_conv2d",
    "conv2d_quantized",
    "depthwise_conv2d_quantized",
    "conv_output_shape",
]


def conv_output_shape(
    in_h: int, in_w: int, k_h: int, k_w: int, stride: int, padding: str, dilation: int = 1
) -> tuple[int, int, tuple[int, int], tuple[int, int]]:
    """Output spatial dims plus (top,bottom)/(left,right) padding for SAME/VALID."""
    k_h = (k_h - 1) * dilation + 1  # effective (dilated) kernel extent
    k_w = (k_w - 1) * dilation + 1
    if padding == "same":
        out_h = -(-in_h // stride)
        out_w = -(-in_w // stride)
        pad_h = max((out_h - 1) * stride + k_h - in_h, 0)
        pad_w = max((out_w - 1) * stride + k_w - in_w, 0)
        pads_h = (pad_h // 2, pad_h - pad_h // 2)
        pads_w = (pad_w // 2, pad_w - pad_w // 2)
    elif padding == "valid":
        out_h = (in_h - k_h) // stride + 1
        out_w = (in_w - k_w) // stride + 1
        pads_h = (0, 0)
        pads_w = (0, 0)
    else:
        raise ValueError(f"unknown padding mode {padding!r}")
    if out_h <= 0 or out_w <= 0:
        raise ValueError("convolution output would be empty")
    return out_h, out_w, pads_h, pads_w


def pad_input(
    x: np.ndarray, pads_h: tuple[int, int], pads_w: tuple[int, int], value: float = 0.0
) -> np.ndarray:
    if pads_h == (0, 0) and pads_w == (0, 0):
        return x
    return np.pad(x, ((0, 0), pads_h, pads_w, (0, 0)), constant_values=value)


def im2col(
    x: np.ndarray, k_h: int, k_w: int, stride: int, out_h: int, out_w: int, dilation: int = 1
) -> np.ndarray:
    """Extract (N, out_h, out_w, k_h*k_w*C) patches from padded NHWC input."""
    n, _, _, c = x.shape
    s0, s1, s2, s3 = x.strides
    patches = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, out_h, out_w, k_h, k_w, c),
        strides=(s0, s1 * stride, s2 * stride, s1 * dilation, s2 * dilation, s3),
        writeable=False,
    )
    return patches.reshape(n, out_h, out_w, k_h * k_w * c)


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    *,
    stride: int = 1,
    padding: str = "same",
    dilation: int = 1,
) -> np.ndarray:
    """Standard convolution. ``x``: (N,H,W,Cin); ``weight``: (kh,kw,Cin,Cout)."""
    n, in_h, in_w, c_in = x.shape
    k_h, k_w, w_cin, c_out = weight.shape
    if w_cin != c_in:
        raise ValueError(f"channel mismatch: input {c_in}, weight {w_cin}")
    out_h, out_w, pads_h, pads_w = conv_output_shape(in_h, in_w, k_h, k_w, stride, padding, dilation)
    xp = pad_input(np.ascontiguousarray(x, dtype=np.float32), pads_h, pads_w)
    cols = im2col(xp, k_h, k_w, stride, out_h, out_w, dilation)
    out = cols.reshape(-1, k_h * k_w * c_in) @ weight.reshape(-1, c_out).astype(np.float32)
    out = out.reshape(n, out_h, out_w, c_out)
    if bias is not None:
        out = out + bias.astype(np.float32)
    return out.astype(np.float32)


def depthwise_conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    *,
    stride: int = 1,
    padding: str = "same",
) -> np.ndarray:
    """Depthwise convolution. ``weight``: (kh,kw,C,1) — multiplier 1 only."""
    n, in_h, in_w, c = x.shape
    k_h, k_w, w_c, mult = weight.shape
    if w_c != c or mult != 1:
        raise ValueError("depthwise weight must be (kh,kw,C,1) matching input channels")
    out_h, out_w, pads_h, pads_w = conv_output_shape(in_h, in_w, k_h, k_w, stride, padding)
    xp = pad_input(np.ascontiguousarray(x, dtype=np.float32), pads_h, pads_w)
    s0, s1, s2, s3 = xp.strides
    patches = np.lib.stride_tricks.as_strided(
        xp,
        shape=(n, out_h, out_w, k_h, k_w, c),
        strides=(s0, s1 * stride, s2 * stride, s1, s2, s3),
        writeable=False,
    )
    # einsum over the kernel window, per channel
    out = np.einsum("nhwklc,klc->nhwc", patches, weight[..., 0].astype(np.float32))
    if bias is not None:
        out = out + bias.astype(np.float32)
    return out.astype(np.float32)


def conv2d_quantized(
    xq: np.ndarray,
    wq: np.ndarray,
    bias_q: np.ndarray | None,
    x_qp: QuantParams,
    w_qp: QuantParams,
    out_qp: QuantParams,
    *,
    stride: int = 1,
    padding: str = "same",
    dilation: int = 1,
) -> np.ndarray:
    """Integer convolution with int32 accumulation.

    ``bias_q`` is pre-quantized to int32 with scale ``x_scale * w_scale``
    (per output channel when weights are per-channel), as TFLite requires.
    """
    n, in_h, in_w, c_in = xq.shape
    k_h, k_w, _, c_out = wq.shape
    out_h, out_w, pads_h, pads_w = conv_output_shape(in_h, in_w, k_h, k_w, stride, padding, dilation)
    x_zp = int(x_qp.zero_point[0])
    # float64 BLAS matmul is exact here: |acc| <= 255 * 127 * K << 2**53,
    # and is an order of magnitude faster than NumPy's integer matmul.
    xp = pad_input(xq.astype(np.float64), pads_h, pads_w, value=x_zp)
    cols = im2col(xp, k_h, k_w, stride, out_h, out_w, dilation).reshape(-1, k_h * k_w * c_in)
    w_mat = wq.astype(np.float64).reshape(-1, c_out)
    acc = np.rint(cols @ w_mat).astype(np.int64)
    # subtract zero-point contributions: sum over the patch of x_zp * w
    acc -= x_zp * np.rint(w_mat.sum(axis=0, keepdims=True)).astype(np.int64)
    if w_qp.per_channel:
        w_zp = w_qp.zero_point.reshape(1, -1)
    else:
        w_zp = int(w_qp.zero_point[0])
    if np.any(w_zp != 0):
        col_sums = np.rint(cols.sum(axis=1, keepdims=True)).astype(np.int64)
        acc -= (col_sums - x_zp * cols.shape[1]) * w_zp
    if bias_q is not None:
        acc = acc + bias_q.astype(np.int64)
    eff_scale = (x_qp.scale[0] * w_qp.scale).reshape(1, -1)
    out = requantize(acc, eff_scale, out_qp)
    return out.reshape(n, out_h, out_w, c_out)


def depthwise_conv2d_quantized(
    xq: np.ndarray,
    wq: np.ndarray,
    bias_q: np.ndarray | None,
    x_qp: QuantParams,
    w_qp: QuantParams,
    out_qp: QuantParams,
    *,
    stride: int = 1,
    padding: str = "same",
) -> np.ndarray:
    """Integer depthwise convolution with int32 accumulation."""
    n, in_h, in_w, c = xq.shape
    k_h, k_w, _, _ = wq.shape
    out_h, out_w, pads_h, pads_w = conv_output_shape(in_h, in_w, k_h, k_w, stride, padding)
    x_zp = int(x_qp.zero_point[0])
    xp = pad_input(xq.astype(np.float64), pads_h, pads_w, value=x_zp)
    s0, s1, s2, s3 = xp.strides
    patches = np.lib.stride_tricks.as_strided(
        xp,
        shape=(n, out_h, out_w, k_h, k_w, c),
        strides=(s0, s1 * stride, s2 * stride, s1, s2, s3),
        writeable=False,
    )
    w = wq[..., 0].astype(np.float64)
    # center weights by their (per-channel) zero point: symmetric int8 pins
    # w_zp at 0 but symmetric uint8 pins it mid-range (128)
    w = w - w_qp.zero_point.astype(np.float64).reshape(1, 1, -1)
    acc = np.rint(np.einsum("nhwklc,klc->nhwc", patches - x_zp, w)).astype(np.int64)
    if bias_q is not None:
        acc = acc + bias_q.astype(np.int64)
    eff_scale = (x_qp.scale[0] * w_qp.scale).reshape(1, 1, 1, -1)
    return requantize(acc, eff_scale, out_qp)
