"""Multi-head self-attention kernel used by MobileBERT."""

from __future__ import annotations

import numpy as np

from .activations import softmax
from .linear import batched_matmul

__all__ = ["multi_head_attention"]


def multi_head_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    num_heads: int,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """Scaled dot-product attention.

    ``q``/``k``/``v``: (batch, seq, hidden) already projected; ``mask``:
    (batch, seq) with 1 for valid tokens. Returns (batch, seq, hidden).
    """
    b, s, hidden = q.shape
    if hidden % num_heads:
        raise ValueError(f"hidden size {hidden} not divisible by {num_heads} heads")
    d = hidden // num_heads

    def split(x: np.ndarray) -> np.ndarray:
        return x.reshape(b, -1, num_heads, d).transpose(0, 2, 1, 3)  # (b, h, s, d)

    qh, kh, vh = split(q), split(k), split(v)
    scores = batched_matmul(qh, kh.transpose(0, 1, 3, 2)) / np.sqrt(d)
    if mask is not None:
        neg = np.where(mask[:, None, None, :] > 0, 0.0, -1e9).astype(np.float32)
        scores = scores + neg
    probs = softmax(scores, axis=-1)
    ctx = batched_matmul(probs, vh)  # (b, h, s, d)
    return ctx.transpose(0, 2, 1, 3).reshape(b, s, hidden).astype(np.float32)
