"""Activation and normalization-free elementwise kernels.

Quantized activations follow the TFLite convention of a 256-entry lookup
table built from the dequantize -> f -> requantize composition, so the
integer path never leaves the int8/uint8 domain.
"""

from __future__ import annotations

import numpy as np

from .numerics import QuantParams, dequantize, quantize

__all__ = [
    "relu",
    "relu6",
    "hard_swish",
    "hard_sigmoid",
    "sigmoid",
    "tanh",
    "gelu",
    "softmax",
    "log_softmax",
    "quantized_lut",
    "apply_quantized_lut",
]


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0).astype(np.float32)


def relu6(x: np.ndarray) -> np.ndarray:
    return np.clip(x, 0.0, 6.0).astype(np.float32)


def hard_sigmoid(x: np.ndarray) -> np.ndarray:
    return (np.clip(x + 3.0, 0.0, 6.0) / 6.0).astype(np.float32)


def hard_swish(x: np.ndarray) -> np.ndarray:
    return (x * hard_sigmoid(x)).astype(np.float32)


def sigmoid(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    return (1.0 / (1.0 + np.exp(-x))).astype(np.float32)


def tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(np.asarray(x, dtype=np.float64)).astype(np.float32)


def gelu(x: np.ndarray) -> np.ndarray:
    """tanh approximation of GELU, as used by MobileBERT."""
    x = np.asarray(x, dtype=np.float64)
    inner = np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)
    return (0.5 * x * (1.0 + np.tanh(inner))).astype(np.float32)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    x = x - x.max(axis=axis, keepdims=True)
    e = np.exp(x)
    return (e / e.sum(axis=axis, keepdims=True)).astype(np.float32)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    x = x - x.max(axis=axis, keepdims=True)
    return (x - np.log(np.exp(x).sum(axis=axis, keepdims=True))).astype(np.float32)


def quantized_lut(fn, in_qp: QuantParams, out_qp: QuantParams) -> np.ndarray:
    """Build the 2**bits-entry lookup table implementing ``fn`` on ints."""
    lo, hi = in_qp.numerics.qmin, in_qp.numerics.qmax
    q_in = np.arange(lo, hi + 1, dtype=np.int64)
    real = dequantize(q_in.astype(in_qp.numerics.np_dtype), in_qp)
    return quantize(fn(real), out_qp)


def apply_quantized_lut(
    xq: np.ndarray,
    lut: np.ndarray,
    in_qp: QuantParams,
    *,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Index the LUT with integer inputs shifted to start at qmin.

    ``out``, when given, receives the gathered codes (arena execution); the
    values are identical to the allocating path.
    """
    idx = xq.astype(np.int64) - in_qp.numerics.qmin
    if out is None:
        return lut[idx]
    np.take(lut, idx, out=out)
    return out
