"""Numeric formats and quantization parameters used across the stack.

MLPerf Mobile submissions span FP32, FP16, INT8 and UINT8 (paper Table 2).
Every tensor in the graph IR carries a :class:`Numerics` tag and, when the
format is an integer one, a :class:`QuantParams` describing the affine
quantization ``real = scale * (q - zero_point)``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Numerics",
    "QuantParams",
    "quantize",
    "dequantize",
    "requantize",
    "choose_qparams",
    "fake_quant",
    "cast_fp16",
]


class Numerics(enum.Enum):
    """Numeric execution format for a tensor or an operator."""

    FP32 = "fp32"
    FP16 = "fp16"
    INT8 = "int8"
    UINT8 = "uint8"
    INT16 = "int16"

    @property
    def is_float(self) -> bool:
        return self in (Numerics.FP32, Numerics.FP16)

    @property
    def is_quantized(self) -> bool:
        return not self.is_float

    @property
    def bits(self) -> int:
        return {"fp32": 32, "fp16": 16, "int8": 8, "uint8": 8, "int16": 16}[self.value]

    @property
    def bytes_per_element(self) -> float:
        return self.bits / 8.0

    @property
    def np_dtype(self) -> np.dtype:
        return np.dtype(
            {
                "fp32": np.float32,
                "fp16": np.float16,
                "int8": np.int8,
                "uint8": np.uint8,
                "int16": np.int16,
            }[self.value]
        )

    @property
    def qmin(self) -> int:
        if self.is_float:
            raise ValueError(f"{self} is not a quantized format")
        return int(np.iinfo(self.np_dtype).min)

    @property
    def qmax(self) -> int:
        if self.is_float:
            raise ValueError(f"{self} is not a quantized format")
        return int(np.iinfo(self.np_dtype).max)

    @classmethod
    def parse(cls, value: "str | Numerics") -> "Numerics":
        if isinstance(value, Numerics):
            return value
        return cls(value.lower())


@dataclass(frozen=True)
class QuantParams:
    """Affine quantization parameters: ``real = scale * (q - zero_point)``.

    ``scale`` and ``zero_point`` are scalars for per-tensor quantization, or
    1-D arrays (indexed by ``axis``) for per-channel quantization of weights.
    """

    scale: np.ndarray
    zero_point: np.ndarray
    numerics: Numerics = Numerics.INT8
    axis: int | None = None  # None => per-tensor

    def __post_init__(self) -> None:
        object.__setattr__(self, "scale", np.atleast_1d(np.asarray(self.scale, dtype=np.float64)))
        object.__setattr__(
            self, "zero_point", np.atleast_1d(np.asarray(self.zero_point, dtype=np.int64))
        )
        if np.any(self.scale <= 0):
            raise ValueError("quantization scale must be strictly positive")
        if self.scale.shape != self.zero_point.shape:
            raise ValueError("scale and zero_point must have matching shapes")
        if self.axis is None and self.scale.size != 1:
            raise ValueError("per-tensor QuantParams must have scalar scale")

    @property
    def per_channel(self) -> bool:
        return self.axis is not None

    def broadcast_shape(self, ndim: int) -> tuple[int, ...]:
        """Shape that broadcasts scale/zero_point against an ``ndim`` tensor."""
        if self.axis is None:
            return (1,) * ndim
        shape = [1] * ndim
        shape[self.axis] = self.scale.size
        return tuple(shape)

    def representable_range(self) -> tuple[float, float]:
        """Real-valued interval this format can store: ``scale·(q − zp)`` over
        ``[qmin, qmax]``, hulled over channels for per-channel params."""
        qmin, qmax = self.numerics.qmin, self.numerics.qmax
        zp = self.zero_point.astype(np.float64)
        lo = float(np.min(self.scale * (qmin - zp)))
        hi = float(np.max(self.scale * (qmax - zp)))
        return lo, hi


def choose_qparams(
    min_val: float | np.ndarray,
    max_val: float | np.ndarray,
    numerics: Numerics = Numerics.INT8,
    *,
    symmetric: bool = False,
    axis: int | None = None,
) -> QuantParams:
    """Derive affine quantization parameters from an observed value range.

    Mirrors TFLite conventions: the representable range always includes 0,
    symmetric mode pins the zero point to 0 (int8) or mid-range (uint8).
    """
    lo = np.minimum(np.asarray(min_val, dtype=np.float64), 0.0)
    hi = np.maximum(np.asarray(max_val, dtype=np.float64), 0.0)
    qmin, qmax = numerics.qmin, numerics.qmax
    if symmetric:
        bound = np.maximum(np.abs(lo), np.abs(hi))
        bound = np.where(bound == 0, 1e-8, bound)
        # a subnormal bound can underflow the division to exactly 0.0
        scale = np.maximum(bound / ((qmax - qmin) / 2.0), np.finfo(np.float64).tiny)
        zero_point = np.full_like(np.atleast_1d(scale), (qmax + qmin + 1) // 2, dtype=np.int64)
    else:
        span = hi - lo
        span = np.where(span == 0, 1e-8, span)
        scale = np.maximum(span / (qmax - qmin), np.finfo(np.float64).tiny)
        zero_point = np.clip(np.round(qmin - lo / scale), qmin, qmax).astype(np.int64)
    return QuantParams(scale=scale, zero_point=zero_point, numerics=numerics, axis=axis)


def quantize(
    values: np.ndarray, qp: QuantParams, *, out: np.ndarray | None = None
) -> np.ndarray:
    """Quantize float values to the integer domain of ``qp``.

    ``out``, when given, receives the result (a cast-assign into a
    preallocated integer buffer, e.g. an arena view) and is returned; the
    stored codes are bit-identical to the allocating path.
    """
    values = np.asarray(values, dtype=np.float64)
    shape = qp.broadcast_shape(values.ndim)
    scale = qp.scale.reshape(shape)
    zp = qp.zero_point.reshape(shape)
    q = np.round(values / scale) + zp
    np.clip(q, qp.numerics.qmin, qp.numerics.qmax, out=q)
    if out is None:
        return q.astype(qp.numerics.np_dtype)
    out[...] = q.reshape(out.shape)
    return out


def dequantize(q: np.ndarray, qp: QuantParams) -> np.ndarray:
    """Map integer-domain values back to float32."""
    q = np.asarray(q, dtype=np.float64)
    shape = qp.broadcast_shape(q.ndim)
    scale = qp.scale.reshape(shape)
    zp = qp.zero_point.reshape(shape)
    return ((q - zp) * scale).astype(np.float32)


def requantize(
    acc: np.ndarray,
    in_scale: np.ndarray,
    out_qp: QuantParams,
    *,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Rescale an int32 accumulator into the output quantized domain.

    ``in_scale`` is the effective accumulator scale (input_scale * weight_scale,
    possibly per output channel and already broadcast against ``acc``).
    ``out`` optionally receives the quantized codes (see :func:`quantize`).
    """
    real = np.asarray(acc, dtype=np.float64) * in_scale
    return quantize(real, out_qp, out=out)


def fake_quant(values: np.ndarray, qp: QuantParams) -> np.ndarray:
    """Quantize then dequantize — the numeric error of one quantization hop."""
    return dequantize(quantize(values, qp), qp)


def cast_fp16(values: np.ndarray) -> np.ndarray:
    """Round-trip through IEEE half precision, returning float32.

    This is how FP16 execution is modelled: every op output passes through
    half precision, accumulators stay in float32 (matching GPU FP16 paths).
    """
    return np.asarray(values, dtype=np.float16).astype(np.float32)
