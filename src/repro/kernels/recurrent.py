"""Recurrent kernels for the streaming speech task (paper App. E).

A standard LSTM with fused gate weights, iterated over time in NumPy. The
mobile speech reference the paper lists as in-the-works is RNN-T-shaped;
the encoder stack here is the LSTM substrate such a model runs on.
"""

from __future__ import annotations

import numpy as np

from .activations import sigmoid, tanh

__all__ = ["lstm_cell", "lstm_sequence", "depth_to_space"]


def lstm_cell(
    x: np.ndarray,
    h: np.ndarray,
    c: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    bias: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """One LSTM step. Gate order: input, forget, cell, output.

    ``x``: (B, In); ``h``/``c``: (B, H); ``w_ih``: (In, 4H); ``w_hh``: (H, 4H);
    ``bias``: (4H,). Returns (h', c').
    """
    hidden = h.shape[-1]
    gates = x @ w_ih + h @ w_hh + bias
    i = sigmoid(gates[..., :hidden])
    f = sigmoid(gates[..., hidden : 2 * hidden])
    g = tanh(gates[..., 2 * hidden : 3 * hidden])
    o = sigmoid(gates[..., 3 * hidden :])
    c_new = f * c + i * g
    h_new = o * tanh(c_new)
    return h_new.astype(np.float32), c_new.astype(np.float32)


def lstm_sequence(
    x: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    bias: np.ndarray,
) -> np.ndarray:
    """Run an LSTM over a full sequence. ``x``: (B, T, In) -> (B, T, H)."""
    b, t, _ = x.shape
    hidden = w_hh.shape[0]
    h = np.zeros((b, hidden), dtype=np.float32)
    c = np.zeros((b, hidden), dtype=np.float32)
    outputs = np.empty((b, t, hidden), dtype=np.float32)
    for step in range(t):
        h, c = lstm_cell(x[:, step], h, c, w_ih, w_hh, bias)
        outputs[:, step] = h
    return outputs


def depth_to_space(x: np.ndarray, block: int) -> np.ndarray:
    """Pixel-shuffle upsampling: (B,H,W,C*r*r) -> (B,H*r,W*r,C)."""
    b, h, w, c = x.shape
    if c % (block * block):
        raise ValueError(f"channels {c} not divisible by block^2 ({block * block})")
    c_out = c // (block * block)
    x = x.reshape(b, h, w, block, block, c_out)
    x = x.transpose(0, 1, 3, 2, 4, 5)
    return np.ascontiguousarray(x.reshape(b, h * block, w * block, c_out))
