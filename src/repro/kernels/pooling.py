"""Pooling and spatial resampling kernels (NHWC layout)."""

from __future__ import annotations

import numpy as np

from .conv import conv_output_shape, im2col, pad_input

__all__ = [
    "avg_pool2d",
    "max_pool2d",
    "global_avg_pool",
    "resize_bilinear",
    "resize_nearest",
]


def _pool_window_view(x: np.ndarray, k: int, stride: int, padding: str, pad_value: float):
    """Strided (N, out_h, out_w, k, k, C) window view over the padded input.

    No patch materialization: reductions that are order-insensitive (max)
    run directly on the view instead of forcing the contiguous copy that
    ``im2col(...).reshape`` implies.
    """
    n, in_h, in_w, c = x.shape
    out_h, out_w, pads_h, pads_w = conv_output_shape(in_h, in_w, k, k, stride, padding)
    xp = pad_input(np.ascontiguousarray(x, dtype=np.float32), pads_h, pads_w, value=pad_value)
    s0, s1, s2, s3 = xp.strides
    return np.lib.stride_tricks.as_strided(
        xp,
        shape=(n, out_h, out_w, k, k, c),
        strides=(s0, s1 * stride, s2 * stride, s1, s2, s3),
        writeable=False,
    )


def _pool_patches(x: np.ndarray, k: int, stride: int, padding: str, pad_value: float):
    n, in_h, in_w, c = x.shape
    out_h, out_w, pads_h, pads_w = conv_output_shape(in_h, in_w, k, k, stride, padding)
    xp = pad_input(np.ascontiguousarray(x, dtype=np.float32), pads_h, pads_w, value=pad_value)
    cols = im2col(xp, k, k, stride, out_h, out_w)
    return cols.reshape(n, out_h, out_w, k * k, c)


def avg_pool2d(x: np.ndarray, k: int, stride: int | None = None, padding: str = "valid") -> np.ndarray:
    # mean keeps the materialized-patch path: its summation order (and hence
    # float rounding) must stay identical to the historical im2col layout
    stride = stride or k
    patches = _pool_patches(x, k, stride, padding, 0.0)
    return patches.mean(axis=3).astype(np.float32)


def max_pool2d(x: np.ndarray, k: int, stride: int | None = None, padding: str = "valid") -> np.ndarray:
    stride = stride or k
    view = _pool_window_view(x, k, stride, padding, -np.inf)
    return view.max(axis=(3, 4)).astype(np.float32)


def global_avg_pool(x: np.ndarray, keepdims: bool = True) -> np.ndarray:
    out = x.mean(axis=(1, 2), keepdims=keepdims)
    return out.astype(np.float32)


def resize_bilinear(x: np.ndarray, out_h: int, out_w: int, align_corners: bool = False) -> np.ndarray:
    """Bilinear resize matching TF's half-pixel-centers convention."""
    n, in_h, in_w, c = x.shape
    if (in_h, in_w) == (out_h, out_w):
        return np.asarray(x, dtype=np.float32)
    if align_corners and out_h > 1 and out_w > 1:
        ys = np.linspace(0, in_h - 1, out_h)
        xs = np.linspace(0, in_w - 1, out_w)
    else:
        ys = (np.arange(out_h) + 0.5) * in_h / out_h - 0.5
        xs = (np.arange(out_w) + 0.5) * in_w / out_w - 0.5
    ys = np.clip(ys, 0, in_h - 1)
    xs = np.clip(xs, 0, in_w - 1)
    y0 = np.floor(ys).astype(np.int64)
    x0 = np.floor(xs).astype(np.int64)
    y1 = np.minimum(y0 + 1, in_h - 1)
    x1 = np.minimum(x0 + 1, in_w - 1)
    wy = (ys - y0).astype(np.float32)[None, :, None, None]
    wx = (xs - x0).astype(np.float32)[None, None, :, None]
    x = np.asarray(x, dtype=np.float32)
    top = x[:, y0][:, :, x0] * (1 - wx) + x[:, y0][:, :, x1] * wx
    bot = x[:, y1][:, :, x0] * (1 - wx) + x[:, y1][:, :, x1] * wx
    return (top * (1 - wy) + bot * wy).astype(np.float32)


def resize_nearest(x: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    n, in_h, in_w, c = x.shape
    ys = np.minimum((np.arange(out_h) * in_h // out_h), in_h - 1)
    xs = np.minimum((np.arange(out_w) * in_w // out_w), in_w - 1)
    return np.ascontiguousarray(x[:, ys][:, :, xs])
