"""Mean intersection-over-union (ADE20K segmentation quality metric).

Implements the paper's 32-class variant: the model predicts the 31 most
frequent ADE20K classes plus a 32nd "everything else" bucket, and mIoU only
counts pixels whose ground-truth label is one of the 31 frequent classes
(paper §3.2 — this deliberately discards performance on rare classes).
"""

from __future__ import annotations

import numpy as np

__all__ = ["confusion_matrix", "miou", "miou_frequent_classes"]


def confusion_matrix(pred: np.ndarray, truth: np.ndarray, num_classes: int) -> np.ndarray:
    """(num_classes, num_classes) counts: rows = truth, cols = prediction."""
    pred = np.asarray(pred).ravel()
    truth = np.asarray(truth).ravel()
    if pred.shape != truth.shape:
        raise ValueError("prediction / truth shape mismatch")
    valid = (truth >= 0) & (truth < num_classes) & (pred >= 0) & (pred < num_classes)
    idx = truth[valid].astype(np.int64) * num_classes + pred[valid].astype(np.int64)
    counts = np.bincount(idx, minlength=num_classes * num_classes)
    return counts.reshape(num_classes, num_classes)


def miou(conf: np.ndarray, class_subset: np.ndarray | None = None) -> float:
    """Mean IoU from a confusion matrix, optionally over a class subset.

    Classes absent from both truth and prediction are excluded from the mean.
    """
    conf = np.asarray(conf, dtype=np.float64)
    inter = np.diag(conf)
    union = conf.sum(axis=0) + conf.sum(axis=1) - inter
    classes = np.arange(conf.shape[0]) if class_subset is None else np.asarray(class_subset)
    ious = []
    for c in classes:
        if union[c] > 0:
            ious.append(inter[c] / union[c])
    if not ious:
        raise ValueError("no classes present in the evaluation")
    return float(np.mean(ious))


def miou_frequent_classes(
    preds: list[np.ndarray], truths: list[np.ndarray], num_classes: int = 32
) -> float:
    """The benchmark's metric: mIoU over classes 0..num_classes-2.

    The final class (index ``num_classes - 1``) is the "other" bucket; pixels
    whose ground truth is "other" are ignored entirely.
    """
    total = np.zeros((num_classes, num_classes), dtype=np.int64)
    for p, t in zip(preds, truths):
        keep = t != (num_classes - 1)
        total += confusion_matrix(p[keep], t[keep], num_classes)
    return miou(total, class_subset=np.arange(num_classes - 1))
