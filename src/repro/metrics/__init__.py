"""Task quality metrics (Table 1): Top-1, COCO mAP, mIoU, SQuAD F1/EM."""

from .classification import top1_accuracy, topk_accuracy
from .detection_map import COCO_IOU_THRESHOLDS, GroundTruthBox, average_precision, coco_map
from .segmentation import confusion_matrix, miou, miou_frequent_classes
from .psnr import mean_psnr, psnr
from .speech import edit_distance, token_accuracy, word_error_rate
from .squad import exact_match, span_f1, squad_scores

__all__ = [
    "top1_accuracy",
    "topk_accuracy",
    "GroundTruthBox",
    "coco_map",
    "average_precision",
    "COCO_IOU_THRESHOLDS",
    "confusion_matrix",
    "miou",
    "miou_frequent_classes",
    "span_f1",
    "exact_match",
    "squad_scores",
    "edit_distance",
    "word_error_rate",
    "token_accuracy",
    "psnr",
    "mean_psnr",
]
