"""SQuAD v1.1 metrics: token-level F1 and exact match.

The real benchmark compares answer *strings* after normalization; with the
synthetic token-id datasets the equivalent comparison is over the predicted
token span, which is exactly what string F1 reduces to for extractive QA
(the answer text is the token subsequence).
"""

from __future__ import annotations

import numpy as np

__all__ = ["span_f1", "exact_match", "squad_scores"]


def _span_tokens(span: tuple[int, int]) -> set[int]:
    start, end = span
    if end < start:
        return set()
    return set(range(start, end + 1))


def span_f1(predicted: tuple[int, int], truth: tuple[int, int]) -> float:
    """Token-overlap F1 between two inclusive (start, end) spans."""
    p = _span_tokens(predicted)
    t = _span_tokens(truth)
    if not p and not t:
        return 1.0
    if not p or not t:
        return 0.0
    overlap = len(p & t)
    if overlap == 0:
        return 0.0
    precision = overlap / len(p)
    recall = overlap / len(t)
    return 2 * precision * recall / (precision + recall)


def exact_match(predicted: tuple[int, int], truth: tuple[int, int]) -> float:
    return 1.0 if tuple(predicted) == tuple(truth) else 0.0


def squad_scores(
    predictions: list[tuple[int, int]], truths: list[tuple[int, int]]
) -> dict[str, float]:
    """Dataset-level F1 and EM, both in [0, 100] like the official script."""
    if len(predictions) != len(truths):
        raise ValueError("prediction / truth count mismatch")
    if not predictions:
        raise ValueError("empty evaluation set")
    f1 = float(np.mean([span_f1(p, t) for p, t in zip(predictions, truths)])) * 100.0
    em = float(np.mean([exact_match(p, t) for p, t in zip(predictions, truths)])) * 100.0
    return {"f1": f1, "exact_match": em}
