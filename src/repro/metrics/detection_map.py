"""COCO-style mean average precision (the object-detection quality metric).

AP is computed per class with 101-point interpolation and averaged over the
COCO IoU thresholds 0.50:0.05:0.95, then averaged over classes — the same
definition the paper's mAP targets use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pipelines.detection import Detection, iou_matrix

__all__ = ["GroundTruthBox", "average_precision", "coco_map"]

COCO_IOU_THRESHOLDS = np.arange(0.50, 1.0, 0.05)


@dataclass(frozen=True)
class GroundTruthBox:
    box: tuple[float, float, float, float]
    class_id: int


def _match_detections(
    detections: list[Detection],
    truths: list[GroundTruthBox],
    iou_threshold: float,
) -> tuple[np.ndarray, int]:
    """Greedy score-ordered matching for one image and one class.

    Returns (tp flags aligned with detections sorted by score, num truths).
    """
    if not detections:
        return np.zeros(0, dtype=bool), len(truths)
    det_boxes = np.asarray([d.box for d in detections], dtype=np.float64)
    order = np.argsort([-d.score for d in detections], kind="stable")
    tp = np.zeros(len(detections), dtype=bool)
    if not truths:
        return tp[order], 0
    gt_boxes = np.asarray([t.box for t in truths], dtype=np.float64)
    ious = iou_matrix(det_boxes, gt_boxes)
    taken = np.zeros(len(truths), dtype=bool)
    for pos, i in enumerate(order):
        cand = np.flatnonzero(~taken)
        if cand.size == 0:
            break
        j = cand[np.argmax(ious[i, cand])]
        if ious[i, j] >= iou_threshold:
            taken[j] = True
            tp[pos] = True
    return tp, len(truths)


def average_precision(recalls: np.ndarray, precisions: np.ndarray) -> float:
    """COCO 101-point interpolated AP from monotonic recall/precision arrays."""
    if len(recalls) == 0:
        return 0.0
    # precision envelope (non-increasing from the right)
    precisions = np.maximum.accumulate(precisions[::-1])[::-1]
    recall_points = np.linspace(0, 1, 101)
    idx = np.searchsorted(recalls, recall_points, side="left")
    interp = np.where(idx < len(precisions), precisions[np.minimum(idx, len(precisions) - 1)], 0.0)
    return float(interp.mean())


def coco_map(
    all_detections: list[list[Detection]],
    all_truths: list[list[GroundTruthBox]],
    *,
    iou_thresholds: np.ndarray = COCO_IOU_THRESHOLDS,
) -> float:
    """mAP over images. ``all_detections[i]`` / ``all_truths[i]`` pair per image.

    Returns mAP in [0, 1]; the paper reports it x100 (e.g. 22.7).
    """
    if len(all_detections) != len(all_truths):
        raise ValueError("detections / ground truths length mismatch")
    class_ids = sorted(
        {t.class_id for ts in all_truths for t in ts}
        | {d.class_id for ds in all_detections for d in ds}
    )
    if not class_ids:
        return 0.0
    aps = []
    for thr in iou_thresholds:
        for c in class_ids:
            scores, tps, n_truth = [], [], 0
            for dets, truths in zip(all_detections, all_truths):
                dets_c = [d for d in dets if d.class_id == c]
                truths_c = [t for t in truths if t.class_id == c]
                tp, n = _match_detections(dets_c, truths_c, thr)
                tps.append(tp)
                scores.extend(-d.score for d in sorted(dets_c, key=lambda d: -d.score))
                n_truth += n
            if n_truth == 0:
                continue
            flat_tp = np.concatenate(tps) if tps else np.zeros(0, dtype=bool)
            if flat_tp.size == 0:
                aps.append(0.0)
                continue
            order = np.argsort(scores, kind="stable")
            flat_tp = flat_tp[order]
            cum_tp = np.cumsum(flat_tp)
            cum_fp = np.cumsum(~flat_tp)
            recalls = cum_tp / n_truth
            precisions = cum_tp / np.maximum(cum_tp + cum_fp, 1)
            aps.append(average_precision(recalls, precisions))
    return float(np.mean(aps)) if aps else 0.0
