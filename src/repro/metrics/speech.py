"""Speech-recognition metrics: word/token error rate (paper App. E)."""

from __future__ import annotations

import numpy as np

__all__ = ["edit_distance", "word_error_rate", "token_accuracy"]


def edit_distance(a: list[int], b: list[int]) -> int:
    """Levenshtein distance between two token sequences."""
    if not a:
        return len(b)
    if not b:
        return len(a)
    prev = np.arange(len(b) + 1)
    for i, x in enumerate(a, start=1):
        cur = np.empty(len(b) + 1, dtype=np.int64)
        cur[0] = i
        for j, y in enumerate(b, start=1):
            cur[j] = min(prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + (x != y))
        prev = cur
    return int(prev[-1])


def word_error_rate(
    hypotheses: list[list[int]], references: list[list[int]]
) -> float:
    """Corpus-level WER: total edit distance over total reference length."""
    if len(hypotheses) != len(references):
        raise ValueError("hypothesis / reference count mismatch")
    total_err = sum(edit_distance(h, r) for h, r in zip(hypotheses, references))
    total_ref = sum(len(r) for r in references)
    if total_ref == 0:
        raise ValueError("empty reference corpus")
    return total_err / total_ref


def token_accuracy(
    hypotheses: list[list[int]], references: list[list[int]]
) -> float:
    """100 * (1 - WER), clipped at 0 — the higher-is-better quality metric."""
    return max(0.0, (1.0 - word_error_rate(hypotheses, references))) * 100.0
