"""Peak signal-to-noise ratio (the super-resolution quality metric)."""

from __future__ import annotations

import numpy as np

__all__ = ["psnr", "mean_psnr"]


def psnr(prediction: np.ndarray, target: np.ndarray, peak: float = 255.0) -> float:
    """PSNR in dB between two images on a [0, peak] scale."""
    prediction = np.asarray(prediction, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if prediction.shape != target.shape:
        raise ValueError(f"shape mismatch: {prediction.shape} vs {target.shape}")
    mse = np.mean((prediction - target) ** 2)
    if mse == 0:
        return float("inf")
    return float(10.0 * np.log10(peak * peak / mse))


def mean_psnr(predictions: list[np.ndarray], targets: list[np.ndarray],
              peak: float = 255.0) -> float:
    """Dataset-level mean PSNR (infinite per-image values are clipped)."""
    if len(predictions) != len(targets):
        raise ValueError("prediction / target count mismatch")
    if not predictions:
        raise ValueError("empty evaluation set")
    values = [min(psnr(p, t, peak), 100.0) for p, t in zip(predictions, targets)]
    return float(np.mean(values))
