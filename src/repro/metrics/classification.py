"""Top-1 / Top-K accuracy (ImageNet task quality metric)."""

from __future__ import annotations

import numpy as np

__all__ = ["top1_accuracy", "topk_accuracy"]


def top1_accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of samples whose argmax prediction matches the label.

    ``predictions``: (N,) predicted class ids or (N, C) scores.
    """
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=-1)
    if predictions.shape != labels.shape:
        raise ValueError(f"shape mismatch: {predictions.shape} vs {labels.shape}")
    if len(labels) == 0:
        raise ValueError("empty evaluation set")
    return float((predictions == labels).mean())


def topk_accuracy(scores: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose label is within the top-k scores."""
    scores = np.asarray(scores)
    labels = np.asarray(labels)
    if scores.ndim != 2:
        raise ValueError("topk_accuracy requires (N, C) scores")
    k = min(k, scores.shape[1])
    topk = np.argpartition(-scores, k - 1, axis=1)[:, :k]
    return float((topk == labels[:, None]).any(axis=1).mean())
