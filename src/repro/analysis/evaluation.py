"""Regeneration of the paper's evaluation artifacts (Figures 6-7, Tables 2-3).

Every function returns plain data structures (dicts/lists) so the benchmark
harness in ``benchmarks/`` can both print the paper-style rows and assert
the shape claims. Performance numbers come from the real LoadGen driving the
hardware simulator under (reduced) run rules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backends.vendors import create_backend, default_backend_for
from ..graph.converter import export_mobile
from ..graph.graph import Graph
from ..hardware.device import SimulatedDevice
from ..hardware.soc import GENERATION_PAIRS, SOC_CATALOG, get_soc
from ..loadgen.qsl import QuerySampleLibrary
from ..loadgen.scenarios import LoadGenerator, Mode, Scenario, TestSettings
from ..loadgen.sut import PerformanceSUT
from ..datasets.base import IndexDataset
from ..models.zoo import create_full_model
from ..core.tasks import TASK_ORDER, get_task

__all__ = [
    "PERF_SETTINGS",
    "ai_tax_breakdown",
    "developer_options_comparison",
    "full_graph_cache",
    "measure_single_stream",
    "measure_offline",
    "figure6_generational_speedups",
    "figure7_single_stream",
    "table2_configurations",
    "table3_delegate_comparison",
]

# reduced-but-real run rules for analysis: same LoadGen code path, less load
PERF_SETTINGS = TestSettings(
    scenario=Scenario.SINGLE_STREAM, mode=Mode.PERFORMANCE,
    min_query_count=256, min_duration_s=2.0,
)

_GRAPH_CACHE: dict[str, Graph] = {}


def full_graph_cache(model_name: str) -> Graph:
    if model_name not in _GRAPH_CACHE:
        _GRAPH_CACHE[model_name] = export_mobile(create_full_model(model_name).graph)
    return _GRAPH_CACHE[model_name]


def _model_for(task: str, version: str) -> str:
    model = get_task(task).models[version]
    assert model is not None
    return model


def measure_single_stream(
    soc_name: str,
    task: str,
    backend_name: str | None = None,
    version: str | None = None,
    settings: TestSettings = PERF_SETTINGS,
) -> dict:
    """p90 latency / throughput for one (SoC, backend, task) combination."""
    soc = get_soc(soc_name)
    version = version or soc.benchmark_version
    backend = create_backend(backend_name, soc) if backend_name else default_backend_for(soc)
    graph = full_graph_cache(_model_for(task, version))
    compiled = backend.compile_single_stream(graph, task)
    device = SimulatedDevice(soc)
    sut = PerformanceSUT(device, compiled)
    log = LoadGenerator(settings).run(
        sut, QuerySampleLibrary(IndexDataset()), task=task, model_name=graph.name
    )
    return {
        "soc": soc_name,
        "backend": backend.name,
        "task": task,
        "latency_p90_ms": log.percentile_latency(settings.latency_percentile) * 1e3,
        "latency_mean_ms": float(log.latencies().mean()) * 1e3,
        "throughput_fps": log.throughput_fps(),
        "config": backend.describe(task),
        "segments": len(compiled.segments),
        "energy_per_query_mj": device.total_energy_joules / log.query_count * 1e3,
    }


def measure_offline(
    soc_name: str,
    task: str = "image_classification",
    backend_name: str | None = None,
    version: str | None = None,
    sample_count: int = 24576,
) -> dict:
    """Offline (batched, ALP) throughput for one combination."""
    soc = get_soc(soc_name)
    version = version or soc.benchmark_version
    backend = create_backend(backend_name, soc) if backend_name else default_backend_for(soc)
    graph = full_graph_cache(_model_for(task, version))
    compiled = backend.compile_single_stream(graph, task)
    pipelines = backend.compile_offline(graph, task)
    sut = PerformanceSUT(SimulatedDevice(soc), compiled, pipelines)
    result = sut.run_offline(sample_count)
    return {
        "soc": soc_name,
        "backend": backend.name,
        "task": task,
        "offline_fps": result.throughput_fps,
        "config": backend.describe(task, scenario="offline"),
        "pipelines": len(pipelines),
        "steady_clock_scale": result.steady_clock_scale,
    }


def figure6_generational_speedups(
    settings: TestSettings = PERF_SETTINGS,
) -> dict[str, dict[str, float]]:
    """Per-vendor per-task v0.7 -> v1.0 latency speedups (Figure 6)."""
    speedups: dict[str, dict[str, float]] = {}
    for vendor, (old_soc, new_soc) in GENERATION_PAIRS.items():
        speedups[vendor] = {}
        for task in TASK_ORDER:
            old = measure_single_stream(old_soc, task, settings=settings)
            new = measure_single_stream(new_soc, task, settings=settings)
            speedups[vendor][task] = old["latency_p90_ms"] / new["latency_p90_ms"]
    return speedups


def figure7_single_stream(
    version: str = "v0.7",
    settings: TestSettings = PERF_SETTINGS,
) -> dict[str, dict[str, dict]]:
    """Per-smartphone-chipset single-stream results (Figure 7 panels)."""
    socs = [
        name for name, soc in SOC_CATALOG.items()
        if soc.benchmark_version == version and soc.form_factor == "smartphone"
    ]
    out: dict[str, dict[str, dict]] = {}
    for soc_name in socs:
        out[soc_name] = {
            task: measure_single_stream(soc_name, task, settings=settings)
            for task in TASK_ORDER
        }
    return out


def table2_configurations(version: str = "v0.7") -> dict[str, dict[str, str]]:
    """The Table-2 grid: execution config strings per SoC per task."""
    grid: dict[str, dict[str, str]] = {}
    for soc_name, soc in SOC_CATALOG.items():
        if soc.benchmark_version != version:
            continue
        backend = default_backend_for(soc)
        row = {task: backend.describe(task) for task in TASK_ORDER}
        row["image_classification_offline"] = backend.describe(
            "image_classification", scenario="offline"
        )
        grid[soc_name] = row
    return grid


def table3_delegate_comparison(
    soc_name: str = "dimensity_1100",
    settings: TestSettings = PERF_SETTINGS,
) -> dict[str, dict[str, float]]:
    """NNAPI vs Neuron delegate latencies on the vision tasks (Table 3)."""
    tasks = ["image_classification", "object_detection", "semantic_segmentation"]
    out: dict[str, dict[str, float]] = {}
    for backend_name in ("nnapi", "neuron"):
        out[backend_name] = {
            task: measure_single_stream(
                soc_name, task, backend_name=backend_name, settings=settings
            )["latency_p90_ms"]
            for task in tasks
        }
    out["improvement_pct"] = {
        task: (out["nnapi"][task] / out["neuron"][task] - 1.0) * 100.0 for task in tasks
    }
    return out


def developer_options_comparison(
    soc_name: str = "dimensity_1100",
    task: str = "image_classification",
    settings: TestSettings = PERF_SETTINGS,
) -> dict[str, dict]:
    """The three app-development paths of paper Figure 2.

    (a) vendor SDK per SoC — fastest, one app variant per vendor;
    (b) native framework API (NNAPI) — portable, driver-quality dependent;
    (c) model bound to the hardware — no runtime at all (zero framework
        overhead) but zero portability.
    """
    from ..hardware.scheduler import FrameworkProfile

    soc = get_soc(soc_name)
    graph = full_graph_cache(_model_for(task, soc.benchmark_version))
    vendor = default_backend_for(soc)
    nnapi = create_backend("nnapi" if soc.vendor == "mediatek" else "tflite", soc)

    rows: dict[str, dict] = {}
    for label, compiled in (
        ("(a) vendor SDK", vendor.compile_single_stream(graph, task)),
        ("(b) NNAPI / framework", nnapi.compile_single_stream(graph, task)),
    ):
        device = SimulatedDevice(soc)
        log = LoadGenerator(settings).run(
            PerformanceSUT(device, compiled), QuerySampleLibrary(IndexDataset()),
            task=task, model_name=graph.name,
        )
        rows[label] = {
            "latency_p90_ms": log.percentile_latency() * 1e3,
            "portable": label.startswith("(b)"),
        }
    # (c): compile the model directly against the hardware — no runtime layer
    cfg = vendor.task_execution(task)
    from ..hardware.scheduler import compile_model as _compile

    baked = _compile(
        graph, soc, primary=cfg.primary, secondary=cfg.secondary,
        numerics=cfg.numerics, framework=FrameworkProfile("hardware-bound"),
    )
    device = SimulatedDevice(soc)
    log = LoadGenerator(settings).run(
        PerformanceSUT(device, baked), QuerySampleLibrary(IndexDataset()),
        task=task, model_name=graph.name,
    )
    rows["(c) hardware-bound"] = {
        "latency_p90_ms": log.percentile_latency() * 1e3,
        "portable": False,
    }
    return rows


def ai_tax_breakdown(
    soc_name: str,
    task: str,
    backend_name: str | None = None,
    version: str | None = None,
) -> dict:
    """End-to-end vs core-inference latency (App. E, Buch et al.'s AI tax).

    Returns the benchmark's timed latency, the end-to-end latency with
    pre-processing included, and the tax as a percentage of end-to-end time.
    """
    soc = get_soc(soc_name)
    version = version or soc.benchmark_version
    backend = create_backend(backend_name, soc) if backend_name else default_backend_for(soc)
    graph = full_graph_cache(_model_for(task, version))
    core = backend.compile_single_stream(graph, task)
    e2e = backend.compile_single_stream(graph, task, end_to_end=True)
    core_ms = core.latency_seconds() * 1e3
    e2e_ms = e2e.latency_seconds() * 1e3
    return {
        "soc": soc_name,
        "task": task,
        "core_ms": core_ms,
        "end_to_end_ms": e2e_ms,
        "ai_tax_pct": (e2e_ms - core_ms) / e2e_ms * 100.0,
    }
