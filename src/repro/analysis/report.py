"""Live regeneration of the whole evaluation section as one report.

``evaluation_report()`` reruns Figures 6-7 and Tables 2-3 on the simulator
and renders them (with terminal bar charts) the way the paper's §7 presents
them — the `mlperf-mobile report` command. Useful as the one-shot "show me
everything" entry point and as the source for EXPERIMENTS.md refreshes.
"""

from __future__ import annotations

import numpy as np

from ..core.tasks import TASK_ORDER
from ..loadgen.scenarios import TestSettings
from .charts import bar_chart, grouped_bar_chart
from .evaluation import (
    PERF_SETTINGS,
    figure6_generational_speedups,
    figure7_single_stream,
    measure_offline,
    table2_configurations,
    table3_delegate_comparison,
)
from .related_work import REQUIREMENTS, table4_grid

__all__ = ["evaluation_report"]

_SHORT = {
    "image_classification": "cls",
    "object_detection": "det",
    "semantic_segmentation": "seg",
    "question_answering": "nlp",
}


def evaluation_report(settings: TestSettings = PERF_SETTINGS) -> str:
    """Render the full §7 evaluation from live simulator runs."""
    parts: list[str] = []

    # Figure 6
    speedups = figure6_generational_speedups(settings=settings)
    flat = [s for row in speedups.values() for s in row.values()]
    parts.append("=" * 72)
    parts.append("Figure 6 — v0.7 -> v1.0 latency speedups "
                 f"(mean {np.mean(flat):.2f}x, max {max(flat):.2f}x)")
    parts.append(grouped_bar_chart(
        {vendor: {_SHORT[t]: v for t, v in row.items()}
         for vendor, row in speedups.items()},
        unit="x",
    ))

    # Figure 7
    panel = figure7_single_stream("v0.7", settings=settings)
    parts.append("=" * 72)
    parts.append("Figure 7 — v0.7 single-stream throughput (fps, higher is better)")
    parts.append(grouped_bar_chart(
        {
            _SHORT[task]: {
                soc: panel[soc][task]["throughput_fps"] for soc in panel
            }
            for task in TASK_ORDER
        },
    ))

    # Table 2
    parts.append("=" * 72)
    parts.append("Table 2 — execution configurations (v0.7) + offline ALP")
    grid = table2_configurations("v0.7")
    for soc, row in grid.items():
        parts.append(f"{soc}:")
        for task in TASK_ORDER:
            parts.append(f"   {task:<26} {row[task]}")
        parts.append(f"   {'offline classification':<26} "
                     f"{row['image_classification_offline']}")
    offline = {
        soc: measure_offline(soc)["offline_fps"]
        for soc in ("exynos_990", "snapdragon_865plus")
    }
    parts.append(bar_chart(offline, unit=" fps",
                           title="offline classification throughput:"))

    # Table 3
    t3 = table3_delegate_comparison(settings=settings)
    parts.append("=" * 72)
    parts.append("Table 3 — Dimensity 1100: NNAPI vs Neuron delegate (p90 ms)")
    for task in ("image_classification", "object_detection", "semantic_segmentation"):
        parts.append(
            f"   {task:<26} NNAPI {t3['nnapi'][task]:6.2f}  "
            f"Neuron {t3['neuron'][task]:6.2f}  "
            f"(+{t3['improvement_pct'][task]:.2f}%)"
        )

    # Table 4
    parts.append("=" * 72)
    parts.append("Table 4 — requirements met (computed for MLPerf Mobile)")
    grid4 = table4_grid()
    header = "".join(f"  R{r}" for r in sorted(REQUIREMENTS))
    parts.append(f"   {'benchmark':<16}{header}")
    for name, row in grid4.items():
        cells = "".join("   ✓" if row[r] else "   ✗" for r in sorted(REQUIREMENTS))
        parts.append(f"   {name:<16}{cells}")

    return "\n".join(parts)
