"""Terminal chart rendering for the regenerated figures.

The paper's Figures 6-7 are bar charts; a headless benchmark can still show
their shape. Pure-text, deterministic width, no plotting dependencies.
"""

from __future__ import annotations

__all__ = ["bar_chart", "grouped_bar_chart"]


def bar_chart(
    values: dict[str, float],
    *,
    width: int = 48,
    unit: str = "",
    title: str | None = None,
) -> str:
    """Horizontal bar chart; bars scale to the maximum value."""
    if not values:
        raise ValueError("nothing to chart")
    peak = max(values.values())
    if peak <= 0:
        raise ValueError("bar values must be positive")
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for key, value in values.items():
        bar = "█" * max(1, round(value / peak * width))
        lines.append(f"{key:<{label_w}} {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: dict[str, dict[str, float]],
    *,
    width: int = 40,
    unit: str = "",
    title: str | None = None,
) -> str:
    """One bar block per group (e.g. per task), series within the group."""
    if not groups:
        raise ValueError("nothing to chart")
    peak = max(v for series in groups.values() for v in series.values())
    if peak <= 0:
        raise ValueError("bar values must be positive")
    label_w = max(len(k) for series in groups.values() for k in series)
    lines = [title] if title else []
    for group, series in groups.items():
        lines.append(f"{group}:")
        for key, value in series.items():
            bar = "█" * max(1, round(value / peak * width))
            lines.append(f"  {key:<{label_w}} {bar} {value:.2f}{unit}")
    return "\n".join(lines)
