"""Table 4: the requirement grid versus prior mobile AI benchmarks.

The five requirements of §8, and which prior benchmark meets which, as the
paper reports. ``mlperf_feature_selfcheck`` verifies that *this repository*
actually implements each requirement it claims — the grid row for MLPerf
Mobile is computed, not hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["REQUIREMENTS", "PRIOR_BENCHMARKS", "mlperf_feature_selfcheck", "table4_grid"]

REQUIREMENTS = {
    1: "system-level ML benchmark",
    2: "accuracy first: performance at a minimum quality target",
    3: "open source with auditable submissions",
    4: "supports vendor backends/SDKs plus NNAPI/TFLite delegates",
    5: "driven and audited by the industry",
}

# rows transcribed from Table 4 (True = requirement met)
PRIOR_BENCHMARKS: dict[str, dict[int, bool]] = {
    "Aitutu": {1: True, 2: False, 3: False, 4: True, 5: False},
    "AI-Benchmark": {1: True, 2: False, 3: False, 4: False, 5: False},
    "AIMark": {1: True, 2: False, 3: False, 4: True, 5: False},
    "Android MLTS": {1: False, 2: False, 3: True, 4: True, 5: False},
    "GeekBenchML": {1: True, 2: False, 3: False, 4: False, 5: False},
    "Neural Scope": {1: True, 2: False, 3: False, 4: False, 5: False},
    "TF Lite": {1: False, 2: False, 3: True, 4: True, 5: False},
    "UL Procyon AI": {1: True, 2: False, 3: False, 4: False, 5: False},
    "Xiaomi": {1: True, 2: False, 3: True, 4: False, 5: False},
}


def mlperf_feature_selfcheck() -> dict[int, bool]:
    """Prove each claimed requirement exists in this codebase."""
    checks: dict[int, bool] = {}

    # req 1: end-to-end system benchmark — harness drives full pre/infer/post
    from ..core.harness import BenchmarkHarness
    from ..backends.base import POSTPROCESS_CPU_OPS
    checks[1] = callable(getattr(BenchmarkHarness, "run_suite", None)) and bool(
        POSTPROCESS_CPU_OPS
    )

    # req 2: accuracy-first — the published rounds gate at >=93% of FP32
    # (experimental App. E tasks may pilot softer ratios)
    from ..core.tasks import TASKS
    checks[2] = all(
        ratio >= 0.93
        for spec in TASKS.values()
        for version, ratio in spec.quality_ratio.items()
        if version in ("v0.7", "v1.0")
    )

    # req 3: open source + auditable — submission checker and audit exist
    from ..core.submission import check_submission
    from ..core.audit import audit_submission
    checks[3] = callable(check_submission) and callable(audit_submission)

    # req 4: vendor backends AND generic delegates
    from ..backends.vendors import BACKEND_FACTORIES
    vendor_backends = {"enn", "snpe", "neuron", "openvino"}
    generic = {"nnapi", "tflite"}
    checks[4] = vendor_backends <= set(BACKEND_FACTORIES) and generic <= set(
        BACKEND_FACTORIES
    )

    # req 5: industry driven/audited — the audit reproduces results within 5%
    from ..core.rules import DEFAULT_RULES
    checks[5] = DEFAULT_RULES.audit_tolerance == 0.05

    return checks


def table4_grid() -> dict[str, dict[int, bool]]:
    grid = dict(PRIOR_BENCHMARKS)
    grid["MLPerf Mobile"] = mlperf_feature_selfcheck()
    return grid
