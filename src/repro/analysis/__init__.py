"""Evaluation-artifact regeneration: the paper's figures and tables as code."""

from .evaluation import (
    PERF_SETTINGS,
    ai_tax_breakdown,
    developer_options_comparison,
    figure6_generational_speedups,
    figure7_single_stream,
    full_graph_cache,
    measure_offline,
    measure_single_stream,
    table2_configurations,
    table3_delegate_comparison,
)
from .charts import bar_chart, grouped_bar_chart
from .report import evaluation_report
from .related_work import (
    PRIOR_BENCHMARKS,
    REQUIREMENTS,
    mlperf_feature_selfcheck,
    table4_grid,
)

__all__ = [
    "PERF_SETTINGS",
    "ai_tax_breakdown",
    "developer_options_comparison",
    "measure_single_stream",
    "measure_offline",
    "full_graph_cache",
    "figure6_generational_speedups",
    "figure7_single_stream",
    "table2_configurations",
    "table3_delegate_comparison",
    "REQUIREMENTS",
    "PRIOR_BENCHMARKS",
    "mlperf_feature_selfcheck",
    "table4_grid",
    "bar_chart",
    "grouped_bar_chart",
    "evaluation_report",
]
