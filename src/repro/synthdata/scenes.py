"""Class-structured synthetic scenes with exact ground truth.

These generators produce the *content* the benchmark's data sets stand in
for: classification images drawn from per-class prototypes, detection scenes
containing textured rectangular objects at known boxes, segmentation scenes
with region maps, and SQuAD-style token sequences. Reference-model heads are
fitted against training draws from these generators (models/fitting.py), so
quality metrics measure genuine signal recovery — and quantization error
genuinely costs accuracy near decision boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels.pooling import resize_bilinear

__all__ = [
    "smooth_field",
    "class_prototypes",
    "classification_scene_batch",
    "DetectionObject",
    "detection_scene_batch",
    "segmentation_scene_batch",
    "token_sequence_batch",
    "speech_sequence_batch",
    "super_resolution_batch",
]


def smooth_field(rng: np.random.Generator, n: int, h: int, w: int,
                 channels: int = 3, smoothness: int = 4) -> np.ndarray:
    """Low-frequency random fields, the texture basis of every scene."""
    bh, bw = max(2, h // smoothness), max(2, w // smoothness)
    low = rng.normal(0.0, 1.0, size=(n, bh, bw, channels)).astype(np.float32)
    return resize_bilinear(low, h, w)


def class_prototypes(num_classes: int, h: int, w: int, seed: int,
                     channels: int = 3, components: int = 4,
                     texture_scale: float = 0.45, color_scale: float = 1.0,
                     freq_range: tuple[float, float] = (4.0, 20.0)) -> np.ndarray:
    """One fixed *textural* prototype per class: (K, h, w, C).

    Each class is a sum of oriented sinusoidal gratings with class-specific
    frequencies, phases and color directions. Texture (not spatial layout)
    carries class identity because convolutional features — especially after
    global pooling — are statistics of local structure; two classes that
    differ only in where things are would be indistinguishable to them.
    """
    rng = np.random.default_rng(seed)
    ys = np.linspace(0.0, 1.0, h, dtype=np.float32)[:, None]
    xs = np.linspace(0.0, 1.0, w, dtype=np.float32)[None, :]
    casts = _separated_colors(num_classes, channels, rng)
    protos = np.zeros((num_classes, h, w, channels), dtype=np.float32)
    for c in range(num_classes):
        for _ in range(components):
            # mid-to-high frequencies: the texture period must fit inside a
            # small receptive field so *local* features can identify the class
            # (dense-prediction heads never see global context)
            fy, fx = rng.uniform(*freq_range, size=2)
            phase = rng.uniform(0.0, 2 * np.pi)
            color = rng.normal(0.0, 1.0, channels).astype(np.float32)
            wave = np.sin(2 * np.pi * (fy * ys + fx * xs) + phase)
            protos[c] += wave[..., None] * color
        protos[c] *= texture_scale / max(protos[c].std(), 1e-6)
        # class-specific color cast: a zeroth-order local cue. Dense tasks
        # use color-dominant prototypes (single pixels carry identity);
        # classification uses texture-dominant ones (identity lives in the
        # statistics that survive global pooling).
        protos[c] += casts[c] * color_scale
    return protos


def _separated_colors(k: int, channels: int, rng: np.random.Generator) -> np.ndarray:
    """Greedy farthest-point sampling of k well-separated color casts.

    Random color means collide badly in 3-D color space; max-min-distance
    casts keep the scene's own Bayes error low so model accuracy is limited
    by the model, not by an unwinnable generator.
    """
    candidates = rng.uniform(-1.3, 1.3, size=(max(64, 8 * k), channels)).astype(np.float32)
    chosen = [candidates[0]]
    for _ in range(k - 1):
        d = np.min(
            np.linalg.norm(candidates[:, None] - np.asarray(chosen)[None], axis=-1), axis=1
        )
        chosen.append(candidates[int(d.argmax())])
    return np.asarray(chosen, dtype=np.float32)


def _to_uint8(field: np.ndarray) -> np.ndarray:
    """Fixed affine mapping to pixel space.

    Deliberately *not* per-image min/max normalization: a fixed mapping keeps
    every class's color/texture signature at a stable pixel magnitude, the way
    real photographs keep object appearance independent of scene composition.
    """
    return np.clip(field * 48.0 + 128.0, 0.0, 255.0).astype(np.uint8)


def classification_scene_batch(
    n: int,
    size: int,
    num_classes: int,
    seed: int,
    *,
    signal: float = 1.0,
    noise: float = 1.0,
    prototype_seed: int = 9000,
) -> tuple[np.ndarray, np.ndarray]:
    """(images uint8 (n, size, size, 3), labels (n,)).

    image = signal * prototype[label] + noise * fresh smooth field; the
    signal/noise ratio controls achievable Top-1, tuned so FP32 lands near
    the paper's 76.19% reference point.
    """
    rng = np.random.default_rng(seed)
    # lower-frequency, texture-dominant prototypes: global pooling keeps
    # coarse texture statistics, and the stem's stride-2 aliases fine detail
    protos = class_prototypes(
        num_classes, size, size, prototype_seed,
        texture_scale=1.0, color_scale=0.5, freq_range=(2.0, 10.0),
    )
    labels = rng.integers(0, num_classes, size=n)
    fields = signal * protos[labels] + noise * smooth_field(rng, n, size, size)
    fields += rng.normal(0, 0.15, size=fields.shape).astype(np.float32)
    return _to_uint8(fields), labels.astype(np.int64)


@dataclass(frozen=True)
class DetectionObject:
    """Ground-truth object in normalized (ymin, xmin, ymax, xmax) coords."""

    box: tuple[float, float, float, float]
    class_id: int


def detection_scene_batch(
    n: int,
    size: int,
    num_classes: int,
    seed: int,
    *,
    max_objects: int = 3,
    scales: tuple[float, ...] = (0.22, 0.33, 0.57, 0.9),
    aspect_ratios: tuple[float, ...] = (1.0,),
    shape_jitter: float = 0.05,
    signal: float = 2.0,
    prototype_seed: int = 9100,
) -> tuple[np.ndarray, list[list[DetectionObject]]]:
    """Scenes of textured rectangles. Class ids run 1..num_classes-1 (0 = bg).

    Object shapes are sampled near the benchmark's anchor scales/aspects
    (with multiplicative ``shape_jitter``) — mirroring how SSD anchor
    configurations are designed to cover their dataset's box statistics.
    """
    rng = np.random.default_rng(seed)
    protos = class_prototypes(num_classes, size, size, prototype_seed)
    images = smooth_field(rng, n, size, size)
    truths: list[list[DetectionObject]] = []
    ys, xs = np.mgrid[0:size, 0:size]
    for i in range(n):
        objects: list[DetectionObject] = []
        for _ in range(int(rng.integers(1, max_objects + 1))):
            scale = rng.choice(scales) * rng.uniform(1 - shape_jitter, 1 + shape_jitter)
            ar = rng.choice(aspect_ratios) * rng.uniform(1 - shape_jitter, 1 + shape_jitter)
            h = min(scale / np.sqrt(ar), 0.95)
            w = min(scale * np.sqrt(ar), 0.95)
            cy = rng.uniform(h / 2, 1 - h / 2)
            cx = rng.uniform(w / 2, 1 - w / 2)
            c = int(rng.integers(1, num_classes))
            y0, y1 = int((cy - h / 2) * size), int((cy + h / 2) * size)
            x0, x1 = int((cx - w / 2) * size), int((cx + w / 2) * size)
            mask = (ys >= y0) & (ys < y1) & (xs >= x0) & (xs < x1)
            images[i][mask] = images[i][mask] * 0.3 + signal * protos[c][mask]
            objects.append(DetectionObject((cy - h / 2, cx - w / 2, cy + h / 2, cx + w / 2), c))
        truths.append(objects)
    images += rng.normal(0, 0.15, size=images.shape).astype(np.float32)
    return _to_uint8(images), truths


def segmentation_scene_batch(
    n: int,
    size: int,
    num_classes: int,
    seed: int,
    *,
    regions: int = 3,
    other_prob: float = 0.12,
    signal: float = 2.5,
    prototype_seed: int = 9200,
) -> tuple[np.ndarray, np.ndarray]:
    """Voronoi-region scenes. Returns (images uint8, label maps (n, size, size)).

    The last class index is the "other" bucket the 32-class metric ignores.
    """
    rng = np.random.default_rng(seed)
    protos = class_prototypes(num_classes, size, size, prototype_seed)
    images = smooth_field(rng, n, size, size)
    labels = np.empty((n, size, size), dtype=np.int32)
    ys, xs = np.mgrid[0:size, 0:size]
    for i in range(n):
        centers = rng.uniform(0, size, size=(regions, 2))
        d2 = (ys[..., None] - centers[:, 0]) ** 2 + (xs[..., None] - centers[:, 1]) ** 2
        region_of_pixel = d2.argmin(axis=-1)
        region_classes = rng.integers(0, num_classes - 1, size=regions)
        is_other = rng.random(regions) < other_prob
        region_classes[is_other] = num_classes - 1
        label = region_classes[region_of_pixel]
        labels[i] = label
        images[i] = images[i] * 0.4 + signal * np.take_along_axis(
            protos, label[None, ..., None], axis=0
        )[0]
    images += rng.normal(0, 0.15, size=images.shape).astype(np.float32)
    return _to_uint8(images), labels


def token_sequence_batch(
    n: int,
    seq_len: int,
    vocab_size: int,
    seed: int,
    *,
    cls_id: int = 1,
    sep_id: int = 2,
    min_question: int = 6,
    max_question: int = 14,
    reserved: int = 10,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """SQuAD-style sequences: [CLS] question [SEP] passage [SEP].

    Returns (ids (n, seq_len) float32, mask (n, seq_len), context_start (n,)).
    """
    rng = np.random.default_rng(seed)
    ids = np.zeros((n, seq_len), dtype=np.float32)
    mask = np.zeros((n, seq_len), dtype=np.float32)
    context_start = np.zeros(n, dtype=np.int64)
    for i in range(n):
        q_len = int(rng.integers(min_question, max_question + 1))
        total = int(rng.integers(seq_len * 3 // 4, seq_len + 1))
        seq = np.full(total, sep_id, dtype=np.float32)
        seq[0] = cls_id
        seq[1 : 1 + q_len] = rng.integers(reserved, vocab_size, q_len)
        passage_start = q_len + 2  # after [CLS] question [SEP]
        seq[1 + q_len] = sep_id
        seq[passage_start : total - 1] = rng.integers(reserved, vocab_size, total - 1 - passage_start)
        ids[i, :total] = seq
        mask[i, :total] = 1.0
        context_start[i] = passage_start
    return ids, mask, context_start


def speech_sequence_batch(
    n: int,
    num_frames: int,
    feature_dim: int,
    vocab_size: int,
    seed: int,
    *,
    min_tokens: int = 4,
    max_tokens: int = 9,
    noise: float = 0.3,
    prototype_seed: int = 9300,
) -> tuple[np.ndarray, list[list[int]], np.ndarray]:
    """Synthetic streaming-speech features (paper App. E speech task).

    Each utterance is a sequence of tokens; every token occupies a random
    span of frames rendered as that token's feature-space prototype plus
    noise. Adjacent tokens are always distinct (so CTC-style collapse is
    unambiguous). Returns (features (n, T, F), token transcripts, per-frame
    labels (n, T) with the frame's token id).
    """
    rng = np.random.default_rng(seed)
    proto_rng = np.random.default_rng(prototype_seed)
    prototypes = proto_rng.normal(0.0, 1.0, size=(vocab_size, feature_dim)).astype(np.float32)
    feats = np.empty((n, num_frames, feature_dim), dtype=np.float32)
    frame_labels = np.empty((n, num_frames), dtype=np.int64)
    transcripts: list[list[int]] = []
    for i in range(n):
        n_tokens = int(rng.integers(min_tokens, max_tokens + 1))
        tokens: list[int] = []
        for _ in range(n_tokens):
            t = int(rng.integers(0, vocab_size))
            while tokens and t == tokens[-1]:
                t = int(rng.integers(0, vocab_size))
            tokens.append(t)
        # random (positive) durations summing to num_frames
        cuts = np.sort(rng.choice(np.arange(1, num_frames), size=n_tokens - 1, replace=False))
        bounds = np.concatenate([[0], cuts, [num_frames]])
        for tok, lo, hi in zip(tokens, bounds[:-1], bounds[1:]):
            frame_labels[i, lo:hi] = tok
            feats[i, lo:hi] = prototypes[tok]
        transcripts.append(tokens)
    feats += rng.normal(0.0, noise, size=feats.shape).astype(np.float32)
    return feats, transcripts, frame_labels


def super_resolution_batch(
    n: int,
    hr_size: int,
    scale: int,
    seed: int,
    *,
    num_classes: int = 16,
    prototype_seed: int = 9400,
) -> tuple[np.ndarray, np.ndarray]:
    """(LR uint8 (n, hr/scale, hr/scale, 3), HR uint8 (n, hr, hr, 3)).

    HR images are textured scenes; LR inputs are their bilinear
    downsamples — the standard SR training construction.
    """
    rng = np.random.default_rng(seed)
    protos = class_prototypes(num_classes, hr_size, hr_size, prototype_seed)
    labels = rng.integers(0, num_classes, size=n)
    fields = protos[labels] + 0.6 * smooth_field(rng, n, hr_size, hr_size)
    hr = _to_uint8(fields)
    lr_f = resize_bilinear(hr.astype(np.float32), hr_size // scale, hr_size // scale)
    lr = np.clip(lr_f, 0, 255).astype(np.uint8)
    return lr, hr
