"""Class-structured synthetic scene generators (lowest data layer)."""

from .scenes import (
    DetectionObject,
    class_prototypes,
    classification_scene_batch,
    detection_scene_batch,
    segmentation_scene_batch,
    smooth_field,
    token_sequence_batch,
    speech_sequence_batch,
    super_resolution_batch,
)

__all__ = [
    "smooth_field",
    "class_prototypes",
    "classification_scene_batch",
    "DetectionObject",
    "detection_scene_batch",
    "segmentation_scene_batch",
    "token_sequence_batch",
    "speech_sequence_batch",
    "super_resolution_batch",
]
