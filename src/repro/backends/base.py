"""Backend abstraction (paper §5.2, Figure 5).

A backend is the layer submitters replace: it decides which accelerators a
task runs on, in which numeric format, under which runtime framework, and
whether offline mode may exercise accelerator-level parallelism (ALP). The
reference app ships a TFLite-CPU backend and a dummy; vendors plug in SNPE,
ENN, the Neuron delegate, NNAPI, or OpenVINO equivalents.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.graph import Graph
from ..hardware.scheduler import CompiledModel, FrameworkProfile, compile_model
from ..hardware.soc import SoCSpec
from ..kernels.numerics import Numerics

__all__ = ["TaskExecution", "BackendConfig", "Backend", "POSTPROCESS_CPU_OPS",
           "PREPROCESS_CPU_OPS"]

# CPU post-processing cost per sample (the "AI tax" of Buch et al.): ops for
# NMS, top-k, argmax and span search respectively.
POSTPROCESS_CPU_OPS: dict[str, float] = {
    "image_classification": 2e5,
    "object_detection": 2.5e8,
    "semantic_segmentation": 8.4e6,
    "question_answering": 5e5,
    "speech_recognition": 3e6,   # greedy CTC decode
    "super_resolution": 8e5,     # denormalize + clamp
}

# CPU pre-processing cost per sample. Vision preprocessing starts from a
# camera-resolution frame (a ~2 MP preview), not the network input: decode +
# resize + crop + normalize is ~10 ops/pixel over the SOURCE image, which is
# why Buch et al. find the AI tax non-negligible. Outside the timed region
# unless end-to-end mode is requested (paper App. E).
_CAMERA_PIXELS = 1920 * 1080 * 3
PREPROCESS_CPU_OPS: dict[str, float] = {
    "image_classification": _CAMERA_PIXELS * 10,
    "object_detection": _CAMERA_PIXELS * 10,
    "semantic_segmentation": _CAMERA_PIXELS * 10,
    "question_answering": 5e6,     # tokenization
    "speech_recognition": 2.5e7,   # log-mel filterbank extraction
    "super_resolution": _CAMERA_PIXELS * 4,
}


@dataclass(frozen=True)
class TaskExecution:
    """How one benchmark task executes under a backend."""

    numerics: Numerics
    single_stream: tuple[str, ...]  # [primary, optional secondary]
    offline: tuple[str, ...]  # pipelines run concurrently (ALP) in offline mode
    framework: FrameworkProfile | None = None  # override the backend default
    tops_derate: float = 1.0  # kernel-quality derate (e.g. missing int8 GEMM)

    @property
    def primary(self) -> str:
        return self.single_stream[0]

    @property
    def secondary(self) -> str | None:
        return self.single_stream[1] if len(self.single_stream) > 1 else None


@dataclass(frozen=True)
class BackendConfig:
    name: str
    display_name: str
    vendor: str | None  # None = vendor-neutral (reference/TFLite)
    framework: FrameworkProfile
    tasks: dict[str, TaskExecution] = field(default_factory=dict)


class Backend:
    """A backend bound to one SoC; compiles models for the perf simulator."""

    def __init__(self, config: BackendConfig, soc: SoCSpec):
        if config.vendor is not None and config.vendor != soc.vendor:
            raise ValueError(
                f"backend {config.name!r} targets {config.vendor} SoCs, got {soc.name}"
            )
        self.config = config
        self.soc = soc

    @property
    def name(self) -> str:
        return self.config.name

    def task_execution(self, task: str) -> TaskExecution:
        if task not in self.config.tasks:
            raise KeyError(f"backend {self.name!r} does not support task {task!r}")
        return self.config.tasks[task]

    def _framework_for(self, exec_cfg: TaskExecution) -> FrameworkProfile:
        base = exec_cfg.framework or self.config.framework
        if exec_cfg.tops_derate != 1.0:
            return FrameworkProfile(
                base.name, base.per_inference_ms, base.per_boundary_ms,
                base.tops_derate * exec_cfg.tops_derate,
            )
        return base

    def compile_single_stream(
        self, graph: Graph, task: str, *, end_to_end: bool = False
    ) -> CompiledModel:
        """``end_to_end=True`` adds pre-processing to the timed region
        (App. E "end-to-end performance"); the benchmark default excludes it."""
        cfg = self.task_execution(task)
        return compile_model(
            graph, self.soc,
            primary=cfg.primary,
            secondary=cfg.secondary,
            numerics=cfg.numerics,
            framework=self._framework_for(cfg),
            postprocess_cpu_ops=POSTPROCESS_CPU_OPS.get(task, 0.0),
            preprocess_cpu_ops=PREPROCESS_CPU_OPS.get(task, 0.0) if end_to_end else 0.0,
        )

    def compile_offline(self, graph: Graph, task: str) -> list[CompiledModel]:
        """One compiled pipeline per concurrently-used accelerator (ALP)."""
        cfg = self.task_execution(task)
        return [
            compile_model(
                graph, self.soc,
                primary=accel,
                numerics=cfg.numerics,
                framework=self._framework_for(cfg),
                postprocess_cpu_ops=POSTPROCESS_CPU_OPS.get(task, 0.0),
            )
            for accel in cfg.offline
        ]

    def describe(self, task: str, scenario: str = "single_stream") -> str:
        """The Table-2 cell: numerics, framework, accelerator(s)."""
        cfg = self.task_execution(task)
        accels = cfg.single_stream if scenario == "single_stream" else cfg.offline
        fw = (cfg.framework or self.config.framework).name
        return f"{cfg.numerics.value.upper()}, {fw}, {'+'.join(a.upper() for a in accels)}"
