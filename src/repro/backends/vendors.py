"""Concrete backend catalog: the code paths of Figure 5 / Table 2.

Each factory returns a :class:`BackendConfig` describing how that runtime
maps the four benchmark tasks onto an SoC's engines. Values mirror the
submissions in Table 2 and the framework behaviours of §7 (NNAPI HAL sync,
Neuron multi-MDLA support, ENN IP-block scheduling, OpenVINO device choice).
"""

from __future__ import annotations

from ..hardware.scheduler import FrameworkProfile
from ..hardware.soc import SoCSpec
from ..kernels.numerics import Numerics
from .base import Backend, BackendConfig, TaskExecution

__all__ = ["BACKEND_FACTORIES", "available_backends", "create_backend", "default_backend_for"]

INT8, UINT8, FP16, FP32 = Numerics.INT8, Numerics.UINT8, Numerics.FP16, Numerics.FP32

TFLITE = FrameworkProfile("TFLite", per_inference_ms=0.40, per_boundary_ms=0.05)
TFLITE_GPU = FrameworkProfile("TFLite delegate", per_inference_ms=0.25, per_boundary_ms=0.05)
# NNAPI's cost is a fixed HAL round-trip per inference plus a small extra
# sync per partition boundary — which is why the delegate gap in Table 3
# shrinks as models get bigger (10.1% -> 5.5% -> 2.7%)
NNAPI = FrameworkProfile("NNAPI", per_inference_ms=0.24, per_boundary_ms=0.04)
NEURON = FrameworkProfile("Neuron", per_inference_ms=0.05, per_boundary_ms=0.015)
ENN = FrameworkProfile("ENN", per_inference_ms=0.05, per_boundary_ms=0.02)
SNPE = FrameworkProfile("SNPE", per_inference_ms=0.06, per_boundary_ms=0.02)
OPENVINO = FrameworkProfile("OpenVINO", per_inference_ms=0.05, per_boundary_ms=0.02)
COREML = FrameworkProfile("Core ML", per_inference_ms=0.08, per_boundary_ms=0.03)


_ALL_TASKS = (
    "image_classification", "object_detection", "semantic_segmentation",
    "question_answering", "speech_recognition", "super_resolution",
)


def _experimental_tasks(vision_primary: str) -> dict[str, TaskExecution]:
    """App. E tasks: SR quantizes like vision; streaming ASR needs FP16 GPU
    (its LSTM recurrence is the classic activation-quantization failure)."""
    return {
        "speech_recognition": TaskExecution(FP16, ("gpu",), ("gpu",),
                                            framework=TFLITE_GPU),
        "super_resolution": TaskExecution(UINT8, (vision_primary,),
                                          (vision_primary,)),
    }


def _tflite_cpu(soc: SoCSpec) -> BackendConfig:
    """The poorly-optimized reference backend: FP32 on the CPU."""
    cpu = TaskExecution(FP32, ("cpu",), ("cpu",), framework=TFLITE)
    return BackendConfig(
        name="tflite", display_name="TFLite CPU (reference)", vendor=None,
        framework=TFLITE,
        tasks={t: cpu for t in _ALL_TASKS},
    )


def _nnapi(soc: SoCSpec) -> BackendConfig:
    """Generic NNAPI delegate: HAL sync overhead, incomplete multi-core use."""
    def vision() -> TaskExecution:
        return TaskExecution(UINT8, ("apu",), ("apu",))
    return BackendConfig(
        name="nnapi", display_name="NNAPI (neuron-ann)", vendor="mediatek",
        framework=NNAPI,
        tasks={
            "image_classification": vision(),
            "object_detection": vision(),
            "semantic_segmentation": TaskExecution(UINT8, ("apu", "gpu"), ("apu",)),
            "question_answering": TaskExecution(
                FP16, ("gpu",), ("gpu",), framework=TFLITE_GPU
            ),
            **_experimental_tasks("apu"),
        },
    )


def _neuron(soc: SoCSpec) -> BackendConfig:
    """MediaTek's vendor delegate: full multi-MDLA support, minimal sync."""
    return BackendConfig(
        name="neuron", display_name="Neuron Delegate", vendor="mediatek",
        framework=NEURON,
        tasks={
            "image_classification": TaskExecution(UINT8, ("apu",), ("apu", "gpu")),
            "object_detection": TaskExecution(UINT8, ("apu",), ("apu",)),
            "semantic_segmentation": TaskExecution(UINT8, ("apu", "gpu"), ("apu",)),
            "question_answering": TaskExecution(
                FP16, ("gpu",), ("gpu",), framework=TFLITE_GPU
            ),
            **_experimental_tasks("apu"),
        },
    )


def _enn(soc: SoCSpec) -> BackendConfig:
    """Samsung Exynos Neural Network SDK (Table 2 column 2)."""
    # the v0.7-era driver could not place concat on the NPU, adding IP-block
    # hops — half of the 12.7x segmentation story (the other half is the
    # 990's slow interconnect); both were fixed for the 2100 round
    framework = ENN if soc.benchmark_version != "v0.7" else FrameworkProfile(
        "ENN", per_inference_ms=0.05, per_boundary_ms=0.02,
        unsupported_ops=frozenset({"concat"}),
    )
    return BackendConfig(
        name="enn", display_name="ENN", vendor="samsung",
        framework=framework,
        tasks={
            # NPU+CPU in Table 2: CPU handles the float islands
            "image_classification": TaskExecution(INT8, ("npu",), ("npu", "cpu")),
            "object_detection": TaskExecution(INT8, ("npu",), ("npu",)),
            # NPU+GPU: resizes and other unsupported ops hop to the GPU —
            # on the 990 every hop pays the slow IP-block interconnect
            "semantic_segmentation": TaskExecution(INT8, ("npu", "gpu"), ("npu",)),
            "question_answering": TaskExecution(FP16, ("gpu",), ("gpu",)),
            **{k: (v if k != "speech_recognition" else TaskExecution(
                FP16, ("gpu",), ("gpu",)))
               for k, v in _experimental_tasks("npu").items()},
        },
    )


def _snpe(soc: SoCSpec) -> BackendConfig:
    """Qualcomm Snapdragon Neural Processing Engine."""
    return BackendConfig(
        name="snpe", display_name="SNPE", vendor="qualcomm",
        framework=SNPE,
        tasks={
            # offline: the AIP cluster = HTA + HVX running concurrently (ALP)
            "image_classification": TaskExecution(UINT8, ("hta",), ("hta", "hvx")),
            "object_detection": TaskExecution(UINT8, ("hta",), ("hta",)),
            "semantic_segmentation": TaskExecution(UINT8, ("hta", "gpu"), ("hta",)),
            "question_answering": TaskExecution(
                FP16, ("gpu",), ("gpu",), framework=TFLITE_GPU
            ),
            **_experimental_tasks("hta"),
        },
    )


def _openvino(soc: SoCSpec) -> BackendConfig:
    """Intel laptop backend: INT8 everywhere, CPU/iGPU split (paper §7.1)."""
    # v0.7 lacked the optimized quantized NLP kernel; v1.0 added it
    nlp_derate = 0.38 if soc.benchmark_version == "v0.7" else 1.0
    return BackendConfig(
        name="openvino", display_name="OpenVINO", vendor="intel",
        framework=OPENVINO,
        tasks={
            # small models cannot fill the iGPU at batch 1: CPU wins single-
            # stream; offline batches use CPU+GPU concurrently (ALP)
            "image_classification": TaskExecution(INT8, ("cpu",), ("cpu", "gpu")),
            "object_detection": TaskExecution(INT8, ("cpu",), ("cpu",)),
            "semantic_segmentation": TaskExecution(INT8, ("gpu",), ("gpu",)),
            "question_answering": TaskExecution(
                INT8, ("gpu",), ("gpu",), tops_derate=nlp_derate
            ),
            "speech_recognition": TaskExecution(FP16, ("gpu",), ("gpu",)),
            "super_resolution": TaskExecution(INT8, ("gpu",), ("gpu",)),
        },
    )


def _coreml(soc: SoCSpec) -> BackendConfig:
    """Apple's runtime (App. E iOS preview). The ANE handles FP16 natively,
    so even NLP stays on the fixed-function engine."""
    return BackendConfig(
        name="coreml", display_name="Core ML", vendor="apple",
        framework=COREML,
        tasks={
            "image_classification": TaskExecution(INT8, ("ane",), ("ane", "gpu")),
            "object_detection": TaskExecution(INT8, ("ane",), ("ane",)),
            "semantic_segmentation": TaskExecution(INT8, ("ane", "gpu"), ("ane",)),
            # the ANE lacks attention/LayerNorm support: a naive ANE+GPU
            # split fragments into dozens of segments, so Core ML schedules
            # transformers wholly on the GPU — same lesson as Insight 4
            "question_answering": TaskExecution(FP16, ("gpu",), ("gpu",)),
            "speech_recognition": TaskExecution(FP16, ("gpu",), ("gpu",)),
            "super_resolution": TaskExecution(INT8, ("ane",), ("ane",)),
        },
    )


def _dummy(soc: SoCSpec) -> BackendConfig:
    """The example placeholder submitters replace with their own SDK glue."""
    cpu = TaskExecution(FP32, ("cpu",), ("cpu",))
    return BackendConfig(
        name="dummy", display_name="Dummy (replace me)", vendor=None,
        framework=FrameworkProfile("dummy", per_inference_ms=1.0),
        tasks={t: cpu for t in _ALL_TASKS},
    )


BACKEND_FACTORIES = {
    "tflite": _tflite_cpu,
    "coreml": _coreml,
    "nnapi": _nnapi,
    "neuron": _neuron,
    "enn": _enn,
    "snpe": _snpe,
    "openvino": _openvino,
    "dummy": _dummy,
}

# the backend each vendor actually submitted with (Table 2)
_VENDOR_DEFAULTS = {
    "apple": "coreml",
    "samsung": "enn",
    "qualcomm": "snpe",
    "mediatek": {"v0.7": "nnapi", "v1.0": "neuron"},
    "intel": "openvino",
}


def available_backends() -> list[str]:
    return sorted(BACKEND_FACTORIES)


def create_backend(name: str, soc: SoCSpec) -> Backend:
    if name not in BACKEND_FACTORIES:
        raise KeyError(f"unknown backend {name!r}; available: {available_backends()}")
    return Backend(BACKEND_FACTORIES[name](soc), soc)


def default_backend_for(soc: SoCSpec) -> Backend:
    """The submission backend for this SoC's vendor and round."""
    choice = _VENDOR_DEFAULTS[soc.vendor]
    if isinstance(choice, dict):
        choice = choice[soc.benchmark_version]
    return create_backend(choice, soc)
