"""Backend layer: vendor SDKs, delegates and the reference TFLite backend."""

from .base import (
    POSTPROCESS_CPU_OPS,
    PREPROCESS_CPU_OPS,
    Backend,
    BackendConfig,
    TaskExecution,
)
from .vendors import (
    BACKEND_FACTORIES,
    available_backends,
    create_backend,
    default_backend_for,
)

__all__ = [
    "Backend",
    "BackendConfig",
    "TaskExecution",
    "POSTPROCESS_CPU_OPS",
    "PREPROCESS_CPU_OPS",
    "BACKEND_FACTORIES",
    "available_backends",
    "create_backend",
    "default_backend_for",
]
