"""Post-training bias correction — the "QAT-comparable" reference path.

The paper (§5.1) notes the working group additionally publishes QAT models
"mutually agreed to be comparable" to PTQ. We cannot retrain (and the rules
forbid submitters from doing so), so the improved reference model is produced
with post-training bias correction: the systematic per-channel mean shift the
quantized graph introduces at each conv/fc output is measured on the
calibration set and absorbed into the int32 bias. This is training-free and
uses only the approved calibration data, i.e. it stays inside the rules.
"""

from __future__ import annotations

import numpy as np

from ..graph.executor import Executor
from ..graph.graph import Graph
from ..graph.ops import Conv2D, DepthwiseConv2D, FullyConnected

__all__ = ["apply_bias_correction"]


def _collect_outputs(graph: Graph, batches: list[dict[str, np.ndarray]], tensors: list[str]):
    """Mean over samples of each tensor's per-channel average."""
    ex = Executor(graph)
    sums: dict[str, np.ndarray] = {}
    count = 0
    for feed in batches:
        env: dict[str, np.ndarray] = {}

        def hook(name: str, values: np.ndarray) -> None:
            env[name] = values

        if graph.numerics.is_quantized:
            # quantized graphs don't support observers; re-run per tensor via outputs
            raise AssertionError("use _collect_quantized instead")
        ex.run(feed, observer=hook)
        for t in tensors:
            arr = env[t].astype(np.float64)
            ch = arr.reshape(-1, arr.shape[-1]).mean(axis=0)
            sums[t] = sums.get(t, 0.0) + ch
        count += 1
    return {t: v / count for t, v in sums.items()}


def _collect_quantized(graph: Graph, batches: list[dict[str, np.ndarray]], tensors: list[str]):
    """Same as :func:`_collect_outputs` but executing the quantized graph."""
    from ..kernels.numerics import dequantize, quantize

    sums: dict[str, np.ndarray] = {}
    count = 0
    for feed in batches:
        env: dict[str, np.ndarray] = {}
        for spec in graph.inputs:
            arr = np.asarray(feed[spec.name])
            if spec.qparams is not None:
                arr = quantize(arr, spec.qparams)
            env[spec.name] = arr
        for op in graph.ops:
            ins = [env[t] for t in op.inputs]
            outs = op.execute_quantized(ins, graph)
            for t, arr in zip(op.outputs, outs):
                env[t] = arr
        for t in tensors:
            qp = graph.spec(t).qparams
            arr = dequantize(env[t], qp).astype(np.float64) if qp is not None else env[t]
            ch = arr.reshape(-1, arr.shape[-1]).mean(axis=0)
            sums[t] = sums.get(t, 0.0) + ch
        count += 1
    return {t: v / count for t, v in sums.items()}


def apply_bias_correction(
    quantized: Graph,
    reference_fp32: Graph,
    batches: list[dict[str, np.ndarray]],
) -> Graph:
    """Return a copy of ``quantized`` with per-channel bias error absorbed.

    For each conv/depthwise/fc with a bias, the FP32-vs-quantized mean output
    difference (per channel, over the calibration batches) is converted into
    the int32 bias domain and subtracted.
    """
    g = quantized.clone(f"{quantized.name}__biascorr")
    g.frozen = False
    targets = [
        op for op in g.ops
        if isinstance(op, (Conv2D, DepthwiseConv2D, FullyConnected)) and op.attrs.get("bias")
    ]
    tensor_names = [op.outputs[0] for op in targets]
    ref_means = _collect_outputs(reference_fp32, batches, tensor_names)
    q_means = _collect_quantized(g, batches, tensor_names)
    corrected = 0
    for op in targets:
        t = op.outputs[0]
        err = q_means[t] - ref_means[t]  # positive err => quantized overshoots
        b_name = op.attrs["bias"]
        bias_qp = g.param_qparams.get(b_name)
        if bias_qp is None:
            continue
        delta = np.round(err / bias_qp.scale).astype(np.int64)
        if np.any(delta != 0):
            g.params[b_name] = (g.params[b_name].astype(np.int64) - delta).astype(np.int32)
            corrected += 1
    g.metadata.setdefault("quantization", {})["bias_corrected_layers"] = corrected
    g.freeze()
    return g
