"""Rules-compliant model optimization: PTQ, FP16 conversion, bias correction."""

from .bias_correction import apply_bias_correction
from .cle import equalize_cross_layer
from .observers import (
    MinMaxObserver,
    MovingAverageObserver,
    PercentileObserver,
    make_observer,
)
from .ptq import (
    CalibrationResult,
    calibrate,
    convert_fp16,
    pack_calibration_batches,
    quantize_graph,
)

__all__ = [
    "CalibrationResult",
    "calibrate",
    "pack_calibration_batches",
    "quantize_graph",
    "convert_fp16",
    "apply_bias_correction",
    "equalize_cross_layer",
    "MinMaxObserver",
    "MovingAverageObserver",
    "PercentileObserver",
    "make_observer",
]
