"""Range observers used during post-training-quantization calibration.

The run rules (paper §5.1) only allow PTQ from an approved ~500-sample
calibration set. Observers accumulate activation statistics over that set;
the choice of observer (min-max vs percentile) is a real quality lever and
is exercised by the ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MinMaxObserver", "MovingAverageObserver", "PercentileObserver", "make_observer"]


class MinMaxObserver:
    """Tracks the global min/max ever seen. Sensitive to outliers."""

    def __init__(self) -> None:
        self.min_val = np.inf
        self.max_val = -np.inf
        self.count = 0

    def update(self, values: np.ndarray) -> None:
        if values.size == 0:
            return
        self.min_val = min(self.min_val, float(values.min()))
        self.max_val = max(self.max_val, float(values.max()))
        self.count += values.size

    def range(self) -> tuple[float, float]:
        if self.count == 0:
            raise RuntimeError("observer saw no data")
        return self.min_val, self.max_val


class MovingAverageObserver:
    """Exponential moving average of per-batch min/max (TF-style)."""

    def __init__(self, momentum: float = 0.9) -> None:
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self.min_val: float | None = None
        self.max_val: float | None = None
        self.count = 0

    def update(self, values: np.ndarray) -> None:
        if values.size == 0:
            return
        lo, hi = float(values.min()), float(values.max())
        if self.min_val is None:
            self.min_val, self.max_val = lo, hi
        else:
            m = self.momentum
            self.min_val = m * self.min_val + (1 - m) * lo
            self.max_val = m * self.max_val + (1 - m) * hi
        self.count += values.size

    def range(self) -> tuple[float, float]:
        if self.count == 0:
            raise RuntimeError("observer saw no data")
        return self.min_val, self.max_val


class PercentileObserver:
    """Clips the range to symmetric percentiles, discarding outliers.

    Keeps a reservoir sample so memory stays bounded over large calibration
    sets while the percentile estimate remains unbiased.
    """

    def __init__(self, percentile: float = 99.9, reservoir: int = 200_000, seed: int = 0) -> None:
        if not 50.0 < percentile <= 100.0:
            raise ValueError("percentile must be in (50, 100]")
        self.percentile = percentile
        self.reservoir_size = reservoir
        self.samples = np.empty(0, dtype=np.float32)
        self.count = 0
        self.rng = np.random.default_rng(seed)

    def update(self, values: np.ndarray) -> None:
        flat = np.asarray(values, dtype=np.float32).ravel()
        if flat.size == 0:
            return
        self.count += flat.size
        if flat.size > self.reservoir_size:
            flat = self.rng.choice(flat, self.reservoir_size, replace=False)
        merged = np.concatenate([self.samples, flat])
        if merged.size > self.reservoir_size:
            merged = self.rng.choice(merged, self.reservoir_size, replace=False)
        self.samples = merged

    def range(self) -> tuple[float, float]:
        if self.count == 0:
            raise RuntimeError("observer saw no data")
        lo = float(np.percentile(self.samples, 100.0 - self.percentile))
        hi = float(np.percentile(self.samples, self.percentile))
        if lo == hi:
            hi = lo + 1e-8
        return lo, hi


def make_observer(kind: str, **kwargs):
    """Factory: ``minmax`` | ``moving_average`` | ``percentile``."""
    factories = {
        "minmax": MinMaxObserver,
        "moving_average": MovingAverageObserver,
        "percentile": PercentileObserver,
    }
    if kind not in factories:
        raise ValueError(f"unknown observer {kind!r}; choose from {sorted(factories)}")
    return factories[kind](**kwargs)
