"""Post-training quantization of a frozen mobile graph.

Implements the rules-compliant INT8/UINT8 path of paper §5.1: weights are
quantized per-output-channel (symmetric), activations per-tensor (affine)
from ranges observed on the approved calibration set, biases become int32 at
``input_scale * weight_scale``. No retraining happens anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.executor import Executor
from ..graph.graph import Graph
from ..graph.ops import Conv2D, DepthToSpace, DepthwiseConv2D, FullyConnected, Reshape, Split
from ..kernels.numerics import Numerics, QuantParams, choose_qparams, quantize
from .observers import make_observer

__all__ = [
    "CalibrationResult",
    "calibrate",
    "pack_calibration_batches",
    "quantize_graph",
    "convert_fp16",
]

_SKIP_ROLES = {"ids", "mask"}
_PASS_THROUGH = (Reshape, Split, DepthToSpace)


@dataclass
class CalibrationResult:
    """Per-tensor observed ranges from running the calibration set."""

    ranges: dict[str, tuple[float, float]] = field(default_factory=dict)
    num_samples: int = 0
    observer_kind: str = "minmax"


def pack_calibration_batches(
    batches: list[dict[str, np.ndarray]], batch_size: int
) -> list[dict[str, np.ndarray]]:
    """Concatenate consecutive calibration feeds into ~``batch_size`` batches.

    Larger batches amortize the per-run dispatch cost of the planned
    executor. The set of observed values is unchanged; only the grouping of
    observer updates differs, so order-sensitive observers (moving average)
    see a coarser update sequence — use only where that is acceptable.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    if batches:
        keys = set(batches[0])
        for i, feed in enumerate(batches[1:], start=1):
            if set(feed) != keys:
                missing = sorted(keys - set(feed))
                extra = sorted(set(feed) - keys)
                raise ValueError(
                    f"calibration feed #{i} disagrees with feed #0 on its keys"
                    + (f" (missing {missing})" if missing else "")
                    + (f" (unexpected {extra})" if extra else ""))
    packed: list[dict[str, np.ndarray]] = []
    group: list[dict[str, np.ndarray]] = []
    count = 0
    for feed in batches:
        group.append(feed)
        count += next(iter(feed.values())).shape[0]
        if count >= batch_size:
            packed.append({k: np.concatenate([f[k] for f in group]) for k in group[0]})
            group, count = [], 0
    if group:
        packed.append({k: np.concatenate([f[k] for f in group]) for k in group[0]})
    return packed


def calibrate(
    graph: Graph,
    batches: list[dict[str, np.ndarray]],
    observer: str = "minmax",
    batch_size: int | None = None,
    **observer_kwargs,
) -> CalibrationResult:
    """Run the FP32 graph over calibration batches, recording tensor ranges.

    Execution goes through the planned executor (prepacked constants are
    reused across the whole calibration set). ``batch_size`` optionally
    re-packs the provided feeds into larger batched executions via
    :func:`pack_calibration_batches`.
    """
    if graph.numerics != Numerics.FP32:
        raise ValueError("calibration runs on the FP32 reference graph")
    if batch_size is not None:
        batches = pack_calibration_batches(batches, batch_size)
    observers: dict[str, object] = {}

    def hook(name: str, values: np.ndarray) -> None:
        obs = observers.get(name)
        if obs is None:
            obs = observers[name] = make_observer(observer, **observer_kwargs)
        obs.update(values)

    ex = Executor(graph)
    n = 0
    for feed in batches:
        for spec in graph.inputs:
            if spec.role not in _SKIP_ROLES:
                hook(spec.name, np.asarray(feed[spec.name], dtype=np.float32))
        ex.run(feed, observer=hook)
        n += next(iter(feed.values())).shape[0]
    ranges = {name: obs.range() for name, obs in observers.items()}
    return CalibrationResult(ranges=ranges, num_samples=n, observer_kind=observer)


def _weight_channel_axis(op) -> int:
    if isinstance(op, DepthwiseConv2D):
        return 2  # (kh, kw, C, 1)
    if isinstance(op, Conv2D):
        return 3  # (kh, kw, Cin, Cout)
    if isinstance(op, FullyConnected):
        return 1  # (in, out)
    raise TypeError(f"op {op!r} has no quantizable weight")


def _quantize_weight(w: np.ndarray, axis: int, numerics: Numerics, per_channel: bool) -> tuple[np.ndarray, QuantParams]:
    if per_channel:
        reduce_axes = tuple(i for i in range(w.ndim) if i != axis)
        lo = w.min(axis=reduce_axes)
        hi = w.max(axis=reduce_axes)
        qp = choose_qparams(lo, hi, numerics, symmetric=True, axis=axis)
    else:
        qp = choose_qparams(float(w.min()), float(w.max()), numerics, symmetric=True)
    return quantize(w, qp), qp


def quantize_graph(
    graph: Graph,
    calibration: CalibrationResult,
    numerics: Numerics = Numerics.INT8,
    *,
    per_channel: bool = True,
) -> Graph:
    """Produce the quantized deployment graph from an FP32 graph + calibration.

    Integer-kernel ops (conv / depthwise / fully-connected) get quantized
    weights and int32 biases; pass-through ops inherit their input's qparams
    so raw integers flow through unchanged; every other op becomes a float
    island with quantize/dequantize boundaries.
    """
    if not numerics.is_quantized:
        raise ValueError(f"{numerics} is not a quantized format")
    g = graph.clone(f"{graph.name}__{numerics.value}")
    g.frozen = False
    g.numerics = numerics

    # 1) activation qparams from calibration ranges
    for name, spec in g.tensor_specs.items():
        if spec.role in _SKIP_ROLES:
            continue
        if name not in calibration.ranges:
            raise KeyError(f"tensor {name!r} missing from calibration (graph mismatch?)")
        lo, hi = calibration.ranges[name]
        spec.qparams = choose_qparams(lo, hi, numerics)
        spec.numerics = numerics

    # 2) pass-through ops must not reinterpret the integer payload
    for op in g.ops:
        if isinstance(op, _PASS_THROUGH):
            in_spec = g.spec(op.inputs[0])
            for out in op.outputs:
                g.tensor_specs[out].qparams = in_spec.qparams

    # 3) weights and biases of integer-kernel ops
    for op in g.ops:
        if not isinstance(op, (Conv2D, DepthwiseConv2D, FullyConnected)):
            continue
        w_name = op.attrs["weight"]
        w = g.params[w_name]
        if w is None:
            raise ValueError("cannot quantize a symbolic graph")
        axis = _weight_channel_axis(op)
        wq, w_qp = _quantize_weight(np.asarray(w, dtype=np.float32), axis, numerics, per_channel)
        g.params[w_name] = wq
        g.param_qparams[w_name] = w_qp
        b_name = op.attrs.get("bias")
        if b_name:
            x_qp = g.spec(op.inputs[0]).qparams
            bias_scale = x_qp.scale[0] * w_qp.scale  # per-channel when weights are
            bq = np.round(np.asarray(g.params[b_name], dtype=np.float64) / bias_scale)
            g.params[b_name] = np.clip(bq, np.iinfo(np.int32).min, np.iinfo(np.int32).max).astype(
                np.int32
            )
            g.param_qparams[b_name] = QuantParams(
                scale=bias_scale, zero_point=np.zeros_like(bias_scale, dtype=np.int64),
                numerics=Numerics.INT16,  # tag only; storage is int32
                axis=0 if bias_scale.size > 1 else None,
            )

    g.metadata["quantization"] = {
        "numerics": numerics.value,
        "per_channel": per_channel,
        "observer": calibration.observer_kind,
        "calibration_samples": calibration.num_samples,
        # kept for the range engine's calibration-coverage check (VR003)
        "calibration_ranges": {
            name: [float(lo), float(hi)]
            for name, (lo, hi) in sorted(calibration.ranges.items())
        },
    }
    g.freeze()
    # re-attest: quantization changed params/specs, so the export-time stamp
    # no longer matches the checksum (deferred import avoids a module cycle)
    from ..staticcheck.verifier import attest

    attest(g)
    return g


def convert_fp16(graph: Graph) -> Graph:
    """FP16 deployment conversion: weights rounded to half, ops run in half."""
    g = graph.clone(f"{graph.name}__fp16")
    g.frozen = False
    g.numerics = Numerics.FP16
    for name, value in g.params.items():
        if value is None:
            raise ValueError("cannot convert a symbolic graph")
        if np.issubdtype(value.dtype, np.floating):
            g.params[name] = value.astype(np.float16).astype(np.float32)
    for spec in g.tensor_specs.values():
        if spec.role not in _SKIP_ROLES:
            spec.numerics = Numerics.FP16
    g.metadata["quantization"] = {"numerics": "fp16"}
    g.freeze()
    from ..staticcheck.verifier import attest

    attest(g)
    return g
