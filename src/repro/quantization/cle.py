"""Cross-layer equalization (Nagel et al., 2019) — data-free PTQ aid.

Per-channel weight ranges across consecutive convolutions can differ by
orders of magnitude; CLE rescales each shared channel c by
``s_c = sqrt(range1_c / range2_c)`` — dividing the producer's output channel
and multiplying the consumer's input channel — which leaves the FP32 network
*exactly* unchanged (positive homogeneity of ReLU / linear boundaries) while
balancing the ranges the quantizer must cover.

Rules-compliant: purely a mathematical-equivalence transform on the frozen
reference weights, no data and no retraining (paper §5.1 allows
"mathematically equivalent" changes).
"""

from __future__ import annotations

import numpy as np

from ..graph.graph import Graph
from ..graph.ops import Conv2D, DepthwiseConv2D

__all__ = ["equalize_cross_layer"]

# boundaries that commute with per-channel positive scaling
_HOMOGENEOUS_ACTIVATIONS = (None, "relu")


def _out_channel_axis(op) -> int:
    return 2 if isinstance(op, DepthwiseConv2D) else 3


def _in_channel_axis(op) -> int:
    return 2


def _weight_range(w: np.ndarray, axis: int) -> np.ndarray:
    reduce_axes = tuple(i for i in range(w.ndim) if i != axis)
    return np.abs(w).max(axis=reduce_axes)


def equalize_cross_layer(graph: Graph, iterations: int = 2) -> Graph:
    """Equalize every eligible conv->conv pair; returns a new graph.

    Eligible pairs: producer is a conv/depthwise with a fused activation in
    {none, relu}, its output has exactly one consumer, and that consumer is
    itself a conv/depthwise (relu6 boundaries are skipped — its clamp point
    does not commute with scaling).
    """
    g = graph.clone(f"{graph.name}__cle")
    g.frozen = False
    if g.is_symbolic:
        raise ValueError("cross-layer equalization needs materialized weights")
    pairs = 0
    for _ in range(iterations):
        consumers = g.consumers()
        for op in g.ops:
            if not isinstance(op, (Conv2D, DepthwiseConv2D)):
                continue
            if op.attrs.get("activation") not in _HOMOGENEOUS_ACTIVATIONS:
                continue
            users = consumers.get(op.outputs[0], [])
            if len(users) != 1 or not isinstance(users[0], (Conv2D, DepthwiseConv2D)):
                continue
            nxt = users[0]
            w1 = np.asarray(g.params[op.attrs["weight"]], dtype=np.float64)
            w2 = np.asarray(g.params[nxt.attrs["weight"]], dtype=np.float64)
            a1, a2 = _out_channel_axis(op), _in_channel_axis(nxt)
            r1 = np.maximum(_weight_range(w1, a1), 1e-12)
            r2 = np.maximum(_weight_range(w2, a2), 1e-12)
            scale = np.sqrt(r1 / r2)
            scale = np.clip(scale, 1e-4, 1e4)

            shape1 = [1] * w1.ndim
            shape1[a1] = scale.size
            g.params[op.attrs["weight"]] = (w1 / scale.reshape(shape1)).astype(np.float32)
            bias_name = op.attrs.get("bias")
            if bias_name:
                g.params[bias_name] = (
                    np.asarray(g.params[bias_name], dtype=np.float64) / scale
                ).astype(np.float32)
            shape2 = [1] * w2.ndim
            shape2[a2] = scale.size
            g.params[nxt.attrs["weight"]] = (w2 * scale.reshape(shape2)).astype(np.float32)
            pairs += 1
    g.metadata["cle_pairs"] = pairs
    g.validate()
    if graph.frozen:
        g.freeze()
    return g
