"""Shared building blocks for the reference model architectures.

Includes the MobileNet-family blocks (inverted bottleneck, fused inverted
bottleneck) and the deterministic *head standardization* step: with seeded
He-initialized weights the raw logits of a deep random feature extractor are
dominated by a constant component, so classification heads are rescaled
(per class, using a probe batch) to zero-mean/controlled-variance logits.
This gives the decision boundaries realistic margins, which is what makes
quantization error measurably flip predictions — the mechanism the paper's
quality targets gate on. See DESIGN.md §1 (oracle-labelled datasets).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.builder import GraphBuilder
from ..graph.executor import Executor
from ..graph.graph import Graph

__all__ = [
    "ModelBundle",
    "round_channels",
    "inverted_bottleneck",
    "fused_inverted_bottleneck",
    "standardize_head",
    "probe_images",
    "calibrate_batch_norms",
]


@dataclass
class ModelBundle:
    """A built reference model plus everything a task pipeline needs."""

    graph: Graph
    task: str
    input_name: str
    output_names: dict[str, str]  # semantic role -> tensor name
    config: dict = field(default_factory=dict)

    @property
    def input_shape(self) -> tuple[int, ...]:
        return self.graph.inputs[0].shape


def round_channels(channels: float, multiple: int = 4, minimum: int = 4) -> int:
    """Scale-then-round channel counts the way MobileNet width multipliers do."""
    c = max(minimum, int(channels + multiple / 2) // multiple * multiple)
    return c


def inverted_bottleneck(
    b: GraphBuilder,
    x: str,
    out_channels: int,
    *,
    expansion: int,
    stride: int = 1,
    kernel: int = 3,
    activation: str = "relu6",
) -> str:
    """MobileNet v2 inverted residual: expand 1x1 -> dw kxk -> project 1x1."""
    in_channels = b.graph.spec(x).shape[-1]
    residual = stride == 1 and in_channels == out_channels
    h = x
    if expansion != 1:
        h = b.conv(h, in_channels * expansion, k=1, activation=activation, use_bn=True)
    h = b.dwconv(h, k=kernel, stride=stride, activation=activation, use_bn=True)
    # linear bottleneck (no activation); residual branches are attenuated so
    # the identity path dominates signal propagation at depth
    h = b.conv(h, out_channels, k=1, use_bn=True, gamma_scale=0.25 if residual else 1.0)
    if residual:
        h = b.add(x, h)
    return h


def fused_inverted_bottleneck(
    b: GraphBuilder,
    x: str,
    out_channels: int,
    *,
    expansion: int,
    stride: int = 1,
    kernel: int = 3,
    activation: str = "relu",
) -> str:
    """MobileNetEdgeTPU fused block: full kxk expansion conv -> project 1x1.

    Fusing the expansion and depthwise stages improves accelerator utilization
    (paper §3.2) — the structural difference the EdgeTPU search introduced.
    """
    in_channels = b.graph.spec(x).shape[-1]
    residual = stride == 1 and in_channels == out_channels
    h = b.conv(x, in_channels * expansion, k=kernel, stride=stride, activation=activation, use_bn=True)
    h = b.conv(h, out_channels, k=1, use_bn=True, gamma_scale=0.25 if residual else 1.0)
    if residual:
        h = b.add(x, h)
    return h


def calibrate_batch_norms(graph: Graph, feeds: dict[str, np.ndarray]) -> None:
    """Set every BatchNorm's stored statistics from actual probe activations.

    In a trained network the BN running mean/variance match the activation
    distribution — that is what makes activations per-channel balanced and
    per-tensor activation quantization viable. Randomly-initialized BN
    parameters lack this property, so we estimate the statistics the way
    training would: a single forward pass, updating each BN from its own
    input *after* all upstream BNs have been updated (one topological sweep).
    """
    from ..graph.ops import BatchNorm  # local import avoids a cycle at module load

    env: dict[str, np.ndarray] = {}
    for spec in graph.inputs:
        env[spec.name] = np.asarray(feeds[spec.name], dtype=np.float32)
    for op in graph.ops:
        if isinstance(op, BatchNorm):
            x = env[op.inputs[0]]
            flat = x.reshape(-1, x.shape[-1]).astype(np.float64)
            graph.params[op.attrs["mean"]] = flat.mean(axis=0).astype(np.float32)
            graph.params[op.attrs["variance"]] = np.maximum(
                flat.var(axis=0), 1e-4
            ).astype(np.float32)
        outs = op.execute_float([env[t] for t in op.inputs], graph)
        for t, arr in zip(op.outputs, outs):
            env[t] = arr


def probe_images(shape: tuple[int, ...], n: int = 32, seed: int = 1234) -> np.ndarray:
    """Deterministic probe batch in normalized image space ([-1, 1]-ish)."""
    rng = np.random.default_rng(seed)
    full = (n,) + tuple(d for d in shape if d != -1)
    return rng.normal(0.0, 0.5, size=full).astype(np.float32)


def standardize_head(
    graph: Graph,
    logits_tensor: str,
    weight_name: str,
    bias_name: str,
    probe_feeds: dict[str, np.ndarray],
    *,
    target_std: float = 1.0,
    target_mean: float = 0.0,
) -> None:
    """Rescale a linear/conv head so probe logits have controlled statistics.

    The head must be the op producing ``logits_tensor`` with output channels
    on the last axis and no fused activation. Works for FC heads
    (weight (in,out)) and 1x1-conv heads (weight (1,1,in,out)) alike because
    both have the output channel on the final weight axis.
    """
    captured: dict[str, np.ndarray] = {}

    def hook(name: str, values: np.ndarray) -> None:
        if name == logits_tensor:
            captured[name] = values

    Executor(graph).run(probe_feeds, observer=hook)
    logits = captured[logits_tensor].astype(np.float64)
    flat = logits.reshape(-1, logits.shape[-1])
    mean = flat.mean(axis=0)
    std = flat.std(axis=0)
    std = np.where(std < 1e-6, 1.0, std)
    w = graph.params[weight_name]
    bias = graph.params[bias_name]
    scale = (target_std / std).astype(np.float32)
    graph.params[weight_name] = (w * scale).astype(np.float32)
    graph.params[bias_name] = ((bias - mean) * scale + target_mean).astype(np.float32)
