"""Reference model architectures (paper Table 1) and the model zoo."""

from .common import ModelBundle
from .deeplabv3plus import create_deeplab_v3plus
from .mobilebert import create_mobilebert, probe_token_batch
from .mobiledet import create_mobiledet_ssd
from .mobilenet_edgetpu import create_mobilenet_edgetpu
from .speech import create_mobile_streaming_asr
from .super_resolution import create_mobile_edge_sr
from .ssd_mobilenet_v2 import create_ssd_mobilenet_v2
from .zoo import (
    MODEL_REGISTRY,
    ModelEntry,
    available_models,
    create_full_model,
    create_reference_model,
    model_card,
)

__all__ = [
    "ModelBundle",
    "ModelEntry",
    "MODEL_REGISTRY",
    "available_models",
    "create_reference_model",
    "create_full_model",
    "model_card",
    "create_mobilenet_edgetpu",
    "create_ssd_mobilenet_v2",
    "create_mobiledet_ssd",
    "create_deeplab_v3plus",
    "create_mobilebert",
    "create_mobile_streaming_asr",
    "create_mobile_edge_sr",
    "probe_token_batch",
]
