"""MobileDet-SSD — the v1.0 object-detection reference model.

MobileDets (Xiong et al., 2021) search over a block vocabulary that mixes
inverted bottlenecks with *regular* convolutions, which improve the
accuracy-latency trade-off on EdgeTPU/DSP-class accelerators when placed
early in the network (paper §3.2). Input resolution rises to 320x320 while
the parameter count drops to ~4M.
"""

from __future__ import annotations

from ..graph.builder import GraphBuilder
from .common import (
    calibrate_batch_norms,
    ModelBundle,
    fused_inverted_bottleneck,
    inverted_bottleneck,
    probe_images,
    round_channels,
    standardize_head,
)
from .ssd_mobilenet_v2 import attach_ssd_heads

__all__ = ["create_mobiledet_ssd", "BLOCK_SPEC"]

# (kind, output channels, stride, expansion, kernel) — "conv" entries are the
# regular convolutions MobileDets injects into the early, high-resolution part
BLOCK_SPEC: list[tuple[str, int, int, int, int]] = [
    ("conv", 16, 1, 0, 3),
    ("fused", 32, 2, 8, 3),
    ("fused", 32, 1, 4, 3),
    ("conv", 40, 2, 0, 3),
    ("fused", 40, 1, 4, 3),
    ("fused", 40, 1, 4, 3),
    ("ib", 72, 2, 8, 3),
    ("ib", 72, 1, 4, 3),
    ("ib", 72, 1, 4, 3),
    ("ib", 96, 1, 8, 3),
    ("ib", 96, 1, 4, 3),
    ("ib", 120, 2, 8, 5),
    ("ib", 120, 1, 4, 3),
    ("ib", 120, 1, 4, 3),
    ("ib", 160, 1, 8, 3),
]


BLOCK_SPEC_TRIMMED: list[tuple[str, int, int, int, int]] = [
    ("conv", 16, 1, 0, 3),
    ("fused", 32, 2, 8, 3),
    ("conv", 40, 2, 0, 3),
    ("ib", 72, 2, 8, 3),
    ("ib", 96, 1, 8, 3),
    ("ib", 120, 2, 8, 5),
    ("ib", 160, 1, 8, 3),
]


def create_mobiledet_ssd(
    *,
    input_size: int = 320,
    width: float = 1.0,
    num_classes: int = 91,
    anchors_per_cell: int = 4,
    backbone_depth: str = "full",
    seed: int = 2021,
    materialize: bool = True,
) -> ModelBundle:
    """Build the MobileDet-SSD detection graph."""
    b = GraphBuilder(f"mobiledet_ssd_w{width}_r{input_size}", seed=seed, materialize=materialize,
                     init_style="isometric")
    x = b.input("images", (-1, input_size, input_size, 3), domain=(-1.0, 1.0))
    h = b.conv(x, round_channels(32 * width), k=3, stride=2, activation="relu6", use_bn=True)
    endpoints: dict[int, str] = {}
    stride = 2
    spec = BLOCK_SPEC if backbone_depth == "full" else BLOCK_SPEC_TRIMMED
    for kind, c, s, expansion, kernel in spec:
        c = round_channels(c * width)
        if kind == "conv":
            h = b.conv(h, c, k=kernel, stride=s, activation="relu6", use_bn=True)
        elif kind == "fused":
            h = fused_inverted_bottleneck(b, h, c, expansion=expansion, stride=s, kernel=kernel,
                                          activation="relu6")
        else:
            h = inverted_bottleneck(b, h, c, expansion=expansion, stride=s, kernel=kernel,
                                    activation="relu6")
        stride *= s if s == 2 else 1
        endpoints[stride] = h

    feature_maps = [endpoints[16], endpoints[32]]
    for i, c in enumerate((384, 256)):
        if b.graph.spec(h).shape[1] < 2:
            break
        h = b.conv(h, round_channels(c * width / 2), k=1, activation="relu6", use_bn=True,
                   name=f"extra_{i}/squeeze")
        h = b.conv(h, round_channels(c * width), k=3, stride=2, activation="relu6", use_bn=True,
                   name=f"extra_{i}/expand")
        feature_maps.append(h)

    class_logits, box_encodings, _, _ = attach_ssd_heads(
        b, feature_maps, num_classes=num_classes, anchors_per_cell=anchors_per_cell
    )
    scores = b.activation(class_logits, "sigmoid", name="class_scores")
    b.outputs(scores, box_encodings)
    graph = b.build()
    feature_shapes = [tuple(b.graph.spec(f).shape[1:3]) for f in feature_maps]
    graph.metadata.update(task="object_detection", reference="MobileDet-SSD")

    if materialize:
        feeds = {"images": probe_images(graph.inputs[0].shape, n=16, seed=seed + 1)}
        calibrate_batch_norms(graph, feeds)
        for i in range(len(feature_maps)):
            standardize_head(graph, f"cls_head_{i}/pw/out", f"cls_head_{i}/pw/w",
                             f"cls_head_{i}/pw/b", feeds, target_std=1.5, target_mean=-2.0)
            standardize_head(graph, f"box_head_{i}/pw/out", f"box_head_{i}/pw/w",
                             f"box_head_{i}/pw/b", feeds, target_std=1.0)

    return ModelBundle(
        graph=graph,
        task="object_detection",
        input_name=x,
        output_names={"scores": scores, "boxes": box_encodings, "logits": class_logits},
        config={
            "num_classes": num_classes,
            "input_size": input_size,
            "width": width,
            "anchors_per_cell": anchors_per_cell,
            "feature_shapes": feature_shapes,
            "box_variances": (0.1, 0.1, 0.2, 0.2),
        },
    )
