"""Closed-form "training" of reference-model heads.

The benchmark's reference models are trained networks; only *submitters* are
forbidden from retraining (paper §5.1). We stand in for training with a
deterministic, one-shot procedure: the randomly-initialized backbone acts as
a fixed feature extractor and each task head is fitted by ridge regression
against class-structured synthetic scenes (repro.synthdata). The result is a
model whose decisions carry real margins — confident on easy samples,
uncertain near boundaries — which is what makes the paper's relative-quality
gates (>=93-98% of FP32) behave the way they do on real trained models.
"""

from __future__ import annotations

import numpy as np

from ..graph.executor import Executor
from ..graph.graph import Graph
from ..pipelines.anchors import anchors_for_model
from ..pipelines.detection import encode_boxes, iou_matrix
from ..pipelines.preprocess import classification_preprocess, dense_preprocess
from ..synthdata import (
    classification_scene_batch,
    detection_scene_batch,
    segmentation_scene_batch,
    speech_sequence_batch,
    super_resolution_batch,
)
from .common import ModelBundle, calibrate_batch_norms

__all__ = [
    "ridge_fit",
    "capture_tensors",
    "fit_classification_head",
    "fit_detection_heads",
    "fit_segmentation_head",
    "fit_speech_head",
    "fit_super_resolution_head",
    "fit_reference_heads",
]


def ridge_fit(
    x: np.ndarray,
    y: np.ndarray,
    l2: float = 1e-2,
    sample_weight: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """(Weighted) centered ridge regression. Returns (weights (F, O), bias (O,))."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if sample_weight is None:
        sw = np.ones(len(x))
    else:
        sw = np.asarray(sample_weight, dtype=np.float64)
    total = sw.sum()
    x_mean = (sw[:, None] * x).sum(axis=0) / total
    y_mean = (sw[:, None] * y).sum(axis=0) / total
    xc = x - x_mean
    yc = y - y_mean
    xw = xc * sw[:, None]
    f = xc.shape[1]
    gram = xw.T @ xc + l2 * total * np.eye(f)
    w = np.linalg.solve(gram, xw.T @ yc)
    b = y_mean - x_mean @ w
    return w.astype(np.float32), b.astype(np.float32)


def capture_tensors(
    graph: Graph,
    batches: list[dict[str, np.ndarray]],
    tensor_names: list[str],
) -> dict[str, np.ndarray]:
    """Run FP32 batches, concatenating the named intermediate tensors."""
    ex = Executor(graph)
    collected: dict[str, list[np.ndarray]] = {t: [] for t in tensor_names}

    def hook(name: str, values: np.ndarray) -> None:
        if name in collected:
            collected[name].append(values)

    for feed in batches:
        ex.run(feed, observer=hook)
    return {t: np.concatenate(v, axis=0) for t, v in collected.items()}


def _batched(inputs: np.ndarray, batch: int) -> list[dict[str, np.ndarray]]:
    return [{"images": inputs[i : i + batch]} for i in range(0, len(inputs), batch)]


def fit_classification_head(
    bundle: ModelBundle,
    *,
    train_samples: int = 3000,
    seed: int = 7000,
    signal: float = 1.0,
    noise: float = 0.55,
    logit_scale: float = 6.0,
    l2: float = 1e-2,
) -> None:
    """Fit the classifier FC by ridge regression on GAP features."""
    graph = bundle.graph
    cfg = bundle.config
    raws, labels = classification_scene_batch(
        train_samples, int(cfg["input_size"] * 256 / 224) + 8, cfg["num_classes"], seed,
        signal=signal, noise=noise,
    )
    inputs = np.stack([classification_preprocess(im, cfg["input_size"]) for im in raws])
    # BN statistics must match the data distribution the model will see
    calibrate_batch_norms(graph, {"images": inputs[:64].astype(np.float32)})
    head_op = next(op for op in graph.ops if op.name == "classifier")
    feat_tensor = head_op.inputs[0]
    feats = capture_tensors(graph, _batched(inputs.astype(np.float32), 64), [feat_tensor])[feat_tensor]
    onehot = np.full((train_samples, cfg["num_classes"]), -logit_scale / 2, dtype=np.float64)
    onehot[np.arange(train_samples), labels] = logit_scale / 2
    w, b = ridge_fit(feats, onehot, l2)
    graph.params["classifier/w"] = w
    graph.params["classifier/b"] = b
    graph.metadata["head_fit"] = {"task": "classification", "train_samples": train_samples}


def fit_detection_heads(
    bundle: ModelBundle,
    *,
    train_samples: int = 600,
    seed: int = 7100,
    match_iou: float = 0.45,
    logit_scale: float = 6.0,
    l2: float = 1e-2,
) -> None:
    """Fit the SSDLite class + box heads per feature map.

    Class targets: +scale/2 for the matched class at a matched anchor,
    -scale/2 everywhere else. Box targets: encoded offsets of the matched
    ground-truth box; only cells containing at least one matched anchor
    contribute to the box regression fit.
    """
    graph = bundle.graph
    cfg = bundle.config
    size = cfg["input_size"]
    num_classes = cfg["num_classes"]
    a_per_cell = cfg["anchors_per_cell"]
    anchors = anchors_for_model(cfg)
    raws, truths = detection_scene_batch(train_samples, size + 16, num_classes, seed)
    inputs = np.stack([dense_preprocess(im, size) for im in raws]).astype(np.float32)
    calibrate_batch_norms(graph, {"images": inputs[:48]})

    # per-anchor match against ground truth (anchor-major layout matches heads)
    n_anchors = len(anchors)
    cls_targets = np.full((train_samples, n_anchors, num_classes), -logit_scale / 2, dtype=np.float64)
    box_targets = np.zeros((train_samples, n_anchors, 4), dtype=np.float64)
    matched = np.zeros((train_samples, n_anchors), dtype=bool)
    corner_anchors = np.stack(
        [anchors[:, 0] - anchors[:, 2] / 2, anchors[:, 1] - anchors[:, 3] / 2,
         anchors[:, 0] + anchors[:, 2] / 2, anchors[:, 1] + anchors[:, 3] / 2], axis=1,
    )
    for i, objs in enumerate(truths):
        if not objs:
            continue
        gt = np.asarray([o.box for o in objs])
        ious = iou_matrix(corner_anchors, gt)  # (A, G)
        best_gt = ious.argmax(axis=1)
        hit = ious.max(axis=1) >= match_iou
        hit[ious.argmax(axis=0)] = True  # force-match the best anchor per object
        for a in np.flatnonzero(hit):
            g = best_gt[a]
            cls_targets[i, a, objs[g].class_id] = logit_scale / 2
            box_targets[i, a] = encode_boxes(gt[g : g + 1], anchors[a : a + 1],
                                             cfg["box_variances"])[0]
            matched[i, a] = True

    head_inputs = []
    for j in range(len(cfg["feature_shapes"])):
        cls_op = next(op for op in graph.ops if op.name == f"cls_head_{j}/pw")
        box_op = next(op for op in graph.ops if op.name == f"box_head_{j}/pw")
        head_inputs.append((cls_op.inputs[0], box_op.inputs[0]))
    tensors = [t for pair in head_inputs for t in pair]
    feats = capture_tensors(graph, _batched(inputs, 32), tensors)

    offset = 0
    for j, (fh, fw) in enumerate(cfg["feature_shapes"]):
        n_cells = fh * fw
        n_map = n_cells * a_per_cell
        cls_t = cls_targets[:, offset : offset + n_map].reshape(train_samples * n_cells, -1)
        box_t = box_targets[:, offset : offset + n_map].reshape(train_samples * n_cells, -1)
        cell_matched = matched[:, offset : offset + n_map].reshape(train_samples * n_cells, a_per_cell)
        offset += n_map

        cls_feat = feats[head_inputs[j][0]].reshape(train_samples * n_cells, -1)
        box_feat = feats[head_inputs[j][1]].reshape(train_samples * n_cells, -1)
        # matched anchors are rare; upweight them so the fit does not collapse
        # to the all-background solution
        cls_weight = np.where(cell_matched.any(axis=1), 20.0, 1.0)
        w, b = ridge_fit(cls_feat, cls_t, l2, sample_weight=cls_weight)
        graph.params[f"cls_head_{j}/pw/w"] = w[None, None]
        graph.params[f"cls_head_{j}/pw/b"] = b
        rows = cell_matched.any(axis=1)
        if rows.sum() >= box_feat.shape[1] + 4:
            wb, bb = ridge_fit(box_feat[rows], box_t[rows], l2)
        else:  # too few matches on this map: keep a zero regressor
            wb = np.zeros((box_feat.shape[1], box_t.shape[1]), dtype=np.float32)
            bb = np.zeros(box_t.shape[1], dtype=np.float32)
        graph.params[f"box_head_{j}/pw/w"] = wb[None, None]
        graph.params[f"box_head_{j}/pw/b"] = bb
    graph.metadata["head_fit"] = {"task": "detection", "train_samples": train_samples}


def fit_segmentation_head(
    bundle: ModelBundle,
    *,
    train_samples: int = 300,
    seed: int = 7200,
    logit_scale: float = 6.0,
    l2: float = 1e-2,
) -> None:
    """Fit the 1x1 classifier conv by per-pixel ridge on decoder features."""
    graph = bundle.graph
    cfg = bundle.config
    size = cfg["input_size"]
    num_classes = cfg["num_classes"]
    # scenes are generated at the exact network resolution so the dense label
    # map stays pixel-aligned with the (no-op) resize in dense_preprocess
    raws, labels = segmentation_scene_batch(train_samples, size, num_classes, seed)
    inputs = np.stack([dense_preprocess(im, size) for im in raws]).astype(np.float32)
    calibrate_batch_norms(graph, {"images": inputs[:32]})

    head_op = next(op for op in graph.ops if op.name == "classifier")
    feat_tensor = head_op.inputs[0]
    feats = capture_tensors(graph, _batched(inputs, 16), [feat_tensor])[feat_tensor]
    _, fh, fw, fc = feats.shape
    # nearest-downsample the dense labels to the classifier's resolution
    ys = (np.arange(fh) * size // fh).clip(max=size - 1)
    xs = (np.arange(fw) * size // fw).clip(max=size - 1)
    small = labels[:, ys][:, :, xs]

    x = feats.reshape(-1, fc)
    y = np.full((x.shape[0], num_classes), -logit_scale / 2, dtype=np.float64)
    y[np.arange(x.shape[0]), small.ravel()] = logit_scale / 2
    w, b = ridge_fit(x, y, l2)
    graph.params["classifier/w"] = w[None, None]
    graph.params["classifier/b"] = b
    graph.metadata["head_fit"] = {"task": "segmentation", "train_samples": train_samples}


def fit_speech_head(
    bundle: ModelBundle,
    *,
    train_samples: int = 400,
    seed: int = 7300,
    logit_scale: float = 6.0,
    l2: float = 1e-2,
) -> None:
    """Fit the per-frame token head by ridge on LSTM encoder states."""
    graph = bundle.graph
    cfg = bundle.config
    vocab = cfg["vocab_size"]
    feats, _, frame_labels = speech_sequence_batch(
        train_samples, cfg["num_frames"], cfg["feature_dim"], vocab, seed
    )
    head_op = next(op for op in graph.ops if op.name == "token_head")
    batches = [{"features": feats[i : i + 32]} for i in range(0, train_samples, 32)]
    states = capture_tensors(graph, batches, [head_op.inputs[0]])[head_op.inputs[0]]
    x = states.reshape(-1, states.shape[-1])
    y = np.full((x.shape[0], vocab + 1), -logit_scale / 2, dtype=np.float64)
    y[np.arange(x.shape[0]), frame_labels.ravel()] = logit_scale / 2
    w, b = ridge_fit(x, y, l2)
    graph.params["token_head/w"] = w
    graph.params["token_head/b"] = b
    graph.metadata["head_fit"] = {"task": "speech", "train_samples": train_samples}


def fit_super_resolution_head(
    bundle: ModelBundle,
    *,
    train_samples: int = 200,
    seed: int = 7400,
    l2: float = 1e-3,
) -> None:
    """Fit the 3x3 upsampler conv: 3x3 trunk-feature patches -> HR sub-pixels."""
    from ..kernels.conv import conv_output_shape, im2col, pad_input
    from ..pipelines.preprocess import normalize_image

    graph = bundle.graph
    cfg = bundle.config
    lr_size, scale = cfg["lr_size"], cfg["scale"]
    lr, hr = super_resolution_batch(train_samples, lr_size * scale, scale, seed)
    lr_in = normalize_image(lr).astype(np.float32)
    hr_norm = normalize_image(hr).astype(np.float32)

    calibrate_batch_norms(graph, {"lr_images": lr_in[:32]})
    head_op = next(op for op in graph.ops if op.name == "upsampler")
    batches = [{"lr_images": lr_in[i : i + 16]} for i in range(0, train_samples, 16)]
    feats = capture_tensors(graph, batches, [head_op.inputs[0]])[head_op.inputs[0]]
    n, fh, fw, fc = feats.shape
    # 3x3 neighbourhood features (same padding) -> exactly the conv's receptive field
    _, _, ph, pw = conv_output_shape(fh, fw, 3, 3, 1, "same")
    cols = im2col(pad_input(feats, ph, pw), 3, 3, 1, fh, fw).reshape(-1, 9 * fc)
    # targets: the scale x scale HR sub-pixel block at each LR position
    tgt = hr_norm.reshape(n, fh, scale, fw, scale, 3).transpose(0, 1, 3, 2, 4, 5)
    tgt = tgt.reshape(-1, scale * scale * 3)
    w, b = ridge_fit(cols, tgt, l2)
    graph.params["upsampler/w"] = w.reshape(3, 3, fc, scale * scale * 3)
    graph.params["upsampler/b"] = b
    graph.metadata["head_fit"] = {"task": "super_resolution",
                                  "train_samples": train_samples}


def fit_reference_heads(bundle: ModelBundle, seed: int = 7777) -> None:
    """Dispatch head fitting by task. QA keeps its oracle-based evaluation."""
    if bundle.task == "image_classification":
        fit_classification_head(bundle, seed=seed)
    elif bundle.task == "object_detection":
        fit_detection_heads(bundle, seed=seed)
    elif bundle.task == "semantic_segmentation":
        fit_segmentation_head(bundle, seed=seed)
    elif bundle.task == "speech_recognition":
        fit_speech_head(bundle, seed=seed)
    elif bundle.task == "super_resolution":
        fit_super_resolution_head(bundle, seed=seed)
    # question_answering: intentionally unfitted — evaluated oracle-relative
