"""Mobile streaming speech recognition (paper App. E future work).

The paper lists a mobile RNN-T as in-the-works ("we're working with Google
and Facebook engineers to build a mobile model version"). This reference is
the streaming-encoder core of such a model: a stacked-LSTM acoustic encoder
over filterbank-style features with a per-frame token head, decoded greedily
with CTC-style collapse. It registers as an *experimental* task — not part
of the v0.7/v1.0 suites — exactly as the paper positions it.
"""

from __future__ import annotations

import numpy as np

from ..graph.builder import GraphBuilder
from .common import ModelBundle

__all__ = ["create_mobile_streaming_asr"]


def create_mobile_streaming_asr(
    *,
    num_frames: int = 300,
    feature_dim: int = 80,
    hidden: int = 640,
    num_layers: int = 2,
    vocab_size: int = 128,
    seed: int = 2022,
    materialize: bool = True,
) -> ModelBundle:
    """Build the streaming-ASR encoder graph.

    Output logits are (batch, T, vocab_size + 1); the final class is the
    CTC blank.
    """
    b = GraphBuilder(
        f"mobile_streaming_asr_t{num_frames}_h{hidden}", seed=seed,
        materialize=materialize,
    )
    x = b.input("features", (-1, num_frames, feature_dim), domain=(-8.0, 8.0))
    h = b.fc(x, hidden, activation="relu", name="frontend")
    for i in range(num_layers):
        h = b.lstm(h, hidden, name=f"encoder_{i}")
    logits = b.fc(h, vocab_size + 1, name="token_head")
    b.outputs(logits)
    graph = b.build()
    graph.metadata.update(task="speech_recognition", reference="Mobile streaming ASR")

    return ModelBundle(
        graph=graph,
        task="speech_recognition",
        input_name=x,
        output_names={"logits": logits},
        config={
            "num_frames": num_frames,
            "feature_dim": feature_dim,
            "hidden": hidden,
            "vocab_size": vocab_size,
            "blank_id": vocab_size,
        },
    )
