"""MobileNetEdgeTPU — the image-classification reference model (Table 1).

A MobileNet-v2 descendant optimized for mobile accelerators: the early
stages use *fused* inverted bottlenecks (full kxk expansion convolution),
squeeze-excite and hard-swish are removed, later stages use ordinary
inverted bottlenecks. ~4M parameters at full size (224x224, width 1.0).
"""

from __future__ import annotations

from ..graph.builder import GraphBuilder
from .common import (
    calibrate_batch_norms,
    ModelBundle,
    fused_inverted_bottleneck,
    inverted_bottleneck,
    probe_images,
    round_channels,
    standardize_head,
)

__all__ = ["create_mobilenet_edgetpu", "BLOCK_SPEC"]

# (block kind, output channels, stride, expansion, kernel)
BLOCK_SPEC: list[tuple[str, int, int, int, int]] = [
    ("fused", 16, 1, 1, 3),
    ("fused", 32, 2, 8, 3),
    ("fused", 32, 1, 4, 3),
    ("fused", 32, 1, 4, 3),
    ("fused", 32, 1, 4, 3),
    ("fused", 48, 2, 8, 3),
    ("fused", 48, 1, 4, 3),
    ("fused", 48, 1, 4, 3),
    ("fused", 48, 1, 4, 3),
    ("ib", 96, 2, 8, 3),
    ("ib", 96, 1, 4, 3),
    ("ib", 96, 1, 4, 3),
    ("ib", 96, 1, 4, 3),
    ("ib", 96, 1, 8, 3),
    ("ib", 96, 1, 4, 3),
    ("ib", 96, 1, 4, 3),
    ("ib", 96, 1, 4, 3),
    ("ib", 160, 2, 8, 5),
    ("ib", 160, 1, 4, 3),
    ("ib", 160, 1, 4, 3),
    ("ib", 160, 1, 4, 3),
    ("ib", 192, 1, 8, 3),
]


def create_mobilenet_edgetpu(
    *,
    input_size: int = 224,
    width: float = 1.0,
    num_classes: int = 1000,
    seed: int = 2020,
    materialize: bool = True,
) -> ModelBundle:
    """Build the classification reference graph.

    ``width`` scales every channel count (the mechanism that yields the
    executable reduced model; see DESIGN.md §1), ``materialize=False``
    yields the symbolic full-size graph for the performance model.
    """
    b = GraphBuilder(f"mobilenet_edgetpu_w{width}_r{input_size}", seed=seed, materialize=materialize)
    x = b.input("images", (-1, input_size, input_size, 3), domain=(-1.0, 1.0))
    h = b.conv(x, round_channels(32 * width), k=3, stride=2, activation="relu", use_bn=True)
    for kind, c, stride, expansion, kernel in BLOCK_SPEC:
        c = round_channels(c * width)
        if kind == "fused":
            h = fused_inverted_bottleneck(
                b, h, c, expansion=expansion, stride=stride, kernel=kernel, activation="relu"
            )
        else:
            h = inverted_bottleneck(
                b, h, c, expansion=expansion, stride=stride, kernel=kernel, activation="relu"
            )
    feat = round_channels(1280 * width, minimum=64)
    h = b.conv(h, feat, k=1, activation="relu", use_bn=True)
    h = b.global_pool(h)
    h = b.reshape(h, (feat,))
    logits = b.fc(h, num_classes, name="classifier")
    probs = b.softmax(logits, name="probs")
    b.outputs(probs)
    graph = b.build()
    graph.metadata.update(task="image_classification", reference="MobileNetEdgeTPU")

    if materialize:
        calibrate_batch_norms(
            graph, {"images": probe_images(graph.inputs[0].shape, n=32, seed=seed + 1)}
        )
        standardize_head(
            graph, logits, "classifier/w", "classifier/b",
            {"images": probe_images(graph.inputs[0].shape, n=32, seed=seed + 1)},
            target_std=2.5,
        )
    return ModelBundle(
        graph=graph,
        task="image_classification",
        input_name=x,
        output_names={"probs": probs, "logits": logits},
        config={"num_classes": num_classes, "input_size": input_size, "width": width},
    )
