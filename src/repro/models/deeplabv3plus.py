"""DeepLab v3+ (MobileNet v2 backbone) — the semantic-segmentation reference.

Encoder/decoder with atrous spatial pyramid pooling (ASPP): backbone capped
at output stride 16, parallel atrous branches at rates {6, 12} plus image
pooling, a 1x1 fusion, then a decoder that merges stride-4 low-level features
and predicts the paper's reduced 32-class ADE20K label space at full input
resolution. ~2M parameters at full size (512x512).
"""

from __future__ import annotations

from ..graph.builder import GraphBuilder
from .backbones import mobilenet_v2_backbone
from .common import (
    ModelBundle,
    calibrate_batch_norms,
    probe_images,
    round_channels,
    standardize_head,
)

__all__ = ["create_deeplab_v3plus"]


def create_deeplab_v3plus(
    *,
    input_size: int = 512,
    width: float = 1.0,
    num_classes: int = 32,
    seed: int = 2018,
    materialize: bool = True,
) -> ModelBundle:
    """Build the DeepLab v3+ segmentation graph."""
    b = GraphBuilder(f"deeplab_v3plus_w{width}_r{input_size}", seed=seed, materialize=materialize,
                     init_style="isometric")
    x = b.input("images", (-1, input_size, input_size, 3), domain=(-1.0, 1.0))
    endpoints = mobilenet_v2_backbone(b, x, width=width, output_stride=16)
    high = endpoints[16]
    low = endpoints[4]
    _, fh, fw, _ = b.graph.spec(high).shape

    aspp_c = round_channels(256 * width, minimum=16)
    branches = [
        b.conv(high, aspp_c, k=1, activation="relu", use_bn=True, name="aspp/conv1x1"),
        b.conv(high, aspp_c, k=3, dilation=6, activation="relu", use_bn=True, name="aspp/rate6"),
        b.conv(high, aspp_c, k=3, dilation=12, activation="relu", use_bn=True, name="aspp/rate12"),
    ]
    # image-level pooling branch: GAP -> 1x1 conv -> broadcast back up
    pool = b.global_pool(high, keepdims=True)
    pool = b.conv(pool, aspp_c, k=1, activation="relu", use_bn=True, name="aspp/image_pool")
    pool = b.resize(pool, fh, fw)
    branches.append(pool)

    h = b.concat(branches, axis=-1, name="aspp/concat")
    h = b.conv(h, aspp_c, k=1, activation="relu", use_bn=True, name="aspp/project")

    # decoder: upsample 4x to the low-level stride, fuse, refine
    _, lh, lw, _ = b.graph.spec(low).shape
    h = b.resize(h, lh, lw)
    low_c = round_channels(48 * width, minimum=8)
    low_feat = b.conv(low, low_c, k=1, activation="relu", use_bn=True, name="decoder/low_project")
    h = b.concat([h, low_feat], axis=-1, name="decoder/concat")
    h = b.conv(h, aspp_c, k=3, activation="relu", use_bn=True, name="decoder/refine0")
    h = b.conv(h, aspp_c, k=3, activation="relu", use_bn=True, name="decoder/refine1")
    logits_small = b.conv(h, num_classes, k=1, name="classifier")
    logits = b.resize(logits_small, input_size, input_size)
    b.outputs(logits)
    graph = b.build()
    graph.metadata.update(task="semantic_segmentation", reference="DeepLab v3+ MobileNet v2")

    if materialize:
        feeds = {"images": probe_images(graph.inputs[0].shape, n=8, seed=seed + 1)}
        calibrate_batch_norms(graph, feeds)
        standardize_head(graph, "classifier/out", "classifier/w", "classifier/b",
                         feeds, target_std=2.0)

    return ModelBundle(
        graph=graph,
        task="semantic_segmentation",
        input_name=x,
        output_names={"logits": logits},
        config={"num_classes": num_classes, "input_size": input_size, "width": width},
    )
