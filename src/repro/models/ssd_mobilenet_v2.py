"""SSD-MobileNet v2 — the v0.7 object-detection reference model.

MobileNet v2 feature extraction with SSDLite heads (depthwise 3x3 followed
by a 1x1 projection), multi-resolution feature maps, per-anchor class logits
and box encodings. Decode + NMS live in :mod:`repro.pipelines.detection`.
"""

from __future__ import annotations

import math

from ..graph.builder import GraphBuilder
from .backbones import mobilenet_v2_backbone
from .common import (
    ModelBundle,
    calibrate_batch_norms,
    probe_images,
    round_channels,
    standardize_head,
)

__all__ = ["create_ssd_mobilenet_v2", "attach_ssd_heads"]


def attach_ssd_heads(
    b: GraphBuilder,
    feature_maps: list[str],
    *,
    num_classes: int,
    anchors_per_cell: int,
) -> tuple[str, str, list[str], list[str]]:
    """Attach SSDLite heads to each feature map.

    Returns (class_logits, box_encodings, class head conv names, box head
    conv names); logits are (batch, total_anchors, num_classes), boxes are
    (batch, total_anchors, 4).
    """
    cls_parts, box_parts = [], []
    cls_convs, box_convs = [], []
    for i, fmap in enumerate(feature_maps):
        _, fh, fw, _ = b.graph.spec(fmap).shape
        # SSDLite: depthwise 3x3 then 1x1 projection instead of full 3x3
        cls_mid = b.dwconv(fmap, k=3, activation="relu6", use_bn=True, name=f"cls_head_{i}/dw")
        cls = b.conv(cls_mid, anchors_per_cell * num_classes, k=1, name=f"cls_head_{i}/pw")
        cls_convs.append(f"cls_head_{i}/pw")
        cls = b.reshape(cls, (fh * fw * anchors_per_cell, num_classes), name=f"cls_head_{i}/flat")
        cls_parts.append(cls)

        box_mid = b.dwconv(fmap, k=3, activation="relu6", use_bn=True, name=f"box_head_{i}/dw")
        box = b.conv(box_mid, anchors_per_cell * 4, k=1, name=f"box_head_{i}/pw")
        box_convs.append(f"box_head_{i}/pw")
        box = b.reshape(box, (fh * fw * anchors_per_cell, 4), name=f"box_head_{i}/flat")
        box_parts.append(box)

    class_logits = b.concat(cls_parts, axis=1, name="class_logits") if len(cls_parts) > 1 else cls_parts[0]
    box_encodings = b.concat(box_parts, axis=1, name="box_encodings") if len(box_parts) > 1 else box_parts[0]
    return class_logits, box_encodings, cls_convs, box_convs


def create_ssd_mobilenet_v2(
    *,
    input_size: int = 300,
    width: float = 1.0,
    num_classes: int = 91,
    anchors_per_cell: int = 4,
    backbone_depth: str = "full",
    seed: int = 2016,
    materialize: bool = True,
) -> ModelBundle:
    """Build the SSD-MobileNet v2 detection graph."""
    b = GraphBuilder(f"ssd_mobilenet_v2_w{width}_r{input_size}", seed=seed, materialize=materialize,
                     init_style="isometric")
    x = b.input("images", (-1, input_size, input_size, 3), domain=(-1.0, 1.0))
    endpoints = mobilenet_v2_backbone(b, x, width=width, depth=backbone_depth)

    feature_maps = [endpoints[16], endpoints[32]]
    # extra SSD feature layers: 1x1 squeeze + 3x3 stride-2 expand
    h = endpoints[32]
    for i, c in enumerate((512, 256)):
        if b.graph.spec(h).shape[1] < 2:
            break  # feature map too small to halve again (scaled variants)
        h = b.conv(h, round_channels(c * width / 2), k=1, activation="relu6", use_bn=True,
                   name=f"extra_{i}/squeeze")
        h = b.conv(h, round_channels(c * width), k=3, stride=2, activation="relu6", use_bn=True,
                   name=f"extra_{i}/expand")
        feature_maps.append(h)

    class_logits, box_encodings, cls_convs, box_convs = attach_ssd_heads(
        b, feature_maps, num_classes=num_classes, anchors_per_cell=anchors_per_cell
    )
    scores = b.activation(class_logits, "sigmoid", name="class_scores")
    b.outputs(scores, box_encodings)
    graph = b.build()

    feature_shapes = [tuple(b.graph.spec(f).shape[1:3]) for f in feature_maps]
    graph.metadata.update(task="object_detection", reference="SSD-MobileNet v2")

    if materialize:
        feeds = {"images": probe_images(graph.inputs[0].shape, n=16, seed=seed + 1)}
        calibrate_batch_norms(graph, feeds)
        for i in range(len(feature_maps)):
            standardize_head(graph, f"cls_head_{i}/pw/out", f"cls_head_{i}/pw/w",
                             f"cls_head_{i}/pw/b", feeds, target_std=1.5, target_mean=-2.0)
            standardize_head(graph, f"box_head_{i}/pw/out", f"box_head_{i}/pw/w",
                             f"box_head_{i}/pw/b", feeds, target_std=1.0)

    return ModelBundle(
        graph=graph,
        task="object_detection",
        input_name=x,
        output_names={"scores": scores, "boxes": box_encodings, "logits": class_logits},
        config={
            "num_classes": num_classes,
            "input_size": input_size,
            "width": width,
            "anchors_per_cell": anchors_per_cell,
            "feature_shapes": feature_shapes,
            "box_variances": (0.1, 0.1, 0.2, 0.2),
        },
    )
