"""Feature-extractor backbones shared between detection and segmentation."""

from __future__ import annotations

from ..graph.builder import GraphBuilder
from .common import inverted_bottleneck, round_channels

__all__ = ["mobilenet_v2_backbone", "MOBILENET_V2_SPEC", "MOBILENET_V2_SPEC_TRIMMED"]

# (output channels, stride, expansion) — the published MobileNet v2 layout
MOBILENET_V2_SPEC: list[tuple[int, int, int]] = [
    (16, 1, 1),
    (24, 2, 6),
    (24, 1, 6),
    (32, 2, 6),
    (32, 1, 6),
    (32, 1, 6),
    (64, 2, 6),
    (64, 1, 6),
    (64, 1, 6),
    (64, 1, 6),
    (96, 1, 6),
    (96, 1, 6),
    (96, 1, 6),
    (160, 2, 6),
    (160, 1, 6),
    (160, 1, 6),
    (320, 1, 6),
]


# scaled-profile depth: one block per stage (repeats dropped). Untrained
# (even isometric) features lose local class information with every extra
# random block, so executable reference profiles may scale depth the same
# way they scale width/resolution; the symbolic full-size graphs always use
# the complete published spec.
MOBILENET_V2_SPEC_TRIMMED: list[tuple[int, int, int]] = [
    (16, 1, 1),
    (24, 2, 6),
    (32, 2, 6),
    (64, 2, 6),
    (96, 1, 6),
    (160, 2, 6),
    (320, 1, 6),
]


def mobilenet_v2_backbone(
    b: GraphBuilder,
    x: str,
    *,
    width: float = 1.0,
    output_stride: int = 32,
    depth: str = "full",
) -> dict[int, str]:
    """Build MobileNet v2, returning a map of stride -> endpoint tensor.

    ``output_stride`` caps downsampling: strides beyond it are converted to 1
    (the DeepLab trick for dense prediction; the atrous context recovery then
    happens in the ASPP module). ``depth`` selects the full published spec or
    the trimmed scaled-profile spec.
    """
    spec = MOBILENET_V2_SPEC if depth == "full" else MOBILENET_V2_SPEC_TRIMMED
    endpoints: dict[int, str] = {}
    h = b.conv(x, round_channels(32 * width), k=3, stride=2, activation="relu6", use_bn=True)
    current_stride = 2
    endpoints[2] = h
    for c, stride, expansion in spec:
        if stride == 2 and current_stride >= output_stride:
            stride = 1
        h = inverted_bottleneck(
            b, h, round_channels(c * width), expansion=expansion, stride=stride,
            activation="relu6",
        )
        current_stride *= stride if stride == 2 else 1
        endpoints[current_stride] = h
    return endpoints
