"""Model zoo: the Table-1 registry of reference models.

Every model exists in two profiles:

- ``reference`` — a width/resolution-scaled *executable* graph (NumPy can run
  it at benchmark sample counts); used by accuracy mode.
- ``full`` — a *symbolic* graph at the paper's published size; its op list,
  MAC and byte counts drive the hardware performance model.

Both profiles share the identical block structure, which is the property the
substitution in DESIGN.md relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .common import ModelBundle
from .deeplabv3plus import create_deeplab_v3plus
from .mobilebert import create_mobilebert
from .mobiledet import create_mobiledet_ssd
from .mobilenet_edgetpu import create_mobilenet_edgetpu
from .speech import create_mobile_streaming_asr
from .ssd_mobilenet_v2 import create_ssd_mobilenet_v2
from .super_resolution import create_mobile_edge_sr

__all__ = [
    "ModelEntry",
    "MODEL_REGISTRY",
    "available_models",
    "create_reference_model",
    "create_full_model",
    "model_card",
]


@dataclass(frozen=True)
class ModelEntry:
    name: str
    task: str
    factory: Callable[..., ModelBundle]
    full_kwargs: dict
    reference_kwargs: dict
    paper_params: str  # headline parameter count from Table 1
    dataset: str
    benchmark_versions: tuple[str, ...]


MODEL_REGISTRY: dict[str, ModelEntry] = {
    "mobilenet_edgetpu": ModelEntry(
        name="mobilenet_edgetpu",
        task="image_classification",
        factory=create_mobilenet_edgetpu,
        full_kwargs={"input_size": 224, "width": 1.0, "num_classes": 1000},
        reference_kwargs={"input_size": 40, "width": 0.25, "num_classes": 100},
        paper_params="4M",
        dataset="imagenet",
        benchmark_versions=("v0.7", "v1.0"),
    ),
    "ssd_mobilenet_v2": ModelEntry(
        name="ssd_mobilenet_v2",
        task="object_detection",
        factory=create_ssd_mobilenet_v2,
        full_kwargs={"input_size": 300, "width": 1.25, "num_classes": 91,
                     "anchors_per_cell": 6},
        reference_kwargs={"input_size": 96, "width": 0.5, "num_classes": 11,
                          "backbone_depth": "trim"},
        paper_params="17M",
        dataset="coco",
        benchmark_versions=("v0.7",),
    ),
    "mobiledet_ssd": ModelEntry(
        name="mobiledet_ssd",
        task="object_detection",
        factory=create_mobiledet_ssd,
        full_kwargs={"input_size": 320, "width": 1.0, "num_classes": 91},
        reference_kwargs={"input_size": 96, "width": 0.5, "num_classes": 11,
                          "backbone_depth": "trim"},
        paper_params="4M",
        dataset="coco",
        benchmark_versions=("v1.0",),
    ),
    "deeplab_v3plus": ModelEntry(
        name="deeplab_v3plus",
        task="semantic_segmentation",
        factory=create_deeplab_v3plus,
        full_kwargs={"input_size": 512, "width": 1.0, "num_classes": 32},
        reference_kwargs={"input_size": 64, "width": 0.25, "num_classes": 12},
        paper_params="2M",
        dataset="ade20k",
        benchmark_versions=("v0.7", "v1.0"),
    ),
    "mobilebert": ModelEntry(
        name="mobilebert",
        task="question_answering",
        factory=create_mobilebert,
        full_kwargs={
            "seq_len": 384, "vocab_size": 30522, "body": 512, "bottleneck": 128,
            "num_layers": 24, "num_heads": 4, "ffn_stack": 4,
        },
        reference_kwargs={
            "seq_len": 64, "vocab_size": 1000, "body": 128, "bottleneck": 64,
            "num_layers": 3, "num_heads": 4, "ffn_stack": 2,
        },
        paper_params="25M",
        dataset="squad",
        benchmark_versions=("v0.7", "v1.0"),
    ),
    # --- Appendix E "future work" tasks, registered as experimental ---
    "mobile_streaming_asr": ModelEntry(
        name="mobile_streaming_asr",
        task="speech_recognition",
        factory=create_mobile_streaming_asr,
        full_kwargs={
            "num_frames": 300, "feature_dim": 80, "hidden": 640,
            "num_layers": 2, "vocab_size": 128,
        },
        reference_kwargs={
            "num_frames": 60, "feature_dim": 24, "hidden": 64,
            "num_layers": 2, "vocab_size": 28,
        },
        paper_params="in the works (App. E)",
        dataset="speech",
        benchmark_versions=("experimental",),
    ),
    "mobile_edge_sr": ModelEntry(
        name="mobile_edge_sr",
        task="super_resolution",
        factory=create_mobile_edge_sr,
        full_kwargs={"lr_size": 128, "scale": 2, "width": 1.0, "num_blocks": 4},
        reference_kwargs={"lr_size": 24, "scale": 2, "width": 0.5, "num_blocks": 2},
        paper_params="still evolving (App. E)",
        dataset="superres",
        benchmark_versions=("experimental",),
    ),
}


def available_models() -> list[str]:
    return sorted(MODEL_REGISTRY)


def _entry(name: str) -> ModelEntry:
    if name not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {available_models()}")
    return MODEL_REGISTRY[name]


def create_reference_model(
    name: str, seed: int | None = None, *, fitted: bool = True
) -> ModelBundle:
    """Executable scaled reference model (the accuracy-mode workhorse).

    ``fitted=True`` (default) runs the closed-form head "training" of
    :mod:`repro.models.fitting` so task heads carry real decision margins;
    pass ``False`` for the raw randomly-initialized network (ablations).
    """
    entry = _entry(name)
    kwargs = dict(entry.reference_kwargs)
    if seed is not None:
        kwargs["seed"] = seed
    bundle = entry.factory(materialize=True, **kwargs)
    if fitted:
        from .fitting import fit_reference_heads  # deferred: fitting imports pipelines

        fit_reference_heads(bundle, seed=(seed or 0) + 7777)
    return bundle


def create_full_model(name: str) -> ModelBundle:
    """Symbolic paper-size model (drives the latency/throughput model)."""
    entry = _entry(name)
    return entry.factory(materialize=False, **entry.full_kwargs)


def model_card(name: str) -> dict:
    """Structural summary: params/MACs at both profiles, Table 1 metadata."""
    entry = _entry(name)
    full = create_full_model(name)
    ref = create_reference_model(name)
    return {
        "name": name,
        "task": entry.task,
        "dataset": entry.dataset,
        "benchmark_versions": entry.benchmark_versions,
        "paper_params": entry.paper_params,
        "full": {
            "params": full.graph.num_parameters,
            "macs_per_sample": full.graph.total_macs,
            "input_shape": full.input_shape,
        },
        "reference": {
            "params": ref.graph.num_parameters,
            "macs_per_sample": ref.graph.total_macs,
            "input_shape": ref.input_shape,
        },
    }
