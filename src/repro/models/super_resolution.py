"""Mobile super-resolution (paper App. E future work).

"Super-resolution and high-resolution models are important use cases, but
they are still evolving" — the paper defers them for lack of agreed models
and metrics. This reference takes the stable, hardware-friendly shape such a
task would use: an EDSR-style residual conv trunk at LR resolution followed
by pixel-shuffle (depth-to-space) upsampling, evaluated with PSNR. It
registers as an *experimental* task.
"""

from __future__ import annotations

from ..graph.builder import GraphBuilder
from .common import ModelBundle, round_channels

__all__ = ["create_mobile_edge_sr"]


def create_mobile_edge_sr(
    *,
    lr_size: int = 128,
    scale: int = 2,
    width: float = 1.0,
    num_blocks: int = 4,
    seed: int = 2023,
    materialize: bool = True,
) -> ModelBundle:
    """Build the SR graph: LR (h, w, 3) -> HR (h*scale, w*scale, 3)."""
    channels = round_channels(32 * width, minimum=8)
    b = GraphBuilder(
        f"mobile_edge_sr_r{lr_size}x{scale}_w{width}", seed=seed,
        materialize=materialize, init_style="isometric",
    )
    x = b.input("lr_images", (-1, lr_size, lr_size, 3), domain=(-1.0, 1.0))
    h = b.conv(x, channels, k=3, activation="relu", name="head")
    for i in range(num_blocks):
        r = b.conv(h, channels, k=3, activation="relu", name=f"block_{i}/conv0")
        r = b.conv(r, channels, k=3, name=f"block_{i}/conv1")
        h = b.add(h, r, name=f"block_{i}/residual")
    h = b.conv(h, 3 * scale * scale, k=3, name="upsampler")
    hr = b.depth_to_space(h, scale, name="shuffle")
    b.outputs(hr)
    graph = b.build()
    graph.metadata.update(task="super_resolution", reference="Mobile edge SR")

    return ModelBundle(
        graph=graph,
        task="super_resolution",
        input_name=x,
        output_names={"hr": hr},
        config={"lr_size": lr_size, "scale": scale, "width": width},
    )
