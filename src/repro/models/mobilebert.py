"""MobileBERT — the question-answering (SQuAD v1.1) reference model.

Implements the bottleneck-transformer structure of Sun et al. (2020): a wide
body dimension with narrow intra-block bottlenecks, multi-head attention in
the bottleneck space, and a stack of small feed-forward networks per layer.
The QA head projects every token to start/end logits. ~25M parameters at
full size (seq len 384, 24 layers).
"""

from __future__ import annotations

import numpy as np

from ..graph.builder import GraphBuilder
from ..graph.executor import Executor
from .common import ModelBundle, standardize_head

__all__ = ["create_mobilebert", "probe_token_batch"]


def probe_token_batch(
    seq_len: int, vocab_size: int, n: int = 16, seed: int = 77
) -> dict[str, np.ndarray]:
    """Deterministic probe batch of token ids + full attention mask."""
    rng = np.random.default_rng(seed)
    ids = rng.integers(0, vocab_size, size=(n, seq_len)).astype(np.float32)
    mask = np.ones((n, seq_len), dtype=np.float32)
    return {"input_ids": ids, "input_mask": mask}


def _transformer_layer(
    b: GraphBuilder,
    x: str,
    *,
    body: int,
    bottleneck: int,
    num_heads: int,
    ffn_stack: int,
    mask: str,
    idx: int,
) -> str:
    """One MobileBERT layer: bottleneck-in, attention, FFN stack, bottleneck-out."""
    p = f"layer_{idx}"
    inner = b.fc(x, bottleneck, name=f"{p}/bottleneck_in")

    q = b.fc(inner, bottleneck, name=f"{p}/q")
    k = b.fc(inner, bottleneck, name=f"{p}/k")
    v = b.fc(inner, bottleneck, name=f"{p}/v")
    attn = b.attention(q, k, v, num_heads=num_heads, mask=mask, name=f"{p}/attn")
    attn = b.fc(attn, bottleneck, name=f"{p}/attn_out")
    h = b.add(inner, attn, name=f"{p}/attn_residual")
    h = b.layer_norm(h, name=f"{p}/attn_ln")

    for j in range(ffn_stack):
        ff = b.fc(h, bottleneck * 4, activation="gelu", name=f"{p}/ffn{j}/up")
        ff = b.fc(ff, bottleneck, name=f"{p}/ffn{j}/down")
        h = b.add(h, ff, name=f"{p}/ffn{j}/residual")
        h = b.layer_norm(h, name=f"{p}/ffn{j}/ln")

    out = b.fc(h, body, name=f"{p}/bottleneck_out")
    out = b.add(x, out, name=f"{p}/out_residual")
    return b.layer_norm(out, name=f"{p}/out_ln")


def create_mobilebert(
    *,
    seq_len: int = 384,
    vocab_size: int = 30522,
    body: int = 512,
    bottleneck: int = 128,
    num_layers: int = 24,
    num_heads: int = 4,
    ffn_stack: int = 4,
    seed: int = 2019,
    materialize: bool = True,
) -> ModelBundle:
    """Build the MobileBERT QA graph (start/end span logits per token)."""
    b = GraphBuilder(
        f"mobilebert_l{num_layers}_s{seq_len}", seed=seed, materialize=materialize
    )
    ids = b.input("input_ids", (-1, seq_len), role="ids", domain=(0.0, vocab_size - 1))
    mask = b.input("input_mask", (-1, seq_len), role="mask")
    h = b.embedding(ids, vocab_size, bottleneck, max_positions=seq_len, name="embeddings")
    h = b.fc(h, body, name="embedding_projection")
    h = b.layer_norm(h, name="embedding_ln")
    for i in range(num_layers):
        h = _transformer_layer(
            b, h, body=body, bottleneck=bottleneck, num_heads=num_heads,
            ffn_stack=ffn_stack, mask=mask, idx=i,
        )
    span = b.fc(h, 2, name="qa_head")
    start_raw, end_raw = b.split(span, 2, name="qa_split")
    start_logits = b.reshape(start_raw, (seq_len,), name="start_logits")
    end_logits = b.reshape(end_raw, (seq_len,), name="end_logits")
    b.outputs(start_logits, end_logits)
    graph = b.build()
    graph.metadata.update(task="question_answering", reference="MobileBERT")

    if materialize:
        standardize_head(
            graph, "qa_head/out", "qa_head/w", "qa_head/b",
            probe_token_batch(seq_len, vocab_size, n=16, seed=seed + 1),
            target_std=2.5,
        )

    return ModelBundle(
        graph=graph,
        task="question_answering",
        input_name=ids,
        output_names={"start_logits": start_logits, "end_logits": end_logits},
        config={
            "seq_len": seq_len,
            "vocab_size": vocab_size,
            "body": body,
            "bottleneck": bottleneck,
            "num_layers": num_layers,
            "num_heads": num_heads,
        },
    )
