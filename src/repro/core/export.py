"""On-disk submission bundles.

Writes a submission the way the real process ships one: a directory holding
the system description, per-task unedited LoadGen log files, model
provenance checksums and a summary — everything the auditors receive
(paper §6.2: "Submissions include all of the mobile benchmark app's log
files, unedited").
"""

from __future__ import annotations

import json
import pathlib

from ..loadgen.logging import LoadGenLog, QueryRecord
from .results import BenchmarkResult, SuiteResult
from .submission import Submission, SystemDescription

__all__ = ["write_submission", "load_submission_summary", "load_log"]


def _write_json(path: pathlib.Path, payload) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, default=str)


def write_submission(submission: Submission, directory: str | pathlib.Path) -> pathlib.Path:
    """Serialize a submission bundle; returns the bundle root."""
    root = pathlib.Path(directory)
    sysd = submission.system
    _write_json(root / "system.json", {
        "submitter": sysd.submitter,
        "soc": sysd.soc_name,
        "device": sysd.device_name,
        "form_factor": sysd.form_factor,
        "os": sysd.os_name,
        "commercially_available": sysd.commercially_available,
        "factory_reset": sysd.factory_reset,
    })
    _write_json(root / "provenance.json", {
        "version": submission.version,
        "loadgen_checksum": submission.loadgen_checksum,
        "models": submission.model_provenance,
    })
    summary = []
    for result in submission.suite.results:
        task_dir = root / "results" / result.task
        for log, name in (
            (result.accuracy_log, "accuracy_log.json"),
            (result.performance_log, "performance_log.json"),
            (result.offline_log, "offline_log.json"),
        ):
            if log is not None:
                _write_json(task_dir / name, log.to_dict())
        summary.append(result.to_summary())
    _write_json(root / "summary.json", summary)
    return root


def load_submission_summary(directory: str | pathlib.Path) -> list[dict]:
    with open(pathlib.Path(directory) / "summary.json") as fh:
        return json.load(fh)


def load_log(path: str | pathlib.Path) -> LoadGenLog:
    """Rehydrate an unedited log file back into a :class:`LoadGenLog`.

    Round-tripping matters: the audit can revalidate logs from disk exactly
    as they were submitted.
    """
    with open(path) as fh:
        raw = json.load(fh)
    log = LoadGenLog(
        scenario=raw["scenario"],
        mode=raw["mode"],
        task=raw["task"],
        model_name=raw["model"],
        sut_name=raw["sut"],
        seed=raw["seed"],
        min_query_count=raw["min_query_count"],
        min_duration_s=raw["min_duration_s"],
    )
    log.offline_samples = raw.get("offline_samples", 0)
    log.offline_seconds = raw.get("offline_seconds", 0.0)
    log.energy_joules = raw.get("energy_joules", 0.0)
    log.accuracy = dict(raw.get("accuracy", {}))
    log.metadata = dict(raw.get("metadata", {}))
    for issue, latency, indices, temp in raw.get("records", []):
        log.records.append(QueryRecord(issue, latency, tuple(indices), temp))
    return log
