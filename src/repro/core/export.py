"""On-disk submission bundles.

Writes a submission the way the real process ships one: a directory holding
the system description, per-task unedited LoadGen log files, model
provenance checksums and a summary — everything the auditors receive
(paper §6.2: "Submissions include all of the mobile benchmark app's log
files, unedited").
"""

from __future__ import annotations

import json
import pathlib

from ..loadgen.logging import LoadGenLog
from ..loadgen.validation import validate_serialized
from .submission import Submission

__all__ = [
    "write_submission",
    "load_submission_summary",
    "load_log",
    "validate_package",
]


def _write_json(path: pathlib.Path, payload) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, default=str)


def write_submission(submission: Submission, directory: str | pathlib.Path) -> pathlib.Path:
    """Serialize a submission bundle; returns the bundle root."""
    root = pathlib.Path(directory)
    sysd = submission.system
    _write_json(root / "system.json", {
        "submitter": sysd.submitter,
        "soc": sysd.soc_name,
        "device": sysd.device_name,
        "form_factor": sysd.form_factor,
        "os": sysd.os_name,
        "commercially_available": sysd.commercially_available,
        "factory_reset": sysd.factory_reset,
    })
    _write_json(root / "provenance.json", {
        "version": submission.version,
        "loadgen_checksum": submission.loadgen_checksum,
        "models": submission.model_provenance,
    })
    summary = []
    for result in submission.suite.results:
        task_dir = root / "results" / result.task
        for log, name in (
            (result.accuracy_log, "accuracy_log.json"),
            (result.performance_log, "performance_log.json"),
            (result.offline_log, "offline_log.json"),
        ):
            if log is not None:
                _write_json(task_dir / name, log.to_dict())
        summary.append(result.to_summary())
    _write_json(root / "summary.json", summary)
    return root


def load_submission_summary(directory: str | pathlib.Path) -> list[dict]:
    with open(pathlib.Path(directory) / "summary.json") as fh:
        return json.load(fh)


def load_log(path: str | pathlib.Path) -> LoadGenLog:
    """Rehydrate an unedited log file back into a :class:`LoadGenLog`.

    Round-tripping is lossless (``from_dict`` inverts ``to_dict``): the
    audit revalidates logs from disk exactly as they were submitted.
    """
    with open(path) as fh:
        raw = json.load(fh)
    return LoadGenLog.from_dict(raw)


def validate_package(directory: str | pathlib.Path) -> list[str]:
    """Conformance-check an on-disk submission bundle.

    Walks every ``*_log.json`` under ``results/`` and runs the serialized
    validator over the raw JSON. Unreadable or corrupt files come back as
    violations, never exceptions — one bad file must not kill a checker
    sweep over a whole submission round.
    """
    root = pathlib.Path(directory)
    problems: list[str] = []
    for name in ("system.json", "provenance.json", "summary.json"):
        if not (root / name).exists():
            problems.append(f"package missing {name}")
    prov_path = root / "provenance.json"
    if prov_path.exists():
        try:
            prov = json.loads(prov_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            prov = None
            problems.append(f"provenance.json: unreadable ({exc})")
        if isinstance(prov, dict):
            for task, entry in sorted((prov.get("models") or {}).items()):
                if not isinstance(entry, dict):
                    continue
                # lenient: absent stamps (pre-verifier packages) are fine,
                # but a recorded failure or a post-attestation edit is not
                stamp = entry.get("staticcheck") or {}
                if not stamp:
                    continue
                if not stamp.get("verified", False):
                    problems.append(
                        f"provenance.json: [{task}] deployed graph failed "
                        f"static verification")
                shipped = entry.get("deployed_checksum")
                if shipped and stamp.get("checksum") not in (None, shipped):
                    problems.append(
                        f"provenance.json: [{task}] graph modified after "
                        f"static-verification attestation")
    results_dir = root / "results"
    if not results_dir.is_dir():
        problems.append("package has no results/ directory")
        return problems
    log_files = sorted(results_dir.glob("*/*_log.json"))
    if not log_files:
        problems.append("package contains no log files")
    for path in log_files:
        label = str(path.relative_to(root))
        try:
            raw = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            problems.append(f"{label}: unreadable log file ({exc})")
            continue
        problems += [f"{label}: {v}" for v in validate_serialized(raw)]
    return problems
