"""Benchmark core: tasks, run rules, harness, results, submissions, audit."""

from .audit import AuditFinding, AuditReport, audit_submission
from .export import load_log, load_submission_summary, validate_package, write_submission
from .harness import BenchmarkHarness, ReferenceArtifacts
from .results import BenchmarkResult, SuiteResult, format_report
from .rules import DEFAULT_RULES, QUICK_RULES, RuleViolation, RunRules
from .submission import (
    RollingSubmissionLog,
    Submission,
    SystemDescription,
    build_submission,
    check_submission,
)
from .tasks import FULL_TASK_ORDER, TASK_ORDER, TASKS, TaskSpec, get_task, tasks_for_version

__all__ = [
    "TaskSpec",
    "TASKS",
    "TASK_ORDER",
    "FULL_TASK_ORDER",
    "get_task",
    "tasks_for_version",
    "RunRules",
    "RuleViolation",
    "DEFAULT_RULES",
    "QUICK_RULES",
    "BenchmarkHarness",
    "ReferenceArtifacts",
    "BenchmarkResult",
    "SuiteResult",
    "format_report",
    "SystemDescription",
    "Submission",
    "build_submission",
    "check_submission",
    "RollingSubmissionLog",
    "AuditFinding",
    "AuditReport",
    "audit_submission",
    "write_submission",
    "load_submission_summary",
    "load_log",
    "validate_package",
]
