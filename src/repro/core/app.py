"""Headless benchmark app (paper §4.3, Appendix A).

The command-line equivalent of the mobile app's "Go" button: runs the suite
in the prescribed order under the run rules and prints the transparent
results screen. Laptop submitters use exactly this path (the paper's
headless variant); smartphones differ only by having a GUI on top.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..backends.vendors import available_backends
from ..hardware.soc import SOC_CATALOG
from ..models.zoo import available_models, model_card
from .harness import BenchmarkHarness
from .results import format_report
from .rules import DEFAULT_RULES, QUICK_RULES
from .tasks import FULL_TASK_ORDER

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mlperf-mobile",
        description="MLPerf Mobile inference benchmark (simulated reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the benchmark suite on one device")
    run.add_argument("--soc", required=True, choices=sorted(SOC_CATALOG))
    run.add_argument("--backend", default=None, choices=available_backends(),
                     help="default: the vendor's submission backend")
    run.add_argument("--version", default=None,
                     choices=["v0.7", "v1.0", "experimental"],
                     help="default: the round the SoC was submitted in")
    run.add_argument("--tasks", nargs="*", choices=FULL_TASK_ORDER, default=None)
    run.add_argument("--quick", action="store_true",
                     help="reduced run rules + small datasets (smoke testing)")
    run.add_argument("--ambient", type=float, default=22.0,
                     help="room temperature in degC (rules: 20-25)")
    run.add_argument("--no-offline", action="store_true")
    run.add_argument("--json", action="store_true", help="machine-readable output")

    lst = sub.add_parser("list", help="list devices, backends and models")
    lst.add_argument("what", choices=["socs", "backends", "models", "tasks"])

    rep = sub.add_parser("report", help="regenerate the paper's evaluation "
                                        "section from live simulator runs")
    rep.add_argument("--fast", action="store_true",
                     help="fewer queries per measurement")

    card = sub.add_parser("describe", help="print a model card")
    card.add_argument("model", choices=available_models())
    card.add_argument("--graph", action="store_true",
                      help="also print the full-size op-by-op summary")
    return parser


def _run(args) -> int:
    version = args.version or SOC_CATALOG[args.soc].benchmark_version
    if args.quick:
        rules = QUICK_RULES
        sizes = {"imagenet": 128, "coco": 48, "ade20k": 32, "squad": 48}
    else:
        rules = DEFAULT_RULES
        sizes = None
    harness = BenchmarkHarness(
        version=version, rules=rules, ambient_c=args.ambient, dataset_sizes=sizes
    )
    suite = harness.run_suite(
        args.soc,
        backend_name=args.backend,
        tasks=args.tasks,
        include_offline=not args.no_offline,
    )
    if args.json:
        print(json.dumps([r.to_summary() for r in suite.results], indent=2))
    else:
        print(format_report(suite))
    return 0 if suite.all_passed else 1


def _list(args) -> int:
    if args.what == "socs":
        for name, soc in sorted(SOC_CATALOG.items()):
            accs = "+".join(a.name for a in soc.accelerators)
            print(f"{name:22s} {soc.vendor:10s} {soc.form_factor:11s} "
                  f"{soc.benchmark_version}  [{accs}]")
    elif args.what == "backends":
        for b in available_backends():
            print(b)
    elif args.what == "models":
        for m in available_models():
            print(m)
    else:
        for t in FULL_TASK_ORDER:
            print(t)
    return 0


def _describe(args) -> int:
    print(json.dumps(model_card(args.model), indent=2, default=str))
    if args.graph:
        from ..graph import export_mobile, graph_summary
        from ..models.zoo import create_full_model

        print()
        print(graph_summary(export_mobile(create_full_model(args.model).graph)))
    return 0


def _report(args) -> int:
    from ..analysis import evaluation_report
    from ..loadgen import TestSettings

    settings = (
        TestSettings(min_query_count=64, min_duration_s=0.2) if args.fast else None
    )
    if settings is None:
        from ..analysis import PERF_SETTINGS

        settings = PERF_SETTINGS
    print(evaluation_report(settings))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _run(args)
    if args.command == "list":
        return _list(args)
    if args.command == "report":
        return _report(args)
    return _describe(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
