"""Submission bundles, the submission checker, and rolling submissions.

A submission packages unedited logs, model provenance checksums and the
system description (paper §6.2). The checker enforces: results only count
when the quality target is met, the LoadGen was not modified, deployment
models descend from the frozen reference graphs, and the SUT is a
commercially available device. Rolling submissions (App. E future work) are
an append-only log keyed by (SoC, backend, version).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..loadgen.scenarios import loadgen_checksum
from ..loadgen.validation import validate_serialized
from .harness import BenchmarkHarness
from .results import SuiteResult

__all__ = [
    "SystemDescription",
    "Submission",
    "build_submission",
    "check_submission",
    "RollingSubmissionLog",
]


@dataclass(frozen=True)
class SystemDescription:
    submitter: str
    soc_name: str
    device_name: str
    form_factor: str  # "smartphone" | "laptop"
    os_name: str
    commercially_available: bool = True
    factory_reset: bool = True


@dataclass
class Submission:
    system: SystemDescription
    version: str
    suite: SuiteResult
    model_provenance: dict[str, dict[str, str]] = field(default_factory=dict)
    loadgen_checksum: str = ""
    submission_id: int = 0


def build_submission(
    harness: BenchmarkHarness, suite: SuiteResult, system: SystemDescription
) -> Submission:
    """Collect provenance from the harness's reference artifacts."""
    from ..kernels.numerics import Numerics

    provenance: dict[str, dict[str, str]] = {}
    for result in suite.results:
        if result.error:
            # a degraded task ships no artifacts; the checker flags it
            continue
        art = harness.artifacts(result.task)
        deployed = harness.deployment_graph(result.task, Numerics(result.numerics))
        provenance[result.task] = {
            "reference_export_checksum": art.fp32_graph.metadata["export_checksum"],
            "reference_source_checksum": art.fp32_graph.metadata["source_checksum"],
            "deployed_source_checksum": str(
                deployed.metadata.get("source_checksum", "")
            ),
            "deployed_name": deployed.name,
            # PTQ governance (§5.1): only the approved calibration set,
            # typically ~500 samples, no retraining
            "quantization": dict(deployed.metadata.get("quantization", {})),
            # static-verification attestation stamped at export/quantization
            # time, plus the graph checksum as shipped — the checker compares
            # the two to prove the verified graph is the deployed graph
            "staticcheck": dict(deployed.metadata.get("staticcheck", {})),
            "deployed_checksum": deployed.checksum(),
        }
    return Submission(
        system=system,
        version=suite.version,
        suite=suite,
        model_provenance=provenance,
        loadgen_checksum=loadgen_checksum(),
    )


def check_submission(submission: Submission) -> list[str]:
    """The submission checker: every rule the auditors examine first."""
    problems: list[str] = []
    sysdesc = submission.system

    if not sysdesc.commercially_available:
        problems.append("SUT must be commercially available before publication")
    if not sysdesc.factory_reset:
        problems.append("verification requires a factory-reset device")
    if submission.loadgen_checksum != loadgen_checksum():
        problems.append("LoadGen checksum mismatch: submitter modified the LoadGen")

    if not submission.suite.results:
        problems.append("submission contains no results")

    for result in submission.suite.results:
        prefix = f"[{result.task}]"
        if result.error:
            problems.append(f"{prefix} task degraded, no valid result: {result.error}")
            continue
        if result.accuracy_log is None or result.performance_log is None:
            problems.append(f"{prefix} missing unedited log files")
            continue
        for log, label in ((result.accuracy_log, "accuracy"),
                           (result.performance_log, "performance"),
                           (result.offline_log, "offline")):
            if log is None:
                continue
            # validate the serialized form — exactly what a submission
            # package contains — so summary edits and schema corruption are
            # caught the same way the auditor would catch them
            for v in validate_serialized(log.to_dict()):
                problems.append(f"{prefix} {label} log: {v}")
        if not result.quality_passed:
            problems.append(
                f"{prefix} quality {result.measured_quality:.2f} below the "
                f"minimum target {result.quality_target:.2f}; performance "
                f"results are invalid"
            )
        prov = submission.model_provenance.get(result.task)
        if prov is None:
            problems.append(f"{prefix} missing model provenance")
        elif prov["deployed_source_checksum"] not in (
            prov["reference_source_checksum"], prov["reference_export_checksum"], ""
        ):
            problems.append(
                f"{prefix} deployed model does not descend from the frozen "
                f"reference graph (source checksum mismatch)"
            )
        if prov is not None:
            # lenient by design: packages predating the static verifier carry
            # no stamp and stay valid; a present stamp must be trustworthy
            stamp = prov.get("staticcheck") or {}
            if stamp:
                if not stamp.get("verified", False):
                    problems.append(
                        f"{prefix} deployed graph failed static verification "
                        f"({stamp.get('errors', '?')} error finding(s))"
                    )
                shipped = prov.get("deployed_checksum")
                if shipped and stamp.get("checksum") not in (None, shipped):
                    problems.append(
                        f"{prefix} deployed graph was modified after its "
                        f"static-verification attestation (checksum mismatch)"
                    )
        if prov is not None:
            quant = prov.get("quantization", {})
            samples = quant.get("calibration_samples")
            if samples is not None and samples > 500:
                problems.append(
                    f"{prefix} PTQ used {samples} calibration samples; the "
                    f"rules approve a ~500-sample set (§5.1)"
                )
    return problems


class RollingSubmissionLog:
    """Append-only continuous-submission registry (App. E)."""

    def __init__(self) -> None:
        self._entries: list[Submission] = []

    def submit(self, submission: Submission) -> int:
        problems = check_submission(submission)
        if problems:
            raise ValueError("rejected submission: " + "; ".join(problems[:3]))
        submission.submission_id = len(self._entries) + 1
        self._entries.append(submission)
        return submission.submission_id

    def __len__(self) -> int:
        return len(self._entries)

    def latest(self, soc_name: str, version: str | None = None) -> Submission:
        for sub in reversed(self._entries):
            if sub.system.soc_name == soc_name and (
                version is None or sub.version == version
            ):
                return sub
        raise KeyError(f"no submission for {soc_name}")

    def leaderboard(self, task: str, version: str) -> list[tuple[str, float]]:
        """Best (lowest) p90 latency per SoC for one task and round."""
        best: dict[str, float] = {}
        for sub in self._entries:
            if sub.version != version:
                continue
            for r in sub.suite.results:
                if r.task == task:
                    cur = best.get(sub.system.soc_name)
                    if cur is None or r.latency_p90_ms < cur:
                        best[sub.system.soc_name] = r.latency_p90_ms
        return sorted(best.items(), key=lambda kv: kv[1])
