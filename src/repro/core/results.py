"""Benchmark result records and report rendering (paper Figure 8c-e).

A :class:`BenchmarkResult` carries everything the app surfaces for one task:
quality versus target, the performance numbers, the transparent execution
configuration (numerics/framework/accelerators), and the unedited logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..loadgen.logging import LoadGenLog

__all__ = ["BenchmarkResult", "SuiteResult", "format_report"]


@dataclass
class BenchmarkResult:
    task: str
    version: str
    model_name: str
    soc_name: str
    backend_name: str
    execution_config: str  # the Table-2 cell: numerics, framework, accelerators
    numerics: str
    # accuracy mode
    accuracy: dict[str, float] = field(default_factory=dict)
    fp32_accuracy: dict[str, float] = field(default_factory=dict)
    metric: str = ""
    quality_target: float = 0.0
    quality_passed: bool = False
    # performance mode
    latency_p90_ms: float = 0.0
    latency_mean_ms: float = 0.0
    throughput_fps: float = 0.0
    offline_fps: float = 0.0
    energy_per_query_mj: float = 0.0
    # provenance
    accuracy_log: LoadGenLog | None = None
    performance_log: LoadGenLog | None = None
    offline_log: LoadGenLog | None = None
    # fault tolerance: non-empty when the task could not produce a full
    # result; the suite carries the flagged partial entry instead of crashing
    error: str = ""

    @property
    def measured_quality(self) -> float:
        return self.accuracy.get(self.metric, 0.0)

    @property
    def degraded(self) -> bool:
        if self.error:
            return True
        for log in (self.accuracy_log, self.performance_log, self.offline_log):
            if log is not None and (
                log.metadata.get("dropped_queries") or log.metadata.get("partial")
            ):
                return True
        return False

    def to_summary(self) -> dict:
        return {
            "task": self.task,
            "version": self.version,
            "model": self.model_name,
            "soc": self.soc_name,
            "backend": self.backend_name,
            "config": self.execution_config,
            "metric": self.metric,
            "quality": round(self.measured_quality, 3),
            "quality_target": round(self.quality_target, 3),
            "quality_passed": self.quality_passed,
            "latency_p90_ms": round(self.latency_p90_ms, 3),
            "throughput_fps": round(self.throughput_fps, 2),
            "offline_fps": round(self.offline_fps, 2),
            "energy_per_query_mj": round(self.energy_per_query_mj, 3),
            "degraded": self.degraded,
            "error": self.error,
        }


@dataclass
class SuiteResult:
    soc_name: str
    backend_name: str
    version: str
    results: list[BenchmarkResult] = field(default_factory=list)

    def result_for(self, task: str) -> BenchmarkResult:
        for r in self.results:
            if r.task == task:
                return r
        raise KeyError(f"no result for task {task!r}")

    @property
    def all_passed(self) -> bool:
        return all(r.quality_passed and not r.degraded for r in self.results)

    @property
    def degraded_tasks(self) -> list[str]:
        return [r.task for r in self.results if r.degraded]


def format_report(suite: SuiteResult) -> str:
    """Human-readable results screen (the headless analogue of Fig. 8c)."""
    lines = [
        f"MLPerf Mobile {suite.version} — {suite.soc_name} via {suite.backend_name}",
        "=" * 78,
        f"{'task':<26}{'quality':>10}{'target':>9}{'pass':>6}"
        f"{'p90 ms':>10}{'fps':>9}{'mJ/q':>8}",
        "-" * 78,
    ]
    for r in suite.results:
        lines.append(
            f"{r.task:<26}{r.measured_quality:>10.2f}{r.quality_target:>9.2f}"
            f"{'yes' if r.quality_passed else 'NO':>6}"
            f"{r.latency_p90_ms:>10.2f}{r.throughput_fps:>9.1f}"
            f"{r.energy_per_query_mj:>8.2f}"
        )
        lines.append(f"   config: {r.execution_config}")
        if r.offline_fps:
            lines.append(f"   offline throughput: {r.offline_fps:.1f} FPS")
        if r.error:
            lines.append(f"   ** DEGRADED: {r.error}")
        elif r.degraded:
            lines.append("   ** DEGRADED: run dropped queries or ended partial")
    lines.append("-" * 78)
    lines.append(f"suite quality: {'ALL PASSED' if suite.all_passed else 'FAILURES PRESENT'}")
    return "\n".join(lines)
