"""Run rules and test conditions (paper §6.1).

The rules object is threaded through the harness: it fixes the LoadGen
settings, the environmental requirements (room temperature, battery power),
and the cooldown discipline between individual tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..loadgen.scenarios import TestSettings

__all__ = ["RunRules", "RuleViolation", "DEFAULT_RULES", "QUICK_RULES"]


class RuleViolation(ValueError):
    """A test condition outside what the run rules allow."""


@dataclass(frozen=True)
class RunRules:
    # test control (§6.1)
    min_query_count: int = 1024
    min_duration_s: float = 60.0
    offline_sample_count: int = 24576
    latency_percentile: float = 90.0
    # thermal conditions: 20-25 degC room, cooldown break of 0-5 minutes
    ambient_min_c: float = 20.0
    ambient_max_c: float = 25.0
    cooldown_s: float = 120.0
    suite_rerun_cooldown_s: float = 600.0  # 10-minute break between suite runs
    # battery power with a full charge recommended
    battery_powered: bool = True
    full_charge: bool = True
    # result validation: audit reproduction tolerance (§6.2)
    audit_tolerance: float = 0.05
    # fault tolerance: bounded per-query retry, bounded drops before the run
    # aborts as a flagged partial result
    query_retry_budget: int = 3
    query_drop_budget: int = 16

    def validate_conditions(self, ambient_c: float) -> None:
        if not self.ambient_min_c <= ambient_c <= self.ambient_max_c:
            raise RuleViolation(
                f"room temperature {ambient_c:.1f} degC outside the required "
                f"{self.ambient_min_c:.0f}-{self.ambient_max_c:.0f} degC range"
            )
        if not self.battery_powered:
            raise RuleViolation("the benchmark must run on battery power")

    def loadgen_settings(self, scenario, mode) -> TestSettings:
        return TestSettings(
            scenario=scenario,
            mode=mode,
            min_query_count=self.min_query_count,
            min_duration_s=self.min_duration_s,
            offline_sample_count=self.offline_sample_count,
            latency_percentile=self.latency_percentile,
            query_retry_budget=self.query_retry_budget,
            query_drop_budget=self.query_drop_budget,
        )


DEFAULT_RULES = RunRules()

# reduced-scale rules for tests/examples: same code paths, less virtual load
QUICK_RULES = RunRules(
    min_query_count=128,
    min_duration_s=5.0,
    offline_sample_count=2048,
    cooldown_s=30.0,
)
