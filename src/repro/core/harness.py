"""The benchmark harness: runs the suite under the run rules.

Drives both modes per task in the prescribed order (accuracy over the full
validation set first, then performance; paper §6.1), with cooldown intervals
between tests. Reference artifacts (scaled models, datasets, quantized
variants, full-size compiled graphs) are built once and cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..backends.base import Backend
from ..backends.vendors import create_backend, default_backend_for
from ..datasets.registry import create_dataset
from ..graph.converter import export_mobile
from ..graph.graph import Graph
from ..hardware.device import SimulatedDevice
from ..hardware.soc import get_soc
from ..kernels.numerics import Numerics
from ..loadgen.logging import LoadGenLog
from ..loadgen.qsl import QuerySampleLibrary
from ..loadgen.scenarios import LoadGenerator, Mode, Scenario
from ..loadgen.sut import AccuracySUT, PerformanceSUT
from ..models.common import ModelBundle
from ..models.zoo import create_full_model, create_reference_model
from ..quantization.ptq import calibrate, convert_fp16, quantize_graph
from .results import BenchmarkResult, SuiteResult
from .rules import DEFAULT_RULES, RunRules
from .tasks import FULL_TASK_ORDER, TaskSpec, get_task, tasks_for_version

__all__ = ["ReferenceArtifacts", "BenchmarkHarness"]


@dataclass
class ReferenceArtifacts:
    """Everything accuracy mode needs for one task."""

    bundle: ModelBundle
    fp32_graph: Graph  # exported (frozen) reference
    dataset: object
    quantized: dict[Numerics, Graph] = field(default_factory=dict)
    fp32_accuracy: dict[str, float] | None = None


class BenchmarkHarness:
    def __init__(
        self,
        version: str = "v1.0",
        rules: RunRules = DEFAULT_RULES,
        ambient_c: float = 22.0,
        dataset_sizes: dict[str, int] | None = None,
        seed: int = 0,
        observer: str = "moving_average",
        accuracy_batch_size: int = 32,
        accuracy_workers: int = 1,
    ):
        rules.validate_conditions(ambient_c)
        self.version = version
        self.rules = rules
        self.ambient_c = ambient_c
        self.dataset_sizes = dataset_sizes or {}
        self.seed = seed
        self.observer = observer
        # harness-throughput knobs (not run rules): how many samples accuracy
        # mode packs per planned execution, and how many worker threads the
        # accuracy SUT fans each batch out to
        self.accuracy_batch_size = accuracy_batch_size
        self.accuracy_workers = accuracy_workers
        self._artifacts: dict[str, ReferenceArtifacts] = {}
        self._full_graphs: dict[str, Graph] = {}

    # -- artifact construction ----------------------------------------------
    def model_for(self, task: str) -> str:
        model = get_task(task).models.get(self.version)
        if model is None:
            raise KeyError(f"task {task!r} is not part of {self.version}")
        return model

    def artifacts(self, task: str) -> ReferenceArtifacts:
        if task not in self._artifacts:
            model_name = self.model_for(task)
            bundle = create_reference_model(model_name, seed=self.seed or None)
            fp32 = export_mobile(bundle.graph)
            spec = get_task(task)
            size = self.dataset_sizes.get(spec.dataset)
            dataset = create_dataset(spec.dataset, fp32, bundle.config, size=size)
            self._artifacts[task] = ReferenceArtifacts(bundle, fp32, dataset)
        return self._artifacts[task]

    def deployment_graph(self, task: str, numerics: Numerics) -> Graph:
        """The rules-compliant deployment model at the requested numerics."""
        art = self.artifacts(task)
        if numerics == Numerics.FP32:
            return art.fp32_graph
        if numerics not in art.quantized:
            if numerics == Numerics.FP16:
                art.quantized[numerics] = convert_fp16(art.fp32_graph)
            else:
                stats = calibrate(
                    art.fp32_graph, art.dataset.calibration_batches(),
                    observer=self.observer,
                )
                art.quantized[numerics] = quantize_graph(art.fp32_graph, stats, numerics)
        return art.quantized[numerics]

    def full_graph(self, task: str) -> Graph:
        model_name = self.model_for(task)
        if model_name not in self._full_graphs:
            self._full_graphs[model_name] = export_mobile(
                create_full_model(model_name).graph
            )
        return self._full_graphs[model_name]

    # -- individual runs ------------------------------------------------------
    def run_accuracy(self, task: str, numerics: Numerics) -> LoadGenLog:
        """Accuracy mode: the whole validation set through the real executor."""
        art = self.artifacts(task)
        graph = self.deployment_graph(task, numerics)
        sut = AccuracySUT(
            graph, art.dataset, name=f"accuracy/{graph.name}", workers=self.accuracy_workers
        )
        settings = replace(
            self.rules.loadgen_settings(Scenario.SINGLE_STREAM, Mode.ACCURACY),
            accuracy_batch_size=self.accuracy_batch_size,
        )
        try:
            log = LoadGenerator(settings).run(
                sut, QuerySampleLibrary(art.dataset),
                task=task, model_name=self.model_for(task),
            )
        finally:
            sut.close()
        return log

    def fp32_accuracy(self, task: str) -> dict[str, float]:
        art = self.artifacts(task)
        if art.fp32_accuracy is None:
            art.fp32_accuracy = self.run_accuracy(task, Numerics.FP32).accuracy
        return art.fp32_accuracy

    def run_performance(
        self, task: str, backend: Backend, device: SimulatedDevice
    ) -> LoadGenLog:
        graph = self.full_graph(task)
        compiled = backend.compile_single_stream(graph, task)
        sut = PerformanceSUT(device, compiled, name=f"perf/{backend.soc.name}/{backend.name}")
        settings = self.rules.loadgen_settings(Scenario.SINGLE_STREAM, Mode.PERFORMANCE)
        art = self.artifacts(task)
        return LoadGenerator(settings).run(
            sut, QuerySampleLibrary(art.dataset, settings.performance_sample_count),
            task=task, model_name=self.model_for(task),
        )

    def run_offline(
        self, task: str, backend: Backend, device: SimulatedDevice
    ) -> LoadGenLog:
        graph = self.full_graph(task)
        compiled = backend.compile_single_stream(graph, task)
        pipelines = backend.compile_offline(graph, task)
        sut = PerformanceSUT(device, compiled, pipelines,
                             name=f"offline/{backend.soc.name}/{backend.name}")
        settings = self.rules.loadgen_settings(Scenario.OFFLINE, Mode.PERFORMANCE)
        art = self.artifacts(task)
        return LoadGenerator(settings).run(
            sut, QuerySampleLibrary(art.dataset, settings.performance_sample_count),
            task=task, model_name=self.model_for(task),
        )

    # -- the suite ------------------------------------------------------------
    def run_suite(
        self,
        soc_name: str,
        backend_name: str | None = None,
        tasks: list[str] | None = None,
        include_offline: bool = True,
    ) -> SuiteResult:
        """Run the full benchmark the way the app's "Go" button does."""
        soc = get_soc(soc_name)
        backend = (
            create_backend(backend_name, soc) if backend_name else default_backend_for(soc)
        )
        device = SimulatedDevice(soc, ambient_c=self.ambient_c)
        selected = tasks or [t.name for t in tasks_for_version(self.version)]
        suite = SuiteResult(soc_name, backend.name, self.version)
        for task in FULL_TASK_ORDER:
            if task not in selected:
                continue
            try:
                suite.results.append(
                    self._run_task(task, backend, device, soc_name, include_offline)
                )
            except Exception as exc:  # degrade, don't crash mid-suite
                def _safe(fn, default=""):
                    try:
                        return fn()
                    except Exception:
                        return default

                suite.results.append(
                    BenchmarkResult(
                        task=task,
                        version=self.version,
                        model_name=_safe(lambda: self.model_for(task)),
                        soc_name=soc_name,
                        backend_name=backend.name,
                        execution_config=_safe(lambda: backend.describe(task)),
                        numerics=_safe(
                            lambda: backend.task_execution(task).numerics.value
                        ),
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
        return suite

    def _run_task(
        self,
        task: str,
        backend: Backend,
        device: SimulatedDevice,
        soc_name: str,
        include_offline: bool,
    ) -> BenchmarkResult:
        spec = get_task(task)
        exec_cfg = backend.task_execution(task)
        numerics = exec_cfg.numerics

        fp32_acc = self.fp32_accuracy(task)
        acc_log = self.run_accuracy(task, numerics)
        target = spec.quality_ratio[self.version] * fp32_acc[spec.metric]
        passed = acc_log.accuracy.get(spec.metric, 0.0) >= target

        perf_log = self.run_performance(task, backend, device)
        device.cooldown(self.rules.cooldown_s)

        result = BenchmarkResult(
            task=task,
            version=self.version,
            model_name=self.model_for(task),
            soc_name=soc_name,
            backend_name=backend.name,
            execution_config=backend.describe(task),
            numerics=numerics.value,
            accuracy=acc_log.accuracy,
            fp32_accuracy=fp32_acc,
            metric=spec.metric,
            quality_target=target,
            quality_passed=passed,
            latency_p90_ms=perf_log.percentile_latency(self.rules.latency_percentile) * 1e3,
            latency_mean_ms=float(perf_log.latencies().mean()) * 1e3,
            throughput_fps=perf_log.throughput_fps(),
            energy_per_query_mj=(
                device.total_energy_joules / max(perf_log.query_count, 1) * 1e3
            ),
            accuracy_log=acc_log,
            performance_log=perf_log,
        )
        if include_offline and spec.offline_scenario:
            off_log = self.run_offline(task, backend, device)
            if off_log.offline_seconds > 0:
                result.offline_fps = off_log.throughput_fps()
            result.offline_log = off_log
            device.cooldown(self.rules.cooldown_s)
        return result
