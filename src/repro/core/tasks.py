"""The benchmark-suite registry (paper Table 1).

Each task names its reference model per benchmark version, its data set, its
quality metric and the minimum-quality ratio relative to measured FP32
accuracy. The ratio-based gate is exactly the paper's rule ("98% of FP32"),
so it transfers unchanged onto the scaled reference models.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TaskSpec", "TASKS", "TASK_ORDER", "FULL_TASK_ORDER",
           "tasks_for_version", "get_task"]


@dataclass(frozen=True)
class TaskSpec:
    name: str
    area: str  # "Vision" | "Language"
    display_name: str
    dataset: str
    metric: str
    # model per benchmark version; None = task absent from that round
    models: dict[str, str | None]
    # minimum fraction of measured FP32 quality per version (Table 1)
    quality_ratio: dict[str, float]
    # paper-reported FP32 reference quality (for EXPERIMENTS.md comparison)
    paper_fp32_quality: dict[str, float]
    offline_scenario: bool = False  # paper: offline applies to classification


TASKS: dict[str, TaskSpec] = {
    "image_classification": TaskSpec(
        name="image_classification",
        area="Vision",
        display_name="Image classification",
        dataset="imagenet",
        metric="top1",
        models={"v0.7": "mobilenet_edgetpu", "v1.0": "mobilenet_edgetpu"},
        quality_ratio={"v0.7": 0.98, "v1.0": 0.98},
        paper_fp32_quality={"v0.7": 76.19, "v1.0": 76.19},
        offline_scenario=True,
    ),
    "object_detection": TaskSpec(
        name="object_detection",
        area="Vision",
        display_name="Object detection",
        dataset="coco",
        metric="mAP",
        models={"v0.7": "ssd_mobilenet_v2", "v1.0": "mobiledet_ssd"},
        quality_ratio={"v0.7": 0.93, "v1.0": 0.95},
        paper_fp32_quality={"v0.7": 24.4, "v1.0": 30.0},
    ),
    "semantic_segmentation": TaskSpec(
        name="semantic_segmentation",
        area="Vision",
        display_name="Semantic segmentation",
        dataset="ade20k",
        metric="mIoU",
        models={"v0.7": "deeplab_v3plus", "v1.0": "deeplab_v3plus"},
        quality_ratio={"v0.7": 0.97, "v1.0": 0.97},
        paper_fp32_quality={"v0.7": 56.49, "v1.0": 56.49},
    ),
    "question_answering": TaskSpec(
        name="question_answering",
        area="Language",
        display_name="Question answering",
        dataset="squad",
        metric="f1",
        models={"v0.7": "mobilebert", "v1.0": "mobilebert"},
        quality_ratio={"v0.7": 0.93, "v1.0": 0.93},
        paper_fp32_quality={"v0.7": 93.98, "v1.0": 93.98},
    ),
}

# Appendix E future-work tasks, implemented and registered as experimental:
# they never appear in the v0.7/v1.0 suites but run through the identical
# harness/LoadGen/quality-gate machinery under version="experimental".
TASKS["speech_recognition"] = TaskSpec(
    name="speech_recognition",
    area="Language",
    display_name="Speech recognition (experimental)",
    dataset="speech",
    metric="token_accuracy",
    models={"experimental": "mobile_streaming_asr"},
    quality_ratio={"experimental": 0.90},
    paper_fp32_quality={},
)
TASKS["super_resolution"] = TaskSpec(
    name="super_resolution",
    area="Vision",
    display_name="Super resolution (experimental)",
    dataset="superres",
    metric="psnr",
    models={"experimental": "mobile_edge_sr"},
    quality_ratio={"experimental": 0.90},
    paper_fp32_quality={},
)

# the app runs the models in a specific order (paper §6.1). TASK_ORDER is
# the published Table-1 suite; FULL_TASK_ORDER appends the experimental
# App. E tasks (only reachable under version="experimental").
TASK_ORDER = [
    "image_classification",
    "object_detection",
    "semantic_segmentation",
    "question_answering",
]
FULL_TASK_ORDER = TASK_ORDER + [
    "super_resolution",
    "speech_recognition",
]


def tasks_for_version(version: str) -> list[TaskSpec]:
    return [TASKS[t] for t in FULL_TASK_ORDER if TASKS[t].models.get(version)]


def get_task(name: str) -> TaskSpec:
    if name not in TASKS:
        raise KeyError(f"unknown task {name!r}; available: {TASK_ORDER}")
    return TASKS[name]
