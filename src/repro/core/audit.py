"""Independent result audit (paper §6.2).

The auditor rebuilds the vendor app from the submitted configuration,
installs it on a factory-reset device, reruns the benchmark, and accepts
the submission if the reproduced numbers land within 5% of the submitted
scores. Accuracy is reproduced exactly (deterministic pipeline); latency and
throughput tolerate the 5% band.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .harness import BenchmarkHarness
from .results import SuiteResult
from .submission import Submission, check_submission

__all__ = ["AuditFinding", "AuditReport", "audit_submission"]


@dataclass(frozen=True)
class AuditFinding:
    task: str
    quantity: str
    submitted: float
    reproduced: float
    relative_error: float
    within_tolerance: bool


@dataclass
class AuditReport:
    submission_ok: bool
    checker_problems: list[str]
    findings: list[AuditFinding] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return self.submission_ok and all(f.within_tolerance for f in self.findings)

    def summary(self) -> str:
        status = "VALID" if self.passed else "REJECTED"
        lines = [f"audit result: {status}"]
        lines += [f"  checker: {p}" for p in self.checker_problems]
        for f in self.findings:
            flag = "ok" if f.within_tolerance else "OUT OF TOLERANCE"
            lines.append(
                f"  {f.task}/{f.quantity}: submitted {f.submitted:.3f} vs "
                f"reproduced {f.reproduced:.3f} ({f.relative_error * 100:.2f}%) {flag}"
            )
        return "\n".join(lines)


def _compare(task: str, quantity: str, submitted: float, reproduced: float,
             tolerance: float) -> AuditFinding:
    denom = max(abs(submitted), 1e-12)
    rel = abs(submitted - reproduced) / denom
    return AuditFinding(task, quantity, submitted, reproduced, rel, rel <= tolerance)


def audit_submission(
    submission: Submission,
    harness: BenchmarkHarness,
    *,
    tolerance: float | None = None,
) -> AuditReport:
    """Rerun the submitted configuration and verify the scores.

    The auditor works from the submission *package*, not live objects: every
    log is round-tripped through its serialized form and validated as
    deserialized JSON, exactly like a bundle received on disk, before the
    reproduction run is compared against the claimed numbers.
    """
    tolerance = tolerance if tolerance is not None else harness.rules.audit_tolerance
    # check_submission round-trips every log through validate_serialized, so
    # the checker problems already cover edited summaries / schema corruption
    problems = list(check_submission(submission))
    report = AuditReport(submission_ok=not problems, checker_problems=problems)

    # rebuild + rerun on a fresh (factory-reset) simulated device
    reproduced: SuiteResult = harness.run_suite(
        submission.system.soc_name,
        backend_name=submission.suite.backend_name,
        tasks=[r.task for r in submission.suite.results],
        include_offline=any(r.offline_fps for r in submission.suite.results),
    )
    for sub_r in submission.suite.results:
        if sub_r.error:
            continue  # flagged by the checker; nothing to reproduce
        rep_r = reproduced.result_for(sub_r.task)
        report.findings.append(
            _compare(sub_r.task, "quality", sub_r.measured_quality,
                     rep_r.measured_quality, tolerance)
        )
        report.findings.append(
            _compare(sub_r.task, "latency_p90_ms", sub_r.latency_p90_ms,
                     rep_r.latency_p90_ms, tolerance)
        )
        if sub_r.offline_fps:
            report.findings.append(
                _compare(sub_r.task, "offline_fps", sub_r.offline_fps,
                         rep_r.offline_fps, tolerance)
            )
    return report
