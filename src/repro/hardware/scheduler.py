"""Graph partitioning and the compiled execution model.

The scheduler walks a (full-size symbolic) model graph in execution order and
assigns every op to the backend's primary accelerator when it is supported
there, falling back to the CPU otherwise. Contiguous runs form *segments*;
each segment boundary costs a framework synchronization plus an inter-IP
tensor transfer over the SoC interconnect — the mechanism behind the paper's
Table 3 (NNAPI vs Neuron) and the Exynos 990 -> 2100 segmentation uplift.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.arena import graph_arena_bytes
from ..graph.graph import Graph
from ..kernels.numerics import Numerics
from .accelerator import AcceleratorSpec
from .soc import SoCSpec

__all__ = ["Segment", "CompiledModel", "partition_graph", "compile_model"]


@dataclass
class Segment:
    """A contiguous run of ops on one accelerator (per-sample costs)."""

    accelerator: AcceleratorSpec
    op_names: list[str]
    macs: float
    weight_bytes: float
    activation_bytes: float
    boundary_bytes: float  # activation bytes crossing into this segment

    @property
    def num_ops(self) -> int:
        return len(self.op_names)

    def compute_seconds(self, numerics: Numerics, tops_derate: float = 1.0) -> float:
        tops = self.accelerator.effective_tops[numerics] * tops_derate
        return (2.0 * self.macs) / (tops * 1e12)

    def memory_seconds(self, batch: int = 1) -> float:
        return (self.activation_bytes * batch + self.weight_bytes) / (
            self.accelerator.memory_gbps * 1e9
        )


@dataclass(frozen=True)
class FrameworkProfile:
    """How a runtime framework layers cost on top of raw hardware time.

    ``per_boundary_ms`` models the HAL synchronization the paper attributes
    to NNAPI (§7.1, Table 3); vendor SDKs keep it near zero. ``tops_derate``
    models incomplete hardware enablement (e.g. single- vs multi-MDLA).
    """

    name: str
    per_inference_ms: float = 0.0
    per_boundary_ms: float = 0.0
    tops_derate: float = 1.0
    # ops this runtime's driver cannot place on the primary engine even when
    # the hardware could run them (buggy/missing op support, paper App. D)
    unsupported_ops: frozenset[str] = frozenset()


def _effective_numerics(acc: AcceleratorSpec, numerics: Numerics) -> Numerics | None:
    """The format this accelerator would run the model in, or None."""
    if acc.supports(numerics):
        return numerics
    if numerics == Numerics.FP32 and acc.supports(Numerics.FP16):
        return None  # no silent down-conversion: FP32 models stay off NPUs
    return None


_FIXED_FUNCTION_KINDS = {"npu", "apu", "dsp", "hta", "hvx", "ane"}


def _op_runs_on(op, acc: AcceleratorSpec, excluded: frozenset[str]) -> bool:
    if op.op_type in excluded and acc.kind in _FIXED_FUNCTION_KINDS:
        return False
    if op.op_type not in acc.supported_ops():
        return False
    # dilated (atrous) convolutions are a classic fixed-function gap
    if acc.kind in _FIXED_FUNCTION_KINDS and op.attrs.get("dilation", 1) > 1:
        return False
    return True


def partition_graph(
    graph: Graph,
    primary: AcceleratorSpec,
    fallback: AcceleratorSpec,
    numerics: Numerics,
    secondary: AcceleratorSpec | None = None,
    excluded_ops: frozenset[str] = frozenset(),
) -> list[Segment]:
    """Assign ops to primary (then secondary, then fallback) and group runs."""
    segments: list[Segment] = []
    current: Segment | None = None
    primary_ok = _effective_numerics(primary, numerics) is not None
    secondary_ok = secondary is not None and (
        secondary.supports(numerics) or secondary.supports(Numerics.FP16)
    )
    for op, cost in graph.op_costs(numerics):
        if op.op_type == "batch_norm":
            raise ValueError("compile exported graphs: batch norms must be folded")
        if primary_ok and _op_runs_on(op, primary, excluded_ops):
            target = primary
        elif secondary_ok and _op_runs_on(op, secondary, excluded_ops):
            target = secondary
        else:
            target = fallback
        in_bytes = sum(
            graph.spec(t).elements_per_sample * numerics.bytes_per_element
            for t in op.inputs
        )
        if current is None or current.accelerator is not target:
            current = Segment(target, [], 0.0, 0.0, 0.0, boundary_bytes=in_bytes)
            segments.append(current)
        current.op_names.append(op.name)
        current.macs += cost.macs
        current.weight_bytes += cost.weight_bytes
        current.activation_bytes += cost.activation_bytes
    return segments


@dataclass
class CompiledModel:
    """A model scheduled onto an SoC under one backend configuration."""

    model_name: str
    task: str
    soc: SoCSpec
    numerics: Numerics
    segments: list[Segment]
    framework: FrameworkProfile
    postprocess_cpu_ops: float = 0.0  # e.g. NMS — part of the "AI tax"
    # pre-processing (resize/crop/normalize/feature extraction) runs on the
    # CPU outside the benchmark's timed region by default (paper §7.2: "pre-
    # and post-processing and other tasks the benchmark does not measure");
    # end-to-end mode (App. E) adds it to the measured latency
    preprocess_cpu_ops: float = 0.0
    # planned activation working set per sample (arena planner, repro.graph
    # .arena); 0.0 means unknown and the naive every-tensor-resident sum of
    # segment activation bytes is used instead
    arena_bytes_per_sample: float = 0.0

    @property
    def num_boundaries(self) -> int:
        return max(len(self.segments) - 1, 0)

    def accelerators(self) -> list[AcceleratorSpec]:
        seen: dict[str, AcceleratorSpec] = {}
        for seg in self.segments:
            seen[seg.accelerator.name] = seg.accelerator
        return list(seen.values())

    def latency_seconds(
        self,
        clock_scale: dict[str, float] | None = None,
        batch: int = 1,
    ) -> float:
        """End-to-end latency for one query of ``batch`` samples."""
        clock_scale = clock_scale or {}
        total = self.framework.per_inference_ms * 1e-3
        for i, seg in enumerate(self.segments):
            scale = clock_scale.get(seg.accelerator.name, 1.0)
            compute = seg.compute_seconds(self.numerics, self.framework.tops_derate) * batch
            mem = seg.memory_seconds(batch)
            # dispatch and per-op fill costs are clocked logic: they derate
            # with the engine clock just like the MACs do
            overhead = (seg.accelerator.dispatch_overhead_us
                        + seg.num_ops * seg.accelerator.per_op_overhead_us) * 1e-6
            total += max(compute / scale, mem) + overhead / scale
            if i > 0:
                # every hop pays the runtime's HAL synchronization; hops
                # between two non-CPU engines additionally pay the SoC
                # IP-block sync and the interconnect transfer (the Exynos
                # 990 -> 2100 software story, paper §7.1)
                total += self.framework.per_boundary_ms * 1e-3
                prev = self.segments[i - 1].accelerator
                if prev.kind != "cpu" and seg.accelerator.kind != "cpu":
                    total += self.soc.segment_sync_ms * 1e-3
                    total += seg.boundary_bytes * batch / (self.soc.interconnect_gbps * 1e9)
        extra_cpu_ops = self.postprocess_cpu_ops + self.preprocess_cpu_ops
        if extra_cpu_ops:
            cpu = self.soc.accelerator("cpu")
            total += batch * extra_cpu_ops / (
                cpu.effective_tops[Numerics.FP32] * 1e12
            )
        return total

    def busy_seconds(
        self, clock_scale: dict[str, float] | None = None, batch: int = 1
    ) -> dict[str, float]:
        """Per-accelerator active time for one query (power accounting)."""
        clock_scale = clock_scale or {}
        busy: dict[str, float] = {}
        for seg in self.segments:
            scale = clock_scale.get(seg.accelerator.name, 1.0)
            compute = seg.compute_seconds(self.numerics, self.framework.tops_derate) * batch
            t = max(compute / scale, seg.memory_seconds(batch))
            busy[seg.accelerator.name] = busy.get(seg.accelerator.name, 0.0) + t
        return busy


def offline_throughput(
    pipelines: list["CompiledModel"],
    batch: int = 256,
    dram_gbps: float | None = None,
) -> float:
    """Aggregate samples/s of concurrent ALP pipelines, DRAM-ceiling capped.

    Each pipeline runs the whole graph on its own engine; their throughputs
    add until the shared DRAM interface saturates (the reason offline FPS on
    phones lands far below naive per-engine sums). The per-sample DRAM
    traffic is the arena-planned working set when the compile recorded one
    (a runtime reusing buffers re-touches far fewer unique bytes), falling
    back to the naive every-tensor sum otherwise.
    """
    if not pipelines:
        raise ValueError("need at least one pipeline")
    total = sum(batch / p.latency_seconds(batch=batch) for p in pipelines)
    if dram_gbps is None:
        dram_gbps = pipelines[0].soc.dram_gbps
    bytes_per_sample = pipelines[0].arena_bytes_per_sample or sum(
        seg.activation_bytes for seg in pipelines[0].segments
    )
    cap = dram_gbps * 1e9 / max(bytes_per_sample, 1.0)
    return min(total, cap)


def compile_model(
    graph: Graph,
    soc: SoCSpec,
    *,
    primary: str,
    numerics: Numerics,
    framework: FrameworkProfile,
    secondary: str | None = None,
    postprocess_cpu_ops: float = 0.0,
    preprocess_cpu_ops: float = 0.0,
) -> CompiledModel:
    """Partition ``graph`` onto ``soc`` with CPU fallback."""
    primary_acc = soc.accelerator(primary)
    fallback = soc.accelerator("cpu")
    secondary_acc = soc.accelerator(secondary) if secondary else None
    segments = partition_graph(
        graph, primary_acc, fallback, numerics, secondary_acc, framework.unsupported_ops
    )
    arena = graph_arena_bytes(graph, numerics)
    return CompiledModel(
        model_name=graph.name,
        task=str(graph.metadata.get("task", "unknown")),
        soc=soc,
        numerics=numerics,
        segments=segments,
        framework=framework,
        postprocess_cpu_ops=postprocess_cpu_ops,
        preprocess_cpu_ops=preprocess_cpu_ops,
        arena_bytes_per_sample=float(arena["planned_bytes"]),
    )
