"""First-order RC thermal model with clock throttling (run rules §6.1).

Die temperature follows dT/dt = (P - (T - T_amb)/R) / C. Above the throttle
threshold the clock derates linearly, which is what stretches the tail of the
single-stream latency distribution — the reason the benchmark mandates the
90th percentile, cooldown intervals and a 20-25 degC room.
"""

from __future__ import annotations

from dataclasses import dataclass

from .soc import SoCSpec

__all__ = ["ThermalModel"]


@dataclass
class ThermalModel:
    soc: SoCSpec
    ambient_c: float = 22.0
    temperature_c: float = 22.0
    min_clock_scale: float = 0.55

    def __post_init__(self) -> None:
        if not 15.0 <= self.ambient_c <= 35.0:
            raise ValueError("ambient temperature out of plausible range")
        self.temperature_c = max(self.temperature_c, self.ambient_c)

    def clock_scale(self) -> float:
        """Current frequency derate in (min_clock_scale, 1]."""
        over = self.temperature_c - self.soc.throttle_temp
        if over <= 0:
            return 1.0
        return max(self.min_clock_scale, 1.0 - self.soc.throttle_slope * over)

    def advance(self, seconds: float, power_watts: float) -> None:
        """Integrate the RC model over ``seconds`` at constant power."""
        if seconds < 0:
            raise ValueError("time cannot run backwards")
        if seconds == 0:
            return
        r, c = self.soc.thermal_resistance, self.soc.thermal_capacitance
        # exact solution of the linear ODE over the interval
        import math

        t_inf = self.ambient_c + power_watts * r
        decay = math.exp(-seconds / (r * c))
        self.temperature_c = t_inf + (self.temperature_c - t_inf) * decay

    def cooldown(self, seconds: float) -> None:
        """Idle cooling (the app's 0-5 minute break setting)."""
        self.advance(seconds, power_watts=0.0)

    def reset(self) -> None:
        self.temperature_c = self.ambient_c
