"""Mobile-SoC hardware simulation: accelerators, scheduling, thermal, power."""

from .accelerator import OP_SUPPORT, AcceleratorSpec
from .device import QueryResult, SimulatedDevice
from .power import PowerModel, QueryEnergy
from .scheduler import CompiledModel, FrameworkProfile, Segment, compile_model, partition_graph
from .soc import GENERATION_PAIRS, SOC_CATALOG, SoCSpec, get_soc
from .thermal import ThermalModel

__all__ = [
    "AcceleratorSpec",
    "OP_SUPPORT",
    "SoCSpec",
    "SOC_CATALOG",
    "GENERATION_PAIRS",
    "get_soc",
    "Segment",
    "CompiledModel",
    "FrameworkProfile",
    "partition_graph",
    "compile_model",
    "ThermalModel",
    "PowerModel",
    "QueryEnergy",
    "SimulatedDevice",
    "QueryResult",
]
