"""Accelerator performance models.

Each accelerator is a roofline: sustained compute rate per numeric format
plus a memory-bandwidth bound, with a per-partition dispatch overhead. The
catalog values are calibrated from the paper's Appendix C (published TOPS,
core counts, generational claims) so the benchmark reproduces the *shape*
of the v0.7/v1.0 results; see DESIGN.md §1 on wall-clock fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..kernels.numerics import Numerics

__all__ = ["AcceleratorSpec", "OP_SUPPORT"]


# Which graph op types each accelerator class can execute natively.
# Unsupported ops fall back to the CPU, splitting the graph into segments —
# the mechanism behind framework overhead differences (paper Table 3) and
# why NLP avoids fixed-function NPUs (paper Insight 5).
# note: bilinear resize is deliberately absent from fixed-function engines —
# a common real-world gap that fragments DeepLab-style graphs into segments
_NPU_OPS = {
    "conv2d", "depthwise_conv2d", "fully_connected", "avg_pool2d", "max_pool2d",
    "global_avg_pool", "add", "concat", "activation", "reshape", "depth_to_space",
    "constant", "pad",
}
_DSP_OPS = set(_NPU_OPS)
_GPU_OPS = _NPU_OPS | {"softmax", "layer_norm", "attention", "embedding", "split",
                       "batch_norm", "lstm"}
_CPU_OPS = _GPU_OPS  # the CPU runs everything (it is also the fallback target)

OP_SUPPORT: dict[str, set[str]] = {
    "cpu": set(_CPU_OPS),
    "gpu": set(_GPU_OPS),
    "npu": set(_NPU_OPS),
    "dsp": set(_DSP_OPS),
    "apu": set(_NPU_OPS),
    "hta": set(_DSP_OPS),
    "hvx": set(_DSP_OPS),
    # Apple Neural Engine: fixed-function but with resize support
    "ane": set(_NPU_OPS) | {"resize_bilinear"},
}


@dataclass(frozen=True)
class AcceleratorSpec:
    """One processing engine inside an SoC.

    ``effective_tops`` maps numeric format -> sustained tera-ops/s (already
    derated from marketing peak). A missing format means the engine cannot
    execute it at all and the scheduler must place such ops elsewhere.
    """

    name: str
    kind: str  # key into OP_SUPPORT
    effective_tops: dict[Numerics, float]
    memory_gbps: float
    dispatch_overhead_us: float
    tdp_watts: float
    idle_watts: float = 0.05
    # fixed launch/fill cost per operator: small layers cannot saturate wide
    # engines, which is why op-heavy detection graphs run far below peak
    per_op_overhead_us: float = 8.0

    def __post_init__(self) -> None:
        if self.kind not in OP_SUPPORT:
            raise ValueError(f"unknown accelerator kind {self.kind!r}")
        if not self.effective_tops:
            raise ValueError(f"{self.name}: needs at least one numeric format")

    def supports(self, numerics: Numerics) -> bool:
        return numerics in self.effective_tops

    def supported_ops(self) -> set[str]:
        return OP_SUPPORT[self.kind]

    def compute_seconds(self, macs: float, numerics: Numerics) -> float:
        """Time to execute ``macs`` multiply-accumulates (2 ops each)."""
        tops = self.effective_tops.get(numerics)
        if tops is None:
            raise ValueError(f"{self.name} does not support {numerics}")
        return (2.0 * macs) / (tops * 1e12)

    def memory_seconds(self, num_bytes: float) -> float:
        return num_bytes / (self.memory_gbps * 1e9)
