"""The simulated device: an SoC plus mutable thermal/power state.

This object is what performance-mode SUTs wrap. Each query advances virtual
time, heats the die, and returns (latency, energy); sustained load therefore
drifts latencies upward exactly the way the run rules anticipate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .power import PowerModel, QueryEnergy
from .scheduler import CompiledModel
from .soc import SoCSpec
from .thermal import ThermalModel

__all__ = ["QueryResult", "SimulatedDevice"]


@dataclass(frozen=True)
class QueryResult:
    latency_seconds: float
    energy: QueryEnergy
    temperature_c: float
    clock_scale: float


class SimulatedDevice:
    """One physical device under test (factory-reset between runs)."""

    def __init__(self, soc: SoCSpec, ambient_c: float = 22.0):
        self.soc = soc
        self.thermal = ThermalModel(soc, ambient_c=ambient_c)
        self.power = PowerModel(soc)
        self.virtual_time = 0.0
        self.total_energy_joules = 0.0

    def run_query(self, compiled: CompiledModel, batch: int = 1) -> QueryResult:
        """Execute one query on the performance model, mutating device state."""
        scale = self.thermal.clock_scale()
        scales = {a.name: scale for a in self.soc.accelerators}
        latency = compiled.latency_seconds(scales, batch)
        energy = self.power.query_energy(compiled, latency, scales, batch)
        self.thermal.advance(latency, energy.average_watts)
        self.virtual_time += latency
        self.total_energy_joules += energy.energy_joules
        return QueryResult(latency, energy, self.thermal.temperature_c, scale)

    def cooldown(self, seconds: float) -> None:
        self.thermal.cooldown(seconds)
        self.virtual_time += seconds

    def reset(self) -> None:
        """Factory-reset analogue used by the audit process."""
        self.thermal.reset()
        self.virtual_time = 0.0
        self.total_energy_joules = 0.0
