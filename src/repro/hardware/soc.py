"""SoC catalog: the commercial chipsets of the v0.7 and v1.0 rounds.

Specs are transcribed/derived from the paper's Appendix C (TOPS claims, core
counts, process node, generational deltas) and calibrated so the simulated
benchmark reproduces the published result *shapes*: Figure 7 orderings
(Dimensity wins detection/segmentation, Exynos wins classification/NLP),
the Table 2 offline anchors (Exynos 674.4 FPS vs Snapdragon 605.37 FPS),
Table 3's delegate gaps, and Figure 6's ~2x generational uplift with the
Exynos segmentation outlier. Absolute wall-clock fidelity is a non-goal
(DESIGN.md §1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kernels.numerics import Numerics
from .accelerator import AcceleratorSpec

__all__ = ["SoCSpec", "SOC_CATALOG", "GENERATION_PAIRS", "get_soc"]

FP32, FP16, INT8, UINT8 = Numerics.FP32, Numerics.FP16, Numerics.INT8, Numerics.UINT8


@dataclass(frozen=True)
class SoCSpec:
    name: str
    vendor: str
    form_factor: str  # "smartphone" | "laptop"
    benchmark_version: str  # submission round this SoC appeared in
    accelerators: tuple[AcceleratorSpec, ...]
    process_node_nm: int
    dram_gbps: float = 12.0  # sustained shared-DRAM bandwidth (offline ceiling)
    interconnect_gbps: float = 5.0  # inter-IP-block transfer bandwidth
    segment_sync_ms: float = 0.5  # cost of an accelerator-to-accelerator hop
    tdp_watts: float = 3.0  # paper App. E: smartphone chipsets cap near 3 W
    # RC thermal model parameters
    thermal_resistance: float = 7.7  # degC per watt (whole-phone, to skin)
    thermal_capacitance: float = 3.0  # joules per degC (phones heat in ~1 min)
    throttle_temp: float = 36.0  # smartphones are skin-temperature limited
    throttle_slope: float = 0.03  # clock derate per degC above threshold

    def accelerator(self, name: str) -> AcceleratorSpec:
        for acc in self.accelerators:
            if acc.name == name:
                return acc
        raise KeyError(f"{self.name} has no accelerator {name!r}")

    def accelerators_of_kind(self, kind: str) -> list[AcceleratorSpec]:
        return [a for a in self.accelerators if a.kind == kind]


def _int8(v: float, fp16_ratio: float = 0.5) -> dict[Numerics, float]:
    return {INT8: v, UINT8: v, FP16: v * fp16_ratio}


SOC_CATALOG: dict[str, SoCSpec] = {
    # ------------------------------------------------------------- Samsung
    "exynos_990": SoCSpec(
        name="exynos_990", vendor="samsung", form_factor="smartphone",
        benchmark_version="v0.7", process_node_nm=7,
        accelerators=(
            AcceleratorSpec("cpu", "cpu",
                            {FP32: 0.08, FP16: 0.16, INT8: 0.30, UINT8: 0.30},
                            memory_gbps=18.0, dispatch_overhead_us=5.0,
                            tdp_watts=2.0, per_op_overhead_us=3.0),
            AcceleratorSpec("gpu", "gpu",  # Mali-G77 MP11: strong FP16
                            {FP32: 0.60, FP16: 1.30, INT8: 1.35, UINT8: 1.35},
                            memory_gbps=22.0, dispatch_overhead_us=60.0,
                            tdp_watts=2.2, per_op_overhead_us=15.0),
            AcceleratorSpec("npu", "npu",  # dual-core NPU
                            _int8(1.75), memory_gbps=12.0,
                            dispatch_overhead_us=45.0, tdp_watts=1.6,
                            per_op_overhead_us=18.0),
        ),
        # slow inter-IP transfers: the bottleneck the 2100 fixed (paper §7.1)
        dram_gbps=13.1, interconnect_gbps=0.2, segment_sync_ms=12.0,
    ),
    "exynos_2100": SoCSpec(
        name="exynos_2100", vendor="samsung", form_factor="smartphone",
        benchmark_version="v1.0", process_node_nm=5,
        accelerators=(
            AcceleratorSpec("cpu", "cpu",
                            {FP32: 0.11, FP16: 0.22, INT8: 0.40, UINT8: 0.40},
                            memory_gbps=24.0, dispatch_overhead_us=4.0,
                            tdp_watts=2.0, per_op_overhead_us=3.0),
            AcceleratorSpec("gpu", "gpu",  # Mali-G78 MP14 (+40%)
                            {FP32: 0.85, FP16: 1.80, INT8: 1.85, UINT8: 1.85},
                            memory_gbps=28.0, dispatch_overhead_us=50.0,
                            tdp_watts=2.4, per_op_overhead_us=12.0),
            AcceleratorSpec("npu", "npu",  # triple-core NPU + DSP, 5nm EUV
                            _int8(3.6), memory_gbps=20.0,
                            dispatch_overhead_us=30.0, tdp_watts=1.8,
                            per_op_overhead_us=12.0),
        ),
        dram_gbps=28.0, interconnect_gbps=18.0, segment_sync_ms=0.25,
    ),
    # ------------------------------------------------------------ Qualcomm
    "snapdragon_865plus": SoCSpec(
        name="snapdragon_865plus", vendor="qualcomm", form_factor="smartphone",
        benchmark_version="v0.7", process_node_nm=7,
        accelerators=(
            AcceleratorSpec("cpu", "cpu",
                            {FP32: 0.09, FP16: 0.18, INT8: 0.32, UINT8: 0.32},
                            memory_gbps=18.0, dispatch_overhead_us=5.0,
                            tdp_watts=2.0, per_op_overhead_us=3.0),
            AcceleratorSpec("gpu", "gpu",  # Adreno 650
                            {FP32: 0.55, FP16: 1.10, INT8: 1.15, UINT8: 1.15},
                            memory_gbps=25.0, dispatch_overhead_us=55.0,
                            tdp_watts=2.2, per_op_overhead_us=15.0),
            # Hexagon 698: discrete scalar/vector/tensor blocks, 15 TOPS peak
            AcceleratorSpec("hta", "hta", _int8(1.35), memory_gbps=11.0,
                            dispatch_overhead_us=40.0, tdp_watts=1.2,
                            per_op_overhead_us=22.0),
            AcceleratorSpec("hvx", "hvx", _int8(1.05), memory_gbps=9.0,
                            dispatch_overhead_us=40.0, tdp_watts=1.0,
                            per_op_overhead_us=22.0),
        ),
        dram_gbps=11.8, interconnect_gbps=6.0, segment_sync_ms=0.8,
    ),
    "snapdragon_888": SoCSpec(
        name="snapdragon_888", vendor="qualcomm", form_factor="smartphone",
        benchmark_version="v1.0", process_node_nm=5,
        accelerators=(
            AcceleratorSpec("cpu", "cpu",
                            {FP32: 0.11, FP16: 0.22, INT8: 0.38, UINT8: 0.38},
                            memory_gbps=24.0, dispatch_overhead_us=4.0,
                            tdp_watts=2.0, per_op_overhead_us=3.0),
            AcceleratorSpec("gpu", "gpu",  # Adreno 660
                            {FP32: 0.85, FP16: 1.70, INT8: 1.75, UINT8: 1.75},
                            memory_gbps=30.0, dispatch_overhead_us=45.0,
                            tdp_watts=2.4, per_op_overhead_us=12.0),
            # Hexagon 780: fused scalar+vector+tensor monolith, 26 TOPS (+73%)
            AcceleratorSpec("hta", "hta", _int8(2.5), memory_gbps=22.0,
                            dispatch_overhead_us=25.0, tdp_watts=1.6,
                            per_op_overhead_us=12.0),
            AcceleratorSpec("hvx", "hvx", _int8(1.7), memory_gbps=18.0,
                            dispatch_overhead_us=25.0, tdp_watts=1.2,
                            per_op_overhead_us=14.0),
        ),
        dram_gbps=26.0, interconnect_gbps=14.0, segment_sync_ms=0.35,
    ),
    # ------------------------------------------------------------ MediaTek
    "dimensity_820": SoCSpec(
        name="dimensity_820", vendor="mediatek", form_factor="smartphone",
        benchmark_version="v0.7", process_node_nm=7,
        accelerators=(
            AcceleratorSpec("cpu", "cpu",
                            {FP32: 0.08, FP16: 0.16, INT8: 0.28, UINT8: 0.28},
                            memory_gbps=16.0, dispatch_overhead_us=5.0,
                            tdp_watts=1.9, per_op_overhead_us=3.0),
            AcceleratorSpec("gpu", "gpu",  # Mali-G57 MC5
                            {FP32: 0.30, FP16: 0.60, INT8: 0.65, UINT8: 0.65},
                            memory_gbps=18.0, dispatch_overhead_us=60.0,
                            tdp_watts=2.0, per_op_overhead_us=18.0),
            # APU 3.0, single MDLA core; high local SRAM bandwidth (camera-
            # pipeline heritage) is what wins the memory-heavy vision tasks
            AcceleratorSpec("apu", "apu",
                            {INT8: 1.5, UINT8: 1.5, FP16: 0.75},
                            memory_gbps=22.0, dispatch_overhead_us=40.0,
                            tdp_watts=1.4, per_op_overhead_us=25.0),
        ),
        dram_gbps=10.0, interconnect_gbps=7.0, segment_sync_ms=0.6,
    ),
    "dimensity_1100": SoCSpec(
        name="dimensity_1100", vendor="mediatek", form_factor="smartphone",
        benchmark_version="v1.0", process_node_nm=6,
        accelerators=(
            AcceleratorSpec("cpu", "cpu",
                            {FP32: 0.10, FP16: 0.20, INT8: 0.34, UINT8: 0.34},
                            memory_gbps=20.0, dispatch_overhead_us=4.0,
                            tdp_watts=1.9, per_op_overhead_us=3.0),
            AcceleratorSpec("gpu", "gpu",  # Mali-G77 MC9, 6nm
                            {FP32: 0.55, FP16: 1.15, INT8: 1.2, UINT8: 1.2},
                            memory_gbps=24.0, dispatch_overhead_us=50.0,
                            tdp_watts=2.2, per_op_overhead_us=15.0),
            # dual MDLA cores
            AcceleratorSpec("apu", "apu",
                            {INT8: 3.1, UINT8: 3.1, FP16: 1.55},
                            memory_gbps=26.0, dispatch_overhead_us=30.0,
                            tdp_watts=1.6, per_op_overhead_us=14.0),
        ),
        dram_gbps=24.0, interconnect_gbps=12.0, segment_sync_ms=0.2,
    ),
    # ---------------------------------------------------------------- Intel
    "core_i7_1165g7": SoCSpec(
        name="core_i7_1165g7", vendor="intel", form_factor="laptop",
        benchmark_version="v0.7", process_node_nm=10,
        accelerators=(
            AcceleratorSpec("cpu", "cpu",  # 4C/8T Willow Cove, VNNI int8
                            {FP32: 0.35, FP16: 0.35, INT8: 1.3, UINT8: 1.3},
                            memory_gbps=45.0, dispatch_overhead_us=3.0,
                            tdp_watts=14.0, per_op_overhead_us=3.0),
            AcceleratorSpec("gpu", "gpu",  # Xe-LP 96 EU
                            {FP32: 1.1, FP16: 2.2, INT8: 2.6, UINT8: 2.6},
                            memory_gbps=50.0, dispatch_overhead_us=35.0,
                            tdp_watts=12.0, per_op_overhead_us=8.0),
        ),
        dram_gbps=45.0, interconnect_gbps=40.0, segment_sync_ms=0.1,
        tdp_watts=28.0, thermal_resistance=2.5, thermal_capacitance=40.0,
        throttle_temp=85.0,
    ),
    "core_i7_11375h": SoCSpec(
        name="core_i7_11375h", vendor="intel", form_factor="laptop",
        benchmark_version="v1.0", process_node_nm=10,
        accelerators=(
            AcceleratorSpec("cpu", "cpu",  # 1.1x CPU frequency uplift
                            {FP32: 0.385, FP16: 0.385, INT8: 1.43, UINT8: 1.43},
                            memory_gbps=48.0, dispatch_overhead_us=3.0,
                            tdp_watts=15.0, per_op_overhead_us=2.7),
            AcceleratorSpec("gpu", "gpu",  # ~1.04x iGPU frequency uplift
                            {FP32: 1.15, FP16: 2.3, INT8: 2.7, UINT8: 2.7},
                            memory_gbps=52.0, dispatch_overhead_us=33.0,
                            tdp_watts=12.5, per_op_overhead_us=7.7),
        ),
        dram_gbps=48.0, interconnect_gbps=42.0, segment_sync_ms=0.1,
        tdp_watts=35.0, thermal_resistance=2.5, thermal_capacitance=40.0,
        throttle_temp=85.0,
    ),
}

# Appendix E: "iOS support recently became available ... we expect results
# in the near future" — the device is modeled, flagged as a preview round
# (it never enters the v0.7/v1.0 comparisons).
SOC_CATALOG["apple_a14"] = SoCSpec(
    name="apple_a14", vendor="apple", form_factor="smartphone",
    benchmark_version="preview", process_node_nm=5,
    accelerators=(
        AcceleratorSpec("cpu", "cpu",
                        {FP32: 0.14, FP16: 0.28, INT8: 0.45, UINT8: 0.45},
                        memory_gbps=28.0, dispatch_overhead_us=4.0,
                        tdp_watts=2.2, per_op_overhead_us=3.0),
        AcceleratorSpec("gpu", "gpu",
                        {FP32: 0.9, FP16: 1.9, INT8: 1.9, UINT8: 1.9},
                        memory_gbps=30.0, dispatch_overhead_us=40.0,
                        tdp_watts=2.4, per_op_overhead_us=12.0),
        # 16-core Neural Engine, 11 TOPS marketing peak
        AcceleratorSpec("ane", "ane",
                        {INT8: 3.0, UINT8: 3.0, FP16: 2.6},
                        memory_gbps=26.0, dispatch_overhead_us=25.0,
                        tdp_watts=1.8, per_op_overhead_us=12.0),
    ),
    dram_gbps=26.0, interconnect_gbps=16.0, segment_sync_ms=0.2,
)

# v0.7 -> v1.0 generational pairs (Figure 6)
GENERATION_PAIRS: dict[str, tuple[str, str]] = {
    "samsung": ("exynos_990", "exynos_2100"),
    "qualcomm": ("snapdragon_865plus", "snapdragon_888"),
    "mediatek": ("dimensity_820", "dimensity_1100"),
    "intel": ("core_i7_1165g7", "core_i7_11375h"),
}


def get_soc(name: str) -> SoCSpec:
    if name not in SOC_CATALOG:
        raise KeyError(f"unknown SoC {name!r}; available: {sorted(SOC_CATALOG)}")
    return SOC_CATALOG[name]
