"""Power and energy accounting (paper Appendix E: future-work power metric).

Per-query energy = sum over accelerators of (busy time x TDP) plus chip idle
power over the query's wall time, capped at the SoC's TDP when multiple
engines run concurrently (smartphone chipsets cap near 3 W).
"""

from __future__ import annotations

from dataclasses import dataclass

from .scheduler import CompiledModel
from .soc import SoCSpec

__all__ = ["PowerModel", "QueryEnergy"]


@dataclass(frozen=True)
class QueryEnergy:
    energy_joules: float
    average_watts: float
    wall_seconds: float


class PowerModel:
    # fraction of the CPU's TDP burned orchestrating any inference (the
    # "AI tax": scheduling, pre/post-processing, driver work)
    ORCHESTRATION_FRACTION = 0.9

    def __init__(self, soc: SoCSpec):
        self.soc = soc
        self.idle_watts = sum(a.idle_watts for a in soc.accelerators)

    def query_energy(
        self,
        compiled: CompiledModel,
        latency_seconds: float,
        clock_scale: dict[str, float] | None = None,
        batch: int = 1,
    ) -> QueryEnergy:
        busy = compiled.busy_seconds(clock_scale, batch)
        active = 0.0
        for name, seconds in busy.items():
            active += seconds * compiled.soc.accelerator(name).tdp_watts
        cpu = self.soc.accelerator("cpu")
        orchestration = cpu.tdp_watts * self.ORCHESTRATION_FRACTION * latency_seconds
        energy = active + orchestration + self.idle_watts * latency_seconds
        avg_watts = energy / latency_seconds if latency_seconds > 0 else 0.0
        if avg_watts > self.soc.tdp_watts:
            # TDP cap: the chip cannot actually sustain this draw — clamp the
            # energy and let the thermal model absorb the difference
            energy = self.soc.tdp_watts * latency_seconds
            avg_watts = self.soc.tdp_watts
        return QueryEnergy(energy, avg_watts, latency_seconds)
