"""Dataset factory keyed by the Table-1 dataset names."""

from __future__ import annotations

from ..graph.graph import Graph
from .ade20k import SyntheticADE20K
from .base import TaskDataset
from .coco import SyntheticCOCO
from .imagenet import SyntheticImageNet
from .speech import SyntheticSpeech
from .squad import SyntheticSQuAD
from .superres import SyntheticSuperRes

__all__ = ["DATASET_REGISTRY", "DEFAULT_SIZES", "create_dataset"]

DATASET_REGISTRY = {
    "imagenet": SyntheticImageNet,
    "coco": SyntheticCOCO,
    "ade20k": SyntheticADE20K,
    "squad": SyntheticSQuAD,
    # App. E experimental tasks
    "speech": SyntheticSpeech,
    "superres": SyntheticSuperRes,
}

# validation-set sizes: scaled-down analogues of the real set sizes, chosen
# so a full accuracy pass stays tractable for the NumPy executor
DEFAULT_SIZES = {
    "imagenet": 512,
    "coco": 192,
    "ade20k": 96,
    "squad": 192,
    "speech": 96,
    "superres": 48,
}


def create_dataset(
    name: str,
    oracle_graph: Graph | None,
    model_config: dict,
    *,
    size: int | None = None,
    seed: int | None = None,
    **kwargs,
) -> TaskDataset:
    """Generate the synthetic dataset ``name``.

    Vision datasets carry real scene ground truth and ignore the oracle;
    SQuAD is oracle-labelled (DESIGN.md §1) and requires ``oracle_graph`` —
    the exported FP32 reference graph.
    """
    if name not in DATASET_REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(DATASET_REGISTRY)}")
    gen_kwargs = dict(kwargs)
    gen_kwargs["size"] = size or DEFAULT_SIZES[name]
    if seed is not None:
        gen_kwargs["seed"] = seed
    if name == "squad":
        if oracle_graph is None:
            raise ValueError("squad dataset generation requires the FP32 oracle graph")
        return SyntheticSQuAD.generate(oracle_graph, model_config, **gen_kwargs)
    return DATASET_REGISTRY[name].generate(model_config, **gen_kwargs)
