"""Synthetic ADE20K stand-in for the semantic-segmentation task.

Validation scenes are Voronoi region maps with class textures; ground truth
is the exact region class per pixel. The last class index plays the role of
the paper's 32nd "everything else" bucket, which the metric ignores.
"""

from __future__ import annotations

import numpy as np

from ..metrics.segmentation import miou_frequent_classes
from ..pipelines.postprocess import segmentation_map
from ..pipelines.preprocess import dense_preprocess
from ..synthdata import segmentation_scene_batch
from .base import TaskDataset

__all__ = ["SyntheticADE20K"]


class SyntheticADE20K(TaskDataset):
    name = "ade20k"
    task = "semantic_segmentation"
    metric_name = "mIoU"

    def __init__(self, inputs, labels, calibration_inputs, num_classes):
        self.inputs = inputs
        self.labels = labels
        self._calibration_inputs = calibration_inputs
        self.num_classes = num_classes

    @classmethod
    def generate(
        cls,
        model_config: dict,
        *,
        size: int = 96,
        calibration_size: int = 32,
        seed: int = 44,
    ) -> "SyntheticADE20K":
        input_size = model_config["input_size"]
        num_classes = model_config["num_classes"]

        # scenes at exact network resolution keep labels pixel-aligned
        raws, labels = segmentation_scene_batch(size, input_size, num_classes, seed)
        inputs = np.stack([dense_preprocess(im, input_size) for im in raws]).astype(np.float32)

        cal_raws, _ = segmentation_scene_batch(
            calibration_size, input_size, num_classes, seed + 10_000
        )
        cal_inputs = np.stack([dense_preprocess(im, input_size) for im in cal_raws]).astype(np.float32)
        return cls(inputs, labels, cal_inputs, num_classes)

    def __len__(self) -> int:
        return len(self.labels)

    def input_batch(self, indices: np.ndarray) -> dict[str, np.ndarray]:
        return {"images": self.inputs[np.asarray(indices)]}

    def ground_truth(self, index: int) -> np.ndarray:
        return self.labels[index]

    def postprocess(self, outputs: dict[str, np.ndarray], index: int) -> np.ndarray:
        logits = next(iter(outputs.values()))
        return segmentation_map(logits)

    def evaluate(self, predictions: dict[int, np.ndarray]) -> dict[str, float]:
        idx = sorted(predictions)
        preds = [predictions[i] for i in idx]
        truths = [self.labels[i] for i in idx]
        return {"mIoU": miou_frequent_classes(preds, truths, self.num_classes) * 100.0}

    def calibration_batches(self, batch_size: int = 16) -> list[dict[str, np.ndarray]]:
        return [
            {"images": self._calibration_inputs[i : i + batch_size]}
            for i in range(0, len(self._calibration_inputs), batch_size)
        ]
