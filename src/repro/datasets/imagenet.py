"""Synthetic ImageNet-2012 stand-in for the image-classification task.

Validation images are drawn from the same class-prototype generator the
reference model's head was fitted against (fresh seed), so ground truth is
real: FP32 Top-1 reflects genuine signal recovery and quantized models lose
accuracy exactly where their numeric error crosses a decision boundary.
"""

from __future__ import annotations

import numpy as np

from ..metrics.classification import top1_accuracy, topk_accuracy
from ..pipelines.postprocess import top_k
from ..pipelines.preprocess import classification_preprocess
from ..synthdata import classification_scene_batch
from .base import TaskDataset

__all__ = ["SyntheticImageNet"]


class SyntheticImageNet(TaskDataset):
    name = "imagenet"
    task = "image_classification"
    metric_name = "top1"

    def __init__(self, inputs: np.ndarray, labels: np.ndarray,
                 calibration_inputs: np.ndarray):
        self.inputs = inputs
        self.labels = labels
        self._calibration_inputs = calibration_inputs

    @classmethod
    def generate(
        cls,
        model_config: dict,
        *,
        size: int = 512,
        calibration_size: int = 128,
        seed: int = 42,
        signal: float = 1.0,
        noise: float = 0.65,
    ) -> "SyntheticImageNet":
        input_size = model_config["input_size"]
        num_classes = model_config["num_classes"]
        raw_size = int(round(input_size * 256 / 224)) + 8

        raws, labels = classification_scene_batch(
            size, raw_size, num_classes, seed, signal=signal, noise=noise
        )
        inputs = np.stack([classification_preprocess(im, input_size) for im in raws])

        cal_raws, _ = classification_scene_batch(
            calibration_size, raw_size, num_classes, seed + 10_000, signal=signal, noise=noise
        )
        cal_inputs = np.stack([classification_preprocess(im, input_size) for im in cal_raws])
        return cls(inputs.astype(np.float32), labels, cal_inputs.astype(np.float32))

    def __len__(self) -> int:
        return len(self.labels)

    def input_batch(self, indices: np.ndarray) -> dict[str, np.ndarray]:
        return {"images": self.inputs[np.asarray(indices)]}

    def ground_truth(self, index: int) -> int:
        return int(self.labels[index])

    def postprocess(self, outputs: dict[str, np.ndarray], index: int) -> int:
        probs = next(iter(outputs.values()))
        return int(top_k(probs, k=1)[0])

    def evaluate(self, predictions: dict[int, int]) -> dict[str, float]:
        idx = sorted(predictions)
        pred = np.asarray([predictions[i] for i in idx])
        truth = self.labels[idx]
        return {"top1": top1_accuracy(pred, truth) * 100.0}

    def calibration_batches(self, batch_size: int = 16) -> list[dict[str, np.ndarray]]:
        return [
            {"images": self._calibration_inputs[i : i + batch_size]}
            for i in range(0, len(self._calibration_inputs), batch_size)
        ]
