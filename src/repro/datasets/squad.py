"""Synthetic SQuAD v1.1 (mini dev) stand-in for the question-answering task."""

from __future__ import annotations

import numpy as np

from ..graph.executor import Executor
from ..graph.graph import Graph
from ..metrics.squad import squad_scores
from ..pipelines.postprocess import extract_answer_span
from .base import TaskDataset, batched_indices
from ..synthdata import token_sequence_batch

__all__ = ["SyntheticSQuAD"]


class SyntheticSQuAD(TaskDataset):
    """Oracle-labelled extractive-QA set.

    The ground-truth answer span equals the FP32 oracle's extracted span with
    probability ``oracle_fidelity``, otherwise a random passage span — so the
    FP32 F1 lands near ``fidelity x 100`` and quantized F1 tracks span drift
    caused by logit perturbation (the paper's Insight 5 mechanism).
    """

    name = "squad"
    task = "question_answering"
    metric_name = "f1"

    def __init__(self, ids, masks, context_starts, truths, cal_ids, cal_masks):
        self.ids = ids
        self.masks = masks
        self.context_starts = context_starts
        self.truths = truths
        self._cal_ids = cal_ids
        self._cal_masks = cal_masks

    @classmethod
    def generate(
        cls,
        oracle_graph: Graph,
        model_config: dict,
        *,
        size: int = 256,
        calibration_size: int = 64,
        seed: int = 45,
        oracle_fidelity: float = 0.90,
        max_answer_length: int = 12,
        batch_size: int = 32,
    ) -> "SyntheticSQuAD":
        seq_len = model_config["seq_len"]
        vocab = model_config["vocab_size"]
        rng = np.random.default_rng(seed)

        ids, masks, ctx = token_sequence_batch(size, seq_len, vocab, seed)
        ex = Executor(oracle_graph)
        start_name, end_name = oracle_graph.output_names
        truths: list[tuple[int, int]] = []
        oracle_spans: list[tuple[int, int]] = []
        for idx in batched_indices(size, batch_size):
            out = ex.run({"input_ids": ids[idx], "input_mask": masks[idx]})
            for j, i in enumerate(idx):
                span = extract_answer_span(
                    out[start_name][j], out[end_name][j],
                    max_answer_length=max_answer_length,
                    context_start=int(ctx[i]),
                )
                oracle_spans.append(span)
        for i in range(size):
            if rng.random() < oracle_fidelity:
                truths.append(oracle_spans[i])
            else:
                seq_used = int(masks[i].sum())
                lo = int(ctx[i])
                start = int(rng.integers(lo, max(seq_used - 1, lo + 1)))
                length = int(rng.integers(1, max_answer_length + 1))
                truths.append((start, min(start + length - 1, seq_used - 1)))

        cal_ids, cal_masks, _ = token_sequence_batch(
            calibration_size, seq_len, vocab, seed + 10_000
        )
        return cls(ids, masks, ctx, truths, cal_ids, cal_masks)

    def __len__(self) -> int:
        return len(self.truths)

    def input_batch(self, indices: np.ndarray) -> dict[str, np.ndarray]:
        indices = np.asarray(indices)
        return {"input_ids": self.ids[indices], "input_mask": self.masks[indices]}

    def ground_truth(self, index: int) -> tuple[int, int]:
        return self.truths[index]

    def postprocess(self, outputs: dict[str, np.ndarray], index: int) -> tuple[int, int]:
        start = outputs[next(k for k in outputs if "start" in k)]
        end = outputs[next(k for k in outputs if "end" in k)]
        return extract_answer_span(
            start, end, max_answer_length=12, context_start=int(self.context_starts[index])
        )

    def evaluate(self, predictions: dict[int, tuple[int, int]]) -> dict[str, float]:
        idx = sorted(predictions)
        scores = squad_scores([predictions[i] for i in idx], [self.truths[i] for i in idx])
        return {"f1": scores["f1"], "exact_match": scores["exact_match"]}

    def calibration_batches(self, batch_size: int = 16) -> list[dict[str, np.ndarray]]:
        return [
            {
                "input_ids": self._cal_ids[i : i + batch_size],
                "input_mask": self._cal_masks[i : i + batch_size],
            }
            for i in range(0, len(self._cal_ids), batch_size)
        ]
