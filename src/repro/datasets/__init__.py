"""Synthetic datasets standing in for the Table-1 data sets."""

from .ade20k import SyntheticADE20K
from .base import IndexDataset, TaskDataset, batched_indices
from .coco import SyntheticCOCO
from .imagenet import SyntheticImageNet
from .registry import DATASET_REGISTRY, DEFAULT_SIZES, create_dataset
from .speech import SyntheticSpeech
from .squad import SyntheticSQuAD
from .superres import SyntheticSuperRes

__all__ = [
    "TaskDataset",
    "IndexDataset",
    "batched_indices",
    "SyntheticImageNet",
    "SyntheticCOCO",
    "SyntheticADE20K",
    "SyntheticSQuAD",
    "SyntheticSpeech",
    "SyntheticSuperRes",
    "DATASET_REGISTRY",
    "DEFAULT_SIZES",
    "create_dataset",
]
