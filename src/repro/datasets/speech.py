"""Synthetic streaming-speech dataset (App. E speech-recognition task)."""

from __future__ import annotations

import numpy as np

from ..metrics.speech import token_accuracy, word_error_rate
from ..pipelines.postprocess import greedy_ctc_decode
from ..synthdata import speech_sequence_batch
from .base import TaskDataset

__all__ = ["SyntheticSpeech"]


class SyntheticSpeech(TaskDataset):
    name = "speech"
    task = "speech_recognition"
    metric_name = "token_accuracy"

    def __init__(self, features, transcripts, cal_features, blank_id):
        self.features = features
        self.transcripts = transcripts
        self._cal_features = cal_features
        self.blank_id = blank_id

    @classmethod
    def generate(
        cls,
        model_config: dict,
        *,
        size: int = 96,
        calibration_size: int = 32,
        seed: int = 46,
    ) -> "SyntheticSpeech":
        feats, transcripts, _ = speech_sequence_batch(
            size, model_config["num_frames"], model_config["feature_dim"],
            model_config["vocab_size"], seed,
        )
        cal, _, _ = speech_sequence_batch(
            calibration_size, model_config["num_frames"], model_config["feature_dim"],
            model_config["vocab_size"], seed + 10_000,
        )
        return cls(feats, transcripts, cal, model_config["blank_id"])

    def __len__(self) -> int:
        return len(self.transcripts)

    def input_batch(self, indices: np.ndarray) -> dict[str, np.ndarray]:
        return {"features": self.features[np.asarray(indices)]}

    def ground_truth(self, index: int) -> list[int]:
        return self.transcripts[index]

    def postprocess(self, outputs: dict[str, np.ndarray], index: int) -> list[int]:
        logits = next(iter(outputs.values()))
        return greedy_ctc_decode(logits, blank_id=self.blank_id)

    def evaluate(self, predictions: dict[int, list[int]]) -> dict[str, float]:
        idx = sorted(predictions)
        hyps = [predictions[i] for i in idx]
        refs = [self.transcripts[i] for i in idx]
        return {
            "token_accuracy": token_accuracy(hyps, refs),
            "wer": word_error_rate(hyps, refs) * 100.0,
        }

    def calibration_batches(self, batch_size: int = 16) -> list[dict[str, np.ndarray]]:
        return [
            {"features": self._cal_features[i : i + batch_size]}
            for i in range(0, len(self._cal_features), batch_size)
        ]
