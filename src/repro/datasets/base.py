"""Dataset protocol consumed by the LoadGen QSL and the accuracy evaluator.

A dataset owns three things: model-ready input feeds per sample, ground
truth per sample, and the task metric. Synthetic datasets are *oracle
labelled*: ground truth derives from the FP32 reference model's own outputs
plus controlled noise (see DESIGN.md §1) so the relative-accuracy gate —
"a submission must retain >=X% of FP32 quality" — measures exactly what the
real benchmark measures.
"""

from __future__ import annotations

import abc
from typing import Any, Iterator

import numpy as np

__all__ = ["TaskDataset", "IndexDataset", "batched_indices"]


def batched_indices(n: int, batch_size: int) -> Iterator[np.ndarray]:
    for start in range(0, n, batch_size):
        yield np.arange(start, min(start + batch_size, n))


class TaskDataset(abc.ABC):
    """Abstract synthetic validation set for one benchmark task."""

    name: str = "dataset"
    task: str = "task"
    metric_name: str = "metric"

    @abc.abstractmethod
    def __len__(self) -> int: ...

    @abc.abstractmethod
    def input_batch(self, indices: np.ndarray) -> dict[str, np.ndarray]:
        """Model-ready feeds for the given sample indices."""

    @abc.abstractmethod
    def ground_truth(self, index: int) -> Any: ...

    @abc.abstractmethod
    def postprocess(self, outputs: dict[str, np.ndarray], index: int) -> Any:
        """Turn one sample's raw model outputs into a prediction object."""

    @abc.abstractmethod
    def evaluate(self, predictions: dict[int, Any]) -> dict[str, float]:
        """Dataset-level metric over {sample index -> prediction}."""

    @abc.abstractmethod
    def calibration_batches(self, batch_size: int = 16) -> list[dict[str, np.ndarray]]:
        """The approved PTQ calibration set (disjoint from validation)."""

    def sample_bytes(self) -> int:
        """Approximate in-memory bytes of one loaded sample (QSL accounting)."""
        feed = self.input_batch(np.array([0]))
        return int(sum(a.nbytes for a in feed.values()))


class IndexDataset(TaskDataset):
    """Content-free dataset for performance-only runs.

    Performance mode never reads sample bytes from the simulator's
    perspective — the LoadGen only draws seeded indices — so analysis code
    can avoid generating full synthetic datasets when it only needs timing.
    """

    name = "index-only"
    task = "performance-only"
    metric_name = "none"

    def __init__(self, size: int = 1024):
        self._size = size

    def __len__(self) -> int:
        return self._size

    def input_batch(self, indices: np.ndarray) -> dict[str, np.ndarray]:
        return {"index": np.asarray(indices)}

    def ground_truth(self, index: int):
        raise NotImplementedError("index-only dataset has no labels")

    def postprocess(self, outputs, index: int):
        raise NotImplementedError("index-only dataset has no predictions")

    def evaluate(self, predictions):
        raise NotImplementedError("index-only dataset has no metric")

    def calibration_batches(self, batch_size: int = 16):
        raise NotImplementedError("index-only dataset has no calibration data")
