"""Synthetic super-resolution dataset (App. E SR task), PSNR-scored."""

from __future__ import annotations

import numpy as np

from ..metrics.psnr import mean_psnr
from ..pipelines.preprocess import normalize_image
from ..synthdata import super_resolution_batch
from .base import TaskDataset

__all__ = ["SyntheticSuperRes"]


def denormalize_image(x: np.ndarray) -> np.ndarray:
    """Inverse of normalize_image: [-1, 1] floats -> [0, 255] pixels."""
    return np.clip((np.asarray(x, dtype=np.float32) + 1.0) * 127.5, 0.0, 255.0)


class SyntheticSuperRes(TaskDataset):
    name = "superres"
    task = "super_resolution"
    metric_name = "psnr"

    def __init__(self, lr_inputs, hr_targets, cal_inputs, scale):
        self.lr_inputs = lr_inputs
        self.hr_targets = hr_targets
        self._cal_inputs = cal_inputs
        self.scale = scale

    @classmethod
    def generate(
        cls,
        model_config: dict,
        *,
        size: int = 48,
        calibration_size: int = 16,
        seed: int = 47,
    ) -> "SyntheticSuperRes":
        scale = model_config["scale"]
        hr_size = model_config["lr_size"] * scale
        lr, hr = super_resolution_batch(size, hr_size, scale, seed)
        cal_lr, _ = super_resolution_batch(calibration_size, hr_size, scale, seed + 10_000)
        return cls(
            normalize_image(lr).astype(np.float32), hr,
            normalize_image(cal_lr).astype(np.float32), scale,
        )

    def __len__(self) -> int:
        return len(self.hr_targets)

    def input_batch(self, indices: np.ndarray) -> dict[str, np.ndarray]:
        return {"lr_images": self.lr_inputs[np.asarray(indices)]}

    def ground_truth(self, index: int) -> np.ndarray:
        return self.hr_targets[index]

    def postprocess(self, outputs: dict[str, np.ndarray], index: int) -> np.ndarray:
        return denormalize_image(next(iter(outputs.values())))

    def evaluate(self, predictions: dict[int, np.ndarray]) -> dict[str, float]:
        idx = sorted(predictions)
        preds = [predictions[i] for i in idx]
        targets = [self.hr_targets[i].astype(np.float32) for i in idx]
        return {"psnr": mean_psnr(preds, targets)}

    def calibration_batches(self, batch_size: int = 16) -> list[dict[str, np.ndarray]]:
        return [
            {"lr_images": self._cal_inputs[i : i + batch_size]}
            for i in range(0, len(self._cal_inputs), batch_size)
        ]
