"""Synthetic COCO-2017 stand-in for the object-detection task.

Validation scenes contain textured rectangles at known normalized boxes (the
same generator the SSD heads were ridge-fitted on, fresh seed), so mAP
measures genuine localization + classification quality.
"""

from __future__ import annotations

import numpy as np

from ..metrics.detection_map import GroundTruthBox, coco_map
from ..pipelines.anchors import anchors_for_model
from ..pipelines.detection import Detection, postprocess_detections
from ..pipelines.preprocess import dense_preprocess
from ..synthdata import detection_scene_batch
from .base import TaskDataset

__all__ = ["SyntheticCOCO"]


class SyntheticCOCO(TaskDataset):
    name = "coco"
    task = "object_detection"
    metric_name = "mAP"

    def __init__(self, inputs, truths, calibration_inputs, anchors, config):
        self.inputs = inputs
        self.truths = truths
        self._calibration_inputs = calibration_inputs
        self.anchors = anchors
        self.config = config

    @classmethod
    def generate(
        cls,
        model_config: dict,
        *,
        size: int = 192,
        calibration_size: int = 64,
        seed: int = 43,
        score_threshold: float = 0.25,
    ) -> "SyntheticCOCO":
        input_size = model_config["input_size"]
        num_classes = model_config["num_classes"]

        raws, objects = detection_scene_batch(size, input_size + 16, num_classes, seed)
        inputs = np.stack([dense_preprocess(im, input_size) for im in raws]).astype(np.float32)
        truths = [
            [GroundTruthBox(o.box, o.class_id) for o in objs] for objs in objects
        ]

        cal_raws, _ = detection_scene_batch(
            calibration_size, input_size + 16, num_classes, seed + 10_000
        )
        cal_inputs = np.stack([dense_preprocess(im, input_size) for im in cal_raws]).astype(np.float32)
        anchors = anchors_for_model(model_config)
        config = dict(model_config)
        config["score_threshold"] = score_threshold
        return cls(inputs, truths, cal_inputs, anchors, config)

    def __len__(self) -> int:
        return len(self.truths)

    def input_batch(self, indices: np.ndarray) -> dict[str, np.ndarray]:
        return {"images": self.inputs[np.asarray(indices)]}

    def ground_truth(self, index: int) -> list[GroundTruthBox]:
        return self.truths[index]

    def postprocess(self, outputs: dict[str, np.ndarray], index: int) -> list[Detection]:
        scores = outputs[next(k for k in outputs if "scores" in k)]
        boxes = outputs[next(k for k in outputs if "box" in k)]
        return postprocess_detections(
            scores, boxes, self.anchors,
            score_threshold=self.config["score_threshold"],
            variances=self.config["box_variances"],
        )

    def evaluate(self, predictions: dict[int, list[Detection]]) -> dict[str, float]:
        idx = sorted(predictions)
        dets = [predictions[i] for i in idx]
        truths = [self.truths[i] for i in idx]
        return {"mAP": coco_map(dets, truths) * 100.0}

    def calibration_batches(self, batch_size: int = 16) -> list[dict[str, np.ndarray]]:
        return [
            {"images": self._calibration_inputs[i : i + batch_size]}
            for i in range(0, len(self._calibration_inputs), batch_size)
        ]
