"""Detection post-processing: box decoding and non-maximum suppression."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Detection", "decode_boxes", "encode_boxes", "iou_matrix", "nms", "postprocess_detections"]


@dataclass(frozen=True)
class Detection:
    """One detected object in normalized (ymin, xmin, ymax, xmax) coords."""

    box: tuple[float, float, float, float]
    score: float
    class_id: int


def decode_boxes(
    encodings: np.ndarray,
    anchors: np.ndarray,
    variances: tuple[float, float, float, float] = (0.1, 0.1, 0.2, 0.2),
) -> np.ndarray:
    """SSD decode: (A, 4) offsets + (A, 4) center-size anchors -> corner boxes."""
    ty, tx, th, tw = (encodings[:, i] * variances[i] for i in range(4))
    acy, acx, ah, aw = anchors[:, 0], anchors[:, 1], anchors[:, 2], anchors[:, 3]
    cy = ty * ah + acy
    cx = tx * aw + acx
    h = np.exp(np.clip(th, -10, 10)) * ah
    w = np.exp(np.clip(tw, -10, 10)) * aw
    boxes = np.stack([cy - h / 2, cx - w / 2, cy + h / 2, cx + w / 2], axis=1)
    return np.clip(boxes, 0.0, 1.0).astype(np.float32)


def encode_boxes(
    boxes: np.ndarray,
    anchors: np.ndarray,
    variances: tuple[float, float, float, float] = (0.1, 0.1, 0.2, 0.2),
) -> np.ndarray:
    """Inverse of :func:`decode_boxes`: corner boxes -> per-anchor offsets."""
    cy = (boxes[:, 0] + boxes[:, 2]) / 2
    cx = (boxes[:, 1] + boxes[:, 3]) / 2
    h = np.maximum(boxes[:, 2] - boxes[:, 0], 1e-6)
    w = np.maximum(boxes[:, 3] - boxes[:, 1], 1e-6)
    acy, acx, ah, aw = anchors[:, 0], anchors[:, 1], anchors[:, 2], anchors[:, 3]
    ty = (cy - acy) / ah / variances[0]
    tx = (cx - acx) / aw / variances[1]
    th = np.log(h / ah) / variances[2]
    tw = np.log(w / aw) / variances[3]
    return np.stack([ty, tx, th, tw], axis=1).astype(np.float32)


def iou_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise IoU between (N, 4) and (M, 4) corner boxes."""
    a = np.asarray(a, dtype=np.float64).reshape(-1, 4)
    b = np.asarray(b, dtype=np.float64).reshape(-1, 4)
    top = np.maximum(a[:, None, 0], b[None, :, 0])
    left = np.maximum(a[:, None, 1], b[None, :, 1])
    bottom = np.minimum(a[:, None, 2], b[None, :, 2])
    right = np.minimum(a[:, None, 3], b[None, :, 3])
    inter = np.clip(bottom - top, 0, None) * np.clip(right - left, 0, None)
    area_a = np.clip(a[:, 2] - a[:, 0], 0, None) * np.clip(a[:, 3] - a[:, 1], 0, None)
    area_b = np.clip(b[:, 2] - b[:, 0], 0, None) * np.clip(b[:, 3] - b[:, 1], 0, None)
    union = area_a[:, None] + area_b[None, :] - inter
    return np.where(union > 0, inter / np.maximum(union, 1e-12), 0.0)


def nms(boxes: np.ndarray, scores: np.ndarray, iou_threshold: float = 0.5,
        max_outputs: int = 100) -> np.ndarray:
    """Greedy NMS; returns selected indices in descending score order."""
    order = np.argsort(-scores, kind="stable")
    selected: list[int] = []
    suppressed = np.zeros(len(scores), dtype=bool)
    for idx in order:
        if suppressed[idx]:
            continue
        selected.append(int(idx))
        if len(selected) >= max_outputs:
            break
        ious = iou_matrix(boxes[idx : idx + 1], boxes)[0]
        suppressed |= ious > iou_threshold
        suppressed[idx] = True
    return np.asarray(selected, dtype=np.int64)


def postprocess_detections(
    class_scores: np.ndarray,
    box_encodings: np.ndarray,
    anchors: np.ndarray,
    *,
    score_threshold: float = 0.3,
    iou_threshold: float = 0.5,
    max_detections: int = 20,
    variances: tuple[float, float, float, float] = (0.1, 0.1, 0.2, 0.2),
    skip_background: bool = True,
) -> list[Detection]:
    """Per-class NMS over decoded boxes for one sample.

    ``class_scores``: (A, C) post-sigmoid; ``box_encodings``: (A, 4).
    Class 0 is treated as background when ``skip_background``.
    """
    boxes = decode_boxes(box_encodings, anchors, variances)
    detections: list[Detection] = []
    start_class = 1 if skip_background else 0
    for c in range(start_class, class_scores.shape[1]):
        scores_c = class_scores[:, c]
        keep = scores_c >= score_threshold
        if not np.any(keep):
            continue
        idx = np.flatnonzero(keep)
        sel = nms(boxes[idx], scores_c[idx], iou_threshold)
        for i in sel:
            a = idx[i]
            detections.append(Detection(tuple(boxes[a].tolist()), float(scores_c[a]), c))
    detections.sort(key=lambda d: -d.score)
    return detections[:max_detections]
