"""SSD anchor (default box) generation.

Anchors are expressed in normalized center-size form (cy, cx, h, w) in
[0, 1] image coordinates, laid out feature-map-major then row-major then
per-cell anchor index — matching how the model heads flatten their outputs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["generate_ssd_anchors", "anchors_for_model"]


def generate_ssd_anchors(
    feature_shapes: list[tuple[int, int]],
    *,
    min_scale: float = 0.2,
    max_scale: float = 0.9,
    aspect_ratios: tuple[float, ...] = (1.0, 2.0, 0.5),
    extra_scale_anchor: bool = True,
) -> np.ndarray:
    """Build the (A, 4) anchor grid over every feature map.

    Scales interpolate linearly from ``min_scale`` (finest map) to
    ``max_scale`` (coarsest), one scale per map. Each cell gets one anchor
    per aspect ratio plus — per the standard SSD recipe — an extra square
    anchor at the geometric-mean scale sqrt(s_k * s_{k+1}), which fills the
    coverage gap between consecutive maps.
    """
    if not feature_shapes:
        raise ValueError("need at least one feature map")
    n_maps = len(feature_shapes)
    if n_maps == 1:
        scales = [min_scale, max_scale]
    else:
        scales = [min_scale + (max_scale - min_scale) * i / (n_maps - 1) for i in range(n_maps)]
        scales.append(1.0)
    boxes = []
    for m, (fh, fw) in enumerate(feature_shapes):
        scale = scales[m]
        cell_anchors = [(scale / np.sqrt(ar), scale * np.sqrt(ar)) for ar in aspect_ratios]
        if extra_scale_anchor:
            s_extra = np.sqrt(scale * scales[m + 1])
            cell_anchors.append((s_extra, s_extra))
        cy = (np.arange(fh) + 0.5) / fh
        cx = (np.arange(fw) + 0.5) / fw
        grid_y, grid_x = np.meshgrid(cy, cx, indexing="ij")
        for gy, gx in zip(grid_y.ravel(), grid_x.ravel()):
            for h, w in cell_anchors:
                boxes.append((gy, gx, h, w))
    return np.asarray(boxes, dtype=np.float32)


def anchors_for_model(config: dict) -> np.ndarray:
    """Generate the anchors matching a detection ModelBundle's config."""
    a = config["anchors_per_cell"]
    return generate_ssd_anchors(
        [tuple(s) for s in config["feature_shapes"]],
        aspect_ratios=tuple([1.0, 2.0, 0.5][: a - 1]) if a > 1 else (1.0,),
        extra_scale_anchor=a > 1,
    )
