"""Task pre-processing stages (paper §4.1).

All submitters must run the same steps: vision tasks resize / center-crop /
normalize; QA pads token ids and builds the attention mask. These run outside
the timed region in accuracy mode but are part of what the reference app
defines, so they are implemented (and tested) explicitly.
"""

from __future__ import annotations

import numpy as np

from ..kernels.pooling import resize_bilinear

__all__ = [
    "resize_image",
    "center_crop",
    "normalize_image",
    "classification_preprocess",
    "dense_preprocess",
    "qa_preprocess",
]


def resize_image(image: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Bilinear resize of an HWC image (uint8 or float) to (out_h, out_w)."""
    batched = resize_bilinear(image[None].astype(np.float32), out_h, out_w)
    return batched[0]


def center_crop(image: np.ndarray, crop_h: int, crop_w: int) -> np.ndarray:
    h, w = image.shape[:2]
    if h < crop_h or w < crop_w:
        raise ValueError(f"image {image.shape} smaller than crop ({crop_h}, {crop_w})")
    top = (h - crop_h) // 2
    left = (w - crop_w) // 2
    return image[top : top + crop_h, left : left + crop_w]


def normalize_image(image: np.ndarray) -> np.ndarray:
    """Map [0, 255] pixels to [-1, 1] (the MobileNet-family convention)."""
    return (image.astype(np.float32) / 127.5) - 1.0


def classification_preprocess(image: np.ndarray, input_size: int) -> np.ndarray:
    """ImageNet-style: scale the short side ~1.14x the crop, then center-crop."""
    resize_to = int(round(input_size * 256 / 224))
    image = resize_image(image, resize_to, resize_to)
    image = center_crop(image, input_size, input_size)
    return normalize_image(image)


def dense_preprocess(image: np.ndarray, input_size: int) -> np.ndarray:
    """Detection/segmentation: direct resize to the network input, normalize."""
    image = resize_image(image, input_size, input_size)
    return normalize_image(image)


def qa_preprocess(token_ids: np.ndarray, seq_len: int) -> tuple[np.ndarray, np.ndarray]:
    """Pad/truncate ids to ``seq_len``; returns (ids, mask) as float arrays."""
    ids = np.zeros(seq_len, dtype=np.float32)
    n = min(len(token_ids), seq_len)
    ids[:n] = token_ids[:n]
    mask = np.zeros(seq_len, dtype=np.float32)
    mask[:n] = 1.0
    return ids, mask
