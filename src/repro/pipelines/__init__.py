"""Task pre/post-processing pipelines shared by app, datasets, and backends."""

from .anchors import anchors_for_model, generate_ssd_anchors
from .detection import Detection, decode_boxes, iou_matrix, nms, postprocess_detections
from .postprocess import extract_answer_span, greedy_ctc_decode, segmentation_map, top_k
from .preprocess import (
    center_crop,
    classification_preprocess,
    dense_preprocess,
    normalize_image,
    qa_preprocess,
    resize_image,
)

__all__ = [
    "generate_ssd_anchors",
    "anchors_for_model",
    "Detection",
    "decode_boxes",
    "iou_matrix",
    "nms",
    "postprocess_detections",
    "top_k",
    "segmentation_map",
    "extract_answer_span",
    "greedy_ctc_decode",
    "resize_image",
    "center_crop",
    "normalize_image",
    "classification_preprocess",
    "dense_preprocess",
    "qa_preprocess",
]
