"""Non-detection post-processing: Top-K, segmentation argmax, QA spans."""

from __future__ import annotations

import numpy as np

__all__ = ["top_k", "segmentation_map", "extract_answer_span", "greedy_ctc_decode"]


def top_k(probs: np.ndarray, k: int = 5) -> np.ndarray:
    """Indices of the k highest-probability classes, best first."""
    k = min(k, probs.shape[-1])
    idx = np.argpartition(-probs, k - 1, axis=-1)[..., :k]
    order = np.take_along_axis(probs, idx, axis=-1).argsort(axis=-1)[..., ::-1]
    return np.take_along_axis(idx, order, axis=-1)


def segmentation_map(logits: np.ndarray) -> np.ndarray:
    """Per-pixel argmax class map from (H, W, C) logits."""
    return logits.argmax(axis=-1).astype(np.int32)


def extract_answer_span(
    start_logits: np.ndarray,
    end_logits: np.ndarray,
    *,
    max_answer_length: int = 16,
    context_start: int = 0,
) -> tuple[int, int]:
    """Best (start, end) with start <= end < start + max_answer_length.

    The SQuAD convention: maximize start_logit + end_logit over valid pairs,
    restricted to positions at or after ``context_start`` (the passage
    region; questions cannot contain the answer).
    """
    s = np.asarray(start_logits, dtype=np.float64)[context_start:]
    e = np.asarray(end_logits, dtype=np.float64)[context_start:]
    n = len(s)
    if n == 0:
        raise ValueError("empty logits")
    best = (-np.inf, 0, 0)
    for start in range(n):
        stop = min(n, start + max_answer_length)
        rel_end = int(np.argmax(e[start:stop]))
        score = s[start] + e[start + rel_end]
        if score > best[0]:
            best = (score, start, start + rel_end)
    return best[1] + context_start, best[2] + context_start


def greedy_ctc_decode(frame_logits: np.ndarray, blank_id: int | None = None) -> list[int]:
    """Greedy streaming decode: per-frame argmax, collapse repeats, drop blank.

    ``frame_logits``: (T, V) where the final class is the blank when
    ``blank_id`` is None.
    """
    if frame_logits.ndim != 2:
        raise ValueError("frame_logits must be (T, V)")
    if blank_id is None:
        blank_id = frame_logits.shape[1] - 1
    best = frame_logits.argmax(axis=-1)
    tokens: list[int] = []
    prev = -1
    for t in best:
        t = int(t)
        if t != prev and t != blank_id:
            tokens.append(t)
        prev = t
    return tokens
