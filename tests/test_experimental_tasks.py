"""App. E experimental tasks: speech recognition and super-resolution."""

import numpy as np
import pytest

from repro.core import QUICK_RULES, BenchmarkHarness
from repro.datasets import create_dataset
from repro.graph import Executor, export_mobile
from repro.kernels import Numerics, depth_to_space, lstm_cell, lstm_sequence
from repro.metrics import edit_distance, mean_psnr, psnr, token_accuracy, word_error_rate
from repro.models import create_full_model, create_reference_model
from repro.pipelines import greedy_ctc_decode
from repro.synthdata import speech_sequence_batch, super_resolution_batch


class TestRecurrentKernels:
    def test_lstm_cell_shapes(self, rng):
        h, c = lstm_cell(
            rng.normal(size=(3, 5)).astype(np.float32),
            np.zeros((3, 7), dtype=np.float32),
            np.zeros((3, 7), dtype=np.float32),
            rng.normal(size=(5, 28)).astype(np.float32),
            rng.normal(size=(7, 28)).astype(np.float32),
            np.zeros(28, dtype=np.float32),
        )
        assert h.shape == c.shape == (3, 7)

    def test_lstm_state_bounded(self, rng):
        """tanh-gated hidden state stays in (-1, 1) no matter the input."""
        h, _ = lstm_cell(
            rng.normal(0, 100, size=(2, 4)).astype(np.float32),
            np.zeros((2, 4), dtype=np.float32),
            np.zeros((2, 4), dtype=np.float32),
            rng.normal(size=(4, 16)).astype(np.float32),
            rng.normal(size=(4, 16)).astype(np.float32),
            np.zeros(16, dtype=np.float32),
        )
        assert np.all(np.abs(h) <= 1.0)

    def test_lstm_sequence_matches_stepwise(self, rng):
        x = rng.normal(size=(2, 6, 3)).astype(np.float32)
        w_ih = rng.normal(0, 0.4, size=(3, 16)).astype(np.float32)
        w_hh = rng.normal(0, 0.4, size=(4, 16)).astype(np.float32)
        bias = np.zeros(16, dtype=np.float32)
        seq = lstm_sequence(x, w_ih, w_hh, bias)
        h = np.zeros((2, 4), dtype=np.float32)
        c = np.zeros((2, 4), dtype=np.float32)
        for t in range(6):
            h, c = lstm_cell(x[:, t], h, c, w_ih, w_hh, bias)
            np.testing.assert_allclose(seq[:, t], h, atol=1e-6)

    def test_depth_to_space_inverse_of_space_layout(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 2, 2, 4)
        out = depth_to_space(x, 2)
        assert out.shape == (1, 4, 4, 1)
        # the first LR position's 4 channels tile its 2x2 HR block
        np.testing.assert_array_equal(out[0, :2, :2, 0], [[0, 1], [2, 3]])

    def test_depth_to_space_validation(self):
        with pytest.raises(ValueError):
            depth_to_space(np.zeros((1, 2, 2, 3)), 2)


class TestSpeechMetrics:
    def test_edit_distance_known(self):
        assert edit_distance([1, 2, 3], [1, 2, 3]) == 0
        assert edit_distance([1, 2, 3], [1, 3]) == 1  # deletion
        assert edit_distance([1, 2], [1, 2, 3]) == 1  # insertion
        assert edit_distance([1, 2, 3], [1, 9, 3]) == 1  # substitution
        assert edit_distance([], [1, 2]) == 2

    def test_wer_corpus_level(self):
        wer = word_error_rate([[1, 2], [3]], [[1, 2], [4]])
        assert wer == pytest.approx(1 / 3)

    def test_token_accuracy_clipped(self):
        # hypotheses longer than references can exceed 100% WER; clip at 0
        assert token_accuracy([[1, 2, 3, 4, 5]], [[9]]) == 0.0

    def test_empty_reference_raises(self):
        with pytest.raises(ValueError):
            word_error_rate([[1]], [[]])


class TestPSNR:
    def test_identical_is_infinite(self):
        x = np.full((4, 4, 3), 100.0)
        assert psnr(x, x) == float("inf")

    def test_known_value(self):
        a = np.zeros((10, 10))
        b = np.full((10, 10), 255.0)
        assert psnr(a, b) == pytest.approx(0.0, abs=1e-9)

    def test_mean_clips_infinities(self):
        x = np.zeros((2, 2))
        assert mean_psnr([x], [x]) == 100.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            psnr(np.zeros((2, 2)), np.zeros((3, 3)))


class TestCTCDecode:
    def test_collapse_and_blank(self):
        logits = np.zeros((7, 4))
        for t, cls in enumerate([1, 1, 3, 2, 2, 3, 1]):  # 3 = blank
            logits[t, cls] = 5.0
        assert greedy_ctc_decode(logits) == [1, 2, 1]

    def test_all_blank(self):
        logits = np.zeros((5, 3))
        logits[:, 2] = 5.0
        assert greedy_ctc_decode(logits) == []

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            greedy_ctc_decode(np.zeros(5))


class TestSpeechGenerator:
    def test_no_adjacent_repeats(self):
        _, transcripts, _ = speech_sequence_batch(30, 40, 8, 10, seed=5)
        for tokens in transcripts:
            assert all(a != b for a, b in zip(tokens, tokens[1:]))

    def test_frame_labels_match_transcript(self):
        _, transcripts, frames = speech_sequence_batch(10, 40, 8, 10, seed=6)
        for tokens, fl in zip(transcripts, frames):
            collapsed = [int(fl[0])]
            for v in fl[1:]:
                if int(v) != collapsed[-1]:
                    collapsed.append(int(v))
            assert collapsed == tokens


class TestSuperResGenerator:
    def test_lr_is_downsample(self):
        lr, hr = super_resolution_batch(4, 32, 2, seed=7)
        assert lr.shape == (4, 16, 16, 3) and hr.shape == (4, 32, 32, 3)
        assert lr.dtype == hr.dtype == np.uint8

    def test_bicubic_baseline_has_finite_psnr(self):
        from repro.kernels import resize_bilinear

        lr, hr = super_resolution_batch(4, 32, 2, seed=8)
        up = resize_bilinear(lr.astype(np.float32), 32, 32)
        baseline = mean_psnr(list(up), list(hr.astype(np.float32)))
        assert 5.0 < baseline < 60.0


class TestEndToEnd:
    def test_speech_quality_ladder(self):
        """FP32 decodes most tokens; INT8 collapses (recurrence!); FP16 fine."""
        from repro.quantization import calibrate, convert_fp16, quantize_graph

        bundle = create_reference_model("mobile_streaming_asr")
        g = export_mobile(bundle.graph)
        ds = create_dataset("speech", g, bundle.config, size=48)

        def acc(graph):
            ex = Executor(graph)
            preds = {}
            for s in range(0, len(ds), 16):
                idx = np.arange(s, min(s + 16, len(ds)))
                out = ex.run(ds.input_batch(idx))
                for j, i in enumerate(idx):
                    preds[int(i)] = ds.postprocess(
                        {k: v[j] for k, v in out.items()}, int(i))
            return ds.evaluate(preds)["token_accuracy"]

        fp32 = acc(g)
        assert fp32 > 50.0
        stats = calibrate(g, ds.calibration_batches(), observer="moving_average")
        int8 = acc(quantize_graph(g, stats))
        fp16 = acc(convert_fp16(g))
        assert fp16 > 0.95 * fp32
        assert int8 < 0.9 * fp32  # the recurrent float island pays dearly

    def test_sr_quality_ladder(self):
        from repro.quantization import calibrate, convert_fp16, quantize_graph

        bundle = create_reference_model("mobile_edge_sr")
        g = export_mobile(bundle.graph)
        ds = create_dataset("superres", g, bundle.config, size=24)

        def acc(graph):
            ex = Executor(graph)
            preds = {}
            for s in range(0, len(ds), 8):
                idx = np.arange(s, min(s + 8, len(ds)))
                out = ex.run(ds.input_batch(idx))
                for j, i in enumerate(idx):
                    preds[int(i)] = ds.postprocess(
                        {k: v[j] for k, v in out.items()}, int(i))
            return ds.evaluate(preds)["psnr"]

        fp32 = acc(g)
        assert fp32 > 18.0  # meaningfully above garbage
        stats = calibrate(g, ds.calibration_batches(), observer="moving_average")
        assert acc(quantize_graph(g, stats)) > 0.95 * fp32  # SR quantizes well
        assert acc(convert_fp16(g)) > 0.99 * fp32

    def test_sr_beats_bilinear_upsampling(self):
        """The fitted SR model must beat the trivial interpolation baseline."""
        from repro.kernels import resize_bilinear
        from repro.datasets.superres import denormalize_image

        bundle = create_reference_model("mobile_edge_sr")
        g = export_mobile(bundle.graph)
        ds = create_dataset("superres", g, bundle.config, size=24)
        ex = Executor(g)
        model_preds, bilinear_preds, targets = [], [], []
        for s in range(0, len(ds), 8):
            idx = np.arange(s, min(s + 8, len(ds)))
            feed = ds.input_batch(idx)
            out = next(iter(ex.run(feed).values()))
            hr = ds.hr_targets[idx].astype(np.float32)
            up = resize_bilinear(denormalize_image(feed["lr_images"]),
                                 hr.shape[1], hr.shape[2])
            for j in range(len(idx)):
                model_preds.append(denormalize_image(out[j]))
                bilinear_preds.append(up[j])
                targets.append(hr[j])
        assert mean_psnr(model_preds, targets) > mean_psnr(bilinear_preds, targets)

    def test_experimental_suite_passes(self):
        harness = BenchmarkHarness(
            version="experimental", rules=QUICK_RULES,
            dataset_sizes={"speech": 48, "superres": 24},
        )
        suite = harness.run_suite("exynos_2100")
        assert {r.task for r in suite.results} == {
            "speech_recognition", "super_resolution"
        }
        assert suite.all_passed

    def test_full_profiles_symbolic_costs(self):
        asr = create_full_model("mobile_streaming_asr")
        assert asr.graph.total_macs > 1e9  # LSTM MACs are accounted
        sr = create_full_model("mobile_edge_sr")
        assert sr.graph.spec(sr.output_names["hr"]).shape == (-1, 256, 256, 3)
