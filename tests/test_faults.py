"""Fault injection and graceful degradation: bounded per-query retry,
flagged partial runs, and suite-level survival of a crashing task."""

import numpy as np
import pytest

from repro.analysis import full_graph_cache
from repro.backends import default_backend_for
from repro.core import (
    QUICK_RULES,
    BenchmarkHarness,
    SystemDescription,
    build_submission,
    check_submission,
    format_report,
)
from repro.datasets import IndexDataset
from repro.hardware import SimulatedDevice, get_soc
from repro.loadgen import (
    AccuracySUT,
    FaultySUT,
    LoadGenerator,
    Mode,
    PerformanceSUT,
    QueryFailure,
    QuerySampleLibrary,
    QueryTimeout,
    Scenario,
    TestSettings,
    validate_log,
)


def _perf_sut():
    soc = get_soc("dimensity_1100")
    be = default_backend_for(soc)
    g = full_graph_cache("mobilenet_edgetpu")
    cm = be.compile_single_stream(g, "image_classification")
    pipes = be.compile_offline(g, "image_classification")
    return PerformanceSUT(SimulatedDevice(soc), cm, pipes)


FAST = TestSettings(min_query_count=128, min_duration_s=0.05)


class TestFaultySUT:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultySUT(_perf_sut(), failure_rate=0.8, timeout_rate=0.3)
        with pytest.raises(ValueError):
            FaultySUT(_perf_sut(), failure_rate=-0.1)
        with pytest.raises(ValueError):
            FaultySUT(_perf_sut(), transient_attempts=0)

    def test_failure_raises_then_recovers(self):
        sut = FaultySUT(_perf_sut(), failure_rate=1.0, transient_attempts=1)
        q = np.array([3], dtype=np.int64)
        with pytest.raises(QueryFailure):
            sut.issue_query(q)
        assert sut.issue_query(q) > 0  # the retry of the same query succeeds
        assert sut.injected["failure"] == 1

    def test_timeout_kind(self):
        sut = FaultySUT(_perf_sut(), timeout_rate=1.0)
        with pytest.raises(QueryTimeout):
            sut.issue_query(np.array([0]))
        assert sut.injected["timeout"] == 1

    def test_nan_latency_injected(self):
        sut = FaultySUT(_perf_sut(), nan_rate=1.0)
        assert np.isnan(sut.issue_query(np.array([0])))

    def test_injection_is_seeded(self):
        def kinds(seed):
            sut = FaultySUT(_perf_sut(), failure_rate=0.3, timeout_rate=0.3,
                            nan_rate=0.3, seed=seed)
            out = []
            for i in range(40):
                try:
                    lat = sut.issue_query(np.array([i]))
                    out.append("nan" if np.isnan(lat) else "ok")
                except QueryFailure:
                    out.append("failure")
                except QueryTimeout:
                    out.append("timeout")
            return out

        assert kinds(7) == kinds(7)
        assert kinds(7) != kinds(8)


class TestRetryRecovers:
    """Transient faults within the retry budget leave a clean, valid run."""

    def test_every_query_faults_once_run_still_clean(self):
        sut = FaultySUT(_perf_sut(), failure_rate=1.0, transient_attempts=1)
        log = LoadGenerator(FAST).run(sut, QuerySampleLibrary(IndexDataset()))
        assert log.query_count >= FAST.min_query_count
        assert log.metadata["fault_retries"] >= FAST.min_query_count
        assert "dropped_queries" not in log.metadata
        assert validate_log(log) == []  # retries are not rule violations

    def test_nan_latency_never_reaches_records(self):
        sut = FaultySUT(_perf_sut(), nan_rate=1.0, transient_attempts=1)
        log = LoadGenerator(FAST).run(sut, QuerySampleLibrary(IndexDataset()))
        assert np.isfinite(log.latencies()).all()
        assert validate_log(log) == []

    def test_mixed_transient_faults(self):
        sut = FaultySUT(_perf_sut(), failure_rate=0.2, timeout_rate=0.1,
                        nan_rate=0.1, transient_attempts=1)
        log = LoadGenerator(FAST).run(sut, QuerySampleLibrary(IndexDataset()))
        assert validate_log(log) == []
        assert sut.total_injected > 0


class TestBudgetExhaustion:
    """Faults outlasting the retry budget degrade the run — never crash."""

    def test_permanent_faults_yield_flagged_partial(self):
        settings = TestSettings(min_query_count=128, min_duration_s=0.05,
                                query_retry_budget=2, query_drop_budget=4)
        # 10 faulty attempts per query > 1+2 attempts: every query drops
        sut = FaultySUT(_perf_sut(), failure_rate=1.0, transient_attempts=10)
        log = LoadGenerator(settings).run(sut, QuerySampleLibrary(IndexDataset()))
        assert log.metadata["dropped_queries"] == settings.query_drop_budget + 1
        assert log.metadata["partial"]
        problems = validate_log(log)
        assert any("dropped" in p for p in problems)
        assert any("partial" in p for p in problems)

    def test_sparse_permanent_faults_complete_with_drops(self):
        settings = TestSettings(min_query_count=128, min_duration_s=0.05,
                                query_retry_budget=1, query_drop_budget=1000)
        sut = FaultySUT(_perf_sut(), failure_rate=0.05, transient_attempts=5)
        log = LoadGenerator(settings).run(sut, QuerySampleLibrary(IndexDataset()))
        assert log.query_count >= settings.min_query_count
        dropped = log.metadata.get("dropped_queries", 0)
        assert dropped > 0
        assert any("dropped" in p for p in validate_log(log))

    def test_offline_burst_fault_degrades(self):
        sut = FaultySUT(_perf_sut(), failure_rate=1.0)
        settings = TestSettings(scenario=Scenario.OFFLINE, offline_sample_count=2048)
        log = LoadGenerator(settings).run(sut, QuerySampleLibrary(IndexDataset()))
        assert log.metadata["partial"]
        assert log.offline_samples == 0
        problems = validate_log(log)
        assert any("partial" in p for p in problems)

    def test_accuracy_drops_break_coverage(self, cls_exported, cls_dataset):
        inner = AccuracySUT(cls_exported, cls_dataset)
        sut = FaultySUT(inner, failure_rate=0.5, transient_attempts=10, seed=3)
        settings = TestSettings(mode=Mode.ACCURACY, query_drop_budget=1000,
                                accuracy_batch_size=8)
        log = LoadGenerator(settings).run(sut, QuerySampleLibrary(cls_dataset))
        inner.close()
        assert log.metadata.get("dropped_queries", 0) > 0
        problems = validate_log(log)
        assert any("covered" in p for p in problems)
        assert any("dropped" in p for p in problems)


class TestSuiteDegradation:
    """One crashing task surfaces as a flagged partial result; the suite,
    the report, and the submission checker all keep working."""

    @pytest.fixture(scope="class")
    def degraded_suite(self):
        harness = BenchmarkHarness(
            version="v1.0", rules=QUICK_RULES, dataset_sizes={"squad": 32}
        )
        original = harness.run_performance

        def crashing_run_performance(task, backend, device):
            raise RuntimeError("delegate crashed while compiling the model")

        harness.run_performance = crashing_run_performance
        suite = harness.run_suite("dimensity_1100", tasks=["question_answering"],
                                  include_offline=False)
        harness.run_performance = original
        return harness, suite

    def test_suite_completes_with_flagged_result(self, degraded_suite):
        _, suite = degraded_suite
        assert len(suite.results) == 1
        r = suite.results[0]
        assert r.degraded and "delegate crashed" in r.error
        assert suite.degraded_tasks == ["question_answering"]
        assert not suite.all_passed

    def test_report_surfaces_failure(self, degraded_suite):
        _, suite = degraded_suite
        text = format_report(suite)
        assert "DEGRADED" in text and "delegate crashed" in text

    def test_checker_flags_degraded_submission(self, degraded_suite):
        harness, suite = degraded_suite
        sub = build_submission(
            harness, suite,
            SystemDescription("x", "dimensity_1100", "phone", "smartphone", "Android"),
        )
        problems = check_submission(sub)
        assert any("degraded" in p for p in problems)
