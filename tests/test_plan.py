"""Planned execution engine: bit-exactness, liveness, profiler, RNG blocks."""

import zlib

import numpy as np
import pytest

from repro.graph import ExecutionPlan, ExecutionProfiler, Executor, export_mobile
from repro.kernels import Numerics
from repro.loadgen.qsl import QuerySampleLibrary
from repro.datasets.base import IndexDataset
from repro.models import available_models, create_reference_model
from repro.quantization import calibrate, convert_fp16, quantize_graph

NUMERICS_MODES = [Numerics.FP32, Numerics.FP16, Numerics.INT8, Numerics.UINT8]


def _random_feeds(graph, rng, batch=4):
    """Role-aware random feeds for any zoo reference graph."""
    feeds = {}
    for spec in graph.inputs:
        shape = spec.with_batch(batch)
        if spec.role == "ids":
            feeds[spec.name] = rng.integers(0, 28, size=shape).astype(np.float32)
        elif spec.role == "mask":
            feeds[spec.name] = np.ones(shape, dtype=np.float32)
        else:
            feeds[spec.name] = rng.normal(0, 0.5, size=shape).astype(np.float32)
    return feeds


@pytest.fixture(scope="module", params=available_models())
def zoo_artifacts(request):
    """Per-model: exported FP32 graph, feeds, and calibration stats."""
    name = request.param
    bundle = create_reference_model(name, fitted=False)
    exported = export_mobile(bundle.graph)
    rng = np.random.default_rng(zlib.crc32(name.encode()))
    feeds = _random_feeds(exported, rng)
    stats = calibrate(exported, [feeds])
    return exported, feeds, stats


def _deployment(exported, stats, numerics):
    if numerics == Numerics.FP32:
        return exported
    if numerics == Numerics.FP16:
        return convert_fp16(exported)
    return quantize_graph(exported, stats, numerics)


class TestBitExactness:
    @pytest.mark.parametrize("numerics", NUMERICS_MODES, ids=lambda n: n.value)
    def test_plan_matches_legacy_executor(self, zoo_artifacts, numerics):
        """ExecutionPlan output == legacy interpreting loop, bit for bit."""
        exported, feeds, stats = zoo_artifacts
        graph = _deployment(exported, stats, numerics)
        ex = Executor(graph)
        legacy = ex.run_unplanned(feeds)
        planned = ex.run(feeds)
        assert legacy.keys() == planned.keys()
        for name in legacy:
            np.testing.assert_array_equal(legacy[name], planned[name])
            assert legacy[name].dtype == planned[name].dtype

    def test_repeated_runs_deterministic(self, zoo_artifacts):
        exported, feeds, _ = zoo_artifacts
        plan = ExecutionPlan.for_graph(exported)
        a = plan.run(feeds)
        b = plan.run(feeds)
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])


class TestPlanCompilation:
    def test_symbolic_rejected(self):
        from repro.models import create_full_model

        with pytest.raises(ValueError):
            ExecutionPlan(create_full_model("mobilenet_edgetpu").graph)

    def test_missing_feed_raises(self, toy_exported):
        exported, _ = toy_exported
        with pytest.raises(KeyError):
            ExecutionPlan(exported).run({})

    def test_plan_cache_shares_and_invalidates(self, toy_exported, toy_inputs):
        exported, out = toy_exported
        plan_a = ExecutionPlan.for_graph(exported)
        assert ExecutionPlan.for_graph(exported) is plan_a
        # replacing a parameter array must invalidate the cached plan
        before = plan_a.run(toy_inputs)[out]
        w_name = next(n for n, v in exported.params.items() if v is not None and v.ndim == 4)
        exported.params[w_name] = exported.params[w_name] * 2.0
        plan_b = ExecutionPlan.for_graph(exported)
        assert plan_b is not plan_a
        after = plan_b.run(toy_inputs)[out]
        assert not np.array_equal(before, after)

    def test_integer_kernels_prepacked(self, toy_exported, toy_inputs):
        exported, _ = toy_exported
        stats = calibrate(exported, [toy_inputs])
        q = quantize_graph(exported, stats)
        plan = ExecutionPlan(q)
        prepacked_types = {
            s.op_type for s in plan._steps if s.prepacked
        }
        assert {"conv2d", "depthwise_conv2d", "fully_connected"} <= prepacked_types

    def test_observer_sees_all_float_tensors(self, toy_exported, toy_inputs):
        exported, _ = toy_exported
        seen = set()
        ExecutionPlan(exported).run(toy_inputs, observer=lambda n, v: seen.add(n))
        produced = {t for op in exported.ops for t in op.outputs}
        assert produced <= seen

    def test_observer_rejected_off_fp32(self, toy_exported, toy_inputs):
        exported, _ = toy_exported
        g = convert_fp16(exported)
        with pytest.raises(ValueError):
            ExecutionPlan(g).run(toy_inputs, observer=lambda n, v: None)


class TestLiveness:
    def test_peak_live_bytes_drops(self, cls_exported):
        """Liveness release must shrink the peak activation working set."""
        rng = np.random.default_rng(0)
        shape = tuple(4 if d == -1 else d for d in cls_exported.inputs[0].shape)
        feeds = {"images": rng.normal(0, 0.5, shape).astype(np.float32)}
        prof_live = ExecutionProfiler()
        ExecutionPlan(cls_exported, liveness=True).run(feeds, profiler=prof_live)
        prof_keep = ExecutionProfiler()
        ExecutionPlan(cls_exported, liveness=False).run(feeds, profiler=prof_keep)
        assert prof_live.peak_live_bytes < prof_keep.peak_live_bytes
        # the unplanned executor retains everything: same peak as liveness=False
        assert prof_live.peak_live_bytes < 0.6 * prof_keep.peak_live_bytes

    def test_outputs_never_released(self, toy_exported, toy_inputs):
        exported, out = toy_exported
        plan = ExecutionPlan(exported)
        released = {t for s in plan._steps for t in s.release}
        assert out not in released


class TestProfiler:
    def test_profile_covers_every_op(self, toy_exported, toy_inputs):
        exported, _ = toy_exported
        prof = ExecutionProfiler()
        Executor(exported).run(toy_inputs, profiler=prof)
        assert set(prof.ops) == {op.name for op in exported.ops}
        assert all(p.calls == 1 for p in prof.ops.values())
        assert all(p.bytes_moved > 0 for p in prof.ops.values())
        assert prof.total_seconds > 0
        assert prof.runs == 1

    def test_top_sorted_and_summary_renders(self, toy_exported, toy_inputs):
        exported, _ = toy_exported
        prof = ExecutionProfiler()
        Executor(exported).run(toy_inputs, profiler=prof)
        top = prof.top(3)
        assert len(top) == 3
        assert top[0].total_seconds >= top[1].total_seconds >= top[2].total_seconds
        text = prof.summary()
        assert "peak live activations" in text
        payload = prof.as_dict()
        assert payload["runs"] == 1 and len(payload["ops"]) == len(exported.ops)


class TestQSLBlockSampling:
    def test_block_draw_matches_per_query_stream(self):
        """Pre-drawn blocks reproduce the legacy per-query sequence exactly."""
        a = QuerySampleLibrary(IndexDataset(64), performance_sample_count=32, seed=99)
        b = QuerySampleLibrary(IndexDataset(64), performance_sample_count=32, seed=99)
        a.load_performance_set()
        b.load_performance_set()
        # cross the block boundary to cover at least one refill
        n = a.block_size + 50
        legacy = [int(a.sample_indices(1)[0]) for _ in range(n)]
        blocked = [b.next_sample_index() for _ in range(n)]
        assert legacy == blocked

    def test_residency_change_invalidates_block(self):
        qsl = QuerySampleLibrary(IndexDataset(64), performance_sample_count=8, seed=7)
        qsl.load_performance_set()
        first = qsl.next_sample_index()
        assert isinstance(first, int)
        qsl.load_samples(np.array([63]))
        assert qsl._block is None  # block discarded on residency change
        assert 0 <= qsl.next_sample_index() < 64
