"""Static verifier tests: every rule fires on a seeded-broken graph, the
clean zoo stays silent, and the placement predictor agrees with the hardware
simulator op-by-op on every applicable vendor profile."""

from __future__ import annotations

import json

import numpy as np
import pytest

from conftest import build_toy_graph
from repro.backends.vendors import BACKEND_FACTORIES
from repro.core.export import validate_package
from repro.graph import GraphBuilder, export_mobile
from repro.graph.graph import Graph, GraphValidationError
from repro.graph.ops import (
    Activation,
    Add,
    Concat,
    Conv2D,
    FullyConnected,
    Op,
    ShapeError,
    Softmax,
    Split,
)
from repro.graph.plan import ExecutionPlan
from repro.graph.tensor import TensorSpec
from repro.hardware.scheduler import FrameworkProfile, partition_graph
from repro.hardware.soc import SOC_CATALOG
from repro.kernels.numerics import Numerics, QuantParams
from repro.models import available_models, create_reference_model
from repro.staticcheck import (
    ALL_FAMILIES,
    KNOWN_FAMILIES,
    RULE_CATALOG,
    RULESET_VERSION,
    Baseline,
    Finding,
    Interval,
    Report,
    Severity,
    accumulator_bound,
    attest,
    attestation_problems,
    check_dataflow,
    check_placement,
    check_plan,
    check_quantization,
    check_ranges,
    independent_shapes,
    infer_graph_ranges,
    input_intervals,
    observed_ranges,
    predict_op_targets,
    predict_placement,
    sweep_zoo,
    verify_graph,
    zoo_deployments,
)
from repro.staticcheck.__main__ import main as staticcheck_main


def _ids(findings):
    return {f.rule_id for f in findings}


def _wire(g: Graph, op: Op, out_shapes, numerics=None):
    """Append an op without add_op's guards (tests build *broken* graphs)."""
    g.ops.append(op)
    for t, shape in zip(op.outputs, out_shapes):
        g.tensor_specs[t] = TensorSpec(t, shape, numerics or g.numerics)
    return op


def _relu(name, src, dst):
    return Activation(name, [src], [dst], kind="relu")


def _base():
    g = Graph("broken")
    g.add_input(TensorSpec("x", (-1, 8, 8, 4)))
    return g


# ---------------------------------------------------------------------------
# dataflow rules DF001-DF011: one deliberately broken graph each
# ---------------------------------------------------------------------------

def _df_dangling():
    g = _base()
    _wire(g, _relu("a", "x", "y"), [(-1, 8, 8, 4)])
    _wire(g, _relu("b", "x", "z"), [(-1, 8, 8, 4)])  # z dangles
    g.output_names = ["y"]
    return g


def _df_unused_param():
    g = _base()
    g.add_param("w_unused", np.zeros((3, 3, 4, 8), np.float32))
    _wire(g, _relu("a", "x", "y"), [(-1, 8, 8, 4)])
    g.output_names = ["y"]
    return g


def _df_duplicate_producer():
    g = _base()
    _wire(g, _relu("a", "x", "y"), [(-1, 8, 8, 4)])
    g.ops.append(_relu("b", "x", "y"))  # second producer of y
    g.output_names = ["y"]
    return g


def _df_unreachable_output():
    g = _base()
    _wire(g, _relu("a", "x", "y"), [(-1, 8, 8, 4)])
    g.output_names = ["y", "ghost"]
    return g


def _df_shape_disagreement():
    g = _base()
    _wire(g, _relu("a", "x", "y"), [(-1, 4, 4, 4)])  # relu cannot change shape
    g.output_names = ["y"]
    return g


def _df_numerics_mismatch():
    g = _base()
    _wire(g, _relu("a", "x", "y"), [(-1, 8, 8, 4)], numerics=Numerics.FP16)
    g.output_names = ["y"]
    return g


def _df_duplicate_op_name():
    g = _base()
    _wire(g, _relu("a", "x", "y"), [(-1, 8, 8, 4)])
    _wire(g, _relu("a", "y", "z"), [(-1, 8, 8, 4)])
    g.output_names = ["z"]
    return g


def _df_missing_param():
    g = _base()
    op = Conv2D("c", ["x"], ["y"], weight="w_missing", stride=1, padding="same")
    _wire(g, op, [(-1, 8, 8, 8)])
    g.output_names = ["y"]
    return g


def _df_param_shadows_input():
    g = _base()
    g.add_param("x", np.zeros((2, 2), np.float32))
    _wire(g, _relu("a", "x", "y"), [(-1, 8, 8, 4)])
    g.output_names = ["y"]
    return g


class _Mystery(Op):
    op_type = "mystery"

    def infer_shapes(self, in_shapes, graph):
        return [in_shapes[0]]


def _df_unverifiable():
    g = _base()
    _wire(g, _Mystery("m", ["x"], ["y"]), [(-1, 8, 8, 4)])
    g.output_names = ["y"]
    return g


DATAFLOW_BREAKERS = {
    "DF001": _df_dangling,
    "DF002": _df_dangling,  # op b contributes to no output
    "DF003": _df_unused_param,
    "DF004": _df_duplicate_producer,
    "DF005": _df_unreachable_output,
    "DF006": _df_shape_disagreement,
    "DF007": _df_numerics_mismatch,
    "DF008": _df_duplicate_op_name,
    "DF009": _df_missing_param,
    "DF010": _df_param_shadows_input,
    "DF011": _df_unverifiable,
}


@pytest.mark.parametrize("rule_id", sorted(DATAFLOW_BREAKERS))
def test_dataflow_rule_fires(rule_id):
    findings = check_dataflow(DATAFLOW_BREAKERS[rule_id]())
    assert rule_id in _ids(findings)
    hit = next(f for f in findings if f.rule_id == rule_id)
    assert hit.severity is RULE_CATALOG[rule_id].severity
    assert hit.location != "<graph>" or rule_id not in ("DF001", "DF006")


def test_clean_toy_graph_has_no_dataflow_findings():
    graph, _ = build_toy_graph()
    assert check_dataflow(export_mobile(graph)) == []


def test_independent_shapes_reports_unverifiable_ops():
    g = _df_unverifiable()
    shapes, unverifiable = independent_shapes(g)
    assert [op.name for op in unverifiable] == ["m"]
    assert "y" not in shapes  # nothing downstream of a mystery op is claimed


# ---------------------------------------------------------------------------
# quantization rules QS001-QS007
# ---------------------------------------------------------------------------

def _qtensor(name, shape, scale, zp=0, numerics=Numerics.UINT8):
    qp = QuantParams(scale=np.array([scale]), zero_point=np.array([zp]),
                     numerics=numerics)
    return TensorSpec(name, shape, numerics, qparams=qp)


def _qs_overflow():
    """UINT8 FC with a 70k-deep reduction of full-scale weights: the
    worst-case accumulator provably exceeds int32."""
    g = Graph("qs_overflow")
    g.numerics = Numerics.UINT8
    g.add_input(_qtensor("x", (-1, 70000), scale=1.0, zp=0))
    g.add_param("w", np.full((70000, 4), 255, np.uint8))
    g.param_qparams["w"] = QuantParams(
        scale=np.array([0.01]), zero_point=np.array([128]), numerics=Numerics.UINT8)
    _wire(g, FullyConnected("fc", ["x"], ["y"], weight="w"), [(-1, 4)])
    g.tensor_specs["y"] = _qtensor("y", (-1, 4), scale=0.05, zp=0)
    g.output_names = ["y"]
    return g


def _qs_small_fc(scale_bias_wrong=False, drop_weight_qp=False):
    g = Graph("qs_fc")
    g.numerics = Numerics.UINT8
    g.add_input(_qtensor("x", (-1, 16), scale=0.05, zp=128))
    g.add_param("w", np.full((16, 4), 130, np.uint8))
    if not drop_weight_qp:
        g.param_qparams["w"] = QuantParams(
            scale=np.array([0.02]), zero_point=np.array([128]),
            numerics=Numerics.UINT8)
    g.add_param("b", np.zeros(4, np.int32))
    bias_scale = 0.05 * 0.02 * (2.0 if scale_bias_wrong else 1.0)
    g.param_qparams["b"] = QuantParams(
        scale=np.array([bias_scale]), zero_point=np.array([0]),
        numerics=Numerics.INT16)
    _wire(g, FullyConnected("fc", ["x"], ["y"], weight="w", bias="b"), [(-1, 4)])
    g.tensor_specs["y"] = _qtensor("y", (-1, 4), scale=0.05, zp=0)
    g.output_names = ["y"]
    return g


def _qs_degenerate_scale():
    g = Graph("qs_scale")
    g.numerics = Numerics.UINT8
    g.add_input(_qtensor("x", (-1, 8), scale=0.05))
    _wire(g, _relu("a", "x", "y"), [(-1, 8)])
    g.tensor_specs["y"] = _qtensor("y", (-1, 8), scale=1e-15)
    g.output_names = ["y"]
    return g


def _qs_zp_out_of_range():
    g = Graph("qs_zp")
    g.numerics = Numerics.UINT8
    g.add_input(_qtensor("x", (-1, 8), scale=0.05))
    _wire(g, _relu("a", "x", "y"), [(-1, 8)])
    g.tensor_specs["y"] = _qtensor("y", (-1, 8), scale=0.05, zp=300)
    g.output_names = ["y"]
    return g


def _qs_concat_clipping():
    g = Graph("qs_concat")
    g.numerics = Numerics.UINT8
    g.add_input(_qtensor("x1", (-1, 4), scale=1.0))  # real range [0, 255]
    g.add_input(_qtensor("x2", (-1, 4), scale=0.05))
    _wire(g, Concat("cat", ["x1", "x2"], ["y"], axis=1), [(-1, 8)])
    g.tensor_specs["y"] = _qtensor("y", (-1, 8), scale=0.1)  # [0, 25.5]: clips x1
    g.output_names = ["y"]
    return g


def _qs_add_scale_mismatch():
    g = Graph("qs_add")
    g.numerics = Numerics.UINT8
    g.add_input(_qtensor("x1", (-1, 4), scale=1.0))
    g.add_input(_qtensor("x2", (-1, 4), scale=0.001))  # 1000x finer
    _wire(g, Add("add", ["x1", "x2"], ["y"]), [(-1, 4)])
    g.tensor_specs["y"] = _qtensor("y", (-1, 4), scale=1.0)
    g.output_names = ["y"]
    return g


def _qs_float_fallback():
    return _qs_small_fc(drop_weight_qp=True)


def _qs_bias_drift():
    return _qs_small_fc(scale_bias_wrong=True)


def _qs_missing_qparams():
    g = Graph("qs_missing")
    g.numerics = Numerics.UINT8
    g.add_input(_qtensor("x", (-1, 8), scale=0.05))
    _wire(g, _relu("a", "x", "y"), [(-1, 8)])
    g.tensor_specs["y"] = TensorSpec("y", (-1, 8), Numerics.UINT8)  # no qparams
    g.output_names = ["y"]
    return g


QUANT_BREAKERS = {
    "QS001": _qs_overflow,
    "QS002": _qs_degenerate_scale,
    "QS003": _qs_zp_out_of_range,
    "QS004": _qs_concat_clipping,
    "QS005": _qs_float_fallback,
    "QS006": _qs_bias_drift,
    "QS007": _qs_missing_qparams,
}


@pytest.mark.parametrize("rule_id", sorted(QUANT_BREAKERS))
def test_quantization_rule_fires(rule_id):
    findings = check_quantization(QUANT_BREAKERS[rule_id]())
    assert rule_id in _ids(findings)


def test_add_scale_mismatch_also_fires_qs004():
    assert "QS004" in _ids(check_quantization(_qs_add_scale_mismatch()))


def test_sound_quantized_fc_is_clean():
    assert check_quantization(_qs_small_fc()) == []


def test_float_graphs_skip_quantization_rules():
    graph, _ = build_toy_graph()
    assert check_quantization(export_mobile(graph)) == []


def test_accumulator_bound_symbolic_is_worst_case():
    """A symbolic weight must bound at least as high as any materialized one."""
    g = _qs_small_fc()
    op = g.ops[0]
    materialized = accumulator_bound(op, g)
    g.params["w"] = None  # same shape, unknown values
    assert accumulator_bound(op, g) >= materialized


# ---------------------------------------------------------------------------
# placement rules BP001-BP004
# ---------------------------------------------------------------------------

PLACEMENT_RULES = {"BP001", "BP002", "BP003", "BP004"}
_EXY = SOC_CATALOG["exynos_990"]


def _predict(g, numerics=Numerics.INT8, framework=None, soc=_EXY):
    return predict_placement(
        g, backend="test", task="t", numerics=numerics, soc=soc,
        primary=soc.accelerator("npu"), fallback=soc.accelerator("cpu"),
        framework=framework)


def test_bp001_fires_on_unknown_op_type():
    g = _df_unverifiable()  # "mystery" is known to no engine class
    findings = check_placement(g, _predict(g), _EXY)
    assert "BP001" in _ids(findings)


def test_bp001_fires_on_unfolded_batch_norm():
    graph, _ = build_toy_graph()  # pre-export: still has batch norms
    findings = check_placement(graph, _predict(graph), _EXY)
    assert any(f.rule_id == "BP001" and "batch_norm" in f.message
               for f in findings)


def test_bp002_fires_when_primary_rejects_numerics():
    g = _base()
    g.add_op(_relu("a", "x", "y"))
    g.set_outputs(["y"])
    pred = _predict(g, numerics=Numerics.FP32)  # the NPU has no FP32 path
    findings = check_placement(g, pred, _EXY)
    assert "BP002" in _ids(findings)
    assert all(acc == "cpu" for _n, acc in pred.op_targets)


def test_bp003_fires_on_shredded_graph():
    g = Graph("confetti")
    g.add_input(TensorSpec("x", (-1, 8)))
    prev = "x"
    for i in range(13):  # relu on NPU, softmax falls back: 26 segments
        g.add_op(_relu(f"a{i}", prev, f"r{i}"))
        g.add_op(Softmax(f"s{i}", [f"r{i}"], [f"p{i}"]))
        prev = f"p{i}"
    g.set_outputs([prev])
    pred = _predict(g)
    assert pred.partition_count == 26
    assert "BP003" in _ids(check_placement(g, pred, _EXY))


def test_bp004_fires_when_fallback_owns_the_macs():
    g = Graph("fallback_heavy")
    g.add_input(TensorSpec("x", (-1, 16)))
    g.add_param("w", np.zeros((16, 64), np.float32))
    g.add_op(_relu("a", "x", "h"))
    g.add_op(FullyConnected("fc", ["h"], ["y"], weight="w"))
    g.set_outputs(["y"])
    fw = FrameworkProfile("t", unsupported_ops=frozenset({"fully_connected"}))
    pred = _predict(g, framework=fw)
    assert pred.fallback_op_types == ["fully_connected"]
    assert pred.primary_mac_fraction == 0.0
    assert "BP004" in _ids(check_placement(g, pred, _EXY))


# ---------------------------------------------------------------------------
# plan rules PL001-PL007 (tampered execution plans / corrupted arena layouts)
# ---------------------------------------------------------------------------

PLAN_RULES = {"PL001", "PL002", "PL003", "PL004", "PL005", "PL006", "PL007"}


def _toy_plan():
    graph, _ = build_toy_graph()
    return ExecutionPlan(export_mobile(graph))


def test_clean_plan_has_no_findings():
    assert check_plan(_toy_plan()) == []


def test_pl001_release_before_last_use():
    plan = _toy_plan()
    victim = plan._steps[-1].inputs[0]
    plan._steps[-2].release = plan._steps[-2].release + (victim,)
    assert "PL001" in _ids(check_plan(plan))


def test_pl002_double_release():
    plan = _toy_plan()
    donor = next(s for s in plan._steps if s.release)
    plan._steps[-1].release = plan._steps[-1].release + (donor.release[0],)
    assert "PL002" in _ids(check_plan(plan))


def test_pl003_unbound_dispatch():
    plan = _toy_plan()
    plan._steps[0].fn = None
    assert "PL003" in _ids(check_plan(plan))


def test_pl004_leaked_intermediate():
    plan = _toy_plan()
    step = next(s for s in plan._steps if s.release)
    victim = step.release[0]
    step.release = tuple(t for t in step.release if t != victim)
    findings = check_plan(plan)
    assert any(f.rule_id == "PL004" and f.tensor == victim for f in findings)


def test_pl005_output_released():
    plan = _toy_plan()
    out = plan.graph.output_names[0]
    plan._steps[-1].release = plan._steps[-1].release + (out,)
    assert "PL005" in _ids(check_plan(plan))


def test_pl006_read_of_undefined_tensor():
    plan = _toy_plan()
    plan._steps[0].inputs = plan._steps[0].inputs + ("phantom",)
    findings = check_plan(plan)
    assert any(f.rule_id == "PL006" and f.tensor == "phantom" for f in findings)


def _corrupt_slot(layout, name, **overrides):
    from repro.graph.arena import ArenaLayout, ArenaSlot

    s = layout.slots[name]
    fields = {"name": s.name, "key": s.key, "offset": s.offset,
              "nbytes": s.nbytes, "first": s.first, "last": s.last}
    fields.update(overrides)
    slots = dict(layout.slots)
    slots[name] = ArenaSlot(**fields)
    return ArenaLayout(slots=slots, arena_bytes=layout.arena_bytes,
                       alignment=layout.alignment)


def test_pl007_overlapping_live_slots():
    from repro.staticcheck import check_arena_layout

    plan = _toy_plan()
    layout = plan.arena_layout(batch=1)
    a = next(iter(layout.slots.values()))
    victim = next(
        n for n, b in layout.slots.items()
        if n != a.name and b.key == a.key
        and a.first <= b.last and b.first <= a.last
    )
    broken = _corrupt_slot(layout, victim, offset=a.offset)
    assert check_arena_layout(plan, layout) == []
    assert "PL007" in _ids(check_arena_layout(plan, broken))


def test_pl007_interval_disagrees_with_replay():
    from repro.staticcheck import check_arena_layout

    plan = _toy_plan()
    layout = plan.arena_layout(batch=1)
    name = next(iter(layout.slots))
    s = layout.slots[name]
    broken = _corrupt_slot(layout, name, last=s.last + 1)
    assert any(
        f.rule_id == "PL007" and f.tensor == name
        for f in check_arena_layout(plan, broken)
    )


def test_pl007_undersized_slot():
    from repro.staticcheck import check_arena_layout

    plan = _toy_plan()
    layout = plan.arena_layout(batch=1)
    name = next(iter(layout.slots))
    broken = _corrupt_slot(layout, name, nbytes=layout.slots[name].nbytes // 2)
    assert any(
        f.rule_id == "PL007" and "bytes" in f.message
        for f in check_arena_layout(plan, broken)
    )


# ---------------------------------------------------------------------------
# value-range rules VR001-VR006: one seeded-broken graph each
# ---------------------------------------------------------------------------

def _vr_range_aware_overflow():
    """The QS001 graph, but with a declared input domain wide enough that
    even the range-restricted accumulator provably exceeds int32."""
    g = _qs_overflow()
    g.inputs[0].domain = (0.0, 255.0)
    return g


def _vr_requant_clipping():
    # the FC's proven output interval reaches -4.1, but the uint8 output
    # qparams (zp=0) cannot represent anything negative: requantization clips
    return _qs_small_fc()


def _vr_uncovered_calibration():
    g = _qs_small_fc()
    g.metadata["quantization"] = {"calibration_ranges": {"y": [0.0, 0.1]}}
    return g


def _vr_fp16_overflow():
    g = Graph("vr_fp16_overflow")
    g.numerics = Numerics.FP16
    g.add_input(TensorSpec("x", (-1, 16), Numerics.FP16, domain=(-100.0, 100.0)))
    g.add_param("w", np.full((16, 64), 50.0, np.float32))
    _wire(g, FullyConnected("fc", ["x"], ["y"], weight="w"), [(-1, 64)],
          numerics=Numerics.FP16)
    g.output_names = ["y"]
    return g


def _vr_fp16_denormal():
    g = Graph("vr_fp16_denormal")
    g.numerics = Numerics.FP16
    g.add_input(TensorSpec("x", (-1, 16), Numerics.FP16, domain=(-1e-3, 1e-3)))
    g.add_param("w", np.full((16, 4), 1e-6, np.float32))
    _wire(g, FullyConnected("fc", ["x"], ["y"], weight="w"), [(-1, 4)],
          numerics=Numerics.FP16)
    g.output_names = ["y"]
    return g


def _vr_dead_activation():
    g = Graph("vr_dead")
    g.add_input(TensorSpec("x", (-1, 8), domain=(-5.0, -1.0)))
    _wire(g, _relu("a", "x", "y"), [(-1, 8)])
    g.output_names = ["y"]
    return g


RANGE_BREAKERS = {
    "VR001": _vr_range_aware_overflow,
    "VR002": _vr_requant_clipping,
    "VR003": _vr_uncovered_calibration,
    "VR004": _vr_fp16_overflow,
    "VR005": _vr_fp16_denormal,
    "VR006": _vr_dead_activation,
}


@pytest.mark.parametrize("rule_id", sorted(RANGE_BREAKERS))
def test_range_rule_fires(rule_id):
    findings, _metrics = check_ranges(RANGE_BREAKERS[rule_id]())
    assert rule_id in _ids(findings)
    hit = next(f for f in findings if f.rule_id == rule_id)
    assert hit.severity is RULE_CATALOG[rule_id].severity


def test_vr001_needs_the_declared_domain():
    """Without the wide domain, the range-aware accumulator proof clears the
    very graph QS001 condemns — the whole point of the tightening."""
    findings, _ = check_ranges(_qs_overflow())
    assert "VR001" not in _ids(findings)
    assert "QS001" in _ids(check_quantization(_qs_overflow()))


def test_range_aware_accumulator_bound_never_exceeds_format_bound():
    g = _qs_overflow()
    op = g.ops[0]
    fmt = accumulator_bound(g.ops[0], g)
    assert accumulator_bound(op, g, (0, 9)) <= fmt
    assert accumulator_bound(op, g, (0, 9)) < fmt  # strictly tighter here
    assert accumulator_bound(op, g, (0, 255)) == fmt


def test_input_intervals_precedence():
    g = Graph("seeds")
    g.add_input(TensorSpec("a", (-1, 4), domain=(-1.0, 1.0)))
    g.add_input(TensorSpec("m", (-1, 4), role="mask"))
    g.add_input(TensorSpec("d", (-1, 4)))
    seeds = input_intervals(g, overrides={"a": (0.0, 0.5)})
    assert seeds["a"] == Interval(0.0, 0.5)      # override beats domain
    assert seeds["m"] == Interval(0.0, 1.0)      # role default
    assert seeds["d"] == Interval(-8.0, 8.0)     # DEFAULT_DATA_DOMAIN
    assert input_intervals(g)["a"] == Interval(-1.0, 1.0)


def test_quantized_storage_clips_to_representable_window():
    an = infer_graph_ranges(_qs_small_fc())
    x = an.intervals["x"]  # scale 0.05, zp 128: representable [-6.4, 6.35]
    assert -6.5 <= x.lo and x.hi <= 6.4
    assert an.pre_storage["x"] == Interval(-8.0, 8.0)


def test_every_catalog_rule_has_a_breaker_test():
    covered = (set(DATAFLOW_BREAKERS) | set(QUANT_BREAKERS)
               | PLACEMENT_RULES | PLAN_RULES | set(RANGE_BREAKERS))
    assert covered == set(RULE_CATALOG)


# ---------------------------------------------------------------------------
# transfer-function soundness: per-op property fuzz + the zoo x numerics
# matrix, observed concrete ranges vs proven intervals
# ---------------------------------------------------------------------------

def _fz_image(name, ch=4, lo=-2.0, hi=2.0):
    b = GraphBuilder(name, seed=5)
    return b, b.input("x", (-1, 8, 8, ch), domain=(lo, hi))


def _fz_conv():
    b, x = _fz_image("fz_conv")
    b.outputs(b.conv(x, 8, activation="relu"))
    return b.build()


def _fz_dwconv():
    b, x = _fz_image("fz_dwconv")
    b.outputs(b.dwconv(x, activation="relu6"))
    return b.build()


def _fz_fc():
    b = GraphBuilder("fz_fc", seed=5)
    x = b.input("x", (-1, 16), domain=(-3.0, 3.0))
    b.outputs(b.fc(x, 8))
    return b.build()


def _fz_avg_pool():
    b, x = _fz_image("fz_avgpool")
    b.outputs(b.avg_pool(x, 2))
    return b.build()


def _fz_max_pool():
    b, x = _fz_image("fz_maxpool")
    b.outputs(b.max_pool(x, 2))
    return b.build()


def _fz_global_pool():
    b, x = _fz_image("fz_gap")
    b.outputs(b.global_pool(x))
    return b.build()


def _fz_resize():
    b, x = _fz_image("fz_resize")
    b.outputs(b.resize(x, 16, 16))
    return b.build()


def _fz_add():
    b, x = _fz_image("fz_add")
    b.outputs(b.add(b.conv(x, 4, name="c1"), b.conv(x, 4, name="c2"),
                    activation="relu"))
    return b.build()


def _fz_concat():
    b, x = _fz_image("fz_concat")
    b.outputs(b.concat([b.conv(x, 4, name="c1"), b.conv(x, 4, name="c2")]))
    return b.build()


def _fz_activation():
    # one branch per transfer-table kind, all from the same signed input
    b = GraphBuilder("fz_act", seed=5)
    x = b.input("x", (-1, 16), domain=(-6.0, 6.0))
    kinds = ("relu", "relu6", "hard_sigmoid", "hard_swish", "sigmoid",
             "tanh", "gelu")
    b.outputs(*[b.activation(x, k, name=f"a_{k}") for k in kinds])
    return b.build()


def _fz_softmax():
    b = GraphBuilder("fz_softmax", seed=5)
    x = b.input("x", (-1, 16), domain=(-4.0, 4.0))
    b.outputs(b.softmax(x))
    return b.build()


def _fz_reshape():
    b, x = _fz_image("fz_reshape")
    b.outputs(b.reshape(x, (-1, 256)))
    return b.build()


def _fz_batch_norm():
    b, x = _fz_image("fz_bn")
    b.outputs(b.conv(x, 8, use_bn=True, activation="relu"))
    return b.build()


def _fz_layer_norm():
    b = GraphBuilder("fz_ln", seed=5)
    x = b.input("x", (-1, 4, 16), domain=(-2.0, 2.0))
    b.outputs(b.layer_norm(x))
    return b.build()


def _fz_attention():
    b = GraphBuilder("fz_attn", seed=5)
    x = b.input("x", (-1, 4, 16), domain=(-1.0, 1.0))
    b.outputs(b.attention(x, x, x, num_heads=2))
    return b.build()


def _fz_embedding():
    b = GraphBuilder("fz_embed", seed=5)
    ids = b.input("ids", (-1, 6), role="ids")
    b.outputs(b.embedding(ids, vocab=30, dim=8, max_positions=6))
    return b.build()


def _fz_split():
    b, x = _fz_image("fz_split")
    b.outputs(*b.split(x, 2))
    return b.build()


def _fz_lstm():
    b = GraphBuilder("fz_lstm", seed=5)
    x = b.input("x", (-1, 5, 8), domain=(-2.0, 2.0))
    b.outputs(b.lstm(x, 8))
    return b.build()


def _fz_depth_to_space():
    b, x = _fz_image("fz_d2s", ch=8)
    b.outputs(b.depth_to_space(x, 2))
    return b.build()


def _fz_constant():
    b, x = _fz_image("fz_constant", ch=4)
    k = b.constant(np.linspace(-1.5, 1.5, 8 * 8 * 4, dtype=np.float32).reshape(8, 8, 4))
    b.outputs(b.add(x, k))
    return b.build()


def _fz_pad():
    b, x = _fz_image("fz_pad")
    b.outputs(b.conv(b.pad(x, (1, 1), (1, 1), value=0.5), 4, k=3, padding="valid"))
    return b.build()


FUZZ_BUILDERS = {
    "conv2d": _fz_conv,
    "depthwise_conv2d": _fz_dwconv,
    "fully_connected": _fz_fc,
    "avg_pool2d": _fz_avg_pool,
    "max_pool2d": _fz_max_pool,
    "global_avg_pool": _fz_global_pool,
    "resize_bilinear": _fz_resize,
    "add": _fz_add,
    "concat": _fz_concat,
    "activation": _fz_activation,
    "softmax": _fz_softmax,
    "reshape": _fz_reshape,
    "batch_norm": _fz_batch_norm,
    "layer_norm": _fz_layer_norm,
    "attention": _fz_attention,
    "embedding": _fz_embedding,
    "split": _fz_split,
    "lstm": _fz_lstm,
    "depth_to_space": _fz_depth_to_space,
    "constant": _fz_constant,
    "pad": _fz_pad,
}


def _domain_feeds(graph, rng, batch=2):
    feeds = {}
    for spec in graph.inputs:
        shape = spec.with_batch(batch)
        if spec.role == "ids":
            feeds[spec.name] = rng.integers(0, 28, size=shape).astype(np.float32)
        elif spec.role == "mask":
            feeds[spec.name] = np.ones(shape, dtype=np.float32)
        else:
            lo, hi = spec.domain if spec.domain else (-8.0, 8.0)
            feeds[spec.name] = np.clip(
                rng.normal(0, 0.5 * max(abs(lo), abs(hi)), size=shape), lo, hi
            ).astype(np.float32)
    return feeds


def _assert_observed_within_proven(graph, analysis, feeds_seq):
    obs = observed_ranges(graph, feeds_seq)
    bad = [(n, o, analysis.intervals[n]) for n, o in obs.items()
           if n in analysis.intervals
           and not (analysis.intervals[n].lo <= o[0]
                    and o[1] <= analysis.intervals[n].hi)]
    assert bad == []


@pytest.mark.parametrize("op_type", sorted(FUZZ_BUILDERS))
def test_transfer_function_soundness_fuzz(op_type):
    """Property fuzz: for seeded random feeds inside the declared input
    domain, every concrete tensor value lies inside the proven interval."""
    g = FUZZ_BUILDERS[op_type]()
    assert any(op.op_type == op_type for op in g.ops)
    analysis = infer_graph_ranges(g)
    rng = np.random.default_rng(11)
    feeds_seq = [_domain_feeds(g, rng) for _ in range(4)]
    _assert_observed_within_proven(g, analysis, feeds_seq)


def test_fuzz_covers_every_range_transfer():
    """Every op class with its own ``infer_ranges`` has a fuzz case."""
    def subclasses(c):
        for s in c.__subclasses__():
            yield s
            yield from subclasses(s)

    overriding = {c.op_type for c in subclasses(Op)
                  if "infer_ranges" in c.__dict__}
    exercised = {op.op_type for t in FUZZ_BUILDERS for op in FUZZ_BUILDERS[t]().ops}
    assert overriding <= exercised


@pytest.mark.parametrize("model", available_models())
def test_zoo_observed_ranges_within_proven(model):
    """The soundness invariant across the deployment matrix: for every zoo
    model x {fp32, fp16, int8, uint8}, instrumented execution stays inside
    the proven intervals, and the range-aware accumulator bound never
    exceeds the format worst case."""
    modes = (Numerics.FP32, Numerics.FP16, Numerics.INT8, Numerics.UINT8)
    for numerics, graph in zoo_deployments(model, modes):
        analysis = infer_graph_ranges(graph)
        rng = np.random.default_rng(1)
        _assert_observed_within_proven(graph, analysis, [_domain_feeds(graph, rng)])
        for name, bounds in analysis.acc_bounds.items():
            assert bounds["range_aware"] <= bounds["format"], (model, numerics, name)


def test_ranges_family_is_opt_in():
    assert "ranges" not in ALL_FAMILIES
    assert "ranges" in KNOWN_FAMILIES


def test_verify_graph_with_ranges_family_reports_metrics():
    graph, _ = build_toy_graph()
    report = verify_graph(export_mobile(graph),
                          families=("dataflow", "ranges"))
    metrics = report.metrics["ranges"]
    assert metrics["tensors"] == metrics["bounded"] > 0
    assert metrics["tensors"] == len(metrics["intervals"])
    assert all(len(v) == 2 for v in metrics["intervals"].values())


# ---------------------------------------------------------------------------
# cross-validation: predictor vs the hardware simulator, every vendor profile
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def exported_zoo():
    graphs = {}
    for name in available_models():
        g = create_reference_model(name, fitted=False).graph
        if not g.frozen:
            g = export_mobile(g)
        graphs[name] = g
    return graphs


def _applicable_profiles():
    for backend_name, factory in sorted(BACKEND_FACTORIES.items()):
        for _soc_name, soc in sorted(SOC_CATALOG.items()):
            config = factory(soc)
            if config.vendor is not None and config.vendor != soc.vendor:
                continue
            if config.vendor is None and soc.name != "snapdragon_888":
                continue
            yield backend_name, config, soc


def test_predictor_agrees_with_simulator(exported_zoo):
    """For every (vendor profile, SoC, model): the static predictor and the
    runtime partitioner must assign every op to the same engine, yield the
    same segment count, and the same fallback-op set."""
    compared = 0
    for backend_name, config, soc in _applicable_profiles():
        for model, g in exported_zoo.items():
            task = str(g.metadata.get("task", "unknown"))
            cfg = config.tasks.get(task)
            if cfg is None:
                continue
            fw = cfg.framework or config.framework
            primary = soc.accelerator(cfg.primary)
            fallback = soc.accelerator("cpu")
            secondary = soc.accelerator(cfg.secondary) if cfg.secondary else None

            targets = predict_op_targets(
                g, primary, fallback, cfg.numerics, secondary, fw.unsupported_ops)
            segments = partition_graph(
                g, primary, fallback, cfg.numerics, secondary, fw.unsupported_ops)
            simulated = {name: seg.accelerator.name
                         for seg in segments for name in seg.op_names}
            where = f"{backend_name}@{soc.name}/{model}"
            assert {n: a.name for n, a in targets} == simulated, where

            pred = predict_placement(
                g, backend=backend_name, task=task, numerics=cfg.numerics,
                soc=soc, primary=primary, fallback=fallback,
                secondary=secondary, framework=fw)
            assert pred.partition_count == len(segments), where
            assert set(pred.fallback_ops) == {
                n for n, acc in simulated.items() if acc != primary.name}, where
            compared += 1
    assert compared >= 20  # every vendor profile exercised


def test_enn_v07_concat_exclusion_fragments_deeplab(exported_zoo):
    """The paper's 12.7x segmentation story: the v0.7 ENN driver cannot place
    concat on the NPU, shredding DeepLab; the v1.0 driver fixes it."""
    g = exported_zoo["deeplab_v3plus"]

    def place(soc_name):
        soc = SOC_CATALOG[soc_name]
        config = BACKEND_FACTORIES["enn"](soc)
        cfg = config.tasks["semantic_segmentation"]
        fw = cfg.framework or config.framework
        return fw, predict_placement(
            g, backend="enn", task="semantic_segmentation", numerics=cfg.numerics,
            soc=soc, primary=soc.accelerator(cfg.primary),
            fallback=soc.accelerator("cpu"),
            secondary=soc.accelerator(cfg.secondary) if cfg.secondary else None,
            framework=fw)

    fw_990, old = place("exynos_990")
    fw_2100, new = place("exynos_2100")
    assert "concat" in fw_990.unsupported_ops
    assert "concat" not in fw_2100.unsupported_ops
    assert "concat" in old.fallback_op_types
    assert old.partition_count > new.partition_count
    assert old.boundary_sync_ms > new.boundary_sync_ms


# ---------------------------------------------------------------------------
# zoo sweep: the whole model zoo x all numerics must come back clean
# ---------------------------------------------------------------------------

def test_zoo_sweep_is_clean():
    reports = sweep_zoo()
    assert len(reports) == 4 * len(available_models())
    offenders = [f.render() for r in reports for f in r.findings]
    assert offenders == []
    # placement metrics exist and the predicted fragmentation stays in budget
    worst = max(p["partition_count"] for r in reports
                for p in r.metrics.get("placements", []))
    assert 1 <= worst <= 24


def test_verify_graph_runs_all_families():
    graph, _ = build_toy_graph()
    report = verify_graph(export_mobile(graph))
    assert report.clean
    assert "plan" in report.metrics
    assert "placements" in report.metrics


def test_verify_graph_rejects_unknown_family():
    graph, _ = build_toy_graph()
    with pytest.raises(ValueError, match="unknown analyzer"):
        verify_graph(export_mobile(graph), families=("dataflow", "nonsense"))


# ---------------------------------------------------------------------------
# findings, baselines, attestation, CLI
# ---------------------------------------------------------------------------

def test_finding_rejects_unknown_rule_id():
    with pytest.raises(KeyError):
        Finding("XX999", "g", message="nope")


def test_baseline_roundtrip_suppresses_known_findings(tmp_path):
    findings = check_dataflow(_df_dangling())
    assert findings
    path = tmp_path / "baseline.json"
    Baseline.from_findings(findings, "grandfathered").save(path)
    report = Report("broken[fp32]")
    report.extend(findings)
    report.apply_baseline(Baseline.load(path))
    assert report.findings == []
    assert len(report.suppressed) == len(findings)
    # a *new* finding is not suppressed by the old baseline
    fresh = Report("other")
    fresh.extend(check_dataflow(_df_duplicate_op_name()))
    fresh.apply_baseline(Baseline.load(path))
    assert fresh.findings


def test_severity_ordering_and_report_gating():
    report = Report("x")
    report.extend(check_dataflow(_df_dangling()))  # DF001 error + DF002 warning
    assert len(report.at_least(Severity.ERROR)) < len(report.at_least(Severity.INFO))
    assert report.errors and not report.clean


def test_export_stamps_a_verified_attestation():
    graph, _ = build_toy_graph()
    g = export_mobile(graph)
    stamp = g.metadata["staticcheck"]
    assert stamp["verified"] is True
    assert stamp["ruleset"] == RULESET_VERSION
    assert stamp["checksum"] == g.checksum()
    assert attestation_problems(g) == []


def test_tampering_after_attestation_is_detected():
    graph, _ = build_toy_graph()
    g = export_mobile(graph)
    name = next(iter(g.params))
    g.params[name] = g.params[name] + 1.0
    assert any("checksum" in p for p in attestation_problems(g))


def test_failed_verification_is_recorded_in_the_stamp():
    g = _df_dangling()
    stamp = attest(g, verify_graph(g, families=("dataflow",)))
    assert stamp["verified"] is False and stamp["errors"] >= 1
    assert any("unresolved error" in p for p in attestation_problems(g))


def test_validate_package_flags_bad_attestations(tmp_path):
    root = tmp_path / "pkg"
    (root / "results" / "image_classification").mkdir(parents=True)
    (root / "system.json").write_text("{}")
    (root / "summary.json").write_text("[]")
    (root / "provenance.json").write_text(json.dumps({
        "version": "v1.0",
        "models": {"image_classification": {
            "staticcheck": {"ruleset": RULESET_VERSION, "verified": False,
                            "errors": 2, "checksum": "aaa"},
            "deployed_checksum": "bbb",
        }},
    }))
    problems = validate_package(root)
    assert any("failed static verification" in p for p in problems)
    assert any("modified after" in p for p in problems)


def test_cli_single_model_json(capsys):
    rc = staticcheck_main(["mobilenet_edgetpu", "--numerics", "fp32",
                           "--families", "dataflow,placement",
                           "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert payload["exit_code"] == 0
    assert payload["ruleset"] == RULESET_VERSION
    assert payload["reports"][0]["subject"].endswith("[fp32]")


def test_cli_ranges_flag_appends_family(capsys):
    rc = staticcheck_main(["mobile_streaming_asr", "--numerics", "fp32",
                           "--ranges", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0  # fp32 zoo deployments carry no VR findings
    assert "ranges" in payload["families"]
    assert set(payload["families"]) == set(ALL_FAMILIES) | {"ranges"}


def test_cli_ranges_baseline_roundtrip(tmp_path, capsys):
    """The ci.sh contract: the int8 VR findings gate until baselined."""
    args = ["mobile_streaming_asr", "--numerics", "int8", "--ranges"]
    assert staticcheck_main(args) == 1  # VR002 warnings gate by default
    path = tmp_path / "vr_known.json"
    assert staticcheck_main(args + ["--write-baseline", str(path)]) == 0
    assert json.loads(path.read_text())  # non-empty suppression file
    assert staticcheck_main(args + ["--baseline", str(path)]) == 0
    capsys.readouterr()


def test_cli_rejects_unknown_model(capsys):
    with pytest.raises(SystemExit):
        staticcheck_main(["no_such_model"])


def test_cli_write_baseline_of_clean_model_is_empty(tmp_path, capsys):
    path = tmp_path / "known.json"
    rc = staticcheck_main(["mobilenet_edgetpu", "--numerics", "fp32",
                           "--families", "dataflow",
                           "--write-baseline", str(path)])
    assert rc == 0
    assert json.loads(path.read_text()) == {}


# ---------------------------------------------------------------------------
# satellites: tightened Graph.validate and ShapeError context
# ---------------------------------------------------------------------------

class TestValidateTightening:
    def test_duplicate_op_names_rejected(self):
        g = _df_duplicate_op_name()
        with pytest.raises(GraphValidationError, match="more than once"):
            g.validate()

    def test_output_naming_nonexistent_tensor_rejected(self):
        g = _df_unreachable_output()
        with pytest.raises(GraphValidationError, match="ghost"):
            g.validate()

    def test_param_shadowing_input_rejected(self):
        g = _df_param_shadows_input()
        with pytest.raises(GraphValidationError, match="shadows"):
            g.validate()

    def test_duplicate_producer_rejected_with_both_op_names(self):
        g = _df_duplicate_producer()
        with pytest.raises(GraphValidationError, match="'a' and 'b'"):
            g.validate()


class TestShapeErrorContext:
    def test_conv_channel_mismatch(self):
        g = Graph("t")
        g.add_input(TensorSpec("x", (-1, 8, 8, 4)))
        g.add_param("w", np.zeros((3, 3, 5, 8), np.float32))
        with pytest.raises(ShapeError) as ei:
            g.add_op(Conv2D("c", ["x"], ["y"], weight="w", stride=1,
                            padding="same"))
        err = ei.value
        assert err.op_name == "c" and err.op_type == "conv2d"
        assert err.in_shapes == [(-1, 8, 8, 4)]
        assert "'c'" in str(err) and "(-1, 8, 8, 4)" in str(err)

    def test_add_operand_mismatch(self):
        g = Graph("t")
        g.add_input(TensorSpec("a", (-1, 4, 4, 2)))
        g.add_input(TensorSpec("b", (-1, 5, 4, 2)))
        with pytest.raises(ShapeError, match="disagree beyond the batch dim"):
            g.add_op(Add("add", ["a", "b"], ["y"]))

    def test_concat_non_axis_mismatch_names_dims(self):
        g = Graph("t")
        g.add_input(TensorSpec("a", (-1, 4, 4, 2)))
        g.add_input(TensorSpec("b", (-1, 5, 4, 2)))
        with pytest.raises(ShapeError, match=r"non-concat dim\(s\) \[1\]"):
            g.add_op(Concat("cat", ["a", "b"], ["y"], axis=3))

    def test_split_divisibility(self):
        g = Graph("t")
        g.add_input(TensorSpec("x", (-1, 10)))
        with pytest.raises(ShapeError, match="not divisible into 3 parts"):
            g.add_op(Split("s", ["x"], ["p0", "p1", "p2"], parts=3))
