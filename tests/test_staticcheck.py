"""Static verifier tests: every rule fires on a seeded-broken graph, the
clean zoo stays silent, and the placement predictor agrees with the hardware
simulator op-by-op on every applicable vendor profile."""

from __future__ import annotations

import json

import numpy as np
import pytest

from conftest import build_toy_graph
from repro.backends.vendors import BACKEND_FACTORIES
from repro.core.export import validate_package
from repro.graph import export_mobile
from repro.graph.graph import Graph, GraphValidationError
from repro.graph.ops import (
    Activation,
    Add,
    Concat,
    Conv2D,
    FullyConnected,
    Op,
    ShapeError,
    Softmax,
    Split,
)
from repro.graph.plan import ExecutionPlan
from repro.graph.tensor import TensorSpec
from repro.hardware.scheduler import FrameworkProfile, partition_graph
from repro.hardware.soc import SOC_CATALOG
from repro.kernels.numerics import Numerics, QuantParams
from repro.models import available_models, create_reference_model
from repro.staticcheck import (
    RULE_CATALOG,
    RULESET_VERSION,
    Baseline,
    Finding,
    Report,
    Severity,
    accumulator_bound,
    attest,
    attestation_problems,
    check_dataflow,
    check_placement,
    check_plan,
    check_quantization,
    independent_shapes,
    predict_op_targets,
    predict_placement,
    sweep_zoo,
    verify_graph,
)
from repro.staticcheck.__main__ import main as staticcheck_main


def _ids(findings):
    return {f.rule_id for f in findings}


def _wire(g: Graph, op: Op, out_shapes, numerics=None):
    """Append an op without add_op's guards (tests build *broken* graphs)."""
    g.ops.append(op)
    for t, shape in zip(op.outputs, out_shapes):
        g.tensor_specs[t] = TensorSpec(t, shape, numerics or g.numerics)
    return op


def _relu(name, src, dst):
    return Activation(name, [src], [dst], kind="relu")


def _base():
    g = Graph("broken")
    g.add_input(TensorSpec("x", (-1, 8, 8, 4)))
    return g


# ---------------------------------------------------------------------------
# dataflow rules DF001-DF011: one deliberately broken graph each
# ---------------------------------------------------------------------------

def _df_dangling():
    g = _base()
    _wire(g, _relu("a", "x", "y"), [(-1, 8, 8, 4)])
    _wire(g, _relu("b", "x", "z"), [(-1, 8, 8, 4)])  # z dangles
    g.output_names = ["y"]
    return g


def _df_unused_param():
    g = _base()
    g.add_param("w_unused", np.zeros((3, 3, 4, 8), np.float32))
    _wire(g, _relu("a", "x", "y"), [(-1, 8, 8, 4)])
    g.output_names = ["y"]
    return g


def _df_duplicate_producer():
    g = _base()
    _wire(g, _relu("a", "x", "y"), [(-1, 8, 8, 4)])
    g.ops.append(_relu("b", "x", "y"))  # second producer of y
    g.output_names = ["y"]
    return g


def _df_unreachable_output():
    g = _base()
    _wire(g, _relu("a", "x", "y"), [(-1, 8, 8, 4)])
    g.output_names = ["y", "ghost"]
    return g


def _df_shape_disagreement():
    g = _base()
    _wire(g, _relu("a", "x", "y"), [(-1, 4, 4, 4)])  # relu cannot change shape
    g.output_names = ["y"]
    return g


def _df_numerics_mismatch():
    g = _base()
    _wire(g, _relu("a", "x", "y"), [(-1, 8, 8, 4)], numerics=Numerics.FP16)
    g.output_names = ["y"]
    return g


def _df_duplicate_op_name():
    g = _base()
    _wire(g, _relu("a", "x", "y"), [(-1, 8, 8, 4)])
    _wire(g, _relu("a", "y", "z"), [(-1, 8, 8, 4)])
    g.output_names = ["z"]
    return g


def _df_missing_param():
    g = _base()
    op = Conv2D("c", ["x"], ["y"], weight="w_missing", stride=1, padding="same")
    _wire(g, op, [(-1, 8, 8, 8)])
    g.output_names = ["y"]
    return g


def _df_param_shadows_input():
    g = _base()
    g.add_param("x", np.zeros((2, 2), np.float32))
    _wire(g, _relu("a", "x", "y"), [(-1, 8, 8, 4)])
    g.output_names = ["y"]
    return g


class _Mystery(Op):
    op_type = "mystery"

    def infer_shapes(self, in_shapes, graph):
        return [in_shapes[0]]


def _df_unverifiable():
    g = _base()
    _wire(g, _Mystery("m", ["x"], ["y"]), [(-1, 8, 8, 4)])
    g.output_names = ["y"]
    return g


DATAFLOW_BREAKERS = {
    "DF001": _df_dangling,
    "DF002": _df_dangling,  # op b contributes to no output
    "DF003": _df_unused_param,
    "DF004": _df_duplicate_producer,
    "DF005": _df_unreachable_output,
    "DF006": _df_shape_disagreement,
    "DF007": _df_numerics_mismatch,
    "DF008": _df_duplicate_op_name,
    "DF009": _df_missing_param,
    "DF010": _df_param_shadows_input,
    "DF011": _df_unverifiable,
}


@pytest.mark.parametrize("rule_id", sorted(DATAFLOW_BREAKERS))
def test_dataflow_rule_fires(rule_id):
    findings = check_dataflow(DATAFLOW_BREAKERS[rule_id]())
    assert rule_id in _ids(findings)
    hit = next(f for f in findings if f.rule_id == rule_id)
    assert hit.severity is RULE_CATALOG[rule_id].severity
    assert hit.location != "<graph>" or rule_id not in ("DF001", "DF006")


def test_clean_toy_graph_has_no_dataflow_findings():
    graph, _ = build_toy_graph()
    assert check_dataflow(export_mobile(graph)) == []


def test_independent_shapes_reports_unverifiable_ops():
    g = _df_unverifiable()
    shapes, unverifiable = independent_shapes(g)
    assert [op.name for op in unverifiable] == ["m"]
    assert "y" not in shapes  # nothing downstream of a mystery op is claimed


# ---------------------------------------------------------------------------
# quantization rules QS001-QS007
# ---------------------------------------------------------------------------

def _qtensor(name, shape, scale, zp=0, numerics=Numerics.UINT8):
    qp = QuantParams(scale=np.array([scale]), zero_point=np.array([zp]),
                     numerics=numerics)
    return TensorSpec(name, shape, numerics, qparams=qp)


def _qs_overflow():
    """UINT8 FC with a 70k-deep reduction of full-scale weights: the
    worst-case accumulator provably exceeds int32."""
    g = Graph("qs_overflow")
    g.numerics = Numerics.UINT8
    g.add_input(_qtensor("x", (-1, 70000), scale=1.0, zp=0))
    g.add_param("w", np.full((70000, 4), 255, np.uint8))
    g.param_qparams["w"] = QuantParams(
        scale=np.array([0.01]), zero_point=np.array([128]), numerics=Numerics.UINT8)
    _wire(g, FullyConnected("fc", ["x"], ["y"], weight="w"), [(-1, 4)])
    g.tensor_specs["y"] = _qtensor("y", (-1, 4), scale=0.05, zp=0)
    g.output_names = ["y"]
    return g


def _qs_small_fc(scale_bias_wrong=False, drop_weight_qp=False):
    g = Graph("qs_fc")
    g.numerics = Numerics.UINT8
    g.add_input(_qtensor("x", (-1, 16), scale=0.05, zp=128))
    g.add_param("w", np.full((16, 4), 130, np.uint8))
    if not drop_weight_qp:
        g.param_qparams["w"] = QuantParams(
            scale=np.array([0.02]), zero_point=np.array([128]),
            numerics=Numerics.UINT8)
    g.add_param("b", np.zeros(4, np.int32))
    bias_scale = 0.05 * 0.02 * (2.0 if scale_bias_wrong else 1.0)
    g.param_qparams["b"] = QuantParams(
        scale=np.array([bias_scale]), zero_point=np.array([0]),
        numerics=Numerics.INT16)
    _wire(g, FullyConnected("fc", ["x"], ["y"], weight="w", bias="b"), [(-1, 4)])
    g.tensor_specs["y"] = _qtensor("y", (-1, 4), scale=0.05, zp=0)
    g.output_names = ["y"]
    return g


def _qs_degenerate_scale():
    g = Graph("qs_scale")
    g.numerics = Numerics.UINT8
    g.add_input(_qtensor("x", (-1, 8), scale=0.05))
    _wire(g, _relu("a", "x", "y"), [(-1, 8)])
    g.tensor_specs["y"] = _qtensor("y", (-1, 8), scale=1e-15)
    g.output_names = ["y"]
    return g


def _qs_zp_out_of_range():
    g = Graph("qs_zp")
    g.numerics = Numerics.UINT8
    g.add_input(_qtensor("x", (-1, 8), scale=0.05))
    _wire(g, _relu("a", "x", "y"), [(-1, 8)])
    g.tensor_specs["y"] = _qtensor("y", (-1, 8), scale=0.05, zp=300)
    g.output_names = ["y"]
    return g


def _qs_concat_clipping():
    g = Graph("qs_concat")
    g.numerics = Numerics.UINT8
    g.add_input(_qtensor("x1", (-1, 4), scale=1.0))  # real range [0, 255]
    g.add_input(_qtensor("x2", (-1, 4), scale=0.05))
    _wire(g, Concat("cat", ["x1", "x2"], ["y"], axis=1), [(-1, 8)])
    g.tensor_specs["y"] = _qtensor("y", (-1, 8), scale=0.1)  # [0, 25.5]: clips x1
    g.output_names = ["y"]
    return g


def _qs_add_scale_mismatch():
    g = Graph("qs_add")
    g.numerics = Numerics.UINT8
    g.add_input(_qtensor("x1", (-1, 4), scale=1.0))
    g.add_input(_qtensor("x2", (-1, 4), scale=0.001))  # 1000x finer
    _wire(g, Add("add", ["x1", "x2"], ["y"]), [(-1, 4)])
    g.tensor_specs["y"] = _qtensor("y", (-1, 4), scale=1.0)
    g.output_names = ["y"]
    return g


def _qs_float_fallback():
    return _qs_small_fc(drop_weight_qp=True)


def _qs_bias_drift():
    return _qs_small_fc(scale_bias_wrong=True)


def _qs_missing_qparams():
    g = Graph("qs_missing")
    g.numerics = Numerics.UINT8
    g.add_input(_qtensor("x", (-1, 8), scale=0.05))
    _wire(g, _relu("a", "x", "y"), [(-1, 8)])
    g.tensor_specs["y"] = TensorSpec("y", (-1, 8), Numerics.UINT8)  # no qparams
    g.output_names = ["y"]
    return g


QUANT_BREAKERS = {
    "QS001": _qs_overflow,
    "QS002": _qs_degenerate_scale,
    "QS003": _qs_zp_out_of_range,
    "QS004": _qs_concat_clipping,
    "QS005": _qs_float_fallback,
    "QS006": _qs_bias_drift,
    "QS007": _qs_missing_qparams,
}


@pytest.mark.parametrize("rule_id", sorted(QUANT_BREAKERS))
def test_quantization_rule_fires(rule_id):
    findings = check_quantization(QUANT_BREAKERS[rule_id]())
    assert rule_id in _ids(findings)


def test_add_scale_mismatch_also_fires_qs004():
    assert "QS004" in _ids(check_quantization(_qs_add_scale_mismatch()))


def test_sound_quantized_fc_is_clean():
    assert check_quantization(_qs_small_fc()) == []


def test_float_graphs_skip_quantization_rules():
    graph, _ = build_toy_graph()
    assert check_quantization(export_mobile(graph)) == []


def test_accumulator_bound_symbolic_is_worst_case():
    """A symbolic weight must bound at least as high as any materialized one."""
    g = _qs_small_fc()
    op = g.ops[0]
    materialized = accumulator_bound(op, g)
    g.params["w"] = None  # same shape, unknown values
    assert accumulator_bound(op, g) >= materialized


# ---------------------------------------------------------------------------
# placement rules BP001-BP004
# ---------------------------------------------------------------------------

PLACEMENT_RULES = {"BP001", "BP002", "BP003", "BP004"}
_EXY = SOC_CATALOG["exynos_990"]


def _predict(g, numerics=Numerics.INT8, framework=None, soc=_EXY):
    return predict_placement(
        g, backend="test", task="t", numerics=numerics, soc=soc,
        primary=soc.accelerator("npu"), fallback=soc.accelerator("cpu"),
        framework=framework)


def test_bp001_fires_on_unknown_op_type():
    g = _df_unverifiable()  # "mystery" is known to no engine class
    findings = check_placement(g, _predict(g), _EXY)
    assert "BP001" in _ids(findings)


def test_bp001_fires_on_unfolded_batch_norm():
    graph, _ = build_toy_graph()  # pre-export: still has batch norms
    findings = check_placement(graph, _predict(graph), _EXY)
    assert any(f.rule_id == "BP001" and "batch_norm" in f.message
               for f in findings)


def test_bp002_fires_when_primary_rejects_numerics():
    g = _base()
    g.add_op(_relu("a", "x", "y"))
    g.set_outputs(["y"])
    pred = _predict(g, numerics=Numerics.FP32)  # the NPU has no FP32 path
    findings = check_placement(g, pred, _EXY)
    assert "BP002" in _ids(findings)
    assert all(acc == "cpu" for _n, acc in pred.op_targets)


def test_bp003_fires_on_shredded_graph():
    g = Graph("confetti")
    g.add_input(TensorSpec("x", (-1, 8)))
    prev = "x"
    for i in range(13):  # relu on NPU, softmax falls back: 26 segments
        g.add_op(_relu(f"a{i}", prev, f"r{i}"))
        g.add_op(Softmax(f"s{i}", [f"r{i}"], [f"p{i}"]))
        prev = f"p{i}"
    g.set_outputs([prev])
    pred = _predict(g)
    assert pred.partition_count == 26
    assert "BP003" in _ids(check_placement(g, pred, _EXY))


def test_bp004_fires_when_fallback_owns_the_macs():
    g = Graph("fallback_heavy")
    g.add_input(TensorSpec("x", (-1, 16)))
    g.add_param("w", np.zeros((16, 64), np.float32))
    g.add_op(_relu("a", "x", "h"))
    g.add_op(FullyConnected("fc", ["h"], ["y"], weight="w"))
    g.set_outputs(["y"])
    fw = FrameworkProfile("t", unsupported_ops=frozenset({"fully_connected"}))
    pred = _predict(g, framework=fw)
    assert pred.fallback_op_types == ["fully_connected"]
    assert pred.primary_mac_fraction == 0.0
    assert "BP004" in _ids(check_placement(g, pred, _EXY))


# ---------------------------------------------------------------------------
# plan rules PL001-PL006 (tampered execution plans)
# ---------------------------------------------------------------------------

PLAN_RULES = {"PL001", "PL002", "PL003", "PL004", "PL005", "PL006"}


def _toy_plan():
    graph, _ = build_toy_graph()
    return ExecutionPlan(export_mobile(graph))


def test_clean_plan_has_no_findings():
    assert check_plan(_toy_plan()) == []


def test_pl001_release_before_last_use():
    plan = _toy_plan()
    victim = plan._steps[-1].inputs[0]
    plan._steps[-2].release = plan._steps[-2].release + (victim,)
    assert "PL001" in _ids(check_plan(plan))


def test_pl002_double_release():
    plan = _toy_plan()
    donor = next(s for s in plan._steps if s.release)
    plan._steps[-1].release = plan._steps[-1].release + (donor.release[0],)
    assert "PL002" in _ids(check_plan(plan))


def test_pl003_unbound_dispatch():
    plan = _toy_plan()
    plan._steps[0].fn = None
    assert "PL003" in _ids(check_plan(plan))


def test_pl004_leaked_intermediate():
    plan = _toy_plan()
    step = next(s for s in plan._steps if s.release)
    victim = step.release[0]
    step.release = tuple(t for t in step.release if t != victim)
    findings = check_plan(plan)
    assert any(f.rule_id == "PL004" and f.tensor == victim for f in findings)


def test_pl005_output_released():
    plan = _toy_plan()
    out = plan.graph.output_names[0]
    plan._steps[-1].release = plan._steps[-1].release + (out,)
    assert "PL005" in _ids(check_plan(plan))


def test_pl006_read_of_undefined_tensor():
    plan = _toy_plan()
    plan._steps[0].inputs = plan._steps[0].inputs + ("phantom",)
    findings = check_plan(plan)
    assert any(f.rule_id == "PL006" and f.tensor == "phantom" for f in findings)


def test_every_catalog_rule_has_a_breaker_test():
    covered = (set(DATAFLOW_BREAKERS) | set(QUANT_BREAKERS)
               | PLACEMENT_RULES | PLAN_RULES)
    assert covered == set(RULE_CATALOG)


# ---------------------------------------------------------------------------
# cross-validation: predictor vs the hardware simulator, every vendor profile
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def exported_zoo():
    graphs = {}
    for name in available_models():
        g = create_reference_model(name, fitted=False).graph
        if not g.frozen:
            g = export_mobile(g)
        graphs[name] = g
    return graphs


def _applicable_profiles():
    for backend_name, factory in sorted(BACKEND_FACTORIES.items()):
        for _soc_name, soc in sorted(SOC_CATALOG.items()):
            config = factory(soc)
            if config.vendor is not None and config.vendor != soc.vendor:
                continue
            if config.vendor is None and soc.name != "snapdragon_888":
                continue
            yield backend_name, config, soc


def test_predictor_agrees_with_simulator(exported_zoo):
    """For every (vendor profile, SoC, model): the static predictor and the
    runtime partitioner must assign every op to the same engine, yield the
    same segment count, and the same fallback-op set."""
    compared = 0
    for backend_name, config, soc in _applicable_profiles():
        for model, g in exported_zoo.items():
            task = str(g.metadata.get("task", "unknown"))
            cfg = config.tasks.get(task)
            if cfg is None:
                continue
            fw = cfg.framework or config.framework
            primary = soc.accelerator(cfg.primary)
            fallback = soc.accelerator("cpu")
            secondary = soc.accelerator(cfg.secondary) if cfg.secondary else None

            targets = predict_op_targets(
                g, primary, fallback, cfg.numerics, secondary, fw.unsupported_ops)
            segments = partition_graph(
                g, primary, fallback, cfg.numerics, secondary, fw.unsupported_ops)
            simulated = {name: seg.accelerator.name
                         for seg in segments for name in seg.op_names}
            where = f"{backend_name}@{soc.name}/{model}"
            assert {n: a.name for n, a in targets} == simulated, where

            pred = predict_placement(
                g, backend=backend_name, task=task, numerics=cfg.numerics,
                soc=soc, primary=primary, fallback=fallback,
                secondary=secondary, framework=fw)
            assert pred.partition_count == len(segments), where
            assert set(pred.fallback_ops) == {
                n for n, acc in simulated.items() if acc != primary.name}, where
            compared += 1
    assert compared >= 20  # every vendor profile exercised


def test_enn_v07_concat_exclusion_fragments_deeplab(exported_zoo):
    """The paper's 12.7x segmentation story: the v0.7 ENN driver cannot place
    concat on the NPU, shredding DeepLab; the v1.0 driver fixes it."""
    g = exported_zoo["deeplab_v3plus"]

    def place(soc_name):
        soc = SOC_CATALOG[soc_name]
        config = BACKEND_FACTORIES["enn"](soc)
        cfg = config.tasks["semantic_segmentation"]
        fw = cfg.framework or config.framework
        return fw, predict_placement(
            g, backend="enn", task="semantic_segmentation", numerics=cfg.numerics,
            soc=soc, primary=soc.accelerator(cfg.primary),
            fallback=soc.accelerator("cpu"),
            secondary=soc.accelerator(cfg.secondary) if cfg.secondary else None,
            framework=fw)

    fw_990, old = place("exynos_990")
    fw_2100, new = place("exynos_2100")
    assert "concat" in fw_990.unsupported_ops
    assert "concat" not in fw_2100.unsupported_ops
    assert "concat" in old.fallback_op_types
    assert old.partition_count > new.partition_count
    assert old.boundary_sync_ms > new.boundary_sync_ms


# ---------------------------------------------------------------------------
# zoo sweep: the whole model zoo x all numerics must come back clean
# ---------------------------------------------------------------------------

def test_zoo_sweep_is_clean():
    reports = sweep_zoo()
    assert len(reports) == 4 * len(available_models())
    offenders = [f.render() for r in reports for f in r.findings]
    assert offenders == []
    # placement metrics exist and the predicted fragmentation stays in budget
    worst = max(p["partition_count"] for r in reports
                for p in r.metrics.get("placements", []))
    assert 1 <= worst <= 24


def test_verify_graph_runs_all_families():
    graph, _ = build_toy_graph()
    report = verify_graph(export_mobile(graph))
    assert report.clean
    assert "plan" in report.metrics
    assert "placements" in report.metrics


def test_verify_graph_rejects_unknown_family():
    graph, _ = build_toy_graph()
    with pytest.raises(ValueError, match="unknown analyzer"):
        verify_graph(export_mobile(graph), families=("dataflow", "nonsense"))


# ---------------------------------------------------------------------------
# findings, baselines, attestation, CLI
# ---------------------------------------------------------------------------

def test_finding_rejects_unknown_rule_id():
    with pytest.raises(KeyError):
        Finding("XX999", "g", message="nope")


def test_baseline_roundtrip_suppresses_known_findings(tmp_path):
    findings = check_dataflow(_df_dangling())
    assert findings
    path = tmp_path / "baseline.json"
    Baseline.from_findings(findings, "grandfathered").save(path)
    report = Report("broken[fp32]")
    report.extend(findings)
    report.apply_baseline(Baseline.load(path))
    assert report.findings == []
    assert len(report.suppressed) == len(findings)
    # a *new* finding is not suppressed by the old baseline
    fresh = Report("other")
    fresh.extend(check_dataflow(_df_duplicate_op_name()))
    fresh.apply_baseline(Baseline.load(path))
    assert fresh.findings


def test_severity_ordering_and_report_gating():
    report = Report("x")
    report.extend(check_dataflow(_df_dangling()))  # DF001 error + DF002 warning
    assert len(report.at_least(Severity.ERROR)) < len(report.at_least(Severity.INFO))
    assert report.errors and not report.clean


def test_export_stamps_a_verified_attestation():
    graph, _ = build_toy_graph()
    g = export_mobile(graph)
    stamp = g.metadata["staticcheck"]
    assert stamp["verified"] is True
    assert stamp["ruleset"] == RULESET_VERSION
    assert stamp["checksum"] == g.checksum()
    assert attestation_problems(g) == []


def test_tampering_after_attestation_is_detected():
    graph, _ = build_toy_graph()
    g = export_mobile(graph)
    name = next(iter(g.params))
    g.params[name] = g.params[name] + 1.0
    assert any("checksum" in p for p in attestation_problems(g))


def test_failed_verification_is_recorded_in_the_stamp():
    g = _df_dangling()
    stamp = attest(g, verify_graph(g, families=("dataflow",)))
    assert stamp["verified"] is False and stamp["errors"] >= 1
    assert any("unresolved error" in p for p in attestation_problems(g))


def test_validate_package_flags_bad_attestations(tmp_path):
    root = tmp_path / "pkg"
    (root / "results" / "image_classification").mkdir(parents=True)
    (root / "system.json").write_text("{}")
    (root / "summary.json").write_text("[]")
    (root / "provenance.json").write_text(json.dumps({
        "version": "v1.0",
        "models": {"image_classification": {
            "staticcheck": {"ruleset": RULESET_VERSION, "verified": False,
                            "errors": 2, "checksum": "aaa"},
            "deployed_checksum": "bbb",
        }},
    }))
    problems = validate_package(root)
    assert any("failed static verification" in p for p in problems)
    assert any("modified after" in p for p in problems)


def test_cli_single_model_json(capsys):
    rc = staticcheck_main(["mobilenet_edgetpu", "--numerics", "fp32",
                           "--families", "dataflow,placement",
                           "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert payload["exit_code"] == 0
    assert payload["ruleset"] == RULESET_VERSION
    assert payload["reports"][0]["subject"].endswith("[fp32]")


def test_cli_rejects_unknown_model(capsys):
    with pytest.raises(SystemExit):
        staticcheck_main(["no_such_model"])


def test_cli_write_baseline_of_clean_model_is_empty(tmp_path, capsys):
    path = tmp_path / "known.json"
    rc = staticcheck_main(["mobilenet_edgetpu", "--numerics", "fp32",
                           "--families", "dataflow",
                           "--write-baseline", str(path)])
    assert rc == 0
    assert json.loads(path.read_text()) == {}


# ---------------------------------------------------------------------------
# satellites: tightened Graph.validate and ShapeError context
# ---------------------------------------------------------------------------

class TestValidateTightening:
    def test_duplicate_op_names_rejected(self):
        g = _df_duplicate_op_name()
        with pytest.raises(GraphValidationError, match="more than once"):
            g.validate()

    def test_output_naming_nonexistent_tensor_rejected(self):
        g = _df_unreachable_output()
        with pytest.raises(GraphValidationError, match="ghost"):
            g.validate()

    def test_param_shadowing_input_rejected(self):
        g = _df_param_shadows_input()
        with pytest.raises(GraphValidationError, match="shadows"):
            g.validate()

    def test_duplicate_producer_rejected_with_both_op_names(self):
        g = _df_duplicate_producer()
        with pytest.raises(GraphValidationError, match="'a' and 'b'"):
            g.validate()


class TestShapeErrorContext:
    def test_conv_channel_mismatch(self):
        g = Graph("t")
        g.add_input(TensorSpec("x", (-1, 8, 8, 4)))
        g.add_param("w", np.zeros((3, 3, 5, 8), np.float32))
        with pytest.raises(ShapeError) as ei:
            g.add_op(Conv2D("c", ["x"], ["y"], weight="w", stride=1,
                            padding="same"))
        err = ei.value
        assert err.op_name == "c" and err.op_type == "conv2d"
        assert err.in_shapes == [(-1, 8, 8, 4)]
        assert "'c'" in str(err) and "(-1, 8, 8, 4)" in str(err)

    def test_add_operand_mismatch(self):
        g = Graph("t")
        g.add_input(TensorSpec("a", (-1, 4, 4, 2)))
        g.add_input(TensorSpec("b", (-1, 5, 4, 2)))
        with pytest.raises(ShapeError, match="disagree beyond the batch dim"):
            g.add_op(Add("add", ["a", "b"], ["y"]))

    def test_concat_non_axis_mismatch_names_dims(self):
        g = Graph("t")
        g.add_input(TensorSpec("a", (-1, 4, 4, 2)))
        g.add_input(TensorSpec("b", (-1, 5, 4, 2)))
        with pytest.raises(ShapeError, match=r"non-concat dim\(s\) \[1\]"):
            g.add_op(Concat("cat", ["a", "b"], ["y"], axis=3))

    def test_split_divisibility(self):
        g = Graph("t")
        g.add_input(TensorSpec("x", (-1, 10)))
        with pytest.raises(ShapeError, match="not divisible into 3 parts"):
            g.add_op(Split("s", ["x"], ["p0", "p1", "p2"], parts=3))
