"""Backend layer: vendor configs, gating, ALP, Table-2 descriptions."""

import pytest

from repro.analysis import full_graph_cache
from repro.backends import (
    BACKEND_FACTORIES,
    available_backends,
    create_backend,
    default_backend_for,
)
from repro.hardware import SOC_CATALOG, get_soc
from repro.kernels import Numerics


class TestRegistry:
    def test_backend_registry(self):
        assert set(available_backends()) == {
            "tflite", "nnapi", "neuron", "enn", "snpe", "openvino", "coreml",
            "dummy",
        }

    def test_unknown_backend(self):
        with pytest.raises(KeyError):
            create_backend("winml", get_soc("dimensity_1100"))

    def test_vendor_gating(self):
        with pytest.raises(ValueError):
            create_backend("snpe", get_soc("exynos_2100"))
        with pytest.raises(ValueError):
            create_backend("enn", get_soc("snapdragon_888"))

    def test_vendor_neutral_backends_run_anywhere(self):
        for soc_name in SOC_CATALOG:
            create_backend("tflite", get_soc(soc_name))
            create_backend("dummy", get_soc(soc_name))

    def test_apple_preview(self):
        """App. E: iOS support — ANE + Core ML, vendor-gated like any SDK."""
        be = default_backend_for(get_soc("apple_a14"))
        assert be.name == "coreml"
        assert be.describe("image_classification") == "INT8, Core ML, ANE"
        with pytest.raises(ValueError):
            create_backend("coreml", get_soc("exynos_2100"))

    def test_defaults_match_table2(self):
        assert default_backend_for(get_soc("exynos_990")).name == "enn"
        assert default_backend_for(get_soc("snapdragon_865plus")).name == "snpe"
        assert default_backend_for(get_soc("dimensity_820")).name == "nnapi"
        assert default_backend_for(get_soc("dimensity_1100")).name == "neuron"
        assert default_backend_for(get_soc("core_i7_1165g7")).name == "openvino"


class TestTaskConfigs:
    def test_nlp_uses_fp16_on_phone_gpus(self):
        """Paper Insight 5: NLP favours FP16 on GPUs for phone submissions."""
        for soc_name in ("exynos_990", "snapdragon_865plus", "dimensity_820"):
            be = default_backend_for(get_soc(soc_name))
            cfg = be.task_execution("question_answering")
            assert cfg.numerics == Numerics.FP16
            assert cfg.primary == "gpu"

    def test_vision_uses_int8_family(self):
        for soc_name in SOC_CATALOG:
            be = default_backend_for(get_soc(soc_name))
            for task in ("image_classification", "object_detection",
                         "semantic_segmentation"):
                assert be.task_execution(task).numerics in (Numerics.INT8, Numerics.UINT8)

    def test_laptop_nlp_int8(self):
        """Laptops are the exception: OpenVINO quantizes NLP (Table 2)."""
        be = default_backend_for(get_soc("core_i7_1165g7"))
        assert be.task_execution("question_answering").numerics == Numerics.INT8

    def test_describe_formats_table2_cell(self):
        be = default_backend_for(get_soc("snapdragon_865plus"))
        assert be.describe("image_classification") == "UINT8, SNPE, HTA"
        assert be.describe("image_classification", scenario="offline") == \
            "UINT8, SNPE, HTA+HVX"

    def test_unsupported_task(self):
        be = create_backend("tflite", get_soc("dimensity_1100"))
        with pytest.raises(KeyError):
            be.task_execution("style_transfer")

    def test_experimental_tasks_configured(self):
        """App. E tasks run on every backend: speech on the GPU in FP16
        (LSTM recurrence), SR quantized like vision."""
        for soc_name in ("exynos_2100", "dimensity_1100", "core_i7_11375h"):
            be = default_backend_for(get_soc(soc_name))
            assert be.task_execution("speech_recognition").numerics == Numerics.FP16
            sr = be.task_execution("super_resolution")
            assert sr.numerics in (Numerics.INT8, Numerics.UINT8)


class TestCompilation:
    def test_single_stream_compiles(self):
        g = full_graph_cache("mobilenet_edgetpu")
        be = default_backend_for(get_soc("exynos_2100"))
        cm = be.compile_single_stream(g, "image_classification")
        assert cm.numerics == Numerics.INT8
        assert any(s.accelerator.name == "npu" for s in cm.segments)

    def test_offline_alp_pipelines(self):
        g = full_graph_cache("mobilenet_edgetpu")
        be = default_backend_for(get_soc("snapdragon_865plus"))
        pipes = be.compile_offline(g, "image_classification")
        assert [p.segments[0].accelerator.name for p in pipes] == ["hta", "hvx"]

    def test_reference_backend_is_slowest(self):
        """The FP32 CPU reference backend must be slower than vendor SDKs."""
        g = full_graph_cache("mobilenet_edgetpu")
        soc = get_soc("dimensity_1100")
        ref = create_backend("tflite", soc).compile_single_stream(g, "image_classification")
        vend = create_backend("neuron", soc).compile_single_stream(g, "image_classification")
        assert ref.latency_seconds() > 3 * vend.latency_seconds()

    def test_nnapi_slower_than_neuron(self):
        g = full_graph_cache("mobilenet_edgetpu")
        soc = get_soc("dimensity_1100")
        nnapi = create_backend("nnapi", soc).compile_single_stream(g, "image_classification")
        neuron = create_backend("neuron", soc).compile_single_stream(g, "image_classification")
        assert nnapi.latency_seconds() > neuron.latency_seconds()

    def test_detection_pays_postprocess_tax(self):
        g = full_graph_cache("mobiledet_ssd")
        be = default_backend_for(get_soc("dimensity_1100"))
        cm = be.compile_single_stream(g, "object_detection")
        assert cm.postprocess_cpu_ops > 0
