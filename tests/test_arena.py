"""Static memory arena: packing, alias liveness, runtime parity, SUT reuse."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.graph import ExecutionPlan, ExecutionProfiler, Executor
from repro.graph.arena import (
    ALIAS_OP_TYPES,
    ARENA_ALIGNMENT,
    TensorRecord,
    alias_roots,
    effective_liveness,
    graph_arena_bytes,
    plan_layout,
)
from repro.kernels import Numerics
from repro.kernels import conv as conv_kernels
from repro.loadgen import (
    AccuracySUT,
    LoadGenerator,
    Mode,
    QuerySampleLibrary,
    TestSettings,
)
from repro.quantization import calibrate, quantize_graph
from repro.staticcheck import check_arena_layout


@pytest.fixture()
def perf_sut():
    from repro.analysis import full_graph_cache
    from repro.backends import default_backend_for
    from repro.hardware import SimulatedDevice, get_soc
    from repro.loadgen import PerformanceSUT

    soc = get_soc("dimensity_1100")
    be = default_backend_for(soc)
    g = full_graph_cache("mobilenet_edgetpu")
    cm = be.compile_single_stream(g, "image_classification")
    pipes = be.compile_offline(g, "image_classification")
    return PerformanceSUT(SimulatedDevice(soc), cm, pipes)


def _step(op_type, inputs, outputs):
    return SimpleNamespace(op_type=op_type, inputs=list(inputs), outputs=list(outputs))


class TestPlanLayout:
    def test_live_overlap_forces_disjoint_bytes(self):
        records = [
            TensorRecord("a", 100, 0, 2),
            TensorRecord("b", 100, 1, 3),
            TensorRecord("c", 50, 2, 4),
        ]
        layout = plan_layout(records)
        slots = list(layout.slots.values())
        for i, a in enumerate(slots):
            for b in slots[i + 1:]:
                if a.first <= b.last and b.first <= a.last:
                    assert a.end <= b.offset or b.end <= a.offset

    def test_disjoint_intervals_reuse_bytes(self):
        records = [TensorRecord("a", 100, 0, 1), TensorRecord("b", 100, 2, 3)]
        layout = plan_layout(records)
        assert layout.slots["a"].offset == layout.slots["b"].offset == 0
        assert layout.total_bytes == 100
        assert layout.reuse_ratio > 1.0

    def test_offsets_cache_line_aligned(self):
        records = [
            TensorRecord("a", 130, 0, 3),
            TensorRecord("b", 70, 0, 3),
            TensorRecord("c", 60, 0, 3),
        ]
        layout = plan_layout(records)
        for s in layout.slots.values():
            assert s.offset % ARENA_ALIGNMENT == 0

    def test_best_fit_takes_smallest_adequate_gap(self):
        # layout at step >= 2 has two holes (where "a" and "c" died): 256B at
        # offset 0 and 128B at offset 448; the newcomer must take the smaller
        # adequate one, not the first gap and not the arena end
        records = [
            TensorRecord("a", 4 * ARENA_ALIGNMENT, 0, 1),
            TensorRecord("b", 3 * ARENA_ALIGNMENT, 0, 5),
            TensorRecord("c", 2 * ARENA_ALIGNMENT, 0, 1),
            TensorRecord("d", ARENA_ALIGNMENT, 0, 5),
            TensorRecord("new", ARENA_ALIGNMENT, 2, 5),
        ]
        layout = plan_layout(records)
        assert layout.slots["new"].offset == layout.slots["c"].offset != 0

    def test_deterministic_and_order_independent(self):
        records = [
            TensorRecord("a", 300, 0, 2),
            TensorRecord("b", 300, 1, 3),
            TensorRecord("c", 120, 2, 5),
            TensorRecord("d", 120, 4, 6),
        ]
        base = plan_layout(records)
        for perm in (records[::-1], records[2:] + records[:2]):
            again = plan_layout(perm)
            assert again.slots == base.slots
            assert again.arena_bytes == base.arena_bytes

    def test_one_arena_per_key(self):
        records = [
            TensorRecord("f", 64, 0, 2, key="<f4"),
            TensorRecord("q", 64, 0, 2, key="|u1"),
        ]
        layout = plan_layout(records)
        assert layout.slots["f"].offset == layout.slots["q"].offset == 0
        assert set(layout.arena_bytes) == {"<f4", "|u1"}
        assert layout.total_bytes == 128

    def test_describe_keys(self):
        layout = plan_layout([TensorRecord("a", 64, 0, 1)])
        d = layout.describe()
        assert set(d) == {
            "tensors", "arena_bytes", "peak_bytes", "naive_bytes",
            "reuse_ratio", "alignment",
        }


class TestAliasLiveness:
    def test_reshape_is_alias_op(self):
        assert "reshape" in ALIAS_OP_TYPES

    def test_alias_chain_resolves_to_root(self):
        steps = [
            _step("conv2d", ["x"], ["a"]),
            _step("reshape", ["a"], ["b"]),
            _step("reshape", ["b"], ["c"]),
        ]
        assert alias_roots(steps) == {"b": "a", "c": "a"}

    def test_root_lifetime_extends_through_alias_reads(self):
        steps = [
            _step("conv2d", ["x"], ["a"]),
            _step("reshape", ["a"], ["b"]),
            _step("fully_connected", ["b"], ["c"]),
            _step("softmax", ["c"], ["d"]),
        ]
        last_use, escaped = effective_liveness(steps, ["d"])
        # 'a' is read only at step 1, but its bytes live through step 2 via 'b'
        assert last_use["a"] == 2
        assert escaped == set()

    def test_escaping_alias_unmanages_root(self):
        steps = [
            _step("conv2d", ["x"], ["a"]),
            _step("reshape", ["a"], ["b"]),
        ]
        _, escaped = effective_liveness(steps, ["b"])
        assert escaped == {"a"}


class TestRunArenaParity:
    def test_toy_parity_recording_and_steady(self, toy_exported, toy_inputs):
        exported, _ = toy_exported
        plan = ExecutionPlan(exported)
        ref = Executor(exported).run_unplanned(toy_inputs)
        recording = plan.run_arena(toy_inputs)
        steady_1 = plan.run_arena(toy_inputs)
        steady_2 = plan.run_arena(toy_inputs)
        for name in ref:
            np.testing.assert_array_equal(ref[name], recording[name])
            np.testing.assert_array_equal(ref[name], steady_1[name])
            np.testing.assert_array_equal(ref[name], steady_2[name])

    def test_quantized_parity_bit_exact(self, toy_exported, toy_inputs):
        exported, _ = toy_exported
        stats = calibrate(exported, [toy_inputs])
        q = quantize_graph(exported, stats, Numerics.INT8)
        plan = ExecutionPlan(q)
        ref = plan.run(toy_inputs)
        plan.run_arena(toy_inputs)
        steady = plan.run_arena(toy_inputs)
        for name in ref:
            np.testing.assert_array_equal(ref[name], steady[name])
            assert ref[name].dtype == steady[name].dtype

    def test_results_survive_next_run(self, toy_exported, toy_inputs):
        """Returned outputs must not alias arena bytes: a later run with
        different data cannot clobber an earlier run's results."""
        exported, out = toy_exported
        plan = ExecutionPlan(exported)
        plan.run_arena(toy_inputs)  # recording
        first = plan.run_arena(toy_inputs)
        saved = {k: v.copy() for k, v in first.items()}
        other = {"images": toy_inputs["images"] * -1.0}
        plan.run_arena(other)
        for name in saved:
            np.testing.assert_array_equal(saved[name], first[name])

    def test_distinct_batch_shapes_get_distinct_states(self, toy_exported, toy_inputs):
        exported, out = toy_exported
        plan = ExecutionPlan(exported)
        full = plan.run_arena(toy_inputs)
        half_feed = {"images": toy_inputs["images"][:3]}
        half = plan.run_arena(half_feed)
        assert len(plan._arena_states) == 2
        np.testing.assert_array_equal(full[out][:3], half[out])

    def test_executor_delegates_run_arena(self, toy_exported, toy_inputs):
        exported, _ = toy_exported
        ex = Executor(exported)
        a = ex.run(toy_inputs)
        b = ex.run_arena(toy_inputs)
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])

    def test_profiler_covers_arena_runs(self, toy_exported, toy_inputs):
        exported, _ = toy_exported
        plan = ExecutionPlan(exported)
        plan.run_arena(toy_inputs)
        prof = ExecutionProfiler()
        plan.run_arena(toy_inputs, profiler=prof)
        assert set(prof.ops) == {s.name for s in plan._steps}

    def test_missing_feed_raises(self, toy_exported):
        exported, _ = toy_exported
        with pytest.raises(KeyError):
            ExecutionPlan(exported).run_arena({})


class TestStaticArena:
    def test_layout_excludes_outputs_and_validates(self, cls_exported):
        plan = ExecutionPlan(cls_exported)
        layout = plan.arena_layout()
        assert layout.slots  # conv-heavy graph: plenty of managed tensors
        for name in cls_exported.output_names:
            assert name not in layout.slots
        assert check_arena_layout(plan, layout) == []

    def test_reuse_ratio_significant_on_deep_graph(self, cls_exported):
        layout = ExecutionPlan(cls_exported).arena_layout()
        assert layout.reuse_ratio >= 3.0  # ISSUE acceptance floor

    def test_describe_includes_arena_and_optimize(self, toy_exported):
        exported, _ = toy_exported
        d = ExecutionPlan(exported).describe()
        assert {"tensors", "peak_bytes", "reuse_ratio"} <= set(d["arena"])
        assert {"total", "passes"} <= set(d["optimize"])

    def test_batch_scales_footprint(self, cls_exported):
        plan = ExecutionPlan(cls_exported)
        b1 = plan.arena_layout(batch=1).total_bytes
        b4 = plan.arena_layout(batch=4).total_bytes
        assert b1 < b4 <= 4 * b1 + ARENA_ALIGNMENT * len(plan.arena_layout().slots)

    def test_graph_arena_bytes_consistent(self, cls_exported):
        info = graph_arena_bytes(cls_exported)
        assert info["planned_bytes"] == info["arena_bytes"] + info["io_bytes"]
        assert info["planned_bytes"] < info["naive_bytes"]
        assert info["reuse_ratio"] > 3.0

    def test_fp16_plans_manage_nothing(self, toy_exported, toy_inputs):
        """Per-op half rounding is incompatible with in-place writes, so the
        FP16 path must keep every fn_out unset and the arena empty."""
        from repro.quantization import convert_fp16

        exported, _ = toy_exported
        plan = ExecutionPlan(convert_fp16(exported))
        assert all(s.fn_out is None for s in plan._steps)
        assert plan.arena_layout().slots == {}
        ref = Executor(plan.source_graph).run_unplanned(toy_inputs)
        plan.run_arena(toy_inputs)
        got = plan.run_arena(toy_inputs)
        for name in ref:
            np.testing.assert_array_equal(ref[name], got[name])


class TestFast1x1:
    def _graph(self):
        from repro.graph.builder import GraphBuilder

        b = GraphBuilder("pw", seed=11)
        x = b.input("x", (-1, 6, 6, 8))
        c = b.conv(x, 16, k=1, stride=1, activation="relu", name="pw")
        b.outputs(c)
        return b.build()

    def test_pointwise_fast_path_bit_exact(self, monkeypatch):
        g = self._graph()
        rng = np.random.default_rng(5)
        feeds = {"x": rng.normal(0, 1, (3, 6, 6, 8)).astype(np.float32)}
        stats = calibrate(g, [feeds])
        q = quantize_graph(g, stats, Numerics.INT8)
        for graph in (g, q):
            fast = ExecutionPlan(graph).run(feeds)
            monkeypatch.setattr(conv_kernels, "FAST_1X1", False)
            slow = ExecutionPlan(graph).run(feeds)
            monkeypatch.setattr(conv_kernels, "FAST_1X1", True)
            for name in fast:
                np.testing.assert_array_equal(fast[name], slow[name])


class TestSUTArenaReuse:
    def test_accuracy_sut_arena_matches_generic(self, cls_exported, cls_dataset):
        settings = TestSettings(mode=Mode.ACCURACY)
        log_arena = LoadGenerator(settings).run(
            AccuracySUT(cls_exported, cls_dataset, use_arena=True),
            QuerySampleLibrary(cls_dataset),
        )
        log_plain = LoadGenerator(settings).run(
            AccuracySUT(cls_exported, cls_dataset, use_arena=False),
            QuerySampleLibrary(cls_dataset),
        )
        # sequence-identical logs: same query order, same per-sample results
        assert [tuple(r.sample_indices) for r in log_arena.records] == [
            tuple(r.sample_indices) for r in log_plain.records
        ]
        assert log_arena.accuracy == log_plain.accuracy

    def test_accuracy_sut_reuses_one_arena_state(self, cls_exported, cls_dataset):
        sut = AccuracySUT(cls_exported, cls_dataset)
        n = len(cls_dataset)
        for lo in range(0, n, 8):
            sut.issue_query(np.arange(lo, min(lo + 8, n)))
        states = sut.executor.plan._arena_states
        # one state per distinct batch shape (full chunks + the tail), not
        # one per issued batch
        assert 1 <= len(states) <= 2

    def test_performance_sut_memoizes_offline_throughput(self, perf_sut):
        r1 = perf_sut.run_offline(1024, batch=128)
        assert set(perf_sut._offline_fps) == {128}
        r2 = perf_sut.run_offline(1024, batch=128)
        assert r1.throughput_fps == r2.throughput_fps
        perf_sut.run_offline(1024, batch=64)
        assert set(perf_sut._offline_fps) == {64, 128}
