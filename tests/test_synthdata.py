"""Synthetic scene generators: shapes, determinism, ground-truth validity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synthdata import (
    class_prototypes,
    classification_scene_batch,
    detection_scene_batch,
    segmentation_scene_batch,
    smooth_field,
    token_sequence_batch,
)


class TestPrototypes:
    def test_shape_and_determinism(self):
        a = class_prototypes(5, 16, 16, seed=1)
        b = class_prototypes(5, 16, 16, seed=1)
        assert a.shape == (5, 16, 16, 3)
        np.testing.assert_array_equal(a, b)

    def test_distinct_classes(self):
        protos = class_prototypes(8, 16, 16, seed=2)
        dists = [
            np.abs(protos[i] - protos[j]).mean()
            for i in range(8) for j in range(i + 1, 8)
        ]
        assert min(dists) > 0.1

    def test_color_scale_shifts_means(self):
        flat = class_prototypes(6, 8, 8, seed=3, color_scale=2.0)
        tame = class_prototypes(6, 8, 8, seed=3, color_scale=0.0)
        assert np.abs(flat.mean(axis=(1, 2))).mean() > np.abs(tame.mean(axis=(1, 2))).mean()


class TestClassificationScenes:
    def test_output_types(self):
        imgs, labels = classification_scene_batch(10, 24, 7, seed=5)
        assert imgs.shape == (10, 24, 24, 3) and imgs.dtype == np.uint8
        assert labels.shape == (10,) and labels.dtype == np.int64
        assert labels.min() >= 0 and labels.max() < 7

    def test_seed_determinism(self):
        a = classification_scene_batch(4, 16, 5, seed=9)
        b = classification_scene_batch(4, 16, 5, seed=9)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_different_seeds_differ(self):
        a, _ = classification_scene_batch(4, 16, 5, seed=9)
        b, _ = classification_scene_batch(4, 16, 5, seed=10)
        assert not np.array_equal(a, b)

    def test_signal_beats_noise(self):
        """Same-class images correlate more than cross-class ones."""
        imgs, labels = classification_scene_batch(200, 16, 4, seed=11, noise=0.3)
        x = imgs.reshape(200, -1).astype(np.float64)
        x -= x.mean(axis=0)
        same, diff = [], []
        for i in range(0, 60):
            for j in range(i + 1, 60):
                c = float(np.dot(x[i], x[j]) / (np.linalg.norm(x[i]) * np.linalg.norm(x[j]) + 1e-9))
                (same if labels[i] == labels[j] else diff).append(c)
        assert np.mean(same) > np.mean(diff) + 0.1


class TestDetectionScenes:
    def test_boxes_valid(self):
        _, truths = detection_scene_batch(20, 48, 11, seed=12)
        assert len(truths) == 20
        for objs in truths:
            assert 1 <= len(objs) <= 3
            for o in objs:
                y0, x0, y1, x1 = o.box
                assert 0 <= y0 < y1 <= 1 and 0 <= x0 < x1 <= 1
                assert 1 <= o.class_id < 11  # class 0 is background

    def test_object_region_textured(self):
        imgs, truths = detection_scene_batch(6, 64, 5, seed=13)
        for img, objs in zip(imgs, truths):
            o = objs[0]
            y0, x0, y1, x1 = (int(v * 64) for v in o.box)
            inside = img[y0:y1, x0:x1].astype(np.float64)
            assert inside.size > 0


class TestSegmentationScenes:
    def test_labels_valid(self):
        imgs, labels = segmentation_scene_batch(8, 32, 12, seed=14)
        assert labels.shape == (8, 32, 32)
        assert labels.min() >= 0 and labels.max() < 12

    def test_regions_contiguous(self):
        """Voronoi regions: each image has few distinct labels."""
        _, labels = segmentation_scene_batch(5, 32, 12, seed=15, regions=3)
        for lab in labels:
            assert len(np.unique(lab)) <= 3

    def test_other_class_appears(self):
        _, labels = segmentation_scene_batch(40, 32, 12, seed=16, other_prob=0.5)
        assert (labels == 11).any()


class TestTokenSequences:
    def test_structure(self):
        ids, mask, ctx = token_sequence_batch(10, 48, 500, seed=17)
        assert ids.shape == mask.shape == (10, 48)
        for i in range(10):
            n = int(mask[i].sum())
            assert ids[i, 0] == 1  # [CLS]
            assert ids[i, n - 1] == 2  # trailing [SEP]
            assert int(ctx[i]) >= 8  # after [CLS] + question + [SEP]
            assert ids[i, int(ctx[i]) - 1] == 2  # [SEP] before passage
            assert np.all(ids[i, n:] == 0)  # padded

    @given(st.integers(32, 96), st.integers(100, 2000))
    @settings(max_examples=15, deadline=None)
    def test_ids_in_vocab(self, seq_len, vocab):
        ids, mask, _ = token_sequence_batch(4, seq_len, vocab, seed=18)
        assert ids.max() < vocab and ids.min() >= 0


class TestSmoothField:
    def test_spatial_correlation(self):
        rng = np.random.default_rng(0)
        field = smooth_field(rng, 1, 32, 32)
        # neighbouring pixels correlate strongly vs white noise
        diff = np.abs(np.diff(field[0], axis=0)).mean()
        assert diff < field[0].std()
