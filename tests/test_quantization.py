"""PTQ pipeline: observers, calibration, graph quantization, bias correction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Executor, export_mobile
from repro.kernels import Numerics
from repro.quantization import (
    MinMaxObserver,
    MovingAverageObserver,
    PercentileObserver,
    apply_bias_correction,
    calibrate,
    convert_fp16,
    make_observer,
    pack_calibration_batches,
    quantize_graph,
)


class TestObservers:
    def test_minmax_tracks_extremes(self, rng):
        obs = MinMaxObserver()
        obs.update(np.array([1.0, 5.0]))
        obs.update(np.array([-2.0, 3.0]))
        assert obs.range() == (-2.0, 5.0)

    def test_minmax_empty_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxObserver().range()

    def test_moving_average_discounts_outliers(self, rng):
        obs = MovingAverageObserver(momentum=0.9)
        for _ in range(50):
            obs.update(rng.normal(0, 1, 100))
        obs.update(np.array([1000.0]))
        lo, hi = obs.range()
        assert hi < 200  # the spike is smoothed away

    def test_moving_average_momentum_validation(self):
        with pytest.raises(ValueError):
            MovingAverageObserver(momentum=1.5)

    def test_percentile_clips_outliers(self, rng):
        obs = PercentileObserver(percentile=99.0)
        values = rng.normal(0, 1, 10_000)
        values[0] = 1e6
        obs.update(values)
        _, hi = obs.range()
        assert hi < 10

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            PercentileObserver(percentile=10.0)

    def test_factory(self):
        assert isinstance(make_observer("minmax"), MinMaxObserver)
        with pytest.raises(ValueError):
            make_observer("magic")

    @given(st.lists(st.floats(-100, 100), min_size=2, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_minmax_bounds_data(self, values):
        obs = MinMaxObserver()
        arr = np.asarray(values)
        obs.update(arr)
        lo, hi = obs.range()
        assert lo <= arr.min() and hi >= arr.max()

    def test_percentile_reservoir_bounded(self, rng):
        obs = PercentileObserver(reservoir=1000)
        for _ in range(10):
            obs.update(rng.normal(0, 1, 5000))
        assert obs.samples.size <= 1000


class TestCalibrate:
    def test_covers_every_tensor(self, toy_exported, toy_inputs):
        exported, _ = toy_exported
        stats = calibrate(exported, [toy_inputs])
        produced = {t for op in exported.ops for t in op.outputs}
        assert produced <= set(stats.ranges)
        assert "images" in stats.ranges  # inputs observed too
        assert stats.num_samples == 6

    def test_rejects_non_fp32(self, toy_exported, toy_inputs):
        exported, _ = toy_exported
        f16 = convert_fp16(exported)
        with pytest.raises(ValueError):
            calibrate(f16, [toy_inputs])


class TestPackCalibrationBatches:
    def _feed(self, n, keys=("a", "b")):
        return {k: np.full((n, 2), float(i), np.float32)
                for i, k in enumerate(keys)}

    def test_groups_to_target_batch_size(self):
        packed = pack_calibration_batches([self._feed(2) for _ in range(5)], 4)
        assert [f["a"].shape[0] for f in packed] == [4, 4, 2]
        assert set(packed[0]) == {"a", "b"}

    def test_rejects_non_positive_batch_size(self):
        with pytest.raises(ValueError, match="positive"):
            pack_calibration_batches([self._feed(2)], 0)

    def test_rejects_inconsistent_feed_keys(self):
        feeds = [self._feed(2), self._feed(2, keys=("a", "c"))]
        with pytest.raises(ValueError) as ei:
            pack_calibration_batches(feeds, 4)
        msg = str(ei.value)
        assert "feed #1" in msg and "missing ['b']" in msg
        assert "unexpected ['c']" in msg

    def test_empty_input_is_noop(self):
        assert pack_calibration_batches([], 4) == []


class TestQuantizeGraph:
    def test_structure(self, toy_exported, toy_inputs):
        exported, out = toy_exported
        stats = calibrate(exported, [toy_inputs])
        q = quantize_graph(exported, stats)
        assert q.numerics == Numerics.INT8
        assert q.frozen
        # weights are integers, biases int32
        for op in q.ops:
            if op.op_type in ("conv2d", "depthwise_conv2d", "fully_connected"):
                assert q.params[op.attrs["weight"]].dtype == np.int8
                if op.attrs.get("bias"):
                    assert q.params[op.attrs["bias"]].dtype == np.int32
        meta = q.metadata["quantization"]
        assert meta["numerics"] == "int8" and meta["per_channel"]

    def test_metadata_records_calibration_ranges(self, toy_exported, toy_inputs):
        """The static value-range engine (VR003) audits deployed graphs
        against exactly what calibration saw."""
        exported, _ = toy_exported
        stats = calibrate(exported, [toy_inputs])
        q = quantize_graph(exported, stats)
        cal = q.metadata["quantization"]["calibration_ranges"]
        assert set(cal) == set(stats.ranges)
        for name, (lo, hi) in stats.ranges.items():
            assert cal[name] == [pytest.approx(lo), pytest.approx(hi)]

    def test_weight_qparams_per_channel_symmetric(self, toy_exported, toy_inputs):
        exported, _ = toy_exported
        stats = calibrate(exported, [toy_inputs])
        q = quantize_graph(exported, stats)
        conv = next(op for op in q.ops if op.op_type == "conv2d")
        qp = q.param_qparams[conv.attrs["weight"]]
        assert qp.per_channel and qp.axis == 3
        assert np.all(qp.zero_point == 0)  # symmetric int8

    def test_missing_calibration_tensor_raises(self, toy_exported, toy_inputs):
        exported, _ = toy_exported
        stats = calibrate(exported, [toy_inputs])
        del stats.ranges[exported.ops[0].outputs[0]]
        with pytest.raises(KeyError):
            quantize_graph(exported, stats)

    def test_uint8_variant(self, toy_exported, toy_inputs):
        exported, out = toy_exported
        stats = calibrate(exported, [toy_inputs])
        q = quantize_graph(exported, stats, Numerics.UINT8)
        got = Executor(q).run(toy_inputs)[out]
        want = Executor(exported).run(toy_inputs)[out]
        assert np.abs(got - want).mean() < 0.05

    def test_rejects_float_target(self, toy_exported, toy_inputs):
        exported, _ = toy_exported
        stats = calibrate(exported, [toy_inputs])
        with pytest.raises(ValueError):
            quantize_graph(exported, stats, Numerics.FP16)

    def test_pass_through_shares_qparams(self, toy_exported, toy_inputs):
        exported, _ = toy_exported
        stats = calibrate(exported, [toy_inputs])
        q = quantize_graph(exported, stats)
        reshape = next(op for op in q.ops if op.op_type == "reshape")
        in_qp = q.spec(reshape.inputs[0]).qparams
        out_qp = q.spec(reshape.outputs[0]).qparams
        assert in_qp is out_qp


class TestFP16Convert:
    def test_weights_rounded(self, toy_exported):
        exported, _ = toy_exported
        f16 = convert_fp16(exported)
        name = next(n for n, v in exported.params.items()
                    if v is not None and v.dtype == np.float32 and v.size > 10)
        w32 = exported.params[name]
        w16 = f16.params[name]
        np.testing.assert_array_equal(w16, w32.astype(np.float16).astype(np.float32))

    def test_metadata(self, toy_exported):
        exported, _ = toy_exported
        f16 = convert_fp16(exported)
        assert f16.metadata["quantization"]["numerics"] == "fp16"
        assert f16.numerics == Numerics.FP16


class TestBiasCorrection:
    def test_runs_and_preserves_structure(self, toy_exported, toy_inputs):
        exported, out = toy_exported
        stats = calibrate(exported, [toy_inputs])
        q = quantize_graph(exported, stats)
        qc = apply_bias_correction(q, exported, [toy_inputs])
        assert qc.frozen
        assert "bias_corrected_layers" in qc.metadata["quantization"]
        got = Executor(qc).run(toy_inputs)[out]
        want = Executor(exported).run(toy_inputs)[out]
        assert np.abs(got - want).mean() < 0.1  # still a sane model
