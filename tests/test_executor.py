"""Executor: numerics dispatch, observers, error handling."""

import numpy as np
import pytest

from repro.graph import Executor, export_mobile
from repro.kernels import Numerics
from repro.models import create_full_model
from repro.quantization import calibrate, convert_fp16, quantize_graph


class TestFloatExecution:
    def test_missing_feed_raises(self, toy_graph):
        graph, _ = toy_graph
        with pytest.raises(KeyError):
            Executor(graph).run({})

    def test_symbolic_rejected(self):
        bundle = create_full_model("mobilenet_edgetpu")
        with pytest.raises(ValueError):
            Executor(bundle.graph)

    def test_deterministic(self, toy_graph, toy_inputs):
        graph, out = toy_graph
        ex = Executor(graph)
        a = ex.run(toy_inputs)[out]
        b = ex.run(toy_inputs)[out]
        np.testing.assert_array_equal(a, b)

    def test_batch_independence(self, toy_graph, toy_inputs):
        """Each sample's output is independent of its batch neighbours."""
        graph, out = toy_graph
        ex = Executor(graph)
        full = ex.run(toy_inputs)[out]
        single = ex.run({"images": toy_inputs["images"][2:3]})[out]
        np.testing.assert_allclose(full[2], single[0], atol=1e-5)

    def test_observer_sees_all_float_tensors(self, toy_graph, toy_inputs):
        graph, _ = toy_graph
        seen = set()
        Executor(graph).run(toy_inputs, observer=lambda n, v: seen.add(n))
        produced = {t for op in graph.ops for t in op.outputs}
        assert produced <= seen


class TestFP16Execution:
    def test_outputs_differ_slightly(self, toy_exported, toy_inputs):
        exported, out = toy_exported
        f32 = Executor(exported).run(toy_inputs)[out]
        f16_graph = convert_fp16(exported)
        f16 = Executor(f16_graph).run(toy_inputs)[out]
        diff = np.abs(f32 - f16).max()
        assert 0 < diff < 0.05

    def test_observer_rejected_on_fp16(self, toy_exported, toy_inputs):
        exported, _ = toy_exported
        g = convert_fp16(exported)
        with pytest.raises(ValueError):
            Executor(g).run(toy_inputs, observer=lambda n, v: None)


class TestQuantizedExecution:
    @pytest.fixture()
    def quantized(self, toy_exported, toy_inputs):
        exported, out = toy_exported
        stats = calibrate(exported, [toy_inputs])
        return quantize_graph(exported, stats), out

    def test_outputs_close_to_float(self, quantized, toy_exported, toy_inputs):
        q, out = quantized
        exported, _ = toy_exported
        f32 = Executor(exported).run(toy_inputs)[out]
        q_out = Executor(q).run(toy_inputs)[out]
        assert q_out.dtype == np.float32  # boundary dequantization
        assert np.abs(f32 - q_out).mean() < 0.05

    def test_intermediate_dtype_is_integer(self, quantized, toy_inputs):
        """Integer-kernel ops must produce genuinely integer tensors."""
        q, _ = quantized
        from repro.kernels.numerics import quantize as quantize_values

        env = {}
        for spec in q.inputs:
            arr = toy_inputs[spec.name]
            env[spec.name] = quantize_values(arr, spec.qparams)
        first = q.ops[0]
        outs = first.execute_quantized([env[t] for t in first.inputs], q)
        assert outs[0].dtype == q.numerics.np_dtype
