"""Ecosystem-challenge behaviours (paper §2): developer options, test
conditions, and seed robustness of the quality-gate mechanism."""

import pytest

from repro.analysis import developer_options_comparison, measure_single_stream
from repro.core import DEFAULT_RULES, RuleViolation
from repro.loadgen import TestSettings

FAST = TestSettings(min_query_count=64, min_duration_s=0.2)


class TestDeveloperOptions:
    """Figure 2: the three app-development code paths."""

    @pytest.fixture(scope="class")
    def rows(self):
        return developer_options_comparison(settings=FAST)

    def test_three_paths(self, rows):
        assert set(rows) == {"(a) vendor SDK", "(b) NNAPI / framework",
                             "(c) hardware-bound"}

    def test_hardware_bound_fastest(self, rows):
        """Binding to hardware removes every runtime layer — fastest path."""
        baked = rows["(c) hardware-bound"]["latency_p90_ms"]
        assert baked <= rows["(a) vendor SDK"]["latency_p90_ms"]
        assert baked <= rows["(b) NNAPI / framework"]["latency_p90_ms"]

    def test_framework_path_portable_but_slower(self, rows):
        """NNAPI scales across vendors but pays the HAL (paper §2.3)."""
        assert rows["(b) NNAPI / framework"]["portable"]
        assert (rows["(b) NNAPI / framework"]["latency_p90_ms"]
                > rows["(a) vendor SDK"]["latency_p90_ms"])

    def test_only_framework_path_is_portable(self, rows):
        portables = [k for k, v in rows.items() if v["portable"]]
        assert portables == ["(b) NNAPI / framework"]


class TestAmbientConditions:
    """Run rules §6.1: 20-25 degC room temperature."""

    def test_rules_reject_hot_room(self):
        with pytest.raises(RuleViolation):
            DEFAULT_RULES.validate_conditions(ambient_c=28.0)
        with pytest.raises(RuleViolation):
            DEFAULT_RULES.validate_conditions(ambient_c=15.0)

    def test_warmer_room_cannot_be_faster(self):
        """Within the allowed band, 25 degC never beats 20 degC — the reason
        the rules pin the room temperature at all."""
        from repro.analysis import full_graph_cache
        from repro.backends import default_backend_for
        from repro.hardware import SimulatedDevice, get_soc

        soc = get_soc("exynos_990")
        be = default_backend_for(soc)
        g = full_graph_cache("deeplab_v3plus")
        cm = be.compile_single_stream(g, "semantic_segmentation")

        def p90_after_warmup(ambient):
            dev = SimulatedDevice(soc, ambient_c=ambient)
            lats = []
            while dev.virtual_time < 90.0:
                lats.append(dev.run_query(cm).latency_seconds)
            lats.sort()
            return lats[int(len(lats) * 0.9)]

        assert p90_after_warmup(25.0) >= p90_after_warmup(20.0)


class TestSeedRobustness:
    """The quality-gate mechanism is not tuned to one lucky seed."""

    @pytest.mark.parametrize("seed", [11, 222])
    def test_classification_gate_across_seeds(self, seed):
        import numpy as np

        from repro.datasets import create_dataset
        from repro.graph import Executor, export_mobile
        from repro.models import create_reference_model
        from repro.quantization import calibrate, quantize_graph

        bundle = create_reference_model("mobilenet_edgetpu", seed=seed)
        g = export_mobile(bundle.graph)
        ds = create_dataset("imagenet", g, bundle.config, size=256,
                            seed=seed + 1000)

        def top1(graph):
            ex = Executor(graph)
            c = 0
            for s in range(0, len(ds), 64):
                idx = np.arange(s, min(s + 64, len(ds)))
                out = ex.run(ds.input_batch(idx))
                c += (next(iter(out.values())).argmax(-1) == ds.labels[idx]).sum()
            return c / len(ds) * 100

        fp32 = top1(g)
        stats = calibrate(g, ds.calibration_batches(), observer="moving_average")
        int8 = top1(quantize_graph(g, stats))
        assert fp32 > 55.0  # a real classifier at any seed
        # INT8 stays near FP32 across seeds (default-seed run retains ~101%;
        # other seeds land 94-102% — the mechanism, not a lucky constant)
        assert int8 >= 0.92 * fp32
