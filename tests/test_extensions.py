"""Extension features: CLE, end-to-end AI tax, on-disk submission bundles."""

import numpy as np
import pytest

from repro.analysis import ai_tax_breakdown, full_graph_cache
from repro.backends import PREPROCESS_CPU_OPS, default_backend_for
from repro.core import (
    QUICK_RULES,
    BenchmarkHarness,
    SystemDescription,
    build_submission,
    check_submission,
    load_log,
    load_submission_summary,
    write_submission,
)
from repro.graph import Executor
from repro.hardware import get_soc
from repro.loadgen import validate_log
from repro.quantization import equalize_cross_layer


class TestCrossLayerEqualization:
    def test_fp32_equivalence(self, toy_exported, toy_inputs):
        exported, out = toy_exported
        eq = equalize_cross_layer(exported)
        want = Executor(exported).run(toy_inputs)[out]
        got = Executor(eq).run(toy_inputs)[out]
        np.testing.assert_allclose(got, want, atol=1e-4)

    def test_equalizes_pairs(self, cls_exported, toy_inputs):
        eq = equalize_cross_layer(cls_exported)
        assert eq.metadata["cle_pairs"] > 10

    def test_balances_weight_ranges(self, cls_exported):
        """After CLE, per-channel weight ranges are more uniform."""
        from repro.graph.ops import Conv2D

        def range_spread(graph):
            spreads = []
            for op in graph.ops:
                if isinstance(op, Conv2D) and not op.attrs.get("weight", "").endswith("pw/w"):
                    w = graph.params[op.attrs["weight"]]
                    if w is None or w.ndim != 4 or w.shape[3] < 4:
                        continue
                    r = np.abs(w).max(axis=(0, 1, 2))
                    spreads.append(r.max() / max(r.min(), 1e-9))
            return float(np.median(spreads))

        eq = equalize_cross_layer(cls_exported)
        assert range_spread(eq) < range_spread(cls_exported)

    def test_symbolic_rejected(self):
        from repro.graph import export_mobile
        from repro.models import create_full_model

        g = export_mobile(create_full_model("mobilenet_edgetpu").graph)
        with pytest.raises(ValueError):
            equalize_cross_layer(g)

    def test_preserves_frozen_state(self, cls_exported):
        eq = equalize_cross_layer(cls_exported)
        assert eq.frozen == cls_exported.frozen


class TestEndToEndMeasurement:
    def test_e2e_adds_preprocessing(self):
        be = default_backend_for(get_soc("snapdragon_865plus"))
        g = full_graph_cache("mobilenet_edgetpu")
        core = be.compile_single_stream(g, "image_classification")
        e2e = be.compile_single_stream(g, "image_classification", end_to_end=True)
        assert core.preprocess_cpu_ops == 0
        assert e2e.preprocess_cpu_ops == PREPROCESS_CPU_OPS["image_classification"]
        assert e2e.latency_seconds() > core.latency_seconds()

    def test_ai_tax_biggest_for_light_models(self):
        """Buch et al.: preprocessing dominates exactly when inference is fast."""
        cls = ai_tax_breakdown("snapdragon_865plus", "image_classification")
        seg = ai_tax_breakdown("snapdragon_865plus", "semantic_segmentation")
        assert cls["ai_tax_pct"] > seg["ai_tax_pct"]
        assert cls["ai_tax_pct"] > 5.0  # non-negligible
        assert seg["ai_tax_pct"] < 5.0

    def test_every_task_has_costs(self):
        from repro.backends import POSTPROCESS_CPU_OPS
        from repro.core.tasks import TASK_ORDER

        for task in TASK_ORDER:
            assert task in POSTPROCESS_CPU_OPS
            assert task in PREPROCESS_CPU_OPS


@pytest.fixture(scope="module")
def exported_submission(tmp_path_factory):
    harness = BenchmarkHarness(version="v1.0", rules=QUICK_RULES,
                               dataset_sizes={"squad": 48})
    suite = harness.run_suite("dimensity_1100", tasks=["question_answering"],
                              include_offline=False)
    sub = build_submission(
        harness, suite,
        SystemDescription("mediatek", "dimensity_1100", "phone", "smartphone", "Android"),
    )
    root = write_submission(sub, tmp_path_factory.mktemp("bundle"))
    return sub, root


class TestSubmissionExport:
    def test_bundle_layout(self, exported_submission):
        _, root = exported_submission
        assert (root / "system.json").exists()
        assert (root / "provenance.json").exists()
        assert (root / "summary.json").exists()
        assert (root / "results/question_answering/accuracy_log.json").exists()
        assert (root / "results/question_answering/performance_log.json").exists()

    def test_summary_round_trip(self, exported_submission):
        sub, root = exported_submission
        summary = load_submission_summary(root)
        assert summary[0]["task"] == "question_answering"
        # summaries round to 3 decimals on disk
        assert summary[0]["quality"] == pytest.approx(
            sub.suite.results[0].measured_quality, abs=5e-4
        )

    def test_log_round_trip_revalidates(self, exported_submission):
        _, root = exported_submission
        log = load_log(root / "results/question_answering/performance_log.json")
        assert validate_log(log) == []
        assert log.query_count >= QUICK_RULES.min_query_count

    def test_tampered_log_on_disk_detected(self, exported_submission, tmp_path):
        """Editing the 'unedited' log file breaks validation."""
        import json

        _, root = exported_submission
        path = root / "results/question_answering/performance_log.json"
        raw = json.loads(path.read_text())
        raw["metadata"]["loadgen_checksum"] = "edited"
        edited = tmp_path / "edited_log.json"
        edited.write_text(json.dumps(raw))
        log = load_log(edited)
        assert any("checksum" in p for p in validate_log(log))

    def test_original_submission_still_clean(self, exported_submission):
        sub, _ = exported_submission
        assert check_submission(sub) == []
