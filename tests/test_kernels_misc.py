"""Activations, LUTs, normalization, attention, linear kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    Numerics,
    apply_quantized_lut,
    batch_norm,
    batched_matmul,
    choose_qparams,
    dequantize,
    fold_batch_norm,
    fully_connected,
    fully_connected_quantized,
    gelu,
    hard_sigmoid,
    hard_swish,
    layer_norm,
    log_softmax,
    multi_head_attention,
    quantize,
    quantized_lut,
    relu,
    relu6,
    sigmoid,
    softmax,
    tanh,
)


class TestActivations:
    def test_relu(self):
        np.testing.assert_array_equal(relu(np.array([-1.0, 0.0, 2.0])), [0, 0, 2])

    def test_relu6_clamps(self):
        np.testing.assert_array_equal(relu6(np.array([-1.0, 3.0, 9.0])), [0, 3, 6])

    def test_hard_swish_matches_definition(self, rng):
        x = rng.normal(0, 3, 100).astype(np.float32)
        np.testing.assert_allclose(
            hard_swish(x), x * np.clip(x + 3, 0, 6) / 6, atol=1e-6
        )

    def test_hard_sigmoid_range(self, rng):
        out = hard_sigmoid(rng.normal(0, 10, 1000).astype(np.float32))
        assert out.min() >= 0 and out.max() <= 1

    def test_sigmoid_symmetry(self):
        np.testing.assert_allclose(sigmoid(np.array([0.0])), [0.5])
        np.testing.assert_allclose(
            sigmoid(np.array([2.0])) + sigmoid(np.array([-2.0])), [1.0], atol=1e-6
        )

    def test_gelu_near_relu_for_large(self):
        assert gelu(np.array([10.0]))[0] == pytest.approx(10.0, abs=1e-3)
        assert gelu(np.array([-10.0]))[0] == pytest.approx(0.0, abs=1e-3)

    def test_tanh(self):
        np.testing.assert_allclose(tanh(np.array([0.0])), [0.0])


class TestSoftmax:
    @given(st.lists(st.floats(-30, 30), min_size=2, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_sums_to_one(self, logits):
        p = softmax(np.asarray(logits, dtype=np.float32))
        assert p.sum() == pytest.approx(1.0, abs=1e-5)
        assert np.all(p >= 0)

    def test_shift_invariance(self, rng):
        x = rng.normal(0, 5, (3, 7)).astype(np.float32)
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0), atol=1e-6)

    def test_log_softmax_consistent(self, rng):
        x = rng.normal(0, 2, (2, 5)).astype(np.float32)
        np.testing.assert_allclose(np.exp(log_softmax(x)), softmax(x), atol=1e-5)

    def test_overflow_safe(self):
        p = softmax(np.array([1e4, 0.0], dtype=np.float32))
        assert np.isfinite(p).all()


class TestQuantizedLUT:
    def test_lut_matches_float_within_scale(self, rng):
        in_qp = choose_qparams(-4.0, 4.0, Numerics.INT8)
        out_qp = choose_qparams(0.0, 1.0, Numerics.INT8)
        lut = quantized_lut(sigmoid, in_qp, out_qp)
        assert lut.shape == (256,)
        x = rng.normal(0, 2, 200).astype(np.float32)
        xq = quantize(x, in_qp)
        got = dequantize(apply_quantized_lut(xq, lut, in_qp), out_qp)
        want = sigmoid(dequantize(xq, in_qp))
        assert np.abs(got - want).max() <= float(out_qp.scale[0])

    def test_uint8_lut_size(self):
        in_qp = choose_qparams(0.0, 6.0, Numerics.UINT8)
        lut = quantized_lut(relu6, in_qp, in_qp)
        assert lut.shape == (256,)


class TestNormalization:
    def test_batch_norm_identity(self, rng):
        x = rng.normal(size=(2, 4, 4, 3)).astype(np.float32)
        out = batch_norm(x, np.zeros(3), np.ones(3) - 1e-3, np.ones(3), np.zeros(3))
        np.testing.assert_allclose(out, x, atol=1e-3)

    def test_fold_batch_norm_equivalence(self, rng):
        from repro.kernels import conv2d

        x = rng.normal(size=(2, 6, 6, 3)).astype(np.float32)
        w = rng.normal(0, 0.3, (3, 3, 3, 5)).astype(np.float32)
        mean = rng.normal(0, 0.2, 5).astype(np.float32)
        var = (1 + rng.uniform(-0.3, 0.3, 5)).astype(np.float32)
        gamma = (1 + rng.normal(0, 0.1, 5)).astype(np.float32)
        beta = rng.normal(0, 0.1, 5).astype(np.float32)
        want = batch_norm(conv2d(x, w), mean, var, gamma, beta)
        wf, bf = fold_batch_norm(w, None, mean, var, gamma, beta)
        got = conv2d(x, wf, bf)
        np.testing.assert_allclose(got, want, atol=1e-4)

    def test_fold_depthwise(self, rng):
        from repro.kernels import depthwise_conv2d

        x = rng.normal(size=(1, 6, 6, 4)).astype(np.float32)
        w = rng.normal(0, 0.3, (3, 3, 4, 1)).astype(np.float32)
        mean = rng.normal(0, 0.2, 4).astype(np.float32)
        var = np.ones(4, dtype=np.float32)
        gamma = (1 + rng.normal(0, 0.1, 4)).astype(np.float32)
        beta = rng.normal(0, 0.1, 4).astype(np.float32)
        want = batch_norm(depthwise_conv2d(x, w), mean, var, gamma, beta)
        wf, bf = fold_batch_norm(w, None, mean, var, gamma, beta, depthwise=True)
        np.testing.assert_allclose(depthwise_conv2d(x, wf, bf), want, atol=1e-4)

    def test_layer_norm_stats(self, rng):
        x = rng.normal(3, 5, (2, 7, 16)).astype(np.float32)
        out = layer_norm(x, np.ones(16), np.zeros(16))
        np.testing.assert_allclose(out.mean(axis=-1), 0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=-1), 1, atol=1e-2)


class TestLinear:
    def test_fully_connected(self, rng):
        x = rng.normal(size=(4, 8)).astype(np.float32)
        w = rng.normal(size=(8, 3)).astype(np.float32)
        b = rng.normal(size=3).astype(np.float32)
        np.testing.assert_allclose(fully_connected(x, w, b), x @ w + b, atol=1e-5)

    def test_fully_connected_3d(self, rng):
        x = rng.normal(size=(2, 5, 8)).astype(np.float32)
        w = rng.normal(size=(8, 4)).astype(np.float32)
        assert fully_connected(x, w).shape == (2, 5, 4)

    @pytest.mark.parametrize("numerics", [Numerics.INT8, Numerics.UINT8])
    def test_quantized_fc(self, rng, numerics):
        x = rng.normal(0, 1, (3, 16)).astype(np.float32)
        w = rng.normal(0, 0.3, (16, 8)).astype(np.float32)
        b = rng.normal(0, 0.1, 8).astype(np.float32)
        ref = fully_connected(x, w, b)
        x_qp = choose_qparams(float(x.min()), float(x.max()), numerics)
        w_qp = choose_qparams(w.min(axis=0), w.max(axis=0), numerics, symmetric=True, axis=1)
        bq = np.round(b / (x_qp.scale[0] * w_qp.scale)).astype(np.int32)
        out_qp = choose_qparams(float(ref.min()), float(ref.max()), numerics)
        outq = fully_connected_quantized(
            quantize(x, x_qp), quantize(w, w_qp), bq, x_qp, w_qp, out_qp
        )
        err = np.abs(dequantize(outq, out_qp) - ref)
        assert err.mean() < 3 * float(out_qp.scale[0])


class TestAttention:
    def test_shapes(self, rng):
        q = rng.normal(size=(2, 6, 16)).astype(np.float32)
        out = multi_head_attention(q, q, q, num_heads=4)
        assert out.shape == (2, 6, 16)

    def test_head_divisibility(self, rng):
        q = rng.normal(size=(1, 4, 10)).astype(np.float32)
        with pytest.raises(ValueError):
            multi_head_attention(q, q, q, num_heads=3)

    def test_masked_positions_ignored(self, rng):
        q = rng.normal(size=(1, 5, 8)).astype(np.float32)
        k = q.copy()
        v = q.copy()
        mask = np.array([[1, 1, 1, 0, 0]], dtype=np.float32)
        out_masked = multi_head_attention(q, k, v, 2, mask)
        # changing the masked values must not affect the output
        v2 = v.copy()
        v2[:, 3:] += 100.0
        k2 = k.copy()
        k2[:, 3:] -= 50.0
        out_masked2 = multi_head_attention(q, k2, v2, 2, mask)
        np.testing.assert_allclose(out_masked, out_masked2, atol=1e-4)

    def test_uniform_attention_averages(self):
        # identical keys -> uniform attention -> context is the mean of values
        q = np.ones((1, 3, 4), dtype=np.float32)
        k = np.ones((1, 3, 4), dtype=np.float32)
        v = np.arange(12, dtype=np.float32).reshape(1, 3, 4)
        out = multi_head_attention(q, k, v, 1)
        np.testing.assert_allclose(out[0, 0], v[0].mean(axis=0), atol=1e-5)

    def test_batched_matmul(self, rng):
        a = rng.normal(size=(2, 3, 4, 5)).astype(np.float32)
        b = rng.normal(size=(2, 3, 5, 6)).astype(np.float32)
        np.testing.assert_allclose(batched_matmul(a, b), a @ b, atol=1e-5)
