"""Convolution / pooling kernels against naive references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    Numerics,
    avg_pool2d,
    choose_qparams,
    conv2d,
    conv2d_quantized,
    conv_output_shape,
    depthwise_conv2d,
    depthwise_conv2d_quantized,
    dequantize,
    global_avg_pool,
    max_pool2d,
    quantize,
    resize_bilinear,
    resize_nearest,
)


def naive_conv2d(x, w, b, stride, pads_h, pads_w, dilation=1):
    """Direct-loop reference convolution."""
    n, ih, iw, cin = x.shape
    kh, kw, _, cout = w.shape
    xp = np.pad(x, ((0, 0), pads_h, pads_w, (0, 0)))
    eff_h, eff_w = (kh - 1) * dilation + 1, (kw - 1) * dilation + 1
    oh = (xp.shape[1] - eff_h) // stride + 1
    ow = (xp.shape[2] - eff_w) // stride + 1
    out = np.zeros((n, oh, ow, cout), dtype=np.float64)
    for i in range(oh):
        for j in range(ow):
            patch = xp[:, i * stride : i * stride + eff_h : dilation,
                       j * stride : j * stride + eff_w : dilation, :]
            out[:, i, j, :] = np.tensordot(patch, w, axes=([1, 2, 3], [0, 1, 2]))
    if b is not None:
        out += b
    return out.astype(np.float32)


class TestConvOutputShape:
    def test_same_preserves_size_stride1(self):
        oh, ow, _, _ = conv_output_shape(17, 13, 3, 3, 1, "same")
        assert (oh, ow) == (17, 13)

    def test_same_stride2_ceil(self):
        oh, ow, _, _ = conv_output_shape(15, 15, 3, 3, 2, "same")
        assert (oh, ow) == (8, 8)

    def test_valid(self):
        oh, ow, ph, pw = conv_output_shape(10, 10, 3, 3, 1, "valid")
        assert (oh, ow) == (8, 8) and ph == (0, 0) and pw == (0, 0)

    def test_dilation_extends_kernel(self):
        oh, _, _, _ = conv_output_shape(10, 10, 3, 3, 1, "valid", dilation=2)
        assert oh == 6  # effective kernel 5

    def test_empty_output_raises(self):
        with pytest.raises(ValueError):
            conv_output_shape(2, 2, 5, 5, 1, "valid")

    def test_unknown_padding(self):
        with pytest.raises(ValueError):
            conv_output_shape(8, 8, 3, 3, 1, "reflect")


class TestConv2D:
    @pytest.mark.parametrize("stride,padding,dilation", [
        (1, "same", 1), (2, "same", 1), (1, "valid", 1), (1, "same", 2), (2, "valid", 1),
    ])
    def test_matches_naive(self, rng, stride, padding, dilation):
        x = rng.normal(0, 1, (2, 9, 9, 3)).astype(np.float32)
        w = rng.normal(0, 0.3, (3, 3, 3, 5)).astype(np.float32)
        b = rng.normal(0, 0.1, 5).astype(np.float32)
        got = conv2d(x, w, b, stride=stride, padding=padding, dilation=dilation)
        _, _, ph, pw = conv_output_shape(9, 9, 3, 3, stride, padding, dilation)
        want = naive_conv2d(x, w, b, stride, ph, pw, dilation)
        np.testing.assert_allclose(got, want, atol=1e-4)

    def test_channel_mismatch_raises(self, rng):
        x = rng.normal(size=(1, 8, 8, 3)).astype(np.float32)
        w = rng.normal(size=(3, 3, 4, 5)).astype(np.float32)
        with pytest.raises(ValueError):
            conv2d(x, w)

    def test_1x1_conv_is_matmul(self, rng):
        x = rng.normal(size=(2, 5, 5, 4)).astype(np.float32)
        w = rng.normal(size=(1, 1, 4, 6)).astype(np.float32)
        got = conv2d(x, w)
        want = x @ w[0, 0]
        np.testing.assert_allclose(got, want, atol=1e-5)


class TestDepthwise:
    def test_matches_per_channel_conv(self, rng):
        x = rng.normal(size=(2, 8, 8, 4)).astype(np.float32)
        w = rng.normal(size=(3, 3, 4, 1)).astype(np.float32)
        got = depthwise_conv2d(x, w, stride=1, padding="same")
        for c in range(4):
            wc = np.zeros((3, 3, 1, 1), dtype=np.float32)
            wc[:, :, 0, 0] = w[:, :, c, 0]
            want_c = conv2d(x[..., c : c + 1], wc)
            np.testing.assert_allclose(got[..., c], want_c[..., 0], atol=1e-4)

    def test_bad_weight_shape(self, rng):
        x = rng.normal(size=(1, 8, 8, 4)).astype(np.float32)
        with pytest.raises(ValueError):
            depthwise_conv2d(x, rng.normal(size=(3, 3, 4, 2)).astype(np.float32))


def _quantize_setup(rng, x, w, b, numerics):
    x_qp = choose_qparams(float(x.min()), float(x.max()), numerics)
    w_qp = choose_qparams(w.min(axis=tuple(range(w.ndim - 1))),
                          w.max(axis=tuple(range(w.ndim - 1))),
                          numerics, symmetric=True, axis=w.ndim - 1)
    xq = quantize(x, x_qp)
    wq = quantize(w, w_qp)
    bq = np.round(b / (x_qp.scale[0] * w_qp.scale)).astype(np.int32)
    return xq, wq, bq, x_qp, w_qp


class TestQuantizedConv:
    @pytest.mark.parametrize("numerics", [Numerics.INT8, Numerics.UINT8])
    @pytest.mark.parametrize("stride", [1, 2])
    def test_close_to_float(self, rng, numerics, stride):
        x = rng.normal(0, 1, (2, 8, 8, 4)).astype(np.float32)
        w = rng.normal(0, 0.3, (3, 3, 4, 6)).astype(np.float32)
        b = rng.normal(0, 0.1, 6).astype(np.float32)
        ref = conv2d(x, w, b, stride=stride)
        xq, wq, bq, x_qp, w_qp = _quantize_setup(rng, x, w, b, numerics)
        out_qp = choose_qparams(float(ref.min()), float(ref.max()), numerics)
        outq = conv2d_quantized(xq, wq, bq, x_qp, w_qp, out_qp, stride=stride)
        err = np.abs(dequantize(outq, out_qp) - ref)
        assert err.mean() < 3 * float(out_qp.scale[0])

    @pytest.mark.parametrize("numerics", [Numerics.INT8, Numerics.UINT8])
    def test_depthwise_close_to_float(self, rng, numerics):
        x = rng.normal(0, 1, (2, 8, 8, 4)).astype(np.float32)
        w = rng.normal(0, 0.4, (3, 3, 4, 1)).astype(np.float32)
        b = rng.normal(0, 0.1, 4).astype(np.float32)
        ref = depthwise_conv2d(x, w, b)
        x_qp = choose_qparams(float(x.min()), float(x.max()), numerics)
        w_qp = choose_qparams(w.min(axis=(0, 1, 3)), w.max(axis=(0, 1, 3)),
                              numerics, symmetric=True, axis=2)
        xq, wq = quantize(x, x_qp), quantize(w, w_qp)
        bq = np.round(b / (x_qp.scale[0] * w_qp.scale)).astype(np.int32)
        out_qp = choose_qparams(float(ref.min()), float(ref.max()), numerics)
        outq = depthwise_conv2d_quantized(xq, wq, bq, x_qp, w_qp, out_qp)
        err = np.abs(dequantize(outq, out_qp) - ref)
        assert err.mean() < 3 * float(out_qp.scale[0])

    def test_int8_uint8_equivalent(self, rng):
        """Symmetric int8 and uint8 must produce the same dequantized values."""
        x = rng.normal(0, 1, (1, 6, 6, 3)).astype(np.float32)
        w = rng.normal(0, 0.3, (3, 3, 3, 4)).astype(np.float32)
        b = np.zeros(4, dtype=np.float32)
        ref = conv2d(x, w, b)
        outs = []
        for numerics in (Numerics.INT8, Numerics.UINT8):
            xq, wq, bq, x_qp, w_qp = _quantize_setup(rng, x, w, b, numerics)
            out_qp = choose_qparams(float(ref.min()), float(ref.max()), numerics)
            outq = conv2d_quantized(xq, wq, bq, x_qp, w_qp, out_qp)
            outs.append(dequantize(outq, out_qp))
        np.testing.assert_allclose(outs[0], outs[1], atol=float(out_qp.scale[0]) * 2)


class TestPooling:
    def test_avg_pool(self, rng):
        x = rng.normal(size=(1, 4, 4, 2)).astype(np.float32)
        out = avg_pool2d(x, k=2)
        np.testing.assert_allclose(out[0, 0, 0], x[0, :2, :2].mean(axis=(0, 1)), atol=1e-6)

    def test_max_pool(self, rng):
        x = rng.normal(size=(1, 4, 4, 2)).astype(np.float32)
        out = max_pool2d(x, k=2)
        np.testing.assert_allclose(out[0, 0, 0], x[0, :2, :2].max(axis=(0, 1)), atol=1e-6)

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(3, 5, 5, 4)).astype(np.float32)
        np.testing.assert_allclose(
            global_avg_pool(x, keepdims=False), x.mean(axis=(1, 2)), atol=1e-6
        )
        assert global_avg_pool(x).shape == (3, 1, 1, 4)


class TestResize:
    def test_identity(self, rng):
        x = rng.normal(size=(1, 6, 6, 3)).astype(np.float32)
        np.testing.assert_array_equal(resize_bilinear(x, 6, 6), x)

    def test_constant_field_preserved(self):
        x = np.full((1, 4, 4, 1), 3.5, dtype=np.float32)
        np.testing.assert_allclose(resize_bilinear(x, 9, 9), 3.5, atol=1e-6)

    def test_upsample_range_bounded(self, rng):
        x = rng.uniform(0, 1, (1, 5, 5, 2)).astype(np.float32)
        out = resize_bilinear(x, 16, 16)
        assert out.min() >= x.min() - 1e-6 and out.max() <= x.max() + 1e-6

    def test_nearest_exact_2x(self):
        x = np.arange(4, dtype=np.float32).reshape(1, 2, 2, 1)
        out = resize_nearest(x, 4, 4)
        assert out[0, 0, 0, 0] == 0 and out[0, 3, 3, 0] == 3

    @given(st.integers(2, 10), st.integers(2, 10))
    @settings(max_examples=25, deadline=None)
    def test_bilinear_shape(self, oh, ow):
        x = np.ones((1, 4, 6, 2), dtype=np.float32)
        assert resize_bilinear(x, oh, ow).shape == (1, oh, ow, 2)
