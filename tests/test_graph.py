"""Graph IR: builder, shape inference, validation, checksums, costs."""

import numpy as np
import pytest

from repro.graph import Executor, GraphBuilder, GraphValidationError
from repro.graph.graph import Graph
from repro.graph.ops import Conv2D, OpCost
from repro.graph.tensor import TensorSpec
from repro.kernels import Numerics

from conftest import build_toy_graph


class TestTensorSpec:
    def test_elements_skip_batch(self):
        spec = TensorSpec("t", (-1, 4, 4, 3))
        assert spec.elements_per_sample == 48

    def test_bytes_per_numerics(self):
        spec = TensorSpec("t", (-1, 10), Numerics.INT8)
        assert spec.bytes_per_sample() == 10

    def test_with_batch(self):
        assert TensorSpec("t", (-1, 2)).with_batch(5) == (5, 2)

    def test_domain_coerced_to_floats(self):
        spec = TensorSpec("t", (-1, 2), domain=(0, 255))
        assert spec.domain == (0.0, 255.0)
        assert all(isinstance(v, float) for v in spec.domain)

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError, match="empty input domain"):
            TensorSpec("t", (-1, 2), domain=(1.0, -1.0))

    def test_domain_survives_copy(self):
        spec = TensorSpec("t", (-1, 2), domain=(-1.0, 1.0))
        assert spec.copy().domain == (-1.0, 1.0)


class TestGraphConstruction:
    def test_duplicate_input(self):
        g = Graph("g")
        g.add_input(TensorSpec("x", (-1, 4)))
        with pytest.raises(GraphValidationError):
            g.add_input(TensorSpec("x", (-1, 4)))

    def test_unknown_input_tensor(self):
        g = Graph("g")
        g.add_input(TensorSpec("x", (-1, 2, 2, 3)))
        g.add_param("w", np.zeros((3, 3, 3, 4), dtype=np.float32))
        op = Conv2D("c", ["nope"], ["y"], weight="w", bias=None, stride=1, padding="same")
        with pytest.raises(GraphValidationError):
            g.add_op(op)

    def test_unknown_param(self):
        g = Graph("g")
        g.add_input(TensorSpec("x", (-1, 2, 2, 3)))
        op = Conv2D("c", ["x"], ["y"], weight="missing", bias=None, stride=1, padding="same")
        with pytest.raises(GraphValidationError):
            g.add_op(op)

    def test_duplicate_tensor_production(self):
        g = Graph("g")
        g.add_input(TensorSpec("x", (-1, 2, 2, 3)))
        g.add_param("w", np.zeros((1, 1, 3, 3), dtype=np.float32))
        g.add_op(Conv2D("c1", ["x"], ["y"], weight="w", bias=None, stride=1, padding="same"))
        with pytest.raises(GraphValidationError):
            g.add_op(Conv2D("c2", ["x"], ["y"], weight="w", bias=None, stride=1, padding="same"))

    def test_symbolic_param_needs_shape(self):
        g = Graph("g")
        with pytest.raises(GraphValidationError):
            g.add_param("w", None)

    def test_validate_dead_tensor(self):
        graph, out = build_toy_graph()
        # add an op whose output is never consumed
        b = GraphBuilder("g2", seed=0)
        x = b.input("x", (-1, 4, 4, 3))
        h = b.conv(x, 4)
        _dead = b.conv(h, 4)
        used = b.conv(h, 2)
        b.outputs(used)
        with pytest.raises(GraphValidationError):
            b.build()

    def test_validate_no_outputs(self):
        b = GraphBuilder("g", seed=0)
        b.input("x", (-1, 4))
        with pytest.raises(GraphValidationError):
            b.build()


class TestShapes:
    def test_shape_inference_chain(self, toy_graph):
        graph, out = toy_graph
        assert graph.spec(out).shape == (-1, 10)

    def test_conv_shape_stride(self):
        b = GraphBuilder("g", seed=0)
        x = b.input("x", (-1, 15, 15, 3))
        h = b.conv(x, 8, k=3, stride=2)
        assert b.graph.spec(h).shape == (-1, 8, 8, 8)

    def test_reshape_mismatch_raises(self):
        b = GraphBuilder("g", seed=0)
        x = b.input("x", (-1, 4, 4, 2))
        with pytest.raises(ValueError):
            b.reshape(x, (33,))


class TestChecksum:
    def test_stable_across_builds(self):
        g1, _ = build_toy_graph(seed=3)
        g2, _ = build_toy_graph(seed=3)
        assert g1.checksum() == g2.checksum()

    def test_sensitive_to_weights(self):
        g1, _ = build_toy_graph(seed=3)
        g2, _ = build_toy_graph(seed=4)
        assert g1.checksum() != g2.checksum()

    def test_sensitive_to_param_mutation(self, toy_graph):
        graph, _ = toy_graph
        before = graph.checksum()
        name = next(iter(graph.params))
        graph.params[name] = graph.params[name] + 1.0
        assert graph.checksum() != before


class TestFreezeClone:
    def test_frozen_rejects_mutation(self, toy_graph):
        graph, _ = toy_graph
        graph.freeze()
        with pytest.raises(GraphValidationError):
            graph.add_param("extra", np.zeros(3, dtype=np.float32))

    def test_clone_is_independent(self, toy_graph):
        graph, out = toy_graph
        clone = graph.clone("copy")
        clone.numerics = Numerics.FP16
        clone.tensor_specs[out].numerics = Numerics.FP16
        assert graph.numerics == Numerics.FP32
        assert graph.spec(out).numerics == Numerics.FP32

    def test_clone_unfrozen(self, toy_graph):
        graph, _ = toy_graph
        graph.freeze()
        clone = graph.clone()
        clone.metadata["x"] = 1  # metadata writes fine; structural guarded


class TestCosts:
    def test_opcost_add(self):
        c = OpCost(1, 2.0, 3.0) + OpCost(10, 20.0, 30.0)
        assert (c.macs, c.weight_bytes, c.activation_bytes) == (11, 22.0, 33.0)

    def test_conv_macs(self):
        b = GraphBuilder("g", seed=0)
        x = b.input("x", (-1, 8, 8, 3))
        h = b.conv(x, 16, k=3, stride=1)
        b.outputs(h)
        g = b.build()
        # 8*8 output positions * 3*3*3*16
        assert g.total_macs == 8 * 8 * 3 * 3 * 3 * 16

    def test_numerics_scales_bytes(self, toy_graph):
        graph, _ = toy_graph
        fp32 = graph.total_cost(Numerics.FP32)
        int8 = graph.total_cost(Numerics.INT8)
        assert fp32.activation_bytes == pytest.approx(4 * int8.activation_bytes)
        assert fp32.macs == int8.macs

    def test_symbolic_costs_match_materialized(self):
        from repro.models import create_mobilenet_edgetpu

        kwargs = dict(input_size=32, width=0.25, num_classes=10)
        sym = create_mobilenet_edgetpu(materialize=False, **kwargs)
        mat = create_mobilenet_edgetpu(materialize=True, **kwargs)
        assert sym.graph.total_macs == mat.graph.total_macs
        assert sym.graph.num_parameters == mat.graph.num_parameters

    def test_producers_consumers(self, toy_graph):
        graph, out = toy_graph
        producers = graph.producers()
        assert out in producers
        consumers = graph.consumers()
        assert "images" in consumers
