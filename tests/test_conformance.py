"""Conformance subsystem: nearest-rank percentile, lossless log round-trip,
and the differential validator suite (every single-field log corruption is
caught by the serialized checker)."""

import copy
import json

import numpy as np
import pytest

from repro.analysis import full_graph_cache
from repro.backends import default_backend_for
from repro.datasets import IndexDataset
from repro.hardware import SimulatedDevice, get_soc
from repro.loadgen import (
    LOG_SCHEMA_VERSION,
    AccuracySUT,
    LoadGenerator,
    LoadGenLog,
    Mode,
    PerformanceSUT,
    QueryRecord,
    QuerySampleLibrary,
    Scenario,
    TestSettings,
    validate_log,
    validate_serialized,
)


def _perf_sut():
    soc = get_soc("dimensity_1100")
    be = default_backend_for(soc)
    g = full_graph_cache("mobilenet_edgetpu")
    cm = be.compile_single_stream(g, "image_classification")
    pipes = be.compile_offline(g, "image_classification")
    return PerformanceSUT(SimulatedDevice(soc), cm, pipes)


FAST = TestSettings(min_query_count=128, min_duration_s=0.05)


@pytest.fixture(scope="module")
def perf_log():
    return LoadGenerator(FAST).run(_perf_sut(), QuerySampleLibrary(IndexDataset()))


@pytest.fixture(scope="module")
def offline_log():
    settings = TestSettings(scenario=Scenario.OFFLINE, offline_sample_count=4096)
    return LoadGenerator(settings).run(_perf_sut(), QuerySampleLibrary(IndexDataset()))


@pytest.fixture(scope="module")
def accuracy_log(cls_exported, cls_dataset):
    sut = AccuracySUT(cls_exported, cls_dataset)
    settings = TestSettings(mode=Mode.ACCURACY)
    log = LoadGenerator(settings).run(sut, QuerySampleLibrary(cls_dataset))
    sut.close()
    return log


def _hand_log(latencies_ms):
    log = LoadGenLog(
        scenario="single_stream", mode="performance", task="t", model_name="m",
        sut_name="s", seed=0, min_query_count=1, min_duration_s=0.0,
    )
    t = 0.0
    for ms in latencies_ms:
        log.records.append(QueryRecord(t, ms * 1e-3, (0,)))
        t += ms * 1e-3
    return log


class TestNearestRankPercentile:
    """MLPerf's metric is the ordinal statistic: sorted[ceil(p/100*N) - 1]."""

    def test_no_interpolation(self):
        log = _hand_log(list(range(1, 11)))  # 1..10 ms
        # np.percentile would interpolate to 9.1 ms; nearest-rank is 9 ms
        assert log.percentile_latency(90.0) == pytest.approx(9e-3)
        assert log.percentile_latency(50.0) == pytest.approx(5e-3)

    def test_order_independent(self):
        shuffled = _hand_log([7, 2, 9, 1, 10, 3, 8, 5, 4, 6])
        assert shuffled.percentile_latency(90.0) == pytest.approx(9e-3)

    def test_extremes(self):
        log = _hand_log([4, 1, 3, 2])
        assert log.percentile_latency(100.0) == pytest.approx(4e-3)
        assert log.percentile_latency(0.5) == pytest.approx(1e-3)  # rank clamps to 1

    def test_single_record(self):
        assert _hand_log([5]).percentile_latency(90.0) == pytest.approx(5e-3)

    def test_matches_definition_against_numpy_sort(self, perf_log):
        lat = np.sort(perf_log.latencies())
        for p in (50.0, 90.0, 99.0):
            rank = max(int(np.ceil(p / 100.0 * lat.size)), 1)
            assert perf_log.percentile_latency(p) == lat[rank - 1]

    def test_invalid_percentile_rejected(self):
        with pytest.raises(ValueError):
            _hand_log([1]).percentile_latency(0.0)
        with pytest.raises(ValueError):
            _hand_log([1]).percentile_latency(101.0)


class TestPercentilePlumbing:
    """TestSettings.latency_percentile reaches the log and its summary."""

    def test_log_carries_percentile(self):
        settings = TestSettings(min_query_count=128, min_duration_s=0.05,
                                latency_percentile=99.0)
        log = LoadGenerator(settings).run(_perf_sut(), QuerySampleLibrary(IndexDataset()))
        assert log.latency_percentile == 99.0
        s = log.summary()
        assert "latency_p99_ms" in s and "latency_p90_ms" not in s
        assert s["latency_p99_ms"] == pytest.approx(log.percentile_latency(99.0) * 1e3)

    def test_default_stays_p90(self, perf_log):
        assert perf_log.latency_percentile == 90.0
        assert "latency_p90_ms" in perf_log.summary()

    def test_settings_reject_bad_percentile(self):
        with pytest.raises(ValueError):
            TestSettings(latency_percentile=0.0)


class TestRoundTrip:
    """from_dict inverts to_dict losslessly, including through JSON text."""

    def test_perf_log(self, perf_log):
        assert LoadGenLog.from_dict(perf_log.to_dict()) == perf_log

    def test_offline_log(self, offline_log):
        assert LoadGenLog.from_dict(offline_log.to_dict()) == offline_log

    def test_accuracy_log(self, accuracy_log):
        assert LoadGenLog.from_dict(accuracy_log.to_dict()) == accuracy_log

    def test_through_json_text(self, perf_log):
        restored = LoadGenLog.from_dict(json.loads(json.dumps(perf_log.to_dict())))
        assert restored == perf_log
        # and the restored log still validates clean via the serialized path
        assert validate_serialized(restored.to_dict()) == []

    def test_schema_version_stamped(self, perf_log):
        assert perf_log.to_dict()["schema_version"] == LOG_SCHEMA_VERSION

    def test_unknown_schema_rejected(self, perf_log):
        payload = perf_log.to_dict()
        payload["schema_version"] = 999
        with pytest.raises(ValueError):
            LoadGenLog.from_dict(payload)

    def test_missing_fields_rejected(self):
        with pytest.raises(ValueError):
            LoadGenLog.from_dict({"schema_version": LOG_SCHEMA_VERSION})


# -- differential suite -----------------------------------------------------
# Each mutation edits one aspect of a clean serialized log; every single one
# must be rejected by validate_serialized.

def _set_summary(payload, key, value):
    payload["summary"][key] = value


PERF_MUTATIONS = {
    "edited_checksum": lambda p: p["metadata"].__setitem__("loadgen_checksum", "deadbeef"),
    "records_truncated": lambda p: p.__setitem__("records", p["records"][: len(p["records"]) // 2]),
    "duration_compressed": lambda p: p.__setitem__(
        "records", [[t * 0.5, lat, idx, c] for t, lat, idx, c in p["records"]]
    ),
    "multi_sample_past_64": lambda p: p["records"][100][2].append(7),
    "negative_latency_past_64": lambda p: p["records"][100].__setitem__(1, -1e-3),
    "nan_latency": lambda p: p["records"][10].__setitem__(1, float("nan")),
    "overlapping_queries": lambda p: p["records"][5].__setitem__(0, 0.0),
    "claimed_faster_p90": lambda p: _set_summary(
        p, "latency_p90_ms", p["summary"]["latency_p90_ms"] * 0.5
    ),
    "claimed_mean_edited": lambda p: _set_summary(
        p, "latency_mean_ms", p["summary"]["latency_mean_ms"] * 0.9
    ),
    "claimed_query_count": lambda p: _set_summary(
        p, "query_count", p["summary"]["query_count"] + 64
    ),
    "claimed_duration": lambda p: _set_summary(p, "duration_s", 1e6),
    "seed_rewritten": lambda p: p.__setitem__("seed", p["seed"] + 1),
    "schema_downgraded": lambda p: p.__setitem__("schema_version", 1),
    "record_garbage": lambda p: p["records"].__setitem__(0, "not a record"),
    "summary_dropped": lambda p: p.__setitem__("summary", {}),
    "injected_drop_flag": lambda p: p["metadata"].__setitem__("dropped_queries", 3),
    "partial_flag": lambda p: p["metadata"].__setitem__("partial", True),
}


class TestDifferentialValidator:
    def test_clean_log_validates(self, perf_log):
        assert validate_serialized(perf_log.to_dict()) == []

    @pytest.mark.parametrize("name", sorted(PERF_MUTATIONS))
    def test_perf_mutation_caught(self, perf_log, name):
        payload = copy.deepcopy(perf_log.to_dict())
        PERF_MUTATIONS[name](payload)
        problems = validate_serialized(payload)
        assert problems, f"mutation {name!r} was not caught"

    def test_mutations_are_distinct_corruptions(self, perf_log):
        """≥ 10 distinct corruptions, each caught (acceptance criterion)."""
        assert len(PERF_MUTATIONS) >= 10
        messages = set()
        for name, mutate in PERF_MUTATIONS.items():
            payload = copy.deepcopy(perf_log.to_dict())
            mutate(payload)
            problems = validate_serialized(payload)
            assert problems, name
            messages.add(problems[0])
        # the first reported violation differs across corruption classes
        assert len(messages) >= 10

    def test_first_violation_deterministic(self, perf_log):
        """Same corruption -> identical first report, run after run."""
        payload = copy.deepcopy(perf_log.to_dict())
        PERF_MUTATIONS["negative_latency_past_64"](payload)
        first = [validate_serialized(copy.deepcopy(payload))[0] for _ in range(3)]
        assert len(set(first)) == 1
        assert "record 100" in first[0]

    def test_accuracy_coverage_gap_caught(self, accuracy_log):
        payload = copy.deepcopy(accuracy_log.to_dict())
        payload["records"] = payload["records"][:-1]  # drop the last batch
        assert any("covered" in p for p in validate_serialized(payload))

    def test_accuracy_duplicate_sample_caught(self, accuracy_log):
        payload = copy.deepcopy(accuracy_log.to_dict())
        payload["records"][1][2][0] = payload["records"][0][2][0]
        assert any("repeated sample" in p for p in validate_serialized(payload))

    def test_accuracy_missing_metric_caught(self, accuracy_log):
        payload = copy.deepcopy(accuracy_log.to_dict())
        payload["accuracy"] = {}
        del payload["summary"]["accuracy"]
        assert any("no metric" in p for p in validate_serialized(payload))

    def test_accuracy_nan_metric_caught(self, accuracy_log):
        payload = copy.deepcopy(accuracy_log.to_dict())
        key = next(iter(payload["accuracy"]))
        payload["accuracy"][key] = float("nan")
        payload["summary"]["accuracy"][key] = float("nan")
        assert any("non-finite" in p for p in validate_serialized(payload))

    def test_accuracy_missing_dataset_size_caught(self, accuracy_log):
        payload = copy.deepcopy(accuracy_log.to_dict())
        del payload["metadata"]["total_sample_count"]
        assert any("total_sample_count" in p for p in validate_serialized(payload))

    def test_offline_short_burst_caught(self, offline_log):
        payload = copy.deepcopy(offline_log.to_dict())
        payload["offline_samples"] = payload["offline_samples"] // 2
        problems = validate_serialized(payload)
        assert any("burst" in p for p in problems)

    def test_offline_impossible_clock_caught(self, offline_log):
        payload = copy.deepcopy(offline_log.to_dict())
        payload["metadata"]["steady_clock_scale"] = 1.5  # faster than no throttle
        assert any("clock scale" in p for p in validate_serialized(payload))

    def test_offline_missing_duration_caught(self, offline_log):
        payload = copy.deepcopy(offline_log.to_dict())
        payload["offline_seconds"] = 0.0
        assert any("missing sample count or duration" in p
                   for p in validate_serialized(payload))


class TestValidatorFaultTolerance:
    """Garbage input yields violations, never exceptions."""

    @pytest.mark.parametrize("payload", [
        None, 42, "log", [], {}, {"schema_version": "two"},
        {"schema_version": LOG_SCHEMA_VERSION},
        {"schema_version": LOG_SCHEMA_VERSION, "scenario": "single_stream",
         "mode": "performance", "task": "t", "model": "m", "sut": "s",
         "seed": 0, "min_query_count": 1, "min_duration_s": 0.0,
         "records": [[0.0, "fast", [0], 0.0]]},
    ])
    def test_never_raises(self, payload):
        problems = validate_serialized(payload)
        assert problems and all(isinstance(p, str) for p in problems)

    def test_unknown_scenario_flagged(self):
        log = _hand_log([1, 2, 3])
        log.scenario = "burst_mode"
        assert any("unknown scenario" in p for p in validate_log(log))


class TestQSLDeterminism:
    """Seeded query streams are identical regardless of how the residency
    set was built (regression: set-iteration-order-dependent pools)."""

    def _stream(self, qsl, n=200):
        return [qsl.next_sample_index() for _ in range(n)]

    def test_insertion_order_invariant(self):
        a = QuerySampleLibrary(IndexDataset(500), seed=11)
        a.load_samples(np.arange(500))
        b = QuerySampleLibrary(IndexDataset(500), seed=11)
        b.load_samples(np.arange(499, -1, -1))  # reverse insertion order
        np.testing.assert_array_equal(a.sample_indices(100), b.sample_indices(100))
        assert self._stream(a) == self._stream(b)

    def test_unload_reload_history_invariant(self):
        a = QuerySampleLibrary(IndexDataset(400), seed=23)
        a.load_samples(np.arange(400))
        a.unload_samples(np.arange(0, 400, 2))
        a.load_samples(np.arange(0, 400, 2))  # same set, different history
        b = QuerySampleLibrary(IndexDataset(400), seed=23)
        b.load_samples(np.arange(400))
        assert self._stream(a) == self._stream(b)

    def test_pool_is_sorted(self):
        qsl = QuerySampleLibrary(IndexDataset(100), seed=5)
        qsl.load_samples(np.array([30, 4, 99, 17]))
        pool = qsl._loaded_pool()
        np.testing.assert_array_equal(pool, np.sort(pool))


class TestValidatePackage:
    """The checker sweeps an on-disk bundle; bad files become violations."""

    def _bundle(self, tmp_path, perf_log):
        from repro.core import validate_package  # noqa: F401  (import check)

        root = tmp_path / "bundle"
        task_dir = root / "results" / "image_classification"
        task_dir.mkdir(parents=True)
        for name in ("system.json", "provenance.json", "summary.json"):
            (root / name).write_text("{}")
        (task_dir / "performance_log.json").write_text(
            json.dumps(perf_log.to_dict())
        )
        return root

    def test_clean_bundle_passes(self, tmp_path, perf_log):
        from repro.core import validate_package

        assert validate_package(self._bundle(tmp_path, perf_log)) == []

    def test_unreadable_log_reported_not_raised(self, tmp_path, perf_log):
        from repro.core import validate_package

        root = self._bundle(tmp_path, perf_log)
        path = root / "results" / "image_classification" / "performance_log.json"
        path.write_text("{ not json")
        problems = validate_package(root)
        assert any("unreadable" in p for p in problems)

    def test_edited_log_in_bundle_caught(self, tmp_path, perf_log):
        from repro.core import validate_package

        root = self._bundle(tmp_path, perf_log)
        path = root / "results" / "image_classification" / "performance_log.json"
        raw = json.loads(path.read_text())
        raw["summary"]["latency_p90_ms"] *= 0.5
        path.write_text(json.dumps(raw))
        problems = validate_package(root)
        assert any("latency_p90_ms" in p and "edited" in p for p in problems)

    def test_missing_pieces_reported(self, tmp_path, perf_log):
        from repro.core import validate_package

        root = self._bundle(tmp_path, perf_log)
        (root / "system.json").unlink()
        assert any("system.json" in p for p in validate_package(root))
        empty = tmp_path / "empty"
        empty.mkdir()
        assert any("results" in p for p in validate_package(empty))


class TestAccuracySUTClose:
    def test_close_shuts_worker_pool(self, cls_exported, cls_dataset):
        sut = AccuracySUT(cls_exported, cls_dataset, workers=2)
        sut.issue_query(np.arange(8))  # enough samples to spin up the pool
        assert sut._pool is not None
        sut.close()
        assert sut._pool is None
        sut.close()  # idempotent
