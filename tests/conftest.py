"""Shared fixtures. Expensive artifacts are session-scoped and tiny."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import Executor, GraphBuilder, export_mobile
from repro.models import create_reference_model
from repro.datasets import create_dataset


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


def build_toy_graph(seed: int = 7, size: int = 12, channels: int = 8):
    """Small conv net exercising conv/dw/add/pool/fc/softmax + BN."""
    b = GraphBuilder("toy", seed=seed)
    x = b.input("images", (-1, size, size, 3))
    h = b.conv(x, channels, k=3, stride=2, activation="relu6", use_bn=True)
    h = b.dwconv(h, k=3, activation="relu6", use_bn=True)
    h2 = b.conv(h, channels, k=1, use_bn=True)
    h = b.add(h, h2)
    h = b.global_pool(h)
    h = b.reshape(h, (channels,))
    h = b.fc(h, 10)
    out = b.softmax(h)
    b.outputs(out)
    return b.build(), out


@pytest.fixture()
def toy_graph():
    return build_toy_graph()


@pytest.fixture()
def toy_exported(toy_graph):
    graph, out = toy_graph
    return export_mobile(graph), out


@pytest.fixture()
def toy_inputs(rng):
    return {"images": rng.normal(0, 0.5, (6, 12, 12, 3)).astype(np.float32)}


# ---- session-scoped heavy artifacts (built once per test session) ----------

@pytest.fixture(scope="session")
def cls_bundle():
    return create_reference_model("mobilenet_edgetpu")


@pytest.fixture(scope="session")
def cls_exported(cls_bundle):
    return export_mobile(cls_bundle.graph)


@pytest.fixture(scope="session")
def cls_dataset(cls_bundle, cls_exported):
    return create_dataset("imagenet", cls_exported, cls_bundle.config, size=96)


@pytest.fixture(scope="session")
def qa_bundle():
    return create_reference_model("mobilebert")


@pytest.fixture(scope="session")
def qa_exported(qa_bundle):
    return export_mobile(qa_bundle.graph)


@pytest.fixture(scope="session")
def qa_dataset(qa_bundle, qa_exported):
    return create_dataset("squad", qa_exported, qa_bundle.config, size=48)
