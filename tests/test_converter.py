"""Export pipeline: BN folding, activation fusion, provenance, freezing."""

import numpy as np
import pytest

from repro.graph import Executor, GraphValidationError, export_mobile, fold_batch_norms, fuse_activations
from repro.graph.ops import Activation, BatchNorm
from repro.models import create_full_model

from conftest import build_toy_graph


class TestFoldBatchNorms:
    def test_numerically_equivalent(self, toy_graph, toy_inputs):
        graph, out = toy_graph
        want = Executor(graph).run(toy_inputs)[out]
        folded = fold_batch_norms(graph)
        got = Executor(folded).run(toy_inputs)[out]
        np.testing.assert_allclose(got, want, atol=1e-5)

    def test_no_bn_ops_remain(self, toy_graph):
        graph, _ = toy_graph
        folded = fold_batch_norms(graph)
        assert not any(isinstance(op, BatchNorm) for op in folded.ops)
        assert folded.metadata["folded_batch_norms"] == 3

    def test_bn_params_removed(self, toy_graph):
        graph, _ = toy_graph
        folded = fold_batch_norms(graph)
        assert not any("gamma" in p for p in folded.params)

    def test_original_untouched(self, toy_graph):
        graph, _ = toy_graph
        n_ops = len(graph.ops)
        fold_batch_norms(graph)
        assert len(graph.ops) == n_ops

    def test_symbolic_fold_structural(self):
        bundle = create_full_model("mobilenet_edgetpu")
        folded = fold_batch_norms(bundle.graph)
        assert not any(isinstance(op, BatchNorm) for op in folded.ops)
        assert folded.is_symbolic
        # every conv got a (symbolic) folded bias of the right shape
        for op in folded.ops:
            if op.op_type in ("conv2d", "depthwise_conv2d") and "b_folded" in str(
                op.attrs.get("bias")
            ):
                cout = folded.spec(op.outputs[0]).shape[-1]
                assert folded.param_shape(op.attrs["bias"]) == (cout,)


class TestFuseActivations:
    def test_equivalent_and_fused(self, toy_graph, toy_inputs):
        graph, out = toy_graph
        folded = fold_batch_norms(graph)
        fused = fuse_activations(folded)
        assert fused.metadata["fused_activations"] == 2
        want = Executor(folded).run(toy_inputs)[out]
        got = Executor(fused).run(toy_inputs)[out]
        np.testing.assert_allclose(got, want, atol=1e-6)

    def test_sigmoid_not_fused(self):
        from repro.graph import GraphBuilder

        b = GraphBuilder("g", seed=0)
        x = b.input("x", (-1, 4, 4, 3))
        h = b.conv(x, 4)
        h = b.activation(h, "sigmoid")
        b.outputs(h)
        fused = fuse_activations(b.build())
        assert any(isinstance(op, Activation) for op in fused.ops)


class TestExportMobile:
    def test_frozen_and_stamped(self, toy_graph):
        graph, _ = toy_graph
        exported = export_mobile(graph)
        assert exported.frozen
        assert exported.metadata["source_checksum"] == graph.checksum()
        assert exported.metadata["export_checksum"] == exported.checksum()
        assert exported.metadata["export_format"] == "mobile-v1"

    def test_frozen_immutable(self, toy_exported):
        exported, _ = toy_exported
        with pytest.raises(GraphValidationError):
            exported.add_param("p", np.zeros(1, dtype=np.float32))

    def test_outputs_preserved(self, toy_graph, toy_inputs):
        graph, out = toy_graph
        exported = export_mobile(graph)
        want = Executor(graph).run(toy_inputs)[out]
        got = Executor(exported).run(toy_inputs)[out]
        np.testing.assert_allclose(got, want, atol=1e-5)

    def test_export_deterministic(self):
        g1, _ = build_toy_graph(seed=5)
        g2, _ = build_toy_graph(seed=5)
        assert export_mobile(g1).checksum() == export_mobile(g2).checksum()
