"""LoadGen: clock, QSL, scenarios, run-rule enforcement, log validation."""

import numpy as np
import pytest

from repro.analysis import full_graph_cache
from repro.backends import default_backend_for
from repro.datasets import IndexDataset
from repro.hardware import SimulatedDevice, get_soc
from repro.loadgen import (
    AccuracySUT,
    LoadGenerator,
    Mode,
    PerformanceSUT,
    QuerySampleLibrary,
    Scenario,
    TestSettings,
    VirtualClock,
    loadgen_checksum,
    validate_log,
)


@pytest.fixture()
def perf_sut():
    soc = get_soc("dimensity_1100")
    be = default_backend_for(soc)
    g = full_graph_cache("mobilenet_edgetpu")
    cm = be.compile_single_stream(g, "image_classification")
    pipes = be.compile_offline(g, "image_classification")
    return PerformanceSUT(SimulatedDevice(soc), cm, pipes)


FAST = TestSettings(min_query_count=64, min_duration_s=0.05)


class TestClock:
    def test_advance(self):
        c = VirtualClock()
        assert c.now() == 0.0
        c.advance(1.5)
        assert c.now() == 1.5

    def test_backwards_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)


class TestQSL:
    def test_load_performance_set(self):
        qsl = QuerySampleLibrary(IndexDataset(5000), performance_sample_count=1024)
        loaded = qsl.load_performance_set()
        assert len(loaded) == 1024 and qsl.loaded_count == 1024

    def test_performance_count_capped_by_dataset(self):
        qsl = QuerySampleLibrary(IndexDataset(100), performance_sample_count=1024)
        assert len(qsl.load_performance_set()) == 100

    def test_seeded_sampling_deterministic(self):
        a = QuerySampleLibrary(IndexDataset(100), seed=7)
        b = QuerySampleLibrary(IndexDataset(100), seed=7)
        a.load_performance_set(); b.load_performance_set()
        np.testing.assert_array_equal(a.sample_indices(20), b.sample_indices(20))

    def test_sampling_before_load_raises(self):
        with pytest.raises(RuntimeError):
            QuerySampleLibrary(IndexDataset(10)).sample_indices(1)

    def test_samples_only_from_loaded(self):
        qsl = QuerySampleLibrary(IndexDataset(1000), performance_sample_count=16)
        loaded = set(int(i) for i in qsl.load_performance_set())
        drawn = set(int(i) for i in qsl.sample_indices(500))
        assert drawn <= loaded

    def test_unloaded_feed_rejected(self):
        qsl = QuerySampleLibrary(IndexDataset(10))
        qsl.load_samples(np.array([0, 1]))
        with pytest.raises(RuntimeError):
            qsl.get_feeds(np.array([5]))

    def test_unload(self):
        qsl = QuerySampleLibrary(IndexDataset(10))
        qsl.load_samples(np.array([0, 1, 2]))
        qsl.unload_samples(np.array([1]))
        assert qsl.loaded_count == 2


class TestSingleStream:
    def test_min_query_count_enforced(self, perf_sut):
        settings = TestSettings(min_query_count=200, min_duration_s=0.0)
        log = LoadGenerator(settings).run(perf_sut, QuerySampleLibrary(IndexDataset()))
        assert log.query_count >= 200

    def test_min_duration_enforced(self, perf_sut):
        settings = TestSettings(min_query_count=1, min_duration_s=1.0)
        log = LoadGenerator(settings).run(perf_sut, QuerySampleLibrary(IndexDataset()))
        assert log.total_duration_s >= 1.0
        assert log.query_count > 100  # ~2ms per query over 1 virtual second

    def test_one_sample_per_query(self, perf_sut):
        log = LoadGenerator(FAST).run(perf_sut, QuerySampleLibrary(IndexDataset()))
        assert all(len(r.sample_indices) == 1 for r in log.records)

    def test_log_validates_clean(self, perf_sut):
        log = LoadGenerator(FAST).run(perf_sut, QuerySampleLibrary(IndexDataset()))
        assert validate_log(log) == []

    def test_percentile_and_summary(self, perf_sut):
        log = LoadGenerator(FAST).run(perf_sut, QuerySampleLibrary(IndexDataset()))
        lat = log.latencies()
        assert log.percentile_latency(90) >= np.median(lat)
        s = log.summary()
        assert s["scenario"] == "single_stream" and "latency_p90_ms" in s

    def test_records_temperature(self, perf_sut):
        log = LoadGenerator(FAST).run(perf_sut, QuerySampleLibrary(IndexDataset()))
        assert log.records[-1].temperature_c > 0


class TestOffline:
    def test_throughput_reported(self, perf_sut):
        settings = TestSettings(scenario=Scenario.OFFLINE, offline_sample_count=4096)
        log = LoadGenerator(settings).run(perf_sut, QuerySampleLibrary(IndexDataset()))
        assert log.offline_samples == 4096
        assert log.throughput_fps() > 0
        assert validate_log(log) == []
        assert log.energy_joules > 0

    def test_offline_beats_single_stream_throughput(self, perf_sut):
        """Batching + ALP must outperform one-at-a-time queries (paper §7.3)."""
        ss = LoadGenerator(FAST).run(perf_sut, QuerySampleLibrary(IndexDataset()))
        perf_sut.device.reset()
        off_settings = TestSettings(scenario=Scenario.OFFLINE, offline_sample_count=4096)
        off = LoadGenerator(off_settings).run(perf_sut, QuerySampleLibrary(IndexDataset()))
        assert off.throughput_fps() > ss.throughput_fps()

    def test_accuracy_sut_rejected_for_offline(self, cls_exported, cls_dataset):
        sut = AccuracySUT(cls_exported, cls_dataset)
        settings = TestSettings(scenario=Scenario.OFFLINE)
        with pytest.raises(TypeError):
            LoadGenerator(settings).run(sut, QuerySampleLibrary(cls_dataset))


class TestAccuracyMode:
    def test_covers_whole_dataset(self, cls_exported, cls_dataset):
        sut = AccuracySUT(cls_exported, cls_dataset)
        settings = TestSettings(mode=Mode.ACCURACY)
        log = LoadGenerator(settings).run(sut, QuerySampleLibrary(cls_dataset))
        covered = {i for r in log.records for i in r.sample_indices}
        assert covered == set(range(len(cls_dataset)))
        assert "top1" in log.accuracy
        assert validate_log(log) == []


class TestValidation:
    def _clean_log(self, perf_sut):
        return LoadGenerator(FAST).run(perf_sut, QuerySampleLibrary(IndexDataset()))

    def test_too_few_queries_flagged(self, perf_sut):
        log = self._clean_log(perf_sut)
        log.min_query_count = 10 ** 6
        assert any("queries" in p for p in validate_log(log))

    def test_too_short_flagged(self, perf_sut):
        log = self._clean_log(perf_sut)
        log.min_duration_s = 10 ** 6
        assert any("lasted" in p for p in validate_log(log))

    def test_tampered_loadgen_flagged(self, perf_sut):
        log = self._clean_log(perf_sut)
        log.metadata["loadgen_checksum"] = "deadbeef"
        assert any("checksum" in p for p in validate_log(log))

    def test_overlapping_queries_flagged(self, perf_sut):
        log = self._clean_log(perf_sut)
        object.__setattr__(log.records[5], "issue_time", 0.0)
        assert any("overlapping" in p for p in validate_log(log))

    def test_settings_validation(self):
        with pytest.raises(ValueError):
            TestSettings(min_query_count=0)

    def test_checksum_stable(self):
        assert loadgen_checksum() == loadgen_checksum()
