"""Cross-cutting property-based tests and failure injection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Executor, GraphBuilder, export_mobile
from repro.kernels import Numerics, choose_qparams, dequantize, quantize
from repro.metrics import edit_distance, span_f1
from repro.pipelines.detection import decode_boxes, encode_boxes, iou_matrix
from repro.quantization import calibrate, quantize_graph


# ---------------------------------------------------------------- kernels
class TestQuantizationProperties:
    @given(
        st.lists(st.floats(-20, 20), min_size=4, max_size=40),
        st.sampled_from([Numerics.INT8, Numerics.UINT8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_quantization_monotone(self, values, numerics):
        """Quantization must preserve ordering (up to ties)."""
        arr = np.asarray(sorted(values), dtype=np.float64)
        qp = choose_qparams(float(arr.min()), float(arr.max()), numerics)
        q = quantize(arr, qp).astype(np.int64)
        assert np.all(np.diff(q) >= 0)

    @given(st.floats(0.001, 10.0), st.integers(-100, 100))
    @settings(max_examples=40, deadline=None)
    def test_dequantize_exact_on_grid(self, scale, zp_raw):
        """Grid points round-trip exactly: q -> real -> q is the identity."""
        from repro.kernels import QuantParams

        zp = int(np.clip(zp_raw, -128, 127))
        qp = QuantParams(scale=scale, zero_point=zp, numerics=Numerics.INT8)
        q = np.arange(-128, 128, dtype=np.int8)
        rt = quantize(dequantize(q, qp), qp)
        np.testing.assert_array_equal(rt, q)


class TestGeometryProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_iou_triangle_like(self, seed):
        """IoU is symmetric and 1 only for identical boxes."""
        rng = np.random.default_rng(seed)
        y0, x0 = rng.uniform(0, 0.5, 2)
        h, w = rng.uniform(0.1, 0.5, 2)
        a = np.array([[y0, x0, y0 + h, x0 + w]])
        b = a + rng.uniform(-0.05, 0.05, 4)
        m = iou_matrix(a, b)
        m_t = iou_matrix(b, a)
        assert m[0, 0] == pytest.approx(m_t[0, 0])
        assert iou_matrix(a, a)[0, 0] == pytest.approx(1.0)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_box_coding_identity(self, seed):
        """decode(encode(box)) == box for any box/anchor pair."""
        rng = np.random.default_rng(seed)
        cy, cx = rng.uniform(0.3, 0.7, 2)
        h, w = rng.uniform(0.1, 0.4, 2)
        box = np.array([[cy - h / 2, cx - w / 2, cy + h / 2, cx + w / 2]])
        anchor = np.array([[rng.uniform(0.3, 0.7), rng.uniform(0.3, 0.7),
                            rng.uniform(0.2, 0.5), rng.uniform(0.2, 0.5)]],
                          dtype=np.float32)
        rt = decode_boxes(encode_boxes(box, anchor), anchor)
        np.testing.assert_allclose(rt, box, atol=1e-3)


class TestMetricProperties:
    @given(st.lists(st.integers(0, 5), max_size=10),
           st.lists(st.integers(0, 5), max_size=10),
           st.lists(st.integers(0, 5), max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_edit_distance_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @given(st.lists(st.integers(0, 5), max_size=10),
           st.lists(st.integers(0, 5), max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_edit_distance_symmetry_and_identity(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)
        assert edit_distance(a, a) == 0

    @given(st.integers(0, 20), st.integers(0, 5))
    @settings(max_examples=30, deadline=None)
    def test_span_f1_identity(self, start, length):
        span = (start, start + length)
        assert span_f1(span, span) == 1.0


# ---------------------------------------------------------- failure injection
class TestFailureInjection:
    def test_quantized_graph_rejects_wrong_input_keys(self, toy_exported, toy_inputs):
        exported, _ = toy_exported
        stats = calibrate(exported, [toy_inputs])
        q = quantize_graph(exported, stats)
        with pytest.raises(KeyError):
            Executor(q).run({"wrong_name": toy_inputs["images"]})

    def test_graph_structure_change_breaks_calibration(self, toy_inputs):
        """Calibration from one graph cannot quantize a structurally
        different one (extra layers mean uncovered tensors)."""
        from conftest import build_toy_graph

        g1 = export_mobile(build_toy_graph(seed=1)[0])
        b = GraphBuilder("other", seed=1)
        x = b.input("images", (-1, 12, 12, 3))
        h = b.conv(x, 8, k=3, stride=2, activation="relu6", use_bn=True)
        h = b.conv(h, 8, k=3, activation="relu6", use_bn=True)  # extra layer
        h = b.global_pool(h)
        h = b.reshape(h, (8,))
        h = b.fc(h, 10)
        b.outputs(b.softmax(h))
        g2 = export_mobile(b.build())
        stats = calibrate(g1, [toy_inputs])
        with pytest.raises(KeyError):
            quantize_graph(g2, stats)

    def test_harness_rejects_unknown_soc(self):
        from repro.core import BenchmarkHarness, QUICK_RULES

        harness = BenchmarkHarness(rules=QUICK_RULES)
        with pytest.raises(KeyError):
            harness.run_suite("kirin_9000")

    def test_audit_detects_swapped_model(self):
        """A submission whose deployed model is not derived from the frozen
        reference graph fails the checker (model-equivalence rule, §5.1)."""
        from repro.core import (
            QUICK_RULES, BenchmarkHarness, SystemDescription,
            build_submission, check_submission,
        )

        harness = BenchmarkHarness(rules=QUICK_RULES, dataset_sizes={"squad": 32})
        suite = harness.run_suite("dimensity_1100", tasks=["question_answering"],
                                  include_offline=False)
        sub = build_submission(
            harness, suite,
            SystemDescription("x", "dimensity_1100", "d", "smartphone", "a"),
        )
        sub.model_provenance["question_answering"]["deployed_source_checksum"] = "abcd"
        assert any("frozen" in p for p in check_submission(sub))

    def test_loadgen_degrades_on_zero_latency_sut(self):
        """A SUT claiming instantaneous inference yields a flagged partial
        run (every query dropped after retries), never a crashed suite."""
        from repro.datasets import IndexDataset
        from repro.loadgen import (
            LoadGenerator, QuerySampleLibrary, SystemUnderTest, TestSettings,
            validate_log,
        )

        class BrokenSUT(SystemUnderTest):
            name = "broken"

            def issue_query(self, indices):
                return 0.0  # claims instantaneous inference

        settings = TestSettings(min_query_count=4, min_duration_s=0.0)
        log = LoadGenerator(settings).run(BrokenSUT(), QuerySampleLibrary(IndexDataset()))
        assert log.metadata["partial"]
        assert log.metadata["dropped_queries"] > settings.query_drop_budget
        assert log.query_count == 0
        problems = validate_log(log)
        assert any("partial" in p for p in problems)
        assert any("dropped" in p for p in problems)

    def test_partition_rejects_missing_accelerator(self):
        from repro.analysis import full_graph_cache
        from repro.hardware import FrameworkProfile, compile_model, get_soc

        g = full_graph_cache("mobilenet_edgetpu")
        soc = get_soc("core_i7_1165g7")  # laptops have no NPU
        with pytest.raises(KeyError):
            compile_model(g, soc, primary="npu", numerics=Numerics.INT8,
                          framework=FrameworkProfile("t"))


# ----------------------------------------------------- determinism end-to-end
class TestDeterminism:
    def test_quantized_accuracy_bit_stable(self, toy_exported, toy_inputs):
        exported, out = toy_exported
        stats1 = calibrate(exported, [toy_inputs])
        stats2 = calibrate(exported, [toy_inputs])
        q1 = quantize_graph(exported, stats1)
        q2 = quantize_graph(exported, stats2)
        r1 = Executor(q1).run(toy_inputs)[out]
        r2 = Executor(q2).run(toy_inputs)[out]
        np.testing.assert_array_equal(r1, r2)
        assert q1.checksum() == q2.checksum()

    def test_performance_run_bit_stable(self):
        from repro.analysis import measure_single_stream
        from repro.loadgen import TestSettings

        fast = TestSettings(min_query_count=64, min_duration_s=0.1)
        a = measure_single_stream("exynos_2100", "image_classification", settings=fast)
        b = measure_single_stream("exynos_2100", "image_classification", settings=fast)
        assert a["latency_p90_ms"] == b["latency_p90_ms"]
        assert a["energy_per_query_mj"] == b["energy_per_query_mj"]
