"""Synthetic datasets: generation, evaluation semantics, calibration."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_REGISTRY,
    DEFAULT_SIZES,
    IndexDataset,
    SyntheticADE20K,
    SyntheticCOCO,
    create_dataset,
)
from repro.metrics import GroundTruthBox
from repro.models import create_reference_model


class TestRegistry:
    def test_registry_complete(self):
        assert set(DATASET_REGISTRY) == {
            "imagenet", "coco", "ade20k", "squad", "speech", "superres"
        }
        assert set(DEFAULT_SIZES) == set(DATASET_REGISTRY)

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            create_dataset("cifar", None, {})

    def test_squad_requires_oracle(self, qa_bundle):
        with pytest.raises(ValueError):
            create_dataset("squad", None, qa_bundle.config)


class TestImageNet:
    def test_shapes_and_labels(self, cls_dataset, cls_bundle):
        assert len(cls_dataset) == 96
        size = cls_bundle.config["input_size"]
        feed = cls_dataset.input_batch(np.arange(4))
        assert feed["images"].shape == (4, size, size, 3)
        assert 0 <= cls_dataset.ground_truth(0) < cls_bundle.config["num_classes"]

    def test_perfect_predictions_score_100(self, cls_dataset):
        preds = {i: cls_dataset.ground_truth(i) for i in range(len(cls_dataset))}
        assert cls_dataset.evaluate(preds)["top1"] == 100.0

    def test_wrong_predictions_score_low(self, cls_dataset, cls_bundle):
        k = cls_bundle.config["num_classes"]
        preds = {i: (cls_dataset.ground_truth(i) + 1) % k for i in range(len(cls_dataset))}
        assert cls_dataset.evaluate(preds)["top1"] == 0.0

    def test_calibration_disjoint_from_validation(self, cls_dataset):
        batches = cls_dataset.calibration_batches()
        cal = np.concatenate([b["images"] for b in batches])
        assert len(cal) == 128
        # different seed stream: calibration images differ from validation
        assert not np.array_equal(cal[0], cls_dataset.inputs[0])

    def test_postprocess_argmax(self, cls_dataset, cls_bundle):
        k = cls_bundle.config["num_classes"]
        probs = np.zeros(k, dtype=np.float32)
        probs[7] = 1.0
        assert cls_dataset.postprocess({"probs": probs}, 0) == 7

    def test_determinism(self, cls_bundle, cls_exported):
        a = create_dataset("imagenet", cls_exported, cls_bundle.config, size=16)
        b = create_dataset("imagenet", cls_exported, cls_bundle.config, size=16)
        np.testing.assert_array_equal(a.inputs, b.inputs)
        np.testing.assert_array_equal(a.labels, b.labels)


class TestCOCO:
    @pytest.fixture(scope="class")
    def det(self):
        bundle = create_reference_model("ssd_mobilenet_v2")
        ds = create_dataset("coco", None, bundle.config, size=16)
        return bundle, ds

    def test_truths_valid(self, det):
        _, ds = det
        for i in range(len(ds)):
            for box in ds.ground_truth(i):
                assert isinstance(box, GroundTruthBox)
                y0, x0, y1, x1 = box.box
                assert y0 < y1 and x0 < x1

    def test_perfect_predictions_high_map(self, det):
        from repro.pipelines.detection import Detection

        _, ds = det
        preds = {
            i: [Detection(t.box, 0.95, t.class_id) for t in ds.ground_truth(i)]
            for i in range(len(ds))
        }
        assert ds.evaluate(preds)["mAP"] > 95.0

    def test_no_predictions_zero(self, det):
        _, ds = det
        preds = {i: [] for i in range(len(ds))}
        assert ds.evaluate(preds)["mAP"] == 0.0


class TestADE20K:
    @pytest.fixture(scope="class")
    def seg(self):
        bundle = create_reference_model("deeplab_v3plus")
        ds = create_dataset("ade20k", None, bundle.config, size=8)
        return bundle, ds

    def test_label_alignment(self, seg):
        bundle, ds = seg
        size = bundle.config["input_size"]
        assert ds.labels.shape == (8, size, size)

    def test_perfect_prediction(self, seg):
        _, ds = seg
        preds = {i: ds.ground_truth(i) for i in range(len(ds))}
        assert ds.evaluate(preds)["mIoU"] == 100.0

    def test_inverted_prediction_low(self, seg):
        bundle, ds = seg
        k = bundle.config["num_classes"]
        preds = {i: (ds.ground_truth(i) + 1) % k for i in range(len(ds))}
        assert ds.evaluate(preds)["mIoU"] < 10.0


class TestSQuAD:
    def test_oracle_fidelity_bounds_f1(self, qa_dataset):
        # predicting the ground truth exactly scores 100
        preds = {i: qa_dataset.ground_truth(i) for i in range(len(qa_dataset))}
        scores = qa_dataset.evaluate(preds)
        assert scores["f1"] == 100.0 and scores["exact_match"] == 100.0

    def test_input_batch(self, qa_dataset, qa_bundle):
        feed = qa_dataset.input_batch(np.arange(3))
        assert feed["input_ids"].shape == (3, qa_bundle.config["seq_len"])
        assert set(feed) == {"input_ids", "input_mask"}

    def test_spans_inside_context(self, qa_dataset):
        for i in range(len(qa_dataset)):
            s, e = qa_dataset.ground_truth(i)
            assert s <= e
            assert s >= int(qa_dataset.context_starts[i])


class TestIndexDataset:
    def test_minimal_surface(self):
        ds = IndexDataset(32)
        assert len(ds) == 32
        feed = ds.input_batch(np.array([1, 5]))
        np.testing.assert_array_equal(feed["index"], [1, 5])
        with pytest.raises(NotImplementedError):
            ds.ground_truth(0)
        with pytest.raises(NotImplementedError):
            ds.evaluate({})
