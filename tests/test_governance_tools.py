"""Calibration governance, graph summaries, and the iOS preview device."""

import numpy as np
import pytest

from repro.analysis import full_graph_cache, measure_single_stream
from repro.backends import create_backend, default_backend_for
from repro.core import (
    QUICK_RULES,
    BenchmarkHarness,
    SystemDescription,
    build_submission,
    check_submission,
)
from repro.graph import export_mobile, graph_summary
from repro.hardware import get_soc
from repro.loadgen import TestSettings
from repro.models import create_full_model


class TestCalibrationGovernance:
    @pytest.fixture(scope="class")
    def quantized_submission(self):
        harness = BenchmarkHarness(version="v1.0", rules=QUICK_RULES,
                                   dataset_sizes={"ade20k": 24})
        suite = harness.run_suite("exynos_2100", tasks=["semantic_segmentation"],
                                  include_offline=False)
        sub = build_submission(
            harness, suite,
            SystemDescription("samsung", "exynos_2100", "d", "smartphone", "a"),
        )
        return sub

    def test_quantization_provenance_recorded(self, quantized_submission):
        quant = quantized_submission.model_provenance["semantic_segmentation"][
            "quantization"]
        assert quant["numerics"] in ("int8", "uint8")
        assert quant["calibration_samples"] <= 500
        assert "observer" in quant

    def test_oversized_calibration_rejected(self, quantized_submission):
        quant = quantized_submission.model_provenance["semantic_segmentation"][
            "quantization"]
        original = quant["calibration_samples"]
        quant["calibration_samples"] = 5000  # used the whole training set
        try:
            problems = check_submission(quantized_submission)
            assert any("calibration" in p for p in problems)
        finally:
            quant["calibration_samples"] = original

    def test_fp16_models_have_no_calibration_rule(self):
        harness = BenchmarkHarness(version="v1.0", rules=QUICK_RULES,
                                   dataset_sizes={"squad": 32})
        suite = harness.run_suite("exynos_2100", tasks=["question_answering"],
                                  include_offline=False)
        sub = build_submission(
            harness, suite,
            SystemDescription("samsung", "exynos_2100", "d", "smartphone", "a"),
        )
        assert check_submission(sub) == []


class TestGraphSummary:
    def test_contains_ops_and_totals(self, cls_exported):
        text = graph_summary(cls_exported)
        assert "conv2d" in text
        assert "total:" in text
        assert "[frozen]" in text
        assert f"{len(cls_exported.ops)} ops" in text

    def test_max_rows_truncation(self, cls_exported):
        text = graph_summary(cls_exported, max_rows=3)
        assert "more ops" in text
        assert text.count("conv2d") <= 4

    def test_symbolic_marker(self):
        g = export_mobile(create_full_model("mobilebert").graph)
        assert "(symbolic)" in graph_summary(g, max_rows=2)


class TestApplePreview:
    FAST = TestSettings(min_query_count=64, min_duration_s=0.2)

    def test_competitive_vision_latency(self):
        """The A14 preview lands in the v1.0 flagship neighbourhood."""
        a14 = measure_single_stream("apple_a14", "image_classification",
                                    version="v1.0", settings=self.FAST)
        d1100 = measure_single_stream("dimensity_1100", "image_classification",
                                      settings=self.FAST)
        assert 0.5 < a14["latency_p90_ms"] / d1100["latency_p90_ms"] < 2.0

    def test_ane_runs_resize(self):
        """The ANE supports bilinear resize: DeepLab fragments less there."""
        g = full_graph_cache("deeplab_v3plus")
        apple = default_backend_for(get_soc("apple_a14")).compile_single_stream(
            g, "semantic_segmentation")
        mtk = create_backend("neuron", get_soc("dimensity_1100")).compile_single_stream(
            g, "semantic_segmentation")
        assert len(apple.segments) < len(mtk.segments)

    def test_preview_excluded_from_generation_pairs(self):
        from repro.hardware import GENERATION_PAIRS

        paired = {s for pair in GENERATION_PAIRS.values() for s in pair}
        assert "apple_a14" not in paired
