"""Result records, report rendering, and the v0.7 harness path."""

import numpy as np
import pytest

from repro.core import (
    QUICK_RULES,
    BenchmarkHarness,
    BenchmarkResult,
    SuiteResult,
    format_report,
)


def _result(task="image_classification", passed=True, offline=0.0):
    return BenchmarkResult(
        task=task, version="v1.0", model_name="m", soc_name="soc",
        backend_name="be", execution_config="INT8, X, NPU", numerics="int8",
        accuracy={"top1": 75.0}, fp32_accuracy={"top1": 76.0}, metric="top1",
        quality_target=74.5, quality_passed=passed,
        latency_p90_ms=2.5, latency_mean_ms=2.4, throughput_fps=400.0,
        offline_fps=offline, energy_per_query_mj=3.2,
    )


class TestBenchmarkResult:
    def test_measured_quality(self):
        assert _result().measured_quality == 75.0

    def test_to_summary_fields(self):
        s = _result().to_summary()
        assert s["quality_passed"] is True
        assert s["config"] == "INT8, X, NPU"
        assert s["latency_p90_ms"] == 2.5


class TestSuiteResult:
    def test_result_for(self):
        suite = SuiteResult("soc", "be", "v1.0", [_result()])
        assert suite.result_for("image_classification").task == "image_classification"
        with pytest.raises(KeyError):
            suite.result_for("object_detection")

    def test_all_passed(self):
        ok = SuiteResult("s", "b", "v1.0", [_result(passed=True)])
        bad = SuiteResult("s", "b", "v1.0", [_result(), _result("x", passed=False)])
        assert ok.all_passed and not bad.all_passed


class TestFormatReport:
    def test_report_contents(self):
        suite = SuiteResult("exynos_2100", "enn", "v1.0",
                            [_result(passed=True, offline=674.4)])
        text = format_report(suite)
        assert "MLPerf Mobile v1.0" in text
        assert "exynos_2100" in text
        assert "ALL PASSED" in text
        assert "offline throughput: 674.4" in text
        assert "INT8, X, NPU" in text

    def test_failures_flagged(self):
        suite = SuiteResult("s", "b", "v1.0", [_result(passed=False)])
        assert "FAILURES PRESENT" in format_report(suite)
        assert "NO" in format_report(suite)


class TestV07Harness:
    @pytest.fixture(scope="class")
    def harness(self):
        return BenchmarkHarness(
            version="v0.7", rules=QUICK_RULES,
            dataset_sizes={"coco": 24, "squad": 32},
        )

    def test_v07_uses_ssd(self, harness):
        assert harness.model_for("object_detection") == "ssd_mobilenet_v2"

    def test_v07_suite_runs(self, harness):
        suite = harness.run_suite("dimensity_820", tasks=["question_answering"],
                                  include_offline=False)
        assert suite.backend_name == "nnapi"  # v0.7 MediaTek submitted NNAPI
        r = suite.results[0]
        assert r.energy_per_query_mj > 0
        assert r.latency_mean_ms <= r.latency_p90_ms + 1e-9

    def test_offline_included_for_classification(self):
        harness = BenchmarkHarness(
            version="v1.0", rules=QUICK_RULES, dataset_sizes={"imagenet": 64},
        )
        suite = harness.run_suite("exynos_2100", tasks=["image_classification"],
                                  include_offline=True)
        r = suite.results[0]
        assert r.offline_fps > r.throughput_fps  # batching + ALP win
        assert r.offline_log is not None
