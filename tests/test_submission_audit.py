"""Submission bundles, checker, rolling submissions, independent audit."""

import pytest

from repro.core import (
    QUICK_RULES,
    BenchmarkHarness,
    RollingSubmissionLog,
    SystemDescription,
    audit_submission,
    build_submission,
    check_submission,
)


@pytest.fixture(scope="module")
def harness():
    return BenchmarkHarness(
        version="v1.0", rules=QUICK_RULES,
        dataset_sizes={"imagenet": 64, "coco": 24, "ade20k": 16, "squad": 32},
    )


@pytest.fixture(scope="module")
def submission(harness):
    suite = harness.run_suite("dimensity_1100", tasks=["question_answering"],
                              include_offline=False)
    sysd = SystemDescription("mediatek", "dimensity_1100", "test phone",
                             "smartphone", "Android 11")
    return build_submission(harness, suite, sysd)


class TestChecker:
    def test_clean_submission_passes(self, submission):
        assert check_submission(submission) == []

    def test_non_commercial_rejected(self, harness, submission):
        bad = build_submission(
            harness, submission.suite,
            SystemDescription("x", "dimensity_1100", "proto", "smartphone",
                              "Android", commercially_available=False),
        )
        assert any("commercially available" in p for p in check_submission(bad))

    def test_tampered_loadgen_rejected(self, submission):
        import dataclasses

        bad = dataclasses.replace(
            submission, loadgen_checksum="0" * 64
        ) if dataclasses.is_dataclass(submission) else submission
        bad.loadgen_checksum = "0" * 64
        assert any("LoadGen" in p for p in check_submission(bad))
        bad.loadgen_checksum = submission.loadgen_checksum

    def test_failed_quality_invalidates_performance(self, harness, submission):
        result = submission.suite.results[0]
        original = result.quality_passed
        result.quality_passed = False
        try:
            assert any("below the" in p for p in check_submission(submission))
        finally:
            result.quality_passed = original

    def test_foreign_model_rejected(self, submission):
        prov = submission.model_provenance["question_answering"]
        original = prov["deployed_source_checksum"]
        prov["deployed_source_checksum"] = "f" * 64
        try:
            assert any("frozen" in p for p in check_submission(submission))
        finally:
            prov["deployed_source_checksum"] = original

    def test_missing_logs_rejected(self, submission):
        result = submission.suite.results[0]
        log = result.accuracy_log
        result.accuracy_log = None
        try:
            assert any("unedited log" in p for p in check_submission(submission))
        finally:
            result.accuracy_log = log


class TestRollingSubmissions:
    def test_accepts_and_numbers(self, submission):
        log = RollingSubmissionLog()
        sid = log.submit(submission)
        assert sid == 1 and len(log) == 1
        assert log.latest("dimensity_1100").submission_id == 1

    def test_rejects_invalid(self, submission):
        log = RollingSubmissionLog()
        original = submission.loadgen_checksum
        submission.loadgen_checksum = "bad"
        try:
            with pytest.raises(ValueError):
                log.submit(submission)
        finally:
            submission.loadgen_checksum = original

    def test_leaderboard(self, submission):
        log = RollingSubmissionLog()
        log.submit(submission)
        board = log.leaderboard("question_answering", "v1.0")
        assert board[0][0] == "dimensity_1100"

    def test_latest_missing(self):
        with pytest.raises(KeyError):
            RollingSubmissionLog().latest("exynos_990")


class TestAudit:
    def test_reproduction_within_tolerance(self, harness, submission):
        report = audit_submission(submission, harness)
        assert report.passed, report.summary()
        # deterministic simulator: the reproduction is exact
        assert all(f.relative_error < 1e-9 for f in report.findings)

    def test_falsified_latency_rejected(self, harness, submission):
        result = submission.suite.results[0]
        original = result.latency_p90_ms
        result.latency_p90_ms = original * 0.5  # claims to be 2x faster
        try:
            report = audit_submission(submission, harness)
            assert not report.passed
            assert any(
                not f.within_tolerance and f.quantity == "latency_p90_ms"
                for f in report.findings
            )
        finally:
            result.latency_p90_ms = original

    def test_summary_readable(self, harness, submission):
        report = audit_submission(submission, harness)
        text = report.summary()
        assert "audit result" in text and "question_answering" in text
