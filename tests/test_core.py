"""Core: task registry, run rules, harness wiring."""

import numpy as np
import pytest

from repro.core import (
    DEFAULT_RULES,
    QUICK_RULES,
    BenchmarkHarness,
    RuleViolation,
    RunRules,
    TASK_ORDER,
    TASKS,
    get_task,
    tasks_for_version,
)
from repro.kernels import Numerics


class TestTasks:
    def test_table1_registry(self):
        # 4 Table-1 tasks + 2 App. E experimental tasks
        assert len(TASKS) == 6
        assert TASK_ORDER[0] == "image_classification"
        assert len(tasks_for_version("v1.0")) == 4  # experimental excluded
        assert len(tasks_for_version("experimental")) == 2

    def test_detection_model_changes_between_rounds(self):
        det = get_task("object_detection")
        assert det.models["v0.7"] == "ssd_mobilenet_v2"
        assert det.models["v1.0"] == "mobiledet_ssd"
        # v1.0 tightened the quality requirement (93% -> 95%)
        assert det.quality_ratio["v1.0"] > det.quality_ratio["v0.7"]

    def test_quality_ratios_match_table1(self):
        assert get_task("image_classification").quality_ratio["v1.0"] == 0.98
        assert get_task("semantic_segmentation").quality_ratio["v1.0"] == 0.97
        assert get_task("question_answering").quality_ratio["v1.0"] == 0.93

    def test_offline_only_classification(self):
        offline = [t for t in TASKS.values() if t.offline_scenario]
        assert [t.name for t in offline] == ["image_classification"]

    def test_versions(self):
        assert len(tasks_for_version("v0.7")) == 4
        assert len(tasks_for_version("v1.0")) == 4

    def test_unknown_task(self):
        with pytest.raises(KeyError):
            get_task("style_transfer")


class TestRules:
    def test_defaults_match_paper(self):
        assert DEFAULT_RULES.min_query_count == 1024
        assert DEFAULT_RULES.min_duration_s == 60.0
        assert DEFAULT_RULES.offline_sample_count == 24576
        assert DEFAULT_RULES.latency_percentile == 90.0
        assert DEFAULT_RULES.audit_tolerance == 0.05
        assert (DEFAULT_RULES.ambient_min_c, DEFAULT_RULES.ambient_max_c) == (20.0, 25.0)

    def test_room_temperature_enforced(self):
        with pytest.raises(RuleViolation):
            DEFAULT_RULES.validate_conditions(ambient_c=30.0)
        DEFAULT_RULES.validate_conditions(ambient_c=22.0)

    def test_battery_required(self):
        rules = RunRules(battery_powered=False)
        with pytest.raises(RuleViolation):
            rules.validate_conditions(ambient_c=22.0)

    def test_loadgen_settings_thread_through(self):
        from repro.loadgen import Mode, Scenario

        s = QUICK_RULES.loadgen_settings(Scenario.SINGLE_STREAM, Mode.PERFORMANCE)
        assert s.min_query_count == QUICK_RULES.min_query_count


@pytest.fixture(scope="module")
def harness():
    return BenchmarkHarness(
        version="v1.0", rules=QUICK_RULES,
        dataset_sizes={"imagenet": 64, "coco": 24, "ade20k": 16, "squad": 32},
    )


class TestHarness:
    def test_ambient_enforced_at_construction(self):
        with pytest.raises(RuleViolation):
            BenchmarkHarness(ambient_c=35.0)

    def test_artifact_caching(self, harness):
        a = harness.artifacts("image_classification")
        b = harness.artifacts("image_classification")
        assert a is b

    def test_model_for_version(self, harness):
        assert harness.model_for("object_detection") == "mobiledet_ssd"

    def test_deployment_graphs_cached_per_numerics(self, harness):
        q1 = harness.deployment_graph("image_classification", Numerics.UINT8)
        q2 = harness.deployment_graph("image_classification", Numerics.UINT8)
        assert q1 is q2
        f16 = harness.deployment_graph("image_classification", Numerics.FP16)
        assert f16 is not q1 and f16.numerics == Numerics.FP16

    def test_accuracy_run_produces_metric(self, harness):
        log = harness.run_accuracy("image_classification", Numerics.FP32)
        assert "top1" in log.accuracy
        assert 0 < log.accuracy["top1"] <= 100

    def test_fp32_accuracy_cached(self, harness):
        a = harness.fp32_accuracy("image_classification")
        b = harness.fp32_accuracy("image_classification")
        assert a is b

    def test_suite_single_task(self, harness):
        suite = harness.run_suite("dimensity_1100", tasks=["question_answering"],
                                  include_offline=False)
        assert len(suite.results) == 1
        r = suite.results[0]
        assert r.task == "question_answering"
        assert r.numerics == "fp16"
        assert r.latency_p90_ms > 0
        assert r.quality_target == pytest.approx(
            0.93 * r.fp32_accuracy["f1"], rel=1e-6
        )

    def test_suite_respects_task_order(self, harness):
        suite = harness.run_suite(
            "dimensity_1100",
            tasks=["question_answering", "image_classification"],
            include_offline=False,
        )
        assert [r.task for r in suite.results] == [
            "image_classification", "question_answering"
        ]

    def test_v07_task_on_v10_harness_rejected(self, harness):
        with pytest.raises(KeyError):
            BenchmarkHarness(version="v0.7").model_for("nonexistent_task")
