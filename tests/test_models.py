"""Model zoo: architectures, scaling profiles, head fitting, model cards."""

import numpy as np
import pytest

from repro.graph import Executor
from repro.models import (
    MODEL_REGISTRY,
    available_models,
    create_full_model,
    create_reference_model,
    model_card,
    probe_token_batch,
)
from repro.models.common import round_channels
from repro.models.fitting import ridge_fit


class TestRegistry:
    def test_registry_complete(self):
        assert available_models() == sorted(
            ["mobilenet_edgetpu", "ssd_mobilenet_v2", "mobiledet_ssd",
             "deeplab_v3plus", "mobilebert",
             "mobile_streaming_asr", "mobile_edge_sr"]
        )

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            create_reference_model("resnet50")

    def test_versions_match_table1(self):
        assert MODEL_REGISTRY["ssd_mobilenet_v2"].benchmark_versions == ("v0.7",)
        assert MODEL_REGISTRY["mobiledet_ssd"].benchmark_versions == ("v1.0",)
        assert MODEL_REGISTRY["mobilebert"].benchmark_versions == ("v0.7", "v1.0")


class TestRoundChannels:
    def test_rounding(self):
        assert round_channels(6) == 8
        assert round_channels(1) == 4  # floor
        assert round_channels(16) == 16

    def test_minimum(self):
        assert round_channels(0.5, minimum=8) == 8


class TestFullSizeModels:
    """Symbolic paper-size graphs: parameter counts near Table 1's."""

    @pytest.mark.parametrize("name,lo,hi", [
        ("mobilenet_edgetpu", 3e6, 6e6),      # paper: 4M
        ("mobiledet_ssd", 1.5e6, 6e6),        # paper: 4M
        ("deeplab_v3plus", 1.5e6, 8e6),       # paper: 2M
        ("mobilebert", 15e6, 35e6),           # paper: 25M
    ])
    def test_param_counts(self, name, lo, hi):
        bundle = create_full_model(name)
        assert lo <= bundle.graph.num_parameters <= hi

    def test_full_models_symbolic(self):
        for name in available_models():
            assert create_full_model(name).graph.is_symbolic

    def test_input_resolutions(self):
        assert create_full_model("mobilenet_edgetpu").input_shape == (-1, 224, 224, 3)
        assert create_full_model("ssd_mobilenet_v2").input_shape == (-1, 300, 300, 3)
        assert create_full_model("mobiledet_ssd").input_shape == (-1, 320, 320, 3)
        assert create_full_model("deeplab_v3plus").input_shape == (-1, 512, 512, 3)
        assert create_full_model("mobilebert").input_shape == (-1, 384)


class TestReferenceModels:
    def test_classification_outputs(self, cls_bundle, rng):
        g = cls_bundle.graph
        n = cls_bundle.config["num_classes"]
        imgs = rng.normal(0, 0.5, (2,) + tuple(d for d in cls_bundle.input_shape if d != -1))
        out = Executor(g).run({"images": imgs.astype(np.float32)})
        probs = out[cls_bundle.output_names["probs"]]
        assert probs.shape == (2, n)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-4)

    def test_detection_outputs(self, rng):
        bundle = create_reference_model("ssd_mobilenet_v2")
        size = bundle.config["input_size"]
        imgs = rng.normal(0, 0.5, (2, size, size, 3)).astype(np.float32)
        out = Executor(bundle.graph).run({"images": imgs})
        scores = out[bundle.output_names["scores"]]
        boxes = out[bundle.output_names["boxes"]]
        n_anchors = sum(
            h * w for h, w in bundle.config["feature_shapes"]
        ) * bundle.config["anchors_per_cell"]
        assert scores.shape == (2, n_anchors, bundle.config["num_classes"])
        assert boxes.shape == (2, n_anchors, 4)
        assert scores.min() >= 0 and scores.max() <= 1  # post-sigmoid

    def test_segmentation_outputs(self, rng):
        bundle = create_reference_model("deeplab_v3plus")
        size = bundle.config["input_size"]
        imgs = rng.normal(0, 0.5, (1, size, size, 3)).astype(np.float32)
        out = Executor(bundle.graph).run({"images": imgs})
        logits = out[bundle.output_names["logits"]]
        assert logits.shape == (1, size, size, bundle.config["num_classes"])

    def test_bert_outputs(self, qa_bundle):
        cfg = qa_bundle.config
        feeds = probe_token_batch(cfg["seq_len"], cfg["vocab_size"], n=3)
        out = Executor(qa_bundle.graph).run(feeds)
        start = out[qa_bundle.output_names["start_logits"]]
        end = out[qa_bundle.output_names["end_logits"]]
        assert start.shape == end.shape == (3, cfg["seq_len"])

    def test_fitted_vs_unfitted_heads_differ(self):
        fitted = create_reference_model("mobilenet_edgetpu", fitted=True)
        raw = create_reference_model("mobilenet_edgetpu", fitted=False)
        assert not np.allclose(
            fitted.graph.params["classifier/w"], raw.graph.params["classifier/w"]
        )
        assert fitted.graph.metadata["head_fit"]["task"] == "classification"

    def test_deterministic_build(self):
        a = create_reference_model("mobilenet_edgetpu")
        b = create_reference_model("mobilenet_edgetpu")
        assert a.graph.checksum() == b.graph.checksum()

    def test_seed_changes_weights(self):
        a = create_reference_model("mobilenet_edgetpu")
        b = create_reference_model("mobilenet_edgetpu", seed=99)
        assert a.graph.checksum() != b.graph.checksum()


class TestRidgeFit:
    def test_recovers_linear_map(self, rng):
        w_true = rng.normal(size=(8, 3))
        x = rng.normal(size=(500, 8))
        y = x @ w_true + 0.5
        w, b = ridge_fit(x, y, l2=1e-6)
        np.testing.assert_allclose(w, w_true, atol=0.05)
        np.testing.assert_allclose(b, 0.5, atol=0.05)

    def test_sample_weights_shift_solution(self, rng):
        x = rng.normal(size=(200, 4))
        y = np.where(np.arange(200)[:, None] < 100, 1.0, -1.0) * np.ones((200, 1))
        sw = np.where(np.arange(200) < 100, 10.0, 1.0)
        _, b_weighted = ridge_fit(x, y, 1e-3, sample_weight=sw)
        _, b_plain = ridge_fit(x, y, 1e-3)
        assert b_weighted[0] > b_plain[0]  # pulled toward the upweighted class


class TestModelCard:
    def test_card_contents(self):
        card = model_card("deeplab_v3plus")
        assert card["task"] == "semantic_segmentation"
        assert card["dataset"] == "ade20k"
        assert card["full"]["macs_per_sample"] > card["reference"]["macs_per_sample"]
        assert card["paper_params"] == "2M"
