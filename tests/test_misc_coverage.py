"""Remaining coverage: dilated quantized conv, LSTM in quantized graphs,
experimental CLI round, offline log serialization details."""

import numpy as np
import pytest

from repro.core.app import main
from repro.graph import Executor, GraphBuilder, export_mobile
from repro.kernels import (
    Numerics,
    choose_qparams,
    conv2d,
    conv2d_quantized,
    dequantize,
    quantize,
)
from repro.quantization import calibrate, quantize_graph


class TestDilatedQuantizedConv:
    @pytest.mark.parametrize("numerics", [Numerics.INT8, Numerics.UINT8])
    def test_close_to_float(self, rng, numerics):
        x = rng.normal(0, 1, (1, 10, 10, 3)).astype(np.float32)
        w = rng.normal(0, 0.3, (3, 3, 3, 4)).astype(np.float32)
        ref = conv2d(x, w, dilation=2)
        x_qp = choose_qparams(float(x.min()), float(x.max()), numerics)
        w_qp = choose_qparams(w.min(axis=(0, 1, 2)), w.max(axis=(0, 1, 2)),
                              numerics, symmetric=True, axis=3)
        out_qp = choose_qparams(float(ref.min()), float(ref.max()), numerics)
        outq = conv2d_quantized(quantize(x, x_qp), quantize(w, w_qp), None,
                                x_qp, w_qp, out_qp, dilation=2)
        assert outq.shape == ref.shape
        err = np.abs(dequantize(outq, out_qp) - ref)
        assert err.mean() < 3 * float(out_qp.scale[0])

    def test_atrous_graph_quantizes(self, rng):
        """A graph with dilated convs survives the full PTQ pipeline."""
        b = GraphBuilder("atrous", seed=3)
        x = b.input("images", (-1, 12, 12, 3))
        h = b.conv(x, 8, k=3, activation="relu", use_bn=True)
        h = b.conv(h, 8, k=3, dilation=2, activation="relu", use_bn=True)
        h = b.conv(h, 4, k=1)
        b.outputs(h)
        g = export_mobile(b.build())
        feed = {"images": rng.normal(0, 0.5, (4, 12, 12, 3)).astype(np.float32)}
        stats = calibrate(g, [feed])
        q = quantize_graph(g, stats)
        ref = Executor(g).run(feed)
        got = Executor(q).run(feed)
        k = list(ref)[0]
        assert np.abs(ref[k] - got[k]).mean() < 0.1


class TestLSTMInQuantizedGraph:
    def test_float_island_behaviour(self, rng):
        """LSTM stays a float island: quantized graphs still run it and the
        boundary (de)quantization is the only degradation."""
        b = GraphBuilder("asr", seed=4)
        x = b.input("features", (-1, 8, 6))
        h = b.lstm(x, 10)
        h = b.fc(h, 5)
        b.outputs(h)
        g = export_mobile(b.build())
        feed = {"features": rng.normal(0, 1, (3, 8, 6)).astype(np.float32)}
        stats = calibrate(g, [feed])
        q = quantize_graph(g, stats)
        ref = Executor(g).run(feed)
        got = Executor(q).run(feed)
        k = list(ref)[0]
        assert got[k].shape == ref[k].shape
        err = np.abs(ref[k] - got[k]).mean()
        assert 0 < err < 0.5  # degraded but functional

    def test_lstm_macs_positive(self):
        b = GraphBuilder("asr2", seed=5)
        x = b.input("features", (-1, 8, 6))
        h = b.lstm(x, 10)
        b.outputs(h)
        g = b.build()
        assert g.total_macs == 8 * 4 * 10 * (6 + 10)


class TestExperimentalCLI:
    def test_run_experimental_round(self, capsys):
        import json

        code = main([
            "run", "--soc", "apple_a14", "--version", "experimental",
            "--quick", "--tasks", "super_resolution", "--json", "--no-offline",
        ])
        results = json.loads(capsys.readouterr().out)
        assert results[0]["task"] == "super_resolution"
        assert results[0]["config"].startswith("INT8, Core ML")
        assert code == 0  # SR passes its gate

    def test_describe_graph_flag(self, capsys):
        assert main(["describe", "mobile_edge_sr", "--graph"]) == 0
        out = capsys.readouterr().out
        assert "depth_to_space" in out
        assert "total:" in out

    def test_list_includes_apple(self, capsys):
        main(["list", "socs"])
        assert "apple_a14" in capsys.readouterr().out


class TestOfflineLogDetails:
    def test_offline_summary_and_serialization(self):
        from repro.analysis import full_graph_cache
        from repro.backends import default_backend_for
        from repro.datasets import IndexDataset
        from repro.hardware import SimulatedDevice, get_soc
        from repro.loadgen import (
            LoadGenerator, PerformanceSUT, QuerySampleLibrary, Scenario,
            TestSettings,
        )

        soc = get_soc("exynos_2100")
        be = default_backend_for(soc)
        g = full_graph_cache("mobilenet_edgetpu")
        sut = PerformanceSUT(
            SimulatedDevice(soc),
            be.compile_single_stream(g, "image_classification"),
            be.compile_offline(g, "image_classification"),
        )
        settings = TestSettings(scenario=Scenario.OFFLINE, offline_sample_count=4096)
        log = LoadGenerator(settings).run(sut, QuerySampleLibrary(IndexDataset()))
        s = log.summary()
        assert s["throughput_fps"] > 0
        d = log.to_dict()
        assert d["offline_samples"] == 4096
        assert "steady_clock_scale" in d["metadata"]
