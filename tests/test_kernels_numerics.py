"""Numerics: formats, quantization parameters, round trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    Numerics,
    QuantParams,
    cast_fp16,
    choose_qparams,
    dequantize,
    fake_quant,
    quantize,
)


class TestNumerics:
    def test_format_properties(self):
        assert Numerics.FP32.is_float and not Numerics.FP32.is_quantized
        assert Numerics.INT8.is_quantized and not Numerics.INT8.is_float
        assert Numerics.FP16.bits == 16
        assert Numerics.INT8.bytes_per_element == 1.0
        assert Numerics.UINT8.qmin == 0 and Numerics.UINT8.qmax == 255
        assert Numerics.INT8.qmin == -128 and Numerics.INT8.qmax == 127

    def test_parse(self):
        assert Numerics.parse("int8") is Numerics.INT8
        assert Numerics.parse("FP16") is Numerics.FP16
        assert Numerics.parse(Numerics.FP32) is Numerics.FP32
        with pytest.raises(ValueError):
            Numerics.parse("int4")

    def test_qmin_on_float_raises(self):
        with pytest.raises(ValueError):
            _ = Numerics.FP32.qmin


class TestQuantParams:
    def test_scalar_validation(self):
        with pytest.raises(ValueError):
            QuantParams(scale=0.0, zero_point=0)
        with pytest.raises(ValueError):
            QuantParams(scale=-1.0, zero_point=0)
        with pytest.raises(ValueError):
            QuantParams(scale=[0.1, 0.2], zero_point=[0, 0])  # per-tensor must be scalar

    def test_per_channel(self):
        qp = QuantParams(scale=[0.1, 0.2], zero_point=[0, 0], axis=3)
        assert qp.per_channel
        assert qp.broadcast_shape(4) == (1, 1, 1, 2)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            QuantParams(scale=[0.1, 0.2], zero_point=[0], axis=0)


class TestChooseQparams:
    def test_range_includes_zero(self):
        qp = choose_qparams(2.0, 5.0, Numerics.UINT8)
        # representable range must include 0 -> lo clamps to 0
        assert dequantize(np.array([qp.zero_point[0]], dtype=np.uint8), qp)[0] == pytest.approx(0, abs=1e-6)

    def test_symmetric_int8_zero_point(self):
        qp = choose_qparams(-3.0, 2.0, Numerics.INT8, symmetric=True)
        assert int(qp.zero_point[0]) == 0

    def test_symmetric_uint8_midrange(self):
        qp = choose_qparams(-1.0, 1.0, Numerics.UINT8, symmetric=True)
        assert int(qp.zero_point[0]) == 128

    def test_degenerate_range(self):
        qp = choose_qparams(0.0, 0.0, Numerics.INT8)
        assert qp.scale[0] > 0  # never a zero scale

    @given(lo=st.floats(-100, 0), hi=st.floats(0.001, 100))
    @settings(max_examples=50, deadline=None)
    def test_extremes_representable(self, lo, hi):
        qp = choose_qparams(lo, hi, Numerics.INT8)
        vals = np.array([lo, hi], dtype=np.float64)
        err = np.abs(dequantize(quantize(vals, qp), qp) - vals)
        assert np.all(err <= qp.scale[0] * 1.01)


class TestRoundTrips:
    @given(
        st.lists(st.floats(-50, 50), min_size=1, max_size=64),
        st.sampled_from([Numerics.INT8, Numerics.UINT8, Numerics.INT16]),
    )
    @settings(max_examples=60, deadline=None)
    def test_quantize_error_bounded_by_scale(self, values, numerics):
        arr = np.asarray(values, dtype=np.float64)
        qp = choose_qparams(float(arr.min()), float(arr.max()), numerics)
        rt = dequantize(quantize(arr, qp), qp)
        assert np.all(np.abs(rt - arr) <= qp.scale[0] * 0.51 + 1e-9)

    def test_subnormal_range_yields_positive_scale(self):
        # a subnormal span must not underflow the scale division to 0.0
        for numerics in (Numerics.INT8, Numerics.UINT8):
            for symmetric in (False, True):
                qp = choose_qparams(0.0, 5e-324, numerics, symmetric=symmetric)
                assert qp.scale[0] > 0

    @given(st.lists(st.floats(-10, 10), min_size=1, max_size=32))
    @settings(max_examples=40, deadline=None)
    def test_fake_quant_idempotent(self, values):
        arr = np.asarray(values, dtype=np.float32)
        qp = choose_qparams(float(arr.min()), float(arr.max()), Numerics.INT8)
        once = fake_quant(arr, qp)
        twice = fake_quant(once, qp)
        np.testing.assert_allclose(once, twice, atol=1e-6)

    def test_quantize_saturates(self):
        qp = QuantParams(scale=0.1, zero_point=0, numerics=Numerics.INT8)
        q = quantize(np.array([1e6, -1e6]), qp)
        assert q[0] == 127 and q[1] == -128

    def test_per_channel_quantize(self):
        w = np.stack([np.full((2, 2), 1.0), np.full((2, 2), 10.0)], axis=-1)
        qp = choose_qparams(w.min(axis=(0, 1)), w.max(axis=(0, 1)),
                            Numerics.INT8, symmetric=True, axis=2)
        rt = dequantize(quantize(w, qp), qp)
        # each channel quantized at its own scale: both nearly exact
        np.testing.assert_allclose(rt, w, rtol=0.02)


class TestFP16:
    def test_cast_fp16_rounds(self):
        x = np.array([1.0 + 1e-4], dtype=np.float32)
        assert cast_fp16(x)[0] != x[0]  # below half precision
        assert cast_fp16(np.array([1.5]))[0] == 1.5  # exactly representable

    def test_cast_preserves_dtype(self):
        assert cast_fp16(np.zeros(3)).dtype == np.float32
