"""Headless app CLI and the analysis (figure/table regeneration) layer."""

import json

import pytest

from repro.analysis import (
    PERF_SETTINGS,
    measure_offline,
    measure_single_stream,
    mlperf_feature_selfcheck,
    table2_configurations,
    table3_delegate_comparison,
    table4_grid,
)
from repro.core.app import build_parser, main
from repro.loadgen import Scenario, TestSettings


class TestCLI:
    def test_parser_rejects_unknown_soc(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--soc", "kirin"])

    def test_list_socs(self, capsys):
        assert main(["list", "socs"]) == 0
        out = capsys.readouterr().out
        assert "dimensity_1100" in out and "exynos_990" in out

    def test_list_backends(self, capsys):
        main(["list", "backends"])
        assert "snpe" in capsys.readouterr().out

    def test_list_tasks(self, capsys):
        main(["list", "tasks"])
        assert "question_answering" in capsys.readouterr().out

    def test_describe_model(self, capsys):
        assert main(["describe", "mobilenet_edgetpu"]) == 0
        card = json.loads(capsys.readouterr().out)
        assert card["task"] == "image_classification"

    def test_quick_run_single_task(self, capsys):
        code = main([
            "run", "--soc", "dimensity_1100", "--quick", "--no-offline",
            "--tasks", "question_answering", "--json",
        ])
        results = json.loads(capsys.readouterr().out)
        assert len(results) == 1
        assert results[0]["task"] == "question_answering"
        assert code in (0, 1)  # exit code reflects quality gate

    def test_ambient_out_of_rules(self):
        from repro.core import RuleViolation

        with pytest.raises(RuleViolation):
            main(["run", "--soc", "dimensity_1100", "--quick", "--ambient", "35",
                  "--tasks", "question_answering"])


FAST = TestSettings(min_query_count=32, min_duration_s=0.01)


class TestAnalysis:
    def test_measure_single_stream_fields(self):
        row = measure_single_stream("dimensity_1100", "image_classification",
                                    settings=FAST)
        assert row["latency_p90_ms"] > 0
        assert row["config"].startswith("UINT8")
        assert row["segments"] >= 1

    def test_measure_offline(self):
        row = measure_offline("exynos_990", sample_count=2048)
        assert row["offline_fps"] > 0
        assert row["pipelines"] == 2  # NPU + CPU (Table 2 ALP)

    def test_table2_grid_complete(self):
        grid = table2_configurations("v0.7")
        assert set(grid) == {"exynos_990", "snapdragon_865plus", "dimensity_820",
                             "core_i7_1165g7"}
        for row in grid.values():
            assert "image_classification_offline" in row

    def test_table3_improvements_positive(self):
        t3 = table3_delegate_comparison(settings=FAST)
        for task, pct in t3["improvement_pct"].items():
            assert pct > 0, f"Neuron must beat NNAPI on {task}"

    def test_table4_only_mlperf_complete(self):
        grid = table4_grid()
        assert all(grid["MLPerf Mobile"].values())
        for name, row in grid.items():
            if name != "MLPerf Mobile":
                assert not all(row.values()), f"{name} should miss a requirement"

    def test_selfcheck_is_computed(self):
        assert set(mlperf_feature_selfcheck()) == {1, 2, 3, 4, 5}
