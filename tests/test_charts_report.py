"""Chart rendering and the live evaluation report."""

import pytest

from repro.analysis import bar_chart, grouped_bar_chart
from repro.core.app import main


class TestBarChart:
    def test_scaling(self):
        text = bar_chart({"a": 10.0, "b": 5.0}, width=10)
        lines = text.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_title_and_units(self):
        text = bar_chart({"x": 1.0}, title="speeds:", unit=" fps")
        assert text.startswith("speeds:")
        assert "1.00 fps" in text

    def test_minimum_one_block(self):
        text = bar_chart({"big": 1000.0, "tiny": 0.001}, width=20)
        assert all("█" in line for line in text.splitlines())

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({"a": 0.0})


class TestGroupedBarChart:
    def test_groups_rendered(self):
        text = grouped_bar_chart({"g1": {"a": 2.0}, "g2": {"a": 4.0}}, width=8)
        assert "g1:" in text and "g2:" in text
        # bars share one global scale across groups
        lines = [l for l in text.splitlines() if "█" in l]
        assert lines[1].count("█") == 2 * lines[0].count("█")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            grouped_bar_chart({})


class TestReportCLI:
    def test_report_fast(self, capsys):
        assert main(["report", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "Figure 7" in out
        assert "Table 2" in out
        assert "Table 3" in out
        assert "Table 4" in out
        assert "MLPerf Mobile" in out
        assert "█" in out  # charts actually rendered
