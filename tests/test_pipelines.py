"""Pre/post-processing pipelines: preprocessing, anchors, NMS, spans."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipelines import (
    Detection,
    anchors_for_model,
    center_crop,
    classification_preprocess,
    decode_boxes,
    dense_preprocess,
    extract_answer_span,
    generate_ssd_anchors,
    iou_matrix,
    nms,
    normalize_image,
    postprocess_detections,
    qa_preprocess,
    resize_image,
    segmentation_map,
    top_k,
)
from repro.pipelines.detection import encode_boxes


class TestPreprocess:
    def test_normalize_range(self):
        img = np.array([[[0, 128, 255]]], dtype=np.uint8)
        out = normalize_image(img)
        assert out[0, 0, 0] == pytest.approx(-1.0)
        assert out[0, 0, 2] == pytest.approx(1.0, abs=0.01)

    def test_center_crop(self):
        img = np.arange(36).reshape(6, 6, 1)
        out = center_crop(img, 2, 2)
        np.testing.assert_array_equal(out[..., 0], [[14, 15], [20, 21]])

    def test_crop_too_large(self):
        with pytest.raises(ValueError):
            center_crop(np.zeros((4, 4, 3)), 8, 8)

    def test_classification_preprocess_shape(self, rng):
        img = rng.integers(0, 256, (50, 50, 3)).astype(np.uint8)
        out = classification_preprocess(img, 32)
        assert out.shape == (32, 32, 3)
        assert -1.01 <= out.min() and out.max() <= 1.01

    def test_dense_preprocess_shape(self, rng):
        img = rng.integers(0, 256, (70, 70, 3)).astype(np.uint8)
        assert dense_preprocess(img, 64).shape == (64, 64, 3)

    def test_qa_preprocess_pads_and_truncates(self):
        ids, mask = qa_preprocess(np.arange(1, 6), 8)
        assert list(ids) == [1, 2, 3, 4, 5, 0, 0, 0]
        assert mask.sum() == 5
        ids2, mask2 = qa_preprocess(np.arange(1, 20), 8)
        assert mask2.sum() == 8 and ids2[-1] == 8


class TestAnchors:
    def test_counts(self):
        anchors = generate_ssd_anchors([(4, 4), (2, 2)], aspect_ratios=(1.0, 2.0, 0.5))
        assert anchors.shape == ((16 + 4) * 4, 4)  # 3 aspects + extra scale

    def test_anchor_geometry_valid(self):
        anchors = generate_ssd_anchors([(3, 3)])
        assert np.all(anchors[:, 2:] > 0)  # positive h, w
        assert np.all((anchors[:, :2] >= 0) & (anchors[:, :2] <= 1))  # centers in image

    def test_scales_increase_with_coarseness(self):
        anchors = generate_ssd_anchors([(8, 8), (1, 1)])
        fine = anchors[: 8 * 8 * 4]
        coarse = anchors[8 * 8 * 4 :]
        assert coarse[:, 2].mean() > fine[:, 2].mean()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            generate_ssd_anchors([])

    def test_anchors_for_model_matches_head_layout(self):
        cfg = {"feature_shapes": [(4, 4), (2, 2)], "anchors_per_cell": 4}
        anchors = anchors_for_model(cfg)
        assert len(anchors) == (16 + 4) * 4


class TestBoxCoding:
    @given(
        st.floats(0.05, 0.4), st.floats(0.05, 0.4),
        st.floats(0.2, 0.5), st.floats(0.2, 0.5),
    )
    @settings(max_examples=50, deadline=None)
    def test_encode_decode_roundtrip(self, y0, x0, h, w):
        box = np.array([[y0, x0, min(y0 + h, 0.99), min(x0 + w, 0.99)]])
        anchor = np.array([[0.5, 0.5, 0.4, 0.4]], dtype=np.float32)
        enc = encode_boxes(box, anchor)
        dec = decode_boxes(enc, anchor)
        np.testing.assert_allclose(dec, box, atol=1e-3)

    def test_decode_clips_to_image(self):
        anchor = np.array([[0.9, 0.9, 0.5, 0.5]], dtype=np.float32)
        enc = np.array([[5.0, 5.0, 3.0, 3.0]], dtype=np.float32)
        dec = decode_boxes(enc, anchor)
        assert dec.min() >= 0 and dec.max() <= 1

    def test_zero_offsets_give_anchor(self):
        anchor = np.array([[0.5, 0.5, 0.2, 0.4]], dtype=np.float32)
        dec = decode_boxes(np.zeros((1, 4), dtype=np.float32), anchor)
        np.testing.assert_allclose(dec[0], [0.4, 0.3, 0.6, 0.7], atol=1e-6)


class TestIoU:
    def test_identical(self):
        b = np.array([[0.1, 0.1, 0.5, 0.5]])
        assert iou_matrix(b, b)[0, 0] == pytest.approx(1.0)

    def test_disjoint(self):
        a = np.array([[0.0, 0.0, 0.2, 0.2]])
        b = np.array([[0.5, 0.5, 0.9, 0.9]])
        assert iou_matrix(a, b)[0, 0] == 0.0

    def test_half_overlap(self):
        a = np.array([[0.0, 0.0, 1.0, 0.5]])
        b = np.array([[0.0, 0.0, 1.0, 1.0]])
        assert iou_matrix(a, b)[0, 0] == pytest.approx(0.5)

    @given(st.lists(st.floats(0, 1), min_size=4, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_bounded(self, coords):
        y0, x0, y1, x1 = sorted(coords[:2]) + sorted(coords[2:])
        a = np.array([[y0, x0, y1, x1]])
        v = iou_matrix(a, a)[0, 0]
        assert 0.0 <= v <= 1.0


class TestNMS:
    def test_suppresses_overlaps(self):
        boxes = np.array([[0.1, 0.1, 0.5, 0.5], [0.12, 0.12, 0.52, 0.52],
                          [0.6, 0.6, 0.9, 0.9]])
        scores = np.array([0.9, 0.8, 0.7])
        keep = nms(boxes, scores, iou_threshold=0.5)
        assert list(keep) == [0, 2]

    def test_keeps_all_disjoint(self):
        boxes = np.array([[0, 0, 0.2, 0.2], [0.4, 0.4, 0.6, 0.6], [0.8, 0.8, 1, 1]])
        keep = nms(boxes, np.array([0.5, 0.9, 0.7]))
        assert sorted(keep) == [0, 1, 2]
        assert keep[0] == 1  # highest score first

    def test_max_outputs(self):
        boxes = np.array([[0, 0, 0.1, 0.1], [0.2, 0.2, 0.3, 0.3], [0.5, 0.5, 0.6, 0.6]])
        keep = nms(boxes, np.array([0.9, 0.8, 0.7]), max_outputs=2)
        assert len(keep) == 2

    @given(st.integers(1, 20))
    @settings(max_examples=20, deadline=None)
    def test_selected_pairwise_below_threshold(self, n):
        rng = np.random.default_rng(n)
        cy, cx = rng.uniform(0.2, 0.8, (2, n))
        h = w = rng.uniform(0.05, 0.3, n)
        boxes = np.stack([cy - h / 2, cx - w / 2, cy + h / 2, cx + w / 2], axis=1)
        scores = rng.uniform(0, 1, n)
        keep = nms(boxes, scores, iou_threshold=0.4)
        kept = boxes[keep]
        ious = iou_matrix(kept, kept)
        np.fill_diagonal(ious, 0)
        assert ious.max() <= 0.4 + 1e-9


class TestPostprocessDetections:
    def test_threshold_and_background(self):
        anchors = np.array([[0.3, 0.3, 0.2, 0.2], [0.7, 0.7, 0.2, 0.2]], dtype=np.float32)
        scores = np.array([[0.9, 0.2], [0.1, 0.8]], dtype=np.float32)  # classes {0=bg, 1}
        boxes = np.zeros((2, 4), dtype=np.float32)
        dets = postprocess_detections(scores, boxes, anchors, score_threshold=0.5)
        # only the class-1 detection at anchor 1 survives (class 0 is background)
        assert len(dets) == 1 and dets[0].class_id == 1

    def test_sorted_by_score(self):
        anchors = np.array([[0.3, 0.3, 0.2, 0.2], [0.7, 0.7, 0.2, 0.2]], dtype=np.float32)
        scores = np.array([[0.0, 0.6], [0.0, 0.9]], dtype=np.float32)
        boxes = np.zeros((2, 4), dtype=np.float32)
        dets = postprocess_detections(scores, boxes, anchors, score_threshold=0.5)
        assert dets[0].score >= dets[1].score


class TestTopK:
    def test_ordering(self):
        probs = np.array([0.1, 0.5, 0.2, 0.15, 0.05])
        assert list(top_k(probs, 3)) == [1, 2, 3]

    def test_k_larger_than_classes(self):
        probs = np.array([0.6, 0.4])
        assert len(top_k(probs, 10)) == 2


class TestSegmentationMap:
    def test_argmax(self, rng):
        logits = rng.normal(size=(4, 4, 3)).astype(np.float32)
        out = segmentation_map(logits)
        np.testing.assert_array_equal(out, logits.argmax(-1))
        assert out.dtype == np.int32


class TestAnswerSpan:
    def test_picks_best_pair(self):
        start = np.array([0.0, 5.0, 0.0, 0.0])
        end = np.array([0.0, 0.0, 4.0, 0.0])
        assert extract_answer_span(start, end) == (1, 2)

    def test_respects_context_start(self):
        start = np.array([10.0, 0.0, 3.0, 0.0])
        end = np.array([10.0, 0.0, 3.0, 0.0])
        span = extract_answer_span(start, end, context_start=2)
        assert span[0] >= 2

    def test_max_answer_length(self):
        start = np.zeros(20); start[0] = 5
        end = np.zeros(20); end[19] = 5
        s, e = extract_answer_span(start, end, max_answer_length=4)
        assert e - s < 4

    def test_start_le_end_always(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            s_logits = rng.normal(size=16)
            e_logits = rng.normal(size=16)
            s, e = extract_answer_span(s_logits, e_logits)
            assert s <= e

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            extract_answer_span(np.array([]), np.array([]))
