"""Task quality metrics: Top-1/Top-K, COCO mAP, mIoU, SQuAD F1/EM."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    GroundTruthBox,
    average_precision,
    coco_map,
    confusion_matrix,
    exact_match,
    miou,
    miou_frequent_classes,
    span_f1,
    squad_scores,
    top1_accuracy,
    topk_accuracy,
)
from repro.pipelines.detection import Detection


class TestTop1:
    def test_from_ids(self):
        assert top1_accuracy(np.array([1, 2, 3]), np.array([1, 0, 3])) == pytest.approx(2 / 3)

    def test_from_scores(self):
        scores = np.array([[0.1, 0.9], [0.8, 0.2]])
        assert top1_accuracy(scores, np.array([1, 0])) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            top1_accuracy(np.array([]), np.array([]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            top1_accuracy(np.array([1, 2]), np.array([1]))

    def test_topk(self):
        scores = np.array([[0.5, 0.3, 0.2], [0.1, 0.2, 0.7]])
        assert topk_accuracy(scores, np.array([1, 0]), k=2) == pytest.approx(0.5)
        assert topk_accuracy(scores, np.array([1, 0]), k=3) == 1.0

    @given(st.integers(2, 20), st.integers(5, 50))
    @settings(max_examples=25, deadline=None)
    def test_topk_monotone_in_k(self, classes, n):
        rng = np.random.default_rng(classes * n)
        scores = rng.normal(size=(n, classes))
        labels = rng.integers(0, classes, n)
        accs = [topk_accuracy(scores, labels, k) for k in range(1, classes + 1)]
        assert all(a <= b + 1e-9 for a, b in zip(accs, accs[1:]))
        assert accs[-1] == 1.0


def _det(box, score, cid):
    return Detection(tuple(box), score, cid)


def _gt(box, cid):
    return GroundTruthBox(tuple(box), cid)


class TestCocoMap:
    def test_perfect_detections(self):
        truths = [[_gt((0.1, 0.1, 0.5, 0.5), 1), _gt((0.6, 0.6, 0.9, 0.9), 2)]]
        dets = [[_det((0.1, 0.1, 0.5, 0.5), 0.9, 1), _det((0.6, 0.6, 0.9, 0.9), 0.8, 2)]]
        assert coco_map(dets, truths) == pytest.approx(1.0, abs=0.01)

    def test_no_detections(self):
        truths = [[_gt((0.1, 0.1, 0.5, 0.5), 1)]]
        assert coco_map([[]], truths) == 0.0

    def test_wrong_class_scores_zero(self):
        truths = [[_gt((0.1, 0.1, 0.5, 0.5), 1)]]
        dets = [[_det((0.1, 0.1, 0.5, 0.5), 0.9, 2)]]
        assert coco_map(dets, truths) == 0.0

    def test_localization_quality_matters(self):
        truths = [[_gt((0.1, 0.1, 0.5, 0.5), 1)]]
        exact = [[_det((0.1, 0.1, 0.5, 0.5), 0.9, 1)]]
        shifted = [[_det((0.15, 0.15, 0.55, 0.55), 0.9, 1)]]  # IoU ~0.65
        assert coco_map(exact, truths) > coco_map(shifted, truths) > 0

    def test_false_positives_reduce_precision(self):
        truths = [[_gt((0.1, 0.1, 0.5, 0.5), 1)]]
        clean = [[_det((0.1, 0.1, 0.5, 0.5), 0.9, 1)]]
        noisy = [[_det((0.1, 0.1, 0.5, 0.5), 0.5, 1),
                  _det((0.6, 0.6, 0.9, 0.9), 0.9, 1)]]  # confident FP ranked first
        assert coco_map(clean, truths) > coco_map(noisy, truths)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            coco_map([[]], [[], []])

    def test_average_precision_known(self):
        # recall 0->1 at precision 1: AP = 1
        assert average_precision(np.array([1.0]), np.array([1.0])) == pytest.approx(1.0, abs=0.01)
        assert average_precision(np.array([]), np.array([])) == 0.0


class TestMiou:
    def test_perfect(self):
        conf = confusion_matrix(np.array([0, 1, 2]), np.array([0, 1, 2]), 3)
        assert miou(conf) == 1.0

    def test_known_value(self):
        # 2 classes: class0 1 correct of 2 union-members, class1 1/2
        pred = np.array([0, 1])
        truth = np.array([0, 0])
        conf = confusion_matrix(pred, truth, 2)
        # class0: inter 1, union 2 -> 0.5 ; class1: inter 0, union 1 -> 0
        assert miou(conf) == pytest.approx(0.25)

    def test_absent_classes_excluded(self):
        conf = confusion_matrix(np.array([0, 0]), np.array([0, 0]), 5)
        assert miou(conf) == 1.0  # only class 0 present

    def test_other_bucket_ignored(self):
        preds = [np.array([[0, 1], [2, 3]])]
        truths = [np.array([[0, 1], [2, 3]])]
        # class 3 is "other" in a 4-class problem: perfect elsewhere
        assert miou_frequent_classes(preds, truths, num_classes=4) == 1.0
        # mistakes on "other" pixels cost nothing
        preds_bad_other = [np.array([[0, 1], [2, 0]])]
        assert miou_frequent_classes(preds_bad_other, truths, num_classes=4) == 1.0

    def test_empty_eval_raises(self):
        with pytest.raises(ValueError):
            miou(np.zeros((3, 3)))


class TestSquad:
    def test_exact_match(self):
        assert exact_match((3, 5), (3, 5)) == 1.0
        assert exact_match((3, 5), (3, 6)) == 0.0

    def test_f1_overlap(self):
        # pred [2,4], truth [3,5]: overlap 2 tokens, |p|=3, |t|=3 -> f1=2/3
        assert span_f1((2, 4), (3, 5)) == pytest.approx(2 / 3)

    def test_f1_disjoint(self):
        assert span_f1((0, 1), (5, 6)) == 0.0

    def test_f1_perfect(self):
        assert span_f1((7, 9), (7, 9)) == 1.0

    @given(st.integers(0, 30), st.integers(0, 10), st.integers(0, 30), st.integers(0, 10))
    @settings(max_examples=50, deadline=None)
    def test_f1_bounded_and_symmetric(self, s1, l1, s2, l2):
        a, b = (s1, s1 + l1), (s2, s2 + l2)
        f = span_f1(a, b)
        assert 0.0 <= f <= 1.0
        assert f == pytest.approx(span_f1(b, a))

    def test_dataset_scores(self):
        preds = [(0, 2), (5, 7)]
        truths = [(0, 2), (6, 8)]
        scores = squad_scores(preds, truths)
        assert scores["exact_match"] == 50.0
        assert 50.0 < scores["f1"] < 100.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            squad_scores([], [])
