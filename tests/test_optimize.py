"""Graph-rewrite optimizer: per-pass coverage, idempotency, zoo equivalence.

Every pass gets the ISSUE-mandated trio: a graph it rewrites, a graph it
must leave untouched, and a pass-squared idempotency check. The zoo sweep
then proves the full pipeline preserves runtime behaviour in all four
numerics — bit-exact on the integer paths.
"""

import zlib

import numpy as np
import pytest

from repro.graph import ExecutionPlan, Executor, export_mobile
from repro.graph.builder import GraphBuilder
from repro.graph.optimize import DEFAULT_PASSES, PASSES, optimize_graph
from repro.kernels import Numerics
from repro.models import available_models, create_reference_model
from repro.quantization import calibrate, convert_fp16, quantize_graph

NUMERICS_MODES = [Numerics.FP32, Numerics.FP16, Numerics.INT8, Numerics.UINT8]


def build_rewritable():
    """One synthetic graph that every removal pass has work on.

    pad->valid-conv (fold_pad), a collapsible reshape chain whose collapse
    exposes an identity reshape (cancel_reshapes x2), duplicate relu ops
    (cse), a relu that becomes provably redundant once it sits behind the
    relu-fused conv (collapse_requant), and a relu of a Constant
    (fold_constants).
    """
    b = GraphBuilder("rw")
    x = b.input("x", (-1, 8, 8, 3))
    p = b.pad(x, (1, 1), (1, 1), name="pre_pad")
    c1 = b.conv(p, 8, k=3, stride=1, padding="valid", activation="relu", name="c1")
    r1 = b.reshape(c1, (8, 8 * 8), name="r1")
    r2 = b.reshape(r1, (8, 8, 8), name="r2")
    a1 = b.activation(r2, "relu", name="dup_a")
    a2 = b.activation(r2, "relu", name="dup_b")
    s = b.add(a1, a2, name="sum")
    rr = b.activation(s, "relu", name="redundant_relu")
    k = b.constant(
        np.linspace(-1, 1, 8 * 8 * 8).astype(np.float32).reshape(8, 8, 8), name="kconst"
    )
    ka = b.activation(k, "relu", name="kact")
    out = b.add(rr, ka, name="mix")
    b.outputs(out)
    return b.build()


def build_plain():
    """A graph no pass may touch: distinct ops, useful reshape, no constants."""
    b = GraphBuilder("plain")
    x = b.input("x", (-1, 8, 8, 3))
    c = b.conv(x, 4, k=3, activation="relu", name="c0")
    d = b.dwconv(c, k=3, name="d0")
    r = b.reshape(d, (8 * 8 * 4,), name="flat")
    f = b.fc(r, 10, name="head")
    out = b.softmax(f, name="probs")
    b.outputs(out)
    return b.build()


# solo rewrite counts on build_rewritable(): collapse_requant and dce only
# fire after other passes expose their opportunity, so solo they are 0
EXPECTED_SOLO = {
    "fold_constants": 1,
    "cse": 1,
    "cancel_reshapes": 2,
    "fold_pad": 1,
    "collapse_requant": 0,
    "dce": 0,
}

EXPECTED_PIPELINE = {
    "fold_constants": 1,
    "cse": 1,
    "cancel_reshapes": 2,
    "fold_pad": 1,
    "collapse_requant": 1,
    "dce": 0,
}


@pytest.fixture(scope="module")
def rewritable():
    g = build_rewritable()
    rng = np.random.default_rng(0)
    feeds = {"x": rng.normal(0, 1, (2, 8, 8, 3)).astype(np.float32)}
    stats = calibrate(g, [feeds])
    return g, feeds, stats


class TestPipeline:
    def test_full_pipeline_counts_and_purity(self, rewritable):
        g, _, _ = rewritable
        before = len(g.ops)
        opt = optimize_graph(g)
        assert opt.metadata["optimize"]["passes"] == EXPECTED_PIPELINE
        assert opt.metadata["optimize"]["total"] == 6
        assert (before, len(opt.ops)) == (11, 5)
        # the input graph is never mutated
        assert len(g.ops) == before and "optimize" not in g.metadata
        opt.validate()

    def test_pipeline_idempotent(self, rewritable):
        g, _, _ = rewritable
        opt = optimize_graph(g)
        again = optimize_graph(opt)
        assert again.metadata["optimize"]["total"] == 0
        assert [(o.name, o.op_type) for o in again.ops] == [
            (o.name, o.op_type) for o in opt.ops
        ]

    @pytest.mark.parametrize("numerics", [Numerics.INT8, Numerics.UINT8],
                             ids=lambda n: n.value)
    def test_quantized_pipeline_gains_identity_lut_removal(self, rewritable, numerics):
        """Integer graphs admit one extra rewrite: the qparams-equal relu
        behind the already-clamped conv is an identity LUT."""
        g, _, stats = rewritable
        dep = quantize_graph(g, stats, numerics)
        opt = optimize_graph(dep)
        assert opt.metadata["optimize"]["total"] == 7
        assert len(opt.ops) == 4

    def test_fp16_blocks_unrounded_forwarding(self, rewritable):
        """fold_pad must not fire on FP16: it would forward the raw float32
        graph input past the per-op half rounding the pad applied."""
        g, _, _ = rewritable
        dep = convert_fp16(g)
        opt = optimize_graph(dep)
        assert opt.metadata["optimize"]["total"] == 5
        assert opt.metadata["optimize"]["passes"]["fold_pad"] == 0
        assert len(opt.ops) == 6

    def test_unknown_pass_rejected(self, rewritable):
        g, _, _ = rewritable
        with pytest.raises(KeyError):
            optimize_graph(g, passes=("fold_constants", "inline_everything"))

    def test_default_passes_cover_catalog(self):
        assert set(DEFAULT_PASSES) == set(PASSES)

    def test_plan_only_swaps_graph_when_rewrites_fire(self, rewritable):
        g, _, _ = rewritable
        plan = ExecutionPlan(g)
        assert plan.optimize_stats["total"] == 6
        assert plan.graph is not plan.source_graph
        plain = build_plain()
        unchanged = ExecutionPlan(plain)
        assert unchanged.optimize_stats["total"] == 0
        assert unchanged.graph is plain

    def test_export_mobile_optimize_flag(self, rewritable):
        g, feeds, _ = rewritable
        ref = export_mobile(g)
        opt = export_mobile(g, optimize=True)
        assert opt.metadata["optimize"]["total"] > 0
        assert len(opt.ops) < len(ref.ops)
        a = Executor(ref).run_unplanned(feeds)
        b = Executor(opt).run_unplanned(feeds)
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])


class TestPerPass:
    @pytest.mark.parametrize("pname", list(PASSES))
    def test_solo_counts_and_equivalence(self, rewritable, pname):
        """(a) each pass fires the expected number of times on its own and
        preserves the graph's outputs."""
        g, feeds, _ = rewritable
        solo = optimize_graph(g, passes=(pname,))
        solo.validate()
        assert solo.metadata["optimize"]["passes"][pname] == EXPECTED_SOLO[pname]
        ref = Executor(g).run_unplanned(feeds)
        got = ExecutionPlan(solo, optimize=False).run(feeds)
        for name in ref:
            np.testing.assert_allclose(ref[name], got[name], rtol=1e-6, atol=1e-6)

    @pytest.mark.parametrize("pname", list(PASSES))
    def test_leaves_plain_graph_unchanged(self, pname):
        """(b) a graph with nothing to rewrite comes back structurally equal."""
        g = build_plain()
        solo = optimize_graph(g, passes=(pname,))
        assert solo.metadata["optimize"]["total"] == 0
        assert [(o.name, o.op_type) for o in solo.ops] == [
            (o.name, o.op_type) for o in g.ops
        ]
        assert solo.output_names == g.output_names

    @pytest.mark.parametrize("pname", list(PASSES))
    def test_pass_squared_is_pass(self, rewritable, pname):
        """(c) applying any pass to its own output rewrites nothing."""
        g, _, _ = rewritable
        once = optimize_graph(g, passes=(pname,))
        twice = optimize_graph(once, passes=(pname,))
        assert twice.metadata["optimize"]["total"] == 0

    def test_collapse_requant_fires_after_fused_producer(self):
        """Dedicated positive for collapse_requant: relu directly behind a
        relu-fused conv is provably the identity."""
        b = GraphBuilder("rr")
        x = b.input("x", (-1, 8, 8, 3))
        c = b.conv(x, 4, k=3, activation="relu", name="c")
        r = b.activation(c, "relu", name="r")
        b.outputs(r)
        g = b.build()
        rng = np.random.default_rng(3)
        feeds = {"x": rng.normal(0, 1, (2, 8, 8, 3)).astype(np.float32)}
        solo = optimize_graph(g, passes=("collapse_requant",))
        assert solo.metadata["optimize"]["passes"]["collapse_requant"] == 1
        ref = Executor(g).run_unplanned(feeds)
        got = Executor(solo).run_unplanned(feeds)
        np.testing.assert_array_equal(
            next(iter(ref.values())), next(iter(got.values()))
        )

    def test_dce_drops_unconsumed_branch(self):
        """Dedicated positive for dce: a producer nothing reads is removed
        (built without validate(), whose dead-end check would reject it)."""
        b = GraphBuilder("dead")
        x = b.input("x", (-1, 8, 8, 3))
        live = b.conv(x, 4, k=3, name="live")
        b.conv(x, 4, k=3, name="dead")
        b.outputs(live)
        g = b.graph
        solo = optimize_graph(g, passes=("dce",))
        assert solo.metadata["optimize"]["passes"]["dce"] == 1
        assert [o.name for o in solo.ops] == ["live"]
        assert "dead/w" not in solo.params
        solo.validate()

    def test_fold_pad_rejects_nonzero_value(self):
        b = GraphBuilder("nz")
        x = b.input("x", (-1, 8, 8, 3))
        p = b.pad(x, (1, 1), (1, 1), value=0.5, name="pre_pad")
        out = b.conv(p, 4, k=3, padding="valid", name="c")
        b.outputs(out)
        solo = optimize_graph(b.build(), passes=("fold_pad",))
        assert solo.metadata["optimize"]["total"] == 0

    def test_cse_respects_distinct_attrs(self):
        b = GraphBuilder("na")
        x = b.input("x", (-1, 8, 8, 3))
        a = b.activation(x, "relu", name="a")
        c = b.activation(x, "relu6", name="c")
        b.outputs(b.add(a, c, name="o"))
        solo = optimize_graph(b.build(), passes=("cse",))
        assert solo.metadata["optimize"]["total"] == 0


# -- zoo-wide equivalence sweep ------------------------------------------------


def _random_feeds(graph, rng, batch=2):
    feeds = {}
    for spec in graph.inputs:
        shape = spec.with_batch(batch)
        if spec.role == "ids":
            feeds[spec.name] = rng.integers(0, 28, size=shape).astype(np.float32)
        elif spec.role == "mask":
            feeds[spec.name] = np.ones(shape, dtype=np.float32)
        else:
            feeds[spec.name] = rng.normal(0, 0.5, size=shape).astype(np.float32)
    return feeds


@pytest.fixture(scope="module", params=available_models())
def opt_zoo_artifacts(request):
    name = request.param
    bundle = create_reference_model(name, fitted=False)
    exported = export_mobile(bundle.graph)
    rng = np.random.default_rng(zlib.crc32(name.encode()))
    feeds = _random_feeds(exported, rng)
    stats = calibrate(exported, [feeds])
    return exported, feeds, stats


def _deployment(exported, stats, numerics):
    if numerics == Numerics.FP32:
        return exported
    if numerics == Numerics.FP16:
        return convert_fp16(exported)
    return quantize_graph(exported, stats, numerics)


class TestZooEquivalence:
    @pytest.mark.parametrize("numerics", NUMERICS_MODES, ids=lambda n: n.value)
    def test_optimized_and_arena_match_unplanned(self, opt_zoo_artifacts, numerics):
        """Optimized plan + arena execution == legacy loop, across the zoo.

        Bit-exact on INT8/UINT8 (and, with zero rewrites on these graphs,
        on the float paths too); the steady-state arena run is exercised
        twice so buffer reuse across calls is covered.
        """
        exported, feeds, stats = opt_zoo_artifacts
        graph = _deployment(exported, stats, numerics)
        ref = Executor(graph).run_unplanned(feeds)

        opt = optimize_graph(graph)
        planned = ExecutionPlan(opt, optimize=False).run(feeds)

        plan = ExecutionPlan(graph)  # optimize=True by default
        arena_record = plan.run_arena(feeds)
        arena_steady = plan.run_arena(feeds)
        arena_again = plan.run_arena(feeds)

        exact = numerics.is_quantized or opt.metadata["optimize"]["total"] == 0
        for name in ref:
            for got in (planned, arena_record, arena_steady, arena_again):
                if exact:
                    np.testing.assert_array_equal(ref[name], got[name])
                else:
                    np.testing.assert_allclose(
                        ref[name], got[name], rtol=1e-5, atol=1e-6
                    )
