"""Repo self-lint tests: each SL rule fires on crafted source, path scoping
works, and the repo itself is clean (the same gate ci.sh enforces)."""

from __future__ import annotations

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "tools"))

import selflint  # noqa: E402


def _ids(violations):
    return [v.rule_id for v in violations]


def test_sl001_mutable_default_literals_and_constructors():
    src = (
        "def a(x=[]):\n    pass\n"
        "def b(y={}):\n    pass\n"
        "def c(*, z=set()):\n    pass\n"
        "def d(w=dict()):\n    pass\n"
    )
    violations = selflint.lint_source(src)
    assert _ids(violations) == ["SL001"] * 4
    assert violations[0].line == 1
    assert "shared across calls" in violations[0].message


def test_sl001_silent_on_immutable_defaults():
    src = "def f(a=None, b=(), c=0, d='x'):\n    return a, b, c, d\n"
    assert selflint.lint_source(src) == []


def test_sl002_bare_except():
    src = "try:\n    pass\nexcept:\n    pass\n"
    violations = selflint.lint_source(src)
    assert _ids(violations) == ["SL002"]
    assert violations[0].line == 3


def test_sl002_silent_on_named_except():
    src = "try:\n    pass\nexcept ValueError:\n    pass\n"
    assert selflint.lint_source(src) == []


def test_sl003_percentile_banned_on_latency_paths():
    src = "import numpy as np\nq = np.percentile([1.0], 90)\n"
    violations = selflint.lint_source(src, "src/repro/loadgen/scenarios.py")
    assert _ids(violations) == ["SL003"]
    assert "nearest-rank" in violations[0].message


def test_sl003_allowed_in_calibration_code():
    src = "import numpy as np\nq = np.percentile([1.0], 90)\n"
    assert selflint.lint_source(src, "src/repro/quantization/observers.py") == []


def test_sl004_unseeded_global_randomness():
    src = (
        "import random\nimport numpy as np\n"
        "a = random.random()\n"
        "b = np.random.rand(3)\n"
        "c = numpy.random.normal(0, 1)\n"
        "rng = np.random.default_rng()\n"
    )
    violations = selflint.lint_source(src)
    assert _ids(violations) == ["SL004"] * 4
    assert "default_rng(seed)" in violations[0].message


def test_sl004_silent_on_seeded_generator():
    src = (
        "import numpy as np\n"
        "rng = np.random.default_rng(0)\n"
        "rng2 = np.random.default_rng(seed=7)\n"
        "x = rng.normal(0, 1)\n"
    )
    assert selflint.lint_source(src) == []


def test_sl005_dead_local_assignment():
    src = (
        "def f(x):\n"
        "    unused = x + 1\n"
        "    y = x * 2\n"
        "    return y\n"
    )
    violations = selflint.lint_source(src)
    assert _ids(violations) == ["SL005"]
    assert violations[0].line == 2
    assert "'unused'" in violations[0].message


def test_sl005_underscore_prefix_opts_out():
    src = "def f(x):\n    _scratch = x + 1\n    return x\n"
    assert selflint.lint_source(src) == []


def test_sl005_closure_read_counts_as_use():
    src = (
        "def f(x):\n"
        "    captured = x + 1\n"
        "    def inner():\n"
        "        return captured\n"
        "    return inner\n"
    )
    assert selflint.lint_source(src) == []


def test_sl005_nested_function_locals_not_attributed_to_outer():
    src = (
        "def outer(x):\n"
        "    def inner(y):\n"
        "        dead = y + 1\n"
        "        return y\n"
        "    return inner(x)\n"
    )
    violations = selflint.lint_source(src)
    assert [(v.rule_id, v.line) for v in violations] == [("SL005", 3)]
    assert "inner()" in violations[0].message


def test_sl005_globals_and_tuple_unpacking_exempt():
    src = (
        "def f(x):\n"
        "    global counter\n"
        "    counter = x\n"
        "    a, b = x, x + 1\n"
        "    return a + b\n"
    )
    assert selflint.lint_source(src) == []


def test_sl000_syntax_error():
    violations = selflint.lint_source("def broken(:\n")
    assert _ids(violations) == ["SL000"]


def test_violations_sorted_by_location():
    src = "try:\n    pass\nexcept:\n    pass\ndef f(a=[]):\n    pass\n"
    violations = selflint.lint_source(src)
    assert [(v.line, v.rule_id) for v in violations] == [(3, "SL002"), (5, "SL001")]


def test_repo_is_clean():
    targets = [ROOT / "src", ROOT / "tests", ROOT / "tools"]
    assert selflint.lint_paths(targets) == []


def test_main_exit_codes(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(a=[]):\n    pass\n")
    assert selflint.main([str(bad)]) == 1
    good = tmp_path / "good.py"
    good.write_text("def f(a=None):\n    pass\n")
    assert selflint.main([str(good)]) == 0
    capsys.readouterr()
