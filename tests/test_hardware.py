"""Hardware simulation: accelerators, partitioning, thermal, power, device."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import full_graph_cache
from repro.graph import export_mobile
from repro.hardware import (
    GENERATION_PAIRS,
    OP_SUPPORT,
    SOC_CATALOG,
    AcceleratorSpec,
    FrameworkProfile,
    PowerModel,
    SimulatedDevice,
    ThermalModel,
    compile_model,
    get_soc,
    partition_graph,
)
from repro.hardware.scheduler import offline_throughput
from repro.kernels import Numerics


FW = FrameworkProfile("test")


class TestAcceleratorSpec:
    def test_compute_time(self):
        acc = AcceleratorSpec("a", "npu", {Numerics.INT8: 1.0}, 10.0, 5.0, 1.0)
        # 1 TOPS, 0.5 G MACs = 1 G ops -> 1 ms
        assert acc.compute_seconds(0.5e9, Numerics.INT8) == pytest.approx(1e-3)

    def test_unsupported_numerics(self):
        acc = AcceleratorSpec("a", "npu", {Numerics.INT8: 1.0}, 10.0, 5.0, 1.0)
        assert not acc.supports(Numerics.FP32)
        with pytest.raises(ValueError):
            acc.compute_seconds(1e9, Numerics.FP32)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            AcceleratorSpec("a", "tpu", {Numerics.INT8: 1.0}, 10.0, 5.0, 1.0)

    def test_op_support_hierarchy(self):
        assert OP_SUPPORT["npu"] < OP_SUPPORT["gpu"]  # GPU runs strictly more
        assert "attention" not in OP_SUPPORT["npu"]
        assert "attention" in OP_SUPPORT["gpu"]
        assert "resize_bilinear" not in OP_SUPPORT["npu"]


class TestCatalog:
    def test_catalog_rounds(self):
        # 8 chips across the two published rounds + the iOS preview device
        assert len(SOC_CATALOG) == 9
        v07 = [s for s in SOC_CATALOG.values() if s.benchmark_version == "v0.7"]
        v10 = [s for s in SOC_CATALOG.values() if s.benchmark_version == "v1.0"]
        assert len(v07) == len(v10) == 4
        assert SOC_CATALOG["apple_a14"].benchmark_version == "preview"

    def test_generation_pairs_valid(self):
        for old, new in GENERATION_PAIRS.values():
            assert SOC_CATALOG[old].benchmark_version == "v0.7"
            assert SOC_CATALOG[new].benchmark_version == "v1.0"
            assert SOC_CATALOG[old].vendor == SOC_CATALOG[new].vendor

    def test_every_soc_has_cpu(self):
        for soc in SOC_CATALOG.values():
            assert soc.accelerator("cpu").kind == "cpu"

    def test_unknown_soc(self):
        with pytest.raises(KeyError):
            get_soc("kirin_9000")

    def test_smartphone_tdp_capped(self):
        for soc in SOC_CATALOG.values():
            if soc.form_factor == "smartphone":
                assert soc.tdp_watts <= 3.0  # paper App. E


class TestPartitioning:
    def test_classification_splits_at_softmax(self):
        g = full_graph_cache("mobilenet_edgetpu")
        soc = get_soc("dimensity_1100")
        segs = partition_graph(g, soc.accelerator("apu"), soc.accelerator("cpu"),
                               Numerics.UINT8)
        assert len(segs) == 2
        assert segs[0].accelerator.name == "apu"
        assert segs[1].accelerator.name == "cpu"  # softmax falls back
        assert segs[1].num_ops == 1  # just the final softmax ("probs")

    def test_fp32_stays_off_npu(self):
        g = full_graph_cache("mobilenet_edgetpu")
        soc = get_soc("dimensity_1100")
        segs = partition_graph(g, soc.accelerator("apu"), soc.accelerator("cpu"),
                               Numerics.FP32)
        assert all(s.accelerator.name == "cpu" for s in segs)

    def test_dilated_convs_fall_back(self):
        g = full_graph_cache("deeplab_v3plus")
        soc = get_soc("dimensity_1100")
        segs = partition_graph(g, soc.accelerator("apu"), soc.accelerator("cpu"),
                               Numerics.UINT8, secondary=soc.accelerator("gpu"))
        gpu_ops = [op for s in segs if s.accelerator.name == "gpu" for op in s.op_names]
        assert any("rate6" in op or "rate12" in op for op in gpu_ops)

    def test_framework_exclusions(self):
        g = full_graph_cache("deeplab_v3plus")
        soc = get_soc("exynos_990")
        with_excl = partition_graph(
            g, soc.accelerator("npu"), soc.accelerator("cpu"), Numerics.INT8,
            secondary=soc.accelerator("gpu"),
            excluded_ops=frozenset({"concat"}),
        )
        without = partition_graph(
            g, soc.accelerator("npu"), soc.accelerator("cpu"), Numerics.INT8,
            secondary=soc.accelerator("gpu"),
        )
        assert len(with_excl) > len(without)

    def test_unfolded_bn_rejected(self, cls_bundle):
        soc = get_soc("dimensity_1100")
        with pytest.raises(ValueError):
            partition_graph(cls_bundle.graph, soc.accelerator("apu"),
                            soc.accelerator("cpu"), Numerics.UINT8)

    def test_mass_conservation(self):
        g = full_graph_cache("mobilenet_edgetpu")
        soc = get_soc("exynos_2100")
        segs = partition_graph(g, soc.accelerator("npu"), soc.accelerator("cpu"),
                               Numerics.INT8)
        assert sum(s.macs for s in segs) == g.total_macs
        assert sum(s.num_ops for s in segs) == len(g.ops)


class TestCompiledModel:
    @pytest.fixture()
    def compiled(self):
        g = full_graph_cache("mobilenet_edgetpu")
        soc = get_soc("dimensity_1100")
        return compile_model(g, soc, primary="apu", numerics=Numerics.UINT8, framework=FW)

    def test_latency_positive(self, compiled):
        assert compiled.latency_seconds() > 0

    def test_batching_amortizes(self, compiled):
        """Per-sample time must drop with batch size (overhead amortization)."""
        t1 = compiled.latency_seconds(batch=1)
        t64 = compiled.latency_seconds(batch=64) / 64
        assert t64 < t1

    def test_throttling_slows(self, compiled):
        hot = compiled.latency_seconds({a.name: 0.6 for a in compiled.soc.accelerators})
        assert hot > compiled.latency_seconds()

    def test_framework_overhead_additive(self):
        g = full_graph_cache("mobilenet_edgetpu")
        soc = get_soc("dimensity_1100")
        slow_fw = FrameworkProfile("slow", per_inference_ms=5.0)
        fast = compile_model(g, soc, primary="apu", numerics=Numerics.UINT8, framework=FW)
        slow = compile_model(g, soc, primary="apu", numerics=Numerics.UINT8, framework=slow_fw)
        assert slow.latency_seconds() - fast.latency_seconds() == pytest.approx(5e-3, rel=0.01)

    def test_busy_seconds_below_latency(self, compiled):
        busy = compiled.busy_seconds()
        assert sum(busy.values()) <= compiled.latency_seconds()

    def test_offline_throughput_dram_cap(self):
        g = full_graph_cache("mobilenet_edgetpu")
        soc = get_soc("snapdragon_865plus")
        pipes = [
            compile_model(g, soc, primary=p, numerics=Numerics.UINT8, framework=FW)
            for p in ("hta", "hvx")
        ]
        # the compile records the arena-planned working set, far below the
        # naive every-tensor-resident sum the cap used to assume
        naive_bytes = sum(seg.activation_bytes for seg in pipes[0].segments)
        assert 0 < pipes[0].arena_bytes_per_sample < naive_bytes / 3
        arena_fps = offline_throughput(pipes)
        # force the naive footprint: the 865+ is DRAM-limited without reuse
        for p in pipes:
            p.arena_bytes_per_sample = 0.0
        naive_fps = offline_throughput(pipes)
        uncapped = offline_throughput(pipes, dram_gbps=1e6)
        assert naive_fps < uncapped  # DRAM-limited in offline mode
        assert arena_fps >= naive_fps  # buffer reuse can only loosen the cap


class TestThermal:
    def test_heats_toward_steady_state(self):
        soc = get_soc("dimensity_1100")
        t = ThermalModel(soc, ambient_c=22.0)
        t.advance(1e6, power_watts=3.0)  # long enough to converge
        assert t.temperature_c == pytest.approx(22.0 + 3.0 * soc.thermal_resistance, rel=0.01)

    def test_cooldown_returns_to_ambient(self):
        soc = get_soc("dimensity_1100")
        t = ThermalModel(soc, ambient_c=22.0)
        t.temperature_c = 80.0
        t.cooldown(1e6)
        assert t.temperature_c == pytest.approx(22.0, abs=0.1)

    def test_throttle_curve(self):
        soc = get_soc("dimensity_1100")
        t = ThermalModel(soc)
        assert t.clock_scale() == 1.0
        t.temperature_c = soc.throttle_temp + 10
        assert t.clock_scale() == pytest.approx(1.0 - soc.throttle_slope * 10)
        t.temperature_c = 300.0
        assert t.clock_scale() == t.min_clock_scale

    def test_ambient_validation(self):
        with pytest.raises(ValueError):
            ThermalModel(get_soc("dimensity_1100"), ambient_c=50.0)

    def test_negative_time_rejected(self):
        t = ThermalModel(get_soc("dimensity_1100"))
        with pytest.raises(ValueError):
            t.advance(-1.0, 1.0)

    @given(st.floats(0.1, 10.0), st.floats(0.0, 4.0))
    @settings(max_examples=30, deadline=None)
    def test_monotone_heating(self, seconds, power):
        t = ThermalModel(get_soc("exynos_2100"))
        before = t.temperature_c
        t.advance(seconds, power)
        if power > 0:
            assert t.temperature_c >= before - 1e-9


class TestPowerAndDevice:
    def test_energy_positive_and_capped(self):
        g = full_graph_cache("deeplab_v3plus")
        soc = get_soc("dimensity_1100")
        cm = compile_model(g, soc, primary="apu", numerics=Numerics.UINT8, framework=FW)
        pm = PowerModel(soc)
        lat = cm.latency_seconds()
        e = pm.query_energy(cm, lat)
        assert e.energy_joules > 0
        assert e.average_watts <= soc.tdp_watts + 1e-9

    def test_device_accumulates(self):
        g = full_graph_cache("mobilenet_edgetpu")
        soc = get_soc("dimensity_1100")
        cm = compile_model(g, soc, primary="apu", numerics=Numerics.UINT8, framework=FW)
        dev = SimulatedDevice(soc)
        for _ in range(10):
            dev.run_query(cm)
        assert dev.virtual_time > 0 and dev.total_energy_joules > 0
        t = dev.thermal.temperature_c
        assert t > 22.0

    def test_sustained_load_throttles(self):
        """Long single-stream runs drift latencies upward (run-rule rationale)."""
        g = full_graph_cache("deeplab_v3plus")
        soc = get_soc("exynos_990")
        cm = compile_model(g, soc, primary="npu", numerics=Numerics.INT8,
                           framework=FW, secondary="gpu")
        dev = SimulatedDevice(soc)
        first = dev.run_query(cm).latency_seconds
        for _ in range(900):  # ~1 virtual minute of sustained segmentation
            dev.run_query(cm)
        last = dev.run_query(cm).latency_seconds
        assert last > first

    def test_factory_reset(self):
        soc = get_soc("dimensity_1100")
        dev = SimulatedDevice(soc)
        dev.thermal.temperature_c = 70
        dev.virtual_time = 100
        dev.reset()
        assert dev.thermal.temperature_c == 22.0 and dev.virtual_time == 0
