"""Table 3 — NNAPI vs the vendor-optimized Neuron delegate (Dimensity 1100).

Paper values (ms):        NNAPI   Neuron   improvement
  image classification     2.48     2.23     10.08%
  object detection         5.05     4.77      5.54%
  image segmentation      20.56    20.02      2.70%

Shape assertions: the vendor delegate wins on every vision task, and the
relative gap SHRINKS as the model gets bigger (the fixed HAL round-trip
amortizes; §7.4). Absolute latencies must land within 2x of the paper's.
"""

import pytest

from repro.analysis import table3_delegate_comparison

from conftest import BENCH_SETTINGS, save_result

PAPER = {
    "image_classification": (2.48, 2.23, 10.08),
    "object_detection": (5.05, 4.77, 5.54),
    "semantic_segmentation": (20.56, 20.02, 2.70),
}


@pytest.mark.benchmark(group="table3")
def test_table3_delegate_gap(benchmark):
    t3 = benchmark.pedantic(
        table3_delegate_comparison, kwargs={"settings": BENCH_SETTINGS},
        rounds=1, iterations=1,
    )
    save_result("table3_delegates", t3)

    print("\nTable 3 — Dimensity 1100, NNAPI vs Neuron delegate")
    print(f"{'task':<26}{'NNAPI ms':>10}{'Neuron ms':>11}{'gain %':>8}{'paper %':>9}")
    for task, (p_nnapi, p_neuron, p_gain) in PAPER.items():
        print(f"{task:<26}{t3['nnapi'][task]:>10.2f}{t3['neuron'][task]:>11.2f}"
              f"{t3['improvement_pct'][task]:>8.2f}{p_gain:>9.2f}")

    tasks = list(PAPER)
    # vendor delegate wins everywhere
    for task in tasks:
        assert t3["improvement_pct"][task] > 0, task
    # the gap shrinks with model size: classification > detection > segmentation
    gaps = [t3["improvement_pct"][t] for t in tasks]
    assert gaps[0] > gaps[1] > gaps[2], f"gap must decrease with size, got {gaps}"
    # classification gap in the paper's ~10% neighbourhood
    assert 5.0 <= gaps[0] <= 20.0
    # absolute latencies within 2x of the published numbers
    for task, (p_nnapi, p_neuron, _) in PAPER.items():
        assert t3["nnapi"][task] == pytest.approx(p_nnapi, rel=1.0)
        assert t3["neuron"][task] == pytest.approx(p_neuron, rel=1.0)


@pytest.mark.benchmark(group="table3")
def test_ablation_sync_overhead_drives_the_gap(benchmark):
    """DESIGN.md ablation 2: zeroing the HAL sync collapses Table 3's gap."""
    from repro.analysis import full_graph_cache
    from repro.backends import create_backend
    from repro.hardware import FrameworkProfile, SimulatedDevice, get_soc
    from repro.hardware.scheduler import compile_model

    def run():
        soc = get_soc("dimensity_1100")
        g = full_graph_cache("mobilenet_edgetpu")
        neuron = create_backend("neuron", soc).compile_single_stream(
            g, "image_classification")
        nnapi = create_backend("nnapi", soc).compile_single_stream(
            g, "image_classification")
        free_nnapi = compile_model(
            g, soc, primary="apu", numerics=nnapi.numerics,
            framework=FrameworkProfile("nnapi-zero-sync"),
        )
        return {
            "neuron_ms": neuron.latency_seconds() * 1e3,
            "nnapi_ms": nnapi.latency_seconds() * 1e3,
            "nnapi_zero_sync_ms": free_nnapi.latency_seconds() * 1e3,
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("table3_ablation_sync", r)
    gap = r["nnapi_ms"] / r["neuron_ms"] - 1
    gap_zeroed = r["nnapi_zero_sync_ms"] / r["neuron_ms"] - 1
    print(f"\nsync ablation: gap {gap*100:.1f}% -> {gap_zeroed*100:.1f}% with zero sync")
    assert gap > 0.05
    assert gap_zeroed < gap / 3  # the gap is (almost entirely) the sync cost
