"""Table 1 — the benchmark suite and its minimum-quality targets.

Regenerates the suite table: per task, the FP32 reference quality and the
quality retained by the rules-compliant INT8 (PTQ) and FP16 deployment
models, gated at the paper's ratios (98% / 95% / 97% / 93% of FP32).

Paper-shape assertions:
- every vision task passes its gate at FP16;
- classification and segmentation pass their gates at INT8;
- MobileBERT *fails* its gate at INT8 but passes at FP16 (Insight 5).
Known scale artifact (recorded, not asserted): the scaled detection models
retain ~80-92% of FP32 at INT8, short of the paper's 93/95% targets
(EXPERIMENTS.md discusses why).
"""

import pytest

from repro.core.tasks import TASK_ORDER, get_task
from repro.kernels import Numerics

from conftest import save_result


def _quality(harness, task, numerics):
    spec = get_task(task)
    acc = harness.run_accuracy(task, numerics).accuracy
    return acc[spec.metric]


@pytest.mark.benchmark(group="table1")
def test_table1_quality_targets(benchmark, accuracy_harness):
    harness = accuracy_harness

    def run():
        rows = {}
        for task in TASK_ORDER:
            spec = get_task(task)
            fp32 = harness.fp32_accuracy(task)[spec.metric]
            int8 = _quality(harness, task, Numerics.INT8)
            fp16 = _quality(harness, task, Numerics.FP16)
            rows[task] = {
                "metric": spec.metric,
                "fp32": fp32,
                "int8": int8,
                "fp16": fp16,
                "ratio_int8": int8 / fp32,
                "ratio_fp16": fp16 / fp32,
                "target_ratio": spec.quality_ratio["v1.0"],
                "paper_fp32": spec.paper_fp32_quality["v1.0"],
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("table1_suite", rows)

    print("\nTable 1 — quality vs targets (v1.0, scaled reference models)")
    print(f"{'task':<26}{'metric':>7}{'fp32':>8}{'int8':>8}{'fp16':>8}"
          f"{'int8%':>8}{'fp16%':>8}{'gate':>6}")
    for task, r in rows.items():
        print(f"{task:<26}{r['metric']:>7}{r['fp32']:>8.2f}{r['int8']:>8.2f}"
              f"{r['fp16']:>8.2f}{r['ratio_int8']*100:>8.1f}{r['ratio_fp16']*100:>8.1f}"
              f"{r['target_ratio']*100:>6.0f}")

    # FP16 always meets the gate (it is numerically near-FP32)
    for task in TASK_ORDER:
        assert rows[task]["ratio_fp16"] >= rows[task]["target_ratio"], task

    # INT8 passes the vision gates the paper says it passes
    assert rows["image_classification"]["ratio_int8"] >= 0.98
    assert rows["semantic_segmentation"]["ratio_int8"] >= 0.97

    # Insight 5: NLP INT8 misses its gate while FP16 clears it
    assert rows["question_answering"]["ratio_int8"] < 0.93
    assert rows["question_answering"]["ratio_fp16"] >= 0.93

    # detection: INT8 degrades measurably but the model remains functional
    # (scale artifact; see EXPERIMENTS.md)
    assert 0.6 <= rows["object_detection"]["ratio_int8"] <= 1.05


@pytest.mark.benchmark(group="table1")
def test_table1_fp32_reference_near_paper(benchmark, accuracy_harness):
    """The tuned generators land FP32 quality near the paper's reference."""
    harness = accuracy_harness

    def run():
        spec = get_task("image_classification")
        return harness.fp32_accuracy("image_classification")[spec.metric]

    top1 = benchmark.pedantic(run, rounds=1, iterations=1)
    # paper FP32 reference: 76.19% Top-1
    assert 70.0 <= top1 <= 82.0
