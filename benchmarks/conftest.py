"""Shared fixtures for the reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures, prints the
paper-style rows (run with ``-s`` to see them), asserts the shape claims from
DESIGN.md §3, and writes a JSON artifact under ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.core import QUICK_RULES, BenchmarkHarness
from repro.loadgen import TestSettings

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# real-but-reduced LoadGen rules for the performance benchmarks: long enough
# to include the thermal tail, short enough to keep the suite quick
BENCH_SETTINGS = TestSettings(min_query_count=512, min_duration_s=5.0)


def save_result(name: str, payload) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / f"{name}.json", "w") as fh:
        json.dump(payload, fh, indent=2, default=str)


@pytest.fixture(scope="session")
def accuracy_harness():
    """Harness with full-size synthetic validation sets (Table 1 gates)."""
    return BenchmarkHarness(version="v1.0", rules=QUICK_RULES)


@pytest.fixture(scope="session")
def accuracy_harness_v07():
    return BenchmarkHarness(version="v0.7", rules=QUICK_RULES)
