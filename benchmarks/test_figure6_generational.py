"""Figure 6 — generational latency improvement, v0.7 -> v1.0.

Regenerates the per-vendor per-task speedup bars. Paper shape:
- ~2x average latency improvement across tasks and vendors;
- one outlier far above the rest (Exynos segmentation: hardware 2x plus a
  ~6x software/scheduling uplift; paper reports 12.7x, we land >5x);
- laptop (Intel) gains are modest for vision (CPU/iGPU frequency bumps)
  and large for NLP (the OpenVINO quantized kernel).
"""

import numpy as np
import pytest

from repro.analysis import figure6_generational_speedups
from repro.core.tasks import TASK_ORDER

from conftest import BENCH_SETTINGS, save_result


@pytest.mark.benchmark(group="figure6")
def test_figure6_speedups(benchmark):
    speedups = benchmark.pedantic(
        figure6_generational_speedups, kwargs={"settings": BENCH_SETTINGS},
        rounds=1, iterations=1,
    )
    save_result("figure6_generational", speedups)

    print("\nFigure 6 — v0.7 -> v1.0 single-stream speedups")
    print(f"{'vendor':<12}" + "".join(f"{t[:12]:>14}" for t in TASK_ORDER))
    for vendor, row in speedups.items():
        print(f"{vendor:<12}" + "".join(f"{row[t]:>13.2f}x" for t in TASK_ORDER))

    flat = [s for row in speedups.values() for s in row.values()]
    mean = float(np.mean(flat))
    print(f"mean {mean:.2f}x   max {max(flat):.2f}x")

    # headline: ~2x average improvement over six months
    assert 1.5 <= mean <= 3.0, f"mean speedup {mean:.2f}x outside the paper's ~2x"

    # the Exynos segmentation outlier (paper: 12.7x; we assert a big multiple)
    assert speedups["samsung"]["semantic_segmentation"] > 5.0
    assert speedups["samsung"]["semantic_segmentation"] == max(flat)

    # phones improve on every task; laptops may be nearly flat on vision
    for vendor in ("samsung", "qualcomm", "mediatek"):
        for task in TASK_ORDER:
            assert speedups[vendor][task] > 1.0, (vendor, task)
    for task in TASK_ORDER:
        assert speedups["intel"][task] > 0.8

    # Intel NLP gain dwarfs its vision gains (quantized kernel, §7.1)
    intel = speedups["intel"]
    assert intel["question_answering"] > 1.5
    assert intel["question_answering"] > intel["image_classification"]
    assert intel["question_answering"] > intel["semantic_segmentation"]
