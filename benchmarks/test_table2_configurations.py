"""Table 2 — execution configurations and the offline ALP numbers.

Regenerates the transparency grid (numerics / framework / accelerators per
SoC per task) and the offline image-classification throughput anchors:
Exynos 990 674.4 FPS vs Snapdragon 865+ 605.37 FPS, both produced by
accelerator-level parallelism (NPU+CPU and HTA+HVX respectively).
"""

import pytest

from repro.analysis import measure_offline, measure_single_stream, table2_configurations
from repro.hardware import get_soc
from repro.hardware.scheduler import offline_throughput
from repro.backends import default_backend_for
from repro.analysis import full_graph_cache

from conftest import BENCH_SETTINGS, save_result

# the exact cells the paper prints (Table 2, v0.7 round)
PAPER_CELLS = {
    ("exynos_990", "image_classification"): "INT8, ENN, NPU",
    ("exynos_990", "question_answering"): "FP16, ENN, GPU",
    ("snapdragon_865plus", "image_classification"): "UINT8, SNPE, HTA",
    ("snapdragon_865plus", "question_answering"): "FP16, TFLite delegate, GPU",
    ("dimensity_820", "image_classification"): "UINT8, NNAPI, APU",
    ("dimensity_820", "question_answering"): "FP16, TFLite delegate, GPU",
    ("core_i7_1165g7", "image_classification"): "INT8, OpenVINO, CPU",
    ("core_i7_1165g7", "question_answering"): "INT8, OpenVINO, GPU",
}

PAPER_OFFLINE = {"exynos_990": 674.4, "snapdragon_865plus": 605.37}


@pytest.mark.benchmark(group="table2")
def test_table2_config_grid(benchmark):
    grid = benchmark.pedantic(table2_configurations, args=("v0.7",),
                              rounds=1, iterations=1)
    save_result("table2_configurations", grid)
    print("\nTable 2 — execution configurations (v0.7)")
    for soc, row in grid.items():
        print(f"{soc}:")
        for task, cell in row.items():
            print(f"   {task:<34} {cell}")
    for (soc, task), want in PAPER_CELLS.items():
        assert grid[soc][task] == want, (soc, task)
    # offline classification uses multiple engines (ALP) on every phone
    assert "+" in grid["exynos_990"]["image_classification_offline"]
    assert grid["snapdragon_865plus"]["image_classification_offline"].endswith("HTA+HVX")
    assert grid["core_i7_1165g7"]["image_classification_offline"].endswith("CPU+GPU")


@pytest.mark.benchmark(group="table2")
def test_table2_offline_anchors(benchmark):
    def run():
        return {
            soc: measure_offline(soc, "image_classification")
            for soc in ("exynos_990", "snapdragon_865plus")
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("table2_offline", rows)
    print("\nTable 2 — offline classification throughput")
    for soc, r in rows.items():
        print(f"{soc:<22} {r['offline_fps']:8.1f} FPS  (paper: {PAPER_OFFLINE[soc]})"
              f"  via {r['config']}")

    ex = rows["exynos_990"]["offline_fps"]
    sd = rows["snapdragon_865plus"]["offline_fps"]
    # ordering and rough magnitude of the published anchors
    assert ex > sd
    assert ex == pytest.approx(PAPER_OFFLINE["exynos_990"], rel=0.15)
    assert sd == pytest.approx(PAPER_OFFLINE["snapdragon_865plus"], rel=0.15)
    assert ex / sd == pytest.approx(674.4 / 605.37, rel=0.1)


@pytest.mark.benchmark(group="table2")
def test_alp_beats_single_engine(benchmark):
    """Insight 3: concurrent accelerators raise offline throughput."""

    def run():
        g = full_graph_cache("mobilenet_edgetpu")
        out = {}
        for soc_name in ("exynos_990", "snapdragon_865plus", "core_i7_1165g7"):
            soc = get_soc(soc_name)
            be = default_backend_for(soc)
            pipes = be.compile_offline(g, "image_classification")
            # compare raw engine throughput (uncapped): ALP's gain is real
            # even when the shared DRAM interface ultimately caps both
            alp = offline_throughput(pipes, dram_gbps=1e9)
            solo = offline_throughput(pipes[:1], dram_gbps=1e9)
            out[soc_name] = {"alp_fps": alp, "best_single_fps": solo,
                             "gain": alp / solo}
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("table2_alp_gain", rows)
    for soc, r in rows.items():
        print(f"{soc:<22} ALP {r['alp_fps']:8.1f} vs single {r['best_single_fps']:8.1f} "
              f"({r['gain']:.2f}x)")
        assert r["gain"] > 1.0, f"ALP must add throughput on {soc}"

    # single-stream does NOT use ALP (coordination overhead, §7.3): the
    # configured single-stream accelerator list is one engine (+fallbacks)
    for soc_name in ("exynos_990", "snapdragon_865plus"):
        be = default_backend_for(get_soc(soc_name))
        cfg = be.task_execution("image_classification")
        assert len(cfg.single_stream) == 1
        assert len(cfg.offline) > 1


@pytest.mark.benchmark(group="table2")
def test_offline_faster_than_single_stream_everywhere(benchmark):
    def run():
        out = {}
        for soc in ("exynos_990", "snapdragon_865plus", "dimensity_820"):
            ss = measure_single_stream(soc, "image_classification",
                                       settings=BENCH_SETTINGS)
            off = measure_offline(soc, "image_classification")
            out[soc] = {"single_stream_fps": ss["throughput_fps"],
                        "offline_fps": off["offline_fps"]}
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for soc, r in rows.items():
        assert r["offline_fps"] > r["single_stream_fps"], soc
