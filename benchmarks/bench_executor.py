#!/usr/bin/env python
"""Executor throughput benchmark: unplanned vs planned vs batched execution.

Measures repeated INT8 MobileNetEdgeTPU queries through three harness paths:

1. ``unplanned``  — the legacy interpreting loop (``Executor.run_unplanned``),
   which re-derives dispatch and re-reduces constant operands per query;
2. ``planned``    — the compiled :class:`ExecutionPlan` (prepacked constants,
   cached dispatch, tensor liveness), one sample per query;
3. ``planned-batched`` — the plan fed ``--batch`` samples per execution, the
   way accuracy mode and PTQ calibration pack queries.

Writes ``BENCH_executor.json`` (per-path seconds/throughput, speedups, and a
per-op profile) so the executor perf trajectory is tracked PR over PR.

Run:  PYTHONPATH=src python benchmarks/bench_executor.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.graph import ExecutionPlan, ExecutionProfiler, Executor, export_mobile
from repro.kernels import Numerics
from repro.models import create_reference_model
from repro.quantization import calibrate, quantize_graph

DEFAULT_OUT = pathlib.Path(__file__).parent / "results" / "BENCH_executor.json"


def build_int8_mobilenet(seed: int = 0):
    """INT8 MobileNetEdgeTPU reference graph plus a query-input pool."""
    bundle = create_reference_model("mobilenet_edgetpu", fitted=False)
    exported = export_mobile(bundle.graph)
    rng = np.random.default_rng(seed)
    shape = tuple(8 if d == -1 else d for d in exported.inputs[0].shape)
    calib = [{"images": rng.normal(0, 0.5, shape).astype(np.float32)} for _ in range(2)]
    stats = calibrate(exported, calib)
    graph = quantize_graph(exported, stats, Numerics.INT8)
    single = tuple(1 if d == -1 else d for d in exported.inputs[0].shape)
    pool = [
        {"images": rng.normal(0, 0.5, single).astype(np.float32)} for _ in range(8)
    ]
    return graph, pool


def _time_queries(fn, pool, queries: int) -> float:
    # one warm-up pass so compile/prepack cost is not billed to query time
    fn(pool[0])
    t0 = time.perf_counter()
    for q in range(queries):
        fn(pool[q % len(pool)])
    return time.perf_counter() - t0


def run_benchmark(queries: int, batch: int, check: bool) -> dict:
    graph, pool = build_int8_mobilenet()
    executor = Executor(graph)
    plan = executor.plan

    if check:
        for feed in pool:
            legacy = executor.run_unplanned(feed)
            planned = plan.run(feed)
            for name in legacy:
                if not np.array_equal(legacy[name], planned[name]):
                    raise AssertionError(
                        f"planned executor diverged from legacy path on {name!r}"
                    )

    unplanned_s = _time_queries(executor.run_unplanned, pool, queries)
    planned_s = _time_queries(plan.run, pool, queries)

    # batched path: the same queries packed --batch samples per execution
    batched_pool = [
        {"images": np.concatenate([pool[(i + j) % len(pool)]["images"] for j in range(batch)])}
        for i in range(len(pool))
    ]
    n_execs = max(1, queries // batch)
    plan.run(batched_pool[0])  # warm-up at the batched shape
    t0 = time.perf_counter()
    for q in range(n_execs):
        plan.run(batched_pool[q % len(batched_pool)])
    batched_s = time.perf_counter() - t0
    batched_queries = n_execs * batch

    profiler = ExecutionProfiler()
    plan.run(pool[0], profiler=profiler)

    result = {
        "benchmark": "bench_executor",
        "model": "mobilenet_edgetpu[int8]",
        "queries": queries,
        "batch": batch,
        "bit_exact_checked": check,
        "plan": plan.describe(),
        "paths": {
            "unplanned": {
                "seconds": unplanned_s,
                "qps": queries / unplanned_s,
            },
            "planned": {
                "seconds": planned_s,
                "qps": queries / planned_s,
                "speedup_vs_unplanned": unplanned_s / planned_s,
            },
            "planned_batched": {
                "seconds": batched_s,
                "queries": batched_queries,
                "qps": batched_queries / batched_s,
                "speedup_vs_unplanned": (
                    (batched_queries / batched_s) / (queries / unplanned_s)
                ),
            },
        },
        "profile": profiler.as_dict(),
    }
    result["speedup"] = result["paths"]["planned_batched"]["speedup_vs_unplanned"]
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=256, help="timed queries per path")
    parser.add_argument("--batch", type=int, default=16, help="samples per batched execution")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI run: fewer queries, fail on executor-vs-plan mismatch",
    )
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)
    if args.batch < 1 or args.queries < 1:
        parser.error("--batch and --queries must be positive")

    queries = 64 if args.smoke else args.queries
    result = run_benchmark(queries=queries, batch=args.batch, check=True)

    paths = result["paths"]
    print(f"unplanned        : {paths['unplanned']['qps']:8.1f} qps")
    print(
        f"planned          : {paths['planned']['qps']:8.1f} qps "
        f"({paths['planned']['speedup_vs_unplanned']:.2f}x)"
    )
    print(
        f"planned-batched  : {paths['planned_batched']['qps']:8.1f} qps "
        f"({paths['planned_batched']['speedup_vs_unplanned']:.2f}x)"
    )

    args.out.parent.mkdir(parents=True, exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
    print(f"wrote {args.out}")

    if args.smoke and result["speedup"] < 2.0:
        print("FAIL: planned-batched executor below the 2x acceptance threshold")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
