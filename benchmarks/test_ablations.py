"""Ablations of the design decisions called out in DESIGN.md §4.

1. Run rules: the 60-second minimum exists because sustained load heats the
   die — a short burst underestimates the p90 latency a user would see.
2. Fitted heads ("trained" reference models): removing the closed-form head
   fit collapses task quality to chance, demonstrating that the quality-gate
   mechanism measures real signal recovery.
3. Cooldown intervals: back-to-back tests start hot; the mandated break
   restores cold-start latency.
"""

import numpy as np
import pytest

from repro.analysis import full_graph_cache
from repro.backends import default_backend_for
from repro.datasets import IndexDataset, create_dataset
from repro.graph import Executor, export_mobile
from repro.hardware import SimulatedDevice, get_soc
from repro.loadgen import LoadGenerator, PerformanceSUT, QuerySampleLibrary, TestSettings
from repro.models import create_reference_model

from conftest import save_result


@pytest.mark.benchmark(group="ablations")
def test_ablation_min_duration_rule(benchmark):
    """Short runs miss the thermal tail that the 60 s rule captures."""

    def run():
        soc = get_soc("dimensity_1100")
        be = default_backend_for(soc)
        g = full_graph_cache("mobilenet_edgetpu")
        cm = be.compile_single_stream(g, "image_classification")

        sut = PerformanceSUT(SimulatedDevice(soc), cm)
        short = LoadGenerator(TestSettings(min_query_count=16, min_duration_s=0.0)).run(
            sut, QuerySampleLibrary(IndexDataset()))
        sut_long = PerformanceSUT(SimulatedDevice(soc), cm)
        long = LoadGenerator(TestSettings(min_query_count=16, min_duration_s=60.0)).run(
            sut_long, QuerySampleLibrary(IndexDataset()))
        return {
            "short_p90_ms": short.percentile_latency() * 1e3,
            "long_p90_ms": long.percentile_latency() * 1e3,
            "long_final_temp": long.records[-1].temperature_c,
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_run_rules", r)
    print(f"\np90 over 16 queries: {r['short_p90_ms']:.2f} ms; "
          f"over 60 s: {r['long_p90_ms']:.2f} ms (final die {r['long_final_temp']:.1f} C)")
    assert r["long_p90_ms"] > r["short_p90_ms"] * 1.02


@pytest.mark.benchmark(group="ablations")
def test_ablation_fitted_heads(benchmark):
    """Unfitted (purely random) heads destroy task quality."""

    def run():
        fitted = create_reference_model("mobilenet_edgetpu", fitted=True)
        raw = create_reference_model("mobilenet_edgetpu", fitted=False)
        g_fit = export_mobile(fitted.graph)
        g_raw = export_mobile(raw.graph)
        ds = create_dataset("imagenet", g_fit, fitted.config, size=192)

        def top1(graph):
            ex = Executor(graph)
            correct = 0
            for s in range(0, len(ds), 64):
                idx = np.arange(s, min(s + 64, len(ds)))
                out = ex.run(ds.input_batch(idx))
                correct += (next(iter(out.values())).argmax(-1) == ds.labels[idx]).sum()
            return correct / len(ds) * 100

        return {"fitted_top1": top1(g_fit), "unfitted_top1": top1(g_raw)}

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_fitted_heads", r)
    print(f"\nfitted {r['fitted_top1']:.1f}% vs unfitted {r['unfitted_top1']:.1f}%")
    assert r["fitted_top1"] > 60.0
    assert r["unfitted_top1"] < 15.0  # near chance for 100 classes


@pytest.mark.benchmark(group="ablations")
def test_ablation_cooldown_interval(benchmark):
    """The mandated break restores cold-start latency between tests."""

    def run():
        soc = get_soc("exynos_990")
        be = default_backend_for(soc)
        g = full_graph_cache("deeplab_v3plus")
        cm = be.compile_single_stream(g, "semantic_segmentation")
        dev = SimulatedDevice(soc)
        cold = dev.run_query(cm).latency_seconds
        for _ in range(800):  # heat the die (~2 virtual minutes of load)
            dev.run_query(cm)
        hot = dev.run_query(cm).latency_seconds
        dev.cooldown(300.0)  # the app's 5-minute break setting
        rested = dev.run_query(cm).latency_seconds
        return {"cold_ms": cold * 1e3, "hot_ms": hot * 1e3, "rested_ms": rested * 1e3}

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_cooldown", r)
    print(f"\ncold {r['cold_ms']:.2f}  hot {r['hot_ms']:.2f}  after-break {r['rested_ms']:.2f} ms")
    assert r["hot_ms"] > r["cold_ms"]
    assert r["rested_ms"] == pytest.approx(r["cold_ms"], rel=0.02)
