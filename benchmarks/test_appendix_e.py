"""Appendix E — the paper's future-work agenda, implemented and measured.

Not a numbered table/figure, but the paper commits to: expanding the suite
(speech, super-resolution), end-to-end performance, iOS support, framework
measurement, power, and rolling submissions. This bench exercises each and
asserts the behaviours the paper anticipates.
"""

import pytest

from repro.analysis import ai_tax_breakdown, measure_single_stream
from repro.core import QUICK_RULES, BenchmarkHarness
from repro.core.tasks import TASK_ORDER
from repro.kernels import Numerics
from repro.loadgen import TestSettings

from conftest import BENCH_SETTINGS, save_result


@pytest.fixture(scope="module")
def exp_harness():
    return BenchmarkHarness(version="experimental", rules=QUICK_RULES)


@pytest.mark.benchmark(group="appendix_e")
def test_expanded_suite_quality(benchmark, exp_harness):
    """Speech + SR through the unchanged harness/gates machinery."""

    def run():
        out = {}
        for task, metric in (("speech_recognition", "token_accuracy"),
                             ("super_resolution", "psnr")):
            fp32 = exp_harness.fp32_accuracy(task)[metric]
            int8 = exp_harness.run_accuracy(task, Numerics.INT8).accuracy[metric]
            fp16 = exp_harness.run_accuracy(task, Numerics.FP16).accuracy[metric]
            out[task] = {"fp32": fp32, "int8": int8, "fp16": fp16,
                         "ratio_int8": int8 / fp32, "ratio_fp16": fp16 / fp32}
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("appendix_e_suite", rows)
    print("\nApp. E expanded suite (experimental round)")
    for task, r in rows.items():
        print(f"{task:<22} fp32 {r['fp32']:7.2f}  int8 {r['int8']:7.2f} "
              f"({r['ratio_int8']*100:5.1f}%)  fp16 {r['fp16']:7.2f} "
              f"({r['ratio_fp16']*100:5.1f}%)")

    # SR quantizes like vision; streaming ASR (recurrent) behaves like NLP:
    # the suite-expansion preserves the paper's numerics insight
    assert rows["super_resolution"]["ratio_int8"] >= 0.95
    assert rows["speech_recognition"]["ratio_int8"] < 0.90
    assert rows["speech_recognition"]["ratio_fp16"] >= 0.95


@pytest.mark.benchmark(group="appendix_e")
def test_end_to_end_ai_tax(benchmark):
    """End-to-end latency includes non-negligible pre/post overhead."""

    def run():
        return {
            task: ai_tax_breakdown("snapdragon_865plus", task)
            for task in TASK_ORDER
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("appendix_e_ai_tax", rows)
    print("\nApp. E end-to-end AI tax (Snapdragon 865+)")
    for task, r in rows.items():
        print(f"{task:<26} core {r['core_ms']:7.2f} ms  "
              f"e2e {r['end_to_end_ms']:7.2f} ms  tax {r['ai_tax_pct']:5.1f}%")
    # non-negligible for the light model, amortized for heavy ones
    assert rows["image_classification"]["ai_tax_pct"] > 10.0
    assert rows["semantic_segmentation"]["ai_tax_pct"] < 5.0


@pytest.mark.benchmark(group="appendix_e")
def test_ios_preview(benchmark):
    """The A14 + Core ML path produces flagship-class v1.0-task numbers."""

    def run():
        settings = TestSettings(min_query_count=256, min_duration_s=2.0)
        return {
            task: measure_single_stream("apple_a14", task, version="v1.0",
                                        settings=settings)
            for task in TASK_ORDER
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("appendix_e_ios", rows)
    print("\nApp. E iOS preview (Apple A14, Core ML)")
    for task, r in rows.items():
        print(f"{task:<26} {r['latency_p90_ms']:7.2f} ms  {r['config']}")
    flagship = {
        task: measure_single_stream("dimensity_1100", task, settings=BENCH_SETTINGS)
        for task in TASK_ORDER
    }
    for task in TASK_ORDER:
        ratio = rows[task]["latency_p90_ms"] / flagship[task]["latency_p90_ms"]
        assert 0.3 < ratio < 3.0, f"{task}: A14 not flagship-class ({ratio:.2f}x)"
