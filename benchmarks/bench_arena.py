#!/usr/bin/env python
"""Arena-execution benchmark: planned path vs static-arena path.

Measures single-stream (batch=1) INT8 queries on the two most memory-bound
zoo models through two plan paths:

1. ``planned`` — the compiled :class:`ExecutionPlan` (PR-1 path): prepacked
   kernels, liveness release, but a fresh output allocation per op;
2. ``arena``   — :meth:`ExecutionPlan.run_arena` steady state: every managed
   intermediate written in place into the static memory arena, zero
   transient output allocations.

Alongside the timing it records the planner's memory story: the arena peak
versus the no-reuse footprint (every intermediate resident at once). The
acceptance floor is a >= 3x peak-memory reduction on MobileNetEdgeTPU and
DeepLabv3+ and bit-exact parity between the two paths.

Writes ``BENCH_arena.json``.  Run:
    PYTHONPATH=src python benchmarks/bench_arena.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.graph import ExecutionPlan, Executor, export_mobile
from repro.kernels import Numerics
from repro.models import create_reference_model
from repro.quantization import calibrate, quantize_graph

DEFAULT_OUT = pathlib.Path(__file__).parent / "results" / "BENCH_arena.json"
MODELS = ("mobilenet_edgetpu", "deeplab_v3plus")
MIN_MEMORY_REDUCTION = 3.0


def build_int8(name: str, seed: int = 0):
    """INT8 deployment of one zoo model plus a single-sample query pool."""
    bundle = create_reference_model(name, fitted=False)
    exported = export_mobile(bundle.graph)
    rng = np.random.default_rng(seed)
    spec = exported.inputs[0]
    single = tuple(1 if d == -1 else d for d in spec.shape)
    calib = [{spec.name: rng.normal(0, 0.5, single).astype(np.float32)} for _ in range(2)]
    stats = calibrate(exported, calib)
    graph = quantize_graph(exported, stats, Numerics.INT8)
    pool = [{spec.name: rng.normal(0, 0.5, single).astype(np.float32)} for _ in range(8)]
    return graph, pool


def _time_paths(paths, pool, queries: int, rounds: int = 4) -> list[float]:
    """Time each path in interleaved rounds so clock drift and cache state
    cancel out instead of biasing whichever path runs last."""
    for fn in paths:
        fn(pool[0])  # warm-up: compile/record outside the timed window
    per_round = max(1, queries // rounds)
    totals = [0.0] * len(paths)
    for _ in range(rounds):
        for i, fn in enumerate(paths):
            t0 = time.perf_counter()
            for q in range(per_round):
                fn(pool[q % len(pool)])
            totals[i] += time.perf_counter() - t0
    return totals


def bench_model(name: str, queries: int, check: bool) -> dict:
    graph, pool = build_int8(name)
    executor = Executor(graph)
    plan = executor.plan

    if check:
        for feed in pool[:2]:
            legacy = executor.run_unplanned(feed)
            arena = plan.run_arena(feed)
            again = plan.run_arena(feed)  # steady state reuses the buffers
            for out in legacy:
                for got in (arena, again):
                    if not np.array_equal(legacy[out], got[out]):
                        raise AssertionError(
                            f"{name}: arena execution diverged from the "
                            f"legacy path on {out!r}"
                        )

    planned_s, arena_s = _time_paths((plan.run, plan.run_arena), pool, queries)
    timed = max(1, queries // 4) * 4

    layout = plan.arena_layout(batch=1)
    return {
        "model": f"{name}[int8]",
        "queries": timed,
        "paths": {
            "planned": {"seconds": planned_s, "qps": timed / planned_s},
            "arena": {
                "seconds": arena_s,
                "qps": timed / arena_s,
                "speedup_vs_planned": planned_s / arena_s,
            },
        },
        "memory": {
            "arena_peak_bytes": layout.total_bytes,
            "no_reuse_bytes": layout.naive_bytes,
            "reduction": layout.reuse_ratio,
            "managed_tensors": len(layout.slots),
            "arena": layout.describe(),
        },
        "optimize": plan.optimize_stats,
    }


def run_benchmark(queries: int, check: bool) -> dict:
    per_model = [bench_model(name, queries, check) for name in MODELS]
    return {
        "benchmark": "bench_arena",
        "bit_exact_checked": check,
        "min_memory_reduction": MIN_MEMORY_REDUCTION,
        "models": per_model,
        "speedup": min(
            m["paths"]["arena"]["speedup_vs_planned"] for m in per_model
        ),
        "memory_reduction": min(m["memory"]["reduction"] for m in per_model),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=128, help="timed queries per path")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI run: fewer queries, gate on parity and memory reduction",
    )
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)
    if args.queries < 1:
        parser.error("--queries must be positive")

    queries = 24 if args.smoke else args.queries
    result = run_benchmark(queries=queries, check=True)

    for m in result["models"]:
        arena = m["paths"]["arena"]
        mem = m["memory"]
        print(
            f"{m['model']:24s} planned {m['paths']['planned']['qps']:7.1f} qps | "
            f"arena {arena['qps']:7.1f} qps ({arena['speedup_vs_planned']:.2f}x) | "
            f"peak {mem['arena_peak_bytes']:>10,d} B vs {mem['no_reuse_bytes']:>11,d} B "
            f"({mem['reduction']:.1f}x smaller)"
        )

    args.out.parent.mkdir(parents=True, exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
    print(f"wrote {args.out}")

    if result["memory_reduction"] < MIN_MEMORY_REDUCTION:
        print(
            f"FAIL: arena peak-memory reduction "
            f"{result['memory_reduction']:.2f}x below the "
            f"{MIN_MEMORY_REDUCTION:.0f}x acceptance floor"
        )
        return 1
    # timing gate is deliberately loose: smoke runs are short and shared CI
    # boxes are noisy — the hard guarantees are parity and the memory floor
    if result["speedup"] < 0.9:
        print("FAIL: arena path measurably slower than the planned path")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
