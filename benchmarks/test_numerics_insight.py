"""Insight 5 (§7.5) — numerics still matter for some tasks.

Vision tasks tolerate INT8 PTQ (quality gates pass without retraining);
extractive QA does not — FP16 is required — because the transformer's
float-island structure (softmax/LayerNorm/attention) plus long residual
chains amplify activation-quantization error.
"""

import pytest

from repro.core.tasks import get_task
from repro.kernels import Numerics

from conftest import save_result


@pytest.mark.benchmark(group="insight5")
def test_nlp_needs_fp16(benchmark, accuracy_harness):
    harness = accuracy_harness

    def run():
        spec = get_task("question_answering")
        fp32 = harness.fp32_accuracy("question_answering")[spec.metric]
        int8 = harness.run_accuracy("question_answering", Numerics.INT8).accuracy[spec.metric]
        fp16 = harness.run_accuracy("question_answering", Numerics.FP16).accuracy[spec.metric]
        return {"fp32_f1": fp32, "int8_f1": int8, "fp16_f1": fp16}

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("insight5_numerics", r)
    print(f"\nMobileBERT F1: fp32 {r['fp32_f1']:.2f}  int8 {r['int8_f1']:.2f}  "
          f"fp16 {r['fp16_f1']:.2f}")

    # INT8 loses a large fraction of quality; FP16 is essentially lossless
    assert r["int8_f1"] < 0.93 * r["fp32_f1"]
    assert r["fp16_f1"] >= 0.97 * r["fp32_f1"]


@pytest.mark.benchmark(group="insight5")
def test_vision_tolerates_int8(benchmark, accuracy_harness):
    harness = accuracy_harness

    def run():
        out = {}
        for task in ("image_classification", "semantic_segmentation"):
            spec = get_task(task)
            fp32 = harness.fp32_accuracy(task)[spec.metric]
            int8 = harness.run_accuracy(task, Numerics.INT8).accuracy[spec.metric]
            out[task] = int8 / fp32
        return out

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    for task, ratio in ratios.items():
        print(f"{task}: int8 retains {ratio*100:.1f}% of fp32")
        assert ratio >= get_task(task).quality_ratio["v1.0"], task


@pytest.mark.benchmark(group="insight5")
def test_fp16_faster_than_fp32_on_gpu(benchmark):
    """Why FP16 at all: GPUs run half precision ~2x faster than FP32."""
    from repro.analysis import full_graph_cache
    from repro.hardware import FrameworkProfile, get_soc
    from repro.hardware.scheduler import compile_model

    def run():
        g = full_graph_cache("mobilebert")
        soc = get_soc("exynos_990")
        fw = FrameworkProfile("probe")
        f16 = compile_model(g, soc, primary="gpu", numerics=Numerics.FP16, framework=fw)
        f32 = compile_model(g, soc, primary="gpu", numerics=Numerics.FP32, framework=fw)
        return f32.latency_seconds() / f16.latency_seconds()

    ratio = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nMobileBERT on Mali GPU: FP32/FP16 latency ratio {ratio:.2f}x")
    assert ratio > 1.3
