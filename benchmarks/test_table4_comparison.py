"""Table 4 — requirement grid versus prior mobile AI benchmarks.

The prior-art rows come from the paper; the MLPerf Mobile row is *computed*
by checking that this repository actually implements each claimed
requirement (analysis.related_work.mlperf_feature_selfcheck).
"""

import pytest

from repro.analysis import REQUIREMENTS, table4_grid

from conftest import save_result


@pytest.mark.benchmark(group="table4")
def test_table4_requirements_grid(benchmark):
    grid = benchmark.pedantic(table4_grid, rounds=1, iterations=1)
    save_result("table4_comparison", grid)

    print("\nTable 4 — requirement comparison")
    header = "".join(f"  R{r}" for r in sorted(REQUIREMENTS))
    print(f"{'benchmark':<16}{header}")
    for name, row in grid.items():
        cells = "".join(f"{'  ✓' if row[r] else '  ✗'}" for r in sorted(REQUIREMENTS))
        print(f"{name:<16}{cells}")

    # only MLPerf Mobile meets all five requirements
    assert all(grid["MLPerf Mobile"].values())
    for name, row in grid.items():
        if name != "MLPerf Mobile":
            assert not all(row.values()), f"{name} unexpectedly meets all requirements"

    # the specific paper rows we can cross-check
    assert grid["GeekBenchML"] == {1: True, 2: False, 3: False, 4: False, 5: False}
    assert grid["Android MLTS"][1] is False  # driver tests, not a system benchmark
    assert grid["Xiaomi"][3] is True  # open source
