"""Figure 7 — v0.7 single-stream results across the three smartphone chipsets.

Regenerates both panels (throughput and latency) and asserts the paper's
"no one size fits all" rankings:
- MediaTek Dimensity 820 scores highest on object detection AND image
  segmentation throughput;
- Samsung Exynos 990 scores highest on image classification AND NLP;
- Qualcomm Snapdragon 865+ is competitive (never last on seg/NLP... it
  places second on segmentation and NLP).
"""

import pytest

from repro.analysis import figure7_single_stream
from repro.core.tasks import TASK_ORDER

from conftest import BENCH_SETTINGS, save_result

SMARTPHONES = ["exynos_990", "snapdragon_865plus", "dimensity_820"]


@pytest.mark.benchmark(group="figure7")
def test_figure7_rankings(benchmark):
    panel = benchmark.pedantic(
        figure7_single_stream, kwargs={"version": "v0.7", "settings": BENCH_SETTINGS},
        rounds=1, iterations=1,
    )
    save_result("figure7_single_stream", panel)

    print("\nFigure 7 — v0.7 single-stream (p90 latency ms / throughput fps)")
    print(f"{'chipset':<20}" + "".join(f"{t[:13]:>20}" for t in TASK_ORDER))
    for soc in SMARTPHONES:
        cells = [
            f"{panel[soc][t]['latency_p90_ms']:7.2f}/{panel[soc][t]['throughput_fps']:7.1f}"
            for t in TASK_ORDER
        ]
        print(f"{soc:<20}" + "".join(f"{c:>20}" for c in cells))

    def winner(task):
        return min(SMARTPHONES, key=lambda s: panel[s][task]["latency_p90_ms"])

    def ranking(task):
        return sorted(SMARTPHONES, key=lambda s: panel[s][task]["latency_p90_ms"])

    # MediaTek wins detection and segmentation
    assert winner("object_detection") == "dimensity_820"
    assert winner("semantic_segmentation") == "dimensity_820"
    # Samsung wins classification and NLP
    assert winner("image_classification") == "exynos_990"
    assert winner("question_answering") == "exynos_990"
    # Qualcomm competitive on segmentation and NLP: second place
    assert ranking("semantic_segmentation")[1] == "snapdragon_865plus"
    assert ranking("question_answering")[1] == "snapdragon_865plus"

    # same general trend holds in v1.0 (paper: "similar trends"): every
    # chipset's successor improves on every task, and the spread between
    # chipsets narrows (each offers "unique differentiable value")
    panel_v10 = figure7_single_stream("v1.0", settings=BENCH_SETTINGS)
    v10_phones = ["exynos_2100", "snapdragon_888", "dimensity_1100"]
    successor = dict(zip(SMARTPHONES, v10_phones))
    for old, new in successor.items():
        for task in TASK_ORDER:
            assert (panel_v10[new][task]["latency_p90_ms"]
                    < panel[old][task]["latency_p90_ms"]), (old, new, task)
    save_result("figure7_single_stream_v10", panel_v10)
